#include <cstdio>
#include "src/core/apps.h"
#include "src/core/fault_injection.h"
#include "src/core/testbed.h"
using namespace newtos;
int main() {
  TestbedOptions opts; opts.mode = StackMode::kSplitSyscall; opts.pf_filler_rules = 64;
  Testbed tb(opts);
  AppActor* sshd_app = tb.newtos().add_app("sshd");
  apps::EchoServer sshd(tb.newtos(), sshd_app, {}); sshd.start();
  AppActor* ssh_app = tb.peer().add_app("ssh");
  apps::EchoClient::Config ec; ec.dst = tb.peer().peer_addr(0);
  apps::EchoClient ssh(tb.peer(), ssh_app, ec); ssh.start();
  FaultInjector faults(tb.newtos(), 7);
  faults.inject_at(2 * sim::kSecond, servers::kStoreName, FaultType::Crash);
  faults.inject_at(3 * sim::kSecond, servers::kTcpName, FaultType::Crash);
  for (int ms : {1900, 2500, 3200, 4000, 5000, 8000}) {
    tb.run_until(ms * sim::kMillisecond);
    auto* tcp = tb.newtos().tcp_engine();
    auto* store = tb.newtos().storage();
    std::printf("t=%.1fs store_entries=%zu tcp_listeners=%zu ssh conn=%d ok=%llu rst=%llu reconn=%llu\n",
                ms / 1000.0, store ? store->entries() : 0,
                tcp ? tcp->listeners().size() : 0, ssh.connected(),
                (unsigned long long)ssh.ok(), (unsigned long long)ssh.resets(),
                (unsigned long long)ssh.reconnects());
  }
  for (auto& [t, msg] : tb.newtos().stats().events())
    std::printf("  [%.3f] %s\n", t / 1e9, msg.c_str());
  return 0;
}
