// Scratch probe (not a ctest): prints stack internals while a bulk transfer
// "runs", to locate where the path stalls.
#include <cstdio>
#include <string>

#include "src/core/apps.h"
#include "src/core/testbed.h"

using namespace newtos;

int main(int argc, char** argv) {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  if (argc > 1 && std::string(argv[1]) == "single") opts.mode = StackMode::kSingleServer;
  if (argc > 1 && std::string(argv[1]) == "minix") opts.mode = StackMode::kMinixSync;
  if (argc > 1 && std::string(argv[1]) == "ideal") opts.mode = StackMode::kIdealMonolithic;
  Testbed tb(opts);

  AppActor* tx_app = tb.newtos().add_app("iperf_tx");
  AppActor* rx_app = tb.peer().add_app("iperf_rx");

  apps::BulkReceiver::Config rc;
  rc.record_series = false;
  apps::BulkReceiver receiver(tb.peer(), rx_app, rc);
  receiver.start();

  apps::BulkSender::Config sc;
  sc.dst = tb.newtos().peer_addr(0);
  apps::BulkSender sender(tb.newtos(), tx_app, sc);
  sender.start();

  for (int ms : {200, 600, 1000, 1400, 1800, 2500}) {
    tb.run_until(ms * sim::kMillisecond);
    auto* tcp = tb.newtos().tcp_engine();
    auto* ip = tb.newtos().ip_engine();
    auto* ptcp = tb.peer().tcp_engine();
    std::printf("--- t=%dms rx_bytes=%llu\n", ms,
                (unsigned long long)receiver.bytes());
    if (tcp) {
      std::printf("  newtos.tcp: segs_out=%llu segs_in=%llu bytes_out=%llu "
                  "conns=%zu estab=%llu retx=%llu rtos=%llu\n",
                  (unsigned long long)tcp->stats().segs_out,
                  (unsigned long long)tcp->stats().segs_in,
                  (unsigned long long)tcp->stats().bytes_out,
                  tcp->connection_count(),
                  (unsigned long long)tcp->stats().conns_established,
                  (unsigned long long)tcp->stats().bytes_retx,
                  (unsigned long long)tcp->stats().rtos);
    }
    if (ip) {
      std::printf("  newtos.ip: tx_segs=%llu tx_frames=%llu rx=%llu "
                  "deliv=%llu no_route=%llu pf_drop=%llu malformed=%llu "
                  "arp_to=%llu tx_pend=%zu\n",
                  (unsigned long long)ip->stats().tx_segs,
                  (unsigned long long)ip->stats().tx_frames,
                  (unsigned long long)ip->stats().rx_frames,
                  (unsigned long long)ip->stats().rx_delivered,
                  (unsigned long long)ip->stats().dropped_no_route,
                  (unsigned long long)ip->stats().dropped_pf,
                  (unsigned long long)ip->stats().dropped_malformed,
                  (unsigned long long)ip->stats().dropped_arp_timeout,
                  ip->tx_pending());
    }
    if (ptcp) {
      std::printf("  peer.tcp: segs_out=%llu segs_in=%llu bytes_in=%llu "
                  "estab=%llu ooo=%llu\n",
                  (unsigned long long)ptcp->stats().segs_out,
                  (unsigned long long)ptcp->stats().segs_in,
                  (unsigned long long)ptcp->stats().bytes_in,
                  (unsigned long long)ptcp->stats().conns_established,
                  (unsigned long long)ptcp->stats().ooo_dropped);
    }
    auto& nic = *tb.newtos().nic(0);
    std::printf("  nic0: tx_frames=%llu descs=%llu ringfull=%llu rx=%llu "
                "nobuf=%llu badaddr=%llu link=%d | wire: deliv=%llu\n",
                (unsigned long long)nic.stats().tx_frames,
                (unsigned long long)nic.stats().tx_descs,
                (unsigned long long)nic.stats().tx_ring_full,
                (unsigned long long)nic.stats().rx_frames,
                (unsigned long long)nic.stats().rx_no_buffer,
                (unsigned long long)nic.stats().rx_bad_addr,
                nic.link_up() ? 1 : 0,
                (unsigned long long)tb.wire(0).frames_delivered());
    if (tcp && tcp->connection_count() > 0) {
      std::printf("  newtos conn1: %s\n  newtos conn2: %s\n", tcp->debug(1).c_str(), tcp->debug(2).c_str());
    }
    if (ptcp && ptcp->connection_count() > 0) {
      std::printf("  peer conn: %s\n", ptcp->debug(2).c_str());
    }
    std::printf("  sender: connected=%d outstanding=%d | pools:", 
                sender.connected() ? 1 : 0, sender.outstanding());
    for (auto name : {"stack.buf", "tcp.buf"}) {
      (void)name;
    }
    {
      auto& reg = tb.newtos().pools();
      for (std::uint32_t id = 1; id <= reg.count(); ++id) {
        if (auto* p = reg.find(id))
          std::printf(" %s=%zuKB/%zu", p->name().c_str(),
                      p->bytes_live() / 1024, p->chunks_live());
      }
    }
    std::printf("\n");
    auto& pnic = *tb.peer().nic(0);
    std::printf("  peernic: tx=%llu rx=%llu nobuf=%llu\n",
                (unsigned long long)pnic.stats().tx_frames,
                (unsigned long long)pnic.stats().rx_frames,
                (unsigned long long)pnic.stats().rx_no_buffer);
    for (const auto& [t, msg] : tb.newtos().stats().events()) {
      std::printf("  event@%.3fs %s\n", t / 1e9, msg.c_str());
    }
  }
  return 0;
}
