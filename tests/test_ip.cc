// Unit tests: the IP engine — routing, the PF T junction, ARP-gated
// transmission, ICMP echo, TX completion/resubmission and RX delivery.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/checksum.h"
#include "src/net/ip.h"
#include "src/sim/sim.h"

using namespace newtos;
using namespace newtos::net;

namespace {

struct SentFrame {
  int ifindex;
  TxFrame frame;
  std::uint64_t cookie;
};

// Direct harness around one IpEngine: captures frames meant for drivers,
// exposes knobs for PF verdicts, and fabricates inbound frames.
struct Host {
  sim::Simulator sim;
  chan::PoolRegistry pools;
  chan::Pool* hdr_pool;
  chan::Pool* rx_pool;
  chan::Pool* l4_pool;  // plays the TCP/UDP server's pool
  std::vector<SentFrame> wire;
  std::vector<std::pair<PfQuery, std::uint64_t>> pf_queries;
  std::vector<std::pair<std::uint64_t, bool>> seg_done;
  std::vector<L4Packet> to_tcp, to_udp;
  bool pf_enabled;
  std::unique_ptr<IpEngine> ip;

  class Timers : public TimerService {
   public:
    explicit Timers(sim::Simulator* s) : sim_(s) {}
    TimerId schedule(sim::Time d, std::function<void()> fn) override {
      return sim_->after(d, std::move(fn));
    }
    void cancel(TimerId id) override { sim_->cancel(id); }
    sim::Simulator* sim_;
  } timers{&sim};
  class SimClock : public Clock {
   public:
    explicit SimClock(sim::Simulator* s) : sim_(s) {}
    sim::Time now() const override { return sim_->now(); }
    sim::Simulator* sim_;
  } clock{&sim};

  explicit Host(bool with_pf = false) : pf_enabled(with_pf) {
    hdr_pool = &pools.create("ip", "hdr", 4u << 20);
    rx_pool = &pools.create("ip", "rx", 4u << 20);
    l4_pool = &pools.create("tcp", "buf", 4u << 20);

    IpEngine::Env env;
    env.clock = &clock;
    env.timers = &timers;
    env.pools = &pools;
    env.hdr_pool = hdr_pool;
    env.rx_pool = rx_pool;
    env.csum_offload = false;  // software path: real checksums on the wire
    env.send_frame = [this](int ifindex, TxFrame&& f, std::uint64_t cookie) {
      wire.push_back(SentFrame{ifindex, std::move(f), cookie});
    };
    if (with_pf) {
      env.pf_check = [this](const PfQuery& q, std::uint64_t cookie) {
        pf_queries.push_back({q, cookie});
      };
    }
    env.deliver_tcp = [this](L4Packet&& p) { to_tcp.push_back(p); };
    env.deliver_udp = [this](L4Packet&& p) { to_udp.push_back(p); };
    env.seg_done = [this](std::uint64_t c, bool ok) {
      seg_done.push_back({c, ok});
    };

    IpConfig cfg;
    Interface ifc;
    ifc.index = 0;
    ifc.mac = MacAddr::local(1);
    ifc.addr = Ipv4Addr(10, 1, 0, 1);
    ifc.subnet = Ipv4Net{Ipv4Addr(10, 1, 0, 0), 24};
    cfg.interfaces.push_back(ifc);
    Route def;
    def.dest = Ipv4Net{Ipv4Addr(0, 0, 0, 0), 0};
    def.gateway = Ipv4Addr(10, 1, 0, 254);
    def.ifindex = 0;
    cfg.routes.push_back(def);
    ip = std::make_unique<IpEngine>(std::move(env), cfg);
  }

  TxSeg make_seg(Ipv4Addr dst, std::uint16_t dport = 80,
                 std::uint32_t payload = 100) {
    TxSeg seg;
    seg.l4_header = l4_pool->alloc(kTcpHeaderLen);
    auto view = l4_pool->write_view(seg.l4_header);
    ByteWriter w{view};
    TcpHeader h;
    h.src_port = 30000;
    h.dst_port = dport;
    h.flags = tcpflag::kAck;
    h.serialize(w);
    if (payload > 0) seg.payload.push_back(l4_pool->alloc(payload));
    seg.src = Ipv4Addr(10, 1, 0, 1);
    seg.dst = dst;
    seg.protocol = kProtoTcp;
    return seg;
  }

  // Replies to the pending ARP request for `hop` so transmission proceeds.
  void answer_arp(Ipv4Addr hop, MacAddr mac) {
    ASSERT_FALSE(wire.empty());
    ArpPacket reply;
    reply.op = kArpOpReply;
    reply.sender_mac = mac;
    reply.sender_ip = hop;
    reply.target_mac = MacAddr::local(1);
    reply.target_ip = Ipv4Addr(10, 1, 0, 1);
    chan::RichPtr frame =
        rx_pool->alloc(kEthHeaderLen + kArpPacketLen);
    auto view = rx_pool->write_view(frame);
    ByteWriter w{view};
    EthHeader eth;
    eth.dst = MacAddr::local(1);
    eth.src = mac;
    eth.ethertype = kEtherTypeArp;
    eth.serialize(w);
    reply.serialize(w);
    ip->input(0, frame);
  }

  // Builds an inbound ICMP echo request frame.
  chan::RichPtr make_ping(Ipv4Addr from, std::uint16_t id,
                          std::uint32_t payload_len) {
    const std::uint16_t icmp_len =
        static_cast<std::uint16_t>(kIcmpHeaderLen + payload_len);
    chan::RichPtr frame = rx_pool->alloc(
        static_cast<std::uint32_t>(kEthHeaderLen + kIpHeaderLen + icmp_len));
    auto view = rx_pool->write_view(frame);
    ByteWriter w{view};
    EthHeader eth;
    eth.dst = MacAddr::local(1);
    eth.src = MacAddr::local(9);
    eth.ethertype = kEtherTypeIpv4;
    eth.serialize(w);
    Ipv4Header iph;
    iph.total_length = static_cast<std::uint16_t>(kIpHeaderLen + icmp_len);
    iph.protocol = kProtoIcmp;
    iph.src = from;
    iph.dst = Ipv4Addr(10, 1, 0, 1);
    iph.serialize(w);
    IcmpHeader icmp;
    icmp.type = kIcmpEchoRequest;
    icmp.id = id;
    icmp.seq = 1;
    icmp.serialize(w);
    for (std::uint32_t i = 0; i < payload_len; ++i)
      w.u8(static_cast<std::uint8_t>(i));
    // Fix the ICMP checksum over header+payload.
    auto icmp_bytes = view.subspan(kEthHeaderLen + kIpHeaderLen);
    const std::uint16_t csum = checksum(icmp_bytes);
    icmp_bytes[2] = std::byte{static_cast<std::uint8_t>(csum >> 8)};
    icmp_bytes[3] = std::byte{static_cast<std::uint8_t>(csum)};
    return frame;
  }
};

}  // namespace

TEST(Ip, OnLinkDestinationResolvedViaArpThenSent) {
  Host h;
  h.ip->output(h.make_seg(Ipv4Addr(10, 1, 0, 2)), 1);
  // First thing on the wire: an ARP request (broadcast), not our data.
  ASSERT_EQ(h.wire.size(), 1u);
  auto bytes = h.pools.read(h.wire[0].frame.header);
  ByteReader r{bytes};
  auto eth = EthHeader::parse(r);
  ASSERT_TRUE(eth.has_value());
  EXPECT_EQ(eth->ethertype, kEtherTypeArp);
  EXPECT_TRUE(eth->dst.is_broadcast());

  h.answer_arp(Ipv4Addr(10, 1, 0, 2), MacAddr::local(7));
  ASSERT_EQ(h.wire.size(), 2u);  // now the data frame went out
  auto data = h.pools.read(h.wire[1].frame.header);
  ByteReader r2{data};
  auto eth2 = EthHeader::parse(r2);
  ASSERT_TRUE(eth2.has_value());
  EXPECT_EQ(eth2->ethertype, kEtherTypeIpv4);
  EXPECT_EQ(eth2->dst, MacAddr::local(7));
  auto iph = Ipv4Header::parse(r2, /*verify=*/true);
  ASSERT_TRUE(iph.has_value());
  EXPECT_EQ(iph->dst, Ipv4Addr(10, 1, 0, 2));
  EXPECT_EQ(iph->protocol, kProtoTcp);
}

TEST(Ip, OffLinkDestinationUsesGatewayMac) {
  Host h;
  h.ip->output(h.make_seg(Ipv4Addr(192, 168, 7, 7)), 1);
  h.answer_arp(Ipv4Addr(10, 1, 0, 254), MacAddr::local(42));
  ASSERT_EQ(h.wire.size(), 2u);
  auto data = h.pools.read(h.wire[1].frame.header);
  ByteReader r{data};
  auto eth = EthHeader::parse(r);
  ASSERT_TRUE(eth.has_value());
  EXPECT_EQ(eth->dst, MacAddr::local(42));  // the gateway, not the dest
  auto iph = Ipv4Header::parse(r);
  EXPECT_EQ(iph->dst, Ipv4Addr(192, 168, 7, 7));  // but IP dst unchanged
}

TEST(Ip, NoRouteFailsSegment) {
  Host h;
  // Remove the default route by reconfiguring.
  IpConfig cfg = h.ip->config();
  cfg.routes.clear();
  h.ip->set_config(cfg);
  h.ip->output(h.make_seg(Ipv4Addr(192, 168, 7, 7)), 55);
  ASSERT_EQ(h.seg_done.size(), 1u);
  EXPECT_EQ(h.seg_done[0].first, 55u);
  EXPECT_FALSE(h.seg_done[0].second);
  EXPECT_EQ(h.ip->stats().dropped_no_route, 1u);
}

TEST(Ip, SoftwareChecksumIsCorrectOnWire) {
  Host h;
  h.ip->output(h.make_seg(Ipv4Addr(10, 1, 0, 2), 80, 64), 1);
  h.answer_arp(Ipv4Addr(10, 1, 0, 2), MacAddr::local(7));
  ASSERT_EQ(h.wire.size(), 2u);
  // Verify the TCP checksum over pseudo-header + header + payload is valid.
  auto flat = flatten(h.pools, h.wire[1].frame.header, h.wire[1].frame.payload);
  const std::uint16_t l4_len =
      static_cast<std::uint16_t>(flat.size() - kEthHeaderLen - kIpHeaderLen);
  std::uint32_t sum = pseudo_header_sum(Ipv4Addr(10, 1, 0, 1),
                                        Ipv4Addr(10, 1, 0, 2), kProtoTcp,
                                        l4_len);
  sum = checksum_partial(
      std::span<const std::byte>(flat).subspan(kEthHeaderLen + kIpHeaderLen),
      sum);
  EXPECT_EQ(checksum_finish(sum), 0);
}

TEST(Ip, TxDoneCompletesAndFreesHeader) {
  Host h;
  h.ip->output(h.make_seg(Ipv4Addr(10, 1, 0, 2)), 9);
  h.answer_arp(Ipv4Addr(10, 1, 0, 2), MacAddr::local(7));
  const std::size_t live_before = h.hdr_pool->chunks_live();
  // Two pending: the ARP request (internal) and our data frame.
  ASSERT_EQ(h.ip->tx_pending(), 2u);
  h.ip->tx_done(h.wire[1].cookie, true);
  EXPECT_EQ(h.ip->tx_pending(), 1u);
  EXPECT_EQ(h.hdr_pool->chunks_live(), live_before - 1);
  ASSERT_EQ(h.seg_done.size(), 1u);
  EXPECT_EQ(h.seg_done[0].first, 9u);
  EXPECT_TRUE(h.seg_done[0].second);
  // A duplicate/stale completion is ignored.
  h.ip->tx_done(h.wire[1].cookie, true);
  EXPECT_EQ(h.seg_done.size(), 1u);
}

TEST(Ip, ResubmitTxAfterDriverCrash) {
  Host h;
  h.ip->output(h.make_seg(Ipv4Addr(10, 1, 0, 2)), 9);
  h.answer_arp(Ipv4Addr(10, 1, 0, 2), MacAddr::local(7));
  ASSERT_EQ(h.wire.size(), 2u);
  // Both un-acked frames are resubmitted: the ARP request and the data
  // frame ("in case of doubt, we prefer to send a few duplicates").
  EXPECT_EQ(h.ip->resubmit_tx(0), 2u);
  ASSERT_EQ(h.wire.size(), 4u);
  // The data frame is among the resubmissions, with its original cookie.
  EXPECT_TRUE(h.wire[2].cookie == h.wire[1].cookie ||
              h.wire[3].cookie == h.wire[1].cookie);
}

TEST(Ip, PfOutVerdictGatesTransmission) {
  Host h(/*with_pf=*/true);
  h.ip->output(h.make_seg(Ipv4Addr(10, 1, 0, 2), 8080), 1);
  ASSERT_EQ(h.pf_queries.size(), 1u);
  EXPECT_EQ(h.pf_queries[0].first.dir, PfDir::Out);
  EXPECT_EQ(h.pf_queries[0].first.dport, 8080);
  EXPECT_TRUE(h.wire.empty());  // nothing sent before the verdict

  h.ip->pf_verdict(h.pf_queries[0].second, false);  // blocked
  EXPECT_TRUE(h.wire.empty());
  ASSERT_EQ(h.seg_done.size(), 1u);
  EXPECT_FALSE(h.seg_done[0].second);
  EXPECT_EQ(h.ip->stats().dropped_pf, 1u);
}

TEST(Ip, PfPendingResubmittedAfterPfCrash) {
  Host h(/*with_pf=*/true);
  h.ip->output(h.make_seg(Ipv4Addr(10, 1, 0, 2)), 1);
  ASSERT_EQ(h.pf_queries.size(), 1u);
  // PF died before answering; on its restart IP repeats the query.
  EXPECT_EQ(h.ip->resubmit_pf_pending(), 1u);
  ASSERT_EQ(h.pf_queries.size(), 2u);
  EXPECT_EQ(h.pf_queries[1].second, h.pf_queries[0].second);
  // The (single) verdict releases the packet: no loss, no duplicate.
  h.ip->pf_verdict(h.pf_queries[0].second, true);
  h.ip->pf_verdict(h.pf_queries[1].second, true);  // stale duplicate ignored
  EXPECT_EQ(h.ip->stats().tx_segs, 1u);
}

TEST(Ip, IcmpEchoAnswered) {
  Host h;
  chan::RichPtr ping = h.make_ping(Ipv4Addr(10, 1, 0, 2), 0x77, 56);
  h.ip->input(0, ping);
  EXPECT_EQ(h.ip->stats().icmp_echo_replies, 1u);
  // The reply goes through ARP like any packet.
  h.answer_arp(Ipv4Addr(10, 1, 0, 2), MacAddr::local(7));
  ASSERT_GE(h.wire.size(), 2u);
  auto flat = flatten(h.pools, h.wire.back().frame.header,
                      h.wire.back().frame.payload);
  ByteReader r{flat};
  EthHeader::parse(r);
  auto iph = Ipv4Header::parse(r);
  ASSERT_TRUE(iph.has_value());
  EXPECT_EQ(iph->protocol, kProtoIcmp);
  EXPECT_EQ(iph->dst, Ipv4Addr(10, 1, 0, 2));
  auto icmp = IcmpHeader::parse(r);
  ASSERT_TRUE(icmp.has_value());
  EXPECT_EQ(icmp->type, kIcmpEchoReply);
  EXPECT_EQ(icmp->id, 0x77);
  // The echoed payload matches byte for byte.
  for (int i = 0; i < 56; ++i) {
    EXPECT_EQ(std::to_integer<int>(
                  flat[kEthHeaderLen + kIpHeaderLen + kIcmpHeaderLen + i]),
              i);
  }
  // The request frame chunk was released (IP consumed it itself).
  EXPECT_EQ(h.ip->stats().rx_frames, 2u);  // ping + arp reply
}

TEST(Ip, PingOfDeathDroppedNotCrashed) {
  Host h;
  // A garbage ICMP frame: valid IP header, corrupt ICMP checksum.
  chan::RichPtr ping = h.make_ping(Ipv4Addr(10, 1, 0, 2), 1, 32);
  auto view = h.rx_pool->write_view(ping);
  view[kEthHeaderLen + kIpHeaderLen + 2] ^= std::byte{0xff};
  h.ip->input(0, ping);
  EXPECT_EQ(h.ip->stats().icmp_echo_replies, 0u);
  EXPECT_EQ(h.ip->stats().dropped_malformed, 1u);
  EXPECT_EQ(h.rx_pool->chunks_live(), 0u);  // frame released, nothing leaks

  // Truncated / lying IP headers die in the parser.
  chan::RichPtr tiny = h.rx_pool->alloc(kEthHeaderLen + 4);
  auto tview = h.rx_pool->write_view(tiny);
  tview[12] = std::byte{0x08};  // ethertype IPv4, body 4 bytes of garbage
  tview[13] = std::byte{0x00};
  h.ip->input(0, tiny);
  EXPECT_EQ(h.ip->stats().dropped_malformed, 2u);
}

TEST(Ip, DeliversToTransportByProtocol) {
  Host h;
  // Fabricate a TCP frame to our address.
  chan::RichPtr frame =
      h.rx_pool->alloc(kEthHeaderLen + kIpHeaderLen + kTcpHeaderLen);
  auto view = h.rx_pool->write_view(frame);
  ByteWriter w{view};
  EthHeader eth;
  eth.dst = MacAddr::local(1);
  eth.src = MacAddr::local(9);
  eth.ethertype = kEtherTypeIpv4;
  eth.serialize(w);
  Ipv4Header iph;
  iph.total_length = kIpHeaderLen + kTcpHeaderLen;
  iph.protocol = kProtoTcp;
  iph.src = Ipv4Addr(10, 1, 0, 2);
  iph.dst = Ipv4Addr(10, 1, 0, 1);
  iph.serialize(w);
  TcpHeader tcp;
  tcp.src_port = 1;
  tcp.dst_port = 2;
  tcp.flags = tcpflag::kAck;
  tcp.serialize(w);

  h.ip->input(0, frame);
  ASSERT_EQ(h.to_tcp.size(), 1u);
  EXPECT_EQ(h.to_tcp[0].l4_offset, kEthHeaderLen + kIpHeaderLen);
  EXPECT_EQ(h.to_tcp[0].l4_length, kTcpHeaderLen);
  EXPECT_EQ(h.to_tcp[0].src, Ipv4Addr(10, 1, 0, 2));
  EXPECT_TRUE(h.to_udp.empty());
  // The transport owns the frame until rx_done.
  EXPECT_EQ(h.rx_pool->chunks_live(), 1u);
  h.ip->rx_done(h.to_tcp[0].frame);
  EXPECT_EQ(h.rx_pool->chunks_live(), 0u);
}

TEST(Ip, ForeignDestinationNotDelivered) {
  Host h;
  chan::RichPtr frame =
      h.rx_pool->alloc(kEthHeaderLen + kIpHeaderLen + kUdpHeaderLen);
  auto view = h.rx_pool->write_view(frame);
  ByteWriter w{view};
  EthHeader eth;
  eth.dst = MacAddr::local(1);
  eth.ethertype = kEtherTypeIpv4;
  eth.serialize(w);
  Ipv4Header iph;
  iph.total_length = kIpHeaderLen + kUdpHeaderLen;
  iph.protocol = kProtoUdp;
  iph.src = Ipv4Addr(10, 1, 0, 2);
  iph.dst = Ipv4Addr(10, 1, 0, 99);  // not us; no forwarding on the edge
  iph.serialize(w);
  UdpHeader udp;
  udp.length = kUdpHeaderLen;
  udp.serialize(w);
  h.ip->input(0, frame);
  EXPECT_TRUE(h.to_udp.empty());
  EXPECT_EQ(h.rx_pool->chunks_live(), 0u);
}

TEST(Ip, ConfigSerializationRoundTrip) {
  Host h;
  const IpConfig& cfg = h.ip->config();
  const auto bytes = cfg.serialize();
  auto parsed = IpConfig::parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->interfaces.size(), 1u);
  EXPECT_EQ(parsed->interfaces[0].addr, Ipv4Addr(10, 1, 0, 1));
  EXPECT_EQ(parsed->interfaces[0].mac, MacAddr::local(1));
  EXPECT_EQ(parsed->interfaces[0].subnet.prefix_len, 24);
  ASSERT_EQ(parsed->routes.size(), 1u);
  EXPECT_EQ(parsed->routes[0].gateway, Ipv4Addr(10, 1, 0, 254));
  EXPECT_FALSE(
      IpConfig::parse(std::span(bytes).first(bytes.size() - 2)).has_value());
}
