#include <cstdio>
#include <memory>
#include <string>
#include <vector>
#include "src/core/apps.h"
#include "src/core/testbed.h"
using namespace newtos;
int main(int argc, char** argv) {
  TestbedOptions o;
  o.mode = StackMode::kSingleServer; o.nics = 5; o.tso = true;
  if (argc > 1 && std::string(argv[1]) == "split") o.mode = StackMode::kSplitSyscall;
  Testbed tb(o);
  std::vector<std::unique_ptr<apps::BulkReceiver>> rxs;
  std::vector<std::unique_ptr<apps::BulkSender>> txs;
  for (int i = 0; i < o.nics; ++i) {
    auto* rx_app = tb.peer().add_app("rx" + std::to_string(i));
    apps::BulkReceiver::Config rc; rc.port = 5001 + i; rc.record_series = false;
    rxs.push_back(std::make_unique<apps::BulkReceiver>(tb.peer(), rx_app, rc));
    rxs.back()->start();
    auto* tx_app = tb.newtos().add_app("tx" + std::to_string(i));
    apps::BulkSender::Config sc; sc.dst = tb.newtos().peer_addr(i); sc.port = 5001 + i;
    txs.push_back(std::make_unique<apps::BulkSender>(tb.newtos(), tx_app, sc));
    txs.back()->start();
  }
  std::vector<std::uint64_t> prev(o.nics, 0);
  for (int ms = 200; ms <= 1400; ms += 300) {
    tb.run_until(ms * sim::kMillisecond);
    std::printf("t=%dms per-link Mbps:", ms);
    for (int i = 0; i < o.nics; ++i) {
      std::printf(" %.0f", (rxs[i]->bytes() - prev[i]) * 8.0 / (0.3) / 1e6);
      prev[i] = rxs[i]->bytes();
    }
    auto* tcp = tb.newtos().tcp_engine();
    std::printf(" | retx=%llu rtos=%llu fr=%llu ooo(peer)=%llu",
                (unsigned long long)tcp->stats().bytes_retx,
                (unsigned long long)tcp->stats().rtos,
                (unsigned long long)tcp->stats().fast_retransmits,
                (unsigned long long)tb.peer().tcp_engine()->stats().ooo_dropped);
    auto* stack = tb.newtos().stack_server();
    if (stack) std::printf(" stack_busy=%.2f", stack->core().utilization(ms * sim::kMillisecond));
    std::printf("\n");
  }
  for (int i = 0; i < o.nics; ++i) {
    auto& nic = *tb.newtos().nic(i);
    std::printf("nic%d: tx=%llu descs=%llu ringfull=%llu nobuf=%llu wireutil=%.2f\n",
                i, (unsigned long long)nic.stats().tx_frames,
                (unsigned long long)nic.stats().tx_descs,
                (unsigned long long)nic.stats().tx_ring_full,
                (unsigned long long)nic.stats().rx_no_buffer,
                tb.wire(i).utilization(0, tb.sim().now()));
  }
  return 0;
}
