// Crash-recovery integration tests (Section V-D, Section VI-B/C).
//
// Each test injects a fault into one component while traffic flows and
// checks the recovery semantics the paper claims for it.
#include <gtest/gtest.h>

#include "src/core/apps.h"
#include "src/core/fault_injection.h"
#include "src/core/testbed.h"

using namespace newtos;

namespace {

// Full workload rig: bulk TCP out, ssh-like echo in, periodic DNS out.
struct Rig {
  Testbed tb;
  AppActor* tx_app;
  AppActor* rx_app;
  apps::BulkReceiver receiver;
  apps::BulkSender sender;
  AppActor* sshd_app;
  apps::EchoServer sshd;
  AppActor* ssh_app;
  apps::EchoClient ssh;
  AppActor* named_app;
  apps::DnsServer named;
  AppActor* resolver_app;
  apps::DnsClient resolver;
  FaultInjector faults;

  static apps::BulkReceiver::Config rx_cfg() {
    apps::BulkReceiver::Config c;
    c.record_series = false;
    return c;
  }
  static apps::BulkSender::Config tx_cfg(Testbed& tb) {
    apps::BulkSender::Config c;
    c.dst = tb.newtos().peer_addr(0);
    return c;
  }
  static apps::EchoClient::Config ssh_cfg(Testbed& tb) {
    apps::EchoClient::Config c;
    c.dst = tb.peer().peer_addr(0);
    return c;
  }
  static apps::DnsClient::Config dns_cfg(Testbed& tb) {
    apps::DnsClient::Config c;
    c.dst = tb.newtos().peer_addr(0);
    return c;
  }

  explicit Rig(const TestbedOptions& opts)
      : tb(opts),
        tx_app(tb.newtos().add_app("iperf_tx")),
        rx_app(tb.peer().add_app("iperf_rx")),
        receiver(tb.peer(), rx_app, rx_cfg()),
        sender(tb.newtos(), tx_app, tx_cfg(tb)),
        sshd_app(tb.newtos().add_app("sshd")),
        sshd(tb.newtos(), sshd_app, {}),
        ssh_app(tb.peer().add_app("ssh")),
        ssh(tb.peer(), ssh_app, ssh_cfg(tb)),
        named_app(tb.peer().add_app("named")),
        named(tb.peer(), named_app),
        resolver_app(tb.newtos().add_app("resolver")),
        resolver(tb.newtos(), resolver_app, dns_cfg(tb)),
        faults(tb.newtos(), /*seed=*/7) {
    receiver.start();
    sender.start();
    sshd.start();
    ssh.start();
    named.start();
    resolver.start();
  }

  std::uint64_t rx_bytes() const { return receiver.bytes(); }
};

TestbedOptions default_opts() {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  opts.pf_filler_rules = 64;
  return opts;
}

}  // namespace

TEST(Recovery, PfCrashIsLossless) {
  Rig rig(default_opts());
  rig.faults.inject_at(2 * sim::kSecond, servers::kPfName, FaultType::Crash);
  rig.tb.run_until(2500 * sim::kMillisecond);
  // PF restarted and recovered its rules from storage.
  auto* pf = static_cast<servers::PfServer*>(
      rig.tb.newtos().server(servers::kPfName));
  ASSERT_TRUE(pf->alive());
  ASSERT_NE(pf->engine(), nullptr);
  EXPECT_EQ(pf->engine()->rules().size(), 65u);  // 64 filler + keep-state

  const std::uint64_t before = rig.rx_bytes();
  rig.tb.run_until(5 * sim::kSecond);
  // Transfer kept running at a healthy rate across the crash.
  const double mbps = (rig.rx_bytes() - before) * 8.0 / 2.5 / 1e6;
  EXPECT_GT(mbps, 500.0);
  // No broken connections anywhere.
  EXPECT_EQ(rig.ssh.resets(), 0u);
  EXPECT_TRUE(rig.ssh.connected());
}

TEST(Recovery, IpCrashRecoversTransparently) {
  Rig rig(default_opts());
  rig.faults.inject_at(2 * sim::kSecond, servers::kIpName, FaultType::Crash);
  // The NIC must be reset (Section V-D): link bounces ~1.5 s, then traffic
  // resumes on the same connections.
  rig.tb.run_until(10 * sim::kSecond);
  auto* ip = static_cast<servers::IpServer*>(
      rig.tb.newtos().server(servers::kIpName));
  ASSERT_TRUE(ip->alive());
  ASSERT_NE(ip->engine(), nullptr);
  // Config recovered from the storage server.
  EXPECT_EQ(ip->engine()->config().interfaces.size(), 1u);
  EXPECT_GE(rig.tb.newtos().nic(0)->stats().resets, 1u);

  // Existing TCP connections survived and recovered their bitrate.
  EXPECT_EQ(rig.ssh.resets(), 0u);
  EXPECT_TRUE(rig.ssh.connected());
  const std::uint64_t before = rig.rx_bytes();
  rig.tb.run_until(12 * sim::kSecond);
  const double mbps = (rig.rx_bytes() - before) * 8.0 / 2.0 / 1e6;
  EXPECT_GT(mbps, 500.0);
}

TEST(Recovery, DriverCrashRecovers) {
  Rig rig(default_opts());
  rig.faults.inject_at(2 * sim::kSecond, servers::driver_name(0),
                       FaultType::Crash);
  rig.tb.run_until(10 * sim::kSecond);
  EXPECT_GE(rig.tb.newtos().nic(0)->stats().resets, 1u);
  EXPECT_EQ(rig.ssh.resets(), 0u);
  EXPECT_TRUE(rig.ssh.connected());
  const std::uint64_t before = rig.rx_bytes();
  rig.tb.run_until(12 * sim::kSecond);
  const double mbps = (rig.rx_bytes() - before) * 8.0 / 2.0 / 1e6;
  EXPECT_GT(mbps, 500.0);
}

TEST(Recovery, UdpCrashIsTransparentToSockets) {
  Rig rig(default_opts());
  rig.tb.run_until(2 * sim::kSecond);
  const std::uint64_t answered_before = rig.resolver.answered();
  rig.faults.inject(servers::kUdpName, FaultType::Crash);
  rig.tb.run_until(6 * sim::kSecond);
  // The resolver's socket was recreated from the storage server: queries
  // keep being answered without the app reopening anything.
  EXPECT_GT(rig.resolver.answered(), answered_before + 10);
}

TEST(Recovery, TcpCrashBreaksConnectionsButListenersRecover) {
  Rig rig(default_opts());
  rig.tb.run_until(2 * sim::kSecond);
  EXPECT_TRUE(rig.ssh.connected());
  rig.faults.inject(servers::kTcpName, FaultType::Crash);
  rig.tb.run_until(8 * sim::kSecond);
  // Established connections are gone (Table I), but the listening socket
  // was restored, so the client reconnected.
  EXPECT_TRUE(rig.ssh.connected());
  EXPECT_GE(rig.ssh.reconnects(), 2u);  // initial connect + post-crash
  // And the DNS path (UDP) was untouched.
  EXPECT_GT(rig.resolver.answered(), 20u);
}

TEST(Recovery, HangIsCaughtByHeartbeats) {
  Rig rig(default_opts());
  rig.faults.inject_at(2 * sim::kSecond, servers::kPfName, FaultType::Hang);
  rig.tb.run_until(6 * sim::kSecond);
  auto* rs = rig.tb.newtos().reincarnation();
  EXPECT_GE(rs->child_stats().at(servers::kPfName).hang_resets, 1u);
  // After the reset the system works again.
  const std::uint64_t before = rig.rx_bytes();
  rig.tb.run_until(8 * sim::kSecond);
  const double mbps = (rig.rx_bytes() - before) * 8.0 / 2.0 / 1e6;
  EXPECT_GT(mbps, 500.0);
}

TEST(Recovery, TcpCrashTransparentWithCheckpointing) {
  // The checkpointing-on twin of the test above: same rig, same crash, but
  // the established connections survive — zero reconnects (the Table I
  // limitation, removed).  tests/test_checkpoint.cc drills into the
  // mechanism; this twin pins the contrast next to the classic behaviour.
  TestbedOptions opts = default_opts();
  opts.tcp_checkpoint = true;
  Rig rig(opts);
  rig.tb.run_until(2 * sim::kSecond);
  EXPECT_TRUE(rig.ssh.connected());
  rig.faults.inject(servers::kTcpName, FaultType::Crash);
  rig.tb.run_until(8 * sim::kSecond);
  EXPECT_TRUE(rig.ssh.connected());
  EXPECT_EQ(rig.ssh.resets(), 0u);
  EXPECT_EQ(rig.ssh.reconnects(), 1u);  // the initial connect only
  EXPECT_GE(rig.tb.newtos().tcp_engine()->stats().conns_restored, 1u);
  EXPECT_GT(rig.resolver.answered(), 20u);
}

TEST(Recovery, SilentWedgeNeedsManualRestart) {
  Rig rig(default_opts());
  rig.faults.inject_at(2 * sim::kSecond, servers::kTcpName,
                       FaultType::SilentWedge);
  rig.tb.run_until(5 * sim::kSecond);
  // Heartbeats still answered: the reincarnation server saw nothing.
  auto* rs = rig.tb.newtos().reincarnation();
  EXPECT_EQ(rs->child_stats().at(servers::kTcpName).hang_resets, 0u);
  // But TCP is not doing its job any more.
  const std::uint64_t stalled = rig.rx_bytes();
  rig.tb.run_until(6 * sim::kSecond);
  EXPECT_LT((rig.rx_bytes() - stalled) * 8.0 / 1e6, 50.0);
  // Manual restart fixes it (paper: "we had to manually restart the TCP
  // component to be able to reconnect").
  rig.tb.newtos().manual_restart(servers::kTcpName);
  rig.tb.run_until(10 * sim::kSecond);
  EXPECT_TRUE(rig.ssh.connected());
}

TEST(Recovery, SilentWedgeAutoDetectedByWorkProbes) {
  // With work probes on, the reincarnation server notices that TCP answers
  // heartbeats but drops its work (the probe echo through IP/PF never
  // acks) and restarts it without operator help.  With checkpointing also
  // on, even the established connections survive the automatic restart.
  TestbedOptions opts = default_opts();
  opts.work_probes = true;
  opts.tcp_checkpoint = true;
  Rig rig(opts);
  rig.faults.inject_at(2 * sim::kSecond, servers::kTcpName,
                       FaultType::SilentWedge);
  rig.tb.run_until(5 * sim::kSecond);
  auto* rs = rig.tb.newtos().reincarnation();
  EXPECT_GE(rs->child_stats().at(servers::kTcpName).probe_resets, 1u);
  EXPECT_EQ(rs->child_stats().at(servers::kTcpName).hang_resets, 0u);
  // No manual restart — and the connections survived the reset.
  EXPECT_TRUE(rig.ssh.connected());
  EXPECT_EQ(rig.ssh.reconnects(), 1u);
  const std::uint64_t before = rig.rx_bytes();
  rig.tb.run_until(8 * sim::kSecond);
  const double mbps = (rig.rx_bytes() - before) * 8.0 / 3.0 / 1e6;
  EXPECT_GT(mbps, 500.0);
}

TEST(Recovery, StorageCrashStateIsRestoredByPeers) {
  Rig rig(default_opts());
  rig.tb.run_until(2 * sim::kSecond);
  rig.faults.inject(servers::kStoreName, FaultType::Crash);
  rig.tb.run_until(3 * sim::kSecond);
  // Everyone re-stored; a subsequent TCP crash still recovers listeners.
  rig.faults.inject(servers::kTcpName, FaultType::Crash);
  rig.tb.run_until(8 * sim::kSecond);
  EXPECT_TRUE(rig.ssh.connected());
}

TEST(Recovery, DeviceWedgeClearedByDriverRestart) {
  Rig rig(default_opts());
  rig.faults.inject_at(2 * sim::kSecond, servers::driver_name(0),
                       FaultType::DeviceWedge);
  rig.tb.run_until(4 * sim::kSecond);
  EXPECT_TRUE(rig.tb.newtos().nic(0)->wedged());
  rig.tb.newtos().manual_restart(servers::driver_name(0));
  rig.tb.run_until(8 * sim::kSecond);
  EXPECT_FALSE(rig.tb.newtos().nic(0)->wedged());
  EXPECT_TRUE(rig.ssh.connected());
}
