// End-to-end integration tests: full stack, both directions, every mode.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/apps.h"
#include "src/core/testbed.h"

using namespace newtos;

namespace {

// Bulk transfer from the NewtOS node to the peer for `dur` of virtual time;
// returns goodput in Mb/s measured at the receiver.
double run_bulk(Testbed& tb, sim::Time dur) {
  AppActor* tx_app = tb.newtos().add_app("iperf_tx");
  AppActor* rx_app = tb.peer().add_app("iperf_rx");

  apps::BulkReceiver::Config rc;
  rc.port = 5001;
  rc.record_series = false;
  apps::BulkReceiver receiver(tb.peer(), rx_app, rc);
  receiver.start();

  apps::BulkSender::Config sc;
  sc.dst = tb.newtos().peer_addr(0);
  sc.port = 5001;
  apps::BulkSender sender(tb.newtos(), tx_app, sc);
  sender.start();

  // Warm up (handshake, slow start), then measure.
  const sim::Time warmup = 500 * sim::kMillisecond;
  tb.run_until(warmup);
  const std::uint64_t start_bytes = receiver.bytes();
  tb.run_until(warmup + dur);
  const std::uint64_t bytes = receiver.bytes() - start_bytes;
  return static_cast<double>(bytes) * 8.0 /
         (static_cast<double>(dur) / 1e9) / 1e6;
}

}  // namespace

TEST(EndToEnd, SplitStackBulkTransfer) {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  Testbed tb(opts);
  const double mbps = run_bulk(tb, 1 * sim::kSecond);
  // A single gigabit link: should run near line rate, never above it.
  EXPECT_GT(mbps, 500.0);
  EXPECT_LE(mbps, 1000.0);
}

TEST(EndToEnd, SingleServerBulkTransfer) {
  TestbedOptions opts;
  opts.mode = StackMode::kSingleServer;
  Testbed tb(opts);
  const double mbps = run_bulk(tb, 1 * sim::kSecond);
  EXPECT_GT(mbps, 500.0);
  EXPECT_LE(mbps, 1000.0);
}

TEST(EndToEnd, SplitNoSyscallBulkTransfer) {
  TestbedOptions opts;
  opts.mode = StackMode::kSplit;
  Testbed tb(opts);
  const double mbps = run_bulk(tb, 1 * sim::kSecond);
  EXPECT_GT(mbps, 400.0);
}

TEST(EndToEnd, MinixSyncIsSlow) {
  TestbedOptions opts;
  opts.mode = StackMode::kMinixSync;
  Testbed tb(opts);
  const double mbps = run_bulk(tb, 1 * sim::kSecond);
  EXPECT_GT(mbps, 20.0);
  EXPECT_LT(mbps, 500.0);  // nowhere near line rate (Table II line 1)
}

// The Table II multi-NIC shape (folded in from the old debug_probe4
// scratch): five gigabit links driven concurrently by the single-server
// stack with TSO must aggregate well beyond any single link.
TEST(EndToEnd, MultiNicAggregateThroughput) {
  TestbedOptions opts;
  opts.mode = StackMode::kSingleServer;
  opts.nics = 5;
  opts.tso = true;
  opts.app_write_size = 65536;
  Testbed tb(opts);

  std::vector<std::unique_ptr<apps::BulkReceiver>> rxs;
  std::vector<std::unique_ptr<apps::BulkSender>> txs;
  for (int i = 0; i < opts.nics; ++i) {
    AppActor* rx_app = tb.peer().add_app("rx" + std::to_string(i));
    apps::BulkReceiver::Config rc;
    rc.port = static_cast<std::uint16_t>(5001 + i);
    rc.record_series = false;
    rxs.push_back(std::make_unique<apps::BulkReceiver>(tb.peer(), rx_app, rc));
    rxs.back()->start();
    AppActor* tx_app = tb.newtos().add_app("tx" + std::to_string(i));
    apps::BulkSender::Config sc;
    sc.dst = tb.newtos().peer_addr(i);
    sc.port = rc.port;
    sc.write_size = opts.app_write_size;
    txs.push_back(std::make_unique<apps::BulkSender>(tb.newtos(), tx_app, sc));
    txs.back()->start();
  }

  tb.run_until(400 * sim::kMillisecond);
  std::uint64_t start = 0;
  for (auto& r : rxs) start += r->bytes();
  tb.run_until(1 * sim::kSecond);
  std::uint64_t bytes = 0;
  for (auto& r : rxs) bytes += r->bytes();
  const double gbps = static_cast<double>(bytes - start) * 8.0 / 0.6 / 1e9;
  EXPECT_GT(gbps, 3.0);  // five links, all active
  EXPECT_LE(gbps, 5.0);  // never above the physics
}

TEST(EndToEnd, EchoAndDns) {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  Testbed tb(opts);

  AppActor* srv_app = tb.newtos().add_app("sshd");
  apps::EchoServer echo_srv(tb.newtos(), srv_app, {});
  echo_srv.start();

  AppActor* cli_app = tb.peer().add_app("ssh");
  apps::EchoClient::Config ec;
  ec.dst = tb.peer().peer_addr(0);
  apps::EchoClient echo_cli(tb.peer(), cli_app, ec);
  echo_cli.start();

  AppActor* dns_srv_app = tb.peer().add_app("named");
  apps::DnsServer dns_srv(tb.peer(), dns_srv_app);
  dns_srv.start();

  AppActor* dns_cli_app = tb.newtos().add_app("resolver");
  apps::DnsClient::Config dc;
  dc.dst = tb.newtos().peer_addr(0);
  apps::DnsClient dns_cli(tb.newtos(), dns_cli_app, dc);
  dns_cli.start();

  tb.run_until(5 * sim::kSecond);

  EXPECT_TRUE(echo_cli.connected());
  EXPECT_GT(echo_cli.ok(), 20u);
  EXPECT_EQ(echo_cli.resets(), 0u);
  EXPECT_GT(dns_cli.sent(), 15u);
  // UDP may lose the odd datagram; essentially all queries are answered.
  EXPECT_GE(dns_cli.answered() + 2, dns_cli.sent());
}
