// Cross-plane fault interactions under the supervision plane.
//
// PR 5 proved each recovery path in isolation with the fault applied by the
// test and the restart done manually where the reincarnation server could
// not see it.  With RuntimeKnobs::supervision on there is no manual path
// left: every manifestation class of src/core/fault_injection.h must be
// *detected* by the right rung of the escalation ladder and *healed* while
// the rest of the stack keeps its state — checkpointed connections take the
// zero-reconnect path through a probe-triggered restart, a wedged NIC is
// reset by the driver watchdog while flows on the other port keep running,
// and a slowed-down PF is caught by the SLO rung while the per-shard
// verdict cache keeps fast-path flows alive.  Every test also rides the
// Testbed teardown loan-leak check.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/apps.h"
#include "src/core/fault_injection.h"
#include "src/core/testbed.h"
#include "src/servers/driver_server.h"
#include "src/servers/reincarnation.h"

using namespace newtos;

namespace {

TestbedOptions chaos_opts() {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  opts.nics = 2;
  opts.pf_filler_rules = 128;
  opts.tcp_checkpoint = true;
  opts.supervision = true;
  return opts;
}

// The supervised rig: ssh-like echo in, INBOUND bulk (the load a Slowdown
// needs to manifest — it exercises drv -> ip -> pf -> tcp), periodic DNS.
struct ChaosRig {
  Testbed tb;
  AppActor* rx_app;
  apps::BulkReceiver receiver;
  AppActor* tx_app;
  apps::BulkSender sender;
  AppActor* sshd_app;
  apps::EchoServer sshd;
  AppActor* ssh_app;
  apps::EchoClient ssh;
  AppActor* named_app;
  apps::DnsServer named;
  AppActor* resolver_app;
  apps::DnsClient resolver;
  FaultInjector faults;

  static apps::BulkReceiver::Config rx_cfg() {
    apps::BulkReceiver::Config c;
    c.record_series = false;
    return c;
  }
  static apps::BulkSender::Config tx_cfg(Testbed& tb, int link) {
    apps::BulkSender::Config c;
    c.dst = tb.peer().peer_addr(link);
    return c;
  }
  static apps::EchoClient::Config ssh_cfg(Testbed& tb) {
    apps::EchoClient::Config c;
    c.dst = tb.peer().peer_addr(0);
    return c;
  }
  static apps::DnsClient::Config dns_cfg(Testbed& tb) {
    apps::DnsClient::Config c;
    c.dst = tb.newtos().peer_addr(0);
    return c;
  }

  explicit ChaosRig(const TestbedOptions& opts, int bulk_link = 1)
      : tb(opts),
        rx_app(tb.newtos().add_app("iperf_rx")),
        receiver(tb.newtos(), rx_app, rx_cfg()),
        tx_app(tb.peer().add_app("iperf_tx")),
        sender(tb.peer(), tx_app, tx_cfg(tb, bulk_link)),
        sshd_app(tb.newtos().add_app("sshd")),
        sshd(tb.newtos(), sshd_app, {}),
        ssh_app(tb.peer().add_app("ssh")),
        ssh(tb.peer(), ssh_app, ssh_cfg(tb)),
        named_app(tb.peer().add_app("named")),
        named(tb.peer(), named_app),
        resolver_app(tb.newtos().add_app("resolver")),
        resolver(tb.newtos(), resolver_app, dns_cfg(tb)),
        faults(tb.newtos(), /*seed=*/7) {
    receiver.start();
    sender.start();
    sshd.start();
    ssh.start();
    named.start();
    resolver.start();
  }

  servers::ReincarnationServer::ChildStats stat_of(const std::string& comp) {
    const auto& m = tb.newtos().reincarnation()->child_stats();
    auto it = m.find(comp);
    return it == m.end() ? servers::ReincarnationServer::ChildStats{}
                         : it->second;
  }
  std::uint64_t wedge_resets(const std::string& drv_name) {
    auto* drv = dynamic_cast<servers::DriverServer*>(
        tb.newtos().server(drv_name));
    return drv != nullptr ? drv->wedge_resets() : 0;
  }
};

// SilentWedge of the TCP replica while tcp_checkpoint is on: the probe rung
// must catch what heartbeats cannot, and because the restart it triggers is
// an ordinary reincarnation, the checkpointed echo connection must take the
// zero-reconnect path — the client never even notices.
TEST(Chaos, SilentWedgeTcpTakesZeroReconnectPath) {
  ChaosRig rig(chaos_opts());
  rig.tb.run_until(2 * sim::kSecond);
  ASSERT_TRUE(rig.ssh.connected());
  ASSERT_GT(rig.receiver.bytes(), 0u) << "inbound bulk load never started";
  const std::uint64_t resets_before = rig.ssh.resets();
  const std::uint64_t reconnects_before = rig.ssh.reconnects();

  rig.faults.inject(servers::kTcpName, FaultType::SilentWedge);
  rig.tb.run_until(6 * sim::kSecond);

  const auto st = rig.stat_of(servers::kTcpName);
  EXPECT_GE(st.probe_resets, 1u) << "probe rung never fired";
  EXPECT_EQ(st.hang_resets, 0u) << "a silent wedge answers heartbeats";
  EXPECT_GE(st.restarts, 1u);
  EXPECT_GE(st.detect_ms, 0.0);

  // The zero-reconnect path: same socket, no resets, echo still advancing.
  EXPECT_EQ(rig.ssh.resets(), resets_before);
  EXPECT_EQ(rig.ssh.reconnects(), reconnects_before);
  EXPECT_TRUE(rig.ssh.connected());
  const std::uint64_t ok_at_6s = rig.ssh.ok();
  rig.tb.run_until(7 * sim::kSecond);
  EXPECT_GT(rig.ssh.ok(), ok_at_6s) << "echo session did not resume";
}

// DeviceWedge with the multi-queue RSS fast path on: the driver watchdog
// (counters flat while the link is up and frames keep arriving) must reset
// the NIC without restarting anything, traffic on the other port keeps
// running throughout, and the Testbed teardown proves the reset reclaimed
// every fast-path loan.
TEST(Chaos, DeviceWedgeUnderRssRecoversByNicReset) {
  TestbedOptions opts = chaos_opts();
  opts.rx_queues = 4;
  opts.tcp_shards = 4;
  ChaosRig rig(opts, /*bulk_link=*/1);
  rig.tb.run_until(2 * sim::kSecond);
  ASSERT_GT(rig.receiver.bytes(), 0u);

  rig.faults.inject("drv0", FaultType::DeviceWedge);

  // The echo/DNS sessions ride nic0 and stall while it is wedged; the bulk
  // stream rides nic1 and must keep flowing through detection + reset.
  const std::uint64_t bulk_before = rig.receiver.bytes();
  rig.tb.run_until(3 * sim::kSecond);
  EXPECT_GE(rig.wedge_resets("drv0"), 1u) << "watchdog never reset the NIC";
  EXPECT_GT(rig.receiver.bytes(), bulk_before)
      << "traffic on the surviving port stalled";
  EXPECT_GE(rig.stat_of("drv0").restarts, 0u);  // reset, not reincarnation

  // After the link comes back (1.5 s bounce), nic0 service resumes.
  rig.tb.run_until(6 * sim::kSecond);
  EXPECT_FALSE(rig.tb.newtos().nic(0)->wedged());
  EXPECT_TRUE(rig.tb.newtos().nic(0)->link_up());
  const std::uint64_t ok_now = rig.ssh.ok();
  const std::uint64_t dns_now = rig.resolver.answered();
  rig.tb.run_until(7 * sim::kSecond);
  EXPECT_GT(rig.ssh.ok(), ok_now) << "echo never came back after the reset";
  EXPECT_GT(rig.resolver.answered(), dns_now);
}

// Slowdown of PF while the RSS fast path is on: the bulk flow's verdict is
// cached per shard, so the slowed-down filter only throttles *new* flows —
// the established fast-path stream keeps its rate while the SLO rung
// detects the slowdown and restarts PF.
TEST(Chaos, PfSlowdownCaughtWhileVerdictCacheCarriesFastPath) {
  TestbedOptions opts = chaos_opts();
  opts.rx_queues = 4;
  opts.tcp_shards = 4;
  ChaosRig rig(opts, /*bulk_link=*/0);
  rig.tb.run_until(2 * sim::kSecond);
  ASSERT_GT(rig.receiver.bytes(), 0u);

  rig.faults.inject(servers::kPfName, FaultType::Slowdown, 64.0);

  const std::uint64_t bulk_before = rig.receiver.bytes();
  rig.tb.run_until(4 * sim::kSecond);
  const auto st = rig.stat_of(servers::kPfName);
  EXPECT_GE(st.slowdown_resets + st.probe_resets + st.hang_resets, 1u)
      << "no ladder rung caught the slowdown";
  EXPECT_GE(st.restarts, 1u);
  // The established bulk flow rides cached verdicts: it must have made real
  // progress during the two seconds PF was degraded and restarting.
  EXPECT_GT(rig.receiver.bytes(),
            bulk_before + 10u * 1024u * 1024u)
      << "fast-path flow starved while PF was slow";

  // And PF service itself is healthy again: new flows still get verdicts.
  rig.tb.run_until(6 * sim::kSecond);
  EXPECT_TRUE(rig.tb.newtos().server(servers::kPfName)->ready());
  const std::uint64_t ok_now = rig.ssh.ok();
  rig.tb.run_until(7 * sim::kSecond);
  EXPECT_GT(rig.ssh.ok(), ok_now);
}

// A compressed campaign: one fault of every manifestation class, each on a
// fresh supervised testbed, each detected by the matching rung and healed
// (or, for SyncHang, correctly reported as reboot-required) without any
// manual restart.
TEST(Chaos, CampaignSmokeCoversEveryManifestation) {
  const struct {
    const char* component;
    FaultType type;
  } cases[] = {
      {servers::kTcpName, FaultType::Crash},
      {servers::kIpName, FaultType::Hang},
      {servers::kTcpName, FaultType::SilentWedge},
      {servers::kPfName, FaultType::Slowdown},
      {"drv0", FaultType::DeviceWedge},
      {servers::kTcpName, FaultType::SyncHang},
  };
  for (const auto& c : cases) {
    SCOPED_TRACE(std::string(c.component) + " " + to_string(c.type));
    ChaosRig rig(chaos_opts(), /*bulk_link=*/0);
    rig.tb.run_until(2 * sim::kSecond);
    const auto b = rig.stat_of(c.component);
    const std::uint64_t wedge_b = rig.wedge_resets(c.component);
    rig.faults.inject(c.component, c.type, 64.0);
    rig.tb.run_until(8 * sim::kSecond);

    const auto s = rig.stat_of(c.component);
    switch (c.type) {
      case FaultType::Crash:
        EXPECT_GT(s.crashes, b.crashes);
        break;
      case FaultType::Hang:
        EXPECT_GT(s.hang_resets, b.hang_resets);
        break;
      case FaultType::SilentWedge:
        EXPECT_GT(s.probe_resets, b.probe_resets);
        break;
      case FaultType::Slowdown:
        EXPECT_GT(s.slowdown_resets + s.probe_resets + s.hang_resets,
                  b.slowdown_resets + b.probe_resets + b.hang_resets);
        break;
      case FaultType::DeviceWedge:
        EXPECT_GT(rig.wedge_resets(c.component), wedge_b);
        break;
      case FaultType::SyncHang:
        EXPECT_TRUE(rig.tb.newtos().requires_reboot());
        break;
    }
    if (c.type == FaultType::SyncHang) continue;
    // Healed: the component is back and both foreground services advance.
    EXPECT_TRUE(rig.tb.newtos().server(c.component)->ready());
    const std::uint64_t ok_now = rig.ssh.ok();
    const std::uint64_t dns_now = rig.resolver.answered();
    rig.tb.run_until(9 * sim::kSecond);
    EXPECT_GT(rig.ssh.ok(), ok_now);
    EXPECT_GT(rig.resolver.answered(), dns_now);
  }
}

// Supervision stays strictly opt-in: with the knob off the reincarnation
// server must keep its legacy shape — a silent wedge is NOT probed away
// (the PR 5 manual-restart path still owns it).
TEST(Chaos, SupervisionDefaultsOff) {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  opts.nics = 1;
  Testbed tb(opts);
  AppActor* sshd_app = tb.newtos().add_app("sshd");
  apps::EchoServer sshd(tb.newtos(), sshd_app, {});
  sshd.start();
  AppActor* ssh_app = tb.peer().add_app("ssh");
  apps::EchoClient::Config ec;
  ec.dst = tb.peer().peer_addr(0);
  apps::EchoClient ssh(tb.peer(), ssh_app, ec);
  ssh.start();
  FaultInjector faults(tb.newtos(), 7);

  tb.run_until(2 * sim::kSecond);
  faults.inject(servers::kTcpName, FaultType::SilentWedge);
  tb.run_until(5 * sim::kSecond);

  const auto& stats = tb.newtos().reincarnation()->child_stats();
  auto it = stats.find(servers::kTcpName);
  if (it != stats.end()) {
    EXPECT_EQ(it->second.probe_resets, 0u);
    EXPECT_EQ(it->second.slowdown_resets, 0u);
    EXPECT_EQ(it->second.restarts, 0u);
  }
  // The wedge is still there; the classic manual restart clears it (the
  // client needs a couple of seconds to notice the reset and reconnect).
  tb.newtos().manual_restart(servers::kTcpName);
  tb.run_until(8 * sim::kSecond);
  const std::uint64_t ok_now = ssh.ok();
  tb.run_until(10 * sim::kSecond);
  EXPECT_GT(ssh.ok(), ok_now);
}

}  // namespace
