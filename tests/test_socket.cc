// The object-oriented async socket API (TcpSocket/UdpSocket/TcpListener)
// and the per-app submission/completion rings underneath it.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/socket.h"
#include "src/core/socket_ring.h"
#include "src/core/testbed.h"
#include "src/servers/proto.h"

using namespace newtos;

namespace {

TestbedOptions options(StackMode mode) {
  TestbedOptions opts;
  opts.mode = mode;
  return opts;
}

}  // namespace

// Open/connect/close lifecycle, across every stack arrangement: the
// SYSCALL-server path (packed kSockBatch channel messages), the combined
// stack, and the direct-trap split stack all route the same SQ flush.
TEST(SocketObjects, TcpLifecycleAllModes) {
  for (StackMode mode : {StackMode::kSplitSyscall, StackMode::kSingleServer,
                         StackMode::kSplit}) {
    SCOPED_TRACE(to_string(mode));
    Testbed tb(options(mode));

    AppActor* srv_app = tb.peer().add_app("srv");
    TcpListener listener(*srv_app);
    std::vector<std::unique_ptr<TcpSocket>> accepted;
    listener.on_event([&](net::TcpEvent ev) {
      if (ev != net::TcpEvent::AcceptReady) return;
      while (auto c = listener.accept()) accepted.push_back(std::move(c));
    });
    bool listen_ok = false;
    listener.bind_listen(net::Ipv4Addr{}, 7000, 4,
                         [&](bool ok) { listen_ok = ok; });

    AppActor* cli_app = tb.newtos().add_app("cli");
    auto sock = std::make_unique<TcpSocket>(*cli_app);
    bool connected = false;
    sock->on_event([&](net::TcpEvent ev) {
      if (ev == net::TcpEvent::Connected) connected = true;
    });
    bool call_ok = false;
    sock->connect(tb.newtos().peer_addr(0), 7000,
                  [&](bool ok) { call_ok = ok; });

    tb.run_until(500 * sim::kMillisecond);
    EXPECT_TRUE(listen_ok);
    EXPECT_TRUE(call_ok);
    EXPECT_TRUE(connected);
    EXPECT_TRUE(sock->valid());
    ASSERT_EQ(accepted.size(), 1u);
    EXPECT_TRUE(accepted[0]->valid());

    bool close_ok = false;
    sock->close([&](bool ok) { close_ok = ok; });
    tb.run_until(1 * sim::kSecond);
    EXPECT_TRUE(close_ok);
    EXPECT_FALSE(sock->valid());
  }
}

// A connect to a port nobody listens on completes with a Reset event, not
// a Connected one — the error completion surfaces through the same ring.
TEST(SocketObjects, ConnectRefusedDeliversReset) {
  Testbed tb(options(StackMode::kSplitSyscall));
  AppActor* cli_app = tb.newtos().add_app("cli");
  TcpSocket sock(*cli_app);
  bool connected = false;
  bool reset = false;
  sock.on_event([&](net::TcpEvent ev) {
    if (ev == net::TcpEvent::Connected) connected = true;
    if (ev == net::TcpEvent::Reset) reset = true;
  });
  bool call_ok = false;
  sock.connect(tb.newtos().peer_addr(0), 9999,
               [&](bool ok) { call_ok = ok; });
  tb.run_until(1 * sim::kSecond);
  EXPECT_TRUE(call_ok);  // the SYN was submitted fine
  EXPECT_FALSE(connected);
  EXPECT_TRUE(reset);
}

// Binding a port that is already taken fails the second bind_listen — the
// in-batch open sentinel resolves each listener to its own fresh socket.
TEST(SocketObjects, BindConflictFails) {
  Testbed tb(options(StackMode::kSplitSyscall));
  AppActor* app = tb.newtos().add_app("srv");
  TcpListener first(*app);
  TcpListener second(*app);
  bool first_ok = false;
  bool second_ok = true;
  first.bind_listen(net::Ipv4Addr{}, 8080, 4,
                    [&](bool ok) { first_ok = ok; });
  second.bind_listen(net::Ipv4Addr{}, 8080, 4,
                     [&](bool ok) { second_ok = ok; });
  tb.run_until(200 * sim::kMillisecond);
  EXPECT_TRUE(first_ok);
  EXPECT_FALSE(second_ok);
}

// UDP datagram flow: recvfrom reports the sender's address and port, and
// a reply sent to them arrives back.
TEST(SocketObjects, UdpRecvfromAndReply) {
  Testbed tb(options(StackMode::kSplitSyscall));

  AppActor* srv_app = tb.peer().add_app("named");
  UdpSocket server(*srv_app);
  net::Ipv4Addr seen_src;
  std::uint16_t seen_sport = 0;
  std::size_t seen_len = 0;
  server.on_event([&](net::TcpEvent) {
    while (auto d = server.recvfrom()) {
      seen_src = d->src;
      seen_sport = d->sport;
      seen_len = d->data.size();
      server.sendto(static_cast<std::uint32_t>(d->data.size()), d->src,
                    d->sport, {});
    }
  });
  server.bind(net::Ipv4Addr{}, 5353, [](bool) {});

  AppActor* cli_app = tb.newtos().add_app("res");
  UdpSocket client(*cli_app);
  std::size_t replies = 0;
  client.on_event([&](net::TcpEvent) {
    while (client.recvfrom()) ++replies;
  });
  bool ready = false;
  client.connect(tb.newtos().peer_addr(0), 5353,
                 [&](bool ok) { ready = ok; });
  tb.run_until(100 * sim::kMillisecond);
  ASSERT_TRUE(ready);
  cli_app->call([&](sim::Context&) {
    client.sendto(64, net::Ipv4Addr{}, 0, [](bool) {});
  });

  tb.run_until(600 * sim::kMillisecond);
  EXPECT_EQ(seen_len, 64u);
  EXPECT_EQ(seen_src.value, tb.newtos().addr(0).value);
  EXPECT_NE(seen_sport, 0);
  EXPECT_EQ(replies, 1u);
}

// Connections queue in the listener's backlog until the application gets
// around to accepting them.
TEST(SocketObjects, ListenerBacklogHoldsPendingAccepts) {
  Testbed tb(options(StackMode::kSplitSyscall));

  AppActor* srv_app = tb.peer().add_app("srv");
  TcpListener listener(*srv_app);
  // No AcceptReady handling yet: connections must wait in the backlog.
  listener.bind_listen(net::Ipv4Addr{}, 7100, 4, [](bool) {});

  std::vector<std::unique_ptr<TcpSocket>> clients;
  int connected = 0;
  for (int i = 0; i < 3; ++i) {
    AppActor* cli_app = tb.newtos().add_app("cli" + std::to_string(i));
    auto sock = std::make_unique<TcpSocket>(*cli_app);
    sock->on_event([&](net::TcpEvent ev) {
      if (ev == net::TcpEvent::Connected) ++connected;
    });
    sock->connect(tb.newtos().peer_addr(0), 7100, [](bool) {});
    clients.push_back(std::move(sock));
  }

  tb.run_until(500 * sim::kMillisecond);
  EXPECT_EQ(connected, 3);

  // Now drain the backlog in one go.
  std::vector<std::unique_ptr<TcpSocket>> accepted;
  srv_app->call([&](sim::Context&) {
    while (auto c = listener.accept()) accepted.push_back(std::move(c));
  });
  tb.run_until(600 * sim::kMillisecond);
  EXPECT_EQ(accepted.size(), 3u);
}

// Completions of one SQ flush arrive in submission order, under a single
// doorbell: open -> bind -> connect, where the later ops name the socket
// the open creates (kSockFromBatchOpen).
TEST(SocketRingBatching, CompletionsArriveInSubmissionOrder) {
  Testbed tb(options(StackMode::kSplitSyscall));
  AppActor* app = tb.newtos().add_app("app");
  SocketRing& ring = app->ring();

  std::vector<std::uint16_t> order;
  std::vector<bool> oks;
  auto record = [&](const SockCqe& c) {
    order.push_back(c.opcode);
    oks.push_back(c.ok);
  };

  SockSqe open;
  open.opcode = servers::kSockOpen;
  open.proto = 'U';
  ring.enqueue(open, record);
  SockSqe bind;
  bind.opcode = servers::kSockBind;
  bind.proto = 'U';
  bind.sock = servers::kSockFromBatchOpen;
  bind.arg1 = 5454;
  ring.enqueue(bind, record);
  SockSqe conn;
  conn.opcode = servers::kSockConnect;
  conn.proto = 'U';
  conn.sock = servers::kSockFromBatchOpen;
  conn.arg0 = tb.newtos().peer_addr(0).value;
  conn.arg1 = 53;
  ring.enqueue(conn, record);

  tb.run_until(100 * sim::kMillisecond);

  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], servers::kSockOpen);
  EXPECT_EQ(order[1], servers::kSockBind);
  EXPECT_EQ(order[2], servers::kSockConnect);
  EXPECT_TRUE(oks[0]);
  EXPECT_TRUE(oks[1]);  // the sentinel resolved to the socket just opened
  EXPECT_TRUE(oks[2]);

  // All three ops rode one doorbell — the amortization the rings exist for.
  EXPECT_EQ(ring.ops(), 3u);
  EXPECT_EQ(ring.doorbells(), 1u);
  EXPECT_EQ(ring.completions(), 3u);
}

// Two sockets of the same protocol opening in one flush must not alias:
// an op chained onto the FIRST socket after the SECOND's open was queued
// cannot use the nearest-preceding-open sentinel — it is held back and
// replayed with the real id instead.
TEST(SocketRingBatching, TwoOpensInOneFlushDoNotAlias) {
  Testbed tb(options(StackMode::kSplitSyscall));
  AppActor* app = tb.newtos().add_app("app");
  UdpSocket u1(*app);
  UdpSocket u2(*app);

  bool u1_bind = false;
  bool u2_bind = false;
  bool u1_conn = false;
  u1.bind(net::Ipv4Addr{}, 6001, [&](bool ok) { u1_bind = ok; });
  u2.bind(net::Ipv4Addr{}, 6002, [&](bool ok) { u2_bind = ok; });
  // Queued after u2's open: must bind to u1, not the nearest open (u2).
  u1.connect(tb.newtos().peer_addr(0), 53, [&](bool ok) { u1_conn = ok; });

  tb.run_until(200 * sim::kMillisecond);
  EXPECT_TRUE(u1_bind);
  EXPECT_TRUE(u2_bind);
  EXPECT_TRUE(u1_conn);
  ASSERT_TRUE(u1.valid());
  ASSERT_TRUE(u2.valid());
  EXPECT_NE(u1.id(), u2.id());

  // The connect must have landed on the socket bound to 6001.
  for (const auto& rec : tb.newtos().udp_engine()->snapshot()) {
    if (rec.lport == 6001) {
      EXPECT_EQ(rec.pport, 53);
    }
    if (rec.lport == 6002) {
      EXPECT_EQ(rec.pport, 0);
    }
  }
}

// The deprecated flat shim still works (a batch of one per call).
TEST(SocketApiShim, OpenCloseRoundTrip) {
  Testbed tb(options(StackMode::kSplitSyscall));
  AppActor* app = tb.newtos().add_app("legacy");
  SocketApi& api = tb.newtos().sockets();

  SocketApi::Handle handle;
  api.open(*app, 'T', [&](SocketApi::Handle h) { handle = h; });
  tb.run_until(50 * sim::kMillisecond);
  EXPECT_TRUE(handle.valid());

  bool closed = false;
  api.close(*app, handle, [&](bool ok) { closed = ok; });
  tb.run_until(100 * sim::kMillisecond);
  EXPECT_TRUE(closed);
}
