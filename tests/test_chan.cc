// Unit tests: channels — SPSC rings (incl. a real-thread stress test),
// pools with rich pointers, request database, registry and channel manager.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/chan/channel.h"
#include "src/chan/pool.h"
#include "src/chan/registry.h"
#include "src/chan/request_db.h"
#include "src/chan/spsc_ring.h"

using namespace newtos::chan;

// --- SPSC ring -----------------------------------------------------------------------

TEST(SpscRing, FifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(i));
  int out;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, FullRejectsWithoutBlocking) {
  SpscRing<int> ring(4);
  int pushed = 0;
  while (ring.try_push(pushed)) ++pushed;
  EXPECT_GE(pushed, 4);
  int out;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_TRUE(ring.try_push(99));  // slot freed
}

TEST(SpscRing, SizeTracksOccupancy) {
  SpscRing<int> ring(16);
  EXPECT_TRUE(ring.empty());
  ring.try_push(1);
  ring.try_push(2);
  EXPECT_EQ(ring.size(), 2u);
  int out;
  ring.try_pop(out);
  EXPECT_EQ(ring.size(), 1u);
}

TEST(SpscRing, ResetDropsContents) {
  SpscRing<int> ring(8);
  ring.try_push(1);
  ring.reset();
  EXPECT_TRUE(ring.empty());
  int out;
  EXPECT_FALSE(ring.try_pop(out));
}

// Real-concurrency property: with one producer and one consumer thread, all
// items arrive exactly once, in order, with no locks anywhere.
TEST(SpscRing, ConcurrentStressPreservesFifo) {
  constexpr std::uint64_t kItems = 200000;
  SpscRing<std::uint64_t> ring(1024);
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kItems; ++i) {
      while (!ring.try_push(i)) {
      }
    }
  });
  std::uint64_t expect = 0;
  while (expect < kItems) {
    std::uint64_t v;
    if (ring.try_pop(v)) {
      ASSERT_EQ(v, expect);
      ++expect;
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// --- Pool ------------------------------------------------------------------------------

TEST(Pool, AllocWriteReadRoundTrip) {
  Pool pool(1, "t", 1 << 16);
  RichPtr p = pool.alloc(100);
  ASSERT_TRUE(p.valid());
  EXPECT_EQ(p.length, 100u);
  auto w = pool.write_view(p);
  w[0] = std::byte{42};
  w[99] = std::byte{7};
  auto r = pool.read_view(p);
  EXPECT_EQ(std::to_integer<int>(r[0]), 42);
  EXPECT_EQ(std::to_integer<int>(r[99]), 7);
}

TEST(Pool, ExhaustionReturnsNull) {
  Pool pool(1, "t", 256);
  RichPtr a = pool.alloc(128);
  RichPtr b = pool.alloc(128);
  RichPtr c = pool.alloc(128);
  EXPECT_TRUE(a.valid());
  EXPECT_TRUE(b.valid());
  EXPECT_FALSE(c.valid());
  EXPECT_EQ(pool.failed_allocs(), 1u);
}

TEST(Pool, FreeListRecyclesChunks) {
  Pool pool(1, "t", 1 << 12);
  RichPtr a = pool.alloc(1000);
  pool.release(a);
  RichPtr b = pool.alloc(1000);  // should reuse the freed slot
  EXPECT_EQ(b.offset, a.offset);
  // Many alloc/free cycles never exhaust a pool with one live chunk.
  for (int i = 0; i < 10000; ++i) {
    RichPtr p = pool.alloc(1000);
    ASSERT_TRUE(p.valid());
    pool.release(p);
  }
}

TEST(Pool, RefcountsDelayFree) {
  Pool pool(1, "t", 1 << 12);
  RichPtr p = pool.alloc(64);
  pool.addref(p);
  EXPECT_FALSE(pool.release(p));  // one ref left
  EXPECT_TRUE(pool.live(p));
  EXPECT_TRUE(pool.release(p));
  EXPECT_FALSE(pool.live(p));
}

TEST(Pool, ResetInvalidatesOldGeneration) {
  Pool pool(1, "t", 1 << 12);
  RichPtr p = pool.alloc(64);
  pool.reset();
  EXPECT_FALSE(pool.live(p));
  EXPECT_TRUE(pool.read_view(p).empty());   // stale pointer reads nothing
  EXPECT_FALSE(pool.release(p));            // stale frees are no-ops
  RichPtr q = pool.alloc(64);
  EXPECT_NE(q.generation, p.generation);
}

TEST(Pool, BytesLiveAccounting) {
  Pool pool(1, "t", 1 << 14);
  RichPtr a = pool.alloc(100);
  RichPtr b = pool.alloc(200);
  EXPECT_EQ(pool.bytes_live(), 300u);
  pool.release(a);
  EXPECT_EQ(pool.bytes_live(), 200u);
  pool.release(b);
  EXPECT_EQ(pool.bytes_live(), 0u);
}

TEST(PoolRegistry, ResolvesAcrossPools) {
  PoolRegistry reg;
  Pool& a = reg.create("alice", "buf", 4096);
  Pool& b = reg.create("bob", "buf", 4096);
  EXPECT_NE(a.id(), b.id());
  RichPtr p = a.alloc(32);
  a.write_view(p)[0] = std::byte{9};
  EXPECT_EQ(std::to_integer<int>(reg.read(p)[0]), 9);
  RichPtr bogus{999, 0, 32, 1};
  EXPECT_TRUE(reg.read(bogus).empty());
}

TEST(Pool, DmaWriteRespectsBounds) {
  Pool pool(1, "t", 4096);
  RichPtr p = pool.alloc(64);
  std::vector<std::byte> small(64, std::byte{5});
  EXPECT_TRUE(pool.dma_write(p, small));
  std::vector<std::byte> big(65, std::byte{5});
  EXPECT_FALSE(pool.dma_write(p, big));
  pool.reset();
  EXPECT_FALSE(pool.dma_write(p, small));  // stale generation
}

// --- Queue + doorbell ---------------------------------------------------------------------

TEST(Queue, DoorbellFiresOnceOnSend) {
  Queue q("t", 16);
  int rings = 0;
  q.doorbell().arm([&] { ++rings; });
  Message m;
  q.try_send(m);
  q.try_send(m);  // bell consumed by first send
  EXPECT_EQ(rings, 1);
  q.doorbell().arm([&] { ++rings; });
  q.try_send(m);
  EXPECT_EQ(rings, 2);
}

TEST(Queue, CountsFailures) {
  Queue q("t", 2);
  Message m;
  while (q.try_send(m)) {
  }
  EXPECT_GE(q.send_failures(), 1u);
}

// --- Request database ------------------------------------------------------------------------

TEST(RequestDb, CompleteReturnsCookie) {
  RequestDb db;
  const auto id = db.add("ip", 0xdead, {});
  std::uint64_t cookie = 0;
  EXPECT_TRUE(db.complete(id, &cookie));
  EXPECT_EQ(cookie, 0xdeadu);
  EXPECT_FALSE(db.complete(id));  // stale replies are rejected
}

TEST(RequestDb, AbortPeerRunsActionsInOrder) {
  RequestDb db;
  std::vector<std::uint64_t> aborted;
  auto record = [&](std::uint64_t, std::uint64_t cookie) {
    aborted.push_back(cookie);
  };
  db.add("ip", 1, record);
  db.add("pf", 2, record);
  db.add("ip", 3, record);
  EXPECT_EQ(db.abort_peer("ip"), 2u);
  EXPECT_EQ(aborted, (std::vector<std::uint64_t>{1, 3}));
  EXPECT_EQ(db.size(), 1u);  // the pf request survives
}

TEST(RequestDb, AbortActionMayResubmit) {
  RequestDb db;
  int aborts = 0;
  db.add("ip", 1, [&](std::uint64_t, std::uint64_t) {
    ++aborts;
    db.add("ip", 2, {});  // resubmission from within an abort action
  });
  EXPECT_EQ(db.abort_peer("ip"), 1u);
  EXPECT_EQ(aborts, 1);
  EXPECT_EQ(db.size(), 1u);
}

// --- Registry / channel manager ------------------------------------------------------------------

TEST(Registry, SubscribeAfterPublishReplays) {
  Registry reg;
  reg.publish("k", Published{"alice", 7});
  int ups = 0;
  bool was_replay = false;
  reg.subscribe("k", [&](const std::string&, const Published& p, bool up,
                         bool replay) {
    ++ups;
    was_replay = replay;
    EXPECT_TRUE(up);
    EXPECT_EQ(p.value, 7u);
  });
  EXPECT_EQ(ups, 1);
  EXPECT_TRUE(was_replay);
}

TEST(Registry, LiveTransitionsAreNotReplays) {
  Registry reg;
  int downs = 0;
  bool live_seen = false;
  reg.subscribe("k", [&](const std::string&, const Published&, bool up,
                         bool replay) {
    if (up && !replay) live_seen = true;
    if (!up) ++downs;
  });
  reg.publish("k", Published{"alice", 1});
  EXPECT_TRUE(live_seen);
  reg.unpublish("k");
  EXPECT_EQ(downs, 1);
  EXPECT_FALSE(reg.lookup("k").has_value());
}

TEST(ChannelManager, CredentialsAreChecked) {
  ChannelManager mgr;
  Queue q("t", 8);
  const auto cred = mgr.export_queue("tcp", "ip", &q);
  EXPECT_EQ(mgr.attach("ip", cred), &q);
  EXPECT_EQ(mgr.attach("mallory", cred), nullptr);  // wrong grantee
  EXPECT_EQ(mgr.attach("ip", cred + 1000), nullptr);  // bogus credential
}

TEST(ChannelManager, RevokeAllInvalidatesCreatorGrants) {
  ChannelManager mgr;
  Queue q("t", 8);
  const auto cred = mgr.export_queue("tcp", "ip", &q);
  EXPECT_EQ(mgr.revoke_all("tcp"), 1u);
  EXPECT_EQ(mgr.attach("ip", cred), nullptr);
}
