// Unit tests: the TCP engine over a lossless / lossy in-process "wire".
//
// Two TcpEngines are wired back to back through a tiny harness that plays
// IP + wire: TxSegs become L4Packets delivered to the other side, with
// optional drops.  This exercises the state machine, data transfer,
// retransmission and teardown without the multiserver machinery.
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "src/net/tcp.h"
#include "src/sim/rng.h"
#include "src/sim/sim.h"

using namespace newtos;
using namespace newtos::net;

namespace {

class Harness {
 public:
  explicit Harness(TcpOptions opts = TcpOptions{}, double loss_a_to_b = 0.0)
      : loss_(loss_a_to_b), rng_(1234) {
    pool_a_ = &pools_.create("a", "buf", 8u << 20);
    pool_b_ = &pools_.create("b", "buf", 8u << 20);
    rx_pool_ = &pools_.create("wire", "rx", 32u << 20);
    a_ = make_engine(pool_a_, addr_a_, addr_b_, opts, /*to_b=*/true);
    b_ = make_engine(pool_b_, addr_b_, addr_a_, opts, /*to_b=*/false);
  }

  TcpEngine& a() { return *a_; }
  TcpEngine& b() { return *b_; }
  sim::Simulator& sim() { return sim_; }
  std::vector<std::pair<SockId, TcpEvent>> a_events, b_events;
  int dropped = 0;

  void run(sim::Time t) { sim_.run_until(sim_.now() + t); }

  // App helpers.
  bool send_bytes(TcpEngine& e, SockId s, std::uint32_t n,
                  std::uint8_t fill = 0x5a) {
    chan::RichPtr p = e.alloc_payload(n);
    if (!p.valid()) return false;
    chan::Pool* pool = &e == a_.get() ? pool_a_ : pool_b_;
    auto view = pool->write_view(p);
    std::fill(view.begin(), view.end(), std::byte{fill});
    return e.send(s, p);
  }
  std::vector<std::byte> recv_all(TcpEngine& e, SockId s) {
    std::vector<std::byte> out(e.recv_available(s));
    e.recv(s, out);
    return out;
  }

 private:
  class Timers : public TimerService {
   public:
    explicit Timers(sim::Simulator* s) : sim_(s) {}
    TimerId schedule(sim::Time d, std::function<void()> fn) override {
      return sim_->after(d, std::move(fn));
    }
    void cancel(TimerId id) override { sim_->cancel(id); }

   private:
    sim::Simulator* sim_;
  };
  class SimClock : public Clock {
   public:
    explicit SimClock(sim::Simulator* s) : sim_(s) {}
    sim::Time now() const override { return sim_->now(); }

   private:
    sim::Simulator* sim_;
  };

  std::unique_ptr<TcpEngine> make_engine(chan::Pool* pool, Ipv4Addr self,
                                         Ipv4Addr peer, TcpOptions opts,
                                         bool to_b) {
    TcpEngine::Env env;
    env.clock = &clock_;
    env.timers = &timers_;
    env.pools = &pools_;
    env.buf_pool = pool;
    env.src_for = [self](Ipv4Addr) { return self; };
    env.rx_done = [this](const chan::RichPtr& f) { rx_pool_->release(f); };
    env.notify = [this, to_b](SockId s, TcpEvent ev) {
      (to_b ? a_events : b_events).push_back({s, ev});
    };
    env.output = [this, to_b, self, peer](TxSeg&& seg, std::uint64_t cookie) {
      // "IP": build the L4 bytes into one rx chunk and deliver after a
      // short wire delay.  Sender header freed immediately via seg_done.
      TcpEngine& sender = to_b ? *a_ : *b_;
      TcpEngine& receiver = to_b ? *b_ : *a_;
      const bool drop = to_b && loss_ > 0.0 && rng_.chance(loss_);
      auto flat = flatten(pools_, seg.l4_header, seg.payload);
      sender.seg_done(cookie, !drop);
      if (drop) {
        ++dropped;
        return;
      }
      chan::RichPtr frame =
          rx_pool_->alloc(static_cast<std::uint32_t>(flat.size()));
      ASSERT_TRUE(frame.valid());
      rx_pool_->dma_write(frame, flat);
      sim_.after(50 * sim::kMicrosecond,
                 [this, &receiver, frame, self, peer, len = flat.size()] {
                   L4Packet pkt;
                   pkt.frame = frame;
                   pkt.l4_offset = 0;
                   pkt.l4_length = static_cast<std::uint16_t>(len);
                   pkt.src = self;
                   pkt.dst = peer;
                   receiver.input(std::move(pkt));
                 });
    };
    return std::make_unique<TcpEngine>(std::move(env), opts);
  }

  sim::Simulator sim_;
  SimClock clock_{&sim_};
  Timers timers_{&sim_};
  chan::PoolRegistry pools_;
  chan::Pool* pool_a_;
  chan::Pool* pool_b_;
  chan::Pool* rx_pool_;
  Ipv4Addr addr_a_{Ipv4Addr(10, 0, 0, 1)};
  Ipv4Addr addr_b_{Ipv4Addr(10, 0, 0, 2)};
  double loss_;
  sim::Rng rng_;
  std::unique_ptr<TcpEngine> a_;
  std::unique_ptr<TcpEngine> b_;
};

// Establishes a connection a->b:80 and returns {client, server} sock ids.
std::pair<SockId, SockId> establish(Harness& h) {
  SockId ls = h.b().open();
  EXPECT_TRUE(h.b().bind(ls, Ipv4Addr{}, 80));
  EXPECT_TRUE(h.b().listen(ls, 8));
  SockId cs = h.a().open();
  EXPECT_TRUE(h.a().connect(cs, Ipv4Addr(10, 0, 0, 2), 80));
  // Handshake segments may be lost in lossy harnesses; SYN retransmission
  // needs up to a few seconds.
  std::optional<SockId> child;
  for (int spin = 0; spin < 1000 && !child; ++spin) {
    h.run(10 * sim::kMillisecond);
    child = h.b().accept(ls);
  }
  EXPECT_TRUE(child.has_value());
  EXPECT_EQ(h.a().state(cs), TcpState::Established);
  EXPECT_EQ(h.b().state(*child), TcpState::Established);
  return {cs, child.value_or(0)};
}

}  // namespace

TEST(Tcp, ThreeWayHandshake) {
  Harness h;
  auto [cs, ss] = establish(h);
  bool connected = false;
  for (auto& [s, ev] : h.a_events) {
    if (s == cs && ev == TcpEvent::Connected) connected = true;
  }
  EXPECT_TRUE(connected);
  EXPECT_EQ(h.a().stats().conns_established, 1u);
}

TEST(Tcp, ConnectToClosedPortGetsReset) {
  Harness h;
  SockId cs = h.a().open();
  EXPECT_TRUE(h.a().connect(cs, Ipv4Addr(10, 0, 0, 2), 81));
  h.run(10 * sim::kMillisecond);
  bool reset = false;
  for (auto& [s, ev] : h.a_events) {
    if (s == cs && ev == TcpEvent::Reset) reset = true;
  }
  EXPECT_TRUE(reset);
  EXPECT_EQ(h.a().connection_count(), 0u);
}

TEST(Tcp, DataTransferPreservesBytes) {
  Harness h;
  auto [cs, ss] = establish(h);
  ASSERT_TRUE(h.send_bytes(h.a(), cs, 10000, 0x77));
  h.run(50 * sim::kMillisecond);
  auto data = h.recv_all(h.b(), ss);
  ASSERT_EQ(data.size(), 10000u);
  for (auto b : data) ASSERT_EQ(std::to_integer<int>(b), 0x77);
}

TEST(Tcp, BidirectionalTransfer) {
  Harness h;
  auto [cs, ss] = establish(h);
  ASSERT_TRUE(h.send_bytes(h.a(), cs, 5000, 1));
  ASSERT_TRUE(h.send_bytes(h.b(), ss, 7000, 2));
  h.run(50 * sim::kMillisecond);
  EXPECT_EQ(h.recv_all(h.b(), ss).size(), 5000u);
  EXPECT_EQ(h.recv_all(h.a(), cs).size(), 7000u);
}

TEST(Tcp, SendBufferLimitsEnforced) {
  TcpOptions opts;
  opts.sndbuf_max = 16384;
  Harness h(opts);
  auto [cs, ss] = establish(h);
  // Peer consumes nothing; the advertised-window/sndbuf caps the queue.
  EXPECT_TRUE(h.send_bytes(h.a(), cs, 16384));
  EXPECT_FALSE(h.send_bytes(h.a(), cs, 1));  // full
  EXPECT_EQ(h.a().send_space(cs), 0u);
}

TEST(Tcp, GracefulCloseBothDirections) {
  Harness h;
  auto [cs, ss] = establish(h);
  ASSERT_TRUE(h.send_bytes(h.a(), cs, 1000));
  h.run(20 * sim::kMillisecond);
  h.recv_all(h.b(), ss);
  EXPECT_TRUE(h.a().close(cs));
  h.run(20 * sim::kMillisecond);
  EXPECT_EQ(h.b().state(ss), TcpState::CloseWait);
  EXPECT_TRUE(h.b().close(ss));
  h.run(20 * sim::kMillisecond);
  // Client lingers in TIME_WAIT then evaporates; server side is gone.
  EXPECT_EQ(h.b().connection_count(), 0u);
  h.run(2 * sim::kSecond);
  EXPECT_EQ(h.a().connection_count(), 0u);
}

TEST(Tcp, AbortSendsRst) {
  Harness h;
  auto [cs, ss] = establish(h);
  h.a().abort(cs);
  h.run(10 * sim::kMillisecond);
  bool reset = false;
  for (auto& [s, ev] : h.b_events) {
    if (s == ss && ev == TcpEvent::Reset) reset = true;
  }
  EXPECT_TRUE(reset);
  EXPECT_EQ(h.a().connection_count(), 0u);
  EXPECT_EQ(h.b().connection_count(), 0u);
}

// Property sweep: transfers complete intact across a range of loss rates
// (retransmission, fast retransmit, NewReno, RTO all get exercised).
class TcpLoss : public ::testing::TestWithParam<double> {};

TEST_P(TcpLoss, TransferSurvivesLoss) {
  TcpOptions opts;
  opts.rto_min = 50 * sim::kMillisecond;  // speed up recovery in this test
  Harness h(opts, GetParam());
  auto [cs, ss] = establish(h);
  std::uint32_t total = 0;
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(h.send_bytes(h.a(), cs, 8000, static_cast<std::uint8_t>(i)));
    total += 8000;
  }
  std::vector<std::byte> got;
  for (int spins = 0; spins < 600 && got.size() < total; ++spins) {
    h.run(50 * sim::kMillisecond);
    auto part = h.recv_all(h.b(), ss);
    got.insert(got.end(), part.begin(), part.end());
  }
  ASSERT_EQ(got.size(), total);
  // Verify content ordering: byte k belongs to write k/8000.
  for (std::size_t k = 0; k < got.size(); k += 997) {
    ASSERT_EQ(std::to_integer<std::uint8_t>(got[k]),
              static_cast<std::uint8_t>(k / 8000));
  }
  if (GetParam() > 0.0) {
    EXPECT_GT(h.dropped, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(LossRates, TcpLoss,
                         ::testing::Values(0.0, 0.01, 0.05, 0.15));

TEST(Tcp, ListenerRecoveryRoundTrip) {
  Harness h;
  SockId ls = h.b().open();
  ASSERT_TRUE(h.b().bind(ls, Ipv4Addr(10, 0, 0, 2), 22));
  ASSERT_TRUE(h.b().listen(ls, 4));
  const auto recs = h.b().listeners();
  ASSERT_EQ(recs.size(), 1u);
  const auto bytes = TcpEngine::serialize_listeners(recs);
  auto parsed = TcpEngine::parse_listeners(bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 1u);
  EXPECT_EQ((*parsed)[0].port, 22);
  EXPECT_EQ((*parsed)[0].addr, Ipv4Addr(10, 0, 0, 2));
}

TEST(Tcp, ConnectionKeysForPfRebuild) {
  Harness h;
  establish(h);
  const auto keys = h.a().connection_keys();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0].protocol, kProtoTcp);
  EXPECT_EQ(keys[0].dst, Ipv4Addr(10, 0, 0, 2));
  EXPECT_EQ(keys[0].dport, 80);
}

TEST(Tcp, TsoEmitsSuperframes) {
  TcpOptions opts;
  opts.tso = true;
  Harness h(opts);
  auto [cs, ss] = establish(h);
  ASSERT_TRUE(h.send_bytes(h.a(), cs, 120000));
  std::vector<std::byte> got;
  for (int spin = 0; spin < 50 && got.size() < 120000u; ++spin) {
    h.run(50 * sim::kMillisecond);
    auto part = h.recv_all(h.b(), ss);
    got.insert(got.end(), part.begin(), part.end());
  }
  // Without TSO 120000/1460 = 83 data segments; with TSO far fewer suffice
  // (slow start still paces the first few).  The harness "wire" carries
  // superframes whole; NIC segmentation is tested separately.
  EXPECT_LT(h.a().stats().segs_out, 40u);
  EXPECT_EQ(got.size(), 120000u);
}

TEST(Tcp, EphemeralPortsDoNotCollide) {
  Harness h;
  SockId ls = h.b().open();
  ASSERT_TRUE(h.b().bind(ls, Ipv4Addr{}, 80));
  ASSERT_TRUE(h.b().listen(ls, 64));
  std::set<std::uint16_t> ports;
  for (int i = 0; i < 20; ++i) {
    SockId s = h.a().open();
    ASSERT_TRUE(h.a().connect(s, Ipv4Addr(10, 0, 0, 2), 80));
    auto t = h.a().tuple(s);
    ASSERT_TRUE(t.has_value());
    EXPECT_TRUE(ports.insert(t->lport).second) << "duplicate port";
  }
  h.run(50 * sim::kMillisecond);
  EXPECT_EQ(h.a().stats().conns_established, 20u);
}
