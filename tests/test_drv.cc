// Unit tests: simulated NIC (rings, DMA, TSO split, reset) and wire.
#include <gtest/gtest.h>

#include "src/drv/nic.h"
#include "src/drv/wire.h"
#include "src/net/checksum.h"
#include "src/net/headers.h"

using namespace newtos;
using namespace newtos::drv;

namespace {

struct Rig {
  sim::Simulator sim;
  chan::PoolRegistry pools;
  chan::Pool* pool;
  Wire wire;
  SimNic a;
  SimNic b;

  explicit Rig(Wire::Config wc = Wire::Config{},
               SimNic::Config nc = SimNic::Config{})
      : pool(&pools.create("t", "buf", 8u << 20)),
        wire(sim, wc),
        a(sim, pools, net::MacAddr::local(1), nc),
        b(sim, pools, net::MacAddr::local(2), nc) {
    a.attach_wire(&wire, 0);
    b.attach_wire(&wire, 1);
  }

  // Builds a valid ETH+IP+TCP frame header chunk addressed a -> b.
  chan::RichPtr make_frame_hdr(std::uint32_t payload_len,
                               std::uint32_t seq = 1000) {
    chan::RichPtr hdr = pool->alloc(
        net::kEthHeaderLen + net::kIpHeaderLen + net::kTcpHeaderLen);
    auto view = pool->write_view(hdr);
    net::ByteWriter w{view};
    net::EthHeader eth;
    eth.dst = b.mac();
    eth.src = a.mac();
    eth.ethertype = net::kEtherTypeIpv4;
    eth.serialize(w);
    net::Ipv4Header ip;
    ip.total_length = static_cast<std::uint16_t>(
        net::kIpHeaderLen + net::kTcpHeaderLen + payload_len);
    ip.id = 7;
    ip.protocol = net::kProtoTcp;
    ip.src = net::Ipv4Addr(10, 0, 0, 1);
    ip.dst = net::Ipv4Addr(10, 0, 0, 2);
    ip.serialize(w);
    net::TcpHeader tcp;
    tcp.src_port = 1;
    tcp.dst_port = 2;
    tcp.seq = seq;
    tcp.flags = net::tcpflag::kAck | net::tcpflag::kPsh;
    tcp.serialize(w);
    return hdr;
  }
};

}  // namespace

TEST(Wire, DeliversWithSerializationDelay) {
  sim::Simulator sim;
  Wire::Config wc;
  wc.bits_per_sec = 1e9;
  wc.propagation = 1000;
  Wire wire(sim, wc);
  sim::Time delivered_at = -1;
  wire.attach(1, [&](std::vector<std::byte>&&) { delivered_at = sim.now(); });
  std::vector<std::byte> frame(1514);
  const sim::Time done = wire.transmit(0, std::move(frame));
  // (1514 + 24 overhead) * 8 bits at 1 Gb/s = 12304 ns.
  EXPECT_EQ(done, 12304);
  sim.run_to_completion();
  EXPECT_EQ(delivered_at, done + 1000);
}

TEST(Wire, BackToBackFramesQueueAtLineRate) {
  sim::Simulator sim;
  Wire wire(sim, Wire::Config{});
  const sim::Time t1 = wire.transmit(0, std::vector<std::byte>(1514));
  const sim::Time t2 = wire.transmit(0, std::vector<std::byte>(1514));
  EXPECT_EQ(t2, 2 * t1);  // second frame waits for the first
}

TEST(Wire, LossDropsDeterministically) {
  sim::Simulator sim;
  Wire::Config wc;
  wc.loss = 0.5;
  wc.seed = 9;
  Wire wire(sim, wc);
  int got = 0;
  wire.attach(1, [&](std::vector<std::byte>&&) { ++got; });
  for (int i = 0; i < 1000; ++i)
    wire.transmit(0, std::vector<std::byte>(100));
  sim.run_to_completion();
  EXPECT_GT(got, 350);
  EXPECT_LT(got, 650);
  EXPECT_EQ(wire.frames_lost() + wire.frames_delivered(), 1000u);
}

TEST(Nic, TxRxRoundTripDma) {
  Rig rig;
  chan::RichPtr hdr = rig.make_frame_hdr(100);
  chan::RichPtr pay = rig.pool->alloc(100);
  auto pv = rig.pool->write_view(pay);
  std::fill(pv.begin(), pv.end(), std::byte{0x3c});

  chan::RichPtr rx_buf = rig.pool->alloc(2048);
  ASSERT_TRUE(rig.b.rx_post(rx_buf));

  chan::RichPtr got;
  std::uint32_t got_len = 0;
  rig.b.set_rx([&](chan::RichPtr buf, std::uint32_t len) {
    got = buf;
    got_len = len;
  });
  bool tx_done = false;
  rig.a.set_tx_done([&](std::uint64_t cookie, bool ok) {
    EXPECT_EQ(cookie, 77u);
    EXPECT_TRUE(ok);
    tx_done = true;
  });

  net::TxFrame f;
  f.header = hdr;
  f.payload = {pay};
  ASSERT_TRUE(rig.a.tx_post(std::move(f), 77));
  rig.sim.run_to_completion();

  EXPECT_TRUE(tx_done);
  ASSERT_EQ(got_len, 54u + 100u);
  auto bytes = rig.pools.read(got);
  EXPECT_EQ(std::to_integer<int>(bytes[54]), 0x3c);  // payload DMA'd intact
}

TEST(Nic, MacFilterDropsForeignFrames) {
  Rig rig;
  chan::RichPtr hdr = rig.make_frame_hdr(0);
  // Rewrite dst MAC to someone else.
  auto view = rig.pool->write_view(hdr);
  view[0] = std::byte{0x02};
  view[5] = std::byte{0x99};
  chan::RichPtr rx_buf = rig.pool->alloc(2048);
  rig.b.rx_post(rx_buf);
  int got = 0;
  rig.b.set_rx([&](chan::RichPtr, std::uint32_t) { ++got; });
  net::TxFrame f;
  f.header = hdr;
  rig.a.tx_post(std::move(f), 1);
  rig.sim.run_to_completion();
  EXPECT_EQ(got, 0);
  EXPECT_EQ(rig.b.rx_ring_level(), 1);  // buffer not consumed
}

TEST(Nic, NoBufferMeansDrop) {
  Rig rig;
  net::TxFrame f;
  f.header = rig.make_frame_hdr(0);
  rig.a.tx_post(std::move(f), 1);
  rig.sim.run_to_completion();
  EXPECT_EQ(rig.b.stats().rx_no_buffer, 1u);
}

TEST(Nic, TsoSplitsSuperframeCorrectly) {
  Rig rig;
  constexpr std::uint32_t kPayload = 4000;  // 3 frames at mss 1460
  chan::RichPtr hdr = rig.make_frame_hdr(kPayload, /*seq=*/5000);
  chan::RichPtr pay = rig.pool->alloc(kPayload);
  auto pv = rig.pool->write_view(pay);
  for (std::uint32_t i = 0; i < kPayload; ++i)
    pv[i] = std::byte{static_cast<std::uint8_t>(i)};

  for (int i = 0; i < 4; ++i) rig.b.rx_post(rig.pool->alloc(2048));
  std::vector<std::vector<std::byte>> frames;
  rig.b.set_rx([&](chan::RichPtr buf, std::uint32_t len) {
    auto bytes = rig.pools.read(chan::RichPtr{buf.pool, buf.offset, len,
                                              buf.generation});
    frames.emplace_back(bytes.begin(), bytes.end());
  });

  net::TxFrame f;
  f.header = hdr;
  f.payload = {pay};
  f.offload.tso = true;
  f.offload.mss = 1460;
  rig.a.tx_post(std::move(f), 1);
  rig.sim.run_to_completion();

  ASSERT_EQ(frames.size(), 3u);
  std::uint32_t expect_seq = 5000;
  std::uint32_t seen_payload = 0;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    const auto& fr = frames[i];
    net::ByteReader r{fr};
    auto eth = net::EthHeader::parse(r);
    ASSERT_TRUE(eth.has_value());
    auto ip = net::Ipv4Header::parse(r, /*verify=*/true);  // csum re-done
    ASSERT_TRUE(ip.has_value()) << "bad IP checksum on piece " << i;
    auto tcp = net::TcpHeader::parse(r);
    ASSERT_TRUE(tcp.has_value());
    EXPECT_EQ(tcp->seq, expect_seq);
    const std::uint32_t piece =
        ip->total_length - net::kIpHeaderLen - net::kTcpHeaderLen;
    // PSH only on the last piece.
    EXPECT_EQ(tcp->has(net::tcpflag::kPsh), i == frames.size() - 1);
    // Payload bytes are the right slice of the original.
    for (std::uint32_t k = 0; k < piece; k += 131) {
      ASSERT_EQ(std::to_integer<std::uint8_t>(fr[54 + k]),
                static_cast<std::uint8_t>(seen_payload + k));
    }
    expect_seq += piece;
    seen_payload += piece;
  }
  EXPECT_EQ(seen_payload, kPayload);
  EXPECT_EQ(rig.a.stats().tx_frames, 3u);
  EXPECT_EQ(rig.a.stats().tx_descs, 1u);
}

TEST(Nic, ResetBouncesLinkAndClearsRings) {
  Rig rig;
  bool link_state = true;
  std::vector<bool> transitions;
  rig.a.set_link_change([&](bool up) {
    link_state = up;
    transitions.push_back(up);
  });
  net::TxFrame f;
  f.header = rig.make_frame_hdr(0);
  // Fill a few descriptors, then reset before they complete.
  rig.a.tx_post(std::move(f), 1);
  rig.a.reset();
  EXPECT_FALSE(rig.a.link_up());
  EXPECT_EQ(rig.a.tx_ring_free(), 256);
  rig.sim.run_to_completion();
  EXPECT_TRUE(rig.a.link_up());
  ASSERT_EQ(transitions.size(), 2u);
  EXPECT_FALSE(transitions[0]);
  EXPECT_TRUE(transitions[1]);
  EXPECT_EQ(rig.a.stats().resets, 1u);
}

TEST(Nic, WedgeDropsUntilReset) {
  Rig rig;
  rig.b.rx_post(rig.pool->alloc(2048));
  int got = 0;
  rig.b.set_rx([&](chan::RichPtr, std::uint32_t) { ++got; });
  rig.b.set_wedged(true);
  net::TxFrame f;
  f.header = rig.make_frame_hdr(0);
  rig.a.tx_post(std::move(f), 1);
  rig.sim.run_to_completion();
  EXPECT_EQ(got, 0);
  rig.b.reset();
  EXPECT_FALSE(rig.b.wedged());
}

TEST(Nic, RingFullRejectsDescriptors) {
  Rig rig;
  // Detach the wire so nothing drains.
  SimNic lone(rig.sim, rig.pools, net::MacAddr::local(9), SimNic::Config{});
  int accepted = 0;
  for (int i = 0; i < 300; ++i) {
    net::TxFrame f;
    f.header = rig.make_frame_hdr(0);
    if (lone.tx_post(std::move(f), static_cast<std::uint64_t>(i)))
      ++accepted;
  }
  EXPECT_EQ(accepted, 256);
  EXPECT_GE(lone.stats().tx_ring_full, 44u);
}
