// Unit tests: wire formats, checksums, packet buffers, the packet filter
// and the ARP engine.
#include <gtest/gtest.h>

#include <vector>

#include "src/chan/pool.h"
#include "src/net/arp.h"
#include "src/net/checksum.h"
#include "src/net/headers.h"
#include "src/net/pbuf.h"
#include "src/net/pf.h"

using namespace newtos;
using namespace newtos::net;

namespace {

class FakeClock : public Clock {
 public:
  sim::Time now() const override { return t; }
  sim::Time t = 0;
};

class FakeTimers : public TimerService {
 public:
  TimerId schedule(sim::Time, std::function<void()> fn) override {
    fns.push_back(std::move(fn));
    return static_cast<TimerId>(fns.size());
  }
  void cancel(TimerId) override {}
  std::vector<std::function<void()>> fns;
};

}  // namespace

// --- checksum -------------------------------------------------------------------------

TEST(Checksum, Rfc1071Example) {
  // Classic example: the checksum of a buffer including its own (correct)
  // checksum folds to zero.
  std::vector<std::byte> data = {std::byte{0x00}, std::byte{0x01},
                                 std::byte{0xf2}, std::byte{0x03},
                                 std::byte{0xf4}, std::byte{0xf5},
                                 std::byte{0xf6}, std::byte{0xf7}};
  const std::uint16_t c = checksum(data);
  data.push_back(std::byte{static_cast<std::uint8_t>(c >> 8)});
  data.push_back(std::byte{static_cast<std::uint8_t>(c)});
  EXPECT_EQ(checksum(data), 0);
}

TEST(Checksum, OddLengthHandled) {
  std::vector<std::byte> data = {std::byte{0xab}};
  EXPECT_EQ(checksum(data), static_cast<std::uint16_t>(~0xab00 & 0xffff));
}

TEST(Checksum, PartialSumsCompose) {
  std::vector<std::byte> data(64);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = std::byte{static_cast<std::uint8_t>(i * 7)};
  const std::uint16_t whole = checksum(data);
  // Even split point keeps 16-bit word alignment.
  std::uint32_t sum = checksum_partial(std::span(data).first(32));
  sum = checksum_partial(std::span(data).subspan(32), sum);
  EXPECT_EQ(checksum_finish(sum), whole);
}

// --- headers ---------------------------------------------------------------------------

TEST(Headers, EthRoundTrip) {
  std::byte buf[kEthHeaderLen];
  ByteWriter w{buf};
  EthHeader h;
  h.dst = MacAddr::local(1);
  h.src = MacAddr::local(2);
  h.ethertype = kEtherTypeIpv4;
  h.serialize(w);
  ASSERT_TRUE(w.ok());
  ByteReader r{buf};
  auto parsed = EthHeader::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dst, h.dst);
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->ethertype, kEtherTypeIpv4);
}

TEST(Headers, ArpRoundTrip) {
  std::byte buf[kArpPacketLen];
  ByteWriter w{buf};
  ArpPacket p;
  p.op = kArpOpRequest;
  p.sender_mac = MacAddr::local(3);
  p.sender_ip = Ipv4Addr(10, 0, 0, 1);
  p.target_ip = Ipv4Addr(10, 0, 0, 2);
  p.serialize(w);
  ByteReader r{buf};
  auto parsed = ArpPacket::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->op, kArpOpRequest);
  EXPECT_EQ(parsed->sender_ip, p.sender_ip);
  EXPECT_EQ(parsed->target_ip, p.target_ip);
}

TEST(Headers, Ipv4RoundTripAndChecksum) {
  std::byte buf[kIpHeaderLen];
  ByteWriter w{buf};
  Ipv4Header h;
  h.total_length = 1500;
  h.id = 42;
  h.protocol = kProtoTcp;
  h.src = Ipv4Addr(10, 1, 0, 1);
  h.dst = Ipv4Addr(10, 1, 0, 2);
  h.serialize(w);
  ByteReader r{buf};
  auto parsed = Ipv4Header::parse(r, /*verify=*/true);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->total_length, 1500);
  EXPECT_EQ(parsed->id, 42);
  EXPECT_EQ(parsed->src, h.src);
}

TEST(Headers, Ipv4CorruptionCaught) {
  std::byte buf[kIpHeaderLen];
  ByteWriter w{buf};
  Ipv4Header h;
  h.total_length = 100;
  h.protocol = kProtoUdp;
  h.src = Ipv4Addr(10, 1, 0, 1);
  h.dst = Ipv4Addr(10, 1, 0, 2);
  h.serialize(w);
  buf[16] ^= std::byte{0xff};  // flip a dst-address byte
  ByteReader r{buf};
  EXPECT_FALSE(Ipv4Header::parse(r, /*verify=*/true).has_value());
}

TEST(Headers, TruncatedInputRejectedEverywhere) {
  std::byte buf[6] = {};
  {
    ByteReader r{buf};
    EXPECT_FALSE(EthHeader::parse(r).has_value());
  }
  {
    ByteReader r{buf};
    EXPECT_FALSE(Ipv4Header::parse(r).has_value());
  }
  {
    ByteReader r{buf};
    EXPECT_FALSE(TcpHeader::parse(r).has_value());
  }
  {
    ByteReader r{buf};
    EXPECT_FALSE(UdpHeader::parse(r).has_value());
  }
  {
    ByteReader r{buf};
    EXPECT_FALSE(ArpPacket::parse(r).has_value());
  }
}

TEST(Headers, TcpRoundTripWithFlags) {
  std::byte buf[kTcpHeaderLen];
  ByteWriter w{buf};
  TcpHeader h;
  h.src_port = 30000;
  h.dst_port = 80;
  h.seq = 0xdeadbeef;
  h.ack = 0x1234;
  h.flags = tcpflag::kSyn | tcpflag::kAck;
  h.window = 4096;
  h.serialize(w);
  ByteReader r{buf};
  auto parsed = TcpHeader::parse(r);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seq, 0xdeadbeefu);
  EXPECT_TRUE(parsed->has(tcpflag::kSyn));
  EXPECT_TRUE(parsed->has(tcpflag::kAck));
  EXPECT_FALSE(parsed->has(tcpflag::kFin));
}

TEST(Headers, AddrParsing) {
  EXPECT_EQ(Ipv4Addr::parse("10.1.0.2"), Ipv4Addr(10, 1, 0, 2));
  EXPECT_EQ(Ipv4Addr::parse("no"), Ipv4Addr{});
  EXPECT_EQ(Ipv4Addr::parse("300.1.1.1"), Ipv4Addr{});
  EXPECT_EQ(Ipv4Addr(10, 1, 0, 2).to_string(), "10.1.0.2");
  Ipv4Net net{Ipv4Addr(10, 1, 0, 0), 24};
  EXPECT_TRUE(net.contains(Ipv4Addr(10, 1, 0, 200)));
  EXPECT_FALSE(net.contains(Ipv4Addr(10, 2, 0, 1)));
}

// --- pbuf chains --------------------------------------------------------------------------

TEST(Pbuf, PackUnpackChain) {
  chan::Pool pool(1, "t", 1 << 16);
  chan::RichPtr hdr = pool.alloc(54);
  chan::RichPtr pay1 = pool.alloc(1000);
  chan::RichPtr pay2 = pool.alloc(460);
  TxOffload off;
  off.tso = true;
  off.mss = 1460;
  chan::RichPtr desc = pack_chain(pool, hdr, {pay1, pay2}, off);
  ASSERT_TRUE(desc.valid());

  chan::PoolRegistry reg;  // use a registry wrapping the same pool id? no —
  // unpack reads through a registry; build one that owns an identical pool.
  // Instead: create pool via registry from the start.
  (void)reg;
  SUCCEED();
}

TEST(Pbuf, PackUnpackViaRegistry) {
  chan::PoolRegistry reg;
  chan::Pool& pool = reg.create("tcp", "buf", 1 << 16);
  chan::RichPtr hdr = pool.alloc(54);
  chan::RichPtr pay = pool.alloc(1460);
  pool.write_view(hdr)[0] = std::byte{0xaa};
  pool.write_view(pay)[1459] = std::byte{0xbb};
  TxOffload off;
  off.csum_offload = true;
  off.mss = 1400;
  chan::RichPtr desc = pack_chain(pool, hdr, {pay}, off);
  auto chain = unpack_chain(reg, desc);
  ASSERT_TRUE(chain.has_value());
  EXPECT_EQ(chain->header, hdr);
  ASSERT_EQ(chain->payload.size(), 1u);
  EXPECT_EQ(chain->payload[0], pay);
  EXPECT_TRUE(chain->offload.csum_offload);
  EXPECT_FALSE(chain->offload.tso);
  EXPECT_EQ(chain->offload.mss, 1400);

  auto flat = flatten(reg, chain->header, chain->payload);
  ASSERT_EQ(flat.size(), 54u + 1460u);
  EXPECT_EQ(std::to_integer<int>(flat[0]), 0xaa);
  EXPECT_EQ(std::to_integer<int>(flat[54 + 1459]), 0xbb);
}

TEST(Pbuf, UnpackRejectsGarbage) {
  chan::PoolRegistry reg;
  chan::Pool& pool = reg.create("t", "buf", 4096);
  chan::RichPtr junk = pool.alloc(64);  // zeroed: wrong magic
  EXPECT_FALSE(unpack_chain(reg, junk).has_value());
  EXPECT_FALSE(unpack_chain(reg, chan::kNullRichPtr).has_value());
}

// --- packet filter -----------------------------------------------------------------------

class PfRuleMatch : public ::testing::TestWithParam<std::uint16_t> {};

TEST_P(PfRuleMatch, PortRangesAreInclusive) {
  FakeClock clock;
  PfEngine pf(&clock);
  PfRule r;
  r.action = PfAction::Block;
  r.dport = PortRange{1000, 2000};
  pf.set_rules({r});
  PfQuery q;
  q.protocol = kProtoTcp;
  q.dport = GetParam();
  const bool in_range = GetParam() >= 1000 && GetParam() <= 2000;
  EXPECT_EQ(pf.check(q).action,
            in_range ? PfAction::Block : PfAction::Pass);
}

INSTANTIATE_TEST_SUITE_P(Ports, PfRuleMatch,
                         ::testing::Values(999, 1000, 1500, 2000, 2001));

TEST(Pf, FirstMatchWins) {
  FakeClock clock;
  PfEngine pf(&clock);
  PfRule pass;
  pass.action = PfAction::Pass;
  pass.protocol = kProtoTcp;
  PfRule block;
  block.action = PfAction::Block;
  pf.set_rules({pass, block});
  PfQuery tcp_q;
  tcp_q.protocol = kProtoTcp;
  EXPECT_EQ(pf.check(tcp_q).action, PfAction::Pass);
  PfQuery udp_q;
  udp_q.protocol = kProtoUdp;
  EXPECT_EQ(pf.check(udp_q).action, PfAction::Block);
}

TEST(Pf, KeepStateBypassesRulesBothWays) {
  FakeClock clock;
  PfEngine pf(&clock);
  PfRule out_keep;
  out_keep.action = PfAction::Pass;
  out_keep.dir = PfDir::Out;
  out_keep.keep_state = true;
  PfRule block_in;
  block_in.action = PfAction::Block;
  block_in.dir = PfDir::In;
  pf.set_rules({out_keep, block_in});

  PfQuery out_q;
  out_q.dir = PfDir::Out;
  out_q.protocol = kProtoTcp;
  out_q.src = Ipv4Addr(10, 1, 0, 1);
  out_q.dst = Ipv4Addr(10, 1, 0, 2);
  out_q.sport = 30000;
  out_q.dport = 80;
  EXPECT_EQ(pf.check(out_q).action, PfAction::Pass);
  EXPECT_EQ(pf.state_count(), 1u);

  // The reply direction matches the state entry, not the block rule.
  PfQuery in_q;
  in_q.dir = PfDir::In;
  in_q.protocol = kProtoTcp;
  in_q.src = out_q.dst;
  in_q.dst = out_q.src;
  in_q.sport = 80;
  in_q.dport = 30000;
  const auto verdict = pf.check(in_q);
  EXPECT_EQ(verdict.action, PfAction::Pass);
  EXPECT_TRUE(verdict.state_hit);

  // Unrelated inbound traffic is still blocked.
  PfQuery other = in_q;
  other.dport = 31000;
  EXPECT_EQ(pf.check(other).action, PfAction::Block);
}

TEST(Pf, RstTearsDownState) {
  FakeClock clock;
  PfEngine pf(&clock);
  PfRule keep;
  keep.action = PfAction::Pass;
  keep.keep_state = true;
  pf.set_rules({keep});
  PfQuery q;
  q.protocol = kProtoTcp;
  q.src = Ipv4Addr(1, 1, 1, 1);
  q.dst = Ipv4Addr(2, 2, 2, 2);
  pf.check(q);
  EXPECT_EQ(pf.state_count(), 1u);
  q.tcp_flags = tcpflag::kRst;
  pf.check(q);
  EXPECT_EQ(pf.state_count(), 0u);
}

TEST(Pf, StateExpiresByTtl) {
  FakeClock clock;
  PfEngine::Config cfg;
  cfg.state_ttl = 100;
  PfEngine pf(&clock, cfg);
  PfRule keep;
  keep.action = PfAction::Pass;
  keep.keep_state = true;
  PfRule block;
  block.action = PfAction::Block;
  pf.set_rules({keep, block});
  PfQuery q;
  q.protocol = kProtoUdp;
  EXPECT_EQ(pf.check(q).action, PfAction::Pass);
  clock.t = 200;  // past the TTL: the entry is gone, first-match is keep
  EXPECT_FALSE(pf.check(q).state_hit);
}

TEST(Pf, RulesSerializeRoundTrip) {
  std::vector<PfRule> rules;
  PfRule a;
  a.action = PfAction::Block;
  a.dir = PfDir::In;
  a.protocol = kProtoTcp;
  a.src = Ipv4Net{Ipv4Addr(10, 0, 0, 0), 8};
  a.dport = PortRange{22, 22};
  rules.push_back(a);
  PfRule b;
  b.action = PfAction::Pass;
  b.keep_state = true;
  rules.push_back(b);

  const auto bytes = PfEngine::serialize_rules(rules);
  auto parsed = PfEngine::parse_rules(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, rules);
  EXPECT_FALSE(
      PfEngine::parse_rules(std::span(bytes).first(bytes.size() - 1))
          .has_value());
}

TEST(Pf, StateSnapshotRestore) {
  FakeClock clock;
  PfEngine pf(&clock);
  pf.restore_states({PfStateKey{kProtoTcp, Ipv4Addr(1, 1, 1, 1),
                                Ipv4Addr(2, 2, 2, 2), 5, 6}});
  EXPECT_EQ(pf.state_count(), 1u);
  auto snap = pf.snapshot_states();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].sport, 5);
}

// --- ARP -----------------------------------------------------------------------------------

TEST(Arp, ResolvesViaRequestReply) {
  FakeClock clock;
  FakeTimers timers;
  std::vector<ArpPacket> sent;
  Ipv4Addr resolved_ip;
  MacAddr resolved_mac;
  ArpEngine::Env env;
  env.clock = &clock;
  env.timers = &timers;
  env.send_arp = [&](int, const ArpPacket& p) { sent.push_back(p); };
  env.resolved = [&](int, Ipv4Addr ip, MacAddr mac) {
    resolved_ip = ip;
    resolved_mac = mac;
  };
  ArpEngine arp(std::move(env));

  const Ipv4Addr target(10, 1, 0, 2);
  const Ipv4Addr me(10, 1, 0, 1);
  const MacAddr my_mac = MacAddr::local(1);
  EXPECT_FALSE(arp.lookup(0, target, me, my_mac).has_value());
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].op, kArpOpRequest);
  EXPECT_EQ(sent[0].target_ip, target);

  ArpPacket reply;
  reply.op = kArpOpReply;
  reply.sender_mac = MacAddr::local(9);
  reply.sender_ip = target;
  reply.target_mac = my_mac;
  reply.target_ip = me;
  arp.input(0, reply, me, my_mac);
  EXPECT_EQ(resolved_ip, target);
  EXPECT_EQ(resolved_mac, MacAddr::local(9));
  auto cached = arp.lookup(0, target, me, my_mac);
  ASSERT_TRUE(cached.has_value());
  EXPECT_EQ(*cached, MacAddr::local(9));
}

TEST(Arp, AnswersRequestsForOurAddress) {
  FakeClock clock;
  FakeTimers timers;
  std::vector<ArpPacket> sent;
  ArpEngine::Env env;
  env.clock = &clock;
  env.timers = &timers;
  env.send_arp = [&](int, const ArpPacket& p) { sent.push_back(p); };
  ArpEngine arp(std::move(env));

  const Ipv4Addr me(10, 1, 0, 1);
  ArpPacket req;
  req.op = kArpOpRequest;
  req.sender_mac = MacAddr::local(5);
  req.sender_ip = Ipv4Addr(10, 1, 0, 2);
  req.target_ip = me;
  arp.input(0, req, me, MacAddr::local(1));
  ASSERT_EQ(sent.size(), 1u);
  EXPECT_EQ(sent[0].op, kArpOpReply);
  EXPECT_EQ(sent[0].sender_ip, me);
  EXPECT_EQ(sent[0].target_mac, MacAddr::local(5));
  // And we learned the asker's mapping for free.
  EXPECT_EQ(arp.cache_size(), 1u);
}

TEST(Arp, GivesUpAfterRetries) {
  FakeClock clock;
  FakeTimers timers;
  int requests = 0;
  ArpEngine::Env env;
  env.clock = &clock;
  env.timers = &timers;
  env.send_arp = [&](int, const ArpPacket&) { ++requests; };
  ArpEngine arp(std::move(env));
  arp.lookup(0, Ipv4Addr(10, 1, 0, 99), Ipv4Addr(10, 1, 0, 1),
             MacAddr::local(1));
  // Fire every scheduled retry.
  for (std::size_t i = 0; i < timers.fns.size(); ++i) timers.fns[i]();
  EXPECT_EQ(requests, 3);  // initial + 2 retries, then gave up
}
