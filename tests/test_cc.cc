// Pluggable congestion control: the algorithm modules and their wiring.
//
// Unit tests drive the CongestionControl modules directly through the hook
// interface — no simulator needed — and pin down the per-algorithm window
// policies: NewReno's slow-start/CA/fast-recovery arithmetic, CUBIC's
// concave-then-convex growth around the pre-loss plateau, BBR's delivery-
// rate model and pacing output, and the checkpoint blob round-trips.
//
// Integration tests run the Testbed: a reordering WAN wire must not cause
// spurious fast retransmits when the receiver has a reassembly budget, a
// BBR flow must actually exercise the pacing timer while keeping the
// bottleneck FIFO shallow, and the learned window must survive a TCP-server
// crash via the connection-checkpoint path.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <memory>
#include <string>

#include "src/core/apps.h"
#include "src/core/fault_injection.h"
#include "src/core/testbed.h"
#include "src/net/cc/congestion.h"
#include "src/net/tcp.h"

using namespace newtos;
using namespace newtos::net;

namespace {

cc::CcConfig unit_cfg(std::uint32_t ssthresh_init = 0) {
  cc::CcConfig cfg;
  cfg.mss = 1000;
  cfg.initial_cwnd = 10 * 1000;
  cfg.ssthresh_init = ssthresh_init;
  return cfg;
}

}  // namespace

// --- factory ----------------------------------------------------------------

TEST(CcFactory, KnownAlgorithmsAndIds) {
  for (const char* name : {"newreno", "cubic", "bbr"}) {
    EXPECT_TRUE(cc::known(name)) << name;
    auto mod = cc::make(name, unit_cfg());
    ASSERT_NE(mod, nullptr) << name;
    EXPECT_STREQ(mod->name(), name);
    // Round-trip through the wire-stable id.
    auto again = cc::make(mod->algo(), unit_cfg());
    ASSERT_NE(again, nullptr);
    EXPECT_STREQ(again->name(), name);
    EXPECT_STREQ(cc::to_string(mod->algo()), name);
  }
  EXPECT_FALSE(cc::known("vegas"));
  EXPECT_EQ(cc::make("vegas", unit_cfg()), nullptr);
}

// --- NewReno ----------------------------------------------------------------

TEST(CcNewReno, SlowStartThenCongestionAvoidance) {
  auto m = cc::make("newreno", unit_cfg(/*ssthresh_init=*/20 * 1000));
  EXPECT_EQ(m->ssthresh(), 20u * 1000);

  // Slow start: cwnd grows by the ACKed bytes (exponential per RTT).
  const std::uint32_t before = m->cwnd();
  m->on_ack(1000, before, 0);
  EXPECT_EQ(m->cwnd(), before + 1000);

  // Drive across ssthresh.
  while (m->cwnd() < m->ssthresh()) m->on_ack(1000, m->cwnd(), 0);

  // Congestion avoidance: ~mss^2/cwnd per ACK — additive per RTT.
  const std::uint32_t ca = m->cwnd();
  m->on_ack(1000, ca, 0);
  EXPECT_EQ(m->cwnd(), ca + 1000u * 1000u / ca);
}

TEST(CcNewReno, FastRecoveryAndTimeout) {
  auto m = cc::make("newreno", unit_cfg());
  while (m->cwnd() < 40 * 1000) m->on_ack(1000, m->cwnd(), 0);

  // Third dup ACK: halve, plus the three segments that left the wire.
  m->on_enter_recovery(/*flight=*/40 * 1000, 0);
  EXPECT_EQ(m->ssthresh(), 20u * 1000);
  EXPECT_EQ(m->cwnd(), 23u * 1000);

  // Further dup ACKs inflate by one segment each.
  m->on_dup_ack(/*in_recovery=*/true, 40 * 1000, 0);
  EXPECT_EQ(m->cwnd(), 24u * 1000);

  // Partial ACK deflates by the ACKed amount, inflates by one segment.
  m->on_partial_ack(/*acked=*/5 * 1000, 0);
  EXPECT_EQ(m->cwnd(), 20u * 1000);

  // Full ACK of the recovery point: back to ssthresh.
  m->on_exit_recovery(0);
  EXPECT_EQ(m->cwnd(), 20u * 1000);

  // Timeout: collapse to one segment, ssthresh from the pre-rewind flight.
  m->on_rto(/*flight=*/20 * 1000, 0);
  EXPECT_EQ(m->cwnd(), 1000u);
  EXPECT_EQ(m->ssthresh(), 10u * 1000);
}

TEST(CcNewReno, SsthreshInitSeedsAndClamps) {
  // 0 keeps the classic unbounded slow start.
  EXPECT_EQ(cc::make("newreno", unit_cfg(0))->ssthresh(), 0x7fffffffu);
  // A cached path estimate seeds ssthresh directly...
  EXPECT_EQ(cc::make("newreno", unit_cfg(100 * 1000))->ssthresh(),
            100u * 1000);
  // ...but never below two segments.
  EXPECT_EQ(cc::make("newreno", unit_cfg(1))->ssthresh(), 2000u);
  EXPECT_EQ(cc::make("cubic", unit_cfg(1))->ssthresh(), 2000u);
}

// --- CUBIC ------------------------------------------------------------------

// The defining CUBIC property: after a loss the window climbs back toward
// the pre-loss plateau along a cubic curve — fast at first, flattening as
// it approaches W_max (concave), then accelerating past it (convex).
TEST(CcCubic, ConcaveThenConvexAroundPlateau) {
  cc::CcConfig cfg = unit_cfg(/*ssthresh_init=*/2 * 1000);
  cfg.initial_cwnd = 100 * 1000;  // start in congestion avoidance
  auto m = cc::make("cubic", cfg);
  const sim::Time rtt = 100 * sim::kMillisecond;
  m->on_rtt_sample(rtt, 0);

  // Loss at W_max = 100 segments: beta = 0.7 multiplicative decrease.
  m->on_enter_recovery(100 * 1000, 0);
  m->on_exit_recovery(0);
  EXPECT_EQ(m->cwnd(), 70u * 1000);
  EXPECT_EQ(m->ssthresh(), 70u * 1000);

  // One full-window ACK per RTT for 10 s; sample the trajectory each RTT.
  // K = cbrt(W_max * 0.3 / 0.4) ~= 4.2 s for W_max = 100 segments.
  std::array<std::uint32_t, 101> w{};
  w[0] = m->cwnd();
  for (int i = 1; i <= 100; ++i) {
    const sim::Time now = i * rtt;
    m->on_rtt_sample(rtt, now);
    m->on_ack(m->cwnd(), m->cwnd(), now);
    w[i] = m->cwnd();
  }

  // Monotone recovery that reaches and passes the plateau.
  EXPECT_GT(w[42], 95u * 1000);   // near W_max around t = K
  EXPECT_LT(w[42], 110u * 1000);  // ...but not far past it yet
  EXPECT_GT(w[100], 110u * 1000);  // probing beyond the plateau by 10 s

  // Concave before K: per-RTT growth shrinks as W_max approaches.
  const std::uint32_t g_early = w[10] - w[5];
  const std::uint32_t g_late_concave = w[40] - w[35];
  EXPECT_GT(g_early, g_late_concave);
  // Convex after K: growth accelerates again while probing.
  const std::uint32_t g_past = w[90] - w[85];
  EXPECT_GT(g_past, g_late_concave);
}

TEST(CcCubic, FastConvergenceReleasesShareOnRepeatLoss) {
  cc::CcConfig cfg = unit_cfg(2 * 1000);
  cfg.initial_cwnd = 100 * 1000;
  auto m = cc::make("cubic", cfg);
  m->on_rtt_sample(100 * sim::kMillisecond, 0);
  m->on_ack(m->cwnd(), m->cwnd(), 0);  // open the epoch (W_max = 100)

  // First loss at the plateau, second loss below it: fast convergence
  // lowers the remembered plateau below the current window so a competing
  // flow can claim the released share.
  m->on_enter_recovery(100 * 1000, sim::kSecond);
  m->on_exit_recovery(sim::kSecond);
  const std::uint32_t after_first = m->cwnd();
  m->on_enter_recovery(after_first, 2 * sim::kSecond);
  m->on_exit_recovery(2 * sim::kSecond);
  EXPECT_EQ(m->cwnd(), 49u * 1000);  // 0.7 * 0.7 * 100
}

// --- BBR --------------------------------------------------------------------

// Feed the model a steady delivery rate and check it converges: pacing at
// ~the delivered rate (times the cycle gain) and cwnd capped near 2 x BDP
// instead of growing without bound the way loss-based windows do.
TEST(CcBbr, ModelConvergesToDeliveryRateAndBoundsCwnd) {
  auto m = cc::make("bbr", unit_cfg());
  const std::uint64_t rate = 100'000'000;  // 100 MB/s
  const sim::Time rtt = 10 * sim::kMillisecond;
  const std::uint32_t flight =
      static_cast<std::uint32_t>(rate * rtt / sim::kSecond);  // 1 BDP

  // 1 ms ACK clock at the steady rate for 2 simulated seconds.
  for (int i = 1; i <= 2000; ++i) {
    const sim::Time now = i * sim::kMillisecond;
    m->on_rtt_sample(rtt, now);
    m->on_ack(static_cast<std::uint32_t>(rate / 1000), flight, now);
  }

  // The windowed-max filter landed on the offered rate; pacing tracks it
  // through the PROBE_BW gain cycle (0.75..1.25).
  const std::uint64_t pr = m->pacing_rate();
  EXPECT_GT(pr, rate / 2);
  EXPECT_LT(pr, rate * 3 / 2);
  // cwnd_gain caps the window near 2 x BDP — the queue stays shallow.
  EXPECT_LE(m->cwnd(), 3 * flight);
  EXPECT_GE(m->cwnd(), flight / 2);
  // BBR reports no ssthresh; the engine treats it as unbounded.
  EXPECT_EQ(m->ssthresh(), 0x7fffffffu);
}

TEST(CcBbr, RtoCollapsesWindowButKeepsRateModel) {
  auto m = cc::make("bbr", unit_cfg());
  const std::uint64_t rate = 50'000'000;
  for (int i = 1; i <= 1000; ++i) {
    const sim::Time now = i * sim::kMillisecond;
    m->on_rtt_sample(10 * sim::kMillisecond, now);
    m->on_ack(static_cast<std::uint32_t>(rate / 1000), 500'000, now);
  }
  const std::uint64_t pr_before = m->pacing_rate();
  m->on_rto(500'000, sim::kSecond);
  EXPECT_EQ(m->cwnd(), 1000u);        // go-back-N restart
  EXPECT_EQ(m->pacing_rate(), pr_before);  // the model stands
}

// --- checkpoint blobs -------------------------------------------------------

TEST(CcBlob, RoundTripsForEveryAlgorithm) {
  for (const char* name : {"newreno", "cubic", "bbr"}) {
    auto src = cc::make(name, unit_cfg(30 * 1000));
    // Mutate away from initial state.
    for (int i = 1; i <= 50; ++i) {
      src->on_rtt_sample(5 * sim::kMillisecond, i * sim::kMillisecond);
      src->on_ack(1000, 20 * 1000, i * sim::kMillisecond);
    }
    src->on_enter_recovery(src->cwnd(), 60 * sim::kMillisecond);
    src->on_exit_recovery(60 * sim::kMillisecond);

    std::array<std::byte, cc::kCcBlobMax> blob{};
    const std::size_t used = src->serialize(blob);
    ASSERT_GT(used, 0u) << name;
    ASSERT_LE(used, cc::kCcBlobMax) << name;

    auto dst = cc::make(name, unit_cfg());
    ASSERT_TRUE(dst->deserialize(std::span(blob).first(used))) << name;
    EXPECT_EQ(dst->cwnd(), src->cwnd()) << name;
    EXPECT_EQ(dst->ssthresh(), src->ssthresh()) << name;
    // BBR's restored filter must reproduce the learned rate (modulo the
    // gain of the cycle phase the blob froze).
    if (src->pacing_rate() > 0) {
      EXPECT_GT(dst->pacing_rate(), 0u) << name;
    }
  }
}

TEST(CcBlob, MalformedBlobsAreRejected) {
  std::array<std::byte, cc::kCcBlobMax> zeros{};
  for (const char* name : {"newreno", "cubic", "bbr"}) {
    auto m = cc::make(name, unit_cfg());
    const std::uint32_t cwnd = m->cwnd();
    // Truncated.
    EXPECT_FALSE(m->deserialize(std::span(zeros).first(2))) << name;
    // All zeros: cwnd below one segment is conservative-invalid.
    EXPECT_FALSE(m->deserialize(zeros)) << name;
    // A rejected blob leaves the module untouched.
    EXPECT_EQ(m->cwnd(), cwnd) << name;
  }
}

// --- integration: WAN wire + engine -----------------------------------------

namespace {

struct Flow {
  std::unique_ptr<apps::BulkReceiver> rx;
  std::unique_ptr<apps::BulkSender> tx;
};

Flow start_bulk(Testbed& tb, std::uint16_t port) {
  Flow f;
  AppActor* rx_app = tb.peer().add_app("rx" + std::to_string(port));
  apps::BulkReceiver::Config rc;
  rc.port = port;
  rc.record_series = false;
  f.rx = std::make_unique<apps::BulkReceiver>(tb.peer(), rx_app, rc);
  f.rx->start();
  AppActor* tx_app = tb.newtos().add_app("tx" + std::to_string(port));
  apps::BulkSender::Config sc;
  sc.dst = tb.newtos().peer_addr(0);
  sc.port = port;
  f.tx = std::make_unique<apps::BulkSender>(tb.newtos(), tx_app, sc);
  f.tx->start();
  return f;
}

}  // namespace

// A mildly reordering wire looks like loss to a classic receiver (segments
// past a drop^W gap get dropped, dup ACKs trigger a spurious fast
// retransmit).  With a reassembly budget the gap is bridged in place: the
// wire demonstrably reordered frames, yet the sender never fired a single
// fast retransmit and goodput stays at line rate.
TEST(CcWire, ReorderingAbsorbedByReassemblyNotRetransmit) {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  opts.nics = 1;
  opts.app_write_size = 65536;
  opts.wire_reorder = 0.01;
  // Hold a reordered frame for ~1 frame time at 1 GbE: genuinely out of
  // order, but re-sequenced within the dup-ACK threshold.
  opts.wire_reorder_delay = 15 * sim::kMicrosecond;
  opts.tcp_ooo_queue = 64;
  Testbed tb(opts);
  Flow f = start_bulk(tb, 5001);
  tb.run_until(2 * sim::kSecond);

  EXPECT_GT(tb.wire(0).reordered(), 100u);
  std::uint64_t fast_retx = 0, ooo_buffered = 0;
  for (int s = 0; s < tb.newtos().tcp_shard_count(); ++s) {
    fast_retx += tb.newtos().tcp_engine(s)->stats().fast_retransmits;
  }
  ooo_buffered = tb.peer().tcp_engine(0)->stats().ooo_buffered;
  EXPECT_EQ(fast_retx, 0u);
  EXPECT_GT(ooo_buffered, 0u);  // the budget did the absorbing
  // Goodput unharmed: >= 0.5 Gb/s over the 2 s window.
  EXPECT_GT(f.rx->bytes() * 8.0 / 2.0 / 1e9, 0.5);
}

// One BBR flow over the two-stage WAN wire: the pacing timer must actually
// gate the TX path, and the bottleneck FIFO must stay shallow — the
// behaviour bench_cc quantifies against CUBIC.
TEST(CcWire, BbrPacingKeepsBottleneckQueueShallow) {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  opts.nics = 1;
  opts.gbps = 0.25;
  opts.wire_bottleneck_gbps = 0.2;
  opts.wire_queue_frames = 512;
  opts.wire_latency = 5 * sim::kMillisecond;  // 10 ms RTT
  opts.app_write_size = 65536;
  opts.tcp_ooo_queue = 1024;
  opts.tcp_buf_bytes = 1400 * 1024;
  opts.tcp_cc = "bbr";
  Testbed tb(opts);
  Flow f = start_bulk(tb, 5001);
  tb.run_until(5 * sim::kSecond);

  std::uint64_t pacing_delays = 0;
  for (int s = 0; s < tb.newtos().tcp_shard_count(); ++s) {
    pacing_delays += tb.newtos().tcp_engine(s)->stats().pacing_delays;
  }
  EXPECT_GT(pacing_delays, 0u);  // the timer gated real transmissions
  // Rate-based operation keeps the 512-frame FIFO nearly empty on average.
  EXPECT_LT(tb.wire(0).avg_queue_depth(0), 64.0);
  // And still moves bytes at better than half the bottleneck rate.
  EXPECT_GT(f.rx->bytes() * 8.0 / 5.0 / 1e9, 0.1);
  // The per-connection view reports the rate-based module.
  auto* eng = tb.newtos().tcp_engine(0);
  bool saw_bbr = false;
  for (SockId s : eng->connection_socks()) {
    if (auto info = eng->cc_info(s)) {
      if (std::string(info->algo) == "bbr" && info->pacing_rate > 0)
        saw_bbr = true;
    }
  }
  EXPECT_TRUE(saw_bbr);
}

// --- integration: CC state across a TCP-server crash ------------------------

// The learned window must ride the connection checkpoint: after a crash the
// restored connection comes back under the same algorithm with a window
// carried from the blob, not the 10-segment initial window.
TEST(CcCkpt, LearnedWindowSurvivesTcpServerCrash) {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  opts.tcp_checkpoint = true;
  opts.tcp_cc = "cubic";
  Testbed tb(opts);
  Flow f = start_bulk(tb, 5001);
  FaultInjector faults(tb.newtos(), /*seed=*/7);

  tb.run_until(sim::kSecond);
  // The bulk flow has grown well past the initial window by now.
  auto* eng = tb.newtos().tcp_engine(0);
  std::uint32_t cwnd_before = 0;
  for (SockId s : eng->connection_socks()) {
    if (auto info = eng->cc_info(s)) {
      EXPECT_STREQ(info->algo, "cubic");
      cwnd_before = std::max(cwnd_before, info->cwnd);
    }
  }
  const std::uint32_t initial = TcpOptions{}.initial_cwnd_segs *
                                std::uint32_t{TcpOptions{}.mss};
  ASSERT_GT(cwnd_before, initial);

  faults.inject(servers::kTcpName, FaultType::Crash);
  tb.run_until(1500 * sim::kMillisecond);

  // Restored, same algorithm, window carried across the crash.
  eng = tb.newtos().tcp_engine(0);
  EXPECT_GE(eng->stats().conns_restored, 1u);
  std::uint32_t cwnd_after = 0;
  bool saw_cubic = false;
  for (SockId s : eng->connection_socks()) {
    if (auto info = eng->cc_info(s)) {
      saw_cubic = saw_cubic || std::string(info->algo) == "cubic";
      cwnd_after = std::max(cwnd_after, info->cwnd);
    }
  }
  EXPECT_TRUE(saw_cubic);
  EXPECT_GT(cwnd_after, initial);

  // The stream itself kept flowing after the crash.
  const std::uint64_t bytes_at_restore = f.rx->bytes();
  tb.run_until(3 * sim::kSecond);
  EXPECT_GT(f.rx->bytes(), bytes_at_restore);
}
