// Unit tests: discrete-event simulator (event queue, cores, cost model).
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/rng.h"
#include "src/sim/sim.h"

using namespace newtos::sim;

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(30, [&] { order.push_back(3); });
  q.push(10, [&] { order.push_back(1); });
  q.push(20, [&] { order.push_back(2); });
  while (q.pop_and_run()) {
  }
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInSubmissionOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&order, i] { order.push_back(i); });
  }
  while (q.pop_and_run()) {
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.push(10, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));  // double cancel fails
  while (q.pop_and_run()) {
  }
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelAfterFireFails) {
  EventQueue q;
  const EventId id = q.push(10, [] {});
  EXPECT_TRUE(q.pop_and_run());
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, EventsMayScheduleMoreEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.push(static_cast<Time>(count * 10), chain);
  };
  q.push(0, chain);
  while (q.pop_and_run()) {
  }
  EXPECT_EQ(count, 5);
}

TEST(Simulator, TimeAdvancesMonotonically) {
  Simulator sim;
  Time seen = -1;
  for (Time t : {5, 3, 9, 7}) {
    sim.at(t, [&, t] {
      EXPECT_GT(t, seen);
      seen = t;
      EXPECT_EQ(sim.now(), t);
    });
  }
  sim.run_to_completion();
  EXPECT_EQ(seen, 9);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.at(100, [&] { ++fired; });
  sim.at(200, [&] { ++fired; });
  sim.run_until(150);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 150);
  sim.run_until(250);
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, AfterSchedulesRelative) {
  Simulator sim;
  sim.at(100, [&] {
    sim.after(50, [&] { EXPECT_EQ(sim.now(), 150); });
  });
  sim.run_to_completion();
}

TEST(SimCore, SerializesTasks) {
  Simulator sim;
  SimCore& core = sim.add_core("c0");
  std::vector<Time> starts;
  // Each task takes 1900 cycles = 1000 ns at 1.9 GHz.
  for (int i = 0; i < 3; ++i) {
    core.exec(0, [&](Context& ctx) {
      starts.push_back(ctx.now());
      ctx.charge(1900);
    });
  }
  sim.run_to_completion();
  ASSERT_EQ(starts.size(), 3u);
  EXPECT_EQ(starts[0], 0);
  EXPECT_EQ(starts[1], 1000);
  EXPECT_EQ(starts[2], 2000);
  EXPECT_EQ(core.busy_cycles(), 3 * 1900);
  EXPECT_EQ(core.tasks_run(), 3u);
}

TEST(SimCore, ContextNowReflectsCharges) {
  Simulator sim;
  SimCore& core = sim.add_core("c0");
  core.exec(0, [&](Context& ctx) {
    EXPECT_EQ(ctx.now(), 0);
    ctx.charge(3800);  // 2000 ns
    EXPECT_EQ(ctx.now(), 2000);
  });
  sim.run_to_completion();
}

TEST(SimCore, EarliestConstraintHonoured) {
  Simulator sim;
  SimCore& core = sim.add_core("c0");
  Time started = -1;
  core.exec(500, [&](Context& ctx) { started = ctx.now(); });
  sim.run_to_completion();
  EXPECT_EQ(started, 500);
}

TEST(SimCore, IndependentCoresRunInParallel) {
  Simulator sim;
  SimCore& a = sim.add_core("a");
  SimCore& b = sim.add_core("b");
  Time a_start = -1, b_start = -1;
  a.exec(0, [&](Context& ctx) {
    a_start = ctx.now();
    ctx.charge(19000);
  });
  b.exec(0, [&](Context& ctx) {
    b_start = ctx.now();
    ctx.charge(19000);
  });
  sim.run_to_completion();
  EXPECT_EQ(a_start, 0);
  EXPECT_EQ(b_start, 0);  // not serialized behind core a
}

TEST(CostModel, Conversions) {
  CostModel c;  // 1.9 GHz
  EXPECT_EQ(c.cycles_to_time(1900), 1000);
  EXPECT_EQ(c.time_to_cycles(1000), 1900);
  EXPECT_EQ(c.copy_cost(4000), 1000);      // 0.25 cy/B
  EXPECT_EQ(c.checksum_cost(4000), 2000);  // 0.5 cy/B
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(r.below(10), 10u);
  }
}

// Property sweep: chance(p) converges to p.
class RngChance : public ::testing::TestWithParam<double> {};

TEST_P(RngChance, ConvergesToProbability) {
  const double p = GetParam();
  Rng r(99);
  int hits = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) hits += r.chance(p) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, p, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Probabilities, RngChance,
                         ::testing::Values(0.0, 0.1, 0.5, 0.9, 1.0));
