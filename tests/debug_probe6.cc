#include <cstdio>
#include "src/core/apps.h"
#include "src/core/fault_injection.h"
#include "src/core/testbed.h"
using namespace newtos;
int main() {
  TestbedOptions o; o.mode = StackMode::kSplitSyscall; o.pf_filler_rules = 64;
  Testbed tb(o);
  auto* rx_app = tb.peer().add_app("rx");
  apps::BulkReceiver::Config rc; rc.record_series = false;
  apps::BulkReceiver rx(tb.peer(), rx_app, rc); rx.start();
  auto* tx_app = tb.newtos().add_app("tx");
  apps::BulkSender::Config sc; sc.dst = tb.newtos().peer_addr(0);
  apps::BulkSender tx(tb.newtos(), tx_app, sc); tx.start();
  FaultInjector f(tb.newtos(), 7);
  f.inject_at(2 * sim::kSecond, servers::kIpName, FaultType::Crash);
  std::uint64_t prev = 0;
  for (int ms = 1000; ms <= 12000; ms += 1000) {
    tb.run_until(ms * sim::kMillisecond);
    auto* t = tb.newtos().tcp_engine();
    std::printf("t=%ds Mbps=%.0f conn=%s\n", ms/1000, (rx.bytes()-prev)*8.0/1e9*1e3,
                (t && t->connection_count()) ? t->debug(1).c_str() : "-");
    prev = rx.bytes();
  }
  auto& nic = *tb.newtos().nic(0);
  std::printf("nic: resets=%llu link=%d tx=%llu nobuf=%llu\n",
              (unsigned long long)nic.stats().resets, nic.link_up(),
              (unsigned long long)nic.stats().tx_frames,
              (unsigned long long)nic.stats().rx_no_buffer);
  auto* ip = tb.newtos().ip_engine();
  if (ip) std::printf("ip: tx_segs=%llu tx_pend=%zu rx=%llu deliv=%llu arp_to=%llu\n",
    (unsigned long long)ip->stats().tx_segs, ip->tx_pending(),
    (unsigned long long)ip->stats().rx_frames,
    (unsigned long long)ip->stats().rx_delivered,
    (unsigned long long)ip->stats().dropped_arp_timeout);
  return 0;
}
