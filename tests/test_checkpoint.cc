// Transparent TCP recovery: the connection-checkpoint subsystem.
//
// The paper's Table I declares established TCP connections unrecoverable;
// with NodeConfig::tcp_checkpoint on they survive a TCP server crash with
// only a throughput dip.  These tests pin the claim down: zero application
// reconnects, byte-exact streams, composition with the zero-copy splice
// path, RX aggregation and the sharded transport plane, and survival of a
// crash storm.  Every test also rides the Testbed teardown loan-leak check:
// a checkpoint that strands a chunk aborts the run.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/core/apps.h"
#include "src/core/fault_injection.h"
#include "src/core/testbed.h"

using namespace newtos;

namespace {

TestbedOptions ckpt_opts() {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  opts.pf_filler_rules = 64;
  opts.tcp_checkpoint = true;
  return opts;
}

// The recovery rig: ssh-like echo in, bulk TCP out, periodic DNS out.
struct Rig {
  Testbed tb;
  AppActor* tx_app;
  AppActor* rx_app;
  apps::BulkReceiver receiver;
  apps::BulkSender sender;
  AppActor* sshd_app;
  apps::EchoServer sshd;
  AppActor* ssh_app;
  apps::EchoClient ssh;
  AppActor* named_app;
  apps::DnsServer named;
  AppActor* resolver_app;
  apps::DnsClient resolver;
  FaultInjector faults;

  static apps::BulkReceiver::Config rx_cfg() {
    apps::BulkReceiver::Config c;
    c.record_series = false;
    return c;
  }
  static apps::BulkSender::Config tx_cfg(Testbed& tb) {
    apps::BulkSender::Config c;
    c.dst = tb.newtos().peer_addr(0);
    return c;
  }
  static apps::EchoClient::Config ssh_cfg(Testbed& tb) {
    apps::EchoClient::Config c;
    c.dst = tb.peer().peer_addr(0);
    return c;
  }
  static apps::DnsClient::Config dns_cfg(Testbed& tb) {
    apps::DnsClient::Config c;
    c.dst = tb.newtos().peer_addr(0);
    return c;
  }

  explicit Rig(const TestbedOptions& opts)
      : tb(opts),
        tx_app(tb.newtos().add_app("iperf_tx")),
        rx_app(tb.peer().add_app("iperf_rx")),
        receiver(tb.peer(), rx_app, rx_cfg()),
        sender(tb.newtos(), tx_app, tx_cfg(tb)),
        sshd_app(tb.newtos().add_app("sshd")),
        sshd(tb.newtos(), sshd_app, {}),
        ssh_app(tb.peer().add_app("ssh")),
        ssh(tb.peer(), ssh_app, ssh_cfg(tb)),
        named_app(tb.peer().add_app("named")),
        named(tb.peer(), named_app),
        resolver_app(tb.newtos().add_app("resolver")),
        resolver(tb.newtos(), resolver_app, dns_cfg(tb)),
        faults(tb.newtos(), /*seed=*/7) {
    receiver.start();
    sender.start();
    sshd.start();
    ssh.start();
    named.start();
    resolver.start();
  }

  std::uint64_t rx_bytes() const { return receiver.bytes(); }
  std::uint64_t restored() {
    std::uint64_t n = 0;
    for (int s = 0; s < tb.newtos().tcp_shard_count(); ++s) {
      if (auto* eng = tb.newtos().tcp_engine(s)) {
        n += eng->stats().conns_restored;
      }
    }
    return n;
  }
};

// A sender that pushes exactly `target` bytes with at-most-once accounting:
// a write only counts when its completion reports ok, and a failed write
// (transport mid-restart, backpressure) is retried.  Receiver-side byte
// counts must then match exactly — crash or no crash.
struct ExactSender {
  Node& node;
  AppActor* app;
  net::Ipv4Addr dst;
  std::uint16_t port;
  std::uint64_t target;
  static constexpr std::uint32_t kWrite = 8192;

  std::unique_ptr<TcpSocket> sock;
  bool connected = false;
  std::uint64_t queued = 0;  // bytes whose writes completed ok
  int outstanding = 0;
  int connects = 0;
  int resets = 0;
  bool poll_scheduled = false;

  ExactSender(Node& n, AppActor* a, net::Ipv4Addr d, std::uint16_t p,
              std::uint64_t t)
      : node(n), app(a), dst(d), port(p), target(t) {}

  void start() {
    app->call([this](sim::Context&) { connect(); });
  }

  void connect() {
    sock = std::make_unique<TcpSocket>(*app);
    sock->on_event([this](net::TcpEvent ev) {
      if (ev == net::TcpEvent::Connected) {
        connected = true;
        ++connects;
        pump();
      } else if (ev == net::TcpEvent::Writable) {
        pump();
      } else if (ev == net::TcpEvent::Reset || ev == net::TcpEvent::Closed) {
        ++resets;
        connected = false;
      }
    });
    sock->connect(dst, port, [this](bool ok) {
      if (!ok) {
        sock.reset();
        app->call_after(100 * sim::kMillisecond,
                        [this](sim::Context&) { connect(); });
      }
    });
  }

  void pump() {
    while (connected && sock && queued + kWrite * outstanding < target &&
           outstanding < 4 && sock->send_space() >= kWrite) {
      ++outstanding;
      sock->send(kWrite, [this](bool ok) {
        --outstanding;
        if (ok) {
          queued += kWrite;
          pump();
        } else {
          poll();  // never executed: safe to retry without duplication
        }
      });
    }
    if (queued + kWrite * outstanding < target) poll();
  }

  void poll() {
    if (poll_scheduled) return;
    poll_scheduled = true;
    app->call_after(10 * sim::kMillisecond, [this](sim::Context&) {
      poll_scheduled = false;
      pump();
    });
  }
};

// A flood-echo client: streams writes at the echo server and drains the
// echoed bytes, so the server's zero-copy splice (recv_zc -> forward) is
// continuously mid-flight — receive-queue frames and forwarded sub-range
// chunks are both on loan when the crash hits.
struct FloodEcho {
  Node& node;
  AppActor* app;
  net::Ipv4Addr dst;
  static constexpr std::uint32_t kWrite = 8192;

  std::unique_ptr<TcpSocket> sock;
  bool connected = false;
  int outstanding = 0;
  int connects = 0;
  int resets = 0;
  std::uint64_t echoed = 0;
  bool poll_scheduled = false;

  FloodEcho(Node& n, AppActor* a, net::Ipv4Addr d) : node(n), app(a), dst(d) {}

  void start() {
    app->call([this](sim::Context&) { connect(); });
  }
  void connect() {
    sock = std::make_unique<TcpSocket>(*app);
    sock->on_event([this](net::TcpEvent ev) {
      switch (ev) {
        case net::TcpEvent::Connected:
          connected = true;
          ++connects;
          pump();
          break;
        case net::TcpEvent::Writable:
          pump();
          break;
        case net::TcpEvent::Readable:
          while (sock) {
            const RecvView v = sock->recv_zc();
            if (v.empty()) break;
            echoed += v.bytes;
            sock->consume(v.bytes);
          }
          pump();
          break;
        case net::TcpEvent::Reset:
        case net::TcpEvent::Closed:
          ++resets;
          connected = false;
          break;
        default:
          break;
      }
    });
    sock->connect(dst, 22, [this](bool ok) {
      if (!ok) {
        sock.reset();
        app->call_after(100 * sim::kMillisecond,
                        [this](sim::Context&) { connect(); });
      }
    });
  }
  void pump() {
    while (connected && sock && outstanding < 4 &&
           sock->send_space() >= kWrite) {
      ++outstanding;
      sock->send(kWrite, [this](bool ok) {
        --outstanding;
        if (ok) pump();
      });
    }
    if (!poll_scheduled) {
      poll_scheduled = true;
      app->call_after(20 * sim::kMillisecond, [this](sim::Context&) {
        poll_scheduled = false;
        pump();
      });
    }
  }
};

// A fleet of idle-but-established connections from one application actor:
// enough distinct sockets to push the checkpoint directory past one storage
// value without the traffic cost of 1500 live streams.
struct ConnFleet {
  AppActor* app;
  net::Ipv4Addr dst;
  int target;
  std::vector<std::unique_ptr<TcpSocket>> socks;
  int connected = 0;
  int resets = 0;
  int failures = 0;

  ConnFleet(AppActor* a, net::Ipv4Addr d, int t)
      : app(a), dst(d), target(t) {}

  void start() {
    app->call([this](sim::Context&) { kick(); });
  }
  void kick() {
    // Batched dial-out: a single SYN flood of 1500 would overflow the
    // accept backlog; 25 every 10 ms settles in well under a second.
    for (int burst = 0; static_cast<int>(socks.size()) < target && burst < 25;
         ++burst) {
      open();
    }
    if (static_cast<int>(socks.size()) < target) {
      app->call_after(10 * sim::kMillisecond,
                      [this](sim::Context&) { kick(); });
    }
  }
  void open() {
    socks.push_back(std::make_unique<TcpSocket>(*app));
    TcpSocket* s = socks.back().get();
    s->on_event([this](net::TcpEvent ev) {
      if (ev == net::TcpEvent::Connected) ++connected;
      else if (ev == net::TcpEvent::Reset || ev == net::TcpEvent::Closed)
        ++resets;
    });
    s->connect(dst, 22, [this](bool ok) {
      if (!ok) ++failures;
    });
  }
};

}  // namespace

// The headline: the checkpointing-on twin of
// Recovery.TcpCrashBreaksConnectionsButListenersRecover.  Same rig, same
// crash — but the established connections survive with ZERO reconnects.
TEST(Checkpoint, TcpCrashKeepsEstablishedConnections) {
  Rig rig(ckpt_opts());
  rig.tb.run_until(2 * sim::kSecond);
  EXPECT_TRUE(rig.ssh.connected());
  const std::uint64_t reconnects_before = rig.ssh.reconnects();
  EXPECT_EQ(reconnects_before, 1u);  // the initial connect, nothing else

  rig.faults.inject(servers::kTcpName, FaultType::Crash);
  rig.tb.run_until(8 * sim::kSecond);

  // Connections were rebuilt from their checkpoints, not re-established.
  EXPECT_GE(rig.restored(), 1u);
  EXPECT_TRUE(rig.ssh.connected());
  EXPECT_EQ(rig.ssh.resets(), 0u);
  EXPECT_EQ(rig.ssh.reconnects(), 1u);  // still only the initial connect
  // The echo session kept making progress after the crash.
  const std::uint64_t ok_at_8s = rig.ssh.ok();
  EXPECT_GT(ok_at_8s, 30u);
  // The bulk transfer recovered its bitrate.
  const std::uint64_t before = rig.rx_bytes();
  rig.tb.run_until(10 * sim::kSecond);
  const double mbps = (rig.rx_bytes() - before) * 8.0 / 2.0 / 1e6;
  EXPECT_GT(mbps, 500.0);
  // And UDP/DNS was untouched, as always.
  EXPECT_GT(rig.resolver.answered(), 20u);
}

// Byte-exactness: a crash mid-bulk-transfer must not lose or duplicate a
// single byte of the stream the application was told was accepted.
TEST(Checkpoint, ByteExactStreamAcrossCrash) {
  TestbedOptions opts = ckpt_opts();
  Testbed tb(opts);
  AppActor* rx_app = tb.peer().add_app("exact_rx");
  apps::BulkReceiver::Config rc;
  rc.record_series = false;
  apps::BulkReceiver receiver(tb.peer(), rx_app, rc);
  receiver.start();

  constexpr std::uint64_t kTarget = 48ull << 20;  // ~0.4 s at 1 GbE
  AppActor* tx_app = tb.newtos().add_app("exact_tx");
  ExactSender sender(tb.newtos(), tx_app, tb.newtos().peer_addr(0), 5001,
                     kTarget);
  sender.start();

  FaultInjector faults(tb.newtos(), 7);
  faults.inject_at(300 * sim::kMillisecond, servers::kTcpName,
                   FaultType::Crash);
  tb.run_until(6 * sim::kSecond);

  EXPECT_EQ(sender.connects, 1);
  EXPECT_EQ(sender.resets, 0);
  EXPECT_EQ(sender.queued, kTarget);
  EXPECT_EQ(sender.outstanding, 0);
  // Every accepted byte arrived exactly once: no loss, no duplication.
  EXPECT_EQ(receiver.bytes(), kTarget);
  EXPECT_GE(tb.newtos().tcp_engine()->stats().conns_restored, 1u);
}

// Crash while the zero-copy splice path is mid-flight: the echo server's
// receive queue holds borrowed frames and its send queue holds forwarded
// sub-range chunks into IP's receive pool.  Both must survive the crash
// through the loan ledger (the teardown leak check enforces the ledger
// half).
TEST(Checkpoint, CrashMidZeroCopySplice) {
  Testbed tb(ckpt_opts());
  AppActor* sshd_app = tb.newtos().add_app("sshd");
  apps::EchoServer sshd(tb.newtos(), sshd_app, {});
  sshd.start();
  AppActor* flood_app = tb.peer().add_app("flood");
  FloodEcho flood(tb.peer(), flood_app, tb.peer().peer_addr(0));
  flood.start();

  FaultInjector faults(tb.newtos(), 7);
  tb.run_until(2 * sim::kSecond);
  const std::uint64_t echoed_before = flood.echoed;
  EXPECT_GT(echoed_before, 0u);
  faults.inject(servers::kTcpName, FaultType::Crash);
  tb.run_until(5 * sim::kSecond);

  EXPECT_EQ(flood.connects, 1);
  EXPECT_EQ(flood.resets, 0);
  // The splice resumed and kept echoing after the crash.
  EXPECT_GT(flood.echoed, echoed_before + (4u << 20));
  EXPECT_GE(tb.newtos().tcp_engine()->stats().conns_restored, 1u);
}

// Crash while receive-side batching is aggregating inbound segments: the
// kL4RxAgg loan machinery (transport borrowers) and the checkpoint parking
// must compose — frames in dead aggregates are reclaimed by IP, frames the
// engine had accepted ride the checkpoint.
TEST(Checkpoint, CrashMidRxAggregate) {
  TestbedOptions opts = ckpt_opts();
  opts.rx_coalesce_frames = 8;
  opts.gro = true;
  Testbed tb(opts);
  AppActor* rx_app = tb.newtos().add_app("iperf_rx");
  apps::BulkReceiver::Config rc;
  rc.record_series = false;
  apps::BulkReceiver receiver(tb.newtos(), rx_app, rc);
  receiver.start();
  AppActor* tx_app = tb.peer().add_app("iperf_tx");
  apps::BulkSender::Config sc;
  sc.dst = tb.peer().peer_addr(0);
  apps::BulkSender sender(tb.peer(), tx_app, sc);
  sender.start();

  FaultInjector faults(tb.newtos(), 7);
  tb.run_until(2 * sim::kSecond);
  const std::uint64_t bytes_before = receiver.bytes();
  EXPECT_GT(bytes_before, 0u);
  EXPECT_GT(tb.newtos().tcp_engine()->stats().aggs_in, 0u);
  faults.inject(servers::kTcpName, FaultType::Crash);
  tb.run_until(6 * sim::kSecond);

  EXPECT_EQ(tb.peer().stats().get("iperf_tx.resets"), 0u);
  EXPECT_EQ(tb.peer().stats().get("iperf_tx.connects"), 1u);
  EXPECT_GT(receiver.bytes(), bytes_before + (16u << 20));
  EXPECT_GE(tb.newtos().tcp_engine()->stats().conns_restored, 1u);
}

// A crash storm: the same replica dies four times in two seconds.  Each
// incarnation re-checkpoints, so every crash is survived — still zero
// reconnects.
TEST(Checkpoint, RepeatedCrashStorm) {
  Rig rig(ckpt_opts());
  for (int k = 0; k < 4; ++k) {
    rig.faults.inject_at((2000 + 500 * k) * sim::kMillisecond,
                         servers::kTcpName, FaultType::Crash);
  }
  rig.tb.run_until(9 * sim::kSecond);

  // conns_restored is per incarnation: the LAST restart alone rebuilt the
  // rig's established connections (echo + bulk).
  EXPECT_GE(rig.restored(), 2u);
  EXPECT_TRUE(rig.ssh.connected());
  EXPECT_EQ(rig.ssh.resets(), 0u);
  EXPECT_EQ(rig.ssh.reconnects(), 1u);
  const std::uint64_t before = rig.rx_bytes();
  rig.tb.run_until(11 * sim::kSecond);
  const double mbps = (rig.rx_bytes() - before) * 8.0 / 2.0 / 1e6;
  EXPECT_GT(mbps, 500.0);
}

// Sharded transport plane: killing one replica restores exactly its own
// flows from its own namespace; every client of every shard survives with
// zero reconnects.
TEST(Checkpoint, ShardedReplicaCrashRestoresItsOwnFlows) {
  TestbedOptions opts = ckpt_opts();
  opts.tcp_shards = 2;
  Testbed tb(opts);
  AppActor* sshd_app = tb.newtos().add_app("sshd");
  apps::EchoServer sshd(tb.newtos(), sshd_app, {});
  sshd.start();

  std::vector<std::unique_ptr<apps::EchoClient>> clients;
  std::vector<AppActor*> client_apps;
  for (int i = 0; i < 4; ++i) {
    client_apps.push_back(
        tb.peer().add_app("ssh" + std::to_string(i)));
    apps::EchoClient::Config cc;
    cc.dst = tb.peer().peer_addr(0);
    cc.prefix = "echo" + std::to_string(i);
    clients.push_back(std::make_unique<apps::EchoClient>(
        tb.peer(), client_apps.back(), cc));
    clients.back()->start();
  }

  FaultInjector faults(tb.newtos(), 7);
  tb.run_until(2 * sim::kSecond);
  for (auto& c : clients) EXPECT_TRUE(c->connected());
  // With four distinct 4-tuples both replicas carry flows; kill replica 1.
  faults.inject("tcp1", FaultType::Crash);
  tb.run_until(6 * sim::kSecond);

  std::uint64_t restored = 0;
  for (int s = 0; s < 2; ++s) {
    restored += tb.newtos().tcp_engine(s)->stats().conns_restored;
  }
  EXPECT_GE(restored, 1u);
  for (auto& c : clients) {
    EXPECT_TRUE(c->connected());
    EXPECT_EQ(c->resets(), 0u);
    EXPECT_EQ(c->reconnects(), 1u);
    EXPECT_GT(c->ok(), 30u);
  }
}

// The storage server crashing does not undermine a later TCP crash: TCP
// re-stores its whole checkpoint namespace when the storage server comes
// back (the same obligation every server has for its state).
TEST(Checkpoint, StorageCrashThenTcpCrash) {
  Rig rig(ckpt_opts());
  rig.tb.run_until(2 * sim::kSecond);
  rig.faults.inject(servers::kStoreName, FaultType::Crash);
  rig.tb.run_until(3 * sim::kSecond);
  rig.faults.inject(servers::kTcpName, FaultType::Crash);
  rig.tb.run_until(8 * sim::kSecond);

  EXPECT_GE(rig.restored(), 1u);
  EXPECT_TRUE(rig.ssh.connected());
  EXPECT_EQ(rig.ssh.resets(), 0u);
  EXPECT_EQ(rig.ssh.reconnects(), 1u);
}

// Past 1024 tracked connections the checkpoint directory no longer fits the
// single storage value the first cut assumed: it must page into chained
// directory keys (CheckpointWriter::kCkptDirPageSocks), count the spill in
// tcp.ckpt_overflow, and a restore must walk the whole chain — every one of
// 1500 connections comes back, none is reset.
TEST(Checkpoint, DirectoryOverflowPagesAndRecoversAll) {
  Testbed tb(ckpt_opts());
  AppActor* sshd_app = tb.newtos().add_app("sshd");
  apps::EchoServer sshd(tb.newtos(), sshd_app, {});
  sshd.start();
  AppActor* fleet_app = tb.peer().add_app("fleet");
  ConnFleet fleet(fleet_app, tb.peer().peer_addr(0), 1500);
  fleet.start();

  FaultInjector faults(tb.newtos(), 7);
  tb.run_until(4 * sim::kSecond);
  ASSERT_EQ(fleet.failures, 0);
  ASSERT_EQ(fleet.connected, 1500);
  tb.newtos().publish_channel_stats();
  EXPECT_GE(tb.newtos().stats().get("tcp.ckpt_overflow"), 1u)
      << "1500 connections never spilled the directory";

  faults.inject(servers::kTcpName, FaultType::Crash);
  tb.run_until(10 * sim::kSecond);

  std::uint64_t restored = 0;
  for (int s = 0; s < tb.newtos().tcp_shard_count(); ++s) {
    restored += tb.newtos().tcp_engine(s)->stats().conns_restored;
  }
  EXPECT_GE(restored, 1500u);
  EXPECT_EQ(fleet.resets, 0);
  EXPECT_EQ(fleet.connected, 1500);
}

// Checkpoint overhead is visible, bounded, and attributed: journal puts
// happen on transitions and watermarks — not per segment.
TEST(Checkpoint, OverheadSurfacesAsNodeStats) {
  Rig rig(ckpt_opts());
  rig.tb.run_until(3 * sim::kSecond);
  rig.tb.newtos().publish_channel_stats();
  auto& stats = rig.tb.newtos().stats();
  const std::uint64_t puts = stats.get("tcp.ckpt_puts");
  EXPECT_GT(puts, 0u);
  EXPECT_GT(stats.get("tcp.ckpt_bytes"), 0u);
  // Far fewer journal puts than segments processed: the scalars ride the
  // pool-resident page, not IPC.
  const auto& es = rig.tb.newtos().tcp_engine()->stats();
  EXPECT_LT(puts, (es.segs_in + es.segs_out) / 20);
}
