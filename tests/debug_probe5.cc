#include <cstdio>
#include "src/core/apps.h"
#include "src/core/testbed.h"
using namespace newtos;
int main() {
  TestbedOptions o;
  o.mode = StackMode::kIdealMonolithic; o.nics = 1; o.tso = true;
  o.gbps = 10.0; o.app_write_size = 65536; o.cost_scale = 0.4;
  Testbed tb(o);
  auto* rx_app = tb.peer().add_app("rx");
  apps::BulkReceiver::Config rc; rc.record_series = false;
  apps::BulkReceiver rx(tb.peer(), rx_app, rc); rx.start();
  auto* tx_app = tb.newtos().add_app("tx");
  apps::BulkSender::Config sc; sc.dst = tb.newtos().peer_addr(0); sc.write_size = 65536;
  apps::BulkSender tx(tb.newtos(), tx_app, sc); tx.start();
  std::uint64_t prev = 0;
  for (int ms = 100; ms <= 1000; ms += 150) {
    tb.run_until(ms * sim::kMillisecond);
    auto* t = tb.newtos().tcp_engine();
    auto* pt = tb.peer().tcp_engine();
    std::printf("t=%d Mbps=%.0f retx=%llu rtos=%llu fr=%llu peer_ooo=%llu conn=%s\n",
      ms, (rx.bytes()-prev)*8.0/0.15/1e6,
      (unsigned long long)t->stats().bytes_retx, (unsigned long long)t->stats().rtos,
      (unsigned long long)t->stats().fast_retransmits,
      (unsigned long long)pt->stats().ooo_dropped,
      t->connection_count() ? t->debug(1).c_str() : "-");
    prev = rx.bytes();
  }
  auto& nic = *tb.newtos().nic(0); auto& pnic = *tb.peer().nic(0);
  std::printf("dutnic tx=%llu nobuf=%llu | peernic rx=%llu nobuf=%llu\n",
    (unsigned long long)nic.stats().tx_frames, (unsigned long long)nic.stats().rx_no_buffer,
    (unsigned long long)pnic.stats().rx_frames, (unsigned long long)pnic.stats().rx_no_buffer);
  return 0;
}
