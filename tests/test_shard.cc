// The sharded transport plane: N replicated TCP/UDP servers with 4-tuple
// flow steering.
//
//  - Steering is deterministic per 4-tuple (one flow, one replica, always).
//  - An in-batch open lands on the shard its socket id encodes, and the
//    connection's state lives in exactly that replica's engine.
//  - A killed replica is restarted by the reincarnation server without
//    disturbing connections on sibling shards, and its replicated listener
//    comes back so the port keeps accepting.
//  - Replicated UDP socket state delivers datagrams hashed to any shard.
//  - ReincarnationServer::manage() is idempotent.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "src/core/apps.h"
#include "src/core/socket.h"
#include "src/core/testbed.h"
#include "src/net/steering.h"
#include "src/servers/proto.h"

using namespace newtos;

namespace {

TestbedOptions sharded(int tcp_shards, int udp_shards = 1, int nics = 1) {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  opts.nics = nics;
  opts.tcp_shards = tcp_shards;
  opts.udp_shards = udp_shards;
  return opts;
}

}  // namespace

// The hash is a pure function of the 4-tuple: the same flow always steers
// to the same replica, and a realistic tuple population covers every shard.
TEST(Sharding, SteeringDeterministicPerTuple) {
  const net::Ipv4Addr dst(10, 1, 0, 1);
  std::set<int> hit;
  for (std::uint16_t sport = 30000; sport < 30256; ++sport) {
    const net::Ipv4Addr src(10, 1, 0, 2);
    const int a = net::steer_shard(src, dst, sport, 5001, 4);
    const int b = net::steer_shard(src, dst, sport, 5001, 4);
    EXPECT_EQ(a, b);
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 4);
    hit.insert(a);
  }
  EXPECT_EQ(hit.size(), 4u) << "256 tuples should cover all 4 shards";
  // Single-shard arrangements always steer to 0.
  EXPECT_EQ(net::steer_shard(dst, dst, 1, 2, 1), 0);
}

// Opens spread round-robin over the replicas and the socket id encodes the
// chosen shard; an op chained onto an in-batch open (open+connect in one
// flush) executes on that same shard — the connection must exist in exactly
// the engine the id names.
TEST(Sharding, InBatchOpenLandsOnEncodedShard) {
  Testbed tb(sharded(4));

  AppActor* srv_app = tb.peer().add_app("srv");
  apps::BulkReceiver::Config rc;
  rc.record_series = false;
  apps::BulkReceiver receiver(tb.peer(), srv_app, rc);
  receiver.start();

  AppActor* app = tb.newtos().add_app("client");
  std::vector<std::unique_ptr<TcpSocket>> socks;
  app->call([&](sim::Context&) {
    // All eight open+connect pairs ride one submission-ring flush.
    for (int i = 0; i < 8; ++i) {
      socks.push_back(std::make_unique<TcpSocket>(*app));
      socks.back()->connect(tb.newtos().peer_addr(0), 5001, [](bool) {});
    }
  });
  tb.run_until(200 * sim::kMillisecond);

  std::vector<int> shards;
  for (const auto& s : socks) {
    ASSERT_NE(s->id(), 0u);
    const int shard = net::sock_shard(s->id());
    shards.push_back(shard);
    // The connection lives in the engine its id encodes, and nowhere else.
    for (int k = 0; k < tb.newtos().tcp_shard_count(); ++k) {
      const bool here = tb.newtos().tcp_engine(k)->tuple(s->id()).has_value();
      EXPECT_EQ(here, k == shard) << "sock " << s->id() << " shard " << k;
    }
    EXPECT_NE(tb.newtos().tcp_engine(shard)->state(s->id()),
              net::TcpState::Closed);
  }
  // Round-robin assignment: 8 opens over 4 shards touch every shard twice.
  std::vector<int> counts(4, 0);
  for (int s : shards) ++counts[s];
  for (int k = 0; k < 4; ++k) EXPECT_EQ(counts[k], 2) << "shard " << k;

  // Each replica stages its sends in its own pool.
  for (int k = 0; k < 4; ++k) {
    EXPECT_NE(tb.newtos().pools().find_by_name(servers::tcp_shard_name(k) +
                                               ".buf"),
              nullptr);
  }
}

// Inbound flows: the peer connects to one listening port on the system
// under test; SO_REUSEPORT-style replication gives every replica an accept
// queue, the 4-tuple hash spreads the connections, and the aggregate
// arrives intact.
TEST(Sharding, InboundFlowsSpreadAcrossReplicas) {
  Testbed tb(sharded(2));

  AppActor* rx_app = tb.newtos().add_app("rx");
  apps::BulkReceiver::Config rc;
  rc.record_series = false;
  apps::BulkReceiver receiver(tb.newtos(), rx_app, rc);
  receiver.start();

  std::vector<std::unique_ptr<apps::BulkSender>> senders;
  for (int i = 0; i < 8; ++i) {
    AppActor* tx_app = tb.peer().add_app("tx" + std::to_string(i));
    apps::BulkSender::Config sc;
    sc.dst = tb.peer().peer_addr(0);
    senders.push_back(
        std::make_unique<apps::BulkSender>(tb.peer(), tx_app, sc));
    senders.back()->start();
  }

  tb.run_until(500 * sim::kMillisecond);

  EXPECT_GT(receiver.bytes(), 1u << 20);
  // Both replicas carry flows (8 deterministic tuples cover 2 shards).
  EXPECT_GE(tb.newtos().tcp_engine(0)->connection_count(), 1u);
  EXPECT_GE(tb.newtos().tcp_engine(1)->connection_count(), 1u);
  // Both replicas own an accept queue for the port (the replicated
  // listener), and the replica's copy carries the home shard's socket id.
  ASSERT_GE(tb.newtos().tcp_engine(0)->listeners().size(), 1u);
  ASSERT_GE(tb.newtos().tcp_engine(1)->listeners().size(), 1u);
  EXPECT_EQ(tb.newtos().tcp_engine(0)->listeners()[0].id,
            tb.newtos().tcp_engine(1)->listeners()[0].id);
}

// Kill one replica mid-traffic: its established connections die (the
// paper's deliberate TCP trade-off), the reincarnation server restarts just
// that replica, flows on the sibling shard keep running throughout, and the
// restarted replica's listener replica is restored from storage.
TEST(Sharding, KilledReplicaRestartsWithoutDisturbingSiblings) {
  Testbed tb(sharded(2));

  AppActor* rx_app = tb.newtos().add_app("rx");
  apps::BulkReceiver::Config rc;
  rc.record_series = false;
  apps::BulkReceiver receiver(tb.newtos(), rx_app, rc);
  receiver.start();

  std::vector<std::unique_ptr<apps::BulkSender>> senders;
  for (int i = 0; i < 8; ++i) {
    AppActor* tx_app = tb.peer().add_app("tx" + std::to_string(i));
    apps::BulkSender::Config sc;
    sc.dst = tb.peer().peer_addr(0);
    senders.push_back(
        std::make_unique<apps::BulkSender>(tb.peer(), tx_app, sc));
    senders.back()->start();
  }

  tb.run_until(400 * sim::kMillisecond);
  ASSERT_GE(tb.newtos().tcp_engine(0)->connection_count(), 1u);
  ASSERT_GE(tb.newtos().tcp_engine(1)->connection_count(), 1u);

  const int victim = 1;
  const int sibling = 0;
  auto key_set = [](const std::vector<net::PfStateKey>& keys) {
    std::set<std::tuple<std::uint32_t, std::uint32_t, std::uint16_t,
                        std::uint16_t>>
        out;
    for (const auto& k : keys)
      out.insert({k.src.value, k.dst.value, k.sport, k.dport});
    return out;
  };
  const auto victim_flows_before =
      key_set(tb.newtos().tcp_engine(victim)->connection_keys());
  const auto sibling_flows_before =
      key_set(tb.newtos().tcp_engine(sibling)->connection_keys());
  const std::uint64_t sibling_bytes_before =
      tb.newtos().tcp_engine(sibling)->stats().bytes_in;
  const std::uint32_t incarnation_before =
      tb.newtos().server(servers::tcp_shard_name(victim))->incarnation();

  tb.newtos().manual_restart(servers::tcp_shard_name(victim));
  tb.run_until(800 * sim::kMillisecond);

  // The victim came back (reincarnation restarted only it) with its accept
  // queue for the shared port restored from storage.
  servers::Server* revived =
      tb.newtos().server(servers::tcp_shard_name(victim));
  ASSERT_NE(revived, nullptr);
  EXPECT_TRUE(revived->ready());
  EXPECT_EQ(revived->incarnation(), incarnation_before + 1);
  EXPECT_GE(tb.newtos().tcp_engine(victim)->listeners().size(), 1u);
  // Its established connections died with it (Table I); the senders'
  // retries may have built fresh flows since, but none of the old tuples
  // survive the restart.
  const auto victim_flows_after =
      key_set(tb.newtos().tcp_engine(victim)->connection_keys());
  for (const auto& k : victim_flows_before) {
    EXPECT_EQ(victim_flows_after.count(k), 0u);
  }

  // The sibling never blinked: every pre-kill flow still lives there and
  // bytes kept moving throughout the victim's outage.
  const auto sibling_flows_after =
      key_set(tb.newtos().tcp_engine(sibling)->connection_keys());
  for (const auto& k : sibling_flows_before) {
    EXPECT_EQ(sibling_flows_after.count(k), 1u);
  }
  EXPECT_GT(tb.newtos().tcp_engine(sibling)->stats().bytes_in,
            sibling_bytes_before + (1u << 18));
}

// A listener closed while one replica is down must not be resurrected by
// that replica's storage on restart: only home records restore, and the
// siblings' re-seed carries current state (deletions included).
TEST(Sharding, StaleListenerNotResurrectedAfterOutage) {
  Testbed tb(sharded(2));

  AppActor* app = tb.newtos().add_app("srv");
  auto listener = std::make_unique<TcpListener>(*app);
  app->call([&](sim::Context&) {
    listener->bind_listen(net::Ipv4Addr{}, 5001, 4, [](bool) {});
  });
  tb.run_until(100 * sim::kMillisecond);

  ASSERT_NE(listener->id(), 0u);
  const int home = net::sock_shard(listener->id());
  const int other = 1 - home;
  // Both replicas own an accept queue for the port.
  ASSERT_EQ(tb.newtos().tcp_engine(home)->listeners().size(), 1u);
  ASSERT_EQ(tb.newtos().tcp_engine(other)->listeners().size(), 1u);

  // Kill the replica, and close the listener while it is down — the
  // kShardRepClose towards it is lost.
  tb.newtos().manual_restart(servers::tcp_shard_name(other));
  tb.run_until(101 * sim::kMillisecond);
  listener.reset();  // close rides the ring to the (live) home shard
  tb.run_until(400 * sim::kMillisecond);

  EXPECT_TRUE(tb.newtos().server(servers::tcp_shard_name(other))->ready());
  // Neither replica still owns the closed port.
  EXPECT_EQ(tb.newtos().tcp_engine(home)->listeners().size(), 0u);
  EXPECT_EQ(tb.newtos().tcp_engine(other)->listeners().size(), 0u);
}

// Connections queued in a replica's accept queue survive a sibling's
// restart: the re-seed that follows the sibling's announce is an in-place
// upsert, not a fresh listener that would wipe the queue.
TEST(Sharding, AcceptQueueSurvivesSiblingReseed) {
  Testbed tb(sharded(2));

  AppActor* app = tb.newtos().add_app("srv");
  auto listener = std::make_unique<TcpListener>(*app);
  app->call([&](sim::Context&) {
    // Deliberately no accept handler: connections pile up in the queues.
    listener->bind_listen(net::Ipv4Addr{}, 5001, 8, [](bool) {});
  });

  std::vector<std::unique_ptr<TcpSocket>> peers;
  AppActor* cli_app = tb.peer().add_app("cli");
  cli_app->call_after(20 * sim::kMillisecond, [&](sim::Context&) {
    for (int i = 0; i < 6; ++i) {
      peers.push_back(std::make_unique<TcpSocket>(*cli_app));
      peers.back()->connect(tb.peer().peer_addr(0), 5001, [](bool) {});
    }
  });
  tb.run_until(200 * sim::kMillisecond);

  ASSERT_NE(listener->id(), 0u);
  const int home = net::sock_shard(listener->id());
  const int other = 1 - home;
  const std::size_t queued_on_other =
      tb.newtos().tcp_engine(other)->connection_count();
  ASSERT_GE(queued_on_other, 1u) << "6 tuples should land on both shards";

  // Restart the HOME shard: on re-announce it re-seeds its listener to the
  // sibling, which must keep the sibling's queued connections acceptable.
  tb.newtos().manual_restart(servers::tcp_shard_name(home));
  tb.run_until(500 * sim::kMillisecond);

  std::size_t accepted = 0;
  app->call([&](sim::Context&) {
    while (auto c = listener->accept()) {
      ++accepted;
      c->close({});
    }
  });
  tb.run_until(600 * sim::kMillisecond);
  EXPECT_GE(accepted, queued_on_other);
  listener.reset();
  tb.run_until(650 * sim::kMillisecond);
}

// Replicated UDP socket state: datagrams from many peers hash across both
// replicas, each replica's copy of the bound socket queues its share, and
// the application drains them all through one socket object.
TEST(Sharding, UdpReplicasDeliverAcrossShards) {
  Testbed tb(sharded(1, /*udp_shards=*/2));

  AppActor* srv_app = tb.newtos().add_app("udp_srv");
  UdpSocket server(*srv_app);
  int received = 0;
  srv_app->call([&](sim::Context&) {
    server.bind(net::Ipv4Addr{}, 5353, [](bool) {});
    server.on_event([&](net::TcpEvent) {
      while (auto d = server.recvfrom_zc()) ++received;
    });
  });

  constexpr int kClients = 8;
  AppActor* cli_app = tb.peer().add_app("udp_cli");
  std::vector<std::unique_ptr<UdpSocket>> clients;
  // Give the server's bind a moment to replicate to the sibling shard;
  // datagrams hashed there before the record lands would be dropped.
  cli_app->call_after(5 * sim::kMillisecond, [&](sim::Context&) {
    for (int i = 0; i < kClients; ++i) {
      clients.push_back(std::make_unique<UdpSocket>(*cli_app));
      // Distinct source ports: the 4-tuples hash over both replicas.
      clients.back()->sendto(256, tb.peer().peer_addr(0), 5353, [](bool) {});
    }
  });

  tb.run_until(300 * sim::kMillisecond);
  EXPECT_EQ(received, kClients);
  // Both replicas actually carried traffic and both know the socket.
  EXPECT_GT(tb.newtos().udp_engine(0)->stats().datagrams_in, 0u);
  EXPECT_GT(tb.newtos().udp_engine(1)->stats().datagrams_in, 0u);
  EXPECT_EQ(tb.newtos().udp_engine(0)->socket_count(),
            tb.newtos().udp_engine(1)->socket_count());
}

// Re-managing a server must not duplicate its heartbeat/restart entry —
// a duplicate Child used to double-count restarts and heartbeat twice.
TEST(Sharding, ReincarnationManageIsIdempotent) {
  Testbed tb(sharded(1));
  servers::Server* ip = tb.newtos().server(servers::kIpName);
  ASSERT_NE(ip, nullptr);
  tb.newtos().reincarnation()->manage(ip);  // second registration: no-op

  tb.run_until(100 * sim::kMillisecond);
  tb.newtos().manual_restart(servers::kIpName);
  tb.run_until(400 * sim::kMillisecond);

  const auto& stats = tb.newtos().reincarnation()->child_stats();
  auto it = stats.find(servers::kIpName);
  ASSERT_NE(it, stats.end());
  EXPECT_EQ(it->second.crashes, 1u);
  EXPECT_EQ(it->second.restarts, 1u);
  EXPECT_TRUE(ip->ready());
}
