// The chunk-lending (zero-copy) socket data plane: recv_zc/consume views,
// send reservations, forward() splicing, borrowed datagrams, the loan
// ledger, and ENOBUFS surfacing (Sections IV "Pools" and V-C "Zero Copy").
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/apps.h"
#include "src/core/socket.h"
#include "src/core/testbed.h"

using namespace newtos;

namespace {

TestbedOptions options(StackMode mode = StackMode::kSplitSyscall) {
  TestbedOptions opts;
  opts.mode = mode;
  return opts;
}

// Finds a pool on `node` whose name ends with `suffix` (names are
// "<owner>/<name>").
chan::Pool* pool_named(Node& node, const std::string& suffix) {
  for (chan::Pool* p : node.pools().all()) {
    if (p->name().size() >= suffix.size() &&
        p->name().compare(p->name().size() - suffix.size(), suffix.size(),
                          suffix) == 0) {
      return p;
    }
  }
  return nullptr;
}

}  // namespace

// recv_zc exposes the received stream as views over the live pool chunks —
// one view per frame the NIC delivered — without copying, and partial
// consume() re-slices the remainder correctly across chunk boundaries.
TEST(ZeroCopyRecv, MultiChunkViewBoundaries) {
  Testbed tb(options());

  AppActor* srv_app = tb.newtos().add_app("srv");
  TcpListener listener(*srv_app);
  std::unique_ptr<TcpSocket> conn;
  listener.on_event([&](net::TcpEvent ev) {
    if (ev != net::TcpEvent::AcceptReady) return;
    while (auto c = listener.accept()) conn = std::move(c);
  });
  listener.bind_listen(net::Ipv4Addr{}, 7300, 4, [](bool) {});

  AppActor* cli_app = tb.peer().add_app("cli");
  TcpSocket cli(*cli_app);
  cli.on_event([&](net::TcpEvent ev) {
    if (ev == net::TcpEvent::Connected) {
      cli_app->call([&](sim::Context&) { cli.send(8192, {}); });
    }
  });
  cli.connect(tb.peer().peer_addr(0), 7300, [](bool) {});
  tb.run_until(500 * sim::kMillisecond);
  ASSERT_NE(conn, nullptr);

  srv_app->call([&](sim::Context&) {
    const std::size_t avail = conn->recv_available();
    ASSERT_EQ(avail, 8192u);
    RecvView v = conn->recv_zc();
    // 8 KB at MSS 1460 arrives as several frames: one borrowed view each.
    EXPECT_GE(v.chunks, 2u);
    std::size_t total = 0;
    for (std::size_t i = 0; i < v.chunks; ++i) total += v.chunk[i].size();
    EXPECT_EQ(total, v.bytes);
    EXPECT_EQ(v.bytes, avail);

    // Consume half of the first chunk: the next view must start inside it.
    const std::size_t first = v.chunk[0].size();
    const std::size_t half = first / 2;
    EXPECT_EQ(conn->consume(half), half);
    RecvView after = conn->recv_zc();
    EXPECT_EQ(after.bytes, avail - half);
    EXPECT_EQ(after.chunk[0].size(), first - half);

    // Drain the rest; nothing was copied on this node.
    EXPECT_EQ(conn->consume(after.bytes), after.bytes);
    EXPECT_TRUE(conn->recv_zc().empty());
  });
  tb.run_until(600 * sim::kMillisecond);
  EXPECT_EQ(tb.newtos().stats().get("sock.bytes_copied"), 0u);
}

// A receiver that never consumes closes its advertised window; a partial
// consume() must reopen it (window-update ACK) so the sender resumes.
TEST(ZeroCopyRecv, PartialConsumeReopensClosedWindow) {
  Testbed tb(options());

  AppActor* srv_app = tb.newtos().add_app("srv");
  TcpListener listener(*srv_app);
  std::unique_ptr<TcpSocket> conn;
  listener.on_event([&](net::TcpEvent ev) {
    if (ev != net::TcpEvent::AcceptReady) return;
    while (auto c = listener.accept()) conn = std::move(c);
  });
  listener.bind_listen(net::Ipv4Addr{}, 7301, 4, [](bool) {});

  // A bulk sender with nobody draining: it fills the receiver's 1 MB
  // receive buffer plus its own send buffer, then stalls on the window.
  AppActor* tx_app = tb.peer().add_app("tx");
  apps::BulkSender::Config sc;
  sc.dst = tb.peer().peer_addr(0);
  sc.port = 7301;
  sc.write_size = 65536;
  apps::BulkSender sender(tb.peer(), tx_app, sc);
  sender.start();

  tb.run_until(3 * sim::kSecond);
  ASSERT_NE(conn, nullptr);
  const std::size_t stalled = conn->recv_available();
  // The receive buffer is full enough that the advertised window is shut
  // (rcv space below one MSS).
  ASSERT_GT(stalled, (1u << 20) - 1500u);

  // Let it sit: no progress without a window update.
  tb.run_until(4 * sim::kSecond);
  EXPECT_EQ(conn->recv_available(), stalled);

  // Partial consume reopens the window; the sender must push new bytes.
  std::size_t consumed = 0;
  srv_app->call([&](sim::Context&) { consumed = conn->consume(256 * 1024); });
  tb.run_until(5 * sim::kSecond);
  EXPECT_EQ(consumed, 256u * 1024u);
  EXPECT_GT(conn->recv_available(), stalled - 256 * 1024);
}

// forward() splices received chunks onto another socket without touching
// the payload: a TCP proxy moves every byte end to end with zero copies on
// the proxy node.
TEST(ZeroCopyForward, ProxySpliceMovesAllBytes) {
  Testbed tb(options());
  constexpr std::uint32_t kWrite = 16384;
  constexpr int kWrites = 16;

  // Final receiver on the peer.
  AppActor* rx_app = tb.peer().add_app("rx");
  apps::BulkReceiver::Config rc;
  rc.port = 5002;
  rc.record_series = false;
  apps::BulkReceiver receiver(tb.peer(), rx_app, rc);
  receiver.start();

  // Proxy on newtos: inbound listener on 5001, outbound to peer:5002.
  AppActor* px_app = tb.newtos().add_app("proxy");
  TcpListener px_listener(*px_app);
  std::unique_ptr<TcpSocket> px_in;
  std::unique_ptr<TcpSocket> px_out;
  bool out_connected = false;
  auto pump = [&]() {
    if (!px_in || !px_out || !out_connected) return;
    while (px_in->forward(*px_out, 256 * 1024) > 0) {
    }
  };
  px_listener.on_event([&](net::TcpEvent ev) {
    if (ev != net::TcpEvent::AcceptReady) return;
    while (auto c = px_listener.accept()) {
      px_in = std::move(c);
      px_in->on_event([&](net::TcpEvent cev) {
        if (cev == net::TcpEvent::Readable) pump();
      });
      px_out = std::make_unique<TcpSocket>(*px_app);
      px_out->on_event([&](net::TcpEvent oev) {
        if (oev == net::TcpEvent::Connected) {
          out_connected = true;
          pump();
        } else if (oev == net::TcpEvent::Writable) {
          pump();
        }
      });
      px_out->connect(tb.newtos().peer_addr(0), 5002, [](bool) {});
      pump();
    }
  });
  px_listener.bind_listen(net::Ipv4Addr{}, 5001, 4, [](bool) {});

  // Source on the peer, sending a fixed volume through the proxy.
  AppActor* tx_app = tb.peer().add_app("tx");
  TcpSocket tx(*tx_app);
  int sent = 0;
  std::function<void()> send_next = [&]() {
    if (sent == kWrites) return;
    ++sent;
    tx_app->call([&](sim::Context&) {
      tx.send(kWrite, [&](bool ok) {
        ASSERT_TRUE(ok);
        send_next();
      });
    });
  };
  tx.on_event([&](net::TcpEvent ev) {
    if (ev == net::TcpEvent::Connected) send_next();
  });
  tx.connect(tb.peer().peer_addr(0), 5001, [](bool) {});

  tb.run_until(4 * sim::kSecond);
  EXPECT_EQ(sent, kWrites);
  EXPECT_EQ(receiver.bytes(), static_cast<std::uint64_t>(kWrite) * kWrites);
  // The proxy node never copied a payload byte.
  EXPECT_EQ(tb.newtos().stats().get("sock.bytes_copied"), 0u);
}

// A send reservation is filled in place (scatter-gather across chunks) and
// submitted as a chain; cancelling instead returns every loan.
TEST(ZeroCopySend, ReservationScatterGatherAndCancel) {
  Testbed tb(options());

  AppActor* rx_app = tb.peer().add_app("rx");
  apps::BulkReceiver::Config rc;
  rc.record_series = false;
  apps::BulkReceiver receiver(tb.peer(), rx_app, rc);
  receiver.start();

  AppActor* tx_app = tb.newtos().add_app("tx");
  TcpSocket tx(*tx_app);
  bool submitted_ok = false;
  tx.on_event([&](net::TcpEvent ev) {
    if (ev != net::TcpEvent::Connected) return;
    tx_app->call([&](sim::Context&) {
      SendReservation res = tx.reserve(24 * 1024, 8 * 1024);
      ASSERT_TRUE(res.valid());
      ASSERT_EQ(res.chunk_count(), 3u);
      for (std::size_t i = 0; i < res.chunk_count(); ++i) {
        auto view = res.chunk(i);
        ASSERT_EQ(view.size(), 8u * 1024u);
        view[0] = std::byte{0xab};  // fill in place: the exported buffer
      }
      tx.submit(std::move(res), [&](bool ok) { submitted_ok = ok; });

      // And one reservation that is abandoned: its loans must return.
      SendReservation dropped = tx.reserve(4096);
      ASSERT_TRUE(dropped.valid());
      dropped.cancel();
    });
  });
  tx.connect(tb.newtos().peer_addr(0), 5001, [](bool) {});

  tb.run_until(1 * sim::kSecond);
  EXPECT_TRUE(submitted_ok);
  EXPECT_EQ(receiver.bytes(), 24u * 1024u);
  EXPECT_EQ(tb.newtos().stats().get("sock.bytes_copied"), 0u);
  // No loans left anywhere (the Testbed destructor asserts this too).
  chan::Pool* buf = pool_named(tb.newtos(), "tcp.buf");
  ASSERT_NE(buf, nullptr);
  EXPECT_EQ(buf->borrows_outstanding(), 0u);
}

// Pool exhaustion on the send path surfaces as a clean error completion
// (kSockENoBufs through the ring), not a silent drop, and clears once
// chunks come back.
TEST(ZeroCopySend, PoolExhaustionSurfacesEnobufs) {
  Testbed tb(options());

  AppActor* rx_app = tb.peer().add_app("rx");
  apps::BulkReceiver::Config rc;
  rc.record_series = false;
  apps::BulkReceiver receiver(tb.peer(), rx_app, rc);
  receiver.start();

  AppActor* tx_app = tb.newtos().add_app("tx");
  TcpSocket tx(*tx_app);
  bool connected = false;
  tx.on_event([&](net::TcpEvent ev) {
    if (ev == net::TcpEvent::Connected) connected = true;
  });
  tx.connect(tb.newtos().peer_addr(0), 5001, [](bool) {});
  tb.run_until(300 * sim::kMillisecond);
  ASSERT_TRUE(connected);

  // Hoard the transport's whole buffer pool.
  net::TcpEngine* eng = tb.newtos().tcp_engine();
  ASSERT_NE(eng, nullptr);
  std::vector<chan::RichPtr> hoard;
  for (std::uint32_t size : {1u << 20, 1u << 16, 1u << 13, 1u << 10, 64u}) {
    for (;;) {
      chan::RichPtr p = eng->alloc_payload(size);
      if (!p.valid()) break;
      hoard.push_back(p);
    }
  }
  ASSERT_FALSE(hoard.empty());

  int failures = 0;
  bool ok_after = false;
  tx_app->call([&](sim::Context&) {
    // Legacy wrapper: completion must still arrive, as an error.
    tx.send(8192, [&](bool ok) {
      EXPECT_FALSE(ok);
      ++failures;
    });
    // Reservation API: the failure is visible before anything queues.
    SendReservation res = tx.reserve(8192);
    EXPECT_FALSE(res.valid());
  });
  tb.run_until(400 * sim::kMillisecond);
  EXPECT_EQ(failures, 1);
  EXPECT_GE(tb.newtos().stats().get("sock.enobufs"), 2u);

  // Return the hoarded chunks: sends work again.
  for (const auto& p : hoard) tb.newtos().pools().release(p);
  tx_app->call([&](sim::Context&) {
    tx.send(8192, [&](bool ok) { ok_after = ok; });
  });
  tb.run_until(1 * sim::kSecond);
  EXPECT_TRUE(ok_after);
  EXPECT_EQ(receiver.bytes(), 8192u);
}

// A borrowed datagram view survives a transport restart (the frame lives in
// the receive pool, whose owner did not crash) and its release stays a
// clean, single return of the loan.
TEST(BorrowedViews, ReleaseAfterTransportRestart) {
  Testbed tb(options());

  AppActor* srv_app = tb.newtos().add_app("srv");
  UdpSocket srv(*srv_app);
  std::optional<BorrowedDatagram> held;
  srv.on_event([&](net::TcpEvent) {
    if (!held) held = srv.recvfrom_zc();
  });
  srv.bind(net::Ipv4Addr{}, 5353, [](bool) {});

  AppActor* cli_app = tb.peer().add_app("cli");
  UdpSocket cli(*cli_app);
  cli.connect(tb.peer().peer_addr(0), 5353, [](bool) {});
  tb.run_until(100 * sim::kMillisecond);
  cli_app->call([&](sim::Context&) {
    cli.sendto(128, net::Ipv4Addr{}, 0, [](bool) {});
  });
  tb.run_until(300 * sim::kMillisecond);
  ASSERT_TRUE(held.has_value());
  ASSERT_TRUE(held->valid());
  EXPECT_EQ(held->data().size(), 128u);

  chan::Pool* rx = pool_named(tb.newtos(), "ip.rx");
  ASSERT_NE(rx, nullptr);
  EXPECT_EQ(rx->borrows_outstanding(), 1u);

  // Crash and restart the UDP transport while the app still holds the view.
  tb.newtos().manual_restart("udp");
  tb.run_until(2 * sim::kSecond);

  // The borrowed frame was untouched by the transport crash — the paper's
  // point about read-only pools: the original bytes are still intact.
  EXPECT_TRUE(held->valid());
  EXPECT_EQ(held->data().size(), 128u);
  held->release();
  EXPECT_FALSE(held->valid());
  EXPECT_EQ(rx->borrows_outstanding(), 0u);
  held->release();  // double release: no-op
  EXPECT_EQ(rx->borrows_outstanding(), 0u);
}

// A crashed borrower's loans are reclaimed wholesale: the owner frees every
// reference the dead app still held, so a loan can never strand a chunk.
TEST(BorrowedViews, ReclaimFreesACrashedBorrowersLoans) {
  Testbed tb(options());
  chan::Pool* buf = pool_named(tb.newtos(), "tcp.buf");
  ASSERT_NE(buf, nullptr);

  const std::size_t live_before = buf->chunks_live();
  chan::RichPtr a = buf->alloc(4096);
  chan::RichPtr b = buf->alloc(8192);
  ASSERT_TRUE(a.valid());
  ASSERT_TRUE(b.valid());
  buf->note_borrow(a, 77);
  buf->note_borrow(b, 77);
  EXPECT_EQ(buf->borrows_outstanding(), 2u);

  // The borrower dies without returning anything.
  EXPECT_EQ(buf->reclaim(77), 2u);
  EXPECT_EQ(buf->borrows_outstanding(), 0u);
  EXPECT_EQ(buf->chunks_live(), live_before);
  // A late return from a ghost of the borrower is refused.
  EXPECT_FALSE(buf->note_return(a, 77));
}

// When the pool OWNER resets (crash), every outstanding loan goes stale:
// views read empty, returns are refused by the ledger, nothing double-frees.
TEST(BorrowedViews, StaleGenerationAfterOwnerReset) {
  Testbed tb(options());

  AppActor* srv_app = tb.newtos().add_app("srv");
  UdpSocket srv(*srv_app);
  std::optional<BorrowedDatagram> held;
  srv.on_event([&](net::TcpEvent) {
    if (!held) held = srv.recvfrom_zc();
  });
  srv.bind(net::Ipv4Addr{}, 5353, [](bool) {});

  AppActor* cli_app = tb.peer().add_app("cli");
  UdpSocket cli(*cli_app);
  cli.connect(tb.peer().peer_addr(0), 5353, [](bool) {});
  tb.run_until(100 * sim::kMillisecond);
  cli_app->call([&](sim::Context&) {
    cli.sendto(64, net::Ipv4Addr{}, 0, [](bool) {});
  });
  tb.run_until(300 * sim::kMillisecond);
  ASSERT_TRUE(held.has_value());
  ASSERT_TRUE(held->valid());

  chan::Pool* rx = pool_named(tb.newtos(), "ip.rx");
  ASSERT_NE(rx, nullptr);
  const std::uint32_t gen_before = rx->generation();
  // The owner resets its pool (what a crash of the pool's owner does):
  // the generation bumps, so every lent rich pointer is now stale.
  rx->reset();
  EXPECT_EQ(rx->generation(), gen_before + 1);

  EXPECT_TRUE(held->data().empty());  // stale view reads nothing
  held->release();                    // refused by the ledger: no-op
  EXPECT_EQ(rx->borrows_outstanding(), 0u);
  EXPECT_EQ(rx->chunks_live(), 0u);
}
