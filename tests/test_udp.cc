// Unit tests: the UDP engine (sockets, datagram delivery, recovery records).
#include <gtest/gtest.h>

#include <memory>

#include "src/net/udp.h"
#include "src/sim/sim.h"

using namespace newtos;
using namespace newtos::net;

namespace {

// Minimal in-process host for one UdpEngine: captures output segments and
// lets tests feed input datagrams.
struct Host {
  sim::Simulator sim;
  chan::PoolRegistry pools;
  chan::Pool* pool;
  chan::Pool* rx_pool;
  std::vector<TxSeg> sent;
  std::vector<std::uint64_t> cookies;
  std::vector<SockId> readable;
  std::unique_ptr<UdpEngine> udp;

  Host() {
    pool = &pools.create("udp", "buf", 4u << 20);
    rx_pool = &pools.create("ip", "rx", 4u << 20);
    UdpEngine::Env env;
    env.pools = &pools;
    env.buf_pool = pool;
    env.src_for = [](Ipv4Addr) { return Ipv4Addr(10, 0, 0, 1); };
    env.rx_done = [this](const chan::RichPtr& f) { rx_pool->release(f); };
    env.notify_readable = [this](SockId s) { readable.push_back(s); };
    env.output = [this](TxSeg&& seg, std::uint64_t cookie) {
      sent.push_back(std::move(seg));
      cookies.push_back(cookie);
    };
    udp = std::make_unique<UdpEngine>(std::move(env));
  }

  // Injects a UDP datagram (hdr+payload) as if delivered by IP.
  void inject(Ipv4Addr src, std::uint16_t sport, std::uint16_t dport,
              std::uint32_t len) {
    chan::RichPtr frame = rx_pool->alloc(kUdpHeaderLen + len);
    auto view = rx_pool->write_view(frame);
    ByteWriter w{view};
    UdpHeader h;
    h.src_port = sport;
    h.dst_port = dport;
    h.length = static_cast<std::uint16_t>(kUdpHeaderLen + len);
    h.serialize(w);
    for (std::uint32_t i = 0; i < len; ++i) w.u8(static_cast<std::uint8_t>(i));
    L4Packet pkt;
    pkt.frame = frame;
    pkt.l4_offset = 0;
    pkt.l4_length = static_cast<std::uint16_t>(kUdpHeaderLen + len);
    pkt.src = src;
    pkt.dst = Ipv4Addr(10, 0, 0, 1);
    udp->input(std::move(pkt));
  }
};

}  // namespace

TEST(Udp, SendBuildsCorrectHeader) {
  Host h;
  SockId s = h.udp->open();
  ASSERT_TRUE(h.udp->bind(s, Ipv4Addr(10, 0, 0, 1), 5353));
  chan::RichPtr payload = h.udp->alloc_payload(64);
  ASSERT_TRUE(h.udp->sendto(s, payload, Ipv4Addr(10, 0, 0, 2), 53));
  ASSERT_EQ(h.sent.size(), 1u);
  const TxSeg& seg = h.sent[0];
  EXPECT_EQ(seg.protocol, kProtoUdp);
  EXPECT_EQ(seg.dst, Ipv4Addr(10, 0, 0, 2));
  auto hdr_bytes = h.pools.read(seg.l4_header);
  ByteReader r{hdr_bytes};
  auto uh = UdpHeader::parse(r);
  ASSERT_TRUE(uh.has_value());
  EXPECT_EQ(uh->src_port, 5353);
  EXPECT_EQ(uh->dst_port, 53);
  EXPECT_EQ(uh->length, kUdpHeaderLen + 64);
}

TEST(Udp, SegDoneFreesChunks) {
  Host h;
  SockId s = h.udp->open();
  h.udp->bind(s, Ipv4Addr{}, 1000);
  const std::size_t live_before = h.pool->chunks_live();
  chan::RichPtr payload = h.udp->alloc_payload(100);
  h.udp->sendto(s, payload, Ipv4Addr(10, 0, 0, 2), 53);
  h.udp->seg_done(h.cookies.at(0), true);
  EXPECT_EQ(h.pool->chunks_live(), live_before);
}

TEST(Udp, DeliveryToBoundSocket) {
  Host h;
  SockId s = h.udp->open();
  ASSERT_TRUE(h.udp->bind(s, Ipv4Addr{}, 53));
  h.inject(Ipv4Addr(10, 0, 0, 2), 40000, 53, 32);
  ASSERT_EQ(h.readable.size(), 1u);
  auto d = h.udp->recv(s);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->data.size(), 32u);
  EXPECT_EQ(d->src, Ipv4Addr(10, 0, 0, 2));
  EXPECT_EQ(d->sport, 40000);
  EXPECT_EQ(std::to_integer<int>(d->data[5]), 5);
  // The receive-pool chunk was released after the copy-out.
  EXPECT_EQ(h.rx_pool->chunks_live(), 0u);
}

TEST(Udp, UnboundPortDropsDatagram) {
  Host h;
  h.inject(Ipv4Addr(10, 0, 0, 2), 40000, 99, 32);
  EXPECT_EQ(h.udp->stats().dropped_no_socket, 1u);
  EXPECT_EQ(h.rx_pool->chunks_live(), 0u);  // frame still released
}

TEST(Udp, ConnectedSocketFiltersForeignSenders) {
  Host h;
  SockId s = h.udp->open();
  ASSERT_TRUE(h.udp->bind(s, Ipv4Addr{}, 53));
  ASSERT_TRUE(h.udp->connect(s, Ipv4Addr(10, 0, 0, 2), 40000));
  h.inject(Ipv4Addr(10, 0, 0, 9), 40000, 53, 16);  // wrong source
  EXPECT_FALSE(h.udp->readable(s));
  h.inject(Ipv4Addr(10, 0, 0, 2), 40000, 53, 16);  // the connected peer
  EXPECT_TRUE(h.udp->readable(s));
}

TEST(Udp, QueueBoundSheds) {
  Host h;
  SockId s = h.udp->open();
  h.udp->bind(s, Ipv4Addr{}, 53);
  for (int i = 0; i < 80; ++i) h.inject(Ipv4Addr(10, 0, 0, 2), 1, 53, 8);
  EXPECT_GT(h.udp->stats().dropped_queue_full, 0u);
  int drained = 0;
  while (h.udp->recv(s)) ++drained;
  EXPECT_EQ(drained, 64);  // kMaxRxQueue
}

TEST(Udp, BindConflictsRejected) {
  Host h;
  SockId a = h.udp->open();
  SockId b = h.udp->open();
  EXPECT_TRUE(h.udp->bind(a, Ipv4Addr{}, 53));
  EXPECT_FALSE(h.udp->bind(b, Ipv4Addr{}, 53));
  h.udp->close(a);
  EXPECT_TRUE(h.udp->bind(b, Ipv4Addr{}, 53));
}

TEST(Udp, SnapshotRestoreRoundTrip) {
  Host h;
  SockId a = h.udp->open();
  h.udp->bind(a, Ipv4Addr(10, 0, 0, 1), 53);
  SockId b = h.udp->open();
  h.udp->bind(b, Ipv4Addr{}, 5353);
  h.udp->connect(b, Ipv4Addr(10, 0, 0, 2), 53);

  const auto bytes = UdpEngine::serialize_socks(h.udp->snapshot());
  auto parsed = UdpEngine::parse_socks(bytes);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 2u);

  // A fresh engine (the restarted server) restores them.
  Host h2;
  h2.udp->restore(*parsed);
  EXPECT_EQ(h2.udp->socket_count(), 2u);
  // The bound port works immediately (the paper's transparent UDP restart).
  h2.inject(Ipv4Addr(10, 0, 0, 2), 9000, 53, 8);
  EXPECT_TRUE(h2.udp->readable(a));
  // Connection keys for PF rebuild include only connected sockets.
  EXPECT_EQ(h2.udp->connection_keys().size(), 1u);
}

TEST(Udp, TruncatedDatagramRejected) {
  Host h;
  SockId s = h.udp->open();
  h.udp->bind(s, Ipv4Addr{}, 53);
  chan::RichPtr frame = h.rx_pool->alloc(4);  // shorter than a UDP header
  L4Packet pkt;
  pkt.frame = frame;
  pkt.l4_offset = 0;
  pkt.l4_length = 4;
  pkt.src = Ipv4Addr(10, 0, 0, 2);
  h.udp->input(std::move(pkt));
  EXPECT_EQ(h.udp->stats().dropped_malformed, 1u);
  EXPECT_FALSE(h.udp->readable(s));
}
