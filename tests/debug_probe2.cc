#include <cstdio>
#include "src/core/apps.h"
#include "src/core/testbed.h"
using namespace newtos;
int main(int argc, char**) {
  const bool with_echo = argc < 2;  // any arg: dns only
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  Testbed tb(opts);
  AppActor* srv_app = with_echo ? tb.newtos().add_app("sshd") : nullptr;
  apps::EchoServer echo_srv(tb.newtos(), srv_app ? srv_app : tb.newtos().add_app("x"), {});
  AppActor* cli_app = tb.peer().add_app("ssh");
  apps::EchoClient::Config ec; ec.dst = tb.peer().peer_addr(0);
  apps::EchoClient echo_cli(tb.peer(), cli_app, ec);
  if (with_echo) { echo_srv.start(); echo_cli.start(); }
  AppActor* dns_srv_app = tb.peer().add_app("named");
  apps::DnsServer dns_srv(tb.peer(), dns_srv_app);
  dns_srv.start();
  AppActor* dns_cli_app = tb.newtos().add_app("resolver");
  apps::DnsClient::Config dc; dc.dst = tb.newtos().peer_addr(0);
  apps::DnsClient dns_cli(tb.newtos(), dns_cli_app, dc);
  dns_cli.start();
  for (long long steps = 0;; ++steps) {
    if (!tb.sim().step()) break;
    if (true) {
      std::printf("steps=%lld t=%.6fs\n", steps, tb.sim().now() / 1e9);
      std::fflush(stdout);
    }
    if (tb.sim().now() > 2 * sim::kSecond) break;
  }
  {
    int i = 20;
    std::printf("t=%.1fs echo ok=%llu to=%llu rst=%llu conn=%d dns %llu/%llu\n",
                i * 0.1, (unsigned long long)echo_cli.ok(),
                (unsigned long long)echo_cli.timeouts(),
                (unsigned long long)echo_cli.resets(), echo_cli.connected(),
                (unsigned long long)dns_cli.answered(),
                (unsigned long long)dns_cli.sent());
    std::fflush(stdout);
  }
  return 0;
}
