// Multi-queue NIC RSS and the per-shard RX fast path.
//
// Unit level: the NIC's RSS hash unit must agree with the transport plane's
// steer_shard for every steerable frame (that agreement is the whole design
// — it makes a queue a shard's private inbox) and refuse everything else;
// a direct IpFastPath harness checks PF verdict caching, the
// pending-before-cache ordering discipline, cache invalidation and the
// fallback of odd traffic.  System level: the full testbed checks that
// rx_queues = 1 (the default) never arms the machinery, that with
// rx_queues == tcp_shards the fast path actually carries the inbound load,
// that a PF rule change invalidates every shard's cached verdicts end to
// end (blocked flows start, unblocked flows resume), and that killing one
// replica drains its queue without leaking a single loaned buffer.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/core/apps.h"
#include "src/core/testbed.h"
#include "src/drv/nic.h"
#include "src/net/ip.h"
#include "src/net/ip_fastpath.h"
#include "src/net/steering.h"
#include "src/servers/driver_server.h"
#include "src/servers/ip_server.h"
#include "src/servers/pf_server.h"
#include "src/servers/tcp_server.h"
#include "src/sim/sim.h"

using namespace newtos;
using namespace newtos::net;

namespace {

constexpr Ipv4Addr kOurAddr{0x0a010001};   // 10.1.0.1
constexpr Ipv4Addr kRemoteA{0x0a010002};   // 10.1.0.2
constexpr Ipv4Addr kRemoteB{0x0a010003};   // 10.1.0.3

// One inbound TCP/UDP frame from src:sport to dst:dport with `payload`
// bytes after the L4 header, written into `pool`.
chan::RichPtr make_l4(chan::Pool& pool, std::uint8_t proto, Ipv4Addr src,
                      Ipv4Addr dst, std::uint16_t sport, std::uint16_t dport,
                      std::uint16_t payload = 100, std::uint32_t seq = 0,
                      std::uint8_t flags = tcpflag::kAck) {
  const std::size_t l4_hdr =
      proto == kProtoTcp ? kTcpHeaderLen : kUdpHeaderLen;
  const std::uint16_t l4_len = static_cast<std::uint16_t>(l4_hdr + payload);
  chan::RichPtr frame = pool.alloc(
      static_cast<std::uint32_t>(kEthHeaderLen + kIpHeaderLen + l4_len));
  auto view = pool.write_view(frame);
  ByteWriter w{view};
  EthHeader eth;
  eth.dst = MacAddr::local(1);
  eth.src = MacAddr::local(9);
  eth.ethertype = kEtherTypeIpv4;
  eth.serialize(w);
  Ipv4Header iph;
  iph.total_length = static_cast<std::uint16_t>(kIpHeaderLen + l4_len);
  iph.protocol = proto;
  iph.src = src;
  iph.dst = dst;
  iph.serialize(w);
  if (proto == kProtoTcp) {
    TcpHeader h;
    h.src_port = sport;
    h.dst_port = dport;
    h.seq = seq;
    h.flags = flags;
    h.window = 1000;
    h.serialize(w);
  } else {
    UdpHeader h;
    h.src_port = sport;
    h.dst_port = dport;
    h.length = l4_len;
    h.serialize(w);
  }
  for (std::uint16_t i = 0; i < payload; ++i)
    w.u8(static_cast<std::uint8_t>(i));
  return frame;
}

}  // namespace

// --- unit: the RSS hash unit -------------------------------------------------------

TEST(RssClassify, AgreesWithTransportSteeringForRandomTuples) {
  chan::PoolRegistry pools;
  chan::Pool& pool = pools.create("t", "rx", 4u << 20);
  // Deterministic LCG: the point is tuple variety, not randomness.
  std::uint64_t rng = 0x243f6a8885a308d3ull;
  auto next = [&rng] {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(rng >> 32);
  };
  for (int i = 0; i < 256; ++i) {
    const Ipv4Addr src{next()};
    const Ipv4Addr dst{next()};
    const auto sport = static_cast<std::uint16_t>(next());
    const auto dport = static_cast<std::uint16_t>(next());
    const std::uint8_t proto = (i % 2 == 0) ? kProtoTcp : kProtoUdp;
    chan::RichPtr f = make_l4(pool, proto, src, dst, sport, dport);
    const auto rss = drv::SimNic::rss_classify(pools.read(f));
    ASSERT_TRUE(rss.steerable);
    EXPECT_EQ(rss.proto, proto);
    EXPECT_EQ(rss.hash, flow_hash(src, dst, sport, dport));
    // queue = hash % N must be the same replica steer_shard picks: the
    // queue really is the shard's private inbox.
    for (int shards : {1, 2, 4, 8}) {
      EXPECT_EQ(
          static_cast<int>(rss.hash % static_cast<std::uint32_t>(shards)),
          steer_shard(src, dst, sport, dport, shards));
    }
    pool.release(f);
  }
}

TEST(RssClassify, NonSteerableFramesStayOnQueueZero) {
  chan::PoolRegistry pools;
  chan::Pool& pool = pools.create("t", "rx", 1u << 20);

  // ARP: wrong ethertype.
  {
    chan::RichPtr f = pool.alloc(kEthHeaderLen + kArpPacketLen);
    auto view = pool.write_view(f);
    ByteWriter w{view};
    EthHeader eth;
    eth.dst = MacAddr::broadcast();
    eth.src = MacAddr::local(9);
    eth.ethertype = kEtherTypeArp;
    eth.serialize(w);
    ArpPacket arp;
    arp.op = kArpOpRequest;
    arp.serialize(w);
    EXPECT_FALSE(drv::SimNic::rss_classify(pools.read(f)).steerable);
    pool.release(f);
  }
  // ICMP: not a steerable protocol.
  {
    chan::RichPtr f =
        pool.alloc(kEthHeaderLen + kIpHeaderLen + kIcmpHeaderLen);
    auto view = pool.write_view(f);
    ByteWriter w{view};
    EthHeader eth;
    eth.dst = MacAddr::local(1);
    eth.src = MacAddr::local(9);
    eth.ethertype = kEtherTypeIpv4;
    eth.serialize(w);
    Ipv4Header iph;
    iph.total_length = kIpHeaderLen + kIcmpHeaderLen;
    iph.protocol = kProtoIcmp;
    iph.src = kRemoteA;
    iph.dst = kOurAddr;
    iph.serialize(w);
    IcmpHeader icmp;
    icmp.type = kIcmpEchoRequest;
    icmp.serialize(w);
    EXPECT_FALSE(drv::SimNic::rss_classify(pools.read(f)).steerable);
    pool.release(f);
  }
  // A TCP claim whose total_length cannot cover the ports (fragment-like
  // truncation): the hash unit refuses rather than hashing garbage.
  {
    chan::RichPtr f = pool.alloc(kEthHeaderLen + kIpHeaderLen + 2);
    auto view = pool.write_view(f);
    ByteWriter w{view};
    EthHeader eth;
    eth.dst = MacAddr::local(1);
    eth.src = MacAddr::local(9);
    eth.ethertype = kEtherTypeIpv4;
    eth.serialize(w);
    Ipv4Header iph;
    iph.total_length = kIpHeaderLen + 2;  // < header + 4 port bytes
    iph.protocol = kProtoTcp;
    iph.src = kRemoteA;
    iph.dst = kOurAddr;
    iph.serialize(w);
    w.u16(0xdead);
    EXPECT_FALSE(drv::SimNic::rss_classify(pools.read(f)).steerable);
    pool.release(f);
  }
  // A frame too short to even hold the L4 ports.
  {
    chan::RichPtr f = pool.alloc(kEthHeaderLen + 4);
    EXPECT_FALSE(drv::SimNic::rss_classify(pools.read(f)).steerable);
    pool.release(f);
  }
}

// --- unit: the per-shard fast path -------------------------------------------------

namespace {

// Direct harness around one IpFastPath with every hook recorded.
struct FastHost {
  chan::PoolRegistry pools;
  chan::Pool* rx_pool;
  std::vector<std::pair<std::uint8_t, L4Packet>> delivered;
  std::vector<L4AggPacket> aggs;
  std::vector<std::pair<PfQuery, std::uint64_t>> pf_queries;
  std::vector<std::pair<int, chan::RichPtr>> fallbacks;
  std::unique_ptr<IpFastPath> fp;

  explicit FastHost(bool use_pf = true, bool gro = false) {
    rx_pool = &pools.create("ip", "rx", 4u << 20);
    IpFastPath::Env env;
    env.pools = &pools;
    env.deliver = [this](std::uint8_t proto, L4Packet&& pkt) {
      delivered.emplace_back(proto, pkt);
    };
    env.deliver_agg = [this](L4AggPacket&& agg) {
      aggs.push_back(std::move(agg));
    };
    env.pf_check = [this](const PfQuery& q, std::uint64_t cookie) {
      pf_queries.emplace_back(q, cookie);
    };
    env.fallback = [this](int ifindex, const chan::RichPtr& frame) {
      fallbacks.emplace_back(ifindex, frame);
    };
    env.release = [this](const chan::RichPtr& frame) {
      rx_pool->release(frame);
    };
    IpFastPath::Config cfg;
    Interface ifc;
    ifc.index = 0;
    ifc.mac = MacAddr::local(1);
    ifc.addr = kOurAddr;
    ifc.subnet = Ipv4Net{Ipv4Addr(10, 1, 0, 0), 24};
    cfg.interfaces.push_back(ifc);
    cfg.use_pf = use_pf;
    cfg.gro = gro;
    fp = std::make_unique<IpFastPath>(std::move(env), cfg);
  }

  void feed(const chan::RichPtr& frame) {
    fp->input_burst(0, std::span<const chan::RichPtr>{&frame, 1});
  }
};

}  // namespace

TEST(FastPath, HoldsFramesUntilPassVerdictThenCaches) {
  FastHost h;
  chan::RichPtr f = make_l4(*h.rx_pool, kProtoTcp, kRemoteA, kOurAddr,
                            40000, 80);
  h.feed(f);
  ASSERT_EQ(h.pf_queries.size(), 1u);
  EXPECT_EQ(h.pf_queries[0].first.dir, PfDir::In);
  EXPECT_EQ(h.pf_queries[0].first.dport, 80);
  EXPECT_TRUE(h.delivered.empty());  // held until the verdict
  EXPECT_EQ(h.fp->pending_flows(), 1u);

  h.fp->pf_verdict(h.pf_queries[0].second, true);
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.delivered[0].first, kProtoTcp);
  EXPECT_EQ(h.fp->cache_size(), 1u);
  EXPECT_EQ(h.fp->stats().fast_frames, 1u);

  // Second frame of the flow: cache hit, no new query.
  chan::RichPtr f2 = make_l4(*h.rx_pool, kProtoTcp, kRemoteA, kOurAddr,
                             40000, 80, 100, 100);
  h.feed(f2);
  EXPECT_EQ(h.pf_queries.size(), 1u);
  EXPECT_EQ(h.delivered.size(), 2u);
  EXPECT_EQ(h.fp->stats().cache_hits, 1u);
}

TEST(FastPath, BlockVerdictDropsAndKeepsBlockingCheaply) {
  FastHost h;
  const std::size_t live_before = h.rx_pool->chunks_live();
  chan::RichPtr f = make_l4(*h.rx_pool, kProtoTcp, kRemoteB, kOurAddr,
                            41000, 23);
  h.feed(f);
  ASSERT_EQ(h.pf_queries.size(), 1u);
  h.fp->pf_verdict(h.pf_queries[0].second, false);
  EXPECT_TRUE(h.delivered.empty());
  EXPECT_EQ(h.fp->stats().dropped_pf, 1u);
  EXPECT_EQ(h.rx_pool->chunks_live(), live_before);  // released, not leaked

  // The block verdict is cached too: the next frame dies without a query.
  chan::RichPtr f2 = make_l4(*h.rx_pool, kProtoTcp, kRemoteB, kOurAddr,
                             41000, 23);
  h.feed(f2);
  EXPECT_EQ(h.pf_queries.size(), 1u);
  EXPECT_EQ(h.fp->stats().cache_hits, 1u);
  EXPECT_EQ(h.fp->stats().dropped_pf, 2u);
  EXPECT_EQ(h.rx_pool->chunks_live(), live_before);
}

TEST(FastPath, PendingFlowHoldsLaterFramesAndDrainsInOrder) {
  FastHost h;
  chan::RichPtr a1 = make_l4(*h.rx_pool, kProtoTcp, kRemoteA, kOurAddr,
                             40000, 80, /*payload=*/10);
  chan::RichPtr a2 = make_l4(*h.rx_pool, kProtoTcp, kRemoteA, kOurAddr,
                             40000, 80, /*payload=*/20);
  h.feed(a1);
  h.feed(a2);  // same flow, verdict still in flight: must queue behind it
  ASSERT_EQ(h.pf_queries.size(), 1u);
  EXPECT_TRUE(h.delivered.empty());

  h.fp->pf_verdict(h.pf_queries[0].second, true);
  ASSERT_EQ(h.delivered.size(), 2u);
  // Arrival order survives the hold: payload 10 first, then 20.
  EXPECT_EQ(h.delivered[0].second.l4_length, kTcpHeaderLen + 10);
  EXPECT_EQ(h.delivered[1].second.l4_length, kTcpHeaderLen + 20);
}

TEST(FastPath, InvalidateCacheForcesRequery) {
  FastHost h;
  chan::RichPtr f = make_l4(*h.rx_pool, kProtoTcp, kRemoteA, kOurAddr,
                            40000, 80);
  h.feed(f);
  h.fp->pf_verdict(h.pf_queries[0].second, true);
  ASSERT_EQ(h.fp->cache_size(), 1u);

  h.fp->invalidate_cache();  // what kPfCacheInval does in the shard
  EXPECT_EQ(h.fp->cache_size(), 0u);

  chan::RichPtr f2 = make_l4(*h.rx_pool, kProtoTcp, kRemoteA, kOurAddr,
                             40000, 80);
  h.feed(f2);
  EXPECT_EQ(h.pf_queries.size(), 2u);  // re-judged, not served from cache
}

TEST(FastPath, NonIpv4AndNotOursFallBackToClassicPath) {
  FastHost h;
  // ARP frame: wrong ethertype.
  chan::RichPtr arp = h.rx_pool->alloc(kEthHeaderLen + kArpPacketLen);
  {
    auto view = h.rx_pool->write_view(arp);
    ByteWriter w{view};
    EthHeader eth;
    eth.dst = MacAddr::broadcast();
    eth.src = MacAddr::local(9);
    eth.ethertype = kEtherTypeArp;
    eth.serialize(w);
    ArpPacket p;
    p.op = kArpOpRequest;
    p.serialize(w);
  }
  h.feed(arp);
  EXPECT_EQ(h.fallbacks.size(), 1u);

  // TCP frame addressed to someone else: slow-path material too.
  chan::RichPtr other = make_l4(*h.rx_pool, kProtoTcp, kRemoteA,
                                Ipv4Addr(10, 1, 0, 9), 40000, 80);
  h.feed(other);
  EXPECT_EQ(h.fallbacks.size(), 2u);
  EXPECT_EQ(h.fp->stats().fallback_frames, 2u);
  EXPECT_TRUE(h.pf_queries.empty());  // the slow path judges them itself
  for (auto& [ifindex, frame] : h.fallbacks) h.rx_pool->release(frame);
}

TEST(FastPath, SlowPathFrameQueuesBehindVerdictAndFlushesTheCache) {
  FastHost h;
  // Frame 1 of the flow files a query.  A same-flow frame that is
  // slow-path material (here: it arrived on an interface this shard does
  // not know, the simplest way to keep the 4-tuple identical) must NOT
  // overtake the verdict — it queues behind it and drains as a fallback.
  chan::RichPtr f1 = make_l4(*h.rx_pool, kProtoTcp, kRemoteA, kOurAddr,
                             40000, 80, /*payload=*/10);
  h.fp->input_burst(0, std::span<const chan::RichPtr>{&f1, 1});
  ASSERT_EQ(h.pf_queries.size(), 1u);

  chan::RichPtr f2 = make_l4(*h.rx_pool, kProtoTcp, kRemoteA, kOurAddr,
                             40000, 80, /*payload=*/20);
  h.fp->input_burst(99, std::span<const chan::RichPtr>{&f2, 1});
  EXPECT_TRUE(h.fallbacks.empty());  // held, not handed over early
  EXPECT_TRUE(h.delivered.empty());

  // The verdict drains both in arrival order: deliver f1, then hand f2 to
  // the slow path — and the handoff erases the just-cached verdict, so
  // the slow path's judgement cannot be shadowed by a stale fast-path
  // cache entry (flush-before-fallback, the satellite ordering fix).
  h.fp->pf_verdict(h.pf_queries[0].second, true);
  ASSERT_EQ(h.delivered.size(), 1u);
  EXPECT_EQ(h.delivered[0].second.l4_length, kTcpHeaderLen + 10);
  ASSERT_EQ(h.fallbacks.size(), 1u);
  EXPECT_EQ(h.fallbacks[0].first, 99);
  EXPECT_EQ(h.fp->cache_size(), 0u);

  // With the cache flushed, the next same-flow frame re-judges.
  chan::RichPtr f3 = make_l4(*h.rx_pool, kProtoTcp, kRemoteA, kOurAddr,
                             40000, 80);
  h.feed(f3);
  EXPECT_EQ(h.pf_queries.size(), 2u);
  for (auto& [ifindex, frame] : h.fallbacks) h.rx_pool->release(frame);
}

TEST(FastPath, MalformedFrameDroppedNotForwarded) {
  FastHost h;
  const std::size_t live_before = h.rx_pool->chunks_live();
  // total_length claims more bytes than the frame holds.
  chan::RichPtr f = h.rx_pool->alloc(kEthHeaderLen + kIpHeaderLen + 8);
  {
    auto view = h.rx_pool->write_view(f);
    ByteWriter w{view};
    EthHeader eth;
    eth.dst = MacAddr::local(1);
    eth.src = MacAddr::local(9);
    eth.ethertype = kEtherTypeIpv4;
    eth.serialize(w);
    Ipv4Header iph;
    iph.total_length = 4000;  // lies
    iph.protocol = kProtoTcp;
    iph.src = kRemoteA;
    iph.dst = kOurAddr;
    iph.serialize(w);
    w.u32(0);
    w.u32(0);
  }
  h.feed(f);
  EXPECT_EQ(h.fp->stats().dropped_malformed, 1u);
  EXPECT_TRUE(h.fallbacks.empty());
  EXPECT_EQ(h.rx_pool->chunks_live(), live_before);
}

TEST(FastPath, ResubmitRepeatsPendingQueriesAfterPfRestart) {
  FastHost h;
  chan::RichPtr f = make_l4(*h.rx_pool, kProtoTcp, kRemoteA, kOurAddr,
                            40000, 80);
  h.feed(f);
  ASSERT_EQ(h.pf_queries.size(), 1u);
  const std::uint64_t cookie = h.pf_queries[0].second;

  EXPECT_EQ(h.fp->resubmit_pf(), 1u);
  ASSERT_EQ(h.pf_queries.size(), 2u);
  EXPECT_EQ(h.pf_queries[1].second, cookie);  // same cookie, same query

  h.fp->pf_verdict(cookie, true);
  EXPECT_EQ(h.delivered.size(), 1u);
}

TEST(FastPath, GroAggregatesWithinBurstAndQueriesOnce) {
  FastHost h(/*use_pf=*/true, /*gro=*/true);
  std::vector<chan::RichPtr> burst;
  for (int i = 0; i < 4; ++i) {
    burst.push_back(make_l4(*h.rx_pool, kProtoTcp, kRemoteA, kOurAddr,
                            40000, 80, 100, 1000 + 100 * i));
  }
  h.fp->input_burst(0, burst);
  ASSERT_EQ(h.pf_queries.size(), 1u);  // one query for the whole aggregate
  EXPECT_TRUE(h.aggs.empty());

  h.fp->pf_verdict(h.pf_queries[0].second, true);
  ASSERT_EQ(h.aggs.size(), 1u);
  EXPECT_EQ(h.aggs[0].segs.size(), 4u);
  EXPECT_EQ(h.fp->stats().gro_aggs, 1u);
  EXPECT_EQ(h.fp->stats().gro_frames, 4u);
  EXPECT_EQ(h.fp->stats().fast_frames, 4u);
}

TEST(FastPath, ReleaseAllReturnsEveryHeldFrame) {
  FastHost h;
  const std::size_t live_before = h.rx_pool->chunks_live();
  for (int i = 0; i < 3; ++i) {
    chan::RichPtr f = make_l4(*h.rx_pool, kProtoTcp, kRemoteA, kOurAddr,
                              40000, 80, 100, 100 * i);
    h.feed(f);
  }
  ASSERT_EQ(h.pf_queries.size(), 1u);  // one pending flow holding 3 frames
  h.fp->release_all();  // what a replica's teardown does
  EXPECT_EQ(h.rx_pool->chunks_live(), live_before);
  EXPECT_EQ(h.fp->pending_flows(), 0u);
  EXPECT_EQ(h.fp->cache_size(), 0u);
}

// --- system: the full testbed ------------------------------------------------------

namespace {

TestbedOptions rss_opts(int rx_queues, int tcp_shards) {
  TestbedOptions o;
  o.mode = StackMode::kSplitSyscall;
  o.nics = 1;
  o.tcp_shards = tcp_shards;
  o.rx_queues = rx_queues;
  o.app_write_size = 65536;
  return o;
}

// Bulk traffic INTO the system under test: receiver on newtos, sender on
// the ideal peer.
struct BulkIn {
  std::unique_ptr<apps::BulkReceiver> rx;
  std::unique_ptr<apps::BulkSender> tx;

  BulkIn(Testbed& tb, std::uint16_t port) {
    AppActor* rx_app = tb.newtos().add_app("rx" + std::to_string(port));
    apps::BulkReceiver::Config rc;
    rc.port = port;
    rc.record_series = false;
    rx = std::make_unique<apps::BulkReceiver>(tb.newtos(), rx_app, rc);
    rx->start();
    AppActor* tx_app = tb.peer().add_app("tx" + std::to_string(port));
    apps::BulkSender::Config sc;
    sc.dst = tb.peer().peer_addr(0);
    sc.port = port;
    sc.write_size = 65536;
    tx = std::make_unique<apps::BulkSender>(tb.peer(), tx_app, sc);
    tx->start();
  }
};

std::uint64_t total_fast_frames(Testbed& tb) {
  std::uint64_t fast = 0;
  for (int s = 0; s < tb.newtos().tcp_shard_count(); ++s) {
    auto* srv = dynamic_cast<servers::TcpServer*>(
        tb.newtos().transport_server('T', s));
    if (srv != nullptr && srv->fastpath() != nullptr)
      fast += srv->fastpath()->stats().fast_frames;
  }
  return fast;
}

}  // namespace

TEST(Rss, SingleQueueDefaultNeverArmsTheMachinery) {
  Testbed tb(rss_opts(/*rx_queues=*/1, /*tcp_shards=*/4));
  BulkIn flow(tb, 5001);
  tb.run_until(300 * sim::kMillisecond);

  EXPECT_GT(flow.rx->bytes(), 1u << 20);
  EXPECT_EQ(tb.newtos().nic(0)->rx_queue_count(), 1);
  auto* drv = dynamic_cast<servers::DriverServer*>(
      tb.newtos().server(servers::driver_name(0)));
  ASSERT_NE(drv, nullptr);
  EXPECT_EQ(drv->rx_fast_frames(), 0u);
  // No shard grew a fast path, and no per-queue stats are published.
  for (int s = 0; s < tb.newtos().tcp_shard_count(); ++s) {
    auto* srv = dynamic_cast<servers::TcpServer*>(
        tb.newtos().transport_server('T', s));
    ASSERT_NE(srv, nullptr);
    EXPECT_EQ(srv->fastpath(), nullptr);
  }
  tb.newtos().publish_channel_stats();
  EXPECT_EQ(tb.newtos().stats().get("drv.rx_fast_frames"), 0u);
  EXPECT_EQ(tb.newtos().stats().get("drv.q1.rx_frames"), 0u);
}

TEST(Rss, FastPathCarriesInboundLoadWithMatchedQueues) {
  Testbed tb(rss_opts(/*rx_queues=*/4, /*tcp_shards=*/4));
  std::vector<std::unique_ptr<BulkIn>> flows;
  for (int f = 0; f < 6; ++f) {
    flows.push_back(std::make_unique<BulkIn>(
        tb, static_cast<std::uint16_t>(6001 + f)));
  }
  tb.run_until(500 * sim::kMillisecond);

  std::uint64_t bytes = 0;
  for (auto& f : flows) bytes += f->rx->bytes();
  EXPECT_GT(bytes, 4u << 20);

  // The NIC really spread the load across queues...
  EXPECT_EQ(tb.newtos().nic(0)->rx_queue_count(), 4);
  int busy_queues = 0;
  for (int q = 0; q < 4; ++q) {
    if (tb.newtos().nic(0)->queue_stats(q).rx_frames > 0) ++busy_queues;
  }
  EXPECT_GE(busy_queues, 2);

  // ...and with queues == shards nearly every steerable frame took the
  // fast path straight into its home replica.
  auto* drv = dynamic_cast<servers::DriverServer*>(
      tb.newtos().server(servers::driver_name(0)));
  ASSERT_NE(drv, nullptr);
  EXPECT_GT(drv->rx_fast_frames(), drv->rx_frames() / 2);
  EXPECT_GT(total_fast_frames(tb), 0u);

  // Every connection still lives on the replica its tuple hashes to.
  for (int s = 0; s < tb.newtos().tcp_shard_count(); ++s) {
    for (const auto& key : tb.newtos().tcp_engine(s)->connection_keys()) {
      EXPECT_EQ(steer_shard(key.dst, key.src, key.dport, key.sport,
                            tb.newtos().tcp_shard_count()),
                s);
    }
  }

  // The new observability: per-queue NIC counters and per-shard fast-path
  // counters are published.
  tb.newtos().publish_channel_stats();
  const auto& st = tb.newtos().stats();
  EXPECT_GT(st.get("drv.rx_fast_frames"), 0u);
  std::uint64_t q_frames = 0;
  for (int q = 0; q < 4; ++q) {
    q_frames += st.get("drv.q" + std::to_string(q) + ".rx_frames");
  }
  EXPECT_GT(q_frames, 0u);
  std::uint64_t shard_fast = 0;
  for (int s = 0; s < 4; ++s) {
    shard_fast += st.get("tcp" + std::to_string(s) + ".rx_fast_frames");
  }
  EXPECT_GT(shard_fast, 0u);
}

TEST(Rss, PfRuleChangeInvalidatesEveryShardCacheEndToEnd) {
  Testbed tb(rss_opts(/*rx_queues=*/2, /*tcp_shards=*/2));
  BulkIn flow_a(tb, 5001);
  tb.run_until(400 * sim::kMillisecond);
  EXPECT_GT(flow_a.rx->bytes(), 1u << 20);

  // The running flow filled the shard caches.
  std::uint64_t hits = 0;
  std::size_t cached = 0;
  for (int s = 0; s < 2; ++s) {
    auto* srv = dynamic_cast<servers::TcpServer*>(
        tb.newtos().transport_server('T', s));
    ASSERT_NE(srv, nullptr);
    ASSERT_NE(srv->fastpath(), nullptr);
    hits += srv->fastpath()->stats().cache_hits;
    cached += srv->fastpath()->cache_size();
  }
  EXPECT_GT(hits, 0u);
  EXPECT_GT(cached, 0u);

  // Push a new rule set: block inbound TCP to port 6002 (nothing uses it
  // yet) and keep the stateful outbound pass.
  auto* pf = dynamic_cast<servers::PfServer*>(
      tb.newtos().server(servers::kPfName));
  ASSERT_NE(pf, nullptr);
  auto make_rules = [](bool block_6002) {
    std::vector<net::PfRule> rules;
    if (block_6002) {
      net::PfRule block;
      block.action = net::PfAction::Block;
      block.dir = net::PfDir::In;
      block.protocol = net::kProtoTcp;
      block.dport = net::PortRange{6002, 6002};
      rules.push_back(block);
    }
    net::PfRule keep;
    keep.action = net::PfAction::Pass;
    keep.dir = net::PfDir::Out;
    keep.keep_state = true;
    rules.push_back(keep);
    return rules;
  };
  // In steady state the established flow runs entirely from the caches:
  // no new queries.  After the rule push the kPfCacheInval broadcast must
  // flush every shard, so the very next frame of the ESTABLISHED flow
  // files a fresh query — the query counter moving is the proof the
  // invalidation reached the shards (the cache refills immediately under
  // live traffic, so its size proves nothing).
  std::uint64_t queries_before = 0;
  for (int s = 0; s < 2; ++s) {
    auto* srv = dynamic_cast<servers::TcpServer*>(
        tb.newtos().transport_server('T', s));
    queries_before += srv->fastpath()->stats().pf_queries;
  }
  pf->apply_rules(make_rules(/*block_6002=*/true));
  tb.run_until(tb.sim().now() + 10 * sim::kMillisecond);
  std::uint64_t queries_after = 0;
  for (int s = 0; s < 2; ++s) {
    auto* srv = dynamic_cast<servers::TcpServer*>(
        tb.newtos().transport_server('T', s));
    queries_after += srv->fastpath()->stats().pf_queries;
  }
  EXPECT_GT(queries_after, queries_before);

  // A new inbound flow to the blocked port cannot establish: the SYN is
  // judged on the fast path and the block verdict sticks (and is cached).
  BulkIn flow_b(tb, 6002);
  tb.run_until(tb.sim().now() + 300 * sim::kMillisecond);
  EXPECT_EQ(flow_b.rx->bytes(), 0u);
  std::uint64_t dropped = 0;
  for (int s = 0; s < 2; ++s) {
    auto* srv = dynamic_cast<servers::TcpServer*>(
        tb.newtos().transport_server('T', s));
    dropped += srv->fastpath()->stats().dropped_pf;
  }
  EXPECT_GT(dropped, 0u);
  // Flow A sails on: its verdicts were re-judged pass after the flush.
  const std::uint64_t a_bytes_mid = flow_a.rx->bytes();
  EXPECT_GT(a_bytes_mid, 1u << 20);

  // Unblock.  The cached block verdict for flow B's tuple MUST be flushed
  // by the second broadcast, or the retransmitted SYN would be dropped
  // from the stale cache forever — the exact bug satellite 2 exists for.
  pf->apply_rules(make_rules(/*block_6002=*/false));
  tb.run_until(tb.sim().now() + 2 * sim::kSecond);
  EXPECT_GT(flow_b.rx->bytes(), 0u);
  EXPECT_GT(flow_a.rx->bytes(), a_bytes_mid);
}

TEST(Rss, KilledReplicaQueueDrainsWithoutLeakingLoans) {
  Testbed tb(rss_opts(/*rx_queues=*/4, /*tcp_shards=*/4));
  std::vector<std::unique_ptr<BulkIn>> flows;
  for (int f = 0; f < 6; ++f) {
    flows.push_back(std::make_unique<BulkIn>(
        tb, static_cast<std::uint16_t>(6001 + f)));
  }
  tb.run_until(400 * sim::kMillisecond);
  ASSERT_GT(total_fast_frames(tb), 0u);

  // Kill a replica that is actively receiving fast-path frames.
  int victim = 0;
  for (int s = 0; s < 4; ++s) {
    auto* srv = dynamic_cast<servers::TcpServer*>(
        tb.newtos().transport_server('T', s));
    if (srv->fastpath() != nullptr &&
        srv->fastpath()->stats().fast_frames > 0) {
      victim = s;
      break;
    }
  }
  tb.sim().at(tb.sim().now() + sim::kMicrosecond, [&] {
    tb.newtos().server(servers::tcp_shard_name(victim))->kill();
  });
  tb.run_until(1200 * sim::kMillisecond);

  // The replica is back and not one loaned RX buffer leaked: frames in
  // the dead incarnation's queue were reclaimed by IP's ledger sweep,
  // frames held by its fast path were released by teardown.
  EXPECT_TRUE(
      tb.newtos().server(servers::tcp_shard_name(victim))->alive());
  chan::Pool* rx_pool = tb.newtos().pools().find_by_name("ip.rx");
  ASSERT_NE(rx_pool, nullptr);
  EXPECT_EQ(rx_pool->borrows_outstanding(), 0u);

  // And traffic on the surviving replicas never stopped.
  std::uint64_t bytes = 0;
  for (auto& f : flows) bytes += f->rx->bytes();
  EXPECT_GT(bytes, 4u << 20);
  // ~Testbed's abort-on-loan-leak backstop also covers this test.
}
