// Receive-side batching: NIC interrupt coalescing, the kDrvRxBurst wire
// format, and GRO aggregation at the IP -> TCP boundary.
//
// Unit level: a direct IpEngine harness feeds crafted bursts and checks the
// merge/flush rules (flow change, out-of-order, flag boundaries, PF
// batching).  System level: the full testbed runs bulk TCP into the system
// under test with coalescing + GRO on and checks amortization (messages per
// frame, ACKs per aggregate), sharded steering, timer flushes, and the loan
// ledger covering a TCP crash mid-aggregate.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/apps.h"
#include "src/core/testbed.h"
#include "src/net/ip.h"
#include "src/net/steering.h"
#include "src/servers/driver_server.h"
#include "src/servers/ip_server.h"
#include "src/sim/sim.h"

using namespace newtos;
using namespace newtos::net;

namespace {

// Direct harness around one IpEngine with the GRO hooks installed.
struct GroHost {
  sim::Simulator sim;
  chan::PoolRegistry pools;
  chan::Pool* hdr_pool;
  chan::Pool* rx_pool;
  std::vector<L4AggPacket> aggs;
  std::vector<L4Packet> to_tcp;
  std::vector<std::vector<std::pair<PfQuery, std::uint64_t>>> pf_batches;
  std::vector<std::pair<PfQuery, std::uint64_t>> pf_queries;
  bool pf_enabled;
  std::unique_ptr<IpEngine> ip;

  class Timers : public TimerService {
   public:
    explicit Timers(sim::Simulator* s) : sim_(s) {}
    TimerId schedule(sim::Time d, std::function<void()> fn) override {
      return sim_->after(d, std::move(fn));
    }
    void cancel(TimerId id) override { sim_->cancel(id); }
    sim::Simulator* sim_;
  } timers{&sim};
  class SimClock : public Clock {
   public:
    explicit SimClock(sim::Simulator* s) : sim_(s) {}
    sim::Time now() const override { return sim_->now(); }
    sim::Simulator* sim_;
  } clock{&sim};

  explicit GroHost(bool with_pf = false) : pf_enabled(with_pf) {
    hdr_pool = &pools.create("ip", "hdr", 4u << 20);
    rx_pool = &pools.create("ip", "rx", 4u << 20);

    IpEngine::Env env;
    env.clock = &clock;
    env.timers = &timers;
    env.pools = &pools;
    env.hdr_pool = hdr_pool;
    env.rx_pool = rx_pool;
    env.send_frame = [](int, TxFrame&&, std::uint64_t) {};
    env.deliver_tcp = [this](L4Packet&& p) { to_tcp.push_back(p); };
    env.deliver_udp = [](L4Packet&&) {};
    env.deliver_tcp_agg = [this](L4AggPacket&& a) {
      aggs.push_back(std::move(a));
    };
    env.seg_done = [](std::uint64_t, bool) {};
    if (with_pf) {
      env.pf_check = [this](const PfQuery& q, std::uint64_t cookie) {
        pf_queries.push_back({q, cookie});
      };
      env.pf_check_batch =
          [this](std::span<const std::pair<PfQuery, std::uint64_t>> qs) {
            pf_batches.emplace_back(qs.begin(), qs.end());
          };
    }

    IpConfig cfg;
    Interface ifc;
    ifc.index = 0;
    ifc.mac = MacAddr::local(1);
    ifc.addr = Ipv4Addr(10, 1, 0, 1);
    ifc.subnet = Ipv4Net{Ipv4Addr(10, 1, 0, 0), 24};
    cfg.interfaces.push_back(ifc);
    ip = std::make_unique<IpEngine>(std::move(env), cfg);
  }

  // One inbound TCP data frame from `src`:`sport` to us:`dport`.
  chan::RichPtr make_tcp(Ipv4Addr src, std::uint16_t sport,
                         std::uint16_t dport, std::uint32_t seq,
                         std::uint16_t payload,
                         std::uint8_t flags = tcpflag::kAck) {
    const std::uint16_t l4_len =
        static_cast<std::uint16_t>(kTcpHeaderLen + payload);
    chan::RichPtr frame = rx_pool->alloc(
        static_cast<std::uint32_t>(kEthHeaderLen + kIpHeaderLen + l4_len));
    auto view = rx_pool->write_view(frame);
    ByteWriter w{view};
    EthHeader eth;
    eth.dst = MacAddr::local(1);
    eth.src = MacAddr::local(9);
    eth.ethertype = kEtherTypeIpv4;
    eth.serialize(w);
    Ipv4Header iph;
    iph.total_length = static_cast<std::uint16_t>(kIpHeaderLen + l4_len);
    iph.protocol = kProtoTcp;
    iph.src = src;
    iph.dst = Ipv4Addr(10, 1, 0, 1);
    iph.serialize(w);
    TcpHeader h;
    h.src_port = sport;
    h.dst_port = dport;
    h.seq = seq;
    h.flags = flags;
    h.window = 1000;
    h.serialize(w);
    for (std::uint16_t i = 0; i < payload; ++i)
      w.u8(static_cast<std::uint8_t>(i));
    return frame;
  }
};

constexpr Ipv4Addr kRemoteA{0x0a010002};  // 10.1.0.2
constexpr Ipv4Addr kRemoteB{0x0a010003};  // 10.1.0.3

}  // namespace

// --- unit: the merge/flush rules ---------------------------------------------------

TEST(Gro, MergesConsecutiveSameFlowSegments) {
  GroHost h;
  std::vector<chan::RichPtr> burst;
  for (int i = 0; i < 4; ++i) {
    burst.push_back(
        h.make_tcp(kRemoteA, 40000, 80, 1000 + 100 * i, 100));
  }
  h.ip->input_burst(0, burst);
  ASSERT_EQ(h.aggs.size(), 1u);
  EXPECT_EQ(h.aggs[0].segs.size(), 4u);
  EXPECT_EQ(h.aggs[0].sport, 40000);
  EXPECT_EQ(h.aggs[0].dport, 80);
  EXPECT_TRUE(h.to_tcp.empty());
  EXPECT_EQ(h.ip->stats().gro_aggs, 1u);
  EXPECT_EQ(h.ip->stats().gro_frames, 4u);
}

TEST(Gro, FlowChangeFlushesAggregate) {
  GroHost h;
  std::vector<chan::RichPtr> burst;
  burst.push_back(h.make_tcp(kRemoteA, 40000, 80, 0, 100));
  burst.push_back(h.make_tcp(kRemoteA, 40000, 80, 100, 100));
  burst.push_back(h.make_tcp(kRemoteB, 41000, 80, 500, 100));  // other flow
  burst.push_back(h.make_tcp(kRemoteA, 40000, 80, 200, 100));
  h.ip->input_burst(0, burst);
  // [A0 A1] merge; B and the now-isolated A2 take the classic path.
  ASSERT_EQ(h.aggs.size(), 1u);
  EXPECT_EQ(h.aggs[0].segs.size(), 2u);
  EXPECT_EQ(h.to_tcp.size(), 2u);
}

TEST(Gro, OutOfOrderSeqFlushesAggregate) {
  GroHost h;
  std::vector<chan::RichPtr> burst;
  burst.push_back(h.make_tcp(kRemoteA, 40000, 80, 0, 100));
  burst.push_back(h.make_tcp(kRemoteA, 40000, 80, 100, 100));
  burst.push_back(h.make_tcp(kRemoteA, 40000, 80, 5000, 100));  // gap
  burst.push_back(h.make_tcp(kRemoteA, 40000, 80, 5100, 100));
  h.ip->input_burst(0, burst);
  // Two aggregates: the gap broke the run but both halves still merge.
  ASSERT_EQ(h.aggs.size(), 2u);
  EXPECT_EQ(h.aggs[0].segs.size(), 2u);
  EXPECT_EQ(h.aggs[1].segs.size(), 2u);
  EXPECT_TRUE(h.to_tcp.empty());
}

TEST(Gro, FlagBoundariesFlushAggregate) {
  GroHost h;
  std::vector<chan::RichPtr> burst;
  burst.push_back(h.make_tcp(kRemoteA, 40000, 80, 0, 100));
  burst.push_back(h.make_tcp(
      kRemoteA, 40000, 80, 100, 100,
      static_cast<std::uint8_t>(tcpflag::kAck | tcpflag::kPsh)));
  burst.push_back(h.make_tcp(kRemoteA, 40000, 80, 200, 100));
  burst.push_back(h.make_tcp(
      kRemoteA, 40000, 80, 300, 100,
      static_cast<std::uint8_t>(tcpflag::kAck | tcpflag::kFin)));
  h.ip->input_burst(0, burst);
  // PSH closes the first aggregate (and is its last member); the lone
  // segment after it and the FIN both take the classic per-frame path.
  ASSERT_EQ(h.aggs.size(), 1u);
  EXPECT_EQ(h.aggs[0].segs.size(), 2u);
  EXPECT_EQ(h.to_tcp.size(), 2u);
}

TEST(Gro, PureAcksAreNeverAggregated) {
  GroHost h;
  std::vector<chan::RichPtr> burst;
  for (int i = 0; i < 4; ++i) {
    burst.push_back(h.make_tcp(kRemoteA, 40000, 80, 1000, 0));
  }
  h.ip->input_burst(0, burst);
  EXPECT_TRUE(h.aggs.empty());
  EXPECT_EQ(h.to_tcp.size(), 4u);  // each ACK clocks the sender separately
}

TEST(Gro, AggregateNeverSpansShards) {
  GroHost h;
  // Interleave two flows; whatever aggregates form, every member of one
  // aggregate must steer to the same replica as the aggregate's own tuple.
  std::vector<chan::RichPtr> burst;
  burst.push_back(h.make_tcp(kRemoteA, 40000, 80, 0, 100));
  burst.push_back(h.make_tcp(kRemoteA, 40000, 80, 100, 100));
  burst.push_back(h.make_tcp(kRemoteB, 41000, 80, 0, 100));
  burst.push_back(h.make_tcp(kRemoteA, 40000, 80, 200, 100));
  burst.push_back(h.make_tcp(kRemoteA, 40000, 80, 300, 100));
  h.ip->input_burst(0, burst);
  ASSERT_GE(h.aggs.size(), 1u);
  for (const auto& agg : h.aggs) {
    const int shard = steer_shard(agg.src, agg.dst, agg.sport, agg.dport, 4);
    for (const auto& seg : agg.segs) {
      // All members share the aggregate's 4-tuple by construction...
      EXPECT_EQ(seg.src, agg.src);
      // ...so they hash to the same shard as the aggregate.
      EXPECT_EQ(steer_shard(seg.src, seg.dst, agg.sport, agg.dport, 4),
                shard);
    }
  }
}

TEST(Gro, OneBatchedPfQueryPerAggregate) {
  GroHost h(/*with_pf=*/true);
  std::vector<chan::RichPtr> burst;
  for (int i = 0; i < 6; ++i) {
    burst.push_back(h.make_tcp(kRemoteA, 40000, 80, 100 * i, 100));
  }
  h.ip->input_burst(0, burst);
  // One aggregate -> one query, and it travelled as one batch.
  ASSERT_EQ(h.pf_batches.size(), 1u);
  ASSERT_EQ(h.pf_batches[0].size(), 1u);
  EXPECT_TRUE(h.aggs.empty());  // held until the verdict
  h.ip->pf_verdict(h.pf_batches[0][0].second, true);
  ASSERT_EQ(h.aggs.size(), 1u);
  EXPECT_EQ(h.aggs[0].segs.size(), 6u);
}

TEST(Gro, BlockedVerdictReleasesEveryFrameOfTheAggregate) {
  GroHost h(/*with_pf=*/true);
  const std::size_t live_before = h.rx_pool->chunks_live();
  std::vector<chan::RichPtr> burst;
  for (int i = 0; i < 4; ++i) {
    burst.push_back(h.make_tcp(kRemoteA, 40000, 80, 100 * i, 100));
  }
  h.ip->input_burst(0, burst);
  ASSERT_EQ(h.pf_batches.size(), 1u);
  h.ip->pf_verdict(h.pf_batches[0][0].second, false);
  EXPECT_TRUE(h.aggs.empty());
  EXPECT_EQ(h.ip->stats().dropped_pf, 4u);
  EXPECT_EQ(h.rx_pool->chunks_live(), live_before);  // all four released
}

// --- system: coalescing, amortization, sharding, crash recovery --------------------

namespace {

TestbedOptions rx_opts(int coalesce, bool gro, int tcp_shards = 1) {
  TestbedOptions o;
  o.mode = StackMode::kSplitSyscall;
  o.nics = 1;
  o.rx_coalesce_frames = coalesce;
  o.rx_coalesce_usecs = 50;
  o.gro = gro;
  o.tcp_shards = tcp_shards;
  o.app_write_size = 65536;
  return o;
}

// Bulk traffic INTO the system under test: receiver on newtos, sender on
// the ideal peer.
struct BulkIn {
  std::unique_ptr<apps::BulkReceiver> rx;
  std::unique_ptr<apps::BulkSender> tx;

  BulkIn(Testbed& tb, std::uint16_t port, int nic = 0) {
    AppActor* rx_app = tb.newtos().add_app("rx" + std::to_string(port));
    apps::BulkReceiver::Config rc;
    rc.port = port;
    rc.record_series = false;
    rx = std::make_unique<apps::BulkReceiver>(tb.newtos(), rx_app, rc);
    rx->start();
    AppActor* tx_app = tb.peer().add_app("tx" + std::to_string(port));
    apps::BulkSender::Config sc;
    sc.dst = tb.peer().peer_addr(nic);
    sc.port = port;
    sc.write_size = 65536;
    tx = std::make_unique<apps::BulkSender>(tb.peer(), tx_app, sc);
    tx->start();
  }
};

}  // namespace

TEST(RxBatch, FrameThresholdFormsBurstsAndAmortizesMessages) {
  Testbed tb(rx_opts(/*coalesce=*/8, /*gro=*/false));
  BulkIn flow(tb, 5001);
  tb.run_until(500 * sim::kMillisecond);

  EXPECT_GT(flow.rx->bytes(), 1u << 20);
  const auto& nic = tb.newtos().nic(0)->stats();
  EXPECT_GT(nic.rx_bursts, 0u);
  auto* drv = dynamic_cast<servers::DriverServer*>(
      tb.newtos().server(servers::driver_name(0)));
  ASSERT_NE(drv, nullptr);
  EXPECT_GT(drv->rx_frames(), 0u);
  // The whole point: well under one driver->IP message per frame.
  EXPECT_LT(drv->rx_msgs() * 2, drv->rx_frames());
}

TEST(RxBatch, HoldoffTimerFlushesSparseTraffic) {
  // A high frame threshold with sparse echo traffic: only the RADV-style
  // timer can deliver the frames.
  TestbedOptions o = rx_opts(/*coalesce=*/64, /*gro=*/false);
  Testbed tb(o);

  AppActor* srv_app = tb.newtos().add_app("sshd");
  apps::EchoServer srv(tb.newtos(), srv_app, {});
  srv.start();
  AppActor* cli_app = tb.peer().add_app("ssh");
  apps::EchoClient::Config ec;
  ec.dst = tb.peer().peer_addr(0);
  apps::EchoClient cli(tb.peer(), cli_app, ec);
  cli.start();

  tb.run_until(1 * sim::kSecond);
  EXPECT_GT(cli.ok(), 0u);  // echoes went round despite the 64-frame bound
  EXPECT_GT(tb.newtos().nic(0)->stats().rx_timer_flushes, 0u);
}

TEST(RxBatch, GroChargesOncePerAggregateAndStretchAcks) {
  Testbed tb(rx_opts(/*coalesce=*/8, /*gro=*/true));
  BulkIn flow(tb, 5001);
  tb.run_until(500 * sim::kMillisecond);

  EXPECT_GT(flow.rx->bytes(), 1u << 20);
  const auto& ip = tb.newtos().ip_engine()->stats();
  EXPECT_GT(ip.gro_aggs, 0u);
  EXPECT_GT(ip.gro_frames, 2 * ip.gro_aggs);  // real merging, not pairs
  const auto& tcp = tb.newtos().tcp_engine()->stats();
  EXPECT_GT(tcp.aggs_in, 0u);
  // One stretch ACK per aggregate instead of one per two frames.
  EXPECT_LT(tcp.acks_out * 3, tcp.segs_in);
  // And under one IP->TCP message per frame.
  auto* ips = dynamic_cast<servers::IpServer*>(
      tb.newtos().server(servers::kIpName));
  ASSERT_NE(ips, nullptr);
  EXPECT_LT(ips->l4_msgs() * 2, ips->l4_frames());
}

TEST(RxBatch, GroRespectsShardSteering) {
  Testbed tb(rx_opts(/*coalesce=*/8, /*gro=*/true, /*tcp_shards=*/2));
  std::vector<std::unique_ptr<BulkIn>> flows;
  for (int f = 0; f < 6; ++f) {
    flows.push_back(std::make_unique<BulkIn>(
        tb, static_cast<std::uint16_t>(6001 + f)));
  }
  tb.run_until(500 * sim::kMillisecond);

  std::uint64_t bytes = 0;
  for (auto& f : flows) bytes += f->rx->bytes();
  EXPECT_GT(bytes, 4u << 20);

  // Every connection lives on the replica its inbound 4-tuple hashes to,
  // so any aggregate a replica accepted was steered correctly.
  std::uint64_t aggs = 0;
  for (int s = 0; s < tb.newtos().tcp_shard_count(); ++s) {
    const auto* eng = tb.newtos().tcp_engine(s);
    for (const auto& key : eng->connection_keys()) {
      // connection_keys() records {local, peer, lport, pport}; steering
      // hashes the inbound orientation (remote end first).
      EXPECT_EQ(steer_shard(key.dst, key.src, key.dport, key.sport,
                            tb.newtos().tcp_shard_count()),
                s);
    }
    aggs += eng->stats().aggs_in;
  }
  EXPECT_GT(aggs, 0u);
}

TEST(RxBatch, CoalescingOffIsByteIdenticalCounters) {
  // The default arrangement must not even arm the burst machinery.
  Testbed tb(rx_opts(/*coalesce=*/0, /*gro=*/false));
  BulkIn flow(tb, 5001);
  tb.run_until(300 * sim::kMillisecond);
  EXPECT_GT(flow.rx->bytes(), 1u << 20);
  const auto& nic = tb.newtos().nic(0)->stats();
  EXPECT_EQ(nic.rx_bursts, 0u);
  EXPECT_EQ(nic.rx_timer_flushes, 0u);
  const auto& ip = tb.newtos().ip_engine()->stats();
  EXPECT_EQ(ip.gro_aggs, 0u);
  EXPECT_EQ(tb.newtos().tcp_engine()->stats().aggs_in, 0u);
}

TEST(RxBatch, LoanLedgerRecoversBurstChunksWhenTcpDiesMidAggregate) {
  Testbed tb(rx_opts(/*coalesce=*/8, /*gro=*/true));
  BulkIn flow(tb, 5001);

  // Let the flow ramp, then kill TCP while aggregates are in flight.
  tb.run_until(400 * sim::kMillisecond);
  EXPECT_GT(tb.newtos().tcp_engine()->stats().aggs_in, 0u);
  tb.sim().at(tb.sim().now() + sim::kMicrosecond, [&] {
    tb.newtos().server(servers::kTcpName)->kill();
  });
  tb.run_until(1 * sim::kSecond);

  // The replica is back and every loan its dead incarnation held was
  // reclaimed (frames in dead queue slots were recovered by IP; frames the
  // engine had accepted were released by its teardown path).
  EXPECT_TRUE(tb.newtos().server(servers::kTcpName)->alive());
  chan::Pool* rx_pool = tb.newtos().pools().find_by_name("ip.rx");
  ASSERT_NE(rx_pool, nullptr);
  EXPECT_EQ(rx_pool->borrows_outstanding(), 0u);
  // ~Testbed's abort-on-loan-leak backstop also covers this test.
}
