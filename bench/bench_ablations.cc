// Ablations over the design choices Sections III-IV motivate:
//
//   A. IPC mechanism: user-space channels vs. synchronous kernel IPC, on
//      otherwise identical split stacks (the core claim of the paper).
//   B. Checksum offload: on vs. off (Section V-A: "this improves the
//      performance of lwIP dramatically").
//   C. TSO: on vs. off (Table II lines 3 vs 6).
//   D. Packet filter: in the T junction vs. absent (the price of the extra
//      per-packet round trip IP pays for isolation).
//   E. PF rule-table size (state-table hit vs. full rule walk).
//   F. Multi-queue RSS: the per-shard RX fast path vs. every inbound frame
//      funnelling through the central IP core (sharded transport plane).
#include <cstdio>
#include <memory>
#include <vector>

#include "src/core/apps.h"
#include "src/core/testbed.h"

using namespace newtos;

namespace {

double run(TestbedOptions opts, int conns = 0) {
  if (conns == 0) conns = opts.nics;
  Testbed tb(opts);
  std::vector<std::unique_ptr<apps::BulkReceiver>> rxs;
  std::vector<std::unique_ptr<apps::BulkSender>> txs;
  for (int i = 0; i < conns; ++i) {
    AppActor* rx_app = tb.peer().add_app("rx" + std::to_string(i));
    apps::BulkReceiver::Config rc;
    rc.port = static_cast<std::uint16_t>(5001 + i);
    rc.record_series = false;
    rxs.push_back(std::make_unique<apps::BulkReceiver>(tb.peer(), rx_app, rc));
    rxs.back()->start();
    AppActor* tx_app = tb.newtos().add_app("tx" + std::to_string(i));
    apps::BulkSender::Config sc;
    sc.dst = tb.newtos().peer_addr(i % opts.nics);
    sc.port = rc.port;
    sc.write_size = opts.app_write_size;
    txs.push_back(std::make_unique<apps::BulkSender>(tb.newtos(), tx_app, sc));
    txs.back()->start();
  }
  tb.run_until(400 * sim::kMillisecond);
  std::uint64_t start = 0;
  for (auto& r : rxs) start += r->bytes();
  tb.run_until(1000 * sim::kMillisecond);
  std::uint64_t bytes = 0;
  for (auto& r : rxs) bytes += r->bytes();
  return static_cast<double>(bytes - start) * 8.0 / 0.6 / 1e9;
}

// Five links make the stack CPU-bound (as in Table II), so design choices
// show up in throughput instead of hiding behind a saturated wire.
TestbedOptions base(StackMode mode = StackMode::kSplitSyscall) {
  TestbedOptions o;
  o.mode = mode;
  o.nics = 5;
  o.app_write_size = 65536;
  return o;
}

}  // namespace

int main() {
  std::printf("Ablations over NewtOS design choices (5x1GbE, bulk TCP)\n\n");

  {
    // A: the headline — same split multiserver stack, channels vs kernel IPC.
    TestbedOptions chan_opts = base();
    TestbedOptions sync_opts = base();
    sync_opts.mode = StackMode::kMinixSync;  // kernel IPC + one core
    std::printf("A. fast-path IPC     channels: %5.2f Gbps   "
                "sync kernel IPC (1 core): %5.2f Gbps\n",
                run(chan_opts), run(sync_opts, 5));
  }
  {
    // Combined stack: every cycle shares one core, so the software-checksum
    // bytes are visible (Section V-A: offloading "improves the performance
    // of lwIP dramatically").
    TestbedOptions on = base(StackMode::kSingleServer);
    TestbedOptions off = base(StackMode::kSingleServer);
    off.csum_offload = false;
    std::printf("B. checksum offload  on:       %5.2f Gbps   off:         "
                "             %5.2f Gbps   (1-server stack)\n",
                run(on), run(off));
  }
  {
    TestbedOptions on = base();
    on.tso = true;
    std::printf("C. TSO               on:       %5.2f Gbps   off:         "
                "             %5.2f Gbps\n",
                run(on), run(base()));
  }
  {
    TestbedOptions with_pf = base(StackMode::kSingleServer);
    TestbedOptions no_pf = base(StackMode::kSingleServer);
    no_pf.use_pf = false;
    std::printf("D. packet filter     present:  %5.2f Gbps   absent:      "
                "             %5.2f Gbps   (1-server stack)\n",
                run(with_pf), run(no_pf));
  }
  {
    TestbedOptions small = base(StackMode::kSingleServer);
    small.pf_filler_rules = 16;
    TestbedOptions big = base(StackMode::kSingleServer);
    big.pf_filler_rules = 1024;
    std::printf("E. PF rule table     16 rules: %5.2f Gbps   1024 rules:  "
                "             %5.2f Gbps   (keep-state hits bypass the walk)\n",
                run(small), run(big));
  }
  {
    // F: with the transport plane already sharded, the remaining ceiling is
    // the central IP core eating every inbound frame; RSS queues matched to
    // the shards move that work onto the replicas' own cores.
    TestbedOptions one = base();
    one.tcp_shards = 4;
    TestbedOptions four = base();
    four.tcp_shards = 4;
    four.rx_queues = 4;
    std::printf("F. RSS rx_queues     4 queues: %5.2f Gbps   1 queue:     "
                "             %5.2f Gbps   (tcp_shards=4, 32 flows)\n",
                run(four, 32), run(one, 32));
  }
  std::printf(
      "\n(A is Table II line 1 vs 3 in miniature; B/C echo Section V-A;\n"
      " D/E quantify the isolation price of the PF T-junction, Figure 3;\n"
      " F is the receive-side mirror of sharding: queues follow shards.)\n");
  return 0;
}
