// Congestion-control dumbbell: two bulk flows share one slow bottleneck
// link with a bounded tail-drop FIFO — the classic fairness topology — with
// each flow's algorithm chosen per port (cc_by_port).  An RTT sweep stretches
// the pipe; the bench reports per-flow goodput, the Jain fairness index and
// the bottleneck queue's occupancy statistics, and asserts the properties
// the paper-style evaluation depends on:
//
//  - cubic vs cubic at equal RTT shares the link fairly (Jain >= 0.95);
//  - a bbr + cubic mix moves at least as many aggregate bytes as the
//    newreno baseline;
//  - bbr keeps the bottleneck queue materially emptier than cubic (average
//    occupancy < 50%) at comparable aggregate throughput — rate-based
//    pacing vs loss-probing in one number.
//
// Exits non-zero when an assertion fails, so CI can gate on it.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/core/apps.h"
#include "src/core/testbed.h"

using namespace newtos;

namespace {

constexpr double kAccessGbps = 0.25;
constexpr double kBottleneckGbps = 0.2;
constexpr std::uint32_t kQueueFrames = 512;

struct ScenarioResult {
  double gbps[2] = {0.0, 0.0};
  double aggregate = 0.0;
  double jain = 0.0;
  double avg_queue = 0.0;       // time-weighted frames in the bottleneck FIFO
  std::uint64_t max_queue = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t fast_retx = 0;
  std::uint64_t pacing_delays = 0;
};

double jain_index(double a, double b) {
  const double sum = a + b;
  const double sq = a * a + b * b;
  if (sq <= 0.0) return 0.0;
  return sum * sum / (2.0 * sq);
}

// Bulk flows newtos -> peer over one bottleneck wire; flow f uses algo[f]
// via a per-port override (ports 5001/5002).  An empty cc_b runs a single
// flow — the clean queue-occupancy measurement.
ScenarioResult run_dumbbell(const std::string& cc_a, const std::string& cc_b,
                            int rtt_ms, sim::Time warm, sim::Time window) {
  const int flows = cc_b.empty() ? 1 : 2;
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  opts.nics = 1;
  // Access links modestly faster than the shared slow hop: overflow sheds
  // ~20% of arrivals, so a congestion event costs a few holes (fast-
  // retransmit territory), not half a window (RTO territory).
  opts.gbps = kAccessGbps;
  opts.wire_bottleneck_gbps = kBottleneckGbps;
  opts.tso = false;  // per-frame queueing and pacing are the experiment
  opts.app_write_size = 65536;
  opts.wire_latency = rtt_ms * sim::kMillisecond / 2;
  opts.wire_queue_frames = kQueueFrames;
  // A tail drop displaces everything behind it: give both receivers a
  // reassembly budget covering the whole window so one hole costs one
  // retransmission, not the window.
  opts.tcp_ooo_queue = 1024;
  // Without SACK, every hole in a loss burst takes one RTT to repair, so
  // keep congestion events small: exit slow start below the pipe size and
  // cap per-flow flight a little above the fair share of pipe + queue.
  opts.tcp_ssthresh_init = 200 * 1024;
  opts.tcp_buf_bytes = 1400 * 1024;
  opts.tcp_cc_by_port = {{5001, cc_a}};
  if (flows == 2) opts.tcp_cc_by_port.push_back({5002, cc_b});
  Testbed tb(opts);

  std::vector<std::unique_ptr<apps::BulkReceiver>> receivers;
  std::vector<std::unique_ptr<apps::BulkSender>> senders;
  for (int f = 0; f < flows; ++f) {
    AppActor* rx_app = tb.peer().add_app("rx" + std::to_string(f));
    apps::BulkReceiver::Config rc;
    rc.port = static_cast<std::uint16_t>(5001 + f);
    rc.record_series = false;
    receivers.push_back(
        std::make_unique<apps::BulkReceiver>(tb.peer(), rx_app, rc));
    receivers.back()->start();

    AppActor* tx_app = tb.newtos().add_app("tx" + std::to_string(f));
    apps::BulkSender::Config sc;
    sc.dst = tb.newtos().peer_addr(0);
    sc.port = rc.port;
    sc.write_size = opts.app_write_size;
    senders.push_back(
        std::make_unique<apps::BulkSender>(tb.newtos(), tx_app, sc));
    senders.back()->start();
  }

  tb.run_until(warm);
  std::uint64_t start[2] = {0, 0};
  for (int f = 0; f < flows; ++f) start[f] = receivers[f]->bytes();
  tb.run_until(warm + window);

  ScenarioResult res;
  const double secs = static_cast<double>(window) / 1e9;
  for (int f = 0; f < flows; ++f) {
    res.gbps[f] = static_cast<double>(receivers[f]->bytes() - start[f]) * 8.0 /
                  secs / 1e9;
  }
  res.aggregate = res.gbps[0] + res.gbps[1];
  res.jain = flows == 2 ? jain_index(res.gbps[0], res.gbps[1]) : 1.0;
  const drv::Wire& w = tb.wire(0);
  res.avg_queue = w.avg_queue_depth(0);  // end 0: the newtos -> peer FIFO
  res.max_queue = w.max_queue_depth();
  res.queue_drops = w.queue_drops();
  tb.newtos().publish_channel_stats();
  res.fast_retx = tb.newtos().stats().get("tcp.cc.fast_retransmits");
  res.pacing_delays = tb.newtos().stats().get("tcp.cc.pacing_delays");
  return res;
}

void emit(benchjson::Writer& jw, const std::string& label,
          const std::string& cc_a, const std::string& cc_b, int rtt_ms,
          const ScenarioResult& r) {
  std::printf(
      "  %-22s rtt=%2dms  %6.4f + %6.4f = %6.4f Gb/s  jain=%.4f  "
      "queue avg %5.1f / max %3llu frames, %llu drops, %llu fast-rtx, "
      "%llu pacing stalls\n",
      label.c_str(), rtt_ms, r.gbps[0], r.gbps[1], r.aggregate, r.jain,
      r.avg_queue, static_cast<unsigned long long>(r.max_queue),
      static_cast<unsigned long long>(r.queue_drops),
      static_cast<unsigned long long>(r.fast_retx),
      static_cast<unsigned long long>(r.pacing_delays));
  std::fflush(stdout);
  jw.begin_row();
  jw.field("label", label);
  jw.field("cc_a", cc_a);
  jw.field("cc_b", cc_b);
  jw.field("rtt_ms", rtt_ms);
  jw.field("gbps_a", r.gbps[0]);
  jw.field("gbps_b", r.gbps[1]);
  jw.field("gbps_aggregate", r.aggregate);
  jw.field("jain", r.jain);
  jw.field("avg_queue_frames", r.avg_queue);
  jw.field("max_queue_frames", r.max_queue);
  jw.field("queue_drops", r.queue_drops);
  jw.field("fast_retransmits", r.fast_retx);
  jw.field("pacing_delays", r.pacing_delays);
}

}  // namespace

int main() {
  const sim::Time kWarm = 2 * sim::kSecond;
  const sim::Time kWindow = 10 * sim::kSecond;

  std::printf(
      "Congestion-control dumbbell: 2 flows, %.1f Gb/s bottleneck, "
      "%u-frame tail-drop FIFO, %llds window\n",
      kBottleneckGbps, kQueueFrames,
      static_cast<long long>(kWindow / sim::kSecond));

  benchjson::Writer jw("cc");
  struct Mix {
    const char* label;
    const char* a;
    const char* b;
  };
  const Mix mixes[] = {
      {"newreno vs newreno", "newreno", "newreno"},
      {"cubic vs cubic", "cubic", "cubic"},
      {"bbr vs cubic", "bbr", "cubic"},
      {"bbr vs bbr", "bbr", "bbr"},
      {"cubic solo", "cubic", ""},
      {"bbr solo", "bbr", ""},
  };
  const int rtts[] = {8, 20, 40};

  // scenario x rtt results, indexed [mix][rtt]
  ScenarioResult res[6][3];
  for (int m = 0; m < 6; ++m) {
    for (int r = 0; r < 3; ++r) {
      res[m][r] = run_dumbbell(mixes[m].a, mixes[m].b ? mixes[m].b : "",
                               rtts[r], kWarm, kWindow);
      emit(jw, mixes[m].label, mixes[m].a, mixes[m].b, rtts[r], res[m][r]);
    }
  }
  jw.write("BENCH_cc.json");

  // --- assertions -----------------------------------------------------------
  bool ok = true;
  const int kRtt20 = 1;  // index of the 20 ms column

  const double cubic_jain = res[1][kRtt20].jain;
  std::printf("\ncubic-vs-cubic fairness at equal RTT: jain=%.4f %s\n",
              cubic_jain,
              cubic_jain >= 0.95 ? "(>= 0.95: fairness holds)" : "(FAIL)");
  ok = ok && cubic_jain >= 0.95;

  const double newreno_agg = res[0][kRtt20].aggregate;
  const double mixed_agg = res[2][kRtt20].aggregate;
  std::printf("bbr+cubic aggregate vs newreno baseline: %.4f vs %.4f %s\n",
              mixed_agg, newreno_agg,
              mixed_agg >= 0.95 * newreno_agg
                  ? "(>= baseline: mix does not regress)"
                  : "(FAIL)");
  ok = ok && mixed_agg >= 0.95 * newreno_agg;

  // Queue-occupancy contrast on the solo runs: one flow, same bottleneck,
  // only the algorithm differs — loss probing keeps the FIFO standing,
  // pacing keeps it empty.
  const ScenarioResult& cub = res[4][kRtt20];
  const ScenarioResult& bbr = res[5][kRtt20];
  const double queue_ratio =
      cub.avg_queue > 0.0 ? bbr.avg_queue / cub.avg_queue : 1.0;
  const double thr_ratio =
      cub.aggregate > 0.0 ? bbr.aggregate / cub.aggregate : 0.0;
  std::printf(
      "bbr vs cubic bottleneck occupancy (solo): %.1f vs %.1f frames "
      "(ratio %.2f) at %.2fx throughput %s\n",
      bbr.avg_queue, cub.avg_queue, queue_ratio, thr_ratio,
      queue_ratio < 0.5 && thr_ratio >= 0.9
          ? "(< 0.5 at comparable throughput: pacing keeps the queue empty)"
          : "(FAIL)");
  ok = ok && queue_ratio < 0.5 && thr_ratio >= 0.9;

  // Sanity: the paced flows actually exercised the pacing timer, and the
  // loss-probing flows actually hit the FIFO bound.
  const bool pacing_used = res[5][kRtt20].pacing_delays > 0;
  const bool taildrop_seen = res[1][kRtt20].queue_drops > 0;
  std::printf("pacing stalls (bbr solo): %llu %s\n",
              static_cast<unsigned long long>(res[5][kRtt20].pacing_delays),
              pacing_used ? "(pacing active)" : "(FAIL: never paced)");
  std::printf("tail drops (cubic run): %llu %s\n",
              static_cast<unsigned long long>(res[1][kRtt20].queue_drops),
              taildrop_seen ? "(FIFO bound exercised)" : "(FAIL: no drops)");
  ok = ok && pacing_used && taildrop_seen;

  std::printf("%s\n", ok ? "bench_cc: all assertions hold"
                         : "bench_cc: ASSERTION FAILURE");
  return ok ? 0 : 1;
}
