// Minimal machine-readable benchmark output: each bench writes a
// BENCH_<name>.json next to its stdout report, so CI can archive the run
// and the perf trajectory can be plotted without scraping logs.
//
// Deliberately tiny: flat rows of (key, scalar) pairs under a named bench —
// no dependency, no escaping beyond quotes/backslashes (labels are ASCII).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace newtos::benchjson {

class Writer {
 public:
  explicit Writer(std::string bench) : bench_(std::move(bench)) {}

  void begin_row() { rows_.emplace_back(); }
  void field(const std::string& key, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.4f", v);
    raw(key, buf);
  }
  void field(const std::string& key, std::uint64_t v) {
    raw(key, std::to_string(v));
  }
  void field(const std::string& key, int v) { raw(key, std::to_string(v)); }
  void field(const std::string& key, const std::string& v) {
    raw(key, "\"" + escaped(v) + "\"");
  }

  // Writes {"bench": ..., "rows": [...]}; false (with a note on stderr) if
  // the file cannot be created.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", path.c_str());
      return false;
    }
    std::fprintf(f, "{\"bench\": \"%s\", \"rows\": [\n",
                 escaped(bench_).c_str());
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      std::fputs("  {", f);
      for (std::size_t k = 0; k < rows_[r].size(); ++k) {
        std::fprintf(f, "%s\"%s\": %s", k == 0 ? "" : ", ",
                     escaped(rows_[r][k].first).c_str(),
                     rows_[r][k].second.c_str());
      }
      std::fprintf(f, "}%s\n", r + 1 == rows_.size() ? "" : ",");
    }
    std::fputs("]}\n", f);
    std::fclose(f);
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
    return true;
  }

 private:
  void raw(const std::string& key, std::string json) {
    rows_.back().emplace_back(key, std::move(json));
  }
  static std::string escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  }

  std::string bench_;
  std::vector<std::vector<std::pair<std::string, std::string>>> rows_;
};

}  // namespace newtos::benchjson
