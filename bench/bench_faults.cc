// Tables III and IV: the SWIFI fault-injection campaign (Section VI-B).
//
// The paper collected 100 runs that exhibited a crash while stressing the
// stack with a TCP connection (OpenSSH) and periodic DNS queries, then
// classified the damage.  We run the same campaign: each trial boots a
// fresh testbed, starts an inbound ssh-like echo session, an outbound bulk
// stream and a DNS query loop, injects one manifested fault into a component
// drawn from the paper's observed distribution, and observes:
//   - did the active TCP connection survive?        (Table IV row 3)
//   - is the machine reachable from outside after?  (row 2: reconnect works)
//   - was UDP/DNS service uninterrupted?            (row 4)
//   - did recovery need manual action or a reboot?  (rows 2/5)
// A second datapoint closes the loop the paper left open: Table I declares
// established TCP connections unrecoverable, and rows 2/3 of Table IV count
// the broken connections.  With `tcp_checkpoint` on we crash the TCP server
// mid-bulk-transfer and measure what the paper could not show: 0 reconnects,
// the throughput dip, and the recovery time.  Results are also written to
// BENCH_faults.json (bench/bench_json.h) for CI.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/core/apps.h"
#include "src/core/fault_injection.h"
#include "src/core/testbed.h"
#include "src/servers/driver_server.h"

using namespace newtos;

namespace {

struct TrialResult {
  std::string component;
  FaultType fault = FaultType::Crash;
  bool tcp_survived = false;
  bool reachable = false;
  bool reachable_after_manual_fix = false;
  bool udp_transparent = false;
  bool needed_reboot = false;
};

TrialResult run_trial(std::uint64_t seed) {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  opts.nics = 2;
  opts.pf_filler_rules = 128;
  opts.seed = seed;
  Testbed tb(opts);

  // Inbound ssh-like session (the paper's OpenSSH test server).
  AppActor* sshd_app = tb.newtos().add_app("sshd");
  apps::EchoServer sshd(tb.newtos(), sshd_app, {});
  sshd.start();
  AppActor* ssh_app = tb.peer().add_app("ssh");
  apps::EchoClient::Config ec;
  ec.dst = tb.peer().peer_addr(0);
  apps::EchoClient ssh(tb.peer(), ssh_app, ec);
  ssh.start();

  // Outbound bulk TCP.
  AppActor* rx_app = tb.peer().add_app("iperf_rx");
  apps::BulkReceiver::Config rc;
  rc.record_series = false;
  apps::BulkReceiver receiver(tb.peer(), rx_app, rc);
  receiver.start();
  AppActor* tx_app = tb.newtos().add_app("iperf_tx");
  apps::BulkSender::Config sc;
  sc.dst = tb.newtos().peer_addr(1);
  apps::BulkSender sender(tb.newtos(), tx_app, sc);
  sender.start();

  // DNS resolver against a remote server.
  AppActor* named_app = tb.peer().add_app("named");
  apps::DnsServer named(tb.peer(), named_app);
  named.start();
  AppActor* res_app = tb.newtos().add_app("resolver");
  apps::DnsClient::Config dc;
  dc.dst = tb.newtos().peer_addr(0);
  apps::DnsClient resolver(tb.newtos(), res_app, dc);
  resolver.start();

  FaultInjector faults(tb.newtos(), seed * 1000003 + 17);

  TrialResult result;
  result.component = faults.pick_component();
  result.fault = faults.pick_fault(result.component);

  // Let everything settle, then strike.
  tb.run_until(2 * sim::kSecond);
  const std::uint64_t resets_before = ssh.resets();
  const std::uint64_t dns_sent_before = resolver.sent();
  const std::uint64_t dns_ans_before = resolver.answered();
  faults.inject(result.component, result.fault);

  (void)dns_sent_before;
  (void)dns_ans_before;
  // Observation window, then judge *liveness* over the final stretch — the
  // paper tested "whether the active ssh connections kept working, whether
  // we were able to establish new ones and whether the name resolver was
  // able to contact a remote DNS server without reopening the UDP socket".
  tb.run_until(6 * sim::kSecond);
  const std::uint64_t echo_at_6s = ssh.ok();
  const std::uint64_t dns_at_6s = resolver.answered();
  tb.run_until(8 * sim::kSecond);

  result.needed_reboot = tb.newtos().requires_reboot();
  const bool echo_alive = ssh.connected() && ssh.ok() > echo_at_6s;
  const bool dns_alive = resolver.answered() > dns_at_6s;
  result.tcp_survived =
      ssh.resets() == resets_before && echo_alive && !result.needed_reboot;
  result.reachable = !result.needed_reboot && echo_alive;
  result.udp_transparent = !result.needed_reboot && dns_alive;

  // The paper manually restarted components in the cases the reincarnation
  // server could not see (silent wedges, device misconfiguration).
  if (!result.reachable && !result.needed_reboot) {
    tb.newtos().manual_restart(result.component);
    tb.run_until(12 * sim::kSecond);
    const std::uint64_t echo_now = ssh.ok();
    tb.run_until(14 * sim::kSecond);
    if (ssh.connected() && ssh.ok() > echo_now)
      result.reachable_after_manual_fix = true;
  }
  return result;
}

// Crash TCP mid-bulk-transfer with connection checkpointing on; observe the
// recovery from the receiver's 50 ms bitrate series.
struct CkptDatapoint {
  std::uint64_t connects = 0;  // 1 = the initial connect, nothing else
  std::uint64_t resets = 0;
  std::uint64_t restored = 0;
  double pre_gbps = 0.0;
  double dip_gbps = 0.0;
  double post_gbps = 0.0;     // sustained rate well after the crash
  double recovery_ms = -1.0;  // time to >= 50% of pre-crash rate
};

CkptDatapoint run_checkpoint_datapoint() {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  opts.nics = 1;
  opts.pf_filler_rules = 128;
  opts.tcp_checkpoint = true;
  Testbed tb(opts);

  AppActor* rx_app = tb.peer().add_app("ckpt_rx");
  apps::BulkReceiver::Config rc;
  rc.prefix = "ckpt_rx";
  rc.sample_interval = 50 * sim::kMillisecond;
  apps::BulkReceiver receiver(tb.peer(), rx_app, rc);
  receiver.start();
  AppActor* tx_app = tb.newtos().add_app("iperf_tx");
  apps::BulkSender::Config sc;
  sc.dst = tb.newtos().peer_addr(0);
  apps::BulkSender sender(tb.newtos(), tx_app, sc);
  sender.start();

  const sim::Time crash_at = 3 * sim::kSecond;
  FaultInjector faults(tb.newtos(), 1);
  faults.inject_at(crash_at, servers::kTcpName, FaultType::Crash);
  tb.run_until(8 * sim::kSecond);

  CkptDatapoint d;
  d.connects = tb.newtos().stats().get("iperf_tx.connects");
  d.resets = tb.newtos().stats().get("iperf_tx.resets");
  d.restored = tb.newtos().tcp_engine()->stats().conns_restored;

  // The sample straddling the crash still carries pre-crash bytes: judge
  // the dip and the recovery only from windows that start after it.
  const sim::Time post_from = crash_at + 2 * 50 * sim::kMillisecond;
  const auto& series = tb.peer().stats().series("ckpt_rx.mbps");
  double pre_sum = 0.0;
  int pre_n = 0;
  double dip = 1e18;
  double post_sum = 0.0;
  int post_n = 0;
  for (const auto& p : series) {
    if (p.t >= 1 * sim::kSecond && p.t < crash_at) {
      pre_sum += p.value;
      ++pre_n;
    }
    if (p.t >= post_from && p.t < crash_at + 2 * sim::kSecond) {
      dip = std::min(dip, p.value);
    }
    if (p.t >= crash_at + 1 * sim::kSecond) {
      post_sum += p.value;
      ++post_n;
    }
  }
  d.pre_gbps = pre_n > 0 ? pre_sum / pre_n / 1e3 : 0.0;
  d.dip_gbps = dip >= 1e18 ? 0.0 : dip / 1e3;
  d.post_gbps = post_n > 0 ? post_sum / post_n / 1e3 : 0.0;
  for (const auto& p : series) {
    if (p.t >= post_from && p.value >= 0.5 * (d.pre_gbps * 1e3)) {
      d.recovery_ms = static_cast<double>(p.t - crash_at) / 1e6;
      break;
    }
  }
  return d;
}

// --- the supervised SWIFI campaign --------------------------------------------------
//
// The paper's campaign needed manual restarts for silent wedges and
// misconfigured devices (Table IV row "manually fixed").  With the
// supervision plane on, every manifestation class must recover without a
// human: the campaign re-runs the 100-fault draw against supervised
// testbeds, measures per-fault time-to-detect and time-to-recover, and
// fails the bench if any fault needed manual intervention or the p99
// recovery blew the SLO.  `--campaign-seed=N` replays an exact schedule.

struct CampaignFault {
  std::string component;
  FaultType type = FaultType::Crash;
  double detect_ms = -1.0;   // inject -> ladder rung fired (or reboot flagged)
  double recover_ms = -1.0;  // inject -> service demonstrably healthy again
  bool reboot_required = false;  // SyncHang, correctly reported
  bool manual = false;           // supervision failed: human had to step in
};

CampaignFault run_campaign_fault(const FaultInjector::PlannedFault& f,
                                 std::uint64_t seed, int index) {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  opts.nics = 2;
  opts.pf_filler_rules = 128;
  opts.tcp_checkpoint = true;
  opts.supervision = true;
  opts.seed = seed * 1000003 + static_cast<std::uint64_t>(index);
  Testbed tb(opts);

  AppActor* sshd_app = tb.newtos().add_app("sshd");
  apps::EchoServer sshd(tb.newtos(), sshd_app, {});
  sshd.start();
  AppActor* ssh_app = tb.peer().add_app("ssh");
  apps::EchoClient::Config ec;
  ec.dst = tb.peer().peer_addr(0);
  apps::EchoClient ssh(tb.peer(), ssh_app, ec);
  ssh.start();

  // INBOUND bulk TCP: the load that makes a Slowdown *manifest*.  A slowed
  // server answers probes late only once real work queues ahead of them,
  // and the receive pipeline (drv -> ip -> pf -> tcp) is the path every
  // slowable component sits on.  It also keeps the wedge watchdog's
  // counters moving on nic1.
  AppActor* rx_app = tb.newtos().add_app("iperf_rx");
  apps::BulkReceiver::Config rc;
  rc.record_series = false;
  apps::BulkReceiver receiver(tb.newtos(), rx_app, rc);
  receiver.start();
  AppActor* tx_app = tb.peer().add_app("iperf_tx");
  apps::BulkSender::Config sc;
  sc.dst = tb.peer().peer_addr(1);
  apps::BulkSender sender(tb.peer(), tx_app, sc);
  sender.start();

  AppActor* named_app = tb.peer().add_app("named");
  apps::DnsServer named(tb.peer(), named_app);
  named.start();
  AppActor* res_app = tb.newtos().add_app("resolver");
  apps::DnsClient::Config dc;
  dc.dst = tb.newtos().peer_addr(0);
  apps::DnsClient resolver(tb.newtos(), res_app, dc);
  resolver.start();

  FaultInjector faults(tb.newtos(), seed + static_cast<std::uint64_t>(index));

  auto stat_of = [&tb](const std::string& comp) {
    const auto& m = tb.newtos().reincarnation()->child_stats();
    auto it = m.find(comp);
    return it == m.end() ? servers::ReincarnationServer::ChildStats{}
                         : it->second;
  };
  auto* drv = dynamic_cast<servers::DriverServer*>(
      tb.newtos().server(f.component));
  const int ifindex = f.component.rfind("drv", 0) == 0
                          ? std::atoi(f.component.c_str() + 3)
                          : -1;

  const sim::Time inject_at = 2 * sim::kSecond;
  tb.run_until(inject_at);

  // Baselines for the detection predicate (per manifestation class, the
  // counter the matching ladder rung increments; a harsher rung firing
  // first also counts — e.g. a severe slowdown may drop enough probes to
  // trip the wedge rung before its second SLO strike).
  const auto b = stat_of(f.component);
  const std::uint64_t base_wedge = drv != nullptr ? drv->wedge_resets() : 0;
  // Campaign slowdowns are severe (x64): the SLO rung detects a slowdown
  // through its *consequences* (backlog => late/missed probes), so the
  // injected degradation must actually overload the component.
  faults.inject(f.component, f.type, 64.0);

  auto detected = [&]() {
    const auto s = stat_of(f.component);
    switch (f.type) {
      case FaultType::Crash:
        return s.crashes > b.crashes;
      case FaultType::Hang:
        return s.hang_resets > b.hang_resets;
      case FaultType::SilentWedge:
        return s.probe_resets + s.hang_resets >
               b.probe_resets + b.hang_resets;
      case FaultType::Slowdown:
        return s.slowdown_resets + s.probe_resets + s.hang_resets >
               b.slowdown_resets + b.probe_resets + b.hang_resets;
      case FaultType::DeviceWedge: {
        auto* d = dynamic_cast<servers::DriverServer*>(
            tb.newtos().server(f.component));
        return d != nullptr && d->wedge_resets() > base_wedge;
      }
      case FaultType::SyncHang:
        return tb.newtos().requires_reboot();
    }
    return false;
  };

  CampaignFault out;
  out.component = f.component;
  out.type = f.type;

  const sim::Time detect_deadline = inject_at + 10 * sim::kSecond;
  while (!detected() && tb.newtos().sim().now() < detect_deadline) {
    tb.run_until(tb.newtos().sim().now() + 10 * sim::kMillisecond);
  }
  if (!detected()) {
    out.manual = true;  // supervision never saw it: the paper's failure mode
    tb.newtos().manual_restart(f.component);
    tb.run_until(tb.newtos().sim().now() + 2 * sim::kSecond);
    return out;
  }
  out.detect_ms =
      static_cast<double>(tb.newtos().sim().now() - inject_at) / 1e6;

  if (f.type == FaultType::SyncHang) {
    // The unconverted synchronous part wedged: no component restart can fix
    // it.  Correct behaviour is *reporting* it, which the requires_reboot
    // flag is; recovery time is the report latency.
    out.reboot_required = true;
    out.recover_ms = out.detect_ms;
    return out;
  }

  // Recovery: the structural state healed (servers ready, device unwedged
  // with link up) AND the services demonstrably make progress — both the
  // TCP echo session and the DNS loop must advance inside one observation
  // window.  Windows are 250 ms: comfortably above both app intervals.
  auto structural_ok = [&]() {
    if (ifindex >= 0) {
      drv::SimNic* nic = tb.newtos().nic(ifindex);
      if (nic->wedged() || !nic->link_up()) return false;
    }
    servers::Server* s = tb.newtos().server(f.component);
    return s != nullptr && s->ready();
  };
  const sim::Time recover_deadline = inject_at + 14 * sim::kSecond;
  while (tb.newtos().sim().now() < recover_deadline) {
    const std::uint64_t echo_before = ssh.ok();
    const std::uint64_t dns_before = resolver.answered();
    tb.run_until(tb.newtos().sim().now() + 250 * sim::kMillisecond);
    if (structural_ok() && ssh.ok() > echo_before &&
        resolver.answered() > dns_before) {
      out.recover_ms =
          static_cast<double>(tb.newtos().sim().now() - inject_at) / 1e6;
      return out;
    }
  }
  out.manual = true;  // detected but never healed on its own
  tb.newtos().manual_restart(f.component);
  tb.run_until(tb.newtos().sim().now() + 2 * sim::kSecond);
  return out;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return -1.0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = static_cast<std::size_t>(
      std::min<double>(static_cast<double>(v.size()) - 1.0,
                       std::ceil(p * static_cast<double>(v.size())) - 1.0));
  return v[idx];
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t campaign_seed = 42;
  int campaign_faults = 100;
  bool campaign_only = false;  // replay loop: skip the Table III/IV trials
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--campaign-seed=", 16) == 0) {
      campaign_seed = std::strtoull(argv[i] + 16, nullptr, 10);
    } else if (std::strncmp(argv[i], "--campaign-faults=", 18) == 0) {
      campaign_faults = std::atoi(argv[i] + 18);
    } else if (std::strcmp(argv[i], "--campaign-only") == 0) {
      campaign_only = true;
    }
  }
  const int kTrials = campaign_only ? 0 : 100;
  std::map<std::string, int> by_component;
  int transparent = 0;
  int reachable = 0;
  int manually_fixed = 0;
  int tcp_broken = 0;
  int udp_transparent = 0;
  int reboots = 0;

  for (int i = 0; i < kTrials; ++i) {
    TrialResult r = run_trial(1000 + static_cast<std::uint64_t>(i));
    // Aggregate per component, folding drivers together like the paper.
    std::string comp = r.component.rfind("drv", 0) == 0 ? "Driver"
                       : r.component == "tcp"           ? "TCP"
                       : r.component == "udp"           ? "UDP"
                       : r.component == "ip"            ? "IP"
                                                        : "PF";
    ++by_component[comp];
    const bool fully_transparent =
        r.tcp_survived && r.udp_transparent && !r.needed_reboot;
    if (fully_transparent) ++transparent;
    if (r.reachable) ++reachable;
    if (r.reachable_after_manual_fix) ++manually_fixed;
    if (!r.tcp_survived) ++tcp_broken;
    if (r.udp_transparent) ++udp_transparent;
    if (r.needed_reboot) ++reboots;
    std::printf("trial %3d: %-4s %-12s tcp=%s reach=%s%s udp=%s%s\n", i + 1,
                comp.c_str(), to_string(r.fault),
                r.tcp_survived ? "ok" : "BROKEN",
                r.reachable ? "yes" : "no",
                r.reachable_after_manual_fix ? "(manual)" : "",
                r.udp_transparent ? "ok" : "MISSED",
                r.needed_reboot ? " REBOOT" : "");
    std::fflush(stdout);
  }

  std::printf("\nTable III: distribution of injected faults (paper: "
              "TCP 25, UDP 10, IP 24, PF 25, Driver 16)\n");
  std::printf("  Total %d:", kTrials);
  for (const auto& [comp, n] : by_component)
    std::printf("  %s %d", comp.c_str(), n);
  std::printf("\n");

  std::printf("\nTable IV: consequences of crashes (paper values)\n");
  std::printf("  %-44s %3d   (70)\n", "Fully transparent crashes",
              transparent);
  std::printf("  %-44s %3d+%d (90 + 6 manually fixed)\n",
              "Reachable from outside", reachable, manually_fixed);
  std::printf("  %-44s %3d   (30)\n", "Crash broke TCP connections",
              tcp_broken);
  std::printf("  %-44s %3d   (95)\n", "Transparent to UDP", udp_transparent);
  std::printf("  %-44s %3d   (3)\n", "Reboot necessary", reboots);

  // The connection-checkpoint datapoint: the failure class Table IV charges
  // to TCP ("crash broke TCP connections"), removed.
  CkptDatapoint d;
  if (!campaign_only) {
    std::printf("\nCheckpoint datapoint: crash TCP mid-bulk-transfer, "
                "tcp_checkpoint on\n");
    d = run_checkpoint_datapoint();
  }
  bool holds = true;
  if (!campaign_only) {
    std::printf("  reconnects %llu (1 = initial connect only)  resets %llu  "
                "connections restored %llu\n",
                static_cast<unsigned long long>(d.connects),
                static_cast<unsigned long long>(d.resets),
                static_cast<unsigned long long>(d.restored));
    std::printf("  pre-crash %.2f Gb/s  dip %.2f Gb/s  back to >=50%% in "
                "%.0f ms  sustained %.2f Gb/s\n",
                d.pre_gbps, d.dip_gbps, d.recovery_ms, d.post_gbps);
    // A stalled-but-quiet transfer must not pass: demand the sustained
    // post-crash rate, not just the absence of reconnects.
    holds = d.connects == 1 && d.resets == 0 && d.restored >= 1 &&
            d.recovery_ms >= 0.0 && d.post_gbps >= 0.8 * d.pre_gbps;
    if (holds) {
      std::printf("checkpoint recovery holds: 0 reconnects, recovered in "
                  "%.0f ms\n",
                  d.recovery_ms);
    } else {
      std::printf("checkpoint recovery FAILED\n");
    }
  }

  // --- the supervised campaign ------------------------------------------------------
  std::vector<FaultInjector::PlannedFault> plan;
  {
    // Planning needs a node only for the NIC count; nothing runs.
    TestbedOptions popts;
    popts.mode = StackMode::kSplitSyscall;
    popts.nics = 2;
    Testbed ptb(popts);
    FaultInjector planner(ptb.newtos(), campaign_seed);
    plan = planner.plan_campaign(campaign_faults);
  }
  std::printf("\nSupervised SWIFI campaign: %d faults, seed %llu "
              "(replay: bench_faults --campaign-seed=%llu)\n",
              campaign_faults, static_cast<unsigned long long>(campaign_seed),
              static_cast<unsigned long long>(campaign_seed));

  std::vector<CampaignFault> outcomes;
  std::map<std::string, std::uint64_t> restarts_by_comp;
  std::uint64_t wedge_resets_total = 0;
  std::uint64_t backoff_ms_total = 0;
  int manual = 0;
  int reboots_required = 0;
  for (int i = 0; i < static_cast<int>(plan.size()); ++i) {
    CampaignFault r = run_campaign_fault(plan[i], campaign_seed, i);
    std::printf("fault %3d: %-5s %-12s ", i + 1, r.component.c_str(),
                to_string(r.type));
    if (r.manual) {
      std::printf("MANUAL INTERVENTION\n");
      ++manual;
    } else if (r.reboot_required) {
      std::printf("reboot-required reported in %.0f ms\n", r.detect_ms);
      ++reboots_required;
    } else {
      std::printf("detected %.0f ms  recovered %.0f ms\n", r.detect_ms,
                  r.recover_ms);
    }
    std::fflush(stdout);
    outcomes.push_back(r);
  }
  // Observability roll-up (rein.* / drv.* node stats) from a final
  // supervised pass: re-run the first three faults of the schedule in ONE
  // testbed so restart/backoff/wedge counters accumulate visibly.
  {
    TestbedOptions sopts;
    sopts.mode = StackMode::kSplitSyscall;
    sopts.nics = 2;
    sopts.pf_filler_rules = 128;
    sopts.tcp_checkpoint = true;
    sopts.supervision = true;
    sopts.seed = campaign_seed;
    Testbed stb(sopts);
    // An echo session that reconnects on its own: the earlier tcp and ip
    // faults may break the bulk stream, but the watchdog's phy counter
    // needs SOME inbound frames on nic0 for the DeviceWedge to be
    // detectable.
    AppActor* sshd_app2 = stb.newtos().add_app("sshd");
    apps::EchoServer sshd2(stb.newtos(), sshd_app2, {});
    sshd2.start();
    AppActor* ssh_app2 = stb.peer().add_app("ssh");
    apps::EchoClient::Config ec2;
    ec2.dst = stb.peer().peer_addr(0);
    apps::EchoClient ssh2(stb.peer(), ssh_app2, ec2);
    ssh2.start();
    // Inbound bulk on nic0: keeps the wedge watchdog's phy counter moving
    // so the 6 s DeviceWedge below is detectable.
    AppActor* rx_app2 = stb.newtos().add_app("iperf_rx");
    apps::BulkReceiver::Config rc2;
    rc2.record_series = false;
    apps::BulkReceiver receiver2(stb.newtos(), rx_app2, rc2);
    receiver2.start();
    AppActor* tx_app = stb.peer().add_app("iperf_tx");
    apps::BulkSender::Config sc2;
    sc2.dst = stb.peer().peer_addr(0);
    apps::BulkSender sender2(stb.peer(), tx_app, sc2);
    sender2.start();
    FaultInjector fi(stb.newtos(), campaign_seed);
    // Spaced so each recovery completes (an IP restart resets the NICs and
    // bounces the links for 1.5 s) before the next fault lands.
    fi.inject_at(2 * sim::kSecond, servers::kTcpName, FaultType::SilentWedge);
    fi.inject_at(5 * sim::kSecond, servers::kIpName, FaultType::Hang);
    fi.inject_at(9 * sim::kSecond, "drv0", FaultType::DeviceWedge);
    stb.run_until(16 * sim::kSecond);
    stb.newtos().publish_channel_stats();
    const auto& st = stb.newtos().stats();
    for (const char* comp : {"tcp", "udp", "ip", "pf", "drv0", "drv1"}) {
      restarts_by_comp[comp] +=
          st.get(std::string("rein.restarts.") + comp);
    }
    wedge_resets_total += st.get("drv.wedge_resets");
    backoff_ms_total += st.get("rein.backoff_ms");
  }
  std::printf("campaign observability:");
  std::uint64_t restarts_total = 0;
  for (const auto& [comp, n] : restarts_by_comp) {
    if (n > 0) std::printf("  rein.restarts.%s=%llu", comp.c_str(),
                           static_cast<unsigned long long>(n));
    restarts_total += n;
  }
  std::printf("  drv.wedge_resets=%llu  rein.backoff_ms=%llu\n",
              static_cast<unsigned long long>(wedge_resets_total),
              static_cast<unsigned long long>(backoff_ms_total));

  // Per-manifestation detect/recover distributions + MTTR histogram.
  std::map<std::string, std::pair<std::vector<double>, std::vector<double>>>
      by_type;
  for (const auto& r : outcomes) {
    if (r.manual || r.reboot_required) continue;
    by_type[to_string(r.type)].first.push_back(r.detect_ms);
    by_type[to_string(r.type)].second.push_back(r.recover_ms);
  }
  std::vector<double> all_recover;
  std::printf("%-14s %5s %10s %10s %10s %10s\n", "manifestation", "n",
              "det p50", "det p99", "rec p50", "rec p99");
  for (const auto& [type, dr] : by_type) {
    std::printf("%-14s %5zu %8.0fms %8.0fms %8.0fms %8.0fms\n", type.c_str(),
                dr.first.size(), percentile(dr.first, 0.50),
                percentile(dr.first, 0.99), percentile(dr.second, 0.50),
                percentile(dr.second, 0.99));
    all_recover.insert(all_recover.end(), dr.second.begin(), dr.second.end());
  }
  constexpr double kRecoverySloMs = 6000.0;
  const double p99_recover = percentile(all_recover, 0.99);
  const bool campaign_ok = manual == 0 && !all_recover.empty() &&
                           p99_recover <= kRecoverySloMs &&
                           restarts_total > 0 && wedge_resets_total > 0;
  if (manual == 0) {
    std::printf("campaign: zero manual restarts (%zu faults, %d "
                "reboot-required reported)\n",
                plan.size(), reboots_required);
  }
  if (campaign_ok) {
    std::printf("campaign SLO holds: p99 recovery %.0f ms <= %.0f ms budget\n",
                p99_recover, kRecoverySloMs);
  } else {
    std::printf("campaign FAILED: manual=%d p99_recover=%.0fms "
                "(budget %.0fms)\n",
                manual, p99_recover, kRecoverySloMs);
    std::printf("replay with: bench_faults --campaign-seed=%llu  schedule:\n",
                static_cast<unsigned long long>(campaign_seed));
    for (std::size_t i = 0; i < plan.size(); ++i) {
      std::printf("  fault %3zu: %s %s\n", i + 1, plan[i].component.c_str(),
                  to_string(plan[i].type));
    }
  }

  benchjson::Writer json("faults");
  auto summary = [&json](const char* metric, int value, int paper) {
    json.begin_row();
    json.field("metric", std::string(metric));
    json.field("value", value);
    json.field("paper", paper);
  };
  summary("fully_transparent", transparent, 70);
  summary("reachable", reachable, 90);
  summary("reachable_after_manual_fix", manually_fixed, 6);
  summary("tcp_broken", tcp_broken, 30);
  summary("udp_transparent", udp_transparent, 95);
  summary("reboots", reboots, 3);
  json.begin_row();
  json.field("metric", std::string("tcp_checkpoint_crash"));
  json.field("reconnects",
             static_cast<std::uint64_t>(d.connects > 0 ? d.connects - 1 : 0));
  json.field("resets", d.resets);
  json.field("conns_restored", d.restored);
  json.field("pre_gbps", d.pre_gbps);
  json.field("dip_gbps", d.dip_gbps);
  json.field("post_gbps", d.post_gbps);
  json.field("recovery_ms", d.recovery_ms);
  // Per-manifestation campaign histograms: detect/recover percentiles plus
  // MTTR buckets, one row per manifestation class.
  const double kBuckets[] = {250.0, 500.0, 1000.0, 2000.0, 5000.0};
  for (const auto& [type, dr] : by_type) {
    json.begin_row();
    json.field("metric", std::string("campaign_") + type);
    json.field("count", static_cast<std::uint64_t>(dr.first.size()));
    json.field("detect_p50_ms", percentile(dr.first, 0.50));
    json.field("detect_p99_ms", percentile(dr.first, 0.99));
    json.field("recover_p50_ms", percentile(dr.second, 0.50));
    json.field("recover_p99_ms", percentile(dr.second, 0.99));
    double lo = 0.0;
    for (const double hi : kBuckets) {
      std::uint64_t n = 0;
      for (const double v : dr.second)
        if (v >= lo && v < hi) ++n;
      char key[32];
      std::snprintf(key, sizeof key, "mttr_le_%.0fms", hi);
      json.field(key, n);
      lo = hi;
    }
    std::uint64_t over = 0;
    for (const double v : dr.second)
      if (v >= lo) ++over;
    json.field("mttr_over", over);
  }
  json.begin_row();
  json.field("metric", std::string("campaign_summary"));
  json.field("seed", campaign_seed);
  json.field("faults", static_cast<std::uint64_t>(plan.size()));
  json.field("manual_restarts", static_cast<std::uint64_t>(manual));
  json.field("reboot_required", static_cast<std::uint64_t>(reboots_required));
  json.field("p99_recover_ms", p99_recover);
  json.field("rein_restarts", restarts_total);
  json.field("wedge_resets", wedge_resets_total);
  json.write("BENCH_faults.json");
  return holds && campaign_ok ? 0 : 1;
}
