// Tables III and IV: the SWIFI fault-injection campaign (Section VI-B).
//
// The paper collected 100 runs that exhibited a crash while stressing the
// stack with a TCP connection (OpenSSH) and periodic DNS queries, then
// classified the damage.  We run the same campaign: each trial boots a
// fresh testbed, starts an inbound ssh-like echo session, an outbound bulk
// stream and a DNS query loop, injects one manifested fault into a component
// drawn from the paper's observed distribution, and observes:
//   - did the active TCP connection survive?        (Table IV row 3)
//   - is the machine reachable from outside after?  (row 2: reconnect works)
//   - was UDP/DNS service uninterrupted?            (row 4)
//   - did recovery need manual action or a reboot?  (rows 2/5)
// A second datapoint closes the loop the paper left open: Table I declares
// established TCP connections unrecoverable, and rows 2/3 of Table IV count
// the broken connections.  With `tcp_checkpoint` on we crash the TCP server
// mid-bulk-transfer and measure what the paper could not show: 0 reconnects,
// the throughput dip, and the recovery time.  Results are also written to
// BENCH_faults.json (bench/bench_json.h) for CI.
#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <string>

#include "bench/bench_json.h"
#include "src/core/apps.h"
#include "src/core/fault_injection.h"
#include "src/core/testbed.h"

using namespace newtos;

namespace {

struct TrialResult {
  std::string component;
  FaultType fault = FaultType::Crash;
  bool tcp_survived = false;
  bool reachable = false;
  bool reachable_after_manual_fix = false;
  bool udp_transparent = false;
  bool needed_reboot = false;
};

TrialResult run_trial(std::uint64_t seed) {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  opts.nics = 2;
  opts.pf_filler_rules = 128;
  opts.seed = seed;
  Testbed tb(opts);

  // Inbound ssh-like session (the paper's OpenSSH test server).
  AppActor* sshd_app = tb.newtos().add_app("sshd");
  apps::EchoServer sshd(tb.newtos(), sshd_app, {});
  sshd.start();
  AppActor* ssh_app = tb.peer().add_app("ssh");
  apps::EchoClient::Config ec;
  ec.dst = tb.peer().peer_addr(0);
  apps::EchoClient ssh(tb.peer(), ssh_app, ec);
  ssh.start();

  // Outbound bulk TCP.
  AppActor* rx_app = tb.peer().add_app("iperf_rx");
  apps::BulkReceiver::Config rc;
  rc.record_series = false;
  apps::BulkReceiver receiver(tb.peer(), rx_app, rc);
  receiver.start();
  AppActor* tx_app = tb.newtos().add_app("iperf_tx");
  apps::BulkSender::Config sc;
  sc.dst = tb.newtos().peer_addr(1);
  apps::BulkSender sender(tb.newtos(), tx_app, sc);
  sender.start();

  // DNS resolver against a remote server.
  AppActor* named_app = tb.peer().add_app("named");
  apps::DnsServer named(tb.peer(), named_app);
  named.start();
  AppActor* res_app = tb.newtos().add_app("resolver");
  apps::DnsClient::Config dc;
  dc.dst = tb.newtos().peer_addr(0);
  apps::DnsClient resolver(tb.newtos(), res_app, dc);
  resolver.start();

  FaultInjector faults(tb.newtos(), seed * 1000003 + 17);

  TrialResult result;
  result.component = faults.pick_component();
  result.fault = faults.pick_fault(result.component);

  // Let everything settle, then strike.
  tb.run_until(2 * sim::kSecond);
  const std::uint64_t resets_before = ssh.resets();
  const std::uint64_t dns_sent_before = resolver.sent();
  const std::uint64_t dns_ans_before = resolver.answered();
  faults.inject(result.component, result.fault);

  (void)dns_sent_before;
  (void)dns_ans_before;
  // Observation window, then judge *liveness* over the final stretch — the
  // paper tested "whether the active ssh connections kept working, whether
  // we were able to establish new ones and whether the name resolver was
  // able to contact a remote DNS server without reopening the UDP socket".
  tb.run_until(6 * sim::kSecond);
  const std::uint64_t echo_at_6s = ssh.ok();
  const std::uint64_t dns_at_6s = resolver.answered();
  tb.run_until(8 * sim::kSecond);

  result.needed_reboot = tb.newtos().requires_reboot();
  const bool echo_alive = ssh.connected() && ssh.ok() > echo_at_6s;
  const bool dns_alive = resolver.answered() > dns_at_6s;
  result.tcp_survived =
      ssh.resets() == resets_before && echo_alive && !result.needed_reboot;
  result.reachable = !result.needed_reboot && echo_alive;
  result.udp_transparent = !result.needed_reboot && dns_alive;

  // The paper manually restarted components in the cases the reincarnation
  // server could not see (silent wedges, device misconfiguration).
  if (!result.reachable && !result.needed_reboot) {
    tb.newtos().manual_restart(result.component);
    tb.run_until(12 * sim::kSecond);
    const std::uint64_t echo_now = ssh.ok();
    tb.run_until(14 * sim::kSecond);
    if (ssh.connected() && ssh.ok() > echo_now)
      result.reachable_after_manual_fix = true;
  }
  return result;
}

// Crash TCP mid-bulk-transfer with connection checkpointing on; observe the
// recovery from the receiver's 50 ms bitrate series.
struct CkptDatapoint {
  std::uint64_t connects = 0;  // 1 = the initial connect, nothing else
  std::uint64_t resets = 0;
  std::uint64_t restored = 0;
  double pre_gbps = 0.0;
  double dip_gbps = 0.0;
  double post_gbps = 0.0;     // sustained rate well after the crash
  double recovery_ms = -1.0;  // time to >= 50% of pre-crash rate
};

CkptDatapoint run_checkpoint_datapoint() {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  opts.nics = 1;
  opts.pf_filler_rules = 128;
  opts.tcp_checkpoint = true;
  Testbed tb(opts);

  AppActor* rx_app = tb.peer().add_app("ckpt_rx");
  apps::BulkReceiver::Config rc;
  rc.prefix = "ckpt_rx";
  rc.sample_interval = 50 * sim::kMillisecond;
  apps::BulkReceiver receiver(tb.peer(), rx_app, rc);
  receiver.start();
  AppActor* tx_app = tb.newtos().add_app("iperf_tx");
  apps::BulkSender::Config sc;
  sc.dst = tb.newtos().peer_addr(0);
  apps::BulkSender sender(tb.newtos(), tx_app, sc);
  sender.start();

  const sim::Time crash_at = 3 * sim::kSecond;
  FaultInjector faults(tb.newtos(), 1);
  faults.inject_at(crash_at, servers::kTcpName, FaultType::Crash);
  tb.run_until(8 * sim::kSecond);

  CkptDatapoint d;
  d.connects = tb.newtos().stats().get("iperf_tx.connects");
  d.resets = tb.newtos().stats().get("iperf_tx.resets");
  d.restored = tb.newtos().tcp_engine()->stats().conns_restored;

  // The sample straddling the crash still carries pre-crash bytes: judge
  // the dip and the recovery only from windows that start after it.
  const sim::Time post_from = crash_at + 2 * 50 * sim::kMillisecond;
  const auto& series = tb.peer().stats().series("ckpt_rx.mbps");
  double pre_sum = 0.0;
  int pre_n = 0;
  double dip = 1e18;
  double post_sum = 0.0;
  int post_n = 0;
  for (const auto& p : series) {
    if (p.t >= 1 * sim::kSecond && p.t < crash_at) {
      pre_sum += p.value;
      ++pre_n;
    }
    if (p.t >= post_from && p.t < crash_at + 2 * sim::kSecond) {
      dip = std::min(dip, p.value);
    }
    if (p.t >= crash_at + 1 * sim::kSecond) {
      post_sum += p.value;
      ++post_n;
    }
  }
  d.pre_gbps = pre_n > 0 ? pre_sum / pre_n / 1e3 : 0.0;
  d.dip_gbps = dip >= 1e18 ? 0.0 : dip / 1e3;
  d.post_gbps = post_n > 0 ? post_sum / post_n / 1e3 : 0.0;
  for (const auto& p : series) {
    if (p.t >= post_from && p.value >= 0.5 * (d.pre_gbps * 1e3)) {
      d.recovery_ms = static_cast<double>(p.t - crash_at) / 1e6;
      break;
    }
  }
  return d;
}

}  // namespace

int main() {
  constexpr int kTrials = 100;
  std::map<std::string, int> by_component;
  int transparent = 0;
  int reachable = 0;
  int manually_fixed = 0;
  int tcp_broken = 0;
  int udp_transparent = 0;
  int reboots = 0;

  for (int i = 0; i < kTrials; ++i) {
    TrialResult r = run_trial(1000 + static_cast<std::uint64_t>(i));
    // Aggregate per component, folding drivers together like the paper.
    std::string comp = r.component.rfind("drv", 0) == 0 ? "Driver"
                       : r.component == "tcp"           ? "TCP"
                       : r.component == "udp"           ? "UDP"
                       : r.component == "ip"            ? "IP"
                                                        : "PF";
    ++by_component[comp];
    const bool fully_transparent =
        r.tcp_survived && r.udp_transparent && !r.needed_reboot;
    if (fully_transparent) ++transparent;
    if (r.reachable) ++reachable;
    if (r.reachable_after_manual_fix) ++manually_fixed;
    if (!r.tcp_survived) ++tcp_broken;
    if (r.udp_transparent) ++udp_transparent;
    if (r.needed_reboot) ++reboots;
    std::printf("trial %3d: %-4s %-12s tcp=%s reach=%s%s udp=%s%s\n", i + 1,
                comp.c_str(), to_string(r.fault),
                r.tcp_survived ? "ok" : "BROKEN",
                r.reachable ? "yes" : "no",
                r.reachable_after_manual_fix ? "(manual)" : "",
                r.udp_transparent ? "ok" : "MISSED",
                r.needed_reboot ? " REBOOT" : "");
    std::fflush(stdout);
  }

  std::printf("\nTable III: distribution of injected faults (paper: "
              "TCP 25, UDP 10, IP 24, PF 25, Driver 16)\n");
  std::printf("  Total %d:", kTrials);
  for (const auto& [comp, n] : by_component)
    std::printf("  %s %d", comp.c_str(), n);
  std::printf("\n");

  std::printf("\nTable IV: consequences of crashes (paper values)\n");
  std::printf("  %-44s %3d   (70)\n", "Fully transparent crashes",
              transparent);
  std::printf("  %-44s %3d+%d (90 + 6 manually fixed)\n",
              "Reachable from outside", reachable, manually_fixed);
  std::printf("  %-44s %3d   (30)\n", "Crash broke TCP connections",
              tcp_broken);
  std::printf("  %-44s %3d   (95)\n", "Transparent to UDP", udp_transparent);
  std::printf("  %-44s %3d   (3)\n", "Reboot necessary", reboots);

  // The connection-checkpoint datapoint: the failure class Table IV charges
  // to TCP ("crash broke TCP connections"), removed.
  std::printf("\nCheckpoint datapoint: crash TCP mid-bulk-transfer, "
              "tcp_checkpoint on\n");
  const CkptDatapoint d = run_checkpoint_datapoint();
  std::printf("  reconnects %llu (1 = initial connect only)  resets %llu  "
              "connections restored %llu\n",
              static_cast<unsigned long long>(d.connects),
              static_cast<unsigned long long>(d.resets),
              static_cast<unsigned long long>(d.restored));
  std::printf("  pre-crash %.2f Gb/s  dip %.2f Gb/s  back to >=50%% in "
              "%.0f ms  sustained %.2f Gb/s\n",
              d.pre_gbps, d.dip_gbps, d.recovery_ms, d.post_gbps);
  // A stalled-but-quiet transfer must not pass: demand the sustained
  // post-crash rate, not just the absence of reconnects.
  const bool holds =
      d.connects == 1 && d.resets == 0 && d.restored >= 1 &&
      d.recovery_ms >= 0.0 && d.post_gbps >= 0.8 * d.pre_gbps;
  if (holds) {
    std::printf("checkpoint recovery holds: 0 reconnects, recovered in "
                "%.0f ms\n",
                d.recovery_ms);
  } else {
    std::printf("checkpoint recovery FAILED\n");
  }

  benchjson::Writer json("faults");
  auto summary = [&json](const char* metric, int value, int paper) {
    json.begin_row();
    json.field("metric", std::string(metric));
    json.field("value", value);
    json.field("paper", paper);
  };
  summary("fully_transparent", transparent, 70);
  summary("reachable", reachable, 90);
  summary("reachable_after_manual_fix", manually_fixed, 6);
  summary("tcp_broken", tcp_broken, 30);
  summary("udp_transparent", udp_transparent, 95);
  summary("reboots", reboots, 3);
  json.begin_row();
  json.field("metric", std::string("tcp_checkpoint_crash"));
  json.field("reconnects",
             static_cast<std::uint64_t>(d.connects > 0 ? d.connects - 1 : 0));
  json.field("resets", d.resets);
  json.field("conns_restored", d.restored);
  json.field("pre_gbps", d.pre_gbps);
  json.field("dip_gbps", d.dip_gbps);
  json.field("post_gbps", d.post_gbps);
  json.field("recovery_ms", d.recovery_ms);
  json.write("BENCH_faults.json");
  return holds ? 0 : 1;
}
