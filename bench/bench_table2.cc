// Table II: peak performance of outgoing TCP in various setups.
//
// Reproduces the seven rows of the paper's Table II.  The testbed mirrors
// the paper's machine: the system under test drives 5 gigabit NICs (1500
// MTU), each wired to an ideal traffic sink; the "Linux 10GbE" reference
// row runs an in-process stack on a single 10 Gb/s link.  One bulk TCP
// connection runs per NIC.  We report the aggregate receiver goodput after
// slow start settles.
//
// Expected shape (paper values in brackets): the synchronous MINIX baseline
// is an order of magnitude below everything [120 Mb/s]; the NewtOS variants
// without TSO cluster in the 3-4 Gb/s band [3.2-3.9 Gb/s]; TSO saturates
// all five links [5+ Gb/s]; the ideal monolithic 10GbE reference tops the
// table [8.4 Gb/s].
#include <algorithm>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "src/core/apps.h"
#include "src/core/socket.h"
#include "src/core/testbed.h"
#include "src/servers/driver_server.h"
#include "src/servers/ip_server.h"
#include "src/servers/tcp_server.h"

using namespace newtos;

namespace {

struct Row {
  const char* label;
  const char* paper;
  TestbedOptions opts;
  sim::Time warmup;
  sim::Time window;
};

struct RowResult {
  double gbps = 0.0;
  double msgs_per_frame = 0.0;   // channel messages per NIC frame (DUT)
  double copies_per_byte = 0.0;  // socket-layer memcpy per delivered byte
};

RowResult run_row(const TestbedOptions& opts, sim::Time warmup,
                  sim::Time window) {
  Testbed tb(opts);
  std::vector<std::unique_ptr<apps::BulkReceiver>> receivers;
  std::vector<std::unique_ptr<apps::BulkSender>> senders;
  for (int i = 0; i < opts.nics; ++i) {
    AppActor* rx_app = tb.peer().add_app("iperf_rx" + std::to_string(i));
    apps::BulkReceiver::Config rc;
    rc.port = static_cast<std::uint16_t>(5001 + i);
    rc.record_series = false;
    receivers.push_back(
        std::make_unique<apps::BulkReceiver>(tb.peer(), rx_app, rc));
    receivers.back()->start();

    AppActor* tx_app = tb.newtos().add_app("iperf_tx" + std::to_string(i));
    apps::BulkSender::Config sc;
    sc.dst = tb.newtos().peer_addr(i);
    sc.port = rc.port;
    sc.write_size = opts.app_write_size;
    senders.push_back(
        std::make_unique<apps::BulkSender>(tb.newtos(), tx_app, sc));
    senders.back()->start();
  }

  tb.run_until(warmup);
  std::uint64_t start_bytes = 0;
  for (auto& r : receivers) start_bytes += r->bytes();
  tb.run_until(warmup + window);
  std::uint64_t bytes = 0;
  for (auto& r : receivers) bytes += r->bytes();
  bytes -= start_bytes;

  RowResult res;
  res.gbps = static_cast<double>(bytes) * 8.0 /
             (static_cast<double>(window) / 1e9) / 1e9;
  std::uint64_t frames = 0;
  for (int i = 0; i < tb.newtos().nic_count(); ++i) {
    const auto& ns = tb.newtos().nic(i)->stats();
    frames += ns.tx_frames + ns.rx_frames;
  }
  if (frames > 0) {
    res.msgs_per_frame =
        static_cast<double>(tb.newtos().total_channel_messages()) /
        static_cast<double>(frames);
  }
  std::uint64_t total_bytes = 0;
  for (auto& r : receivers) total_bytes += r->bytes();
  if (total_bytes > 0) {
    res.copies_per_byte =
        static_cast<double>(tb.newtos().stats().get("sock.bytes_copied")) /
        static_cast<double>(total_bytes);
  }
  return res;
}

TestbedOptions base(StackMode mode, int nics, bool tso) {
  TestbedOptions o;
  o.mode = mode;
  o.nics = nics;
  o.tso = tso;
  o.gbps = 1.0;
  o.use_pf = true;
  o.pf_filler_rules = 0;
  o.app_write_size = 65536;  // iperf-style large writes
  return o;
}

}  // namespace

namespace {

// The receive-side batching datapoint: 5 gigabit links of bulk TCP INTO
// the system under test.  Per-frame RX pays one kernel interrupt message,
// one channel message per hop and one tcp_segment_proc per MSS frame — at
// 5 GbE inbound the transport core saturates and the node livelocks on its
// own receive path.  With the NICs coalescing 8-frame bursts and IP
// merging them into GRO aggregates, the interrupt, the per-hop messages
// and the TCP charge amortize across the burst.
void rx_batching_datapoint(benchjson::Writer& jw) {
  constexpr int kNics = 5;
  const sim::Time warm = 400 * sim::kMillisecond;
  const sim::Time window = 600 * sim::kMillisecond;

  struct Cfg {
    const char* label;
    int coalesce_frames;
    std::uint32_t coalesce_usecs;
    bool gro;
  };
  const Cfg cfgs[] = {
      {"rx per-frame (baseline)", 0, 0, false},
      {"rx coalesce 8 frames + GRO", 8, 120, true},
  };

  std::printf(
      "\nReceive-side batching (split stack + SYSCALL, %d NICs inbound "
      "bulk TCP):\n",
      kNics);
  double baseline = 0.0;
  bool have_baseline = false;
  for (const Cfg& c : cfgs) {
    TestbedOptions opts = base(StackMode::kSplitSyscall, kNics, false);
    opts.rx_coalesce_frames = c.coalesce_frames;
    opts.rx_coalesce_usecs = c.coalesce_usecs;
    opts.gro = c.gro;
    Testbed tb(opts);

    std::vector<std::unique_ptr<apps::BulkReceiver>> receivers;
    std::vector<std::unique_ptr<apps::BulkSender>> senders;
    for (int i = 0; i < kNics; ++i) {
      AppActor* rx_app = tb.newtos().add_app("iperf_rx" + std::to_string(i));
      apps::BulkReceiver::Config rc;
      rc.port = static_cast<std::uint16_t>(5001 + i);
      rc.record_series = false;
      receivers.push_back(
          std::make_unique<apps::BulkReceiver>(tb.newtos(), rx_app, rc));
      receivers.back()->start();
      AppActor* tx_app = tb.peer().add_app("iperf_tx" + std::to_string(i));
      apps::BulkSender::Config sc;
      sc.dst = tb.peer().peer_addr(i);
      sc.port = rc.port;
      sc.write_size = opts.app_write_size;
      senders.push_back(
          std::make_unique<apps::BulkSender>(tb.peer(), tx_app, sc));
      senders.back()->start();
    }

    tb.run_until(warm);
    std::uint64_t start_bytes = 0;
    for (auto& r : receivers) start_bytes += r->bytes();
    tb.run_until(warm + window);
    std::uint64_t bytes = 0;
    for (auto& r : receivers) bytes += r->bytes();
    bytes -= start_bytes;
    const double gbps = static_cast<double>(bytes) * 8.0 /
                        (static_cast<double>(window) / 1e9) / 1e9;

    std::uint64_t drv_msgs = 0;
    std::uint64_t drv_frames = 0;
    for (int i = 0; i < kNics; ++i) {
      auto* drv = dynamic_cast<servers::DriverServer*>(
          tb.newtos().server(servers::driver_name(i)));
      if (drv == nullptr) continue;
      drv_msgs += drv->rx_msgs();
      drv_frames += drv->rx_frames();
    }
    auto* ips = dynamic_cast<servers::IpServer*>(
        tb.newtos().server(servers::kIpName));
    const double drv_mpf =
        drv_frames ? static_cast<double>(drv_msgs) /
                         static_cast<double>(drv_frames)
                   : 0.0;
    const double ip_mpf =
        (ips != nullptr && ips->l4_frames() > 0)
            ? static_cast<double>(ips->l4_msgs()) /
                  static_cast<double>(ips->l4_frames())
            : 0.0;
    const auto& tcp = tb.newtos().tcp_engine()->stats();
    const double acks_per_seg =
        tcp.segs_in ? static_cast<double>(tcp.acks_out) /
                          static_cast<double>(tcp.segs_in)
                    : 0.0;

    if (!have_baseline) {
      baseline = gbps;
      have_baseline = true;
    }
    std::printf(
        "  %-28s %6.2f Gb/s   drv->ip %.3f msg/frame, ip->tcp %.3f "
        "msg/frame, %.2f ACKs/seg%s\n",
        c.label, gbps, drv_mpf, ip_mpf, acks_per_seg,
        c.gro && gbps >= 1.5 * baseline ? "  (>= 1.5x: RX batching pays)"
                                        : "");
    jw.begin_row();
    jw.field("label", std::string("datapoint: ") + c.label);
    jw.field("gbps", gbps);
    jw.field("drv_msgs_per_frame", drv_mpf);
    jw.field("ip_msgs_per_frame", ip_mpf);
    jw.field("acks_per_segment", acks_per_seg);
    jw.field("gro_aggs", tcp.aggs_in);
    jw.field("speedup_vs_per_frame",
             baseline > 0.0 ? gbps / baseline : 0.0);
  }
}

// The ring amortization datapoint: socket ops completed per kernel-IPC trap
// with the batched submission/completion rings (src/core/socket_ring.h).
// One bulk sender (up to 8 in-flight writes per flush) plus an echo pair
// provide a mixed control-op load.
void batching_datapoint(benchjson::Writer& jw) {
  TestbedOptions opts = base(StackMode::kSplitSyscall, 1, false);
  Testbed tb(opts);

  AppActor* rx_app = tb.peer().add_app("iperf_rx");
  apps::BulkReceiver::Config rc;
  rc.record_series = false;
  apps::BulkReceiver receiver(tb.peer(), rx_app, rc);
  receiver.start();
  AppActor* tx_app = tb.newtos().add_app("iperf_tx");
  apps::BulkSender::Config sc;
  sc.dst = tb.newtos().peer_addr(0);
  sc.write_size = opts.app_write_size;
  apps::BulkSender sender(tb.newtos(), tx_app, sc);
  sender.start();

  AppActor* sshd_app = tb.newtos().add_app("sshd");
  apps::EchoServer sshd(tb.newtos(), sshd_app, {});
  sshd.start();
  AppActor* ssh_app = tb.peer().add_app("ssh");
  apps::EchoClient::Config ec;
  ec.dst = tb.peer().peer_addr(0);
  apps::EchoClient ssh(tb.peer(), ssh_app, ec);
  ssh.start();

  tb.run_until(1 * sim::kSecond);

  const auto& st = tb.newtos().stats();
  const std::uint64_t ops = st.get("sockring.ops");
  const std::uint64_t bells = st.get("sockring.doorbells");
  auto* sys = tb.newtos().syscall();
  std::printf("\nBatched submission rings (split stack + SYSCALL, 1s):\n");
  std::printf("  app socket ops submitted:   %llu\n",
              static_cast<unsigned long long>(ops));
  std::printf("  doorbells (kernel traps):   %llu\n",
              static_cast<unsigned long long>(bells));
  std::printf("  ops per trap:               %.2f %s\n",
              bells == 0 ? 0.0
                         : static_cast<double>(ops) /
                               static_cast<double>(bells),
              bells != 0 && ops >= 2 * bells ? "(>= 2: batching pays)"
                                             : "");
  if (sys != nullptr) {
    std::printf("  SYSCALL server: %llu ops in %llu batch messages\n",
                static_cast<unsigned long long>(sys->calls()),
                static_cast<unsigned long long>(sys->batches()));
  }
  // Section IV-A drop policy, made visible: how many channel sends the
  // servers had to drop or defer during the run.
  std::printf("  channel send failures:      %llu\n",
              static_cast<unsigned long long>(
                  tb.newtos().publish_channel_stats()));
  jw.begin_row();
  jw.field("label", std::string("datapoint: submission-ring batching"));
  jw.field("ops", ops);
  jw.field("doorbells", bells);
  jw.field("ops_per_trap",
           bells == 0 ? 0.0
                      : static_cast<double>(ops) / static_cast<double>(bells));
}

// The chunk-lending datapoint (Section V-C): a zero-copy TCP proxy on the
// system under test splices a bulk stream from one peer socket to another
// with recv_zc()/forward() — the payload chunks travel by rich pointer from
// the NIC's receive pool through the proxy and back to the NIC.  The
// "sock.bytes_copied" counter proves the socket layer moved 0 bytes.
void zero_copy_datapoint(benchjson::Writer& jw) {
  TestbedOptions opts = base(StackMode::kSplitSyscall, 1, false);
  Testbed tb(opts);

  AppActor* rx_app = tb.peer().add_app("sink");
  apps::BulkReceiver::Config rc;
  rc.port = 5002;
  rc.record_series = false;
  apps::BulkReceiver receiver(tb.peer(), rx_app, rc);
  receiver.start();

  AppActor* px_app = tb.newtos().add_app("proxy");
  TcpListener px_listener(*px_app);
  std::unique_ptr<TcpSocket> px_in;
  std::unique_ptr<TcpSocket> px_out;
  bool out_connected = false;
  std::uint64_t forwarded = 0;
  auto pump = [&]() {
    if (!px_in || !px_out || !out_connected) return;
    for (;;) {
      const std::size_t n = px_in->forward(*px_out, 256 * 1024);
      if (n == 0) break;
      forwarded += n;
    }
  };
  px_listener.on_event([&](net::TcpEvent ev) {
    if (ev != net::TcpEvent::AcceptReady) return;
    while (auto c = px_listener.accept()) {
      px_in = std::move(c);
      px_in->on_event([&](net::TcpEvent cev) {
        if (cev == net::TcpEvent::Readable) pump();
      });
      px_out = std::make_unique<TcpSocket>(*px_app);
      px_out->on_event([&](net::TcpEvent oev) {
        if (oev == net::TcpEvent::Connected) {
          out_connected = true;
          pump();
        } else if (oev == net::TcpEvent::Writable) {
          pump();
        }
      });
      px_out->connect(tb.newtos().peer_addr(0), 5002, [](bool) {});
    }
  });
  px_listener.bind_listen(net::Ipv4Addr{}, 5001, 4, [](bool) {});
  // The proxy's Readable events batch; a slow poll catches stragglers when
  // data raced ahead of the outbound connect.
  std::function<void()> poll = [&]() {
    pump();
    px_app->call_after(10 * sim::kMillisecond,
                       [&](sim::Context&) { poll(); });
  };
  px_app->call([&](sim::Context&) { poll(); });

  AppActor* tx_app = tb.peer().add_app("src");
  apps::BulkSender::Config sc;
  sc.dst = tb.peer().peer_addr(0);
  sc.port = 5001;
  sc.write_size = opts.app_write_size;
  apps::BulkSender sender(tb.peer(), tx_app, sc);
  sender.start();

  tb.run_until(1 * sim::kSecond);

  const std::uint64_t copied = tb.newtos().stats().get("sock.bytes_copied");
  std::printf("\nZero-copy proxy (recv_zc + forward, split stack, 1s):\n");
  std::printf("  bytes spliced through proxy:  %llu (%.2f Gb/s)\n",
              static_cast<unsigned long long>(forwarded),
              static_cast<double>(forwarded) * 8.0 / 1e9);
  std::printf("  bytes at the final receiver:  %llu (%.2f Gb/s end to end)\n",
              static_cast<unsigned long long>(receiver.bytes()),
              static_cast<double>(receiver.bytes()) * 8.0 / 1e9);
  std::printf("  payload bytes memcpy'd:       %llu\n",
              static_cast<unsigned long long>(copied));
  std::printf("  copies per byte:              %.4f %s\n",
              forwarded == 0 ? 0.0
                             : static_cast<double>(copied) /
                                   static_cast<double>(forwarded),
              copied == 0 && forwarded > 0 ? "(zero-copy path holds)"
                                           : "(EXPECTED 0!)");
  std::printf("  send-pool ENOBUFS events:     %llu\n",
              static_cast<unsigned long long>(
                  tb.newtos().stats().get("sock.enobufs")));
  jw.begin_row();
  jw.field("label", std::string("datapoint: zero-copy proxy"));
  jw.field("gbps", static_cast<double>(forwarded) * 8.0 / 1e9);
  jw.field("bytes_copied", copied);
  jw.field("copies_per_byte",
           forwarded == 0 ? 0.0
                          : static_cast<double>(copied) /
                                static_cast<double>(forwarded));
}

// Shared body of the many-flow outbound experiments: `flows` bulk TCP
// connections leave the system under test over its NICs; returns aggregate
// receiver goodput over the measurement window.
double run_outbound_flows(Testbed& tb, int flows, int nics,
                          std::uint32_t write_size, sim::Time warm,
                          sim::Time window) {
  std::vector<std::unique_ptr<apps::BulkReceiver>> receivers;
  std::vector<std::unique_ptr<apps::BulkSender>> senders;
  for (int f = 0; f < flows; ++f) {
    AppActor* rx_app = tb.peer().add_app("rx" + std::to_string(f));
    apps::BulkReceiver::Config rc;
    rc.port = static_cast<std::uint16_t>(6001 + f);
    rc.record_series = false;
    receivers.push_back(
        std::make_unique<apps::BulkReceiver>(tb.peer(), rx_app, rc));
    receivers.back()->start();

    AppActor* tx_app = tb.newtos().add_app("tx" + std::to_string(f));
    apps::BulkSender::Config sc;
    sc.dst = tb.newtos().peer_addr(f % nics);
    sc.port = rc.port;
    sc.write_size = write_size;
    senders.push_back(
        std::make_unique<apps::BulkSender>(tb.newtos(), tx_app, sc));
    senders.back()->start();
  }

  tb.run_until(warm);
  std::uint64_t start_bytes = 0;
  for (auto& r : receivers) start_bytes += r->bytes();
  tb.run_until(warm + window);
  std::uint64_t bytes = 0;
  for (auto& r : receivers) bytes += r->bytes();
  bytes -= start_bytes;
  return static_cast<double>(bytes) * 8.0 /
         (static_cast<double>(window) / 1e9) / 1e9;
}

// The sharded-transport scalability datapoint: the paper's argument that a
// component can be replicated across further cores, measured.  32 bulk TCP
// flows leave the system under test over 5 gigabit links; the TCP server —
// the per-byte bottleneck of the split stack (rows 2/3) — runs as 1, 2 and
// 4 replicas with 4-tuple flow steering.  Aggregate goodput must rise with
// the replica count until the wires (5 Gb/s) cap it.
void sharding_datapoint(benchjson::Writer& jw) {
  constexpr int kFlows = 32;
  constexpr int kNics = 5;
  const sim::Time warm = 300 * sim::kMillisecond;
  const sim::Time window = 500 * sim::kMillisecond;

  std::printf(
      "\nSharded transport plane (split stack + SYSCALL, %d flows, %d "
      "NICs):\n",
      kFlows, kNics);
  for (int shards : {1, 2, 4}) {
    TestbedOptions opts = base(StackMode::kSplitSyscall, kNics, false);
    opts.tcp_shards = shards;
    Testbed tb(opts);
    const double gbps = run_outbound_flows(tb, kFlows, kNics,
                                           opts.app_write_size, warm, window);

    std::size_t conns = 0;
    std::size_t busiest = 0;
    for (int s = 0; s < tb.newtos().tcp_shard_count(); ++s) {
      const std::size_t n = tb.newtos().tcp_engine(s)->connection_count();
      conns += n;
      busiest = std::max(busiest, n);
    }
    std::printf(
        "  tcp_shards=%d:  %6.2f Gb/s aggregate   (%zu flows, busiest "
        "replica carries %zu)\n",
        shards, gbps, conns, busiest);
    jw.begin_row();
    jw.field("label", std::string("datapoint: sharding tcp_shards=") +
                          std::to_string(shards));
    jw.field("gbps", gbps);
    jw.field("flows", static_cast<std::uint64_t>(conns));
    jw.field("busiest_replica", static_cast<std::uint64_t>(busiest));
  }
}

// Shared body of the many-flow inbound experiments: `flows` bulk TCP
// connections enter the system under test over its NICs; returns aggregate
// receiver goodput over the measurement window.
double run_inbound_flows(Testbed& tb, int flows, int nics,
                         std::uint32_t write_size, sim::Time warm,
                         sim::Time window) {
  std::vector<std::unique_ptr<apps::BulkReceiver>> receivers;
  std::vector<std::unique_ptr<apps::BulkSender>> senders;
  for (int f = 0; f < flows; ++f) {
    AppActor* rx_app = tb.newtos().add_app("rx" + std::to_string(f));
    apps::BulkReceiver::Config rc;
    rc.port = static_cast<std::uint16_t>(6001 + f);
    rc.record_series = false;
    receivers.push_back(
        std::make_unique<apps::BulkReceiver>(tb.newtos(), rx_app, rc));
    receivers.back()->start();

    AppActor* tx_app = tb.peer().add_app("tx" + std::to_string(f));
    apps::BulkSender::Config sc;
    sc.dst = tb.peer().peer_addr(f % nics);
    sc.port = rc.port;
    sc.write_size = write_size;
    senders.push_back(
        std::make_unique<apps::BulkSender>(tb.peer(), tx_app, sc));
    senders.back()->start();
  }

  tb.run_until(warm);
  std::uint64_t start_bytes = 0;
  for (auto& r : receivers) start_bytes += r->bytes();
  tb.run_until(warm + window);
  std::uint64_t bytes = 0;
  for (auto& r : receivers) bytes += r->bytes();
  bytes -= start_bytes;
  return static_cast<double>(bytes) * 8.0 /
         (static_cast<double>(window) / 1e9) / 1e9;
}

// The multi-queue RSS datapoint: the 32-flow sharded experiment run in the
// direction receive-side scaling is for — INTO the system under test, on
// per-frame receive (the classic path every Table II row uses), with the
// transport plane fixed at 4 replicas and 5 x 2GbE so the wire is not the
// ceiling.  With one queue this IS the classic sharded configuration:
// every inbound frame funnels through the central IP server, which hashes
// and re-forwards each one — IP saturates and the aggregate stalls under
// 3 Gb/s no matter how many replicas wait behind it.  With rx_queues ==
// tcp_shards every steerable frame lands on the queue of its home replica
// and the drivers post it there directly (kDrvRxFast) — the hoisted IP
// receive work runs on the shards' own cores, the serialization point
// disappears, and the aggregate beats the single-stack TSO row (4.74).
void rss_datapoint(benchjson::Writer& jw) {
  constexpr int kFlows = 32;
  constexpr int kNics = 5;
  constexpr int kShards = 4;
  const sim::Time warm = 300 * sim::kMillisecond;
  const sim::Time window = 500 * sim::kMillisecond;

  std::printf(
      "\nMulti-queue RSS fast path (split stack + SYSCALL, %d inbound "
      "flows, %d x 2GbE, tcp_shards=%d):\n",
      kFlows, kNics, kShards);
  for (int queues : {1, 2, 4}) {
    TestbedOptions opts = base(StackMode::kSplitSyscall, kNics, false);
    opts.tcp_shards = kShards;
    opts.rx_queues = queues;
    opts.gbps = 2.0;
    Testbed tb(opts);
    const double gbps = run_inbound_flows(tb, kFlows, kNics,
                                          opts.app_write_size, warm, window);

    // The per-shard inbound split: frames each replica's fast path consumed
    // locally vs frames that still crossed the central IP server.
    std::uint64_t fast = 0;
    std::uint64_t fallback = 0;
    std::string per_shard;
    for (int s = 0; s < tb.newtos().tcp_shard_count(); ++s) {
      auto* tcp = dynamic_cast<servers::TcpServer*>(
          tb.newtos().transport_server('T', s));
      if (tcp == nullptr || tcp->fastpath() == nullptr) continue;
      const auto& fs = tcp->fastpath()->stats();
      fast += fs.fast_frames;
      fallback += fs.fallback_frames;
      per_shard += (per_shard.empty() ? "" : "/") +
                   std::to_string(fs.fast_frames);
    }
    std::printf(
        "  rx_queues=%d:  %6.2f Gb/s aggregate   (fast %llu, fallback %llu"
        "%s%s)\n",
        queues, gbps, static_cast<unsigned long long>(fast),
        static_cast<unsigned long long>(fallback),
        per_shard.empty() ? "" : ", per shard ", per_shard.c_str());
    jw.begin_row();
    jw.field("label", std::string("datapoint: rss rx_queues=") +
                          std::to_string(queues) + " tcp_shards=" +
                          std::to_string(kShards));
    jw.field("gbps", gbps);
    jw.field("fast_frames", fast);
    jw.field("fallback_frames", fallback);
  }
}

}  // namespace

int main() {
  const sim::Time kWarm = 400 * sim::kMillisecond;
  const sim::Time kWin = 600 * sim::kMillisecond;

  std::vector<Row> rows;
  {
    TestbedOptions o = base(StackMode::kMinixSync, 1, false);
    o.csum_offload = false;  // the original stack checksummed in software
    rows.push_back({"1  Minix 3, 1 CPU, kernel IPC and copies     ",
                    "0.12", o, kWarm, kWin});
  }
  rows.push_back({"2  NewtOS, split stack, dedicated cores       ", "3.2",
                  base(StackMode::kSplit, 5, false), kWarm, kWin});
  rows.push_back({"3  NewtOS, split stack + SYSCALL              ", "3.6",
                  base(StackMode::kSplitSyscall, 5, false), kWarm, kWin});
  rows.push_back({"4  NewtOS, 1 server stack + SYSCALL           ", "3.9",
                  base(StackMode::kSingleServer, 5, false), kWarm, kWin});
  rows.push_back({"5  NewtOS, 1 server stack + SYSCALL + TSO     ", "5+",
                  base(StackMode::kSingleServer, 5, true), kWarm, kWin});
  rows.push_back({"6  NewtOS, split stack + SYSCALL + TSO        ", "5+",
                  base(StackMode::kSplitSyscall, 5, true), kWarm, kWin});
  {
    TestbedOptions o = base(StackMode::kIdealMonolithic, 1, true);
    o.gbps = 10.0;
    // A mature monolithic stack spends fewer cycles per segment than our
    // lwIP-style engines (the paper makes the same point about lwIP).
    o.cost_scale = 0.4;
    rows.push_back({"7  Ideal monolithic (Linux ref), 10GbE       ", "8.4",
                    o, kWarm, kWin});
  }

  benchjson::Writer jw("table2");
  std::printf(
      "Table II: peak performance of outgoing TCP in various setups\n");
  std::printf("%-48s %10s %10s\n", "configuration", "paper", "measured");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    const RowResult rr = run_row(row.opts, row.warmup, row.window);
    std::printf("%-48s %7s Gbps %7.2f Gbps   (%.2f msg/frame, %.4f "
                "copies/B)\n",
                row.label, row.paper, rr.gbps, rr.msgs_per_frame,
                rr.copies_per_byte);
    std::fflush(stdout);
    std::string label(row.label);
    while (!label.empty() && label.back() == ' ') label.pop_back();
    jw.begin_row();
    jw.field("row", static_cast<std::uint64_t>(i + 1));
    jw.field("label", label);
    jw.field("paper_gbps", std::string(row.paper));
    jw.field("gbps", rr.gbps);
    jw.field("msgs_per_frame", rr.msgs_per_frame);
    jw.field("copies_per_byte", rr.copies_per_byte);
  }

  batching_datapoint(jw);
  zero_copy_datapoint(jw);
  sharding_datapoint(jw);
  rss_datapoint(jw);
  rx_batching_datapoint(jw);
  jw.write("BENCH_table2.json");
  return 0;
}
