// Figure 4: bitrate of a single TCP connection across an IP server crash.
//
// The paper injects a fault into the IP server 4 s into an iperf run and
// plots the receiver bitrate: a gap of roughly two seconds opens (the
// gigabit adapters must be reset when IP dies, and the link takes time to
// come back), then the connection recovers its original ~940 Mb/s without
// breaking.  Driver crashes look the same, for the same reason.
#include <cstdio>

#include "bench/bench_json.h"
#include "src/core/apps.h"
#include "src/core/fault_injection.h"
#include "src/core/testbed.h"

using namespace newtos;

int main() {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  opts.nics = 1;
  opts.pf_filler_rules = 64;
  Testbed tb(opts);

  AppActor* rx_app = tb.peer().add_app("iperf_rx");
  apps::BulkReceiver::Config rc;
  rc.record_series = true;
  rc.sample_interval = 100 * sim::kMillisecond;
  rc.prefix = "fig4";
  apps::BulkReceiver receiver(tb.peer(), rx_app, rc);
  receiver.start();

  AppActor* tx_app = tb.newtos().add_app("iperf_tx");
  apps::BulkSender::Config sc;
  sc.dst = tb.newtos().peer_addr(0);
  apps::BulkSender sender(tb.newtos(), tx_app, sc);
  sender.start();

  FaultInjector faults(tb.newtos(), /*seed=*/11);
  faults.inject_at(4 * sim::kSecond, servers::kIpName, FaultType::Crash);

  tb.run_until(10 * sim::kSecond);

  std::printf("Figure 4: IP crash at t=4s, single TCP connection, 1 GbE\n");
  std::printf("%8s %12s\n", "time(s)", "Mbps");
  benchjson::Writer jw("fig4");
  for (const auto& p : tb.peer().stats().series("fig4.mbps")) {
    std::printf("%8.1f %12.1f\n", p.t / 1e9, p.value);
    jw.begin_row();
    jw.field("t_s", p.t / 1e9);
    jw.field("mbps", p.value);
  }
  for (const auto& [t, msg] : tb.newtos().stats().events()) {
    std::printf("# event %.3fs: %s\n", t / 1e9, msg.c_str());
  }
  const auto& tcp = *tb.newtos().tcp_engine();
  std::printf(
      "# connection survived: %s; nic resets: %llu; retransmitted %llu B\n",
      tcp.connection_count() > 0 ? "yes" : "NO",
      static_cast<unsigned long long>(tb.newtos().nic(0)->stats().resets),
      static_cast<unsigned long long>(tcp.stats().bytes_retx));
  // Messages dropped/deferred at full channel queues during the outage
  // (the Section IV-A drop policy), per queue.
  jw.begin_row();
  jw.field("label", std::string("summary"));
  jw.field("connection_survived",
           static_cast<std::uint64_t>(tcp.connection_count() > 0 ? 1 : 0));
  jw.field("nic_resets", tb.newtos().nic(0)->stats().resets);
  jw.field("bytes_retx", tcp.stats().bytes_retx);
  jw.write("BENCH_fig4.json");
  std::printf("# channel send failures: %llu\n",
              static_cast<unsigned long long>(
                  tb.newtos().publish_channel_stats()));
  for (const auto& [name, value] : tb.newtos().stats().counters()) {
    if (name.rfind("chan.", 0) == 0 && name != "chan.send_failures" &&
        value > 0) {
      std::printf("#   %s = %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }
  return 0;
}
