// Figure 5: bitrate of a single TCP connection across two packet-filter
// crashes, with a 1024-rule configuration to recover.
//
// The paper's trace shows the two crashes are "almost not noticeable":
// IP holds every packet until it sees a verdict, so nothing is lost — it
// resubmits the outstanding queries to the restarted filter, which has
// recovered its rules from the storage server and its connection table
// from the TCP/UDP servers.
#include <cstdio>

#include "bench/bench_json.h"
#include "src/core/apps.h"
#include "src/core/fault_injection.h"
#include "src/core/testbed.h"

using namespace newtos;

int main() {
  TestbedOptions opts;
  opts.mode = StackMode::kSplitSyscall;
  opts.nics = 1;
  opts.pf_filler_rules = 1024;  // the rule set the paper recovers
  Testbed tb(opts);

  AppActor* rx_app = tb.peer().add_app("iperf_rx");
  apps::BulkReceiver::Config rc;
  rc.record_series = true;
  rc.sample_interval = 100 * sim::kMillisecond;
  rc.prefix = "fig5";
  apps::BulkReceiver receiver(tb.peer(), rx_app, rc);
  receiver.start();

  AppActor* tx_app = tb.newtos().add_app("iperf_tx");
  apps::BulkSender::Config sc;
  sc.dst = tb.newtos().peer_addr(0);
  apps::BulkSender sender(tb.newtos(), tx_app, sc);
  sender.start();

  FaultInjector faults(tb.newtos(), /*seed=*/13);
  faults.inject_at(6 * sim::kSecond, servers::kPfName, FaultType::Crash);
  faults.inject_at(12 * sim::kSecond, servers::kPfName, FaultType::Crash);

  tb.run_until(18 * sim::kSecond);

  std::printf(
      "Figure 5: packet filter crashes at t=6s and t=12s (1024 rules)\n");
  std::printf("%8s %12s\n", "time(s)", "Mbps");
  benchjson::Writer jw("fig5");
  for (const auto& p : tb.peer().stats().series("fig5.mbps")) {
    std::printf("%8.1f %12.1f\n", p.t / 1e9, p.value);
    jw.begin_row();
    jw.field("t_s", p.t / 1e9);
    jw.field("mbps", p.value);
  }
  auto* pf = static_cast<servers::PfServer*>(
      tb.newtos().server(servers::kPfName));
  const auto& tcp = *tb.newtos().tcp_engine();
  std::printf(
      "# pf rules recovered: %zu; connection survived: %s; "
      "retransmitted %llu B; restarts %llu\n",
      pf->engine()->rules().size(),
      tcp.connection_count() > 0 ? "yes" : "NO",
      static_cast<unsigned long long>(tcp.stats().bytes_retx),
      static_cast<unsigned long long>(
          tb.newtos().reincarnation()->child_stats().at(servers::kPfName)
              .restarts));
  jw.begin_row();
  jw.field("label", std::string("summary"));
  jw.field("pf_rules_recovered",
           static_cast<std::uint64_t>(pf->engine()->rules().size()));
  jw.field("connection_survived",
           static_cast<std::uint64_t>(tcp.connection_count() > 0 ? 1 : 0));
  jw.field("bytes_retx", tcp.stats().bytes_retx);
  jw.field("pf_restarts",
           tb.newtos().reincarnation()->child_stats().at(servers::kPfName)
               .restarts);
  jw.write("BENCH_fig5.json");
  std::printf("# channel send failures: %llu\n",
              static_cast<unsigned long long>(
                  tb.newtos().publish_channel_stats()));
  return 0;
}
