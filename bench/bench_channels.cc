// Channel micro-benchmarks (Section IV's in-text numbers).
//
// The paper reports, on a 1.9 GHz Opteron:
//   - ~30 cycles to asynchronously enqueue a message on a channel between
//     two cores while the consumer keeps consuming,
//   - ~150 cycles for a void SYSCALL trap with hot caches,
//   - ~3000 cycles with cold caches.
//
// This binary measures the real SPSC ring with real concurrent threads on
// the host machine (google-benchmark), and prints the cost-model constants
// the simulator uses (taken from the paper) next to them.  Absolute host
// numbers depend on the machine; the point is the ratio: a channel enqueue
// is tens of cycles, both producer and consumer stay in user space, and no
// kernel trap appears anywhere on the fast path.
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "src/chan/channel.h"
#include "src/chan/message.h"
#include "src/chan/spsc_ring.h"
#include "src/kipc/kipc.h"
#include "src/sim/cost_model.h"

using namespace newtos;

namespace {

// Single-threaded enqueue+dequeue round trip (pure data-structure cost).
void BM_SpscPushPop(benchmark::State& state) {
  chan::SpscRing<chan::Message> ring(1024);
  chan::Message m;
  m.opcode = 7;
  chan::Message out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ring.try_push(m));
    benchmark::DoNotOptimize(ring.try_pop(out));
  }
}
BENCHMARK(BM_SpscPushPop);

// Producer-side enqueue while a real consumer thread keeps draining — the
// paper's "~30 cycles to enqueue while the receiver keeps consuming".
void BM_SpscEnqueueConcurrent(benchmark::State& state) {
  chan::SpscRing<chan::Message> ring(4096);
  std::atomic<bool> stop{false};
  std::thread consumer([&] {
    chan::Message out;
    while (!stop.load(std::memory_order_relaxed)) {
      while (ring.try_pop(out)) {
      }
    }
  });
  chan::Message m;
  m.opcode = 7;
  for (auto _ : state) {
    while (!ring.try_push(m)) {
    }
  }
  stop.store(true);
  consumer.join();
}
BENCHMARK(BM_SpscEnqueueConcurrent);

// Queue wrapper (enqueue + doorbell check), no consumer armed.
void BM_QueueSend(benchmark::State& state) {
  chan::Queue q("bench", 4096);
  chan::Message m;
  chan::Message out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.try_send(m));
    benchmark::DoNotOptimize(q.try_recv(out));
  }
}
BENCHMARK(BM_QueueSend);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Cost-model constants (cycles @1.9GHz, [paper] Section IV):\n");
  sim::CostModel costs;
  kipc::KernelIpc kipc(&costs);
  std::printf("  channel enqueue (paper ~30):            %lld\n",
              static_cast<long long>(costs.channel_enqueue));
  std::printf("  SYSCALL trap, hot caches (paper ~150):  %lld\n",
              static_cast<long long>(costs.trap_hot));
  std::printf("  SYSCALL trap, cold caches (paper ~3000):%lld\n",
              static_cast<long long>(costs.trap_cold));
  std::printf("  sync kernel IPC, same core:             %lld\n",
              static_cast<long long>(kipc.sync_send_same_core(64)));
  std::printf("  sync kernel IPC, cross core (idle dst): %lld\n",
              static_cast<long long>(
                  kipc.sync_send_cross_core(64, /*dest_idle=*/true)));
  std::printf("  kernel-assisted MWAIT wakeup:           %lld\n\n",
              static_cast<long long>(kipc.mwait_resume()));

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
