// Small deterministic PRNG (xoshiro256**) used for fault injection and lossy
// wires.  std::mt19937 would work too, but a self-contained generator keeps
// simulation results identical across standard-library versions.
#pragma once

#include <cstdint>

namespace newtos::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    for (auto& word : s_) {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound).  bound must be > 0.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace newtos::sim
