#include "src/sim/sim.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace newtos::sim {

Time Context::now() const {
  return start_ + sim_.costs().cycles_to_time(charged_);
}

SimCore::SimCore(Simulator& sim, std::string name, int index)
    : sim_(sim), name_(std::move(name)), index_(index) {}

void SimCore::exec(Time earliest, CoreTask task) {
  tasks_.push_back(Pending{earliest, std::move(task)});
  if (!running_) schedule_next();
}

void SimCore::schedule_next() {
  if (tasks_.empty()) {
    running_ = false;
    return;
  }
  running_ = true;
  Pending next = std::move(tasks_.front());
  tasks_.pop_front();
  const Time start =
      std::max({next.earliest, sim_.now(), free_at_});
  sim_.at(start, [this, start, task = std::move(next.task)]() mutable {
    Context ctx(sim_, *this, start);
    task(ctx);
    busy_cycles_ += ctx.charged();
    ++tasks_run_;
    free_at_ = start + sim_.costs().cycles_to_time(ctx.charged());
    if (free_at_ > sim_.now()) {
      sim_.at(free_at_, [this] { schedule_next(); });
    } else {
      schedule_next();
    }
  });
}

double SimCore::utilization(Time window) const {
  if (window <= 0) return 0.0;
  const double busy_ns =
      static_cast<double>(busy_cycles_) / sim_.costs().ghz;
  return busy_ns / static_cast<double>(window);
}

EventId Simulator::at(Time t, EventFn fn) {
  assert(t >= now_ && "cannot schedule into the past");
  return events_.push(std::max(t, now_), std::move(fn));
}

EventId Simulator::after(Time delay, EventFn fn) {
  return at(now_ + std::max<Time>(delay, 0), std::move(fn));
}

SimCore& Simulator::add_core(std::string name) {
  cores_.push_back(std::make_unique<SimCore>(
      *this, std::move(name), static_cast<int>(cores_.size())));
  return *cores_.back();
}

bool Simulator::step() {
  if (events_.empty()) return false;
  now_ = std::max(now_, events_.next_time());
  return events_.pop_and_run();
}

void Simulator::run_until(Time t) {
  while (!events_.empty() && events_.next_time() <= t) step();
  now_ = std::max(now_, t);
}

void Simulator::run_to_completion() {
  while (step()) {
  }
}

}  // namespace newtos::sim
