// The simulator: virtual time, simulated CPU cores, and timers.
//
// Model.  All OS servers, protocol engines and applications in this
// repository are real, executing C++.  What is simulated is *where the
// cycles go*: each server is bound to a SimCore and every handler charges
// cycles to a Context.  A core runs one handler at a time; queued handlers
// wait until the core is free, exactly like run-to-completion event loops on
// dedicated cores in the paper.  Time is global and advances through the
// event queue only, so runs are deterministic.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/sim/cost_model.h"
#include "src/sim/event_queue.h"
#include "src/sim/time.h"

namespace newtos::sim {

class Simulator;
class SimCore;

// Handed to every handler executing on a core.  Handlers account for the
// work they do by calling charge(); now() reflects the charges so far, so a
// message sent halfway through a long handler carries the right timestamp.
class Context {
 public:
  Context(Simulator& sim, SimCore& core, Time start)
      : sim_(sim), core_(core), start_(start) {}

  void charge(Cycles c) { charged_ += c; }
  Cycles charged() const { return charged_; }

  Time now() const;
  Simulator& sim() { return sim_; }
  SimCore& core() { return core_; }

 private:
  Simulator& sim_;
  SimCore& core_;
  Time start_;
  Cycles charged_ = 0;
};

using CoreTask = std::function<void(Context&)>;

// One simulated CPU core.  Tasks submitted with exec() run in FIFO order,
// each no earlier than its `earliest` stamp and no earlier than the end of
// the previous task (the core is a serial resource).
class SimCore {
 public:
  SimCore(Simulator& sim, std::string name, int index);

  SimCore(const SimCore&) = delete;
  SimCore& operator=(const SimCore&) = delete;

  // Queues `task`; it will run when the core is free, at or after `earliest`.
  void exec(Time earliest, CoreTask task);

  const std::string& name() const { return name_; }
  int index() const { return index_; }

  // True when no task is running or queued.
  bool idle() const { return !running_ && tasks_.empty(); }
  Time free_at() const { return free_at_; }

  // Lifetime statistics.
  Cycles busy_cycles() const { return busy_cycles_; }
  std::uint64_t tasks_run() const { return tasks_run_; }
  double utilization(Time window) const;

 private:
  void schedule_next();

  Simulator& sim_;
  std::string name_;
  int index_;
  struct Pending {
    Time earliest;
    CoreTask task;
  };
  std::deque<Pending> tasks_;
  bool running_ = false;
  Time free_at_ = 0;
  Cycles busy_cycles_ = 0;
  std::uint64_t tasks_run_ = 0;
};

// Owns virtual time, the event queue, the cost model and the cores.
class Simulator {
 public:
  Simulator() = default;
  explicit Simulator(CostModel costs) : costs_(costs) {}

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }
  CostModel& costs() { return costs_; }
  const CostModel& costs() const { return costs_; }

  // Raw event scheduling (absolute / relative).  Returns a cancellable id.
  EventId at(Time t, EventFn fn);
  EventId after(Time delay, EventFn fn);
  bool cancel(EventId id) { return events_.cancel(id); }

  SimCore& add_core(std::string name);
  SimCore& core(std::size_t i) { return *cores_.at(i); }
  std::size_t core_count() const { return cores_.size(); }

  // Runs events until virtual time `t` (inclusive) or until idle.
  void run_until(Time t);
  // Runs until the event queue drains.
  void run_to_completion();
  // Fires a single event.  Returns false when nothing is pending.
  bool step();

 private:
  Time now_ = 0;
  CostModel costs_;
  EventQueue events_;
  std::vector<std::unique_ptr<SimCore>> cores_;
};

}  // namespace newtos::sim
