// Virtual time and cycle types used throughout the simulator.
//
// The simulator models the paper's testbed (12-core AMD Opteron 6168 at
// 1.9 GHz) in virtual time.  All protocol and server code executes for real;
// only the passage of time is simulated, driven by the cost model.
#pragma once

#include <cstdint>

namespace newtos::sim {

// Virtual time in nanoseconds since simulation start.
using Time = std::int64_t;

// CPU cycles on a simulated core.
using Cycles = std::int64_t;

constexpr Time kMicrosecond = 1'000;
constexpr Time kMillisecond = 1'000'000;
constexpr Time kSecond = 1'000'000'000;

}  // namespace newtos::sim
