#include "src/sim/event_queue.h"

#include <utility>

namespace newtos::sim {

EventId EventQueue::push(Time t, EventFn fn) {
  const EventId id = next_id_++;
  heap_.push(Event{t, id, std::move(fn)});
  pending_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) { return pending_.erase(id) != 0; }

void EventQueue::drop_cancelled() {
  while (!heap_.empty() && pending_.count(heap_.top().id) == 0) heap_.pop();
}

bool EventQueue::pop_and_run() {
  drop_cancelled();
  if (heap_.empty()) return false;
  // Move the handler out before popping so the event may schedule more work.
  EventFn fn = std::move(const_cast<Event&>(heap_.top()).fn);
  pending_.erase(heap_.top().id);
  heap_.pop();
  fn();
  return true;
}

Time EventQueue::next_time() {
  drop_cancelled();
  return heap_.top().t;
}

}  // namespace newtos::sim
