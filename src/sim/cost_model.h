// Cycle-cost model for the simulated machine.
//
// Constants marked [paper] are taken directly from the DSN'12 text
// (Section IV: ~30 cycles to enqueue on a channel, ~150 cycles for a hot
// SYSCALL trap, ~3000 cycles cold).  Constants marked [calibrated] were
// chosen so that the Table II baseline configurations land in the bands the
// paper reports; EXPERIMENTS.md discusses the calibration.
#pragma once

#include "src/sim/time.h"

namespace newtos::sim {

struct CostModel {
  // Clock rate of a simulated core (AMD Opteron 6168). [paper]
  double ghz = 1.9;

  // --- IPC primitives -----------------------------------------------------
  // Asynchronous enqueue onto a shared-memory channel, including the stall
  // cycles to fetch the updated head pointer. [paper]
  Cycles channel_enqueue = 30;
  // Dequeue from a channel on the consumer side. [calibrated, symmetric]
  Cycles channel_dequeue = 25;
  // Kernel trap (SYSCALL) with warm caches. [paper]
  Cycles trap_hot = 150;
  // Kernel trap with cold caches. [paper]
  Cycles trap_cold = 3000;
  // Full context switch between processes on one core. [calibrated]
  Cycles context_switch = 1500;
  // Interprocessor interrupt to wake a remote core. [calibrated]
  Cycles ipi = 900;
  // Latency to resume a server that parked in (kernel-assisted) MWAIT:
  // the kernel must restore the user context. [calibrated, Section IV-B]
  Cycles mwait_wakeup = 1800;
  // Pulling one remote-core cache line (message slot, descriptor, header)
  // into the local cache. [calibrated]
  Cycles cache_line_pull = 120;
  // Request-database insert/complete pair. [calibrated]
  Cycles request_db_op = 90;

  // --- Data movement -------------------------------------------------------
  // memcpy cost per byte (warm). [calibrated]
  double copy_per_byte = 0.25;
  // Software Internet checksum per byte; zero when offloaded to the NIC.
  double checksum_per_byte = 0.5;

  // --- Protocol processing (per packet / per segment) ----------------------
  // These are the per-stage costs of the real work each server performs,
  // charged on top of the IPC costs above. [calibrated]
  Cycles tcp_segment_proc = 5400;   // segmentation, cwnd, timers, ACK handling
  Cycles tcp_ack_proc = 900;        // pure-ACK receive processing
  Cycles ip_packet_proc = 800;      // routing, header fill, checksum fixup
  Cycles pf_packet_proc = 600;      // rule walk hit in state table
  Cycles pf_rule_cost = 12;         // per rule walked when no state matches
  Cycles udp_packet_proc = 700;
  Cycles drv_packet_proc = 420;     // descriptor fill, tail pointer update
  Cycles socket_op = 500;           // per socket-layer syscall bookkeeping

  // Self-check quantum a component burns when answering a supervision work
  // probe (~105 us at 1.9 GHz).  A probe that only proved liveness could
  // never discriminate a slowdown: a x64-degraded packet filter still
  // answers a 0.3 us probe in microseconds.  Charging a calibrated canary
  // workload makes the probe's own service time scale with the degradation
  // (x64 -> ~6.7 ms, far past the SLO floor) while costing a supervised
  // component only ~0.1% of a core.  Paid only when probes arrive, i.e.
  // only with supervision/work_probes on.
  Cycles probe_canary = 200000;

  // The original MINIX 3 stack (Table II line 1) paid several synchronous
  // kernel messages and data copies per packet, with the whole stack and the
  // application timesharing one core.  This lump captures its per-packet
  // path length beyond the modelled traps/copies/switches. [calibrated]
  Cycles minix_stack_per_packet = 110000;

  // --- Conversions ----------------------------------------------------------
  Time cycles_to_time(Cycles c) const {
    return static_cast<Time>(static_cast<double>(c) / ghz);
  }
  Cycles time_to_cycles(Time t) const {
    return static_cast<Cycles>(static_cast<double>(t) * ghz);
  }
  Cycles copy_cost(std::int64_t bytes) const {
    return static_cast<Cycles>(copy_per_byte * static_cast<double>(bytes));
  }
  Cycles checksum_cost(std::int64_t bytes) const {
    return static_cast<Cycles>(checksum_per_byte * static_cast<double>(bytes));
  }
};

}  // namespace newtos::sim
