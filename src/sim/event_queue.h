// Deterministic discrete-event queue.
//
// Events with equal timestamps fire in submission order, which keeps every
// simulation run bit-for-bit reproducible regardless of host scheduling.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/time.h"

namespace newtos::sim {

using EventFn = std::function<void()>;
using EventId = std::uint64_t;

class EventQueue {
 public:
  // Schedules `fn` at absolute time `t`.  Returns an id usable with cancel().
  EventId push(Time t, EventFn fn);

  // Cancels a pending event.  Returns false if it already fired or was
  // cancelled before.  O(1); the heap entry is dropped lazily.
  bool cancel(EventId id);

  // Fires the earliest pending event.  Returns false when empty.
  bool pop_and_run();

  bool empty() const { return pending_.empty(); }
  std::size_t size() const { return pending_.size(); }

  // Timestamp of the earliest live event; undefined when empty().
  Time next_time();

 private:
  struct Event {
    Time t;
    EventId id;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t > b.t || (a.t == b.t && a.id > b.id);
    }
  };

  void drop_cancelled();

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> pending_;
  EventId next_id_ = 1;
};

}  // namespace newtos::sim
