// A full-duplex point-to-point Ethernet link in virtual time.
//
// Serialization delay (bytes at line rate, plus the 20-byte preamble +
// inter-frame-gap and 4-byte FCS overhead of real Ethernet) plus a
// propagation delay.  Optionally lossy, for exercising TCP retransmission.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/sim.h"

namespace newtos::drv {

class Wire {
 public:
  struct Config {
    double bits_per_sec = 1e9;                       // gigabit by default
    sim::Time propagation = 20 * sim::kMicrosecond;  // short LAN
    double loss = 0.0;                               // frame loss probability
    std::uint64_t seed = 1;
  };

  using DeliverFn = std::function<void(std::vector<std::byte>&&)>;

  Wire(sim::Simulator& sim, Config cfg);

  // Endpoints are 0 and 1.  A detached endpoint silently discards frames.
  void attach(int end, DeliverFn deliver);
  void detach(int end);

  // Transmits from endpoint `end`; returns the virtual time at which the
  // last bit leaves the transmitter (the NIC's tx-complete instant).
  sim::Time transmit(int end, std::vector<std::byte>&& frame);

  std::uint64_t frames_delivered() const { return frames_delivered_; }
  std::uint64_t frames_lost() const { return frames_lost_; }
  std::uint64_t bytes_carried() const { return bytes_carried_; }
  double utilization(int end, sim::Time window) const;

 private:
  // Preamble (8) + FCS (4) + inter-frame gap (12).
  static constexpr std::uint32_t kPerFrameOverhead = 24;

  sim::Simulator& sim_;
  Config cfg_;
  sim::Rng rng_;
  DeliverFn deliver_[2];
  sim::Time tx_free_at_[2] = {0, 0};
  sim::Time busy_ns_[2] = {0, 0};
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t frames_lost_ = 0;
  std::uint64_t bytes_carried_ = 0;
};

}  // namespace newtos::drv
