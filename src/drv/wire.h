// A full-duplex point-to-point Ethernet link in virtual time.
//
// Serialization delay (bytes at line rate, plus the 20-byte preamble +
// inter-frame-gap and 4-byte FCS overhead of real Ethernet) plus a
// propagation delay.  Optionally lossy, for exercising TCP retransmission.
//
// For WAN experiments the link can also emulate:
//  - a bottleneck stage (bottleneck_bits_per_sec): the sender's NIC still
//    serializes (and gets its tx-complete) at line rate, but delivery
//    drains through a slower hop — the dumbbell's router — so a standing
//    queue can form where the sender cannot see it;
//  - a bounded bottleneck FIFO (queue_frames): frames arriving while that
//    many departures are still pending are tail-dropped, so drops correlate
//    with standing queue — what loss-based congestion control reacts to;
//  - random reordering (reorder/reorder_delay): a reordered frame is held
//    back by reorder_delay, letting later frames overtake it;
//  - post-queue loss (loss_post_queue): the loss draw applies only to
//    frames that found the link busy, instead of uniformly to every frame
//    (zero-payload ACKs included) as the legacy mode does.
// All of these default off; the default configuration consumes RNG draws
// in exactly the legacy order, keeping existing benchmarks byte-identical.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/sim.h"

namespace newtos::drv {

class Wire {
 public:
  struct Config {
    double bits_per_sec = 1e9;                       // gigabit by default
    sim::Time propagation = 20 * sim::kMicrosecond;  // short LAN
    double loss = 0.0;                               // frame loss probability
    std::uint64_t seed = 1;
    // --- WAN emulation (all off by default) ---
    double bottleneck_bits_per_sec = 0.0;  // slow hop rate; 0 = line rate
    std::uint32_t queue_frames = 0;  // bottleneck FIFO bound; 0 = unbounded
    double reorder = 0.0;            // per-frame reordering probability
    sim::Time reorder_delay = 50 * sim::kMicrosecond;  // hold-back on reorder
    bool loss_post_queue = false;    // loss only for frames that queued
  };

  using DeliverFn = std::function<void(std::vector<std::byte>&&)>;

  Wire(sim::Simulator& sim, Config cfg);

  // Endpoints are 0 and 1.  A detached endpoint silently discards frames.
  void attach(int end, DeliverFn deliver);
  void detach(int end);

  // Transmits from endpoint `end`; returns the virtual time at which the
  // last bit leaves the transmitter (the NIC's tx-complete instant).
  sim::Time transmit(int end, std::vector<std::byte>&& frame);

  std::uint64_t frames_delivered() const { return frames_delivered_; }
  std::uint64_t frames_lost() const { return frames_lost_; }
  std::uint64_t bytes_carried() const { return bytes_carried_; }
  double utilization(int end, sim::Time window) const;

  // --- WAN queue observability ---
  std::uint64_t queue_drops() const { return queue_drops_; }
  std::uint64_t reordered() const { return reordered_; }
  std::uint64_t max_queue_depth() const { return max_queue_depth_; }
  std::uint64_t sojourn_ns_total() const { return sojourn_ns_total_; }
  std::uint64_t sojourn_ns_max() const { return sojourn_ns_max_; }
  std::size_t queue_depth_now(int end) const;
  // Time-weighted mean number of pending frames on `end`, over [0, now].
  double avg_queue_depth(int end) const;

 private:
  // Preamble (8) + FCS (4) + inter-frame gap (12).
  static constexpr std::uint32_t kPerFrameOverhead = 24;

  // Advances the exact time-weighted depth integral for `end` up to `now`,
  // retiring departures that already happened.
  void drain(int end, sim::Time now);

  sim::Simulator& sim_;
  Config cfg_;
  sim::Rng rng_;
  DeliverFn deliver_[2];
  sim::Time tx_free_at_[2] = {0, 0};
  sim::Time btl_free_at_[2] = {0, 0};  // bottleneck stage, when emulated
  sim::Time busy_ns_[2] = {0, 0};
  std::uint64_t frames_delivered_ = 0;
  std::uint64_t frames_lost_ = 0;
  std::uint64_t bytes_carried_ = 0;

  // Pending departure times (ascending) per end: the emulated FIFO.
  std::deque<sim::Time> departures_[2];
  double depth_integral_[2] = {0.0, 0.0};
  sim::Time depth_last_t_[2] = {0, 0};
  std::uint64_t queue_drops_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t max_queue_depth_ = 0;
  std::uint64_t sojourn_ns_total_ = 0;
  std::uint64_t sojourn_ns_max_ = 0;
};

}  // namespace newtos::drv
