#include "src/drv/nic.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/net/checksum.h"
#include "src/net/headers.h"
#include "src/net/steering.h"

namespace newtos::drv {

SimNic::SimNic(sim::Simulator& sim, chan::PoolRegistry& pools,
               net::MacAddr mac, Config cfg)
    : sim_(sim), pools_(pools), mac_(mac), cfg_(cfg) {
  num_queues_ = std::max(1, cfg_.rx_queues);
  rx_rings_.resize(num_queues_);
  rx_accums_.resize(num_queues_);
  rx_timer_gens_.resize(num_queues_, 0);
  qstats_.resize(num_queues_);
}

// The hash unit's shallow parse: no checksum verification, no payload walk —
// just the fixed-offset fields a real RSS engine reads.  A frame whose IP
// total_length cannot cover the L4 ports (a fragment/truncation) is not
// steerable; neither is anything that is not IPv4 TCP/UDP.
SimNic::RssInfo SimNic::rss_classify(std::span<const std::byte> bytes) {
  RssInfo info;
  constexpr std::size_t kL4Off = net::kEthHeaderLen + net::kIpHeaderLen;
  if (bytes.size() < kL4Off + 4) return info;
  auto u8 = [&bytes](std::size_t i) {
    return std::to_integer<std::uint8_t>(bytes[i]);
  };
  const std::uint16_t ethertype =
      static_cast<std::uint16_t>((u8(12) << 8) | u8(13));
  if (ethertype != net::kEtherTypeIpv4) return info;
  if (u8(net::kEthHeaderLen) != 0x45) return info;  // version/IHL: no options
  const std::uint8_t proto = u8(net::kEthHeaderLen + 9);
  if (proto != net::kProtoTcp && proto != net::kProtoUdp) return info;
  const std::uint16_t total_length = static_cast<std::uint16_t>(
      (u8(net::kEthHeaderLen + 2) << 8) | u8(net::kEthHeaderLen + 3));
  if (total_length < net::kIpHeaderLen + 4) return info;  // ports truncated
  if (total_length > bytes.size() - net::kEthHeaderLen) return info;
  net::Ipv4Addr src;
  net::Ipv4Addr dst;
  src.value = (static_cast<std::uint32_t>(u8(net::kEthHeaderLen + 12)) << 24) |
              (static_cast<std::uint32_t>(u8(net::kEthHeaderLen + 13)) << 16) |
              (static_cast<std::uint32_t>(u8(net::kEthHeaderLen + 14)) << 8) |
              u8(net::kEthHeaderLen + 15);
  dst.value = (static_cast<std::uint32_t>(u8(net::kEthHeaderLen + 16)) << 24) |
              (static_cast<std::uint32_t>(u8(net::kEthHeaderLen + 17)) << 16) |
              (static_cast<std::uint32_t>(u8(net::kEthHeaderLen + 18)) << 8) |
              u8(net::kEthHeaderLen + 19);
  const std::uint16_t sport =
      static_cast<std::uint16_t>((u8(kL4Off) << 8) | u8(kL4Off + 1));
  const std::uint16_t dport =
      static_cast<std::uint16_t>((u8(kL4Off + 2) << 8) | u8(kL4Off + 3));
  info.steerable = true;
  info.proto = proto;
  info.hash = net::flow_hash(src, dst, sport, dport);
  return info;
}

void SimNic::attach_wire(Wire* wire, int end) {
  wire_ = wire;
  wire_end_ = end;
  wire_->attach(end, [this](std::vector<std::byte>&& bytes) {
    wire_deliver(std::move(bytes));
  });
}

bool SimNic::tx_post(net::TxFrame frame, std::uint64_t cookie) {
  if (static_cast<int>(tx_ring_.size()) >= cfg_.tx_ring) {
    ++stats_.tx_ring_full;
    return false;
  }
  ++stats_.tx_descs;
  tx_ring_.push_back(TxEntry{std::move(frame), cookie});
  if (!tx_pumping_) pump_tx();
  return true;
}

bool SimNic::rx_post(int queue, chan::RichPtr buffer) {
  if (queue < 0 || queue >= num_queues_) return false;
  auto& ring = rx_rings_[queue];
  if (static_cast<int>(ring.size()) >= cfg_.rx_ring) return false;
  ring.push_back(buffer);
  return true;
}

int SimNic::rx_ring_level() const {
  int n = 0;
  for (const auto& ring : rx_rings_) n += static_cast<int>(ring.size());
  return n;
}

int SimNic::rx_ring_level(int queue) const {
  if (queue < 0 || queue >= num_queues_) return 0;
  return static_cast<int>(rx_rings_[queue].size());
}

void SimNic::pump_tx() {
  if (tx_ring_.empty() || !link_up_ || wire_ == nullptr) {
    tx_pumping_ = false;
    return;
  }
  tx_pumping_ = true;
  const TxEntry& entry = tx_ring_.front();

  // Scatter-gather DMA: the device walks the chain and serializes.
  std::vector<std::byte> bytes =
      net::flatten(pools_, entry.frame.header, entry.frame.payload);

  sim::Time done_at = sim_.now();
  if (entry.frame.offload.tso && cfg_.hw_tso &&
      entry.frame.payload_len() > entry.frame.offload.mss) {
    for (auto& piece : tso_split(bytes, entry.frame.offload.mss)) {
      ++stats_.tx_frames;
      done_at = wire_->transmit(wire_end_, std::move(piece));
    }
  } else {
    ++stats_.tx_frames;
    done_at = wire_->transmit(wire_end_, std::move(bytes));
  }

  const std::uint64_t cookie = entry.cookie;
  const std::uint32_t epoch = reset_epoch_;
  sim_.at(done_at, [this, cookie, epoch] {
    if (epoch != reset_epoch_) return;  // reset while in flight
    assert(!tx_ring_.empty() && tx_ring_.front().cookie == cookie);
    tx_ring_.pop_front();
    if (on_tx_done_) on_tx_done_(cookie, true);
    pump_tx();
  });
}

// Splits a flattened ETH+IP+TCP superframe into MTU-sized frames, patching
// sequence numbers, IP ids/lengths and the IP header checksum — exactly the
// job a TSO engine does in hardware.
std::vector<std::vector<std::byte>> SimNic::tso_split(
    const std::vector<std::byte>& super, std::uint16_t mss) const {
  std::vector<std::vector<std::byte>> out;
  constexpr std::size_t kHdr =
      net::kEthHeaderLen + net::kIpHeaderLen + net::kTcpHeaderLen;
  if (super.size() <= kHdr) {
    out.emplace_back(super);
    return out;
  }
  const std::size_t payload_len = super.size() - kHdr;

  // Header template fields we patch per piece.
  std::uint32_t base_seq;
  std::memcpy(&base_seq, super.data() + net::kEthHeaderLen +
                             net::kIpHeaderLen + 4, 4);
  base_seq = __builtin_bswap32(base_seq);
  std::uint16_t base_id;
  std::memcpy(&base_id, super.data() + net::kEthHeaderLen + 4, 2);
  base_id = static_cast<std::uint16_t>(__builtin_bswap16(base_id));
  const std::uint8_t flags =
      std::to_integer<std::uint8_t>(
          super[net::kEthHeaderLen + net::kIpHeaderLen + 13]);

  std::size_t off = 0;
  std::uint16_t piece_idx = 0;
  while (off < payload_len) {
    const std::size_t n = std::min<std::size_t>(mss, payload_len - off);
    const bool last = off + n == payload_len;
    std::vector<std::byte> frame(kHdr + n);
    std::memcpy(frame.data(), super.data(), kHdr);
    std::memcpy(frame.data() + kHdr, super.data() + kHdr + off, n);

    // Patch IP: total_length, id, checksum.
    const std::uint16_t tot =
        static_cast<std::uint16_t>(net::kIpHeaderLen + net::kTcpHeaderLen + n);
    frame[net::kEthHeaderLen + 2] =
        std::byte{static_cast<std::uint8_t>(tot >> 8)};
    frame[net::kEthHeaderLen + 3] = std::byte{static_cast<std::uint8_t>(tot)};
    const std::uint16_t id = static_cast<std::uint16_t>(base_id + piece_idx);
    frame[net::kEthHeaderLen + 4] =
        std::byte{static_cast<std::uint8_t>(id >> 8)};
    frame[net::kEthHeaderLen + 5] = std::byte{static_cast<std::uint8_t>(id)};
    frame[net::kEthHeaderLen + 10] = std::byte{0};
    frame[net::kEthHeaderLen + 11] = std::byte{0};
    const std::uint16_t ipsum = net::checksum(std::span<const std::byte>(
        frame.data() + net::kEthHeaderLen, net::kIpHeaderLen));
    frame[net::kEthHeaderLen + 10] =
        std::byte{static_cast<std::uint8_t>(ipsum >> 8)};
    frame[net::kEthHeaderLen + 11] =
        std::byte{static_cast<std::uint8_t>(ipsum)};

    // Patch TCP: seq, and clear FIN/PSH on all but the last piece.
    const std::uint32_t seq =
        base_seq + static_cast<std::uint32_t>(off);
    const std::size_t tcp_at = net::kEthHeaderLen + net::kIpHeaderLen;
    frame[tcp_at + 4] = std::byte{static_cast<std::uint8_t>(seq >> 24)};
    frame[tcp_at + 5] = std::byte{static_cast<std::uint8_t>(seq >> 16)};
    frame[tcp_at + 6] = std::byte{static_cast<std::uint8_t>(seq >> 8)};
    frame[tcp_at + 7] = std::byte{static_cast<std::uint8_t>(seq)};
    const std::uint8_t piece_flags =
        last ? flags
             : static_cast<std::uint8_t>(
                   flags &
                   ~(net::tcpflag::kFin | net::tcpflag::kPsh));
    frame[tcp_at + 13] = std::byte{piece_flags};

    out.push_back(std::move(frame));
    off += n;
    ++piece_idx;
  }
  return out;
}

void SimNic::wire_deliver(std::vector<std::byte>&& bytes) {
  if (!link_up_) return;
  if (bytes.size() < net::kEthHeaderLen) return;
  // MAC filter: us or broadcast.
  net::MacAddr dst;
  for (int i = 0; i < 6; ++i)
    dst.bytes[i] = std::to_integer<std::uint8_t>(bytes[i]);
  if (dst != mac_ && !dst.is_broadcast()) return;

  // The PHY saw the frame; a wedged (misconfigured) device drops it *after*
  // the MAC counters advanced, which is exactly how the driver's watchdog
  // tells "wedged" from "quiet wire".
  ++stats_.rx_phy_frames;
  if (wedged_) return;

  // RSS: the hash unit picks the queue for steerable frames; everything
  // else (and the whole single-queue device) stays on queue 0.
  const RssInfo rss = rss_classify(bytes);
  const int queue =
      (num_queues_ > 1 && rss.steerable)
          ? static_cast<int>(rss.hash % static_cast<std::uint32_t>(num_queues_))
          : 0;
  auto& ring = rx_rings_[queue];
  if (ring.empty()) {
    ++stats_.rx_no_buffer;
    ++qstats_[queue].rx_no_buffer;
    return;
  }
  chan::RichPtr buf = ring.front();
  ring.pop_front();
  chan::Pool* pool = pools_.find(buf.pool);
  if (pool == nullptr || bytes.size() > buf.length ||
      !pool->dma_write(buf, bytes)) {
    ++stats_.rx_bad_addr;  // stale buffer (pool reset under us): drop
    return;
  }
  ++stats_.rx_frames;
  ++qstats_[queue].rx_frames;
  RxCompletion completion{buf, static_cast<std::uint32_t>(bytes.size()),
                          rss.hash, static_cast<std::uint16_t>(queue),
                          rss.steerable, rss.proto};
  if (coalescing() && on_rx_burst_) {
    // Interrupt coalescing: park the completed descriptor; the interrupt
    // fires when the burst threshold is met or the hold-off timer expires,
    // whichever is first.  Each queue accumulates and times out on its own.
    auto& accum = rx_accums_[queue];
    accum.push_back(completion);
    if (static_cast<int>(accum.size()) >= cfg_.rx_coalesce_frames) {
      flush_rx_burst(queue, false);
      return;
    }
    if (accum.size() == 1) {
      const std::uint64_t gen = ++rx_timer_gens_[queue];
      const std::uint32_t epoch = reset_epoch_;
      sim_.after(static_cast<sim::Time>(cfg_.rx_coalesce_usecs) *
                     sim::kMicrosecond,
                 [this, queue, gen, epoch] {
                   if (epoch != reset_epoch_ || gen != rx_timer_gens_[queue])
                     return;
                   flush_rx_burst(queue, true);
                 });
    }
    return;
  }
  if (on_rx_frame_) {
    on_rx_frame_(queue, completion);
    return;
  }
  if (on_rx_) on_rx_(buf, static_cast<std::uint32_t>(bytes.size()));
}

void SimNic::flush_rx_burst(int queue, bool timer_expired) {
  auto& accum = rx_accums_[queue];
  if (accum.empty()) return;
  ++rx_timer_gens_[queue];  // cancel the armed hold-off timer, if any
  ++stats_.rx_bursts;
  ++qstats_[queue].rx_bursts;
  if (timer_expired) {
    ++stats_.rx_timer_flushes;
    ++qstats_[queue].rx_timer_flushes;
  }
  std::vector<RxCompletion> burst;
  burst.swap(accum);
  if (on_rx_burst_) on_rx_burst_(queue, std::move(burst));
}

void SimNic::reset() {
  ++stats_.resets;
  ++reset_epoch_;
  tx_ring_.clear();  // shadow descriptors are gone; completions never fire
  for (auto& ring : rx_rings_) ring.clear();
  // Coalesced-but-unraised completions die with the rings: like the posted
  // RX buffers above, the chunks belong to IP's pool and are recovered when
  // IP reposts after the link comes back.
  for (auto& accum : rx_accums_) accum.clear();
  for (auto& gen : rx_timer_gens_) ++gen;
  tx_pumping_ = false;
  wedged_ = false;  // reconfiguration clears a misconfigured device
  if (link_up_) {
    link_up_ = false;
    if (on_link_) on_link_(false);
  }
  const std::uint32_t epoch = reset_epoch_;
  sim_.after(cfg_.reset_link_delay, [this, epoch] {
    if (epoch != reset_epoch_) return;
    link_up_ = true;
    if (on_link_) on_link_(true);
    pump_tx();
  });
}

}  // namespace newtos::drv
