#include "src/drv/wire.h"

#include <algorithm>
#include <utility>

namespace newtos::drv {

Wire::Wire(sim::Simulator& sim, Config cfg) : sim_(sim), cfg_(cfg), rng_(cfg.seed) {}

void Wire::attach(int end, DeliverFn deliver) {
  deliver_[end] = std::move(deliver);
}

void Wire::detach(int end) { deliver_[end] = nullptr; }

void Wire::drain(int end, sim::Time now) {
  auto& q = departures_[end];
  while (!q.empty() && q.front() <= now) {
    const sim::Time d = q.front();
    depth_integral_[end] += static_cast<double>(q.size()) *
                            static_cast<double>(d - depth_last_t_[end]);
    depth_last_t_[end] = d;
    q.pop_front();
  }
  depth_integral_[end] += static_cast<double>(q.size()) *
                          static_cast<double>(now - depth_last_t_[end]);
  depth_last_t_[end] = now;
}

sim::Time Wire::transmit(int end, std::vector<std::byte>&& frame) {
  const std::uint64_t wire_bytes = frame.size() + kPerFrameOverhead;
  const sim::Time ser = static_cast<sim::Time>(
      static_cast<double>(wire_bytes) * 8.0 * 1e9 / cfg_.bits_per_sec);
  const sim::Time now = sim_.now();
  drain(end, now);

  // The sender's NIC always serializes at line rate (its tx-complete and
  // the return value below do not know about the bottleneck hop).
  const sim::Time start = std::max(now, tx_free_at_[end]);
  bool queued = start > now;
  tx_free_at_[end] = start + ser;
  busy_ns_[end] += ser;
  bytes_carried_ += frame.size();

  // Bounded bottleneck FIFO: a full queue tail-drops the arrival — the
  // router discards it after the access link already carried it, so drops
  // coincide with a standing backlog the sender cannot observe directly.
  if (cfg_.queue_frames > 0 && departures_[end].size() >= cfg_.queue_frames) {
    ++queue_drops_;
    ++frames_lost_;
    return tx_free_at_[end];
  }

  // The slow hop: delivery drains at the bottleneck rate, behind whatever
  // is already queued there.
  sim::Time depart = tx_free_at_[end];
  if (cfg_.bottleneck_bits_per_sec > 0.0) {
    const sim::Time bser = static_cast<sim::Time>(
        static_cast<double>(wire_bytes) * 8.0 * 1e9 /
        cfg_.bottleneck_bits_per_sec);
    const sim::Time bstart = std::max(tx_free_at_[end], btl_free_at_[end]);
    queued = queued || bstart > tx_free_at_[end];
    btl_free_at_[end] = bstart + bser;
    depart = btl_free_at_[end];
  }

  departures_[end].push_back(depart);
  max_queue_depth_ = std::max<std::uint64_t>(max_queue_depth_,
                                             departures_[end].size());
  const std::uint64_t sojourn = static_cast<std::uint64_t>(depart - now);
  sojourn_ns_total_ += sojourn;
  sojourn_ns_max_ = std::max(sojourn_ns_max_, sojourn);

  const int other = 1 - end;
  // Loss draw.  Legacy mode: uniform across every frame (the RNG sequence
  // existing experiments depend on).  Post-queue mode: only frames that
  // found the link busy are candidates, so zero-payload ACKs on an idle
  // reverse path are spared and drops correlate with congestion.
  const bool loss_candidate = cfg_.loss_post_queue ? queued : true;
  if (cfg_.loss > 0.0 && loss_candidate && rng_.chance(cfg_.loss)) {
    ++frames_lost_;
    return tx_free_at_[end];
  }
  ++frames_delivered_;
  sim::Time extra = 0;
  if (cfg_.reorder > 0.0 && rng_.chance(cfg_.reorder)) {
    extra = cfg_.reorder_delay;
    ++reordered_;
  }
  sim_.at(depart + cfg_.propagation + extra,
          [this, other, f = std::move(frame)]() mutable {
            if (deliver_[other]) deliver_[other](std::move(f));
          });
  return tx_free_at_[end];
}

double Wire::utilization(int end, sim::Time window) const {
  if (window <= 0) return 0.0;
  return static_cast<double>(busy_ns_[end]) / static_cast<double>(window);
}

std::size_t Wire::queue_depth_now(int end) const {
  const sim::Time now = sim_.now();
  std::size_t n = 0;
  for (const sim::Time d : departures_[end])
    if (d > now) ++n;
  return n;
}

double Wire::avg_queue_depth(int end) const {
  const sim::Time now = sim_.now();
  if (now <= 0) return 0.0;
  // Fold in the departures that already happened but have not been drained
  // (drain() only runs on transmit) without mutating the live state.
  double integral = depth_integral_[end];
  sim::Time last = depth_last_t_[end];
  std::size_t depth = departures_[end].size();
  for (const sim::Time d : departures_[end]) {
    if (d > now) break;
    integral += static_cast<double>(depth) * static_cast<double>(d - last);
    last = d;
    --depth;
  }
  integral += static_cast<double>(depth) * static_cast<double>(now - last);
  return integral / static_cast<double>(now);
}

}  // namespace newtos::drv
