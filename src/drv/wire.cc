#include "src/drv/wire.h"

#include <algorithm>
#include <utility>

namespace newtos::drv {

Wire::Wire(sim::Simulator& sim, Config cfg) : sim_(sim), cfg_(cfg), rng_(cfg.seed) {}

void Wire::attach(int end, DeliverFn deliver) {
  deliver_[end] = std::move(deliver);
}

void Wire::detach(int end) { deliver_[end] = nullptr; }

sim::Time Wire::transmit(int end, std::vector<std::byte>&& frame) {
  const std::uint64_t wire_bytes = frame.size() + kPerFrameOverhead;
  const sim::Time ser = static_cast<sim::Time>(
      static_cast<double>(wire_bytes) * 8.0 * 1e9 / cfg_.bits_per_sec);
  const sim::Time start = std::max(sim_.now(), tx_free_at_[end]);
  tx_free_at_[end] = start + ser;
  busy_ns_[end] += ser;
  bytes_carried_ += frame.size();

  const int other = 1 - end;
  if (cfg_.loss > 0.0 && rng_.chance(cfg_.loss)) {
    ++frames_lost_;
    return tx_free_at_[end];
  }
  ++frames_delivered_;
  sim_.at(tx_free_at_[end] + cfg_.propagation,
          [this, other, f = std::move(frame)]() mutable {
            if (deliver_[other]) deliver_[other](std::move(f));
          });
  return tx_free_at_[end];
}

double Wire::utilization(int end, sim::Time window) const {
  if (window <= 0) return 0.0;
  return static_cast<double>(busy_ns_[end]) / static_cast<double>(window);
}

}  // namespace newtos::drv
