// Simulated gigabit NIC in the style of the Intel PRO/1000 (e1000) family
// the paper's testbed used: TX/RX descriptor rings, scatter-gather DMA from
// shared pools, checksum offload, TCP segmentation offload, and — crucially
// for Section V-D — no way to invalidate its shadow descriptors short of a
// full reset, which takes the link down for a while ("a crash of IP means
// de facto restart of the network drivers too").
//
// With rx_queues > 1 the device grows multiple RX queue pairs with
// receive-side scaling: a hardware hash unit computes the 4-tuple flow hash
// (identical to net/steering.h::flow_hash, so a queue maps 1:1 onto a
// transport shard) and spreads steerable TCP/UDP frames across the queues.
// Non-steerable traffic (ARP, ICMP, fragments, unknown protocols) always
// lands on queue 0.  rx_queues = 1 keeps the classic single-queue device
// byte-identical to what it always was.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/chan/pool.h"
#include "src/drv/wire.h"
#include "src/net/addr.h"
#include "src/net/pbuf.h"
#include "src/sim/sim.h"

namespace newtos::drv {

class SimNic {
 public:
  struct Config {
    int tx_ring = 256;
    int rx_ring = 256;
    std::uint32_t mtu = 1500;
    bool hw_tso = true;           // device can segment
    bool hw_csum = true;          // device can checksum
    // Receive interrupt coalescing (e1000 RDTR/RADV style): the device
    // accumulates completed RX descriptors and raises ONE interrupt per
    // burst, bounded by a frame count and an absolute timer.  Values <= 1
    // frames (the default) keep the classic one-interrupt-per-frame device.
    int rx_coalesce_frames = 0;
    std::uint32_t rx_coalesce_usecs = 50;
    // RSS queue pairs.  Each queue has its own descriptor ring, coalescing
    // accumulator and hold-off timer; 1 (the default) is the classic
    // single-queue device.
    int rx_queues = 1;
    sim::Time reset_link_delay = 1500 * sim::kMillisecond;
  };

  struct Stats {
    std::uint64_t tx_frames = 0;   // frames put on the wire (after TSO split)
    std::uint64_t tx_descs = 0;    // descriptors consumed
    std::uint64_t tx_ring_full = 0;
    std::uint64_t rx_frames = 0;
    // Frames that passed the MAC filter, counted BEFORE the wedge drop:
    // a wedged device keeps advancing rx_phy_frames while rx_frames stays
    // flat — the counter divergence the driver's wedge watchdog reads
    // (e1000 "hung adapter" heuristics read GPRC the same way).
    std::uint64_t rx_phy_frames = 0;
    std::uint64_t rx_no_buffer = 0;
    std::uint64_t rx_bad_addr = 0;
    std::uint64_t rx_bursts = 0;         // coalesced RX interrupts raised
    std::uint64_t rx_timer_flushes = 0;  // bursts flushed by RADV expiry
    std::uint64_t resets = 0;
  };

  // Per-RX-queue slice of the receive counters (Stats keeps the totals).
  struct QueueStats {
    std::uint64_t rx_frames = 0;
    std::uint64_t rx_bursts = 0;
    std::uint64_t rx_timer_flushes = 0;
    std::uint64_t rx_no_buffer = 0;
  };

  // What the RSS hash unit extracts from a frame on the wire.  A frame is
  // steerable when it is well-formed IPv4 TCP/UDP with enough bytes to read
  // the ports; everything else stays on queue 0 and the classic IP path.
  struct RssInfo {
    bool steerable = false;
    std::uint8_t proto = 0;   // kProtoTcp or kProtoUdp when steerable
    std::uint32_t hash = 0;   // net::flow_hash over the inbound 4-tuple
  };
  static RssInfo rss_classify(std::span<const std::byte> bytes);

  // One completed receive descriptor of a coalesced burst.
  struct RxCompletion {
    chan::RichPtr buffer;
    std::uint32_t len = 0;
    std::uint32_t rss_hash = 0;   // valid when steerable
    std::uint16_t queue = 0;
    bool steerable = false;
    std::uint8_t proto = 0;
  };

  SimNic(sim::Simulator& sim, chan::PoolRegistry& pools, net::MacAddr mac,
         Config cfg);

  void attach_wire(Wire* wire, int end);

  net::MacAddr mac() const { return mac_; }
  bool link_up() const { return link_up_; }

  // --- driver-facing register interface ------------------------------------------
  using TxDoneFn = std::function<void(std::uint64_t cookie, bool ok)>;
  using RxFn = std::function<void(chan::RichPtr buffer, std::uint32_t len)>;
  using RxFrameFn = std::function<void(int queue, const RxCompletion&)>;
  using RxBurstFn = std::function<void(int queue, std::vector<RxCompletion>&&)>;
  using LinkFn = std::function<void(bool up)>;
  void set_tx_done(TxDoneFn fn) { on_tx_done_ = std::move(fn); }
  void set_rx(RxFn fn) { on_rx_ = std::move(fn); }
  // Queue-aware per-frame interrupt handler; takes precedence over the
  // legacy set_rx() handler when installed (multi-queue drivers need the
  // queue index and the RSS metadata; the single-queue combined stack and
  // the classic driver keep the old signature).
  void set_rx_frame(RxFrameFn fn) { on_rx_frame_ = std::move(fn); }
  // Burst interrupt handler; used only when coalescing() is enabled (the
  // per-frame handler stays the fallback so the default device is
  // byte-identical to what it always was).
  void set_rx_burst(RxBurstFn fn) { on_rx_burst_ = std::move(fn); }
  void set_link_change(LinkFn fn) { on_link_ = std::move(fn); }

  bool coalescing() const { return cfg_.rx_coalesce_frames > 1; }
  int rx_queue_count() const { return num_queues_; }
  const Config& config() const { return cfg_; }
  // The attached link, for wire-level observability (queue drops, reorders).
  Wire* wire() const { return wire_; }
  int wire_end() const { return wire_end_; }

  // Posts a frame descriptor; false when the TX ring is full.
  bool tx_post(net::TxFrame frame, std::uint64_t cookie);
  // Hands the device a receive buffer; false when the RX ring is full.
  // The single-argument form feeds queue 0 (the classic device).
  bool rx_post(chan::RichPtr buffer) { return rx_post(0, buffer); }
  bool rx_post(int queue, chan::RichPtr buffer);

  int tx_ring_free() const {
    return cfg_.tx_ring - static_cast<int>(tx_ring_.size());
  }
  int rx_ring_level() const;            // all queues
  int rx_ring_level(int queue) const;

  // Full device reset: rings are dropped (shadow descriptors cannot be
  // invalidated selectively), pending TX completions are lost, and the link
  // renegotiates for reset_link_delay.
  void reset();

  // Fault injection: a misconfigured device silently drops received frames
  // until the next reset ("faults misconfigured the network cards since the
  // problem disappeared after we manually restarted the driver").
  void set_wedged(bool v) { wedged_ = v; }
  bool wedged() const { return wedged_; }

  const Stats& stats() const { return stats_; }
  const QueueStats& queue_stats(int queue) const { return qstats_[queue]; }

 private:
  struct TxEntry {
    net::TxFrame frame;
    std::uint64_t cookie;
  };

  void pump_tx();
  void emit(std::vector<std::byte>&& bytes);
  void wire_deliver(std::vector<std::byte>&& bytes);
  void flush_rx_burst(int queue, bool timer_expired);
  std::vector<std::vector<std::byte>> tso_split(
      const std::vector<std::byte>& super, std::uint16_t mss) const;

  sim::Simulator& sim_;
  chan::PoolRegistry& pools_;
  net::MacAddr mac_;
  Config cfg_;
  int num_queues_ = 1;
  Wire* wire_ = nullptr;
  int wire_end_ = 0;
  bool link_up_ = true;
  bool wedged_ = false;
  std::uint32_t reset_epoch_ = 0;

  std::deque<TxEntry> tx_ring_;
  std::vector<std::deque<chan::RichPtr>> rx_rings_;  // one per queue
  bool tx_pumping_ = false;

  // Completed RX descriptors waiting for the coalesced interrupt, per queue.
  std::vector<std::vector<RxCompletion>> rx_accums_;
  std::vector<std::uint64_t> rx_timer_gens_;  // invalidate armed RADV timers

  TxDoneFn on_tx_done_;
  RxFn on_rx_;
  RxFrameFn on_rx_frame_;
  RxBurstFn on_rx_burst_;
  LinkFn on_link_;
  Stats stats_;
  std::vector<QueueStats> qstats_;
};

}  // namespace newtos::drv
