// Simulated gigabit NIC in the style of the Intel PRO/1000 (e1000) family
// the paper's testbed used: TX/RX descriptor rings, scatter-gather DMA from
// shared pools, checksum offload, TCP segmentation offload, and — crucially
// for Section V-D — no way to invalidate its shadow descriptors short of a
// full reset, which takes the link down for a while ("a crash of IP means
// de facto restart of the network drivers too").
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "src/chan/pool.h"
#include "src/drv/wire.h"
#include "src/net/addr.h"
#include "src/net/pbuf.h"
#include "src/sim/sim.h"

namespace newtos::drv {

class SimNic {
 public:
  struct Config {
    int tx_ring = 256;
    int rx_ring = 256;
    std::uint32_t mtu = 1500;
    bool hw_tso = true;           // device can segment
    bool hw_csum = true;          // device can checksum
    // Receive interrupt coalescing (e1000 RDTR/RADV style): the device
    // accumulates completed RX descriptors and raises ONE interrupt per
    // burst, bounded by a frame count and an absolute timer.  Values <= 1
    // frames (the default) keep the classic one-interrupt-per-frame device.
    int rx_coalesce_frames = 0;
    std::uint32_t rx_coalesce_usecs = 50;
    sim::Time reset_link_delay = 1500 * sim::kMillisecond;
  };

  struct Stats {
    std::uint64_t tx_frames = 0;   // frames put on the wire (after TSO split)
    std::uint64_t tx_descs = 0;    // descriptors consumed
    std::uint64_t tx_ring_full = 0;
    std::uint64_t rx_frames = 0;
    std::uint64_t rx_no_buffer = 0;
    std::uint64_t rx_bad_addr = 0;
    std::uint64_t rx_bursts = 0;         // coalesced RX interrupts raised
    std::uint64_t rx_timer_flushes = 0;  // bursts flushed by RADV expiry
    std::uint64_t resets = 0;
  };

  // One completed receive descriptor of a coalesced burst.
  struct RxCompletion {
    chan::RichPtr buffer;
    std::uint32_t len = 0;
  };

  SimNic(sim::Simulator& sim, chan::PoolRegistry& pools, net::MacAddr mac,
         Config cfg);

  void attach_wire(Wire* wire, int end);

  net::MacAddr mac() const { return mac_; }
  bool link_up() const { return link_up_; }

  // --- driver-facing register interface ------------------------------------------
  using TxDoneFn = std::function<void(std::uint64_t cookie, bool ok)>;
  using RxFn = std::function<void(chan::RichPtr buffer, std::uint32_t len)>;
  using RxBurstFn = std::function<void(std::vector<RxCompletion>&&)>;
  using LinkFn = std::function<void(bool up)>;
  void set_tx_done(TxDoneFn fn) { on_tx_done_ = std::move(fn); }
  void set_rx(RxFn fn) { on_rx_ = std::move(fn); }
  // Burst interrupt handler; used only when coalescing() is enabled (the
  // per-frame handler stays the fallback so the default device is
  // byte-identical to what it always was).
  void set_rx_burst(RxBurstFn fn) { on_rx_burst_ = std::move(fn); }
  void set_link_change(LinkFn fn) { on_link_ = std::move(fn); }

  bool coalescing() const { return cfg_.rx_coalesce_frames > 1; }
  const Config& config() const { return cfg_; }

  // Posts a frame descriptor; false when the TX ring is full.
  bool tx_post(net::TxFrame frame, std::uint64_t cookie);
  // Hands the device a receive buffer; false when the RX ring is full.
  bool rx_post(chan::RichPtr buffer);

  int tx_ring_free() const {
    return cfg_.tx_ring - static_cast<int>(tx_ring_.size());
  }
  int rx_ring_level() const { return static_cast<int>(rx_ring_.size()); }

  // Full device reset: rings are dropped (shadow descriptors cannot be
  // invalidated selectively), pending TX completions are lost, and the link
  // renegotiates for reset_link_delay.
  void reset();

  // Fault injection: a misconfigured device silently drops received frames
  // until the next reset ("faults misconfigured the network cards since the
  // problem disappeared after we manually restarted the driver").
  void set_wedged(bool v) { wedged_ = v; }
  bool wedged() const { return wedged_; }

  const Stats& stats() const { return stats_; }

 private:
  struct TxEntry {
    net::TxFrame frame;
    std::uint64_t cookie;
  };

  void pump_tx();
  void emit(std::vector<std::byte>&& bytes);
  void wire_deliver(std::vector<std::byte>&& bytes);
  void flush_rx_burst(bool timer_expired);
  std::vector<std::vector<std::byte>> tso_split(
      const std::vector<std::byte>& super, std::uint16_t mss) const;

  sim::Simulator& sim_;
  chan::PoolRegistry& pools_;
  net::MacAddr mac_;
  Config cfg_;
  Wire* wire_ = nullptr;
  int wire_end_ = 0;
  bool link_up_ = true;
  bool wedged_ = false;
  std::uint32_t reset_epoch_ = 0;

  std::deque<TxEntry> tx_ring_;
  std::deque<chan::RichPtr> rx_ring_;
  bool tx_pumping_ = false;

  // Completed RX descriptors waiting for the coalesced interrupt.
  std::vector<RxCompletion> rx_accum_;
  std::uint64_t rx_timer_gen_ = 0;  // invalidates the armed RADV timer

  TxDoneFn on_tx_done_;
  RxFn on_rx_;
  RxBurstFn on_rx_burst_;
  LinkFn on_link_;
  Stats stats_;
};

}  // namespace newtos::drv
