#include "src/kipc/kipc.h"

// Header-only today; this translation unit pins the module into the library
// and reserves a home for future out-of-line kernel-IPC machinery.
