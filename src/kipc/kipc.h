// Kernel IPC cost model (the baseline the channels replace).
//
// The original MINIX 3 moves every message through the kernel: a trap, a
// copy, and usually a context switch (single core) or an interprocessor
// interrupt (the destination core must be woken).  NewtOS keeps kernel IPC
// only on the slow path: interrupt delivery to drivers and the synchronous
// POSIX edge between applications and the SYSCALL server (Section V-B).
//
// This module prices those operations using the cost model; the simulator
// charges them wherever a configuration routes messages through the kernel.
#pragma once

#include <cstdint>

#include "src/sim/cost_model.h"

namespace newtos::kipc {

class KernelIpc {
 public:
  explicit KernelIpc(const sim::CostModel* costs) : costs_(costs) {}

  // Synchronous send+receive rendezvous on ONE core: the sender traps, the
  // kernel copies the message and switches to the receiver.  `cold` models a
  // cache-cold trap (3000 cycles in the paper vs 150 hot).
  sim::Cycles sync_send_same_core(std::size_t msg_bytes, bool cold = false) const {
    return trap(cold) + copy(msg_bytes) + costs_->context_switch;
  }

  // Synchronous send to a process on ANOTHER core.  No context switch hides
  // the cost any more (Section III-A): the kernel copies the message and, if
  // the destination core sleeps, posts an IPI.
  sim::Cycles sync_send_cross_core(std::size_t msg_bytes, bool dest_idle,
                                   bool cold = false) const {
    return trap(cold) + copy(msg_bytes) + (dest_idle ? costs_->ipi : 0);
  }

  // Receiver-side cost of picking up a kernel message.
  sim::Cycles receive(std::size_t msg_bytes) const {
    return trap(false) + copy(msg_bytes);
  }

  // Kernel notify (no payload), e.g. converting an interrupt to a message.
  sim::Cycles notify(bool dest_idle) const {
    return trap(false) + (dest_idle ? costs_->ipi : 0);
  }

  // The kernel-assisted MWAIT of Section IV-B: entering costs a trap;
  // resuming the user context costs mwait_wakeup.
  sim::Cycles mwait_enter() const { return trap(false); }
  sim::Cycles mwait_resume() const { return costs_->mwait_wakeup; }

  sim::Cycles trap(bool cold) const {
    return cold ? costs_->trap_cold : costs_->trap_hot;
  }
  sim::Cycles copy(std::size_t bytes) const {
    return costs_->copy_cost(static_cast<std::int64_t>(bytes));
  }

 private:
  const sim::CostModel* costs_;
};

}  // namespace newtos::kipc
