// PF-style stateful packet filter (modelled on the NetBSD PF the paper
// isolates into its own server, Section V).
//
// The filter sits in a T junction off IP: IP consults it for every packet,
// both pre-routing (inbound) and post-routing (outbound), and only proceeds
// once a verdict arrives.  Rules are evaluated first-match-wins ("quick"
// semantics).  `keep_state` rules insert a connection entry; packets
// matching an established entry pass without walking the rules — this is
// the dynamic state that must be rebuilt after a crash by querying the TCP
// and UDP servers (Section V-D).
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/addr.h"
#include "src/net/env.h"

namespace newtos::net {

enum class PfAction : std::uint8_t { Pass, Block };
enum class PfDir : std::uint8_t { In, Out };

struct PortRange {
  std::uint16_t lo = 0;
  std::uint16_t hi = 65535;
  bool contains(std::uint16_t p) const { return p >= lo && p <= hi; }
  friend bool operator==(const PortRange&, const PortRange&) = default;
};

struct PfRule {
  PfAction action = PfAction::Pass;
  std::optional<PfDir> dir;              // nullopt: both directions
  std::optional<std::uint8_t> protocol;  // nullopt: any
  std::optional<Ipv4Net> src;
  std::optional<Ipv4Net> dst;
  std::optional<PortRange> sport;
  std::optional<PortRange> dport;
  bool keep_state = false;

  friend bool operator==(const PfRule&, const PfRule&) = default;
};

// The fields IP hands over for a verdict (headers only; PF never needs the
// payload for these rules, so the zero-copy chain stays untouched).
struct PfQuery {
  PfDir dir = PfDir::Out;
  std::uint8_t protocol = 0;
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint8_t tcp_flags = 0;
};

// A connection-table key, also the unit of state recovery.
struct PfStateKey {
  std::uint8_t protocol = 0;
  Ipv4Addr src;  // initiator
  Ipv4Addr dst;
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;

  friend bool operator==(const PfStateKey&, const PfStateKey&) = default;
};

class PfEngine {
 public:
  struct Config {
    sim::Time state_ttl = 120 * sim::kSecond;
    PfAction default_action = PfAction::Pass;
  };

  explicit PfEngine(Clock* clock);
  PfEngine(Clock* clock, Config cfg);

  void set_rules(std::vector<PfRule> rules) { rules_ = std::move(rules); }
  const std::vector<PfRule>& rules() const { return rules_; }

  struct Verdict {
    PfAction action = PfAction::Pass;
    int rules_walked = 0;   // for cycle accounting by the hosting server
    bool state_hit = false;
  };
  Verdict check(const PfQuery& q);

  // --- connection state ------------------------------------------------------
  std::size_t state_count() const { return states_.size(); }
  void flush_states() { states_.clear(); }
  // Recovery: reinstall entries reported by the TCP/UDP servers.
  void restore_states(const std::vector<PfStateKey>& keys);
  std::vector<PfStateKey> snapshot_states() const;

  // --- rule (de)serialization for the storage server --------------------------
  static std::vector<std::byte> serialize_rules(const std::vector<PfRule>&);
  static std::optional<std::vector<PfRule>> parse_rules(
      std::span<const std::byte>);

  std::uint64_t checks() const { return checks_; }
  std::uint64_t blocks() const { return blocks_; }

 private:
  struct KeyHash {
    std::size_t operator()(const PfStateKey& k) const;
  };

  bool rule_matches(const PfRule& r, const PfQuery& q) const;
  static PfStateKey forward_key(const PfQuery& q);
  static PfStateKey reverse_key(const PfQuery& q);

  Clock* clock_;
  Config cfg_;
  std::vector<PfRule> rules_;
  std::unordered_map<PfStateKey, sim::Time, KeyHash> states_;  // -> expiry
  std::uint64_t checks_ = 0;
  std::uint64_t blocks_ = 0;
};

}  // namespace newtos::net
