// Receive-side aggregation (GRO) classification, shared between the central
// IP engine's input_burst and the per-shard RX fast path.
//
// The per-frame facts GRO needs to decide mergeability, parsed once per
// frame of a burst; ineligible frames re-parse on the classic input() path
// (they are the rare case by construction of the burst).
#pragma once

#include <cstdint>
#include <span>

#include "src/net/addr.h"
#include "src/net/headers.h"

namespace newtos::net {

struct GroInfo {
  bool eligible = false;        // in-order-mergeable TCP data segment
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint16_t sport = 0;
  std::uint16_t dport = 0;
  std::uint32_t seq = 0;
  std::uint8_t flags = 0;
  std::uint16_t l4_offset = 0;
  std::uint16_t l4_length = 0;
  std::uint16_t payload_len = 0;
};

inline GroInfo gro_classify(std::span<const std::byte> bytes,
                            Ipv4Addr our_addr) {
  GroInfo info;
  if (bytes.size() < kEthHeaderLen + kIpHeaderLen) return info;
  ByteReader r{bytes};
  auto eth = EthHeader::parse(r);
  if (!eth || eth->ethertype != kEtherTypeIpv4) return info;
  auto ip = Ipv4Header::parse(r);
  if (!ip || ip->protocol != kProtoTcp || ip->dst != our_addr) return info;
  if (ip->total_length > bytes.size() - kEthHeaderLen) return info;
  const std::uint16_t l4_offset =
      static_cast<std::uint16_t>(kEthHeaderLen + kIpHeaderLen);
  const std::uint16_t l4_length =
      static_cast<std::uint16_t>(ip->total_length - kIpHeaderLen);
  if (l4_length < kTcpHeaderLen ||
      bytes.size() < static_cast<std::size_t>(l4_offset) + kTcpHeaderLen) {
    return info;
  }
  ByteReader tr{bytes.subspan(l4_offset, kTcpHeaderLen)};
  auto h = TcpHeader::parse(tr);
  if (!h) return info;
  const std::uint16_t payload =
      static_cast<std::uint16_t>(l4_length - kTcpHeaderLen);
  // Only plain in-stream data merges: SYN/FIN/RST (and anything else
  // exotic) must be seen by TCP one segment at a time, and a pure ACK
  // carries sender-clocking information per frame.
  if (payload == 0 ||
      (h->flags & ~(tcpflag::kAck | tcpflag::kPsh)) != 0 ||
      !h->has(tcpflag::kAck)) {
    return info;
  }
  info.eligible = true;
  info.src = ip->src;
  info.dst = ip->dst;
  info.sport = h->src_port;
  info.dport = h->dst_port;
  info.seq = h->seq;
  info.flags = h->flags;
  info.l4_offset = l4_offset;
  info.l4_length = l4_length;
  info.payload_len = payload;
  return info;
}

}  // namespace newtos::net
