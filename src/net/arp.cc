#include "src/net/arp.h"

#include <utility>

namespace newtos::net {

ArpEngine::ArpEngine(Env env) : ArpEngine(std::move(env), Config{}) {}

ArpEngine::ArpEngine(Env env, Config cfg)
    : env_(std::move(env)), cfg_(cfg) {}

std::optional<MacAddr> ArpEngine::lookup(int ifindex, Ipv4Addr ip,
                                         Ipv4Addr local_ip,
                                         MacAddr local_mac) {
  auto it = cache_.find(ip);
  if (it != cache_.end() && it->second.expires > env_.clock->now())
    return it->second.mac;

  auto [pit, inserted] = probes_.try_emplace(ip);
  Probe& probe = pit->second;
  if (inserted) {
    probe.ifindex = ifindex;
    probe.local_ip = local_ip;
    probe.local_mac = local_mac;
    send_request(ip, probe);
  }
  return std::nullopt;
}

void ArpEngine::send_request(Ipv4Addr target, Probe& probe) {
  ++probe.attempts;
  ArpPacket req;
  req.op = kArpOpRequest;
  req.sender_mac = probe.local_mac;
  req.sender_ip = probe.local_ip;
  req.target_mac = MacAddr{};  // unknown
  req.target_ip = target;
  env_.send_arp(probe.ifindex, req);
  probe.timer = env_.timers->schedule(cfg_.retry_interval,
                                      [this, target] { retry(target); });
}

void ArpEngine::retry(Ipv4Addr target) {
  auto it = probes_.find(target);
  if (it == probes_.end()) return;
  if (it->second.attempts >= cfg_.max_retries) {
    probes_.erase(it);  // give up; pending packets at IP level time out
    return;
  }
  send_request(target, it->second);
}

void ArpEngine::input(int ifindex, const ArpPacket& pkt, Ipv4Addr local_ip,
                      MacAddr local_mac) {
  // Learn the sender mapping (both requests and replies carry one).
  if (!pkt.sender_ip.is_zero()) {
    cache_[pkt.sender_ip] =
        Entry{pkt.sender_mac, env_.clock->now() + cfg_.entry_ttl};
    auto pit = probes_.find(pkt.sender_ip);
    if (pit != probes_.end()) {
      env_.timers->cancel(pit->second.timer);
      const int probe_if = pit->second.ifindex;
      probes_.erase(pit);
      if (env_.resolved) env_.resolved(probe_if, pkt.sender_ip, pkt.sender_mac);
    }
  }
  if (pkt.op == kArpOpRequest && pkt.target_ip == local_ip) {
    ArpPacket reply;
    reply.op = kArpOpReply;
    reply.sender_mac = local_mac;
    reply.sender_ip = local_ip;
    reply.target_mac = pkt.sender_mac;
    reply.target_ip = pkt.sender_ip;
    env_.send_arp(ifindex, reply);
  }
}

}  // namespace newtos::net
