// 4-tuple flow steering for the sharded transport plane.
//
// The paper's scalability argument is that a component can be replicated
// across further cores.  We replicate the TCP and UDP servers N ways; the
// IP server picks the replica for every inbound frame by hashing the
// connection 4-tuple, so one flow always lands on the same replica and
// never needs cross-replica locking.  Socket ids encode their home replica
// in the top bits, which is how the SYSCALL server routes control ops and
// how the socket layer finds the engine owning a connection.
//
// Active connects keep steering consistent without a flow table: the TCP
// engine picks ephemeral ports such that the *inbound* tuple of the new
// connection hashes back to its own shard (the hash partitions the
// ephemeral port space among replicas, which also keeps two replicas from
// ever minting the same 4-tuple).
#pragma once

#include <cstdint>

#include "src/net/addr.h"

namespace newtos::net {

// Socket ids are partitioned per replica: shard k allocates ids in
// (k << kSockShardShift, (k + 1) << kSockShardShift).
inline constexpr std::uint32_t kSockShardShift = 24;
inline constexpr std::uint32_t kSockShardSpan = 1u << kSockShardShift;
inline constexpr int kMaxTransportShards = 8;

inline int sock_shard(std::uint32_t sock) {
  return static_cast<int>(sock >> kSockShardShift);
}
inline std::uint32_t sock_shard_base(int shard) {
  return static_cast<std::uint32_t>(shard) << kSockShardShift;
}

// Deterministic 4-tuple hash, inbound orientation: src/sport belong to the
// remote end, dst/dport to this host.
inline std::uint32_t flow_hash(Ipv4Addr src, Ipv4Addr dst,
                               std::uint16_t sport, std::uint16_t dport) {
  std::uint64_t h = (static_cast<std::uint64_t>(src.value) << 32) | dst.value;
  h ^= (static_cast<std::uint64_t>(sport) << 16) | dport;
  h *= 0x9e3779b97f4a7c15ull;
  h ^= h >> 32;
  h *= 0xd6e8feb86659fd93ull;
  h ^= h >> 32;
  return static_cast<std::uint32_t>(h);
}

// The replica an inbound frame with this 4-tuple is steered to.
inline int steer_shard(Ipv4Addr src, Ipv4Addr dst, std::uint16_t sport,
                       std::uint16_t dport, int shards) {
  if (shards <= 1) return 0;
  return static_cast<int>(flow_hash(src, dst, sport, dport) %
                          static_cast<std::uint32_t>(shards));
}

}  // namespace newtos::net
