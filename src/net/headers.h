// Wire formats: Ethernet, ARP, IPv4, ICMP, UDP and TCP headers.
//
// Serialization is explicit byte-by-byte big-endian — no packed structs, no
// casts, no host-endianness assumptions.  Parsers return false on truncated
// or malformed input instead of reading out of bounds (the "ping of death"
// class of bugs the paper cites is an input-validation failure; our parsers
// are the guard).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>

#include "src/net/addr.h"

namespace newtos::net {

// --- Byte-order-safe reader/writer ------------------------------------------

class ByteWriter {
 public:
  explicit ByteWriter(std::span<std::byte> buf) : buf_(buf) {}

  bool ok() const { return ok_; }
  std::size_t written() const { return pos_; }

  void u8(std::uint8_t v);
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void mac(const MacAddr& m);
  void ip(Ipv4Addr a);
  void raw(std::span<const std::byte> data);

 private:
  std::span<std::byte> buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::byte> buf) : buf_(buf) {}

  bool ok() const { return ok_; }
  std::size_t consumed() const { return pos_; }
  std::size_t remaining() const { return ok_ ? buf_.size() - pos_ : 0; }

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  MacAddr mac();
  Ipv4Addr ip();
  void skip(std::size_t n);

 private:
  std::span<const std::byte> buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- Ethernet ----------------------------------------------------------------

inline constexpr std::size_t kEthHeaderLen = 14;
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;

struct EthHeader {
  MacAddr dst;
  MacAddr src;
  std::uint16_t ethertype = 0;

  void serialize(ByteWriter& w) const;
  static std::optional<EthHeader> parse(ByteReader& r);
};

// --- ARP ----------------------------------------------------------------------

inline constexpr std::size_t kArpPacketLen = 28;
inline constexpr std::uint16_t kArpOpRequest = 1;
inline constexpr std::uint16_t kArpOpReply = 2;

struct ArpPacket {
  std::uint16_t op = 0;
  MacAddr sender_mac;
  Ipv4Addr sender_ip;
  MacAddr target_mac;
  Ipv4Addr target_ip;

  void serialize(ByteWriter& w) const;
  static std::optional<ArpPacket> parse(ByteReader& r);
};

// --- IPv4 ----------------------------------------------------------------------

inline constexpr std::size_t kIpHeaderLen = 20;  // no options
inline constexpr std::uint8_t kProtoIcmp = 1;
inline constexpr std::uint8_t kProtoTcp = 6;
inline constexpr std::uint8_t kProtoUdp = 17;

struct Ipv4Header {
  std::uint16_t total_length = 0;  // header + payload
  std::uint16_t id = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t checksum = 0;  // filled by serialize() when compute_checksum
  Ipv4Addr src;
  Ipv4Addr dst;

  // Serializes; computes the header checksum unless it is being offloaded.
  void serialize(ByteWriter& w, bool compute_checksum = true) const;
  // Parses and (optionally) verifies the header checksum.
  static std::optional<Ipv4Header> parse(ByteReader& r, bool verify = true);
};

// --- ICMP ----------------------------------------------------------------------

inline constexpr std::size_t kIcmpHeaderLen = 8;
inline constexpr std::uint8_t kIcmpEchoReply = 0;
inline constexpr std::uint8_t kIcmpEchoRequest = 8;

struct IcmpHeader {
  std::uint8_t type = 0;
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;
  std::uint16_t id = 0;
  std::uint16_t seq = 0;

  void serialize(ByteWriter& w) const;  // checksum field written as-is
  static std::optional<IcmpHeader> parse(ByteReader& r);
};

// --- UDP -----------------------------------------------------------------------

inline constexpr std::size_t kUdpHeaderLen = 8;

struct UdpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;  // header + payload
  std::uint16_t checksum = 0;

  void serialize(ByteWriter& w) const;
  static std::optional<UdpHeader> parse(ByteReader& r);
};

// --- TCP -----------------------------------------------------------------------

inline constexpr std::size_t kTcpHeaderLen = 20;  // no options

namespace tcpflag {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
}  // namespace tcpflag

struct TcpHeader {
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;

  bool has(std::uint8_t f) const { return (flags & f) != 0; }

  void serialize(ByteWriter& w) const;  // checksum field written as-is
  static std::optional<TcpHeader> parse(ByteReader& r);
};

}  // namespace newtos::net
