// ARP: next-hop resolution with a cache and a pending-packet queue.
//
// Lives inside the IP component ("Our IP also contains ICMP and ARP",
// Section V).  ARP is stateless for recovery purposes: after an IP crash the
// cache simply refills.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "src/net/addr.h"
#include "src/net/env.h"
#include "src/net/headers.h"

namespace newtos::net {

class ArpEngine {
 public:
  struct Env {
    Clock* clock = nullptr;
    TimerService* timers = nullptr;
    // Emit a raw ARP frame (already Ethernet-framed by the caller's pool
    // management; the engine supplies payload and addressing).
    std::function<void(int ifindex, const ArpPacket&)> send_arp;
    // Called when `ip` resolves; the IP engine flushes its pending packets.
    std::function<void(int ifindex, Ipv4Addr ip, MacAddr mac)> resolved;
  };

  struct Config {
    sim::Time entry_ttl = 60 * sim::kSecond;
    sim::Time retry_interval = 500 * sim::kMillisecond;
    int max_retries = 3;
  };

  explicit ArpEngine(Env env);
  ArpEngine(Env env, Config cfg);

  // Returns the MAC for `ip` if cached; otherwise begins resolution (ARP
  // request broadcast) and returns nullopt.  `local_*` identify the asking
  // interface.
  std::optional<MacAddr> lookup(int ifindex, Ipv4Addr ip, Ipv4Addr local_ip,
                                MacAddr local_mac);

  // Handles an incoming ARP packet.  Replies to requests for `local_ip` via
  // send_arp and learns sender mappings.
  void input(int ifindex, const ArpPacket& pkt, Ipv4Addr local_ip,
             MacAddr local_mac);

  std::size_t cache_size() const { return cache_.size(); }

 private:
  struct Entry {
    MacAddr mac;
    sim::Time expires = 0;
  };
  struct Probe {
    int ifindex;
    Ipv4Addr local_ip;
    MacAddr local_mac;
    int attempts = 0;
    TimerService::TimerId timer = 0;
  };

  void send_request(Ipv4Addr target, Probe& probe);
  void retry(Ipv4Addr target);

  Env env_;
  Config cfg_;
  std::unordered_map<Ipv4Addr, Entry> cache_;
  std::unordered_map<Ipv4Addr, Probe> probes_;
};

}  // namespace newtos::net
