// TCP: sockets, the full connection state machine, reliable transport and
// Reno congestion control, with TSO-aware segmentation.
//
// Design notes tied to the paper:
//  - The engine is single-threaded and event-driven, hosted by the TCP
//    server (split stack) or a combined stack component (Section III-B).
//  - Send data lives in engine-owned pool chunks; segments reference them
//    as sub-range rich pointers, so retransmission never copies and a
//    component crash downstream never loses the original bytes
//    (Section V-C).  Headers are freed when IP reports the segment done;
//    payload is freed when ACKed.
//  - With TSO enabled, the engine emits superframes up to ~61 KB and the
//    NIC cuts them into MSS-sized frames, collapsing the number of
//    stack-internal hand-offs per byte — the key to Table II lines 5/6.
//  - Recovery (Table I): established connections have "large, frequently
//    changing state" and are NOT recoverable; listening sockets are, via
//    listeners()/restore_listener().  connection_keys() feeds the packet
//    filter's state rebuild after a PF crash.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/chan/pool.h"
#include "src/net/cc/congestion.h"
#include "src/net/env.h"
#include "src/net/ip.h"
#include "src/net/pf.h"
#include "src/net/steering.h"
#include "src/net/udp.h"  // SockId

namespace newtos::net {

enum class TcpState : std::uint8_t {
  Closed,
  Listen,
  SynSent,
  SynRcvd,
  Established,
  FinWait1,
  FinWait2,
  CloseWait,
  Closing,
  LastAck,
  TimeWait,
};

const char* to_string(TcpState s);

enum class TcpEvent : std::uint8_t {
  Connected,    // active open completed
  AcceptReady,  // a child connection is waiting in the accept queue
  Readable,     // receive queue went non-empty
  Writable,     // send space became available again
  PeerClosed,   // FIN received (read side drained)
  Reset,        // connection reset / failed
  Closed,       // fully closed
};

struct TcpOptions {
  std::uint16_t mss = 1460;
  bool tso = false;
  // Max payload of one TSO superframe; must keep total_length <= 65535.
  std::uint32_t tso_max_payload = 42 * 1460;  // 61320
  // Window scale applied by both ends of the simulation (negotiation is not
  // modelled on the wire; see DESIGN.md fidelity notes).
  std::uint8_t wscale = 6;
  std::uint32_t sndbuf_max = 1 << 20;
  std::uint32_t rcvbuf_max = 1 << 20;
  std::uint32_t initial_cwnd_segs = 10;
  sim::Time rto_initial = 1 * sim::kSecond;
  sim::Time rto_min = 200 * sim::kMillisecond;
  sim::Time rto_max = 60 * sim::kSecond;
  sim::Time delayed_ack = 40 * sim::kMillisecond;
  sim::Time time_wait = 1 * sim::kSecond;
  int syn_retries = 5;
  // Connection checkpointing (the Table I limitation, removed): established
  // connections journal their TCB through the host server's checkpoint sink
  // and survive a TCP server crash.  Off by default: the classic behaviour
  // (established connections die with the server) is byte-for-byte intact.
  bool checkpoint = false;
  // Storage-journal refresh watermark: a connection's record is re-put to
  // the storage server after this much un-journaled stream progress (the
  // hot sequence scalars live in the pool-resident checkpoint page and are
  // never sent per segment).
  std::uint32_t ckpt_watermark = 256 * 1024;
  // Congestion-control algorithm (src/net/cc): "newreno" (the default,
  // byte-identical to the previously inlined cwnd math), "cubic" or "bbr".
  std::string cc_algo = "newreno";
  // Per-port overrides for mixed-algorithm experiments (bench_cc's
  // dumbbell): a connection whose local or peer port matches takes that
  // algorithm instead of cc_algo.
  std::vector<std::pair<std::uint16_t, std::string>> cc_by_port;
  // Receive-side out-of-order reassembly queue, in segments per
  // connection.  0 (the default) keeps the classic drop-and-dup-ACK
  // receiver; with a budget, displaced segments are buffered and the
  // cumulative ACK jumps when the hole fills — reordering on a WAN wire no
  // longer masquerades as loss.
  std::uint32_t ooo_queue_segs = 0;
  // Initial slow-start threshold in bytes — a cached path estimate, the way
  // production stacks seed ssthresh from route metrics.  0 (the default)
  // keeps the classic unbounded slow start.  Without SACK a slow-start
  // overshoot of hundreds of segments takes one RTT per hole to repair, so
  // benches over a shallow bottleneck set this near the known pipe size.
  std::uint32_t ssthresh_init = 0;
};

// Host-side sink for connection checkpointing (implemented by the TCP
// server's CheckpointWriter, src/servers/checkpoint.h).  The engine reports
// every recoverable-state change through it:
//  - scalar updates are plain stores into a pool-resident checkpoint page
//    (shared memory that outlives the process — no IPC, safe per segment);
//  - queue membership changes move chunk references onto/off the owning
//    pool's loan ledger, so unacked send data and undelivered receive data
//    survive the crash as live chunks;
//  - establish/destroy transitions additionally journal a compact record
//    into the storage server (the only IPC this subsystem generates).
class TcpCheckpointSink {
 public:
  // Serialized congestion-control state: the engine-level RTT estimator
  // plus the algorithm's own blob (cc::CongestionControl::serialize).
  // algo == 0 means "absent" — restore falls back to conservative fresh
  // state, exactly the pre-blob behaviour.
  struct CcState {
    std::uint8_t algo = 0;  // cc::Algo
    std::uint8_t len = 0;   // bytes used in data[]
    std::int64_t srtt = 0;
    std::int64_t rttvar = 0;
    std::int64_t rto = 0;
    std::uint8_t data[cc::kCcBlobMax] = {};
  };
  static_assert(std::is_trivially_copyable_v<CcState>);
  struct Scalars {
    TcpState state = TcpState::Closed;
    std::uint32_t snd_una = 0;
    std::uint32_t snd_wnd = 0;
    std::uint32_t rcv_nxt = 0;
    bool peer_fin = false;
    bool fin_queued = false;
    CcState cc;
  };
  struct ConnMeta {
    SockId sock = 0;
    Ipv4Addr local;
    std::uint16_t lport = 0;
    Ipv4Addr peer;
    std::uint16_t pport = 0;
    SockId parent_listener = 0;  // nonzero for passive opens
    bool accept_pending = false;
  };

  virtual ~TcpCheckpointSink() = default;
  // Connection reached Established: start checkpointing it.  Returns false
  // when the sink cannot (page pool exhausted) — the connection then runs
  // un-checkpointed, exactly like the feature was off.
  virtual bool ckpt_established(const ConnMeta& meta, const Scalars& s) = 0;
  virtual void ckpt_scalars(SockId s, const Scalars& sc) = 0;
  // One chunk appended to / released from the send queue (seq = first byte).
  virtual void ckpt_sndq_push(SockId s, const chan::RichPtr& chunk,
                              std::uint32_t seq) = 0;
  virtual void ckpt_sndq_pop(SockId s, const chan::RichPtr& chunk) = 0;
  // One in-order frame queued on the receive side (payload at off/len
  // within the frame chunk), and the app consuming n bytes off the front.
  virtual void ckpt_rcvq_push(SockId s, const chan::RichPtr& frame,
                              std::uint16_t off, std::uint16_t len) = 0;
  virtual void ckpt_rcvq_consume(SockId s, std::size_t n) = 0;
  // The pending child was accepted by the application.
  virtual void ckpt_accepted(SockId s) = 0;
  // The connection left the recoverable world (closed, reset, TIME_WAIT).
  virtual void ckpt_destroyed(SockId s) = 0;
};

class TcpEngine {
 public:
  struct Env {
    Clock* clock = nullptr;
    TimerService* timers = nullptr;
    chan::PoolRegistry* pools = nullptr;
    chan::Pool* buf_pool = nullptr;  // TCP-owned: headers + send payload
    std::function<void(TxSeg&&, std::uint64_t cookie)> output;  // to IP
    std::function<void(const chan::RichPtr&)> rx_done;          // to IP
    std::function<void(SockId, TcpEvent)> notify;
    std::function<Ipv4Addr(Ipv4Addr dst)> src_for;
    // Connection-checkpoint sink; nullptr (the default) disables the whole
    // subsystem — no calls, no cost, no behaviour change.
    TcpCheckpointSink* ckpt = nullptr;

    // Sharded transport plane: this engine's replica index and the replica
    // count, plus the socket-id range the replica allocates from.  Active
    // connects constrain their ephemeral port so the inbound 4-tuple hash
    // steers back here; restore/replication only advances the id counter
    // for ids inside our own range (replica listeners keep foreign ids).
    int shard = 0;
    int shard_count = 1;
    SockId sock_base = 0;
    SockId sock_span = 0;  // 0 = unbounded (single-shard arrangements)
  };

  struct Stats {
    std::uint64_t segs_out = 0;
    std::uint64_t segs_in = 0;
    std::uint64_t bytes_out = 0;      // payload bytes first-transmitted
    std::uint64_t bytes_in = 0;       // payload bytes accepted in order
    std::uint64_t bytes_retx = 0;
    std::uint64_t acks_out = 0;
    std::uint64_t rtos = 0;
    std::uint64_t fast_retransmits = 0;
    std::uint64_t dup_acks_in = 0;
    std::uint64_t ooo_dropped = 0;
    std::uint64_t resets_out = 0;
    std::uint64_t conns_established = 0;
    std::uint64_t aggs_in = 0;        // GRO aggregates taken on the fast path
    std::uint64_t agg_frames_in = 0;  // frames those aggregates carried
    std::uint64_t conns_restored = 0; // rebuilt from a connection checkpoint
    std::uint64_t pacing_delays = 0;  // TX stalls waiting on the pacing timer
    std::uint64_t ooo_buffered = 0;   // segments held in the reassembly queue
  };

  TcpEngine(Env env, TcpOptions opts);
  ~TcpEngine();

  TcpEngine(const TcpEngine&) = delete;
  TcpEngine& operator=(const TcpEngine&) = delete;

  // --- socket API --------------------------------------------------------------
  SockId open();
  bool bind(SockId s, Ipv4Addr local, std::uint16_t port);
  bool listen(SockId s, int backlog);
  std::optional<SockId> accept(SockId s);
  bool connect(SockId s, Ipv4Addr dst, std::uint16_t port);
  bool is_listener(SockId s) const { return listeners_.count(s) != 0; }

  std::size_t send_space(SockId s) const;
  chan::RichPtr alloc_payload(std::uint32_t len);
  // Enqueues `payload` — one reference's worth of ownership passes to the
  // engine.  Usually a chunk from alloc_payload; a forwarded payload may be
  // a sub-range of any live pool chunk (the engine releases the containing
  // chunk, through its owning pool, once the bytes are ACKed).
  bool send(SockId s, chan::RichPtr payload);
  std::size_t recv_available(SockId s) const;
  // Copies up to out.size() bytes of in-order data; releases consumed frames.
  // Legacy copy path: implemented over peek()/consume().
  std::size_t recv(SockId s, std::span<std::byte> out);

  // --- zero-copy receive (Section V-C) -----------------------------------------
  // One unconsumed in-order piece of the receive queue.  `data` is a
  // read-only sub-range rich pointer over the payload bytes still queued in
  // the live frame chunk; `frame` is the whole chunk (what forward() bumps
  // a reference on).  No bytes move; the engine keeps its frame references
  // until consume().
  struct PeekChunk {
    chan::RichPtr frame;
    chan::RichPtr data;
  };
  // Fills `out` with up to out.size() pieces from the front of the receive
  // queue; returns the piece count.
  std::size_t peek(SockId s, std::span<PeekChunk> out) const;
  // Advances the stream by up to `n` bytes: releases fully consumed frames
  // (rx_done back to their owner) and sends the window-reopen ACK exactly
  // like recv() always did.  Returns the bytes actually consumed.
  std::size_t consume(SockId s, std::size_t n);
  // Asks for a Writable notification once send space frees up (what a
  // failed send() arms implicitly; forward() uses it when bounded by the
  // destination's send space).
  void want_writable(SockId s);
  // Graceful close.  Returns false for unknown sockets.
  bool close(SockId s);
  // Hard reset.
  void abort(SockId s);

  TcpState state(SockId s) const;
  struct TupleInfo {
    Ipv4Addr local;
    std::uint16_t lport = 0;
    Ipv4Addr peer;
    std::uint16_t pport = 0;
  };
  std::optional<TupleInfo> tuple(SockId s) const;

  // --- from IP ------------------------------------------------------------------
  void input(L4Packet&& pkt);
  // A GRO aggregate: same-flow, seq-consecutive data segments merged by IP.
  // The fast path charges the connection machinery once for the whole
  // aggregate and answers with ONE (stretch) ACK; anything that fails the
  // fast-path preconditions falls back to per-segment input().
  void input_agg(std::vector<L4Packet>&& segs);
  void seg_done(std::uint64_t cookie, bool sent);
  // After an IP crash: replies to old cookies will never arrive.  Frees all
  // pending headers (data stays in sndq) and retransmits aggressively so the
  // connection recovers its bitrate quickly (Section V-D "IP").
  void on_ip_restart();
  // The path below us healed (link back up after a device reset): stop
  // waiting out backed-off RTOs and retransmit immediately (Section V-D:
  // "it is much more important that we quickly retransmit").
  void on_path_restored();

  // --- recovery -----------------------------------------------------------------
  struct ListenRec {
    SockId id = 0;
    Ipv4Addr addr;
    std::uint16_t port = 0;
    int backlog = 8;
  };
  std::vector<ListenRec> listeners() const;
  void restore_listener(const ListenRec& rec);
  static std::vector<std::byte> serialize_listeners(
      const std::vector<ListenRec>&);
  static std::optional<std::vector<ListenRec>> parse_listeners(
      std::span<const std::byte>);
  std::vector<PfStateKey> connection_keys() const;

  // --- connection checkpointing (transparent TCP recovery) ----------------------
  // Rebuilds one established connection from its checkpoint: the scalars
  // come from the pool-resident checkpoint page, the queue chunks from the
  // loan ledger via the page's slot arrays.  The engine re-takes ownership
  // of every chunk reference (they were parked, never released).  cwnd/RTT
  // restart conservatively; snd_nxt rewinds to snd_una so resync_restored()
  // retransmits from the last acked watermark.
  struct RestoredSndChunk {
    std::uint32_t seq = 0;
    chan::RichPtr chunk;
  };
  struct RestoredRcvChunk {
    chan::RichPtr frame;
    std::uint16_t offset = 0;
    std::uint16_t len = 0;
    std::uint16_t consumed = 0;
  };
  struct RestoredConn {
    SockId sock = 0;
    TcpState state = TcpState::Closed;
    Ipv4Addr local;
    std::uint16_t lport = 0;
    Ipv4Addr peer;
    std::uint16_t pport = 0;
    std::uint32_t snd_una = 0;
    std::uint32_t snd_wnd = 0;
    std::uint32_t rcv_nxt = 0;
    bool peer_fin = false;
    bool fin_queued = false;
    SockId parent_listener = 0;
    bool accept_pending = false;
    std::vector<RestoredSndChunk> sndq;
    std::vector<RestoredRcvChunk> rcvq;
    // Congestion-control snapshot from the checkpoint page; algo == 0
    // (e.g. a pre-blob v1 journal record) restores conservatively.
    TcpCheckpointSink::CcState cc;
  };
  bool restore_conn(const RestoredConn& rec);
  // Resynchronizes every restored connection with its peer: go-back-N
  // retransmission from snd_una, a window-announcing ACK, and the readiness
  // events (Readable/Writable/AcceptReady) the application missed.
  void resync_restored();
  // Crash path (on_killed): checkpointed connections drop their queue
  // references WITHOUT releasing them — the references live on in the loan
  // ledger and the checkpoint pages, which is what restore_conn() adopts.
  // Detaches the sink; the remaining (un-checkpointed) state tears down as
  // it always did.
  void park_checkpointed();
  // Stops checkpointing one connection (sink overflow): it reverts to the
  // classic non-recoverable behaviour.
  void drop_checkpoint(SockId s);

  // Human-readable connection state (diagnostics and examples).
  std::string debug(SockId s) const;

  // --- congestion-control observability -----------------------------------------
  struct CcInfo {
    const char* algo = "";
    std::uint32_t cwnd = 0;
    std::uint32_t ssthresh = 0;
    std::uint64_t pacing_rate = 0;  // bytes/sec; 0 = unpaced
  };
  std::optional<CcInfo> cc_info(SockId s) const;
  // Sum of cwnd over synchronized connections (the tcp.cc.cwnd_now gauge).
  std::uint64_t cwnd_sum() const;
  std::vector<SockId> connection_socks() const;

  const Stats& stats() const { return stats_; }
  const TcpOptions& options() const { return opts_; }
  std::size_t connection_count() const { return conns_.size(); }

  // Teardown/crash support: replaces the rx_done report with a direct
  // release through the pool registry.  A dying or destructed host has no
  // handler context to send kL4RxDone messages from.
  void detach_rx_done() {
    env_.rx_done = [pools = env_.pools](const chan::RichPtr& frame) {
      pools->release(frame);
    };
  }

 private:
  struct SendChunk {
    std::uint32_t seq = 0;  // sequence number of first byte
    chan::RichPtr chunk;
  };
  struct RecvChunk {
    chan::RichPtr frame;          // held until consumed, then rx_done
    std::uint16_t offset = 0;     // payload start within frame
    std::uint16_t len = 0;
    std::uint16_t consumed = 0;
  };
  struct ConnKey {
    std::uint32_t peer = 0;
    std::uint16_t pport = 0;
    std::uint16_t lport = 0;
    auto operator<=>(const ConnKey&) const = default;
  };
  // Wraparound-safe sequence ordering for the reassembly map.
  struct SeqLess {
    bool operator()(std::uint32_t a, std::uint32_t b) const {
      return static_cast<std::int32_t>(a - b) < 0;
    }
  };
  struct Conn {
    SockId sock = 0;
    TcpState state = TcpState::Closed;
    Ipv4Addr local;
    std::uint16_t lport = 0;
    Ipv4Addr peer;
    std::uint16_t pport = 0;

    // Send side.
    std::uint32_t iss = 0;
    std::uint32_t snd_una = 0;
    std::uint32_t snd_nxt = 0;
    std::uint32_t snd_buf_end = 0;  // seq after last byte queued
    std::uint32_t snd_wnd = 0;      // peer-advertised (scaled)
    // cwnd/ssthresh mirror the congestion-control module (synced after
    // every hook); tcp_output() and debug() read them as they always did.
    std::uint32_t cwnd = 0;
    std::uint32_t ssthresh = 0;
    std::unique_ptr<cc::CongestionControl> cc;
    // Pacing (rate-based controllers): earliest time the next data segment
    // may leave, and the timer that resumes tcp_output() at that instant.
    sim::Time pace_next = 0;
    TimerService::TimerId pace_timer = 0;
    std::uint32_t dup_acks = 0;
    std::uint32_t high_water = 0;  // highest snd_nxt reached (retx detection)
    bool in_recovery = false;      // NewReno fast recovery (RFC 6582)
    std::uint32_t recover = 0;     // recovery point: snd_nxt at loss entry
    bool fin_queued = false;
    std::deque<SendChunk> sndq;
    std::uint32_t sndq_bytes = 0;
    bool was_send_blocked = false;

    // RTT estimation (Jacobson) + RTO.
    sim::Time srtt = 0;
    sim::Time rttvar = 0;
    sim::Time rto = 0;
    bool rtt_sampling = false;
    std::uint32_t rtt_seq = 0;
    sim::Time rtt_sent_at = 0;
    TimerService::TimerId rto_timer = 0;
    int syn_attempts = 0;

    // Receive side.
    std::uint32_t irs = 0;
    std::uint32_t rcv_nxt = 0;
    std::deque<RecvChunk> rcvq;
    std::uint32_t rcvq_bytes = 0;
    // Out-of-order reassembly (TcpOptions::ooo_queue_segs > 0), keyed by
    // sequence number with wraparound-safe ordering.  Frames here are NOT
    // readable, not counted in rcvq_bytes and never checkpointed (the peer
    // retransmits them after a restore).
    std::map<std::uint32_t, RecvChunk, SeqLess> ooo;
    bool peer_fin = false;
    bool fin_acked_by_us = false;
    int segs_since_ack = 0;
    TimerService::TimerId ack_timer = 0;
    TimerService::TimerId timewait_timer = 0;

    SockId parent_listener = 0;
    bool ckpt = false;  // journaled through the checkpoint sink
  };
  struct Listener {
    SockId sock = 0;
    Ipv4Addr addr;
    std::uint16_t port = 0;
    int backlog = 8;
    std::deque<SockId> acceptq;
  };

  // Sequence-space comparisons (wraparound-safe).
  static bool seq_lt(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::int32_t>(a - b) < 0;
  }
  static bool seq_leq(std::uint32_t a, std::uint32_t b) {
    return static_cast<std::int32_t>(a - b) <= 0;
  }

  Conn* conn_for(SockId s);
  const Conn* conn_for(SockId s) const;
  // Releases one reference on a payload chunk through its owning pool
  // (resolves sub-ranges; forwarded payloads live in foreign pools).
  void release_payload(const chan::RichPtr& p);
  Conn* conn_by_tuple(Ipv4Addr peer, std::uint16_t pport, std::uint16_t lport);
  // Picks a free ephemeral port; with replicas, one whose inbound 4-tuple
  // (peer:pport -> local:port) steers back to this shard.
  std::uint16_t ephemeral_port(Ipv4Addr local, Ipv4Addr peer,
                               std::uint16_t pport);
  // True when `s` lies in this replica's own id range.
  bool own_sock(SockId s) const {
    return env_.sock_span == 0 ||
           (s > env_.sock_base && s - env_.sock_base < env_.sock_span);
  }
  std::uint32_t next_isn();

  void tcp_output(Conn& c);
  void send_segment(Conn& c, std::uint32_t seq, std::uint32_t len,
                    std::uint8_t flags, bool retransmission);
  void send_ack(Conn& c);
  void send_rst(Ipv4Addr src, Ipv4Addr dst, std::uint16_t sport,
                std::uint16_t dport, std::uint32_t seq, std::uint32_t ack,
                bool with_ack);
  void schedule_ack(Conn& c);
  void arm_rto(Conn& c);
  void cancel_rto(Conn& c);
  void on_rto(SockId sock);
  void process_ack(Conn& c, const TcpHeader& h);
  // Returns true when the engine retained a reference to pkt.frame (queued
  // in rcvq or the reassembly map).
  bool accept_data(Conn& c, const L4Packet& pkt, const TcpHeader& h,
                   std::uint16_t data_off, std::uint16_t data_len);
  // Drains now-in-order segments from the reassembly map into rcvq;
  // returns true when any bytes were promoted (send an immediate ACK so
  // the sender sees the cumulative jump).
  bool flush_ooo(Conn& c);
  void enter_time_wait(Conn& c);
  void destroy_conn(SockId s, bool notify_reset);
  std::uint32_t flight_size(const Conn& c) const {
    return c.snd_nxt - c.snd_una;
  }
  std::uint32_t rcv_space(const Conn& c) const;
  std::uint16_t window_field(const Conn& c) const;
  void notify(SockId s, TcpEvent e);

  // --- congestion-control plumbing ---------------------------------------------------
  cc::CcConfig cc_config() const {
    return cc::CcConfig{opts_.mss,
                        opts_.initial_cwnd_segs * std::uint32_t{opts_.mss},
                        opts_.ssthresh_init};
  }
  // Builds the module for a connection: a cc_by_port match (local or peer
  // port) overrides cc_algo; an unknown name falls back to NewReno.
  std::unique_ptr<cc::CongestionControl> make_cc(std::uint16_t lport,
                                                 std::uint16_t pport) const;
  // Mirrors the module's outputs into the Conn fields the TX path reads.
  void sync_cc(Conn& c) {
    c.cwnd = c.cc->cwnd();
    c.ssthresh = c.cc->ssthresh();
  }
  void cancel_pace(Conn& c) {
    if (c.pace_timer) {
      env_.timers->cancel(c.pace_timer);
      c.pace_timer = 0;
    }
  }

  // --- checkpoint plumbing ---------------------------------------------------------
  bool ckpt_on(const Conn& c) const {
    return c.ckpt && env_.ckpt != nullptr;
  }
  TcpCheckpointSink::Scalars ckpt_scalars_of(const Conn& c) const;
  // Pushes the current scalars into the checkpoint page (no-op when the
  // connection is not checkpointed).
  void ckpt_touch(Conn& c);
  // Marks the connection established towards the sink; clears c.ckpt when
  // the sink cannot take it.
  void ckpt_establish(Conn& c, bool accept_pending);

  Env env_;
  TcpOptions opts_;
  Stats stats_;

  SockId next_sock_ = 1;  // rebased onto env_.sock_base by the constructor
  std::uint16_t next_port_ = 30000;
  std::uint32_t isn_ = 0x1000;
  std::uint64_t next_cookie_ = 1;

  std::unordered_map<SockId, Listener> listeners_;
  std::unordered_map<std::uint16_t, SockId> listen_ports_;
  std::unordered_map<SockId, Conn> conns_;
  std::map<ConnKey, SockId> by_tuple_;
  std::unordered_map<std::uint64_t, chan::RichPtr> hdr_inflight_;
  // Sockets created by open() but not yet listener/connection.
  std::unordered_map<SockId, TupleInfo> embryos_;
  // Connections restore_conn() rebuilt, awaiting resync_restored().
  std::vector<SockId> pending_resync_;
};

}  // namespace newtos::net
