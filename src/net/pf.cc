#include "src/net/pf.h"

#include <cstring>

#include "src/net/headers.h"

namespace newtos::net {

std::size_t PfEngine::KeyHash::operator()(const PfStateKey& k) const {
  std::size_t h = k.protocol;
  h = h * 1000003 + k.src.value;
  h = h * 1000003 + k.dst.value;
  h = h * 1000003 + ((static_cast<std::size_t>(k.sport) << 16) | k.dport);
  return h;
}

PfEngine::PfEngine(Clock* clock) : PfEngine(clock, Config{}) {}

PfEngine::PfEngine(Clock* clock, Config cfg) : clock_(clock), cfg_(cfg) {}

PfStateKey PfEngine::forward_key(const PfQuery& q) {
  return PfStateKey{q.protocol, q.src, q.dst, q.sport, q.dport};
}

PfStateKey PfEngine::reverse_key(const PfQuery& q) {
  return PfStateKey{q.protocol, q.dst, q.src, q.dport, q.sport};
}

bool PfEngine::rule_matches(const PfRule& r, const PfQuery& q) const {
  if (r.dir && *r.dir != q.dir) return false;
  if (r.protocol && *r.protocol != q.protocol) return false;
  if (r.src && !r.src->contains(q.src)) return false;
  if (r.dst && !r.dst->contains(q.dst)) return false;
  if (r.sport && !r.sport->contains(q.sport)) return false;
  if (r.dport && !r.dport->contains(q.dport)) return false;
  return true;
}

PfEngine::Verdict PfEngine::check(const PfQuery& q) {
  ++checks_;
  const sim::Time now = clock_ ? clock_->now() : 0;

  // Established state bypasses the rules (both orientations).
  for (const PfStateKey& key : {forward_key(q), reverse_key(q)}) {
    auto it = states_.find(key);
    if (it != states_.end()) {
      if (it->second > now) {
        // RST tears the entry down; FIN handling is TTL-based.
        if (q.protocol == kProtoTcp && (q.tcp_flags & tcpflag::kRst) != 0) {
          states_.erase(it);
        } else {
          it->second = now + cfg_.state_ttl;
        }
        return Verdict{PfAction::Pass, 0, true};
      }
      states_.erase(it);
    }
  }

  int walked = 0;
  for (const PfRule& r : rules_) {
    ++walked;
    if (!rule_matches(r, q)) continue;
    if (r.action == PfAction::Pass && r.keep_state) {
      states_[forward_key(q)] = now + cfg_.state_ttl;
    }
    if (r.action == PfAction::Block) ++blocks_;
    return Verdict{r.action, walked, false};
  }
  if (cfg_.default_action == PfAction::Block) ++blocks_;
  return Verdict{cfg_.default_action, walked, false};
}

void PfEngine::restore_states(const std::vector<PfStateKey>& keys) {
  const sim::Time now = clock_ ? clock_->now() : 0;
  for (const auto& k : keys) states_[k] = now + cfg_.state_ttl;
}

std::vector<PfStateKey> PfEngine::snapshot_states() const {
  std::vector<PfStateKey> out;
  out.reserve(states_.size());
  for (const auto& [k, expiry] : states_) out.push_back(k);
  return out;
}

// Rule wire format: u32 count, then per rule a fixed 40-byte record.
std::vector<std::byte> PfEngine::serialize_rules(
    const std::vector<PfRule>& rules) {
  std::vector<std::byte> out(4 + rules.size() * 40);
  std::uint32_t n = static_cast<std::uint32_t>(rules.size());
  std::memcpy(out.data(), &n, 4);
  std::size_t off = 4;
  for (const PfRule& r : rules) {
    std::uint8_t rec[40] = {};
    rec[0] = static_cast<std::uint8_t>(r.action);
    rec[1] = r.dir ? (1 + static_cast<std::uint8_t>(*r.dir)) : 0;
    rec[2] = r.protocol ? 1 : 0;
    rec[3] = r.protocol.value_or(0);
    auto put32 = [&rec](int at, std::uint32_t v) {
      std::memcpy(rec + at, &v, 4);
    };
    auto put16 = [&rec](int at, std::uint16_t v) {
      std::memcpy(rec + at, &v, 2);
    };
    rec[4] = r.src ? 1 : 0;
    put32(8, r.src ? r.src->network.value : 0);
    rec[5] = static_cast<std::uint8_t>(r.src ? r.src->prefix_len : 0);
    rec[6] = r.dst ? 1 : 0;
    put32(12, r.dst ? r.dst->network.value : 0);
    rec[7] = static_cast<std::uint8_t>(r.dst ? r.dst->prefix_len : 0);
    rec[16] = r.sport ? 1 : 0;
    put16(18, r.sport ? r.sport->lo : 0);
    put16(20, r.sport ? r.sport->hi : 0);
    rec[17] = r.dport ? 1 : 0;
    put16(22, r.dport ? r.dport->lo : 0);
    put16(24, r.dport ? r.dport->hi : 0);
    rec[26] = r.keep_state ? 1 : 0;
    std::memcpy(out.data() + off, rec, 40);
    off += 40;
  }
  return out;
}

std::optional<std::vector<PfRule>> PfEngine::parse_rules(
    std::span<const std::byte> data) {
  if (data.size() < 4) return std::nullopt;
  std::uint32_t n;
  std::memcpy(&n, data.data(), 4);
  if (data.size() < 4 + static_cast<std::size_t>(n) * 40) return std::nullopt;
  std::vector<PfRule> rules;
  rules.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint8_t* rec =
        reinterpret_cast<const std::uint8_t*>(data.data()) + 4 + i * 40;
    auto get32 = [rec](int at) {
      std::uint32_t v;
      std::memcpy(&v, rec + at, 4);
      return v;
    };
    auto get16 = [rec](int at) {
      std::uint16_t v;
      std::memcpy(&v, rec + at, 2);
      return v;
    };
    PfRule r;
    if (rec[0] > 1) return std::nullopt;
    r.action = static_cast<PfAction>(rec[0]);
    if (rec[1] > 2) return std::nullopt;
    if (rec[1] != 0) r.dir = static_cast<PfDir>(rec[1] - 1);
    if (rec[2]) r.protocol = rec[3];
    if (rec[4]) r.src = Ipv4Net{Ipv4Addr{get32(8)}, rec[5]};
    if (rec[6]) r.dst = Ipv4Net{Ipv4Addr{get32(12)}, rec[7]};
    if (rec[16]) r.sport = PortRange{get16(18), get16(20)};
    if (rec[17]) r.dport = PortRange{get16(22), get16(24)};
    r.keep_state = rec[26] != 0;
    rules.push_back(r);
  }
  return rules;
}

}  // namespace newtos::net
