// Per-shard IP receive fast path (the RSS datapath's software half).
//
// With multi-queue RSS the driver posts a queue's frames straight to the
// queue's home transport replica, skipping the central IP server — but the
// work IP used to do on those frames still has to happen somewhere.  This
// class is that work, hoisted out of IpEngine::input/input_burst into a
// context every transport shard embeds: header validation, GRO aggregation
// and the packet-filter consultation, plus a shard-local verdict cache so an
// established flow stops paying the PF round trip per burst.  The cache is
// invalidated by a PF broadcast (kPfCacheInval) whenever the rule set
// changes or PF restarts.
//
// Anything the fast path cannot deliver into the local engine — malformed
// headers, frames not addressed to us, protocols the shard does not own —
// is handed back to the classic IP server path through the fallback hook,
// so the slow path stays the single place odd traffic is judged.
//
// Ordering (the PR 4 burst-ordering fix, mirrored): PF answers queries in
// submission order and delivery follows verdict order.  A shard-local cache
// hit must therefore never let a frame overtake an earlier frame of its own
// flow that is still waiting for a verdict — while a flow has a pending
// query, every later frame of that flow (deliveries, aggregates and
// fallback handoffs alike) queues behind the verdict and drains in arrival
// order.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "src/chan/pool.h"
#include "src/net/ip.h"
#include "src/net/pf.h"

namespace newtos::net {

class IpFastPath {
 public:
  struct Config {
    std::vector<Interface> interfaces;
    bool use_pf = true;
    bool gro = false;
  };

  struct Env {
    chan::PoolRegistry* pools = nullptr;
    // Deliver one validated TCP/UDP packet into the shard's own engine.
    std::function<void(std::uint8_t proto, L4Packet&&)> deliver;
    // Deliver a GRO aggregate (TCP shards only; unset falls back to
    // per-segment deliver).
    std::function<void(L4AggPacket&&)> deliver_agg;
    // File a PF query; the answer comes back through pf_verdict().
    std::function<void(const PfQuery&, std::uint64_t cookie)> pf_check;
    // Hand a frame back to the classic IP server input path.
    std::function<void(int ifindex, const chan::RichPtr&)> fallback;
    // Return a consumed/dropped frame to the receive pool.
    std::function<void(const chan::RichPtr&)> release;
  };

  struct Stats {
    std::uint64_t fast_frames = 0;      // delivered into the local engine
    std::uint64_t fallback_frames = 0;  // handed back to the IP server
    std::uint64_t dropped_pf = 0;
    std::uint64_t dropped_malformed = 0;
    std::uint64_t pf_queries = 0;
    std::uint64_t cache_hits = 0;
    std::uint64_t gro_aggs = 0;
    std::uint64_t gro_frames = 0;
  };

  IpFastPath(Env env, Config cfg);
  ~IpFastPath();

  IpFastPath(const IpFastPath&) = delete;
  IpFastPath& operator=(const IpFastPath&) = delete;

  // A queue's worth of frames from the driver.  Every frame reference is
  // owned by the fast path until it is delivered, released or handed back.
  void input_burst(int ifindex, std::span<const chan::RichPtr> frames);

  // PF's answer to a pf_check we filed.
  void pf_verdict(std::uint64_t cookie, bool allow);

  // PF broadcast: the rule set changed (or PF restarted) — every cached
  // verdict is stale.
  void invalidate_cache() { verdict_cache_.clear(); }

  // PF restarted and lost our unanswered queries: repeat them.
  std::size_t resubmit_pf();

  // Teardown (replica killed): release every held frame back to the receive
  // pool.  The loans were already returned at unpack time, so a direct pool
  // release is the whole job — mirrors Server::drop_engine.
  void release_all();

  const Stats& stats() const { return stats_; }
  std::size_t cache_size() const { return verdict_cache_.size(); }
  std::size_t pending_flows() const { return pf_pending_.size(); }

 private:
  struct FlowKey {
    Ipv4Addr src;
    Ipv4Addr dst;
    std::uint16_t sport = 0;
    std::uint16_t dport = 0;
    std::uint8_t protocol = 0;
    friend bool operator==(const FlowKey&, const FlowKey&) = default;
  };
  struct FlowKeyHash {
    std::size_t operator()(const FlowKey& k) const;
  };

  // One action queued behind a flow's pending verdict, drained in order.
  struct HeldItem {
    enum class Kind { Deliver, DeliverAgg, Fallback } kind = Kind::Deliver;
    std::uint8_t proto = 0;
    L4Packet pkt;       // Deliver
    L4AggPacket agg;    // DeliverAgg
    int ifindex = 0;    // Fallback
    chan::RichPtr frame;  // Fallback
  };

  struct PendingFlow {
    std::uint64_t cookie = 0;
    PfQuery query;
    std::deque<HeldItem> held;
  };

  const Interface* iface(int ifindex) const;
  void input(int ifindex, const chan::RichPtr& frame);
  void judge(const FlowKey& key, const PfQuery& q, HeldItem&& item);
  void run_item(const FlowKey& key, HeldItem&& item, bool allow);
  void deliver_item(HeldItem&& item);
  void drop_item(HeldItem&& item);
  void emit_fallback(int ifindex, const chan::RichPtr& frame);
  void finish_agg(int ifindex, L4AggPacket&& agg, std::uint8_t tcp_flags);

  Env env_;
  Config cfg_;
  Stats stats_;
  std::uint64_t next_cookie_ = 1;
  std::unordered_map<FlowKey, bool, FlowKeyHash> verdict_cache_;
  std::unordered_map<FlowKey, PendingFlow, FlowKeyHash> pf_pending_;
  std::unordered_map<std::uint64_t, FlowKey> cookie_flow_;
};

}  // namespace newtos::net
