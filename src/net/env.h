// Host-environment interfaces for the protocol engines.
//
// The engines (ARP, IP, ICMP, UDP, TCP, PF) are plain libraries: they do not
// know whether they run inside a dedicated server connected by channels (the
// NewtOS split stack), inside one combined stack server, or in-process (the
// monolithic baseline).  The hosting code provides time, timers and output
// paths through these interfaces.
#pragma once

#include <cstdint>
#include <functional>

#include "src/sim/time.h"

namespace newtos::net {

class Clock {
 public:
  virtual ~Clock() = default;
  virtual sim::Time now() const = 0;
};

class TimerService {
 public:
  using TimerId = std::uint64_t;
  virtual ~TimerService() = default;
  // Schedules `fn` after `delay`; the callback runs in the hosting
  // component's execution context (its core, in the simulator).
  virtual TimerId schedule(sim::Time delay, std::function<void()> fn) = 0;
  virtual void cancel(TimerId id) = 0;
};

}  // namespace newtos::net
