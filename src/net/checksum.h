// Internet checksum (RFC 1071) with incremental/partial support, as needed
// for checksum offloading: software computes the pseudo-header partial sum,
// the (simulated) NIC finishes the job.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "src/net/addr.h"

namespace newtos::net {

// Sums 16-bit big-endian words; returns the running 32-bit sum (not folded).
std::uint32_t checksum_partial(std::span<const std::byte> data,
                               std::uint32_t sum = 0);

// Folds a running sum and complements it into a final checksum value.
std::uint16_t checksum_finish(std::uint32_t sum);

// One-shot checksum of a buffer.
std::uint16_t checksum(std::span<const std::byte> data);

// Partial sum of the TCP/UDP pseudo header.
std::uint32_t pseudo_header_sum(Ipv4Addr src, Ipv4Addr dst,
                                std::uint8_t protocol, std::uint16_t length);

}  // namespace newtos::net
