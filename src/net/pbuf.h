// Packet carriers: zero-copy chains of rich pointers (Section V-C).
//
// A packet travelling down the stack is never copied.  L4 builds its header
// in a chunk it owns and passes {header, payload chunk refs}; IP combines
// the L4 header with the IP and Ethernet headers in one new chunk (it must
// write the checksum, and pools are read-only to consumers) and passes
// {frame header, payload refs} on to the packet filter and the driver.  The
// NIC gathers ("DMAs") the chain onto the wire.  On receive, a frame is one
// contiguous chunk in IP's receive pool and moves upward by reference.
//
// When a chain crosses a channel it is packed into a descriptor chunk — "an
// array allocated in a shared pool filled with rich pointers" — referenced
// from the 64-byte message.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "src/chan/pool.h"
#include "src/chan/rich_ptr.h"
#include "src/net/addr.h"

namespace newtos::net {

// Offload knobs carried with a TX packet (Section V-A: checksum offloading
// and TCP segmentation offloading were added to the stack).
struct TxOffload {
  bool tso = false;            // NIC splits the oversized segment into MTU frames
  bool csum_offload = false;   // NIC finishes the L4 checksum
  std::uint16_t mss = 1460;    // segment size the NIC should cut at
};

// L4 -> IP: one transport segment.
struct TxSeg {
  chan::RichPtr l4_header;               // TCP/UDP header chunk (sender-owned)
  std::vector<chan::RichPtr> payload;    // read-only payload refs
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint8_t protocol = 0;
  TxOffload offload;

  std::uint32_t payload_len() const;
  std::uint32_t total_len() const { return l4_header.length + payload_len(); }
};

// IP -> driver: one frame (possibly a TSO superframe).
struct TxFrame {
  chan::RichPtr header;                  // ETH+IP+L4 headers in one chunk
  std::vector<chan::RichPtr> payload;
  TxOffload offload;

  std::uint32_t payload_len() const;
  std::uint32_t total_len() const { return header.length + payload_len(); }
};

// Gathers a chain into contiguous bytes (what the NIC's scatter-gather DMA
// engine does while serializing onto the wire).
std::vector<std::byte> flatten(const chan::PoolRegistry& pools,
                               const chan::RichPtr& header,
                               const std::vector<chan::RichPtr>& payload);

// --- Channel descriptors ------------------------------------------------------
//
// Pack/unpack a {header, payload...} chain plus offload flags into a chunk
// allocated from `pool`, so it can be referenced from one message.  Layout:
//   u32 magic, u32 flags, u16 mss, u16 n_ptrs, u32 payload_len,
//   then n_ptrs RichPtr records (header first).

chan::RichPtr pack_chain(chan::Pool& pool, const chan::RichPtr& header,
                         const std::vector<chan::RichPtr>& payload,
                         const TxOffload& offload);

struct UnpackedChain {
  chan::RichPtr header;
  std::vector<chan::RichPtr> payload;
  TxOffload offload;
};

std::optional<UnpackedChain> unpack_chain(const chan::PoolRegistry& pools,
                                          const chan::RichPtr& desc);

}  // namespace newtos::net
