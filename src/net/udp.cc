#include "src/net/udp.h"

#include <cassert>
#include <cstring>

namespace newtos::net {

UdpEngine::UdpEngine(Env env) : env_(std::move(env)) {
  next_sock_ = env_.sock_base + 1;
  if (env_.shard_count > 1) {
    next_port_ = static_cast<std::uint16_t>(20000 + env_.shard * 4096);
  }
}

UdpEngine::~UdpEngine() {
  for (auto& [id, sock] : socks_) {
    for (auto& item : sock.rxq) env_.rx_done(item.frame);
  }
  for (auto& [cookie, seg] : inflight_) {
    env_.buf_pool->release(seg.header);
    if (seg.payload.valid()) env_.buf_pool->release(seg.payload);
  }
}

UdpEngine::Sock* UdpEngine::find(SockId s) {
  auto it = socks_.find(s);
  return it == socks_.end() ? nullptr : &it->second;
}
const UdpEngine::Sock* UdpEngine::find(SockId s) const {
  auto it = socks_.find(s);
  return it == socks_.end() ? nullptr : &it->second;
}

std::uint16_t UdpEngine::ephemeral_port() {
  if (env_.shard_count > 1) {
    // Disjoint 4096-port window per replica: socket state is replicated to
    // every shard, so two shards must never hand out the same port.
    const std::uint16_t base =
        static_cast<std::uint16_t>(20000 + env_.shard * 4096);
    for (std::uint16_t i = 0; i < 4096; ++i) {
      const std::uint16_t p = static_cast<std::uint16_t>(
          base + (next_port_ - base + i) % 4096);
      if (bound_.count(p) == 0) {
        next_port_ = static_cast<std::uint16_t>(base + (p - base + 1) % 4096);
        return p;
      }
    }
    return 0;
  }
  while (bound_.count(next_port_) != 0) ++next_port_;
  return next_port_++;
}

SockId UdpEngine::open() {
  const SockId id = next_sock_++;
  socks_.emplace(id, Sock{id, Ipv4Addr{}, 0, Ipv4Addr{}, 0, {}});
  return id;
}

bool UdpEngine::bind(SockId s, Ipv4Addr local, std::uint16_t port) {
  Sock* sock = find(s);
  if (sock == nullptr) return false;
  if (port == 0) port = ephemeral_port();
  if (port == 0) return false;  // per-shard ephemeral window exhausted
  if (bound_.count(port) != 0) return false;
  if (sock->lport != 0) erase_binding(sock->lport, s);
  sock->local = local;
  sock->lport = port;
  bound_[port] = s;
  return true;
}

void UdpEngine::erase_binding(std::uint16_t port, SockId s) {
  // Only unmap the port if this socket owns it: after a replicated port
  // collision the map may name a different, still-live socket.
  auto it = bound_.find(port);
  if (it != bound_.end() && it->second == s) bound_.erase(it);
}

bool UdpEngine::connect(SockId s, Ipv4Addr peer, std::uint16_t port) {
  Sock* sock = find(s);
  if (sock == nullptr) return false;
  if (sock->lport == 0 && !bind(s, Ipv4Addr{}, 0)) return false;
  sock->peer = peer;
  sock->pport = port;
  return true;
}

void UdpEngine::close(SockId s) {
  Sock* sock = find(s);
  if (sock == nullptr) return;
  for (auto& item : sock->rxq) env_.rx_done(item.frame);
  if (sock->lport != 0) erase_binding(sock->lport, s);
  socks_.erase(s);
}

chan::RichPtr UdpEngine::alloc_payload(std::uint32_t len) {
  return env_.buf_pool->alloc(len);
}

bool UdpEngine::sendto(SockId s, chan::RichPtr payload, Ipv4Addr dst,
                       std::uint16_t port) {
  Sock* sock = find(s);
  if (sock == nullptr) {
    env_.buf_pool->release(payload);
    return false;
  }
  if (dst.is_zero()) {
    dst = sock->peer;
    port = sock->pport;
  }
  if (dst.is_zero() || port == 0) {
    env_.buf_pool->release(payload);
    return false;
  }
  if (sock->lport == 0 && !bind(s, Ipv4Addr{}, 0)) {
    env_.buf_pool->release(payload);
    return false;
  }
  Ipv4Addr src = sock->local;
  if (src.is_zero() && env_.src_for) src = env_.src_for(dst);

  chan::RichPtr hdr = env_.buf_pool->alloc(kUdpHeaderLen);
  if (!hdr.valid()) {
    env_.buf_pool->release(payload);
    return false;
  }
  auto view = env_.buf_pool->write_view(hdr);
  ByteWriter w{view};
  UdpHeader uh;
  uh.src_port = sock->lport;
  uh.dst_port = port;
  uh.length =
      static_cast<std::uint16_t>(kUdpHeaderLen + payload.length);
  uh.checksum = 0;  // filled (or offloaded) by IP
  uh.serialize(w);

  TxSeg seg;
  seg.l4_header = hdr;
  if (payload.valid()) seg.payload.push_back(payload);
  seg.src = src;
  seg.dst = dst;
  seg.protocol = kProtoUdp;

  const std::uint64_t cookie = next_cookie_++;
  inflight_.emplace(cookie, PendingSeg{hdr, payload});
  ++stats_.datagrams_out;
  env_.output(std::move(seg), cookie);
  return true;
}

void UdpEngine::seg_done(std::uint64_t cookie, bool sent) {
  (void)sent;  // UDP is fire-and-forget either way
  auto it = inflight_.find(cookie);
  if (it == inflight_.end()) return;  // stale reply from before a crash
  env_.buf_pool->release(it->second.header);
  if (it->second.payload.valid()) env_.buf_pool->release(it->second.payload);
  inflight_.erase(it);
}

void UdpEngine::input(L4Packet&& pkt) {
  auto bytes = env_.pools->read(pkt.frame);
  if (bytes.size() < static_cast<std::size_t>(pkt.l4_offset) + kUdpHeaderLen ||
      pkt.l4_length < kUdpHeaderLen) {
    ++stats_.dropped_malformed;
    env_.rx_done(pkt.frame);
    return;
  }
  ByteReader r{bytes.subspan(pkt.l4_offset, pkt.l4_length)};
  auto uh = UdpHeader::parse(r);
  if (!uh || uh->length > pkt.l4_length) {
    ++stats_.dropped_malformed;
    env_.rx_done(pkt.frame);
    return;
  }
  auto it = bound_.find(uh->dst_port);
  if (it == bound_.end()) {
    ++stats_.dropped_no_socket;
    env_.rx_done(pkt.frame);
    return;
  }
  Sock* sock = find(it->second);
  assert(sock != nullptr);
  // Connected sockets only accept datagrams from their peer.
  if (!sock->peer.is_zero() &&
      (sock->peer != pkt.src || sock->pport != uh->src_port)) {
    ++stats_.dropped_no_socket;
    env_.rx_done(pkt.frame);
    return;
  }
  if (sock->rxq.size() >= kMaxRxQueue) {
    ++stats_.dropped_queue_full;
    env_.rx_done(pkt.frame);
    return;
  }
  RxItem item;
  item.frame = pkt.frame;
  item.data_offset =
      static_cast<std::uint16_t>(pkt.l4_offset + kUdpHeaderLen);
  item.data_len = static_cast<std::uint16_t>(uh->length - kUdpHeaderLen);
  item.src = pkt.src;
  item.sport = uh->src_port;
  sock->rxq.push_back(item);
  ++stats_.datagrams_in;
  if (env_.notify_readable) env_.notify_readable(sock->id);
}

bool UdpEngine::readable(SockId s) const {
  const Sock* sock = find(s);
  return sock != nullptr && !sock->rxq.empty();
}

std::optional<UdpEngine::BorrowedRx> UdpEngine::recv_zc(SockId s) {
  Sock* sock = find(s);
  if (sock == nullptr || sock->rxq.empty()) return std::nullopt;
  RxItem item = sock->rxq.front();
  sock->rxq.pop_front();
  BorrowedRx b;
  b.frame = item.frame;
  b.data = item.frame;
  b.data.offset = item.frame.offset + item.data_offset;
  b.data.length = item.data_len;
  b.src = item.src;
  b.sport = item.sport;
  return b;
}

std::optional<UdpEngine::Datagram> UdpEngine::recv(SockId s) {
  auto b = recv_zc(s);
  if (!b) return std::nullopt;
  Datagram d;
  auto payload = env_.pools->read(b->data);
  d.data.assign(payload.begin(), payload.end());
  d.src = b->src;
  d.sport = b->sport;
  env_.rx_done(b->frame);
  return d;
}

std::vector<UdpEngine::SockRec> UdpEngine::snapshot() const {
  std::vector<SockRec> out;
  out.reserve(socks_.size());
  for (const auto& [id, s] : socks_)
    out.push_back(SockRec{id, s.local, s.lport, s.peer, s.pport});
  return out;
}

void UdpEngine::restore(const std::vector<SockRec>& socks) {
  for (const auto& rec : socks) upsert(rec);
}

void UdpEngine::upsert(const SockRec& rec) {
  Sock& s = socks_[rec.id];  // creates with an empty rxq, or updates in place
  if (s.lport != 0 && s.lport != rec.lport) erase_binding(s.lport, rec.id);
  s.id = rec.id;
  s.local = rec.local;
  s.lport = rec.lport;
  s.peer = rec.peer;
  s.pport = rec.pport;
  // First owner wins on a replicated port collision (see erase_binding).
  if (rec.lport != 0) bound_.try_emplace(rec.lport, rec.id);
  // A replicated record carries a sibling shard's id: it must not drag our
  // allocation counter into the foreign range.
  if (own_sock(rec.id)) next_sock_ = std::max(next_sock_, rec.id + 1);
}

std::optional<UdpEngine::SockRec> UdpEngine::record(SockId s) const {
  const Sock* sock = find(s);
  if (sock == nullptr) return std::nullopt;
  return SockRec{sock->id, sock->local, sock->lport, sock->peer, sock->pport};
}

std::vector<std::byte> UdpEngine::serialize_socks(
    const std::vector<SockRec>& socks) {
  std::vector<std::byte> out(4 + socks.size() * 16);
  std::uint32_t n = static_cast<std::uint32_t>(socks.size());
  std::memcpy(out.data(), &n, 4);
  std::size_t off = 4;
  for (const auto& s : socks) {
    std::memcpy(out.data() + off + 0, &s.id, 4);
    std::memcpy(out.data() + off + 4, &s.local.value, 4);
    std::memcpy(out.data() + off + 8, &s.peer.value, 4);
    std::memcpy(out.data() + off + 12, &s.lport, 2);
    std::memcpy(out.data() + off + 14, &s.pport, 2);
    off += 16;
  }
  return out;
}

std::optional<std::vector<UdpEngine::SockRec>> UdpEngine::parse_socks(
    std::span<const std::byte> data) {
  if (data.size() < 4) return std::nullopt;
  std::uint32_t n;
  std::memcpy(&n, data.data(), 4);
  if (data.size() < 4 + static_cast<std::size_t>(n) * 16) return std::nullopt;
  std::vector<SockRec> out;
  out.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::byte* p = data.data() + 4 + i * 16;
    SockRec s;
    std::memcpy(&s.id, p + 0, 4);
    std::memcpy(&s.local.value, p + 4, 4);
    std::memcpy(&s.peer.value, p + 8, 4);
    std::memcpy(&s.lport, p + 12, 2);
    std::memcpy(&s.pport, p + 14, 2);
    out.push_back(s);
  }
  return out;
}

std::vector<PfStateKey> UdpEngine::connection_keys() const {
  std::vector<PfStateKey> out;
  for (const auto& [id, s] : socks_) {
    if (s.peer.is_zero()) continue;
    out.push_back(PfStateKey{kProtoUdp, s.local, s.peer, s.lport, s.pport});
  }
  return out;
}

}  // namespace newtos::net
