// UDP: sockets, datagram send/receive.
//
// UDP's recoverable state is exactly Table I's description: "small state per
// socket, low frequency of change" — the 4-tuple of every open socket.  The
// snapshot/restore pair below is what the UDP server stores in the storage
// server and reloads after a crash.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/chan/pool.h"
#include "src/net/env.h"
#include "src/net/ip.h"
#include "src/net/steering.h"

namespace newtos::net {

using SockId = std::uint32_t;

class UdpEngine {
 public:
  struct Env {
    Clock* clock = nullptr;
    chan::PoolRegistry* pools = nullptr;
    chan::Pool* buf_pool = nullptr;  // UDP-owned: headers + payload staging
    std::function<void(TxSeg&&, std::uint64_t cookie)> output;  // to IP
    std::function<void(const chan::RichPtr&)> rx_done;          // to IP
    std::function<void(SockId)> notify_readable;
    // Source-address selection for unbound sockets (host wires to IP config).
    std::function<Ipv4Addr(Ipv4Addr dst)> src_for;

    // Sharded transport plane: replica index/count and the socket-id range
    // this replica allocates from.  UDP socket state is replicated across
    // all shards (a datagram from an arbitrary peer hashes to an arbitrary
    // replica); each shard draws ephemeral ports from a disjoint window so
    // two home sockets can never collide on a port.
    int shard = 0;
    int shard_count = 1;
    SockId sock_base = 0;
    SockId sock_span = 0;  // 0 = unbounded (single-shard arrangements)
  };

  struct Stats {
    std::uint64_t datagrams_out = 0;
    std::uint64_t datagrams_in = 0;
    std::uint64_t dropped_no_socket = 0;
    std::uint64_t dropped_queue_full = 0;
    std::uint64_t dropped_malformed = 0;
  };

  explicit UdpEngine(Env env);
  // Releases queued receive frames and in-flight TX chunks.
  ~UdpEngine();

  UdpEngine(const UdpEngine&) = delete;
  UdpEngine& operator=(const UdpEngine&) = delete;

  // --- socket API ---------------------------------------------------------------
  SockId open();
  bool bind(SockId s, Ipv4Addr local, std::uint16_t port);  // port 0: ephemeral
  bool connect(SockId s, Ipv4Addr peer, std::uint16_t port);  // presets dest
  void close(SockId s);

  chan::RichPtr alloc_payload(std::uint32_t len);
  // Sends `payload` (a chunk in buf_pool; ownership passes to the engine) to
  // dst:port, or to the connected peer when dst is zero.
  bool sendto(SockId s, chan::RichPtr payload, Ipv4Addr dst,
              std::uint16_t port);

  struct Datagram {
    std::vector<std::byte> data;
    Ipv4Addr src;
    std::uint16_t sport = 0;
  };
  // Legacy copy path: implemented over recv_zc() plus one memcpy.
  std::optional<Datagram> recv(SockId s);
  bool readable(SockId s) const;

  // --- zero-copy receive (Section V-C) -----------------------------------------
  // A borrowed datagram: `data` is a read-only sub-range rich pointer over
  // the payload inside the live frame chunk; `frame` is the whole chunk.
  // The frame reference transfers to the caller, who must hand it back via
  // release_rx() (or directly to the owning pool) exactly once.
  struct BorrowedRx {
    chan::RichPtr frame;
    chan::RichPtr data;
    Ipv4Addr src;
    std::uint16_t sport = 0;
  };
  std::optional<BorrowedRx> recv_zc(SockId s);
  // Reports a borrowed frame done to its owner (kL4RxDone towards IP).
  void release_rx(const chan::RichPtr& frame) { env_.rx_done(frame); }

  // Teardown/crash support: replaces the rx_done report with a direct
  // release through the pool registry.  A dying or destructed host has no
  // handler context to send kL4RxDone messages from.
  void detach_rx_done() {
    env_.rx_done = [pools = env_.pools](const chan::RichPtr& frame) {
      pools->release(frame);
    };
  }

  // --- from IP -------------------------------------------------------------------
  void input(L4Packet&& pkt);
  void seg_done(std::uint64_t cookie, bool sent);

  // --- recovery (Section V-D) ------------------------------------------------------
  struct SockRec {
    SockId id = 0;
    Ipv4Addr local;
    std::uint16_t lport = 0;
    Ipv4Addr peer;
    std::uint16_t pport = 0;
  };
  std::vector<SockRec> snapshot() const;
  void restore(const std::vector<SockRec>& socks);
  // Replica maintenance (sharded plane): creates or updates the socket
  // named by `rec` without touching any queued receive backlog, and the
  // current record of one socket for replication to sibling shards.
  void upsert(const SockRec& rec);
  std::optional<SockRec> record(SockId s) const;
  static std::vector<std::byte> serialize_socks(const std::vector<SockRec>&);
  static std::optional<std::vector<SockRec>> parse_socks(
      std::span<const std::byte>);
  // PF state recovery support: active 4-tuples.
  std::vector<PfStateKey> connection_keys() const;

  const Stats& stats() const { return stats_; }
  std::size_t socket_count() const { return socks_.size(); }

 private:
  struct RxItem {
    chan::RichPtr frame;
    std::uint16_t data_offset = 0;
    std::uint16_t data_len = 0;
    Ipv4Addr src;
    std::uint16_t sport = 0;
  };
  struct Sock {
    SockId id = 0;
    Ipv4Addr local;
    std::uint16_t lport = 0;
    Ipv4Addr peer;
    std::uint16_t pport = 0;
    std::deque<RxItem> rxq;
  };
  struct PendingSeg {
    chan::RichPtr header;
    chan::RichPtr payload;
  };

  Sock* find(SockId s);
  const Sock* find(SockId s) const;
  std::uint16_t ephemeral_port();
  // Unmaps `port` only if `s` owns it (replication collision safety).
  void erase_binding(std::uint16_t port, SockId s);
  // True when `s` lies in this replica's own id range.
  bool own_sock(SockId s) const {
    return env_.sock_span == 0 ||
           (s > env_.sock_base && s - env_.sock_base < env_.sock_span);
  }

  Env env_;
  Stats stats_;
  SockId next_sock_ = 1;
  std::uint16_t next_port_ = 20000;
  std::uint64_t next_cookie_ = 1;
  std::unordered_map<SockId, Sock> socks_;
  std::unordered_map<std::uint16_t, SockId> bound_;  // lport -> socket
  std::unordered_map<std::uint64_t, PendingSeg> inflight_;

  static constexpr std::size_t kMaxRxQueue = 64;
};

}  // namespace newtos::net
