#include "src/net/headers.h"

#include <algorithm>
#include <cstring>

#include "src/net/checksum.h"

namespace newtos::net {

// --- ByteWriter / ByteReader ---------------------------------------------------

void ByteWriter::u8(std::uint8_t v) {
  if (pos_ + 1 > buf_.size()) {
    ok_ = false;
    return;
  }
  buf_[pos_++] = std::byte{v};
}

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v >> 8));
  u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v >> 16));
  u16(static_cast<std::uint16_t>(v));
}

void ByteWriter::mac(const MacAddr& m) {
  for (auto b : m.bytes) u8(b);
}

void ByteWriter::ip(Ipv4Addr a) { u32(a.value); }

void ByteWriter::raw(std::span<const std::byte> data) {
  if (pos_ + data.size() > buf_.size()) {
    ok_ = false;
    return;
  }
  std::copy(data.begin(), data.end(), buf_.begin() + pos_);
  pos_ += data.size();
}

std::uint8_t ByteReader::u8() {
  if (pos_ + 1 > buf_.size()) {
    ok_ = false;
    return 0;
  }
  return std::to_integer<std::uint8_t>(buf_[pos_++]);
}

std::uint16_t ByteReader::u16() {
  const auto hi = u8();
  const auto lo = u8();
  return static_cast<std::uint16_t>((hi << 8) | lo);
}

std::uint32_t ByteReader::u32() {
  const auto hi = u16();
  const auto lo = u16();
  return (static_cast<std::uint32_t>(hi) << 16) | lo;
}

MacAddr ByteReader::mac() {
  MacAddr m;
  for (auto& b : m.bytes) b = u8();
  return m;
}

Ipv4Addr ByteReader::ip() { return Ipv4Addr{u32()}; }

void ByteReader::skip(std::size_t n) {
  if (pos_ + n > buf_.size()) {
    ok_ = false;
    return;
  }
  pos_ += n;
}

// --- Ethernet -------------------------------------------------------------------

void EthHeader::serialize(ByteWriter& w) const {
  w.mac(dst);
  w.mac(src);
  w.u16(ethertype);
}

std::optional<EthHeader> EthHeader::parse(ByteReader& r) {
  EthHeader h;
  h.dst = r.mac();
  h.src = r.mac();
  h.ethertype = r.u16();
  if (!r.ok()) return std::nullopt;
  return h;
}

// --- ARP ------------------------------------------------------------------------

void ArpPacket::serialize(ByteWriter& w) const {
  w.u16(1);       // htype: ethernet
  w.u16(kEtherTypeIpv4);
  w.u8(6);        // hlen
  w.u8(4);        // plen
  w.u16(op);
  w.mac(sender_mac);
  w.ip(sender_ip);
  w.mac(target_mac);
  w.ip(target_ip);
}

std::optional<ArpPacket> ArpPacket::parse(ByteReader& r) {
  const std::uint16_t htype = r.u16();
  const std::uint16_t ptype = r.u16();
  const std::uint8_t hlen = r.u8();
  const std::uint8_t plen = r.u8();
  ArpPacket p;
  p.op = r.u16();
  p.sender_mac = r.mac();
  p.sender_ip = r.ip();
  p.target_mac = r.mac();
  p.target_ip = r.ip();
  if (!r.ok() || htype != 1 || ptype != kEtherTypeIpv4 || hlen != 6 ||
      plen != 4)
    return std::nullopt;
  if (p.op != kArpOpRequest && p.op != kArpOpReply) return std::nullopt;
  return p;
}

// --- IPv4 -----------------------------------------------------------------------

void Ipv4Header::serialize(ByteWriter& w, bool compute_checksum) const {
  std::byte tmp[kIpHeaderLen];
  ByteWriter hw{std::span<std::byte>(tmp, sizeof tmp)};
  hw.u8(0x45);  // version 4, ihl 5
  hw.u8(0);     // dscp/ecn
  hw.u16(total_length);
  hw.u16(id);
  hw.u16(0x4000);  // flags: don't fragment
  hw.u8(ttl);
  hw.u8(protocol);
  hw.u16(0);  // checksum placeholder
  hw.ip(src);
  hw.ip(dst);
  std::uint16_t csum = checksum;
  if (compute_checksum) {
    csum = newtos::net::checksum(std::span<const std::byte>(tmp, sizeof tmp));
  }
  tmp[10] = std::byte{static_cast<std::uint8_t>(csum >> 8)};
  tmp[11] = std::byte{static_cast<std::uint8_t>(csum)};
  w.raw(std::span<const std::byte>(tmp, sizeof tmp));
}

std::optional<Ipv4Header> Ipv4Header::parse(ByteReader& r, bool verify) {
  const std::uint8_t ver_ihl = r.u8();
  r.u8();  // dscp
  Ipv4Header h;
  h.total_length = r.u16();
  h.id = r.u16();
  r.u16();  // flags/fragment offset
  h.ttl = r.u8();
  h.protocol = r.u8();
  h.checksum = r.u16();
  h.src = r.ip();
  h.dst = r.ip();
  if (!r.ok()) return std::nullopt;
  if ((ver_ihl >> 4) != 4) return std::nullopt;
  const std::size_t ihl = static_cast<std::size_t>(ver_ihl & 0x0f) * 4;
  if (ihl != kIpHeaderLen) return std::nullopt;  // options unsupported
  if (h.total_length < kIpHeaderLen) return std::nullopt;
  if (h.ttl == 0) return std::nullopt;
  if (verify) {
    // Re-serialize with the received checksum and verify the sum is zero.
    std::byte tmp[kIpHeaderLen];
    ByteWriter hw{std::span<std::byte>(tmp, sizeof tmp)};
    h.serialize(hw, /*compute_checksum=*/false);
    if (newtos::net::checksum(std::span<const std::byte>(tmp, sizeof tmp)) !=
        0)
      return std::nullopt;
  }
  return h;
}

// --- ICMP -----------------------------------------------------------------------

void IcmpHeader::serialize(ByteWriter& w) const {
  w.u8(type);
  w.u8(code);
  w.u16(checksum);
  w.u16(id);
  w.u16(seq);
}

std::optional<IcmpHeader> IcmpHeader::parse(ByteReader& r) {
  IcmpHeader h;
  h.type = r.u8();
  h.code = r.u8();
  h.checksum = r.u16();
  h.id = r.u16();
  h.seq = r.u16();
  if (!r.ok()) return std::nullopt;
  return h;
}

// --- UDP ------------------------------------------------------------------------

void UdpHeader::serialize(ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u16(length);
  w.u16(checksum);
}

std::optional<UdpHeader> UdpHeader::parse(ByteReader& r) {
  UdpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.length = r.u16();
  h.checksum = r.u16();
  if (!r.ok() || h.length < kUdpHeaderLen) return std::nullopt;
  return h;
}

// --- TCP ------------------------------------------------------------------------

void TcpHeader::serialize(ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  w.u8(5 << 4);  // data offset 5 words, no options
  w.u8(flags);
  w.u16(window);
  w.u16(checksum);
  w.u16(0);  // urgent pointer
}

std::optional<TcpHeader> TcpHeader::parse(ByteReader& r) {
  TcpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.seq = r.u32();
  h.ack = r.u32();
  const std::uint8_t off = r.u8();
  h.flags = r.u8() & 0x3f;
  h.window = r.u16();
  h.checksum = r.u16();
  r.u16();  // urgent pointer
  if (!r.ok()) return std::nullopt;
  const std::size_t hdr_len = static_cast<std::size_t>(off >> 4) * 4;
  if (hdr_len < kTcpHeaderLen) return std::nullopt;
  r.skip(hdr_len - kTcpHeaderLen);  // ignore options
  if (!r.ok()) return std::nullopt;
  return h;
}

}  // namespace newtos::net
