// ICMP echo handling — part of the IP component ("Our IP also contains ICMP
// and ARP", Section V).  ICMP is stateless, which is what makes IP one of
// the easiest components to restart (Table I).
//
// Echo replies are built as ordinary internal TX requests: they flow through
// the packet filter and driver like any other packet, and the reply payload
// is *copied* into an IP-owned chunk because the received frame chunk will
// be released as soon as input handling finishes.
#include "src/net/checksum.h"
#include "src/net/ip.h"

namespace newtos::net {

void IpEngine::handle_icmp(int ifindex, const chan::RichPtr& frame,
                           const Ipv4Header& ip_hdr, std::uint16_t l4_offset,
                           std::uint16_t l4_length) {
  (void)ifindex;
  auto bytes = env_.pools->read(frame);
  if (bytes.size() < static_cast<std::size_t>(l4_offset) + kIcmpHeaderLen)
    return;
  if (l4_length < kIcmpHeaderLen ||
      bytes.size() < static_cast<std::size_t>(l4_offset) + l4_length)
    return;
  auto icmp_bytes = bytes.subspan(l4_offset, l4_length);
  ByteReader r{icmp_bytes};
  auto icmp = IcmpHeader::parse(r);
  if (!icmp) return;
  // Verify the ICMP checksum over header + payload: garbage pings — the
  // "ping of death" family — are dropped, not crashed on.
  if (checksum(icmp_bytes) != 0) {
    ++stats_.dropped_malformed;
    return;
  }
  if (icmp->type != kIcmpEchoRequest || icmp->code != 0) return;

  // Build the reply: ICMP header + echoed payload in one IP-owned chunk.
  chan::RichPtr reply = env_.hdr_pool->alloc(l4_length);
  if (!reply.valid()) return;
  auto view = env_.hdr_pool->write_view(reply);
  ByteWriter w{view};
  IcmpHeader reply_hdr;
  reply_hdr.type = kIcmpEchoReply;
  reply_hdr.code = 0;
  reply_hdr.checksum = 0;
  reply_hdr.id = icmp->id;
  reply_hdr.seq = icmp->seq;
  reply_hdr.serialize(w);
  w.raw(icmp_bytes.subspan(kIcmpHeaderLen));
  const std::uint16_t csum = checksum(view);
  view[2] = std::byte{static_cast<std::uint8_t>(csum >> 8)};
  view[3] = std::byte{static_cast<std::uint8_t>(csum)};

  ++stats_.icmp_echo_replies;

  TxSeg seg;
  seg.l4_header = reply;
  seg.src = ip_hdr.dst;
  seg.dst = ip_hdr.src;
  seg.protocol = kProtoIcmp;
  // Internal request: completion routes through finish_l4(), which releases
  // the reply chunk instead of notifying a transport server.
  const std::uint64_t cookie = next_cookie_++;
  internal_inflight_.emplace(cookie, reply);
  output(std::move(seg), kInternalCookieBase + cookie);
}

}  // namespace newtos::net
