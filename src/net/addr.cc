#include "src/net/addr.h"

#include <cstdio>

namespace newtos::net {

MacAddr MacAddr::local(std::uint32_t index) {
  // 02:xx:xx:xx:xx:xx — the locally-administered bit set, globally unique
  // within a simulation.
  return MacAddr{{0x02, 0x00,
                  static_cast<std::uint8_t>(index >> 24),
                  static_cast<std::uint8_t>(index >> 16),
                  static_cast<std::uint8_t>(index >> 8),
                  static_cast<std::uint8_t>(index)}};
}

std::string MacAddr::to_string() const {
  char buf[18];
  std::snprintf(buf, sizeof buf, "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0],
                bytes[1], bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

Ipv4Addr Ipv4Addr::parse(const std::string& dotted) {
  unsigned a = 0, b = 0, c = 0, d = 0;
  if (std::sscanf(dotted.c_str(), "%u.%u.%u.%u", &a, &b, &c, &d) != 4)
    return Ipv4Addr{};
  if (a > 255 || b > 255 || c > 255 || d > 255) return Ipv4Addr{};
  return Ipv4Addr(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
                  static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value >> 24) & 0xff,
                (value >> 16) & 0xff, (value >> 8) & 0xff, value & 0xff);
  return buf;
}

std::string Ipv4Net::to_string() const {
  return network.to_string() + "/" + std::to_string(prefix_len);
}

}  // namespace newtos::net
