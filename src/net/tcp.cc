#include "src/net/tcp.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace newtos::net {

const char* to_string(TcpState s) {
  switch (s) {
    case TcpState::Closed: return "CLOSED";
    case TcpState::Listen: return "LISTEN";
    case TcpState::SynSent: return "SYN_SENT";
    case TcpState::SynRcvd: return "SYN_RCVD";
    case TcpState::Established: return "ESTABLISHED";
    case TcpState::FinWait1: return "FIN_WAIT_1";
    case TcpState::FinWait2: return "FIN_WAIT_2";
    case TcpState::CloseWait: return "CLOSE_WAIT";
    case TcpState::Closing: return "CLOSING";
    case TcpState::LastAck: return "LAST_ACK";
    case TcpState::TimeWait: return "TIME_WAIT";
  }
  return "?";
}

TcpEngine::TcpEngine(Env env, TcpOptions opts)
    : env_(std::move(env)), opts_(opts) {
  next_sock_ = env_.sock_base + 1;
}

TcpEngine::~TcpEngine() {
  // Release everything we own; cancel timers so no callback outlives us.
  for (auto& [sock, c] : conns_) {
    if (c.rto_timer) env_.timers->cancel(c.rto_timer);
    if (c.ack_timer) env_.timers->cancel(c.ack_timer);
    if (c.timewait_timer) env_.timers->cancel(c.timewait_timer);
    if (c.pace_timer) env_.timers->cancel(c.pace_timer);
    for (auto& sc : c.sndq) release_payload(sc.chunk);
    for (auto& rc : c.rcvq) env_.rx_done(rc.frame);
    for (auto& [seq, rc] : c.ooo) env_.rx_done(rc.frame);
  }
  for (auto& [cookie, hdr] : hdr_inflight_) env_.buf_pool->release(hdr);
}

void TcpEngine::release_payload(const chan::RichPtr& p) {
  // Forwarded payloads are sub-ranges of frames in a foreign (receive)
  // pool; our own send chunks resolve to themselves.  The registry models
  // the consumer's done-report back to the owning component.  A stale
  // pointer (the owner reset its pool) must NOT fall back to any other
  // pool: offsets are meaningless across pools.
  if (!p.valid()) return;
  env_.pools->release(p);
}

void TcpEngine::notify(SockId s, TcpEvent e) {
  if (env_.notify) env_.notify(s, e);
}

TcpEngine::Conn* TcpEngine::conn_for(SockId s) {
  auto it = conns_.find(s);
  return it == conns_.end() ? nullptr : &it->second;
}
const TcpEngine::Conn* TcpEngine::conn_for(SockId s) const {
  auto it = conns_.find(s);
  return it == conns_.end() ? nullptr : &it->second;
}

TcpEngine::Conn* TcpEngine::conn_by_tuple(Ipv4Addr peer, std::uint16_t pport,
                                          std::uint16_t lport) {
  auto it = by_tuple_.find(ConnKey{peer.value, pport, lport});
  return it == by_tuple_.end() ? nullptr : conn_for(it->second);
}

std::uint16_t TcpEngine::ephemeral_port(Ipv4Addr local, Ipv4Addr peer,
                                        std::uint16_t pport) {
  for (int guard = 0; guard < 65536; ++guard) {
    const std::uint16_t p = next_port_++;
    if (next_port_ < 30000) next_port_ = 30000;
    if (listen_ports_.count(p)) continue;
    // The inbound 4-tuple must steer back to this replica; the hash
    // partitions the ephemeral space among shards, so two replicas can
    // never mint the same tuple either.
    if (env_.shard_count > 1 &&
        steer_shard(peer, local, pport, p, env_.shard_count) != env_.shard) {
      continue;
    }
    bool used = false;
    for (const auto& [key, sock] : by_tuple_) {
      if (key.lport == p) {
        used = true;
        break;
      }
    }
    if (!used) return p;
  }
  return 0;
}

std::uint32_t TcpEngine::next_isn() { return isn_ += 0x10001; }

// --- checkpoint plumbing ------------------------------------------------------------

TcpCheckpointSink::Scalars TcpEngine::ckpt_scalars_of(const Conn& c) const {
  TcpCheckpointSink::Scalars s;
  s.state = c.state;
  s.snd_una = c.snd_una;
  s.snd_wnd = c.snd_wnd;
  s.rcv_nxt = c.rcv_nxt;
  s.peer_fin = c.peer_fin;
  s.fin_queued = c.fin_queued;
  // Congestion-control snapshot: restored connections resume at their
  // learned window and RTT instead of the conservative restart.
  if (c.cc != nullptr) {
    std::byte buf[cc::kCcBlobMax];
    const std::size_t n = c.cc->serialize(buf);
    if (n > 0 && n <= sizeof s.cc.data) {
      s.cc.algo = static_cast<std::uint8_t>(c.cc->algo());
      s.cc.len = static_cast<std::uint8_t>(n);
      s.cc.srtt = c.srtt;
      s.cc.rttvar = c.rttvar;
      s.cc.rto = c.rto;
      std::memcpy(s.cc.data, buf, n);
    }
  }
  return s;
}

void TcpEngine::ckpt_touch(Conn& c) {
  if (ckpt_on(c)) env_.ckpt->ckpt_scalars(c.sock, ckpt_scalars_of(c));
}

void TcpEngine::ckpt_establish(Conn& c, bool accept_pending) {
  if (!opts_.checkpoint || env_.ckpt == nullptr) return;
  TcpCheckpointSink::ConnMeta meta;
  meta.sock = c.sock;
  meta.local = c.local;
  meta.lport = c.lport;
  meta.peer = c.peer;
  meta.pport = c.pport;
  meta.parent_listener = c.parent_listener;
  meta.accept_pending = accept_pending;
  c.ckpt = env_.ckpt->ckpt_established(meta, ckpt_scalars_of(c));
}

void TcpEngine::drop_checkpoint(SockId s) {
  Conn* c = conn_for(s);
  if (c != nullptr) c->ckpt = false;
}

void TcpEngine::park_checkpointed() {
  // The process is dying.  Checkpointed connections leave their chunk
  // references to the loan ledger and the checkpoint pages (which is where
  // restore_conn() re-adopts them) — dropping the queues here without a
  // release is the ownership hand-off, not a leak.  Everything else (the
  // embryos, listeners, un-checkpointed connections, in-flight headers)
  // tears down exactly as before.
  for (auto it = conns_.begin(); it != conns_.end();) {
    Conn& c = it->second;
    if (!ckpt_on(c)) {
      ++it;
      continue;
    }
    if (c.rto_timer) env_.timers->cancel(c.rto_timer);
    if (c.ack_timer) env_.timers->cancel(c.ack_timer);
    if (c.timewait_timer) env_.timers->cancel(c.timewait_timer);
    if (c.pace_timer) env_.timers->cancel(c.pace_timer);
    c.sndq.clear();
    c.rcvq.clear();
    // Reassembly frames are NOT on the loan ledger (never checkpointed):
    // release them directly — the dying host has no handler context for
    // rx_done IPC, and the peer retransmits them after the restore.
    for (auto& [seq, rc] : c.ooo) env_.pools->release(rc.frame);
    c.ooo.clear();
    by_tuple_.erase(ConnKey{c.peer.value, c.pport, c.lport});
    it = conns_.erase(it);
  }
  env_.ckpt = nullptr;  // the sink object dies with the host incarnation
}

// --- socket API -------------------------------------------------------------------

SockId TcpEngine::open() {
  const SockId id = next_sock_++;
  embryos_.emplace(id, TupleInfo{});
  return id;
}

bool TcpEngine::bind(SockId s, Ipv4Addr local, std::uint16_t port) {
  auto it = embryos_.find(s);
  if (it == embryos_.end()) return false;
  if (port != 0 && listen_ports_.count(port)) return false;
  it->second.local = local;
  it->second.lport = port;
  return true;
}

bool TcpEngine::listen(SockId s, int backlog) {
  auto it = embryos_.find(s);
  if (it == embryos_.end()) return false;
  if (it->second.lport == 0) return false;  // must bind first
  Listener l;
  l.sock = s;
  l.addr = it->second.local;
  l.port = it->second.lport;
  l.backlog = std::max(1, backlog);
  listen_ports_[l.port] = s;
  listeners_.emplace(s, std::move(l));
  embryos_.erase(it);
  return true;
}

std::optional<SockId> TcpEngine::accept(SockId s) {
  auto it = listeners_.find(s);
  if (it == listeners_.end() || it->second.acceptq.empty())
    return std::nullopt;
  const SockId child = it->second.acceptq.front();
  it->second.acceptq.pop_front();
  Conn* c = conn_for(child);
  if (c != nullptr && ckpt_on(*c)) env_.ckpt->ckpt_accepted(child);
  return child;
}

bool TcpEngine::connect(SockId s, Ipv4Addr dst, std::uint16_t port) {
  auto it = embryos_.find(s);
  if (it == embryos_.end()) return false;
  Ipv4Addr local = it->second.local;
  if (local.is_zero() && env_.src_for) local = env_.src_for(dst);
  std::uint16_t lport = it->second.lport;
  if (lport == 0) lport = ephemeral_port(local, dst, port);
  if (lport == 0) return false;
  if (conn_by_tuple(dst, port, lport) != nullptr) return false;
  embryos_.erase(it);

  Conn c;
  c.sock = s;
  c.state = TcpState::SynSent;
  c.local = local;
  c.lport = lport;
  c.peer = dst;
  c.pport = port;
  c.iss = next_isn();
  c.snd_una = c.iss;
  c.snd_nxt = c.iss;        // SYN not yet on the wire
  c.snd_buf_end = c.iss + 1;  // SYN occupies one sequence number
  c.cc = make_cc(lport, port);
  sync_cc(c);
  c.rto = opts_.rto_initial;
  c.snd_wnd = opts_.mss;  // until the peer tells us
  conns_.emplace(s, std::move(c));
  by_tuple_[ConnKey{dst.value, port, lport}] = s;

  Conn& ref = conns_[s];
  send_segment(ref, ref.iss, 0, tcpflag::kSyn, false);
  ref.snd_nxt = ref.iss + 1;
  ref.high_water = ref.snd_nxt;
  ref.syn_attempts = 1;
  arm_rto(ref);
  return true;
}

std::size_t TcpEngine::send_space(SockId s) const {
  const Conn* c = conn_for(s);
  if (c == nullptr) return 0;
  if (c->state != TcpState::Established && c->state != TcpState::CloseWait)
    return 0;
  if (c->fin_queued) return 0;
  return c->sndq_bytes >= opts_.sndbuf_max ? 0
                                           : opts_.sndbuf_max - c->sndq_bytes;
}

chan::RichPtr TcpEngine::alloc_payload(std::uint32_t len) {
  return env_.buf_pool->alloc(len);
}

bool TcpEngine::send(SockId s, chan::RichPtr payload) {
  Conn* c = conn_for(s);
  if (c == nullptr || !payload.valid() ||
      (c->state != TcpState::Established && c->state != TcpState::CloseWait) ||
      c->fin_queued || c->sndq_bytes + payload.length > opts_.sndbuf_max) {
    if (c != nullptr && payload.valid() &&
        c->sndq_bytes + payload.length > opts_.sndbuf_max) {
      c->was_send_blocked = true;  // Writable fires when ACKs free space
    }
    if (payload.valid()) release_payload(payload);
    return false;
  }
  SendChunk sc;
  sc.seq = c->snd_buf_end;
  sc.chunk = payload;
  c->snd_buf_end += payload.length;
  c->sndq_bytes += payload.length;
  c->sndq.push_back(sc);
  if (ckpt_on(*c)) {
    env_.ckpt->ckpt_sndq_push(c->sock, sc.chunk, sc.seq);
    ckpt_touch(*c);
  }
  tcp_output(*c);
  return true;
}

std::size_t TcpEngine::recv_available(SockId s) const {
  const Conn* c = conn_for(s);
  return c == nullptr ? 0 : c->rcvq_bytes;
}

std::size_t TcpEngine::peek(SockId s, std::span<PeekChunk> out) const {
  const Conn* c = conn_for(s);
  if (c == nullptr || out.empty()) return 0;
  std::size_t n = 0;
  for (const RecvChunk& rc : c->rcvq) {
    if (n == out.size()) break;
    const std::uint16_t avail = rc.len - rc.consumed;
    if (avail == 0) continue;
    PeekChunk pc;
    pc.frame = rc.frame;
    pc.data = rc.frame;
    pc.data.offset = rc.frame.offset + rc.offset + rc.consumed;
    pc.data.length = avail;
    out[n++] = pc;
  }
  return n;
}

std::size_t TcpEngine::consume(SockId s, std::size_t n) {
  Conn* c = conn_for(s);
  if (c == nullptr) return 0;
  std::size_t done = 0;
  const std::uint32_t space_before = rcv_space(*c);
  while (done < n && !c->rcvq.empty()) {
    RecvChunk& rc = c->rcvq.front();
    const std::size_t avail = rc.len - rc.consumed;
    const std::size_t take = std::min(n - done, avail);
    rc.consumed += static_cast<std::uint16_t>(take);
    done += take;
    c->rcvq_bytes -= static_cast<std::uint32_t>(take);
    if (rc.consumed == rc.len) {
      env_.rx_done(rc.frame);
      c->rcvq.pop_front();
    }
  }
  if (done > 0 && ckpt_on(*c)) {
    env_.ckpt->ckpt_rcvq_consume(c->sock, done);
    ckpt_touch(*c);
  }
  // Window update: if the window was effectively closed and just reopened,
  // tell the peer (we have no persist timer; see DESIGN.md).
  if (done > 0 && space_before < opts_.mss && rcv_space(*c) >= opts_.mss &&
      c->state == TcpState::Established) {
    send_ack(*c);
  }
  return done;
}

void TcpEngine::want_writable(SockId s) {
  Conn* c = conn_for(s);
  if (c != nullptr) c->was_send_blocked = true;
}

std::size_t TcpEngine::recv(SockId s, std::span<std::byte> out) {
  std::size_t copied = 0;
  for (;;) {
    PeekChunk pcs[8];
    const std::size_t k = peek(s, pcs);
    if (k == 0) break;
    std::size_t round = 0;
    for (std::size_t i = 0; i < k && copied < out.size(); ++i) {
      const std::size_t want = out.size() - copied;
      const std::size_t n =
          std::min(want, static_cast<std::size_t>(pcs[i].data.length));
      auto bytes = env_.pools->read(pcs[i].data);
      if (bytes.size() >= n) {
        std::memcpy(out.data() + copied, bytes.data(), n);
      }
      copied += n;
      round += n;
    }
    if (round == 0) break;
    consume(s, round);
    if (copied == out.size()) break;
  }
  return copied;
}

bool TcpEngine::close(SockId s) {
  if (embryos_.erase(s) > 0) return true;
  auto lit = listeners_.find(s);
  if (lit != listeners_.end()) {
    // Children waiting in the accept queue are reset.
    for (SockId child : lit->second.acceptq) destroy_conn(child, false);
    // Only unmap the port if this listener owns it: after a replicated
    // port collision the map may name a different, still-live listener.
    auto pit = listen_ports_.find(lit->second.port);
    if (pit != listen_ports_.end() && pit->second == s)
      listen_ports_.erase(pit);
    listeners_.erase(lit);
    return true;
  }
  Conn* c = conn_for(s);
  if (c == nullptr) return false;
  switch (c->state) {
    case TcpState::SynSent:
      destroy_conn(s, false);
      return true;
    case TcpState::SynRcvd:
    case TcpState::Established:
      c->fin_queued = true;
      c->state = TcpState::FinWait1;
      ckpt_touch(*c);
      tcp_output(*c);
      return true;
    case TcpState::CloseWait:
      c->fin_queued = true;
      c->state = TcpState::LastAck;
      ckpt_touch(*c);
      tcp_output(*c);
      return true;
    default:
      return true;  // already closing
  }
}

void TcpEngine::abort(SockId s) {
  Conn* c = conn_for(s);
  if (c == nullptr) {
    embryos_.erase(s);
    close(s);
    return;
  }
  send_rst(c->local, c->peer, c->lport, c->pport, c->snd_nxt, 0, false);
  destroy_conn(s, false);
}

TcpState TcpEngine::state(SockId s) const {
  const Conn* c = conn_for(s);
  if (c != nullptr) return c->state;
  if (listeners_.count(s)) return TcpState::Listen;
  if (embryos_.count(s)) return TcpState::Closed;
  return TcpState::Closed;
}

std::optional<TcpEngine::TupleInfo> TcpEngine::tuple(SockId s) const {
  const Conn* c = conn_for(s);
  if (c == nullptr) return std::nullopt;
  return TupleInfo{c->local, c->lport, c->peer, c->pport};
}

// --- window helpers ---------------------------------------------------------------

std::uint32_t TcpEngine::rcv_space(const Conn& c) const {
  return c.rcvq_bytes >= opts_.rcvbuf_max ? 0
                                          : opts_.rcvbuf_max - c.rcvq_bytes;
}

std::uint16_t TcpEngine::window_field(const Conn& c) const {
  const std::uint32_t scaled = rcv_space(c) >> opts_.wscale;
  return static_cast<std::uint16_t>(std::min<std::uint32_t>(scaled, 65535));
}

// --- segment emission ---------------------------------------------------------------

void TcpEngine::send_segment(Conn& c, std::uint32_t seq, std::uint32_t len,
                             std::uint8_t flags, bool retransmission) {
  chan::RichPtr hdr = env_.buf_pool->alloc(kTcpHeaderLen);
  if (!hdr.valid()) return;  // pool exhausted; RTO recovers
  auto view = env_.buf_pool->write_view(hdr);
  ByteWriter w{view};
  TcpHeader h;
  h.src_port = c.lport;
  h.dst_port = c.pport;
  h.seq = seq;
  h.ack = (flags & tcpflag::kAck) ? c.rcv_nxt : 0;
  h.flags = flags;
  h.window = window_field(c);
  h.serialize(w);

  TxSeg seg;
  seg.l4_header = hdr;
  seg.src = c.local;
  seg.dst = c.peer;
  seg.protocol = kProtoTcp;
  seg.offload.tso = opts_.tso && len > opts_.mss;
  seg.offload.csum_offload = true;  // IP decides; flag travels with the frame
  seg.offload.mss = opts_.mss;

  // Gather payload refs [seq, seq+len) as sub-ranges of send chunks.
  if (len > 0) {
    std::uint32_t remaining = len;
    for (const SendChunk& sc : c.sndq) {
      if (remaining == 0) break;
      const std::uint32_t chunk_end = sc.seq + sc.chunk.length;
      const std::uint32_t want_start = seq + (len - remaining);
      if (seq_leq(chunk_end, want_start)) continue;  // fully before range
      if (seq_lt(want_start, sc.seq)) break;         // gap (cannot happen)
      const std::uint32_t skip = want_start - sc.seq;
      const std::uint32_t take =
          std::min(remaining, sc.chunk.length - skip);
      chan::RichPtr sub = sc.chunk;
      sub.offset += skip;
      sub.length = take;
      seg.payload.push_back(sub);
      remaining -= take;
    }
    assert(remaining == 0 && "send range not covered by sndq");
  }

  const std::uint64_t cookie = next_cookie_++;
  hdr_inflight_.emplace(cookie, hdr);
  ++stats_.segs_out;
  if (flags & tcpflag::kAck) ++stats_.acks_out;
  if (retransmission) {
    stats_.bytes_retx += len;
  } else {
    stats_.bytes_out += len;
  }

  // RTT sampling (Karn's rule: never sample retransmitted segments).
  if (!retransmission && len > 0 && !c.rtt_sampling) {
    c.rtt_sampling = true;
    c.rtt_seq = seq + len;
    c.rtt_sent_at = env_.clock->now();
  }
  c.segs_since_ack = 0;
  if (c.ack_timer) {
    env_.timers->cancel(c.ack_timer);
    c.ack_timer = 0;
  }
  env_.output(std::move(seg), cookie);
}

void TcpEngine::send_ack(Conn& c) {
  send_segment(c, c.snd_nxt, 0, tcpflag::kAck, false);
}

void TcpEngine::send_rst(Ipv4Addr src, Ipv4Addr dst, std::uint16_t sport,
                         std::uint16_t dport, std::uint32_t seq,
                         std::uint32_t ack, bool with_ack) {
  chan::RichPtr hdr = env_.buf_pool->alloc(kTcpHeaderLen);
  if (!hdr.valid()) return;
  auto view = env_.buf_pool->write_view(hdr);
  ByteWriter w{view};
  TcpHeader h;
  h.src_port = sport;
  h.dst_port = dport;
  h.seq = seq;
  h.ack = ack;
  h.flags = static_cast<std::uint8_t>(tcpflag::kRst |
                                      (with_ack ? tcpflag::kAck : 0));
  h.window = 0;
  h.serialize(w);

  TxSeg seg;
  seg.l4_header = hdr;
  seg.src = src;
  seg.dst = dst;
  seg.protocol = kProtoTcp;
  const std::uint64_t cookie = next_cookie_++;
  hdr_inflight_.emplace(cookie, hdr);
  ++stats_.resets_out;
  ++stats_.segs_out;
  env_.output(std::move(seg), cookie);
}

void TcpEngine::seg_done(std::uint64_t cookie, bool sent) {
  (void)sent;  // data loss is repaired by retransmission
  auto it = hdr_inflight_.find(cookie);
  if (it == hdr_inflight_.end()) return;  // stale (pre-crash) completion
  env_.buf_pool->release(it->second);
  hdr_inflight_.erase(it);
}

void TcpEngine::on_ip_restart() {
  // Completions for in-flight headers will never arrive: free them all.
  for (auto& [cookie, hdr] : hdr_inflight_) env_.buf_pool->release(hdr);
  hdr_inflight_.clear();
  // Resubmit: anything not ACKed may or may not have reached the wire.  We
  // prefer duplicates over RTO stalls (Section V-D "IP"): go back to
  // snd_una and retransmit immediately.
  for (auto& [sock, c] : conns_) {
    if (c.state != TcpState::Established && c.state != TcpState::FinWait1 &&
        c.state != TcpState::CloseWait && c.state != TcpState::LastAck)
      continue;
    if (seq_lt(c.snd_una, c.snd_nxt)) {
      c.snd_nxt = c.snd_una;
      c.rtt_sampling = false;
      tcp_output(c);
      arm_rto(c);
    }
  }
}

void TcpEngine::on_path_restored() {
  for (auto& [sock, c] : conns_) {
    if (c.state != TcpState::Established && c.state != TcpState::FinWait1 &&
        c.state != TcpState::CloseWait && c.state != TcpState::LastAck)
      continue;
    if (!seq_lt(c.snd_una, c.snd_nxt)) continue;
    c.rto = opts_.rto_initial;
    c.snd_nxt = c.snd_una;
    c.in_recovery = false;
    c.dup_acks = 0;
    c.rtt_sampling = false;
    tcp_output(c);
    arm_rto(c);
  }
}

// --- output engine -----------------------------------------------------------------

void TcpEngine::tcp_output(Conn& c) {
  if (c.state != TcpState::Established && c.state != TcpState::CloseWait &&
      c.state != TcpState::FinWait1 && c.state != TcpState::LastAck &&
      c.state != TcpState::Closing)
    return;

  const std::uint32_t fin_seq = c.snd_buf_end;  // FIN sits after the stream
  // Rate-based controllers pace data segments: a segment may not leave
  // before pace_next; the pacing timer resumes this function at that
  // instant.  Loss-based modules return 0 and skip all of this.
  const std::uint64_t pace_rate = c.cc != nullptr ? c.cc->pacing_rate() : 0;
  const sim::Time now = env_.clock->now();
  bool sent_any = false;
  for (;;) {
    const std::uint32_t wnd = std::min(c.cwnd, c.snd_wnd);
    const std::uint32_t inflight = flight_size(c);
    if (inflight >= wnd) break;
    const std::uint32_t wnd_avail = wnd - inflight;

    // Bytes of queued payload not yet sent.
    const std::uint32_t unsent =
        seq_lt(c.snd_nxt, fin_seq) ? fin_seq - c.snd_nxt : 0;
    const std::uint32_t max_seg =
        opts_.tso ? opts_.tso_max_payload : opts_.mss;
    const std::uint32_t len =
        std::min({unsent, wnd_avail, max_seg});

    const bool send_fin = c.fin_queued && !seq_lt(c.snd_nxt + len, fin_seq) &&
                          seq_leq(c.snd_nxt, fin_seq);
    if (len == 0 && !send_fin) break;
    if (pace_rate > 0 && len > 0 && c.pace_next > now) {
      if (c.pace_timer == 0) {
        ++stats_.pacing_delays;
        const SockId sock = c.sock;
        c.pace_timer =
            env_.timers->schedule(c.pace_next - now, [this, sock] {
              Conn* pc = conn_for(sock);
              if (pc == nullptr) return;
              pc->pace_timer = 0;
              tcp_output(*pc);
            });
      }
      break;
    }
    // Anything below the high-water mark has been on the wire before.
    const bool retx = seq_lt(c.snd_nxt, c.high_water);

    std::uint8_t flags = tcpflag::kAck;
    if (len > 0) flags |= tcpflag::kPsh;
    if (send_fin) flags |= tcpflag::kFin;
    send_segment(c, c.snd_nxt, len, flags, retx);
    c.snd_nxt += len + (send_fin ? 1 : 0);
    if (seq_lt(c.high_water, c.snd_nxt)) c.high_water = c.snd_nxt;
    if (len > 0) {
      if (pace_rate > 0) {
        const sim::Time gap = std::max<sim::Time>(
            1, static_cast<sim::Time>(static_cast<std::uint64_t>(len) *
                                      sim::kSecond / pace_rate));
        c.pace_next = std::max(c.pace_next, now) + gap;
      }
      c.cc->on_sent(len, flight_size(c), now);
    }
    sent_any = true;
    if (send_fin) break;
  }
  if (sent_any && c.rto_timer == 0 && seq_lt(c.snd_una, c.snd_nxt))
    arm_rto(c);
}

// --- timers ------------------------------------------------------------------------

void TcpEngine::arm_rto(Conn& c) {
  cancel_rto(c);
  const SockId sock = c.sock;
  c.rto_timer = env_.timers->schedule(c.rto, [this, sock] { on_rto(sock); });
}

void TcpEngine::cancel_rto(Conn& c) {
  if (c.rto_timer) {
    env_.timers->cancel(c.rto_timer);
    c.rto_timer = 0;
  }
}

void TcpEngine::on_rto(SockId sock) {
  Conn* c = conn_for(sock);
  if (c == nullptr) return;
  c->rto_timer = 0;

  if (c->state == TcpState::SynSent || c->state == TcpState::SynRcvd) {
    if (++c->syn_attempts > opts_.syn_retries) {
      destroy_conn(sock, true);
      return;
    }
    const std::uint8_t flags =
        c->state == TcpState::SynSent
            ? tcpflag::kSyn
            : static_cast<std::uint8_t>(tcpflag::kSyn | tcpflag::kAck);
    send_segment(*c, c->iss, 0, flags, true);
    c->rto = std::min(c->rto * 2, opts_.rto_max);
    arm_rto(*c);
    return;
  }
  if (seq_leq(c->snd_nxt, c->snd_una) && !c->fin_queued) return;

  ++stats_.rtos;
  // Timeout response is the module's call (Reno collapses to one segment;
  // BBR keeps its model).  Flight is sampled before the go-back-N rewind.
  c->cc->on_rto(flight_size(*c), env_.clock->now());
  sync_cc(*c);
  c->snd_nxt = c->snd_una;
  c->dup_acks = 0;
  c->in_recovery = false;
  c->rtt_sampling = false;
  c->rto = std::min(c->rto * 2, opts_.rto_max);
  tcp_output(*c);
  arm_rto(*c);
}

void TcpEngine::schedule_ack(Conn& c) {
  ++c.segs_since_ack;
  if (c.segs_since_ack >= 2) {
    send_ack(c);
    return;
  }
  if (c.ack_timer == 0) {
    const SockId sock = c.sock;
    c.ack_timer = env_.timers->schedule(opts_.delayed_ack, [this, sock] {
      Conn* cc = conn_for(sock);
      if (cc == nullptr) return;
      cc->ack_timer = 0;
      if (cc->segs_since_ack > 0) send_ack(*cc);
    });
  }
}

// --- ACK processing -----------------------------------------------------------------

void TcpEngine::process_ack(Conn& c, const TcpHeader& h) {
  const std::uint32_t ack = h.ack;
  const sim::Time now = env_.clock->now();
  // Update the peer's advertised window (scaled; see DESIGN.md).
  c.snd_wnd = static_cast<std::uint32_t>(h.window) << opts_.wscale;

  // Accept ACKs up to the high-water mark: after an RTO rewound snd_nxt,
  // ACKs for data sent before the rewind are still valid.
  if (seq_lt(c.snd_una, ack) && seq_leq(ack, c.high_water)) {
    const std::uint32_t acked = ack - c.snd_una;
    c.snd_una = ack;
    if (seq_lt(c.snd_nxt, ack)) c.snd_nxt = ack;

    // RTT sample (Jacobson/Karn).
    if (c.rtt_sampling && seq_leq(c.rtt_seq, ack)) {
      const sim::Time m = now - c.rtt_sent_at;
      if (c.srtt == 0) {
        c.srtt = m;
        c.rttvar = m / 2;
      } else {
        const sim::Time err = m > c.srtt ? m - c.srtt : c.srtt - m;
        c.rttvar = (3 * c.rttvar + err) / 4;
        c.srtt = (7 * c.srtt + m) / 8;
      }
      c.rto = std::clamp(c.srtt + 4 * c.rttvar, opts_.rto_min, opts_.rto_max);
      c.rtt_sampling = false;
      c.cc->on_rtt_sample(m, now);
    }

    // Congestion control: the engine keeps the NewReno recovery machinery
    // (RFC 6582 — partial ACKs during fast recovery retransmit the next
    // hole immediately instead of waiting for an RTO); the window response
    // to each event is the module's.
    if (c.in_recovery) {
      if (seq_lt(ack, c.recover)) {
        // Partial ACK: retransmit the segment at the new snd_una.
        const bool fin_at_una = c.fin_queued && ack == c.snd_buf_end;
        if (fin_at_una) {
          send_segment(c, ack, 0,
                       static_cast<std::uint8_t>(tcpflag::kAck |
                                                 tcpflag::kFin),
                       true);
        } else if (seq_lt(ack, c.snd_buf_end)) {
          // Fill up to two holes per partial ACK: without SACK this is the
          // only lever against long loss runs (TSO bursts can overrun a
          // receiver ring and punch hundreds of holes).
          std::uint32_t at = ack;
          for (int k = 0; k < 2 && seq_lt(at, c.snd_buf_end); ++k) {
            const std::uint32_t n =
                std::min<std::uint32_t>(opts_.mss, c.snd_buf_end - at);
            send_segment(
                c, at, n,
                static_cast<std::uint8_t>(tcpflag::kAck | tcpflag::kPsh),
                true);
            at += n;
          }
        }
        c.cc->on_partial_ack(acked, now);
        sync_cc(c);
        arm_rto(c);
      } else {
        c.in_recovery = false;
        c.cc->on_exit_recovery(now);
        sync_cc(c);
        c.dup_acks = 0;
      }
    } else {
      c.cc->on_ack(acked, flight_size(c), now);
      sync_cc(c);
      c.dup_acks = 0;
    }

    // Drop fully-ACKed chunks; their payload is finally freed (Section V-C:
    // the owner frees, and only when nobody needs the bytes for retransmit).
    while (!c.sndq.empty()) {
      const SendChunk& front = c.sndq.front();
      if (!seq_leq(front.seq + front.chunk.length, ack)) break;
      c.sndq_bytes -= front.chunk.length;
      if (ckpt_on(c)) env_.ckpt->ckpt_sndq_pop(c.sock, front.chunk);
      release_payload(front.chunk);
      c.sndq.pop_front();
    }

    if (seq_leq(c.snd_nxt, c.snd_una)) {
      cancel_rto(c);
    } else {
      arm_rto(c);
    }

    if (c.was_send_blocked && send_space(c.sock) > 0) {
      c.was_send_blocked = false;
      notify(c.sock, TcpEvent::Writable);
    }
  } else if (ack == c.snd_una && seq_lt(c.snd_una, c.snd_nxt)) {
    // Duplicate ACK.
    ++stats_.dup_acks_in;
    ++c.dup_acks;
    if (!c.in_recovery && c.dup_acks == 3) {
      ++stats_.fast_retransmits;
      c.in_recovery = true;
      c.recover = c.snd_nxt;
      c.cc->on_enter_recovery(flight_size(c), now);
      sync_cc(c);
      const std::uint32_t resend =
          std::min<std::uint32_t>(opts_.mss, c.snd_nxt - c.snd_una);
      // The retransmitted range may include the FIN.
      const bool fin_at_una = c.fin_queued && c.snd_una == c.snd_buf_end;
      if (fin_at_una) {
        send_segment(c, c.snd_una, 0,
                     static_cast<std::uint8_t>(tcpflag::kAck | tcpflag::kFin),
                     true);
      } else if (resend > 0) {
        send_segment(c, c.snd_una, std::min(resend, c.snd_buf_end - c.snd_una),
                     static_cast<std::uint8_t>(tcpflag::kAck | tcpflag::kPsh),
                     true);
      }
      arm_rto(c);
    } else if (c.in_recovery) {
      c.cc->on_dup_ack(true, flight_size(c), now);
      sync_cc(c);
      tcp_output(c);
    }
  }
  ckpt_touch(c);
}

// --- input -------------------------------------------------------------------------

void TcpEngine::input(L4Packet&& pkt) {
  ++stats_.segs_in;
  auto bytes = env_.pools->read(pkt.frame);
  if (bytes.size() <
          static_cast<std::size_t>(pkt.l4_offset) + kTcpHeaderLen ||
      pkt.l4_length < kTcpHeaderLen) {
    env_.rx_done(pkt.frame);
    return;
  }
  ByteReader r{bytes.subspan(pkt.l4_offset, pkt.l4_length)};
  auto h = TcpHeader::parse(r);
  if (!h) {
    env_.rx_done(pkt.frame);
    return;
  }
  const std::uint16_t data_off =
      static_cast<std::uint16_t>(pkt.l4_offset + r.consumed());
  const std::uint16_t data_len =
      static_cast<std::uint16_t>(pkt.l4_length - r.consumed());

  Conn* c = conn_by_tuple(pkt.src, h->src_port, h->dst_port);
  if (c == nullptr) {
    // New connection?
    auto lp = listen_ports_.find(h->dst_port);
    if (lp != listen_ports_.end() && h->has(tcpflag::kSyn) &&
        !h->has(tcpflag::kAck)) {
      Listener& l = listeners_[lp->second];
      if (static_cast<int>(l.acceptq.size()) >= l.backlog) {
        env_.rx_done(pkt.frame);
        return;  // silently drop; peer retries
      }
      const SockId child = next_sock_++;
      Conn nc;
      nc.sock = child;
      nc.state = TcpState::SynRcvd;
      nc.local = l.addr.is_zero() ? pkt.dst : l.addr;
      nc.lport = l.port;
      nc.peer = pkt.src;
      nc.pport = h->src_port;
      nc.irs = h->seq;
      nc.rcv_nxt = h->seq + 1;
      nc.iss = next_isn();
      nc.snd_una = nc.iss;
      nc.snd_nxt = nc.iss + 1;
      nc.snd_buf_end = nc.iss + 1;
      nc.high_water = nc.iss + 1;
      nc.cc = make_cc(l.port, h->src_port);
      sync_cc(nc);
      nc.rto = opts_.rto_initial;
      nc.snd_wnd = static_cast<std::uint32_t>(h->window) << opts_.wscale;
      nc.parent_listener = l.sock;
      conns_.emplace(child, std::move(nc));
      by_tuple_[ConnKey{pkt.src.value, h->src_port, h->dst_port}] = child;
      Conn& ref = conns_[child];
      send_segment(ref, ref.iss, 0,
                   static_cast<std::uint8_t>(tcpflag::kSyn | tcpflag::kAck),
                   false);
      ref.syn_attempts = 1;
      arm_rto(ref);
    } else if (!h->has(tcpflag::kRst)) {
      // No socket: refuse.
      if (h->has(tcpflag::kAck)) {
        send_rst(pkt.dst, pkt.src, h->dst_port, h->src_port, h->ack, 0,
                 false);
      } else {
        send_rst(pkt.dst, pkt.src, h->dst_port, h->src_port, 0,
                 h->seq + data_len + (h->has(tcpflag::kSyn) ? 1 : 0), true);
      }
    }
    env_.rx_done(pkt.frame);
    return;
  }

  // --- existing connection ---
  if (h->has(tcpflag::kRst)) {
    const bool in_window =
        seq_leq(c->rcv_nxt, h->seq) || c->state == TcpState::SynSent;
    env_.rx_done(pkt.frame);
    if (in_window) destroy_conn(c->sock, true);
    return;
  }

  switch (c->state) {
    case TcpState::SynSent:
      if (h->has(tcpflag::kSyn) && h->has(tcpflag::kAck) &&
          h->ack == c->iss + 1) {
        c->irs = h->seq;
        c->rcv_nxt = h->seq + 1;
        c->snd_una = h->ack;
        c->snd_wnd = static_cast<std::uint32_t>(h->window) << opts_.wscale;
        c->state = TcpState::Established;
        c->rto = opts_.rto_initial;
        cancel_rto(*c);
        ++stats_.conns_established;
        ckpt_establish(*c, /*accept_pending=*/false);
        send_ack(*c);
        notify(c->sock, TcpEvent::Connected);
        tcp_output(*c);
      }
      env_.rx_done(pkt.frame);
      return;

    case TcpState::SynRcvd:
      if (h->has(tcpflag::kSyn) && !h->has(tcpflag::kAck)) {
        // Retransmitted SYN: re-answer.
        send_segment(*c, c->iss, 0,
                     static_cast<std::uint8_t>(tcpflag::kSyn | tcpflag::kAck),
                     true);
        env_.rx_done(pkt.frame);
        return;
      }
      if (h->has(tcpflag::kAck) && h->ack == c->iss + 1) {
        c->snd_una = h->ack;
        c->snd_wnd = static_cast<std::uint32_t>(h->window) << opts_.wscale;
        c->state = TcpState::Established;
        c->rto = opts_.rto_initial;
        cancel_rto(*c);
        ++stats_.conns_established;
        ckpt_establish(*c, /*accept_pending=*/true);
        Listener* l = nullptr;
        auto lit = listeners_.find(c->parent_listener);
        if (lit != listeners_.end()) l = &lit->second;
        if (l != nullptr) {
          l->acceptq.push_back(c->sock);
          notify(l->sock, TcpEvent::AcceptReady);
        }
        // Fall through into established processing for piggybacked data.
        break;
      }
      env_.rx_done(pkt.frame);
      return;

    default:
      break;
  }

  // ACK handling for synchronized states.
  if (h->has(tcpflag::kAck)) {
    process_ack(*c, *h);

    // Did our FIN get ACKed?
    const bool fin_acked =
        c->fin_queued && c->snd_una == c->snd_buf_end + 1;
    if (fin_acked) {
      if (c->state == TcpState::FinWait1) {
        c->state = TcpState::FinWait2;
        ckpt_touch(*c);
      } else if (c->state == TcpState::Closing) {
        enter_time_wait(*c);
      } else if (c->state == TcpState::LastAck) {
        env_.rx_done(pkt.frame);
        destroy_conn(c->sock, false);
        return;
      }
    }
  }

  // Data acceptance (in-order, or parked in the reassembly queue).
  bool frame_retained = false;
  if (data_len > 0) {
    frame_retained = accept_data(*c, pkt, *h, data_off, data_len);
  }

  // ACKs clock the sender: freed window and cwnd growth admit new segments.
  if (h->has(tcpflag::kAck)) tcp_output(*c);

  // FIN processing (only when all data up to the FIN has arrived).
  if (h->has(tcpflag::kFin) && h->seq + data_len == c->rcv_nxt &&
      !c->peer_fin) {
    c->peer_fin = true;
    c->rcv_nxt += 1;
    send_ack(*c);
    switch (c->state) {
      case TcpState::Established:
        c->state = TcpState::CloseWait;
        notify(c->sock, TcpEvent::PeerClosed);
        break;
      case TcpState::FinWait1:
        c->state = TcpState::Closing;
        notify(c->sock, TcpEvent::PeerClosed);
        break;
      case TcpState::FinWait2:
        notify(c->sock, TcpEvent::PeerClosed);
        enter_time_wait(*c);
        break;
      default:
        break;
    }
    if (c->state != TcpState::TimeWait) ckpt_touch(*c);
  }

  if (!frame_retained) env_.rx_done(pkt.frame);
}

void TcpEngine::input_agg(std::vector<L4Packet>&& segs) {
  if (segs.empty()) return;

  // Validate the fast-path preconditions: an established connection, every
  // member a plain in-window data segment, seq-consecutive, starting
  // exactly at rcv_nxt, and the whole aggregate fitting the receive
  // window.  IP only merges same-flow consecutive segments, but the
  // connection-level facts (rcv_nxt, window, state) live here.
  struct Parsed {
    TcpHeader h;
    std::uint16_t data_off = 0;
    std::uint16_t data_len = 0;
  };
  std::vector<Parsed> parsed;
  parsed.reserve(segs.size());
  Conn* c = nullptr;
  std::uint32_t total = 0;
  bool fast = true;
  for (std::size_t i = 0; i < segs.size() && fast; ++i) {
    const L4Packet& pkt = segs[i];
    auto bytes = env_.pools->read(pkt.frame);
    if (bytes.size() <
            static_cast<std::size_t>(pkt.l4_offset) + kTcpHeaderLen ||
        pkt.l4_length < kTcpHeaderLen) {
      fast = false;
      break;
    }
    ByteReader r{bytes.subspan(pkt.l4_offset, pkt.l4_length)};
    auto h = TcpHeader::parse(r);
    if (!h) {
      fast = false;
      break;
    }
    Parsed p;
    p.h = *h;
    p.data_off = static_cast<std::uint16_t>(pkt.l4_offset + r.consumed());
    p.data_len = static_cast<std::uint16_t>(pkt.l4_length - r.consumed());
    if (p.data_len == 0 ||
        (p.h.flags & ~(tcpflag::kAck | tcpflag::kPsh)) != 0) {
      fast = false;
      break;
    }
    if (i == 0) {
      c = conn_by_tuple(segs[0].src, p.h.src_port, p.h.dst_port);
      if (c == nullptr || c->state != TcpState::Established || c->peer_fin ||
          p.h.seq != c->rcv_nxt) {
        fast = false;
        break;
      }
    } else if (p.h.seq != parsed.back().h.seq + parsed.back().data_len) {
      fast = false;
      break;
    }
    total += p.data_len;
    parsed.push_back(p);
  }
  if (fast && total > rcv_space(*c)) fast = false;

  if (!fast) {
    // Per-segment fallback: identical semantics to a non-aggregated burst.
    for (auto& seg : segs) input(std::move(seg));
    return;
  }

  stats_.segs_in += segs.size();
  ++stats_.aggs_in;
  stats_.agg_frames_in += segs.size();

  // The last header carries the freshest cumulative ACK and window.
  process_ack(*c, parsed.back().h);
  if (c->state != TcpState::Established) {
    // process_ack never changes Established by itself, but be defensive:
    // fall back rather than queue data on a torn-down connection.
    for (auto& seg : segs) input(std::move(seg));
    return;
  }

  const bool was_empty = c->rcvq_bytes == 0;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    RecvChunk rc;
    rc.frame = segs[i].frame;
    rc.offset = parsed[i].data_off;
    rc.len = parsed[i].data_len;
    c->rcvq.push_back(rc);
  }
  c->rcvq_bytes += total;
  c->rcv_nxt += total;
  stats_.bytes_in += total;
  if (ckpt_on(*c)) {
    for (std::size_t i = 0; i < segs.size(); ++i) {
      env_.ckpt->ckpt_rcvq_push(c->sock, segs[i].frame, parsed[i].data_off,
                                parsed[i].data_len);
    }
    ckpt_touch(*c);
  }
  if (!c->ooo.empty()) flush_ooo(*c);

  // One stretch ACK covers the whole aggregate — the receive-side mirror of
  // TSO's one-header-per-superframe.
  send_ack(*c);
  tcp_output(*c);
  if (was_empty && total > 0) notify(c->sock, TcpEvent::Readable);
}

bool TcpEngine::accept_data(Conn& c, const L4Packet& pkt, const TcpHeader& h,
                            std::uint16_t data_off, std::uint16_t data_len) {
  std::uint32_t seq = h.seq;
  std::uint16_t off = data_off;
  std::uint16_t len = data_len;

  // Trim bytes we already have (retransmitted overlap).
  if (seq_lt(seq, c.rcv_nxt)) {
    const std::uint32_t dup = c.rcv_nxt - seq;
    if (dup >= len) {
      send_ack(c);  // pure duplicate
      return false;
    }
    seq += dup;
    off = static_cast<std::uint16_t>(off + dup);
    len = static_cast<std::uint16_t>(len - dup);
  }

  if (seq != c.rcv_nxt) {
    // Out of order.  With a reassembly budget (ooo_queue_segs), buffer the
    // displaced segment so a reordered wire does not masquerade as loss;
    // the dup ACK below still tells the sender about the hole.  Without a
    // budget we keep the classic simple receiver: drop and dup-ACK.
    if (opts_.ooo_queue_segs > 0 && seq_lt(c.rcv_nxt, seq) &&
        c.ooo.size() < opts_.ooo_queue_segs &&
        seq + len - c.rcv_nxt <= rcv_space(c)) {
      RecvChunk rc;
      rc.frame = pkt.frame;
      rc.offset = off;
      rc.len = len;
      const bool inserted = c.ooo.try_emplace(seq, rc).second;
      if (inserted) {
        ++stats_.ooo_buffered;
        send_ack(c);  // dup ACK: the hole is still open
        return true;
      }
    }
    ++stats_.ooo_dropped;
    send_ack(c);
    return false;
  }
  if (len > rcv_space(c)) {
    // Window overflow: drop; the advertised window should prevent this.
    send_ack(c);
    return false;
  }

  RecvChunk rc;
  rc.frame = pkt.frame;
  rc.offset = off;
  rc.len = len;
  c.rcvq.push_back(rc);
  const bool was_empty = c.rcvq_bytes == 0;
  c.rcvq_bytes += len;
  c.rcv_nxt += len;
  stats_.bytes_in += len;
  if (ckpt_on(c)) {
    env_.ckpt->ckpt_rcvq_push(c.sock, rc.frame, rc.offset, rc.len);
    ckpt_touch(c);
  }
  if (!c.ooo.empty() && flush_ooo(c)) {
    // The cumulative ACK jumped past a filled hole: tell the sender now
    // rather than after a delayed-ACK interval.
    send_ack(c);
  } else {
    schedule_ack(c);
  }
  if (was_empty) notify(c.sock, TcpEvent::Readable);
  return true;
}

bool TcpEngine::flush_ooo(Conn& c) {
  bool any = false;
  while (!c.ooo.empty()) {
    auto it = c.ooo.begin();
    if (seq_lt(c.rcv_nxt, it->first)) break;  // still a hole
    RecvChunk rc = it->second;
    std::uint32_t seq = it->first;
    c.ooo.erase(it);
    // Trim overlap with bytes that arrived (e.g. retransmitted) in order.
    if (seq_lt(seq, c.rcv_nxt)) {
      const std::uint32_t dup = c.rcv_nxt - seq;
      if (dup >= rc.len) {
        env_.rx_done(rc.frame);
        continue;
      }
      rc.offset = static_cast<std::uint16_t>(rc.offset + dup);
      rc.len = static_cast<std::uint16_t>(rc.len - dup);
    }
    if (rc.len > rcv_space(c)) {
      // Window shrank under the buffered segment; the peer retransmits.
      env_.rx_done(rc.frame);
      continue;
    }
    c.rcvq.push_back(rc);
    c.rcvq_bytes += rc.len;
    c.rcv_nxt += rc.len;
    stats_.bytes_in += rc.len;
    if (ckpt_on(c)) {
      env_.ckpt->ckpt_rcvq_push(c.sock, rc.frame, rc.offset, rc.len);
    }
    any = true;
  }
  if (any && ckpt_on(c)) ckpt_touch(c);
  return any;
}

// --- teardown ----------------------------------------------------------------------

void TcpEngine::enter_time_wait(Conn& c) {
  c.state = TcpState::TimeWait;
  if (ckpt_on(c)) {
    // TIME_WAIT has nothing left to recover: drop the checkpoint now (the
    // writer returns every ledger loan; the engine keeps the references and
    // releases them when the timer fires, as it always did).
    env_.ckpt->ckpt_destroyed(c.sock);
    c.ckpt = false;
  }
  cancel_rto(c);
  const SockId sock = c.sock;
  if (c.timewait_timer) env_.timers->cancel(c.timewait_timer);
  c.timewait_timer = env_.timers->schedule(
      opts_.time_wait, [this, sock] { destroy_conn(sock, false); });
}

void TcpEngine::destroy_conn(SockId s, bool notify_reset) {
  auto it = conns_.find(s);
  if (it == conns_.end()) return;
  Conn& c = it->second;
  if (ckpt_on(c)) {
    // The writer returns every ledger loan and drops the page/journal
    // record; the engine then releases its queue references below, exactly
    // like an un-checkpointed teardown.
    env_.ckpt->ckpt_destroyed(s);
    c.ckpt = false;
  }
  if (c.rto_timer) env_.timers->cancel(c.rto_timer);
  if (c.ack_timer) env_.timers->cancel(c.ack_timer);
  if (c.timewait_timer) env_.timers->cancel(c.timewait_timer);
  cancel_pace(c);
  for (auto& sc : c.sndq) release_payload(sc.chunk);
  for (auto& rc : c.rcvq) env_.rx_done(rc.frame);
  for (auto& [seq, rc] : c.ooo) env_.rx_done(rc.frame);
  by_tuple_.erase(ConnKey{c.peer.value, c.pport, c.lport});
  const bool was_established = c.state == TcpState::Established ||
                               c.state == TcpState::CloseWait ||
                               c.state == TcpState::FinWait1 ||
                               c.state == TcpState::FinWait2;
  conns_.erase(it);
  if (notify_reset) {
    notify(s, TcpEvent::Reset);
  } else if (was_established) {
    notify(s, TcpEvent::Closed);
  }
}

// --- recovery ----------------------------------------------------------------------

std::vector<TcpEngine::ListenRec> TcpEngine::listeners() const {
  std::vector<ListenRec> out;
  out.reserve(listeners_.size());
  for (const auto& [sock, l] : listeners_)
    out.push_back(ListenRec{sock, l.addr, l.port, l.backlog});
  return out;
}

void TcpEngine::restore_listener(const ListenRec& rec) {
  auto it = listeners_.find(rec.id);
  if (it != listeners_.end()) {
    // Idempotent upsert: a re-replicated record (sibling re-seed after a
    // restart) must not wipe the live accept queue of connections already
    // steered here.
    if (it->second.port != rec.port) {
      auto pit = listen_ports_.find(it->second.port);
      if (pit != listen_ports_.end() && pit->second == rec.id)
        listen_ports_.erase(pit);
    }
    it->second.addr = rec.addr;
    it->second.port = rec.port;
    it->second.backlog = rec.backlog;
  } else {
    Listener l;
    l.sock = rec.id;
    l.addr = rec.addr;
    l.port = rec.port;
    l.backlog = rec.backlog;
    listeners_[rec.id] = std::move(l);
  }
  // First owner wins on a replicated port collision: a replica record must
  // not unhook a different live listener from the port it serves.
  listen_ports_.try_emplace(rec.port, rec.id);
  // A replicated listener carries a sibling shard's id: it must not drag
  // our allocation counter into the foreign range.
  if (own_sock(rec.id)) next_sock_ = std::max(next_sock_, rec.id + 1);
}

std::vector<std::byte> TcpEngine::serialize_listeners(
    const std::vector<ListenRec>& recs) {
  std::vector<std::byte> out(4 + recs.size() * 12);
  std::uint32_t n = static_cast<std::uint32_t>(recs.size());
  std::memcpy(out.data(), &n, 4);
  std::size_t off = 4;
  for (const auto& rec : recs) {
    std::memcpy(out.data() + off + 0, &rec.id, 4);
    std::memcpy(out.data() + off + 4, &rec.addr.value, 4);
    std::memcpy(out.data() + off + 8, &rec.port, 2);
    std::uint16_t backlog = static_cast<std::uint16_t>(rec.backlog);
    std::memcpy(out.data() + off + 10, &backlog, 2);
    off += 12;
  }
  return out;
}

std::optional<std::vector<TcpEngine::ListenRec>> TcpEngine::parse_listeners(
    std::span<const std::byte> data) {
  if (data.size() < 4) return std::nullopt;
  std::uint32_t n;
  std::memcpy(&n, data.data(), 4);
  if (data.size() < 4 + static_cast<std::size_t>(n) * 12) return std::nullopt;
  std::vector<ListenRec> out;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::byte* p = data.data() + 4 + i * 12;
    ListenRec rec;
    std::memcpy(&rec.id, p + 0, 4);
    std::memcpy(&rec.addr.value, p + 4, 4);
    std::memcpy(&rec.port, p + 8, 2);
    std::uint16_t backlog;
    std::memcpy(&backlog, p + 10, 2);
    rec.backlog = backlog;
    out.push_back(rec);
  }
  return out;
}

bool TcpEngine::restore_conn(const RestoredConn& rec) {
  if (rec.sock == 0 || conns_.count(rec.sock) != 0) return false;
  switch (rec.state) {
    case TcpState::Established:
    case TcpState::CloseWait:
    case TcpState::FinWait1:
    case TcpState::FinWait2:
    case TcpState::Closing:
    case TcpState::LastAck:
      break;
    default:
      return false;  // handshake/TIME_WAIT states are not checkpointed
  }
  if (by_tuple_.count(ConnKey{rec.peer.value, rec.pport, rec.lport}) != 0)
    return false;

  Conn c;
  c.sock = rec.sock;
  c.state = rec.state;
  c.local = rec.local;
  c.lport = rec.lport;
  c.peer = rec.peer;
  c.pport = rec.pport;
  c.iss = rec.snd_una;
  c.snd_una = rec.snd_una;
  c.snd_nxt = rec.snd_una;  // go-back-N: resync retransmits from here
  c.snd_wnd = std::max<std::uint32_t>(rec.snd_wnd, opts_.mss);
  // Congestion state: prefer the checkpointed CC blob so the restored
  // connection resumes at its learned rate; fall back to a fresh module
  // (conservative slow start) for v1 records or a mismatched algorithm.
  bool cc_restored = false;
  if (rec.cc.algo != 0 && rec.cc.len != 0 && rec.cc.len <= cc::kCcBlobMax) {
    auto mod = cc::make(static_cast<cc::Algo>(rec.cc.algo), cc_config());
    if (mod != nullptr &&
        mod->deserialize({reinterpret_cast<const std::byte*>(rec.cc.data),
                          rec.cc.len})) {
      c.cc = std::move(mod);
      cc_restored = true;
    }
  }
  if (!c.cc) c.cc = make_cc(rec.lport, rec.pport);
  sync_cc(c);
  if (cc_restored && rec.cc.rto > 0) {
    c.srtt = rec.cc.srtt;
    c.rttvar = rec.cc.rttvar;
    c.rto = std::clamp(rec.cc.rto, opts_.rto_min, opts_.rto_max);
  } else {
    c.rto = opts_.rto_initial;
  }
  c.fin_queued = rec.fin_queued;
  c.peer_fin = rec.peer_fin;
  c.irs = rec.rcv_nxt;
  c.rcv_nxt = rec.rcv_nxt;
  c.parent_listener = rec.parent_listener;
  c.ckpt = env_.ckpt != nullptr;

  std::uint32_t end = rec.snd_una;
  for (const auto& sc : rec.sndq) {
    c.sndq.push_back(SendChunk{sc.seq, sc.chunk});
    c.sndq_bytes += sc.chunk.length;
    end = sc.seq + sc.chunk.length;
  }
  c.snd_buf_end = end;  // a queued FIN sits right after the stream
  // Everything up to the old snd_nxt may have been on the wire; accepting
  // ACKs anywhere below the buffered end (+FIN) is always sound because the
  // peer can only ack bytes we actually sent.
  c.high_water = end + (c.fin_queued ? 1u : 0u);
  for (const auto& rc : rec.rcvq) {
    RecvChunk r;
    r.frame = rc.frame;
    r.offset = rc.offset;
    r.len = rc.len;
    r.consumed = rc.consumed;
    c.rcvq.push_back(r);
    c.rcvq_bytes += static_cast<std::uint32_t>(rc.len - rc.consumed);
  }

  conns_.emplace(rec.sock, std::move(c));
  by_tuple_[ConnKey{rec.peer.value, rec.pport, rec.lport}] = rec.sock;
  if (own_sock(rec.sock)) next_sock_ = std::max(next_sock_, rec.sock + 1);
  if (rec.accept_pending) {
    auto lit = listeners_.find(rec.parent_listener);
    if (lit != listeners_.end()) lit->second.acceptq.push_back(rec.sock);
  }
  ++stats_.conns_restored;
  pending_resync_.push_back(rec.sock);
  return true;
}

void TcpEngine::resync_restored() {
  auto socks = std::move(pending_resync_);
  pending_resync_.clear();
  for (SockId s : socks) {
    Conn* c = conn_for(s);
    if (c == nullptr) continue;
    // Announce our exact rcv_nxt and window.  The peer ignores the ack
    // number if it is old news; if the peer was blocked on a closed window
    // or waiting out an RTO, this unblocks it.
    send_ack(*c);
    // Retransmission from the last acked watermark (Section V-D spirit:
    // prefer duplicates over stalls).  Anything the peer already has is
    // trimmed as duplicate on its side.
    const std::uint32_t fin_extra = c->fin_queued ? 1u : 0u;
    if (seq_lt(c->snd_una, c->snd_buf_end + fin_extra)) {
      tcp_output(*c);
      if (c->rto_timer == 0) arm_rto(*c);
    }
    // Replay the readiness events the application would otherwise never see
    // again: a child still waiting to be accepted, queued received data,
    // and the (possibly spurious, always safe) write-space notification.
    if (c->parent_listener != 0) {
      auto lit = listeners_.find(c->parent_listener);
      if (lit != listeners_.end() &&
          std::find(lit->second.acceptq.begin(), lit->second.acceptq.end(),
                    s) != lit->second.acceptq.end()) {
        notify(lit->second.sock, TcpEvent::AcceptReady);
        continue;  // not yet owned by an app socket: no per-socket events
      }
    }
    if (c->rcvq_bytes > 0) notify(s, TcpEvent::Readable);
    notify(s, TcpEvent::Writable);
  }
}

std::string TcpEngine::debug(SockId s) const {
  const Conn* c = conn_for(s);
  if (c == nullptr) return "sock " + std::to_string(s) + ": no conn";
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "sock %u %s una=%u nxt=%u buf_end=%u hw=%u cwnd=%u ssthresh=%u "
      "rwnd=%u dup=%u rec=%d sndq=%zu(%u B) rcv_nxt=%u rcvq=%u B rto=%lldms "
      "timer=%llu",
      s, to_string(c->state), c->snd_una, c->snd_nxt, c->snd_buf_end,
      c->high_water, c->cwnd, c->ssthresh, c->snd_wnd, c->dup_acks,
      c->in_recovery ? 1 : 0, c->sndq.size(), c->sndq_bytes, c->rcv_nxt,
      c->rcvq_bytes, static_cast<long long>(c->rto / sim::kMillisecond),
      static_cast<unsigned long long>(c->rto_timer));
  return buf;
}

std::unique_ptr<cc::CongestionControl> TcpEngine::make_cc(
    std::uint16_t lport, std::uint16_t pport) const {
  for (const auto& [port, algo] : opts_.cc_by_port) {
    if (port == lport || port == pport) {
      if (auto mod = cc::make(algo, cc_config())) return mod;
    }
  }
  if (auto mod = cc::make(opts_.cc_algo, cc_config())) return mod;
  return cc::make(cc::Algo::kNewReno, cc_config());
}

std::optional<TcpEngine::CcInfo> TcpEngine::cc_info(SockId s) const {
  const Conn* c = conn_for(s);
  if (c == nullptr || c->cc == nullptr) return std::nullopt;
  CcInfo info;
  info.algo = c->cc->name();
  info.cwnd = c->cc->cwnd();
  info.ssthresh = c->cc->ssthresh();
  info.pacing_rate = c->cc->pacing_rate();
  return info;
}

std::uint64_t TcpEngine::cwnd_sum() const {
  std::uint64_t sum = 0;
  for (const auto& [sock, c] : conns_) {
    if (c.state == TcpState::Established || c.state == TcpState::CloseWait ||
        c.state == TcpState::FinWait1) {
      sum += c.cwnd;
    }
  }
  return sum;
}

std::vector<SockId> TcpEngine::connection_socks() const {
  std::vector<SockId> out;
  out.reserve(conns_.size());
  for (const auto& [sock, c] : conns_) out.push_back(sock);
  return out;
}

std::vector<PfStateKey> TcpEngine::connection_keys() const {
  std::vector<PfStateKey> out;
  for (const auto& [sock, c] : conns_) {
    if (c.state != TcpState::Established && c.state != TcpState::CloseWait &&
        c.state != TcpState::FinWait1 && c.state != TcpState::FinWait2)
      continue;
    out.push_back(PfStateKey{kProtoTcp, c.local, c.peer, c.lport, c.pport});
  }
  return out;
}

}  // namespace newtos::net
