#include "src/net/ip.h"

#include <cassert>
#include <cstring>

#include "src/net/checksum.h"
#include "src/net/gro.h"

namespace newtos::net {

// --- IpConfig (de)serialization: the recoverable state of Table I -------------

std::vector<std::byte> IpConfig::serialize() const {
  std::vector<std::byte> out;
  auto put32 = [&out](std::uint32_t v) {
    const auto* p = reinterpret_cast<const std::byte*>(&v);
    out.insert(out.end(), p, p + 4);
  };
  put32(static_cast<std::uint32_t>(interfaces.size()));
  for (const auto& i : interfaces) {
    put32(static_cast<std::uint32_t>(i.index));
    for (auto b : i.mac.bytes) out.push_back(std::byte{b});
    out.push_back(std::byte{0});  // pad
    out.push_back(std::byte{0});
    put32(i.addr.value);
    put32(i.subnet.network.value);
    put32(static_cast<std::uint32_t>(i.subnet.prefix_len));
    put32(i.mtu);
  }
  put32(static_cast<std::uint32_t>(routes.size()));
  for (const auto& r : routes) {
    put32(r.dest.network.value);
    put32(static_cast<std::uint32_t>(r.dest.prefix_len));
    put32(r.gateway.value);
    put32(static_cast<std::uint32_t>(r.ifindex));
  }
  return out;
}

std::optional<IpConfig> IpConfig::parse(std::span<const std::byte> data) {
  std::size_t off = 0;
  auto get32 = [&](std::uint32_t& v) {
    if (off + 4 > data.size()) return false;
    std::memcpy(&v, data.data() + off, 4);
    off += 4;
    return true;
  };
  IpConfig cfg;
  std::uint32_t n;
  if (!get32(n)) return std::nullopt;
  for (std::uint32_t k = 0; k < n; ++k) {
    Interface i;
    std::uint32_t v;
    if (!get32(v)) return std::nullopt;
    i.index = static_cast<int>(v);
    if (off + 8 > data.size()) return std::nullopt;
    for (auto& b : i.mac.bytes)
      b = std::to_integer<std::uint8_t>(data[off++]);
    off += 2;  // pad
    if (!get32(i.addr.value)) return std::nullopt;
    if (!get32(i.subnet.network.value)) return std::nullopt;
    if (!get32(v)) return std::nullopt;
    i.subnet.prefix_len = static_cast<int>(v);
    if (!get32(i.mtu)) return std::nullopt;
    cfg.interfaces.push_back(i);
  }
  if (!get32(n)) return std::nullopt;
  for (std::uint32_t k = 0; k < n; ++k) {
    Route r;
    std::uint32_t v;
    if (!get32(r.dest.network.value)) return std::nullopt;
    if (!get32(v)) return std::nullopt;
    r.dest.prefix_len = static_cast<int>(v);
    if (!get32(r.gateway.value)) return std::nullopt;
    if (!get32(v)) return std::nullopt;
    r.ifindex = static_cast<int>(v);
    cfg.routes.push_back(r);
  }
  return cfg;
}

// --- IpEngine -------------------------------------------------------------------

IpEngine::IpEngine(Env env, IpConfig cfg)
    : env_(std::move(env)),
      cfg_(std::move(cfg)),
      arp_(ArpEngine::Env{
          env_.clock, env_.timers,
          [this](int ifindex, const ArpPacket& pkt) {
            send_arp_frame(ifindex, pkt);
          },
          [this](int ifindex, Ipv4Addr ip, MacAddr mac) {
            arp_resolved(ifindex, ip, mac);
          }}) {}

const Interface* IpEngine::iface(int ifindex) const {
  for (const auto& i : cfg_.interfaces)
    if (i.index == ifindex) return &i;
  return nullptr;
}

std::optional<std::pair<int, Ipv4Addr>> IpEngine::route(Ipv4Addr dst) const {
  // On-link destinations first.
  for (const auto& i : cfg_.interfaces) {
    if (i.subnet.contains(dst)) return std::make_pair(i.index, dst);
  }
  // Longest-prefix match over the route table.
  const Route* best = nullptr;
  for (const auto& r : cfg_.routes) {
    if (!r.dest.contains(dst)) continue;
    if (best == nullptr || r.dest.prefix_len > best->dest.prefix_len) best = &r;
  }
  if (best == nullptr) return std::nullopt;
  const Ipv4Addr hop = best->gateway.is_zero() ? dst : best->gateway;
  return std::make_pair(best->ifindex, hop);
}

void IpEngine::finish_l4(std::uint64_t l4_cookie, bool sent) {
  (void)sent;
  if (l4_cookie >= kInternalCookieBase) {
    auto it = internal_inflight_.find(l4_cookie - kInternalCookieBase);
    if (it != internal_inflight_.end()) {
      env_.hdr_pool->release(it->second);
      internal_inflight_.erase(it);
    }
    return;
  }
  if (env_.seg_done) env_.seg_done(l4_cookie, sent);
}

void IpEngine::drop_seg(TxSeg&& seg, std::uint64_t l4_cookie) {
  (void)seg;  // refs are owned by L4's sndbuf; dropping here loses nothing
  finish_l4(l4_cookie, false);
}

void IpEngine::output(TxSeg&& seg, std::uint64_t l4_cookie) {
  ++stats_.tx_segs;
  auto hop = route(seg.dst);
  if (!hop) {
    ++stats_.dropped_no_route;
    drop_seg(std::move(seg), l4_cookie);
    return;
  }
  const auto [ifindex, next_hop] = *hop;

  if (env_.pf_check) {
    // Parse ports/flags from the L4 header for the filter.
    PfQuery q;
    q.dir = PfDir::Out;
    q.protocol = seg.protocol;
    q.src = seg.src;
    q.dst = seg.dst;
    auto hdr = env_.pools->read(seg.l4_header);
    if (seg.protocol == kProtoTcp || seg.protocol == kProtoUdp) {
      ByteReader r{hdr};
      q.sport = r.u16();
      q.dport = r.u16();
      if (seg.protocol == kProtoTcp && hdr.size() >= kTcpHeaderLen) {
        q.tcp_flags = std::to_integer<std::uint8_t>(hdr[13]);
      }
    }
    const std::uint64_t cookie = next_cookie_++;
    PendingPf pending;
    pending.query = q;
    pending.outbound = true;
    pending.seg = std::move(seg);
    pending.l4_cookie = l4_cookie;
    pending.ifindex = ifindex;
    // Remember the resolved hop in ip_hdr.dst (reused field).
    pending.ip_hdr.dst = next_hop;
    pf_pending_.emplace(cookie, std::move(pending));
    env_.pf_check(q, cookie);
    return;
  }
  continue_output(std::move(seg), l4_cookie, ifindex, next_hop);
}

void IpEngine::pf_verdict(std::uint64_t cookie, bool allow) {
  auto it = pf_pending_.find(cookie);
  if (it == pf_pending_.end()) return;  // stale verdict from before a crash
  PendingPf pending = std::move(it->second);
  pf_pending_.erase(it);

  if (pending.outbound) {
    if (!allow) {
      ++stats_.dropped_pf;
      drop_seg(std::move(pending.seg), pending.l4_cookie);
      return;
    }
    continue_output(std::move(pending.seg), pending.l4_cookie,
                    pending.ifindex, pending.ip_hdr.dst);
  } else if (pending.is_agg) {
    if (!allow) {
      drop_agg(std::move(pending.agg));
      return;
    }
    deliver_agg(std::move(pending.agg));
  } else {
    if (!allow) {
      ++stats_.dropped_pf;
      rx_done(pending.frame);
      return;
    }
    deliver_inbound(pending.ifindex, pending.frame, pending.ip_hdr,
                    pending.l4_offset, pending.l4_length);
  }
}

std::size_t IpEngine::resubmit_pf_pending() {
  std::size_t n = 0;
  for (auto& [cookie, pending] : pf_pending_) {
    env_.pf_check(pending.query, cookie);
    ++n;
  }
  return n;
}

void IpEngine::continue_output(TxSeg&& seg, std::uint64_t l4_cookie,
                               int ifindex, Ipv4Addr next_hop) {
  const Interface* ifp = iface(ifindex);
  if (ifp == nullptr) {
    drop_seg(std::move(seg), l4_cookie);
    return;
  }
  auto mac = arp_.lookup(ifindex, next_hop, ifp->addr, ifp->mac);
  if (!mac) {
    auto& q = arp_waiting_[next_hop.value];
    if (q.size() >= 64) {
      // Bounded queue: behave like a full channel, drop the oldest.
      ++stats_.dropped_arp_timeout;
      AwaitingArp old = std::move(q.front());
      q.pop_front();
      drop_seg(std::move(old.seg), old.l4_cookie);
    }
    q.push_back(AwaitingArp{std::move(seg), l4_cookie, ifindex});
    return;
  }
  transmit(std::move(seg), l4_cookie, ifindex, *mac);
}

void IpEngine::arp_resolved(int ifindex, Ipv4Addr ip, MacAddr mac) {
  (void)ifindex;
  auto it = arp_waiting_.find(ip.value);
  if (it == arp_waiting_.end()) return;
  std::deque<AwaitingArp> waiting = std::move(it->second);
  arp_waiting_.erase(it);
  for (auto& w : waiting) transmit(std::move(w.seg), w.l4_cookie, w.ifindex, mac);
}

void IpEngine::transmit(TxSeg&& seg, std::uint64_t l4_cookie, int ifindex,
                        MacAddr dst_mac) {
  const Interface* ifp = iface(ifindex);
  assert(ifp != nullptr);

  // One chunk combines ETH, IP and the (copied) L4 header: IP must write the
  // checksum and pools are immutable to consumers (Section V-C).
  const auto l4_hdr = env_.pools->read(seg.l4_header);
  const std::uint32_t hdr_len = static_cast<std::uint32_t>(
      kEthHeaderLen + kIpHeaderLen + l4_hdr.size());
  chan::RichPtr frame_hdr = env_.hdr_pool->alloc(hdr_len);
  if (!frame_hdr.valid()) {
    drop_seg(std::move(seg), l4_cookie);  // pool exhausted: drop (Section IV-A)
    return;
  }
  auto view = env_.hdr_pool->write_view(frame_hdr);
  ByteWriter w{view};

  EthHeader eth;
  eth.dst = dst_mac;
  eth.src = ifp->mac;
  eth.ethertype = kEtherTypeIpv4;
  eth.serialize(w);

  Ipv4Header ip;
  ip.total_length = static_cast<std::uint16_t>(kIpHeaderLen + l4_hdr.size() +
                                               seg.payload_len());
  ip.id = next_ip_id_++;
  ip.protocol = seg.protocol;
  ip.src = seg.src;
  ip.dst = seg.dst;
  ip.serialize(w);

  w.raw(l4_hdr);
  assert(w.ok());

  // L4 checksum: software path walks every payload byte; offload path plants
  // the pseudo-header partial sum for the NIC to finish (Section V-A).
  if (seg.protocol == kProtoTcp || seg.protocol == kProtoUdp) {
    const std::uint16_t l4_len =
        static_cast<std::uint16_t>(l4_hdr.size() + seg.payload_len());
    std::uint32_t sum =
        pseudo_header_sum(seg.src, seg.dst, seg.protocol, l4_len);
    const std::size_t l4_off = kEthHeaderLen + kIpHeaderLen;
    const std::size_t csum_at =
        l4_off + (seg.protocol == kProtoTcp ? 16u : 6u);
    view[csum_at] = std::byte{0};
    view[csum_at + 1] = std::byte{0};
    if (!env_.csum_offload) {
      sum = checksum_partial(view.subspan(l4_off), sum);
      for (const auto& p : seg.payload)
        sum = checksum_partial(env_.pools->read(p), sum);
      const std::uint16_t csum = checksum_finish(sum);
      view[csum_at] = std::byte{static_cast<std::uint8_t>(csum >> 8)};
      view[csum_at + 1] = std::byte{static_cast<std::uint8_t>(csum)};
    } else {
      // Partial sum goes into the checksum field; the NIC completes it.
      const std::uint16_t partial =
          static_cast<std::uint16_t>((sum & 0xffff) + (sum >> 16));
      view[csum_at] = std::byte{static_cast<std::uint8_t>(partial >> 8)};
      view[csum_at + 1] = std::byte{static_cast<std::uint8_t>(partial)};
    }
  }

  TxFrame frame;
  frame.header = frame_hdr;
  frame.payload = std::move(seg.payload);
  frame.offload = seg.offload;
  frame.offload.csum_offload = env_.csum_offload;

  const std::uint64_t cookie = next_cookie_++;
  tx_pending_.emplace(cookie,
                      PendingTx{l4_cookie, false, frame_hdr, ifindex, frame});
  ++stats_.tx_frames;
  env_.send_frame(ifindex, std::move(frame), cookie);
}

std::size_t IpEngine::resubmit_tx(int ifindex) {
  std::size_t n = 0;
  for (auto& [cookie, pending] : tx_pending_) {
    if (pending.ifindex != ifindex) continue;
    TxFrame copy = pending.frame;
    env_.send_frame(ifindex, std::move(copy), cookie);
    ++n;
  }
  return n;
}

void IpEngine::tx_done(std::uint64_t cookie, bool ok) {
  auto it = tx_pending_.find(cookie);
  if (it == tx_pending_.end()) return;  // stale ack from before a restart
  PendingTx pending = std::move(it->second);
  tx_pending_.erase(it);
  env_.hdr_pool->release(pending.frame_hdr);
  if (!pending.internal) finish_l4(pending.l4_cookie, ok);
}

chan::RichPtr IpEngine::alloc_rx_buffer(std::uint32_t len) {
  return env_.rx_pool->alloc(len);
}

void IpEngine::rx_done(const chan::RichPtr& frame) {
  env_.rx_pool->release(frame);
}

void IpEngine::send_arp_frame(int ifindex, const ArpPacket& pkt) {
  const Interface* ifp = iface(ifindex);
  if (ifp == nullptr) return;
  chan::RichPtr hdr =
      env_.hdr_pool->alloc(kEthHeaderLen + kArpPacketLen);
  if (!hdr.valid()) return;
  auto view = env_.hdr_pool->write_view(hdr);
  ByteWriter w{view};
  EthHeader eth;
  eth.dst = pkt.op == kArpOpRequest ? MacAddr::broadcast() : pkt.target_mac;
  eth.src = ifp->mac;
  eth.ethertype = kEtherTypeArp;
  eth.serialize(w);
  pkt.serialize(w);
  assert(w.ok());

  TxFrame frame;
  frame.header = hdr;
  const std::uint64_t cookie = next_cookie_++;
  tx_pending_.emplace(cookie, PendingTx{0, true, hdr, ifindex, frame});
  ++stats_.tx_frames;
  env_.send_frame(ifindex, std::move(frame), cookie);
}

void IpEngine::input(int ifindex, chan::RichPtr frame) {
  ++stats_.rx_frames;
  auto bytes = env_.pools->read(frame);
  if (bytes.empty()) {
    ++stats_.dropped_malformed;
    rx_done(frame);
    return;
  }
  ByteReader r{bytes};
  auto eth = EthHeader::parse(r);
  if (!eth) {
    ++stats_.dropped_malformed;
    rx_done(frame);
    return;
  }

  if (eth->ethertype == kEtherTypeArp) {
    auto arp_pkt = ArpPacket::parse(r);
    const Interface* ifp = iface(ifindex);
    if (arp_pkt && ifp != nullptr)
      arp_.input(ifindex, *arp_pkt, ifp->addr, ifp->mac);
    rx_done(frame);
    return;
  }
  if (eth->ethertype != kEtherTypeIpv4) {
    rx_done(frame);
    return;
  }

  auto ip = Ipv4Header::parse(r);
  if (!ip) {
    ++stats_.dropped_malformed;  // the "ping of death" class dies right here
    rx_done(frame);
    return;
  }
  if (ip->total_length > bytes.size() - kEthHeaderLen) {
    ++stats_.dropped_malformed;
    rx_done(frame);
    return;
  }
  const std::uint16_t l4_offset =
      static_cast<std::uint16_t>(kEthHeaderLen + kIpHeaderLen);
  const std::uint16_t l4_length =
      static_cast<std::uint16_t>(ip->total_length - kIpHeaderLen);

  // Only deliver to us (no forwarding in NewtOS's edge role).
  const Interface* ifp = iface(ifindex);
  if (ifp == nullptr || ip->dst != ifp->addr) {
    rx_done(frame);
    return;
  }

  if (env_.pf_check &&
      (ip->protocol == kProtoTcp || ip->protocol == kProtoUdp)) {
    PfQuery q;
    q.dir = PfDir::In;
    q.protocol = ip->protocol;
    q.src = ip->src;
    q.dst = ip->dst;
    if (l4_length >= 4 && bytes.size() >= l4_offset + 4u) {
      ByteReader pr{bytes.subspan(l4_offset, 4)};
      q.sport = pr.u16();
      q.dport = pr.u16();
    }
    if (ip->protocol == kProtoTcp && bytes.size() >= l4_offset + 14u) {
      q.tcp_flags = std::to_integer<std::uint8_t>(bytes[l4_offset + 13]);
    }
    const std::uint64_t cookie = next_cookie_++;
    PendingPf pending;
    pending.query = q;
    pending.outbound = false;
    pending.ifindex = ifindex;
    pending.frame = frame;
    pending.l4_offset = l4_offset;
    pending.l4_length = l4_length;
    pending.ip_hdr = *ip;
    pf_pending_.emplace(cookie, std::move(pending));
    env_.pf_check(q, cookie);
    return;
  }
  deliver_inbound(ifindex, frame, *ip, l4_offset, l4_length);
}

// --- receive-side aggregation (GRO) ------------------------------------------------
//
// The classification logic lives in net/gro.h: the per-shard RX fast path
// (net/ip_fastpath.cc) runs the same merge rules against the same GroInfo.

void IpEngine::deliver_agg(L4AggPacket&& agg) {
  stats_.gro_aggs += 1;
  stats_.gro_frames += agg.segs.size();
  stats_.rx_delivered += agg.segs.size();
  if (env_.deliver_tcp_agg) {
    env_.deliver_tcp_agg(std::move(agg));
    return;
  }
  for (auto& seg : agg.segs) {
    if (env_.deliver_tcp) {
      env_.deliver_tcp(std::move(seg));
    } else {
      rx_done(seg.frame);
    }
  }
}

void IpEngine::drop_agg(L4AggPacket&& agg) {
  stats_.dropped_pf += agg.segs.size();
  for (auto& seg : agg.segs) rx_done(seg.frame);
}

void IpEngine::input_burst(int ifindex,
                           std::span<const chan::RichPtr> frames) {
  const Interface* ifp = iface(ifindex);

  L4AggPacket agg;             // aggregate under construction
  std::uint32_t agg_next_seq = 0;
  bool agg_psh = false;        // a PSH frame closes its aggregate
  // PF queries raised by this burst's aggregates; batched while consecutive.
  std::vector<std::pair<PfQuery, std::uint64_t>> queries;

  // PF answers strictly in submission order, and delivery order follows
  // verdict order — so the pending batch must reach PF before any frame
  // that takes the classic input() path files its own per-frame query, or
  // a later segment could overtake an earlier aggregate of its own flow.
  auto flush_queries = [&] {
    if (queries.empty()) return;
    if (env_.pf_check_batch) {
      env_.pf_check_batch(queries);
    } else {
      for (const auto& [q, cookie] : queries) env_.pf_check(q, cookie);
    }
    queries.clear();
  };

  auto finish_agg = [&] {
    if (agg.segs.empty()) return;
    if (agg.segs.size() == 1) {
      // A lone frame takes the classic path — including its own per-frame
      // PF query — so single-frame behavior is exactly what it always was.
      chan::RichPtr frame = agg.segs.front().frame;
      agg.segs.clear();
      flush_queries();
      input(ifindex, frame);
      agg = L4AggPacket{};
      return;
    }
    stats_.rx_frames += agg.segs.size();
    if (env_.pf_check) {
      PfQuery q;
      q.dir = PfDir::In;
      q.protocol = kProtoTcp;
      q.src = agg.src;
      q.dst = agg.dst;
      q.sport = agg.sport;
      q.dport = agg.dport;
      q.tcp_flags = agg_psh ? static_cast<std::uint8_t>(tcpflag::kAck |
                                                        tcpflag::kPsh)
                            : tcpflag::kAck;
      const std::uint64_t cookie = next_cookie_++;
      PendingPf pending;
      pending.query = q;
      pending.outbound = false;
      pending.ifindex = ifindex;
      pending.is_agg = true;
      pending.agg = std::move(agg);
      pf_pending_.emplace(cookie, std::move(pending));
      queries.emplace_back(q, cookie);
    } else {
      deliver_agg(std::move(agg));
    }
    agg = L4AggPacket{};
  };

  for (const chan::RichPtr& frame : frames) {
    const GroInfo info =
        ifp == nullptr ? GroInfo{}
                       : gro_classify(env_.pools->read(frame), ifp->addr);
    if (!info.eligible) {
      finish_agg();
      flush_queries();
      input(ifindex, frame);  // the classic per-frame path, verbatim
      continue;
    }
    const bool continues =
        !agg.segs.empty() && !agg_psh && info.src == agg.src &&
        info.sport == agg.sport && info.dport == agg.dport &&
        info.seq == agg_next_seq;
    if (!continues) finish_agg();
    if (agg.segs.empty()) {
      agg.src = info.src;
      agg.dst = info.dst;
      agg.sport = info.sport;
      agg.dport = info.dport;
      agg_psh = false;
    }
    agg.segs.push_back(L4Packet{frame, info.l4_offset, info.l4_length,
                                info.src, info.dst});
    agg_next_seq = info.seq + info.payload_len;
    if ((info.flags & tcpflag::kPsh) != 0) agg_psh = true;
  }
  finish_agg();
  flush_queries();
}

void IpEngine::deliver_inbound(int ifindex, chan::RichPtr frame,
                               const Ipv4Header& ip_hdr,
                               std::uint16_t l4_offset,
                               std::uint16_t l4_length) {
  switch (ip_hdr.protocol) {
    case kProtoIcmp:
      handle_icmp(ifindex, frame, ip_hdr, l4_offset, l4_length);
      rx_done(frame);
      return;
    case kProtoTcp:
      if (env_.deliver_tcp) {
        ++stats_.rx_delivered;
        env_.deliver_tcp(
            L4Packet{frame, l4_offset, l4_length, ip_hdr.src, ip_hdr.dst});
        return;  // TCP owns the frame ref until rx_done
      }
      break;
    case kProtoUdp:
      if (env_.deliver_udp) {
        ++stats_.rx_delivered;
        env_.deliver_udp(
            L4Packet{frame, l4_offset, l4_length, ip_hdr.src, ip_hdr.dst});
        return;
      }
      break;
    default:
      break;
  }
  rx_done(frame);
}

}  // namespace newtos::net
