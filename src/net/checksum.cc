#include "src/net/checksum.h"

namespace newtos::net {

std::uint32_t checksum_partial(std::span<const std::byte> data,
                               std::uint32_t sum) {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(data[i]))
            << 8) |
           std::to_integer<std::uint8_t>(data[i + 1]);
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(std::to_integer<std::uint8_t>(data[i]))
           << 8;
  }
  return sum;
}

std::uint16_t checksum_finish(std::uint32_t sum) {
  while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xffff);
}

std::uint16_t checksum(std::span<const std::byte> data) {
  return checksum_finish(checksum_partial(data));
}

std::uint32_t pseudo_header_sum(Ipv4Addr src, Ipv4Addr dst,
                                std::uint8_t protocol, std::uint16_t length) {
  std::uint32_t sum = 0;
  sum += src.value >> 16;
  sum += src.value & 0xffff;
  sum += dst.value >> 16;
  sum += dst.value & 0xffff;
  sum += protocol;
  sum += length;
  return sum;
}

}  // namespace newtos::net
