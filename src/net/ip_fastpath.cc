#include "src/net/ip_fastpath.h"

#include "src/net/gro.h"
#include "src/net/headers.h"
#include "src/net/steering.h"

namespace newtos::net {

std::size_t IpFastPath::FlowKeyHash::operator()(const FlowKey& k) const {
  return static_cast<std::size_t>(
      flow_hash(k.src, k.dst, k.sport, k.dport) ^
      (static_cast<std::uint32_t>(k.protocol) * 0x9e3779b9u));
}

IpFastPath::IpFastPath(Env env, Config cfg)
    : env_(std::move(env)), cfg_(std::move(cfg)) {}

IpFastPath::~IpFastPath() { release_all(); }

const Interface* IpFastPath::iface(int ifindex) const {
  for (const auto& i : cfg_.interfaces)
    if (i.index == ifindex) return &i;
  return nullptr;
}

void IpFastPath::emit_fallback(int ifindex, const chan::RichPtr& frame) {
  ++stats_.fallback_frames;
  if (env_.fallback) {
    env_.fallback(ifindex, frame);
  } else if (env_.release) {
    env_.release(frame);
  }
}

void IpFastPath::input(int ifindex, const chan::RichPtr& frame) {
  auto bytes = env_.pools->read(frame);
  if (bytes.empty()) {
    ++stats_.dropped_malformed;
    if (env_.release) env_.release(frame);
    return;
  }
  ByteReader r{bytes};
  auto eth = EthHeader::parse(r);
  if (!eth || eth->ethertype != kEtherTypeIpv4) {
    // ARP and friends are never steered here by the NIC, but if one shows
    // up the classic path is the place that knows what to do with it.
    emit_fallback(ifindex, frame);
    return;
  }
  auto ip = Ipv4Header::parse(r);
  if (!ip || ip->total_length > bytes.size() - kEthHeaderLen) {
    ++stats_.dropped_malformed;  // same verdict the IP server would reach
    if (env_.release) env_.release(frame);
    return;
  }
  const Interface* ifp = iface(ifindex);
  const std::uint16_t l4_offset =
      static_cast<std::uint16_t>(kEthHeaderLen + kIpHeaderLen);
  const std::uint16_t l4_length =
      static_cast<std::uint16_t>(ip->total_length - kIpHeaderLen);
  const bool ports_readable =
      l4_length >= 4 && bytes.size() >= static_cast<std::size_t>(l4_offset) + 4;
  if (ifp == nullptr || ip->dst != ifp->addr ||
      (ip->protocol != kProtoTcp && ip->protocol != kProtoUdp) ||
      !ports_readable) {
    // Not ours, not our protocol, or a fragment too short to carry ports:
    // all slow-path material.  A frame whose flow still has a verdict in
    // flight queues behind it so the two paths cannot reorder the flow;
    // its cached verdict (if any) is flushed so later fast-path frames
    // re-judge after the slow path has seen this one.
    if (ports_readable) {
      ByteReader pr{bytes.subspan(l4_offset, 4)};
      FlowKey key;
      key.src = ip->src;
      key.dst = ip->dst;
      key.sport = pr.u16();
      key.dport = pr.u16();
      key.protocol = ip->protocol;
      verdict_cache_.erase(key);
      auto pit = pf_pending_.find(key);
      if (pit != pf_pending_.end()) {
        HeldItem item;
        item.kind = HeldItem::Kind::Fallback;
        item.ifindex = ifindex;
        item.frame = frame;
        pit->second.held.push_back(std::move(item));
        return;
      }
    }
    emit_fallback(ifindex, frame);
    return;
  }

  ByteReader pr{bytes.subspan(l4_offset, 4)};
  FlowKey key;
  key.src = ip->src;
  key.dst = ip->dst;
  key.sport = pr.u16();
  key.dport = pr.u16();
  key.protocol = ip->protocol;

  HeldItem item;
  item.kind = HeldItem::Kind::Deliver;
  item.proto = ip->protocol;
  item.pkt = L4Packet{frame, l4_offset, l4_length, ip->src, ip->dst};

  if (!env_.pf_check || !cfg_.use_pf) {
    deliver_item(std::move(item));
    return;
  }
  PfQuery q;
  q.dir = PfDir::In;
  q.protocol = ip->protocol;
  q.src = ip->src;
  q.dst = ip->dst;
  q.sport = key.sport;
  q.dport = key.dport;
  if (ip->protocol == kProtoTcp && bytes.size() >= l4_offset + 14u) {
    q.tcp_flags = std::to_integer<std::uint8_t>(bytes[l4_offset + 13]);
  }
  judge(key, q, std::move(item));
}

void IpFastPath::judge(const FlowKey& key, const PfQuery& q, HeldItem&& item) {
  // Pending-before-cache: a cache hit must not let this frame overtake an
  // earlier frame of its own flow that is still waiting for PF (the burst
  // ordering fix, shard edition).
  auto pit = pf_pending_.find(key);
  if (pit != pf_pending_.end()) {
    pit->second.held.push_back(std::move(item));
    return;
  }
  auto cit = verdict_cache_.find(key);
  if (cit != verdict_cache_.end()) {
    ++stats_.cache_hits;
    run_item(key, std::move(item), cit->second);
    return;
  }
  const std::uint64_t cookie = next_cookie_++;
  PendingFlow pending;
  pending.cookie = cookie;
  pending.query = q;
  pending.held.push_back(std::move(item));
  pf_pending_.emplace(key, std::move(pending));
  cookie_flow_.emplace(cookie, key);
  ++stats_.pf_queries;
  env_.pf_check(q, cookie);
}

void IpFastPath::run_item(const FlowKey& key, HeldItem&& item, bool allow) {
  if (item.kind == HeldItem::Kind::Fallback) {
    // The slow path re-judges fallback frames itself; our cached verdict
    // for the flow dies with the handoff (flush-before-fallback).
    verdict_cache_.erase(key);
    emit_fallback(item.ifindex, item.frame);
    return;
  }
  if (allow) {
    deliver_item(std::move(item));
  } else {
    drop_item(std::move(item));
  }
}

void IpFastPath::deliver_item(HeldItem&& item) {
  if (item.kind == HeldItem::Kind::DeliverAgg) {
    stats_.gro_aggs += 1;
    stats_.gro_frames += item.agg.segs.size();
    stats_.fast_frames += item.agg.segs.size();
    if (env_.deliver_agg) {
      env_.deliver_agg(std::move(item.agg));
      return;
    }
    for (auto& seg : item.agg.segs) {
      if (env_.deliver) {
        env_.deliver(kProtoTcp, std::move(seg));
      } else if (env_.release) {
        env_.release(seg.frame);
      }
    }
    return;
  }
  ++stats_.fast_frames;
  if (env_.deliver) {
    env_.deliver(item.proto, std::move(item.pkt));
  } else if (env_.release) {
    env_.release(item.pkt.frame);
  }
}

void IpFastPath::drop_item(HeldItem&& item) {
  if (item.kind == HeldItem::Kind::DeliverAgg) {
    stats_.dropped_pf += item.agg.segs.size();
    if (env_.release)
      for (auto& seg : item.agg.segs) env_.release(seg.frame);
    return;
  }
  ++stats_.dropped_pf;
  if (env_.release) env_.release(item.pkt.frame);
}

void IpFastPath::finish_agg(int ifindex, L4AggPacket&& agg,
                            std::uint8_t tcp_flags) {
  if (agg.segs.empty()) return;
  if (agg.segs.size() == 1) {
    // A lone frame takes the per-frame leg — including its own PF query
    // with its own flags — so single-frame behavior matches the classic
    // engine exactly.
    chan::RichPtr frame = agg.segs.front().frame;
    agg.segs.clear();
    input(ifindex, frame);
    return;
  }
  FlowKey key;
  key.src = agg.src;
  key.dst = agg.dst;
  key.sport = agg.sport;
  key.dport = agg.dport;
  key.protocol = kProtoTcp;

  HeldItem item;
  item.kind = HeldItem::Kind::DeliverAgg;
  item.proto = kProtoTcp;
  item.agg = std::move(agg);

  if (!env_.pf_check || !cfg_.use_pf) {
    deliver_item(std::move(item));
    return;
  }
  PfQuery q;
  q.dir = PfDir::In;
  q.protocol = kProtoTcp;
  q.src = key.src;
  q.dst = key.dst;
  q.sport = key.sport;
  q.dport = key.dport;
  q.tcp_flags = tcp_flags;
  judge(key, q, std::move(item));
}

void IpFastPath::input_burst(int ifindex,
                             std::span<const chan::RichPtr> frames) {
  if (!cfg_.gro) {
    for (const chan::RichPtr& frame : frames) input(ifindex, frame);
    return;
  }
  const Interface* ifp = iface(ifindex);

  L4AggPacket agg;             // aggregate under construction
  std::uint32_t agg_next_seq = 0;
  bool agg_psh = false;        // a PSH frame closes its aggregate

  for (const chan::RichPtr& frame : frames) {
    const GroInfo info =
        ifp == nullptr ? GroInfo{}
                       : gro_classify(env_.pools->read(frame), ifp->addr);
    if (!info.eligible) {
      // The pending aggregate's PF query must be filed before this frame
      // files its own (or falls back), or a later segment could overtake
      // an earlier aggregate of its own flow — the PR 4 ordering fix.
      finish_agg(ifindex, std::move(agg),
                 agg_psh ? static_cast<std::uint8_t>(tcpflag::kAck |
                                                     tcpflag::kPsh)
                         : tcpflag::kAck);
      agg = L4AggPacket{};
      input(ifindex, frame);
      continue;
    }
    const bool continues =
        !agg.segs.empty() && !agg_psh && info.src == agg.src &&
        info.sport == agg.sport && info.dport == agg.dport &&
        info.seq == agg_next_seq;
    if (!continues) {
      finish_agg(ifindex, std::move(agg),
                 agg_psh ? static_cast<std::uint8_t>(tcpflag::kAck |
                                                     tcpflag::kPsh)
                         : tcpflag::kAck);
      agg = L4AggPacket{};
    }
    if (agg.segs.empty()) {
      agg.src = info.src;
      agg.dst = info.dst;
      agg.sport = info.sport;
      agg.dport = info.dport;
      agg_psh = false;
    }
    agg.segs.push_back(L4Packet{frame, info.l4_offset, info.l4_length,
                                info.src, info.dst});
    agg_next_seq = info.seq + info.payload_len;
    if ((info.flags & tcpflag::kPsh) != 0) agg_psh = true;
  }
  finish_agg(ifindex, std::move(agg),
             agg_psh
                 ? static_cast<std::uint8_t>(tcpflag::kAck | tcpflag::kPsh)
                 : tcpflag::kAck);
}

void IpFastPath::pf_verdict(std::uint64_t cookie, bool allow) {
  auto cf = cookie_flow_.find(cookie);
  if (cf == cookie_flow_.end()) return;  // stale (PF crashed and came back)
  const FlowKey key = cf->second;
  cookie_flow_.erase(cf);
  auto pit = pf_pending_.find(key);
  if (pit == pf_pending_.end() || pit->second.cookie != cookie) return;
  PendingFlow pending = std::move(pit->second);
  pf_pending_.erase(pit);
  // Cache pass AND block: an established flow skips the round trip, and a
  // blocked flow stays cheap to keep blocking — until kPfCacheInval says
  // the rules moved.
  verdict_cache_[key] = allow;
  for (auto& item : pending.held) run_item(key, std::move(item), allow);
}

std::size_t IpFastPath::resubmit_pf() {
  std::size_t n = 0;
  if (!env_.pf_check) return n;
  for (const auto& [key, pending] : pf_pending_) {
    env_.pf_check(pending.query, pending.cookie);
    ++n;
  }
  return n;
}

void IpFastPath::release_all() {
  for (auto& [key, pending] : pf_pending_) {
    for (auto& item : pending.held) {
      if (env_.release == nullptr) continue;
      switch (item.kind) {
        case HeldItem::Kind::Deliver:
          env_.release(item.pkt.frame);
          break;
        case HeldItem::Kind::DeliverAgg:
          for (auto& seg : item.agg.segs) env_.release(seg.frame);
          break;
        case HeldItem::Kind::Fallback:
          env_.release(item.frame);
          break;
      }
    }
  }
  pf_pending_.clear();
  cookie_flow_.clear();
  verdict_cache_.clear();
}

}  // namespace newtos::net
