// The IP component: routing, Ethernet framing, ARP, ICMP, the packet-filter
// T junction, and ownership of the receive pool drivers DMA into.
//
// IP is the only component that talks to drivers (Section V, Figure 3).  For
// every packet it hands work to another component three times: to PF for the
// verdict, to the driver for transmission, and (on receive) up to TCP/UDP.
// All hand-offs are asynchronous; IP keeps pending packets in internal
// tables keyed by cookies and the hosting server maps those cookies onto
// its request database.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/chan/pool.h"
#include "src/net/addr.h"
#include "src/net/arp.h"
#include "src/net/env.h"
#include "src/net/headers.h"
#include "src/net/pbuf.h"
#include "src/net/pf.h"

namespace newtos::net {

struct Interface {
  int index = 0;
  MacAddr mac;
  Ipv4Addr addr;
  Ipv4Net subnet;
  std::uint32_t mtu = 1500;
};

struct Route {
  Ipv4Net dest;        // 0.0.0.0/0 for the default route
  Ipv4Addr gateway;    // 0.0.0.0 when the destination is on-link
  int ifindex = 0;
};

// The small static state that makes IP easy to restart (Table I): interface
// addressing and routes, saved in the storage server.
struct IpConfig {
  std::vector<Interface> interfaces;
  std::vector<Route> routes;

  std::vector<std::byte> serialize() const;
  static std::optional<IpConfig> parse(std::span<const std::byte>);
};

// A packet delivered up to TCP/UDP: the frame stays where the NIC put it
// (one chunk in IP's receive pool); only offsets travel.
struct L4Packet {
  chan::RichPtr frame;        // whole-frame chunk; release via rx_done
  std::uint16_t l4_offset = 0;  // where the transport header starts
  std::uint16_t l4_length = 0;  // transport header + payload length
  Ipv4Addr src;
  Ipv4Addr dst;
};

// A GRO super-segment: consecutive in-order TCP segments of one flow,
// merged at the IP -> TCP boundary so the transport pays its per-segment
// charge once per aggregate.  Because all members share one 4-tuple, an
// aggregate can never span transport shards.
struct L4AggPacket {
  std::vector<L4Packet> segs;   // in arrival order, seq-consecutive
  Ipv4Addr src;
  Ipv4Addr dst;
  std::uint16_t sport = 0;      // steering tuple (remote end first)
  std::uint16_t dport = 0;
};

class IpEngine {
 public:
  struct Env {
    Clock* clock = nullptr;
    TimerService* timers = nullptr;
    chan::PoolRegistry* pools = nullptr;
    chan::Pool* hdr_pool = nullptr;  // IP-owned: frame headers, ARP, ICMP
    chan::Pool* rx_pool = nullptr;   // IP-owned: drivers DMA received frames here

    // Hand a frame to the driver of `ifindex`.  The driver answers through
    // tx_done(cookie, ok).
    std::function<void(int ifindex, TxFrame&&, std::uint64_t cookie)>
        send_frame;
    // Ask the packet filter.  The verdict arrives via pf_verdict(cookie).
    // May be empty: no filter configured, everything passes.
    std::function<void(const PfQuery&, std::uint64_t cookie)> pf_check;
    // Deliver transport payloads upward.
    std::function<void(L4Packet&&)> deliver_tcp;
    std::function<void(L4Packet&&)> deliver_udp;
    // Deliver a GRO aggregate upward.  May be empty: aggregates then fall
    // back to per-segment deliver_tcp (GRO effectively off above IP).
    std::function<void(L4AggPacket&&)> deliver_tcp_agg;
    // Batched variant of pf_check: all aggregate queries raised by one RX
    // burst travel together.  May be empty: queries go out one by one.
    std::function<void(
        std::span<const std::pair<PfQuery, std::uint64_t>>)>
        pf_check_batch;
    // Completion towards L4: the segment with `l4_cookie` was transmitted
    // (or dropped, sent=false).  Only after this may L4 free its header.
    std::function<void(std::uint64_t l4_cookie, bool sent)> seg_done;

    bool csum_offload = true;  // NIC finishes L4 checksums on TX
  };

  struct Stats {
    std::uint64_t tx_segs = 0;
    std::uint64_t tx_frames = 0;
    std::uint64_t rx_frames = 0;
    std::uint64_t rx_delivered = 0;
    std::uint64_t dropped_no_route = 0;
    std::uint64_t dropped_pf = 0;
    std::uint64_t dropped_malformed = 0;
    std::uint64_t dropped_arp_timeout = 0;
    std::uint64_t icmp_echo_replies = 0;
    std::uint64_t gro_aggs = 0;    // aggregates delivered (>= 2 frames each)
    std::uint64_t gro_frames = 0;  // frames merged into aggregates
  };

  IpEngine(Env env, IpConfig cfg);

  // --- L4 -> IP ----------------------------------------------------------------
  // Takes ownership of seg.l4_header (freed back to its owner by seg_done)
  // and of the payload refs for the duration of transmission.
  void output(TxSeg&& seg, std::uint64_t l4_cookie);

  // --- driver -> IP ------------------------------------------------------------
  void input(int ifindex, chan::RichPtr frame);
  // A coalesced RX burst.  Consecutive in-order same-4-tuple TCP data
  // segments are merged into aggregates (GRO); everything else — and every
  // aggregate of one — takes the exact per-frame input() path.  Flags
  // beyond ACK/PSH, out-of-order arrivals and flow changes flush the
  // aggregate under construction.
  void input_burst(int ifindex, std::span<const chan::RichPtr> frames);
  void tx_done(std::uint64_t cookie, bool ok);

  // --- PF -> IP ------------------------------------------------------------------
  void pf_verdict(std::uint64_t cookie, bool allow);
  // After a PF crash: resubmit every unanswered query (no packet is ever
  // lost across a PF restart, Section V-D).  Returns how many were resent.
  std::size_t resubmit_pf_pending();
  // After a driver crash: the acks for in-flight frames will never arrive;
  // IP prefers duplicates over losses and resubmits them (Section V-D,
  // "Drivers").  Returns how many frames were resent.
  std::size_t resubmit_tx(int ifindex);

  // --- L4 -> IP (receive-pool bookkeeping) --------------------------------------
  // L4 finished with a delivered frame chunk.
  void rx_done(const chan::RichPtr& frame);
  // Allocate / hand out receive buffers for drivers.
  chan::RichPtr alloc_rx_buffer(std::uint32_t len);

  // --- recovery -----------------------------------------------------------------
  const IpConfig& config() const { return cfg_; }
  void set_config(IpConfig cfg) { cfg_ = std::move(cfg); }

  const Stats& stats() const { return stats_; }
  ArpEngine& arp() { return arp_; }

  // Number of TX requests whose driver ack is still outstanding.
  std::size_t tx_pending() const { return tx_pending_.size(); }

 private:
  struct PendingTx {   // waiting for the driver's transmit ack
    std::uint64_t l4_cookie = 0;
    bool internal = false;        // ICMP/ARP replies: no L4 to notify
    chan::RichPtr frame_hdr;      // chunk to free on completion
    int ifindex = 0;
    TxFrame frame;                // kept for resubmission after driver crash
  };
  struct PendingPf {   // waiting for a PF verdict
    PfQuery query;
    bool outbound = false;
    // outbound:
    TxSeg seg;
    std::uint64_t l4_cookie = 0;
    // inbound:
    int ifindex = 0;
    chan::RichPtr frame;
    std::uint16_t l4_offset = 0;
    std::uint16_t l4_length = 0;
    Ipv4Header ip_hdr;
    // inbound GRO aggregate (is_agg: `agg` replaces `frame`):
    bool is_agg = false;
    L4AggPacket agg;
  };
  struct AwaitingArp {  // routed, allowed, waiting for next-hop MAC
    TxSeg seg;
    std::uint64_t l4_cookie = 0;
    int ifindex = 0;
  };

  // Internal TX requests (ICMP replies) are distinguished from L4 cookies by
  // this bit; completion then frees the IP-owned chunk instead of calling up.
  static constexpr std::uint64_t kInternalCookieBase = std::uint64_t{1} << 62;

  std::optional<std::pair<int, Ipv4Addr>> route(Ipv4Addr dst) const;
  const Interface* iface(int ifindex) const;
  void finish_l4(std::uint64_t l4_cookie, bool sent);
  void continue_output(TxSeg&& seg, std::uint64_t l4_cookie, int ifindex,
                       Ipv4Addr next_hop);
  void transmit(TxSeg&& seg, std::uint64_t l4_cookie, int ifindex,
                MacAddr dst_mac);
  void deliver_inbound(int ifindex, chan::RichPtr frame,
                       const Ipv4Header& ip_hdr, std::uint16_t l4_offset,
                       std::uint16_t l4_length);
  void deliver_agg(L4AggPacket&& agg);
  void drop_agg(L4AggPacket&& agg);
  void handle_icmp(int ifindex, const chan::RichPtr& frame,
                   const Ipv4Header& ip_hdr, std::uint16_t l4_offset,
                   std::uint16_t l4_length);
  void send_arp_frame(int ifindex, const ArpPacket& pkt);
  void arp_resolved(int ifindex, Ipv4Addr ip, MacAddr mac);
  void drop_seg(TxSeg&& seg, std::uint64_t l4_cookie);

  Env env_;
  IpConfig cfg_;
  ArpEngine arp_;
  Stats stats_;

  std::uint16_t next_ip_id_ = 1;
  std::uint64_t next_cookie_ = 1;
  std::unordered_map<std::uint64_t, PendingTx> tx_pending_;
  std::unordered_map<std::uint64_t, PendingPf> pf_pending_;
  std::unordered_map<std::uint32_t, std::deque<AwaitingArp>> arp_waiting_;
  std::unordered_map<std::uint64_t, chan::RichPtr> internal_inflight_;
};

}  // namespace newtos::net
