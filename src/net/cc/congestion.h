// Pluggable congestion control for the TCP engine.
//
// The engine owns the loss-recovery *machinery* (dup-ACK counting, the
// NewReno recovery point, which segment to retransmit); a CongestionControl
// module owns the *window policy*: how cwnd/ssthresh respond to ACKs,
// losses and timeouts, and — for rate-based controllers — the pacing rate
// the TX path must not exceed.  The engine mirrors cwnd()/ssthresh() into
// its Conn after every hook, so tcp_output() and the diagnostics read the
// same fields they always did.
//
// The default NewReno module reproduces the previously inlined cwnd math
// byte for byte: with tcp_cc == "newreno" every deterministic benchmark row
// is unchanged.
//
// State is serializable into a small fixed-size blob so transparent TCP
// recovery (src/servers/checkpoint.h) can carry the learned window and rate
// across a TCP-server crash instead of restarting from initial-cwnd.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "src/sim/time.h"

namespace newtos::net::cc {

// Wire-stable algorithm ids (stored in checkpoint blobs; never renumber).
enum class Algo : std::uint8_t {
  kNone = 0,
  kNewReno = 1,
  kCubic = 2,
  kBbr = 3,
};

// Upper bound on an algorithm's private serialized state.  Sized for the
// largest module (BBR) with headroom; a static_assert in each module keeps
// this honest.
inline constexpr std::size_t kCcBlobMax = 96;

struct CcConfig {
  std::uint32_t mss = 1460;
  std::uint32_t initial_cwnd = 10 * 1460;  // bytes
  // Initial ssthresh in bytes (a cached path estimate); 0 = unbounded slow
  // start, the classic behaviour.  Loss-based modules clamp to >= 2*mss.
  std::uint32_t ssthresh_init = 0;
};

class CongestionControl {
 public:
  virtual ~CongestionControl() = default;

  virtual Algo algo() const = 0;
  virtual const char* name() const = 0;

  // --- outputs ---------------------------------------------------------------------
  virtual std::uint32_t cwnd() const = 0;
  virtual std::uint32_t ssthresh() const = 0;
  // Pacing rate in bytes/second; 0 means unpaced (pure window limiting).
  // Only rate-based controllers (BBR) return non-zero, so the loss-based
  // modules add no pacing-timer work to the TX path.
  virtual std::uint64_t pacing_rate() const { return 0; }

  // --- hooks (all byte counts; `flight` = snd_nxt - snd_una) -----------------------
  // Cumulative ACK of `acked` new bytes outside fast recovery.
  virtual void on_ack(std::uint32_t acked, std::uint32_t flight,
                      sim::Time now) = 0;
  // The engine took a clean RTT sample (Karn's rule already applied).
  virtual void on_rtt_sample(sim::Time rtt, sim::Time now) {
    (void)rtt;
    (void)now;
  }
  // Duplicate ACK; `in_recovery` is true once fast recovery has begun
  // (NewReno inflates cwnd by one segment per further dup ACK).
  virtual void on_dup_ack(bool in_recovery, std::uint32_t flight,
                          sim::Time now) {
    (void)in_recovery;
    (void)flight;
    (void)now;
  }
  // Third duplicate ACK: the engine enters fast recovery and retransmits.
  virtual void on_enter_recovery(std::uint32_t flight, sim::Time now) = 0;
  // Partial ACK during fast recovery (RFC 6582 deflation).
  virtual void on_partial_ack(std::uint32_t acked, sim::Time now) = 0;
  // The recovery point was fully ACKed.
  virtual void on_exit_recovery(sim::Time now) = 0;
  // Retransmission timeout (`flight` sampled before the go-back-N rewind).
  virtual void on_rto(std::uint32_t flight, sim::Time now) = 0;
  // One data segment handed to the TX path (first transmit or retransmit).
  virtual void on_sent(std::uint32_t bytes, std::uint32_t flight,
                       sim::Time now) {
    (void)bytes;
    (void)flight;
    (void)now;
  }

  // --- checkpoint blob --------------------------------------------------------------
  // Writes the algorithm-private state into `out` (at least kCcBlobMax
  // bytes); returns the bytes used.  deserialize() accepts exactly what
  // serialize() produced and returns false on a malformed blob (the caller
  // then falls back to conservative fresh state).
  virtual std::size_t serialize(std::span<std::byte> out) const = 0;
  virtual bool deserialize(std::span<const std::byte> in) = 0;
};

// Factories.  make() returns nullptr for an unknown algorithm name/id.
std::unique_ptr<CongestionControl> make(std::string_view algo,
                                        const CcConfig& cfg);
std::unique_ptr<CongestionControl> make(Algo algo, const CcConfig& cfg);
bool known(std::string_view algo);
const char* to_string(Algo algo);

}  // namespace newtos::net::cc
