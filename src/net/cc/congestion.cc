// Factory/dispatch for the congestion-control modules.

#include "src/net/cc/congestion.h"

namespace newtos::net::cc {

std::unique_ptr<CongestionControl> make_newreno(const CcConfig& cfg);
std::unique_ptr<CongestionControl> make_cubic(const CcConfig& cfg);
std::unique_ptr<CongestionControl> make_bbr(const CcConfig& cfg);

std::unique_ptr<CongestionControl> make(Algo algo, const CcConfig& cfg) {
  switch (algo) {
    case Algo::kNewReno: return make_newreno(cfg);
    case Algo::kCubic: return make_cubic(cfg);
    case Algo::kBbr: return make_bbr(cfg);
    case Algo::kNone: break;
  }
  return nullptr;
}

std::unique_ptr<CongestionControl> make(std::string_view algo,
                                        const CcConfig& cfg) {
  if (algo == "newreno" || algo == "reno") return make_newreno(cfg);
  if (algo == "cubic") return make_cubic(cfg);
  if (algo == "bbr") return make_bbr(cfg);
  return nullptr;
}

bool known(std::string_view algo) {
  return algo == "newreno" || algo == "reno" || algo == "cubic" ||
         algo == "bbr";
}

const char* to_string(Algo algo) {
  switch (algo) {
    case Algo::kNone: return "none";
    case Algo::kNewReno: return "newreno";
    case Algo::kCubic: return "cubic";
    case Algo::kBbr: return "bbr";
  }
  return "?";
}

}  // namespace newtos::net::cc
