// CUBIC (RFC 8312).  The window grows as a cubic function of the time
// since the last congestion event: concave up to the pre-loss plateau
// W_max, then convex while probing beyond it.  Loss responses use the
// CUBIC multiplicative factor beta = 0.7 (vs Reno's 0.5) with fast
// convergence, and a TCP-friendly lower bound keeps it no worse than Reno
// on short-RTT paths.
//
// Recovery mechanics (inflation on dup ACKs, deflation on partial ACKs)
// stay Reno-compatible because the engine's NewReno recovery machinery
// drives every module the same way; CUBIC plugs in only the window policy.

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/net/cc/congestion.h"

namespace newtos::net::cc {

namespace {

class Cubic final : public CongestionControl {
 public:
  static constexpr double kC = 0.4;     // RFC 8312 scaling constant
  static constexpr double kBeta = 0.7;  // multiplicative decrease

  explicit Cubic(const CcConfig& cfg)
      : mss_(cfg.mss), cwnd_(cfg.initial_cwnd) {
    if (cfg.ssthresh_init > 0)
      ssthresh_ = std::max(cfg.ssthresh_init, 2u * mss_);
  }

  Algo algo() const override { return Algo::kCubic; }
  const char* name() const override { return "cubic"; }
  std::uint32_t cwnd() const override { return cwnd_; }
  std::uint32_t ssthresh() const override { return ssthresh_; }

  void on_rtt_sample(sim::Time rtt, sim::Time now) override {
    (void)now;
    last_rtt_ = rtt;
  }

  void on_ack(std::uint32_t acked, std::uint32_t flight,
              sim::Time now) override {
    (void)flight;
    if (cwnd_ < ssthresh_) {
      cwnd_ += std::min(acked, 2u * mss_ * 16u);  // slow start, as Reno
      return;
    }
    const double seg = static_cast<double>(mss_);
    const double cwnd_seg = static_cast<double>(cwnd_) / seg;
    if (epoch_start_ == 0) {
      // New congestion-avoidance epoch (first ACK after a loss event or
      // after leaving slow start).
      epoch_start_ = now;
      if (w_max_ < cwnd_seg) {
        w_max_ = cwnd_seg;
        k_ = 0.0;
      } else {
        k_ = std::cbrt(w_max_ * (1.0 - kBeta) / kC);
      }
    }
    const double rtt_s =
        last_rtt_ > 0 ? static_cast<double>(last_rtt_) / 1e9 : 0.1;
    // Target window one RTT ahead (RFC 8312 section 4.1).
    const double t =
        static_cast<double>(now - epoch_start_) / 1e9 + rtt_s;
    const double target = kC * std::pow(t - k_, 3) + w_max_;
    // TCP-friendly region (section 4.2): never slower than an equivalent
    // AIMD flow with the CUBIC beta.
    const double w_est =
        w_max_ * kBeta + (3.0 * (1.0 - kBeta) / (1.0 + kBeta)) * (t / rtt_s);
    const double desired = std::max(target, w_est);
    const double acked_segs = static_cast<double>(acked) / seg;
    if (desired > cwnd_seg) {
      const double inc_segs = (desired - cwnd_seg) / cwnd_seg * acked_segs;
      cwnd_ += std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(inc_segs * seg));
    } else {
      // At/above the target: probe minimally while the plateau lasts.
      cwnd_ += 1;
    }
  }

  void on_dup_ack(bool in_recovery, std::uint32_t flight,
                  sim::Time now) override {
    (void)flight;
    (void)now;
    if (in_recovery) cwnd_ += mss_;
  }

  void on_enter_recovery(std::uint32_t flight, sim::Time now) override {
    (void)flight;
    (void)now;
    loss_epoch(/*timeout=*/false);
  }

  void on_partial_ack(std::uint32_t acked, sim::Time now) override {
    (void)now;
    cwnd_ = (cwnd_ > acked ? cwnd_ - acked : mss_) + mss_;
  }

  void on_exit_recovery(sim::Time now) override {
    (void)now;
    cwnd_ = ssthresh_;
  }

  void on_rto(std::uint32_t flight, sim::Time now) override {
    (void)flight;
    (void)now;
    loss_epoch(/*timeout=*/true);
  }

  struct Blob {
    std::uint32_t cwnd = 0;
    std::uint32_t ssthresh = 0;
    double w_max = 0.0;
    double k = 0.0;
    std::int64_t epoch_start = 0;  // absolute sim time; 0 = no epoch
    std::int64_t last_rtt = 0;
  };
  static_assert(sizeof(Blob) <= kCcBlobMax);

  std::size_t serialize(std::span<std::byte> out) const override {
    if (out.size() < sizeof(Blob)) return 0;
    Blob b{cwnd_, ssthresh_, w_max_, k_, epoch_start_, last_rtt_};
    std::memcpy(out.data(), &b, sizeof b);
    return sizeof b;
  }

  bool deserialize(std::span<const std::byte> in) override {
    if (in.size() < sizeof(Blob)) return false;
    Blob b;
    std::memcpy(&b, in.data(), sizeof b);
    if (b.cwnd < mss_ || !(b.w_max >= 0.0) || !(b.k >= 0.0)) return false;
    cwnd_ = b.cwnd;
    ssthresh_ = b.ssthresh;
    w_max_ = b.w_max;
    k_ = b.k;
    epoch_start_ = b.epoch_start;
    last_rtt_ = b.last_rtt;
    return true;
  }

 private:
  void loss_epoch(bool timeout) {
    const double cwnd_seg = static_cast<double>(cwnd_) / mss_;
    // Fast convergence: a loss below the old plateau means capacity
    // shrank — release the extra share to the new flow.
    if (cwnd_seg < w_max_) {
      w_max_ = cwnd_seg * (2.0 - kBeta) / 2.0;
    } else {
      w_max_ = cwnd_seg;
    }
    epoch_start_ = 0;
    ssthresh_ = std::max(
        static_cast<std::uint32_t>(static_cast<double>(cwnd_) * kBeta),
        2u * mss_);
    // Fast retransmit inflates by the three dup ACKs already seen (Reno
    // mechanics); a timeout collapses to one segment.
    cwnd_ = timeout ? mss_ : ssthresh_ + 3 * mss_;
  }

  std::uint32_t mss_;
  std::uint32_t cwnd_;
  std::uint32_t ssthresh_ = 0x7fffffff;
  double w_max_ = 0.0;          // segments
  double k_ = 0.0;              // seconds
  sim::Time epoch_start_ = 0;   // 0 = no active epoch
  sim::Time last_rtt_ = 0;
};

}  // namespace

std::unique_ptr<CongestionControl> make_cubic(const CcConfig& cfg) {
  return std::make_unique<Cubic>(cfg);
}

}  // namespace newtos::net::cc
