// BBR-style rate-based congestion control (Cardwell et al., "BBR:
// Congestion-Based Congestion Control", ACM Queue 2016), reduced to the
// pieces the simulator can exercise:
//
//  - a windowed-max delivery-rate filter (bytes delivered per packet-timed
//    round / round duration, max over the last 10 rounds) estimates
//    bottleneck bandwidth; averaging over a whole round keeps access-link
//    bursts from inflating the estimate the way pairwise ACK spacing would;
//  - a windowed-min RTT filter (10 s expiry) estimates the propagation
//    delay; expiry enters PROBE_RTT (cwnd pinned to 4 segments until the
//    pipe drains) so the refreshed sample measures propagation, not the
//    standing queue the flow itself built;
//  - the STARTUP (gain 2.885) -> DRAIN -> PROBE_BW eight-phase gain cycle
//    drives pacing_rate = pacing_gain * max_bw, which the engine enforces
//    with a per-connection pacing timer in the TX path;
//  - cwnd is capped at cwnd_gain * BDP, so the bottleneck FIFO is kept
//    near-empty instead of full — the queue-occupancy contrast with CUBIC
//    that bench_cc measures.
//
// Loss is not a primary signal: fast-recovery entry/exit keep the model
// (an RTO still collapses cwnd until the model re-fills it).

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/net/cc/congestion.h"

namespace newtos::net::cc {

namespace {

class Bbr final : public CongestionControl {
 public:
  static constexpr double kHighGain = 2.885;  // 2/ln(2): fills the pipe fast
  static constexpr double kDrainGain = 1.0 / kHighGain;
  static constexpr int kCycleLen = 8;
  static constexpr int kBwWindowRounds = 10;
  static constexpr sim::Time kMinRttExpiry = 10 * sim::kSecond;
  static constexpr sim::Time kProbeRttDuration = 200 * sim::kMillisecond;

  explicit Bbr(const CcConfig& cfg)
      : mss_(cfg.mss), initial_cwnd_(cfg.initial_cwnd),
        cwnd_(cfg.initial_cwnd) {}

  Algo algo() const override { return Algo::kBbr; }
  const char* name() const override { return "bbr"; }
  std::uint32_t cwnd() const override { return cwnd_; }
  // BBR has no ssthresh; report "infinite" so engine diagnostics make sense.
  std::uint32_t ssthresh() const override { return 0x7fffffff; }

  std::uint64_t pacing_rate() const override {
    const std::uint64_t bw = max_bw();
    if (bw == 0) return 0;  // model not warmed up: stay window-limited
    return static_cast<std::uint64_t>(pacing_gain_ *
                                      static_cast<double>(bw));
  }

  void on_rtt_sample(sim::Time rtt, sim::Time now) override {
    if (min_rtt_ == 0 || rtt <= min_rtt_) {
      min_rtt_ = rtt;
      min_rtt_stamp_ = now;
    } else if (mode_ == Mode::kProbeRtt && probe_rtt_done_ != 0) {
      // Pipe drained: this sample measures propagation, take it as the
      // refreshed floor even though it is above the (expired) old one.
      min_rtt_ = rtt;
      min_rtt_stamp_ = now;
    }
  }

  void on_ack(std::uint32_t acked, std::uint32_t flight,
              sim::Time now) override {
    delivered_ += acked;

    // Packet-timed rounds: one round per flight's worth of delivery.  The
    // delivery-rate sample is the whole round's bytes over its duration —
    // a full RTT of averaging, so a burst that momentarily drains at the
    // access rate does not masquerade as bottleneck bandwidth.
    bool round_start = false;
    if (delivered_ >= next_round_delivered_) {
      round_start = true;
      if (round_time_ != 0 && now > round_time_) {
        const std::uint64_t bw =
            (delivered_ - round_delivered_) *
            static_cast<std::uint64_t>(sim::kSecond) /
            static_cast<std::uint64_t>(now - round_time_);
        round_bw_[round_count_ % kBwWindowRounds] = bw;
      }
      round_time_ = now;
      round_delivered_ = delivered_;
      ++round_count_;
      next_round_delivered_ = delivered_ + flight;
    }

    update_mode(round_start, flight, now);
    update_cwnd(acked);
  }

  void on_enter_recovery(std::uint32_t flight, sim::Time now) override {
    (void)flight;
    (void)now;
    // Loss is not a primary signal; the rate model stands.  Modest cap so
    // a genuinely collapsing path is not hammered.
    cwnd_ = std::max(cwnd_ - cwnd_ / 8, 4u * mss_);
  }

  void on_partial_ack(std::uint32_t acked, sim::Time now) override {
    // Keep the model fresh through recovery (flight unknown here; rounds
    // simply advance faster, which only shortens the bw filter's memory).
    on_ack(acked, 0, now);
  }

  void on_exit_recovery(sim::Time now) override { (void)now; }

  void on_rto(std::uint32_t flight, sim::Time now) override {
    (void)flight;
    (void)now;
    // Go-back-N restart: one segment out, the model refills cwnd as ACKs
    // return.
    cwnd_ = mss_;
  }

  struct Blob {
    std::uint8_t mode = 0;
    std::uint8_t cycle_idx = 0;
    std::uint16_t pad = 0;
    std::uint32_t full_bw_cnt = 0;
    std::uint32_t cwnd = 0;
    std::uint32_t pad2 = 0;
    std::uint64_t max_bw = 0;
    std::int64_t min_rtt = 0;
    std::int64_t min_rtt_stamp = 0;
    std::uint64_t full_bw = 0;
    std::uint64_t delivered = 0;
    std::int64_t cycle_stamp = 0;
  };
  static_assert(sizeof(Blob) <= kCcBlobMax);

  std::size_t serialize(std::span<std::byte> out) const override {
    if (out.size() < sizeof(Blob)) return 0;
    Blob b;
    b.mode = static_cast<std::uint8_t>(mode_);
    b.cycle_idx = static_cast<std::uint8_t>(cycle_idx_);
    b.full_bw_cnt = full_bw_cnt_;
    b.cwnd = cwnd_;
    b.max_bw = max_bw();
    b.min_rtt = min_rtt_;
    b.min_rtt_stamp = min_rtt_stamp_;
    b.full_bw = full_bw_;
    b.delivered = delivered_;
    b.cycle_stamp = cycle_stamp_;
    std::memcpy(out.data(), &b, sizeof b);
    return sizeof b;
  }

  bool deserialize(std::span<const std::byte> in) override {
    if (in.size() < sizeof(Blob)) return false;
    Blob b;
    std::memcpy(&b, in.data(), sizeof b);
    if (b.mode > static_cast<std::uint8_t>(Mode::kProbeRtt) ||
        b.cycle_idx >= kCycleLen || b.cwnd < mss_) {
      return false;
    }
    mode_ = static_cast<Mode>(b.mode);
    // PROBE_RTT is a transient pause keyed to pre-crash flight; resume
    // cruising instead of waiting on a drain that already happened.
    if (mode_ == Mode::kProbeRtt) mode_ = Mode::kProbeBw;
    cycle_idx_ = b.cycle_idx;
    full_bw_cnt_ = b.full_bw_cnt;
    cwnd_ = b.cwnd;
    min_rtt_ = b.min_rtt;
    min_rtt_stamp_ = b.min_rtt_stamp;
    full_bw_ = b.full_bw;
    delivered_ = b.delivered;
    next_round_delivered_ = delivered_;
    cycle_stamp_ = b.cycle_stamp;
    // Re-seed the windowed filter from the single surviving max.
    for (auto& slot : round_bw_) slot = b.max_bw;
    apply_gains();
    return true;
  }

 private:
  enum class Mode : std::uint8_t {
    kStartup = 0,
    kDrain = 1,
    kProbeBw = 2,
    kProbeRtt = 3,
  };

  static constexpr double kCyclePacingGain[kCycleLen] = {
      1.25, 0.75, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0};

  std::uint64_t max_bw() const {
    std::uint64_t m = 0;
    for (const std::uint64_t bw : round_bw_) m = std::max(m, bw);
    return m;
  }

  std::uint64_t bdp_bytes() const {
    if (min_rtt_ <= 0) return 0;
    return max_bw() * static_cast<std::uint64_t>(min_rtt_) /
           static_cast<std::uint64_t>(sim::kSecond);
  }

  void apply_gains() {
    switch (mode_) {
      case Mode::kStartup:
        pacing_gain_ = kHighGain;
        cwnd_gain_ = kHighGain;
        break;
      case Mode::kDrain:
        pacing_gain_ = kDrainGain;
        cwnd_gain_ = kHighGain;
        break;
      case Mode::kProbeBw:
        pacing_gain_ = kCyclePacingGain[cycle_idx_];
        cwnd_gain_ = 2.0;
        break;
      case Mode::kProbeRtt:
        pacing_gain_ = 1.0;
        cwnd_gain_ = 1.0;  // cwnd is pinned in update_cwnd()
        break;
    }
  }

  void update_mode(bool round_start, std::uint32_t flight, sim::Time now) {
    if (mode_ == Mode::kStartup) {
      if (round_start) {
        // Pipe full when bandwidth stopped growing >= 25% for 3 rounds.
        if (max_bw() >= full_bw_ + full_bw_ / 4) {
          full_bw_ = max_bw();
          full_bw_cnt_ = 0;
        } else if (full_bw_ > 0 && ++full_bw_cnt_ >= 3) {
          mode_ = Mode::kDrain;
        }
      }
    } else if (mode_ == Mode::kDrain) {
      if (flight <= bdp_bytes()) {
        mode_ = Mode::kProbeBw;
        cycle_idx_ = 0;
        cycle_stamp_ = now;
      }
    } else if (mode_ == Mode::kProbeBw) {
      if (round_start && full_bw_ > 0 && max_bw() < full_bw_ / 2) {
        // Our delivery rate collapsed far below the ceiling we once
        // established (an RTO, or another flow crowding us out).  The
        // 1.25-gain probe cannot climb out of a deep hole — its 25% of a
        // collapsed estimate is noise — so probe for the ceiling from
        // scratch instead of cruising at starvation rate.
        mode_ = Mode::kStartup;
        full_bw_ = 0;
        full_bw_cnt_ = 0;
      } else if (min_rtt_ != 0 && now - min_rtt_stamp_ > kMinRttExpiry) {
        // The RTT floor is stale; drain to 4 segments and re-measure it
        // with the standing queue (ours included) gone.
        mode_ = Mode::kProbeRtt;
        probe_rtt_done_ = 0;
      } else {
        // Advance one gain phase per min-RTT.
        const sim::Time phase =
            min_rtt_ > 0 ? min_rtt_ : 10 * sim::kMillisecond;
        if (now - cycle_stamp_ > phase) {
          cycle_idx_ = (cycle_idx_ + 1) % kCycleLen;
          cycle_stamp_ = now;
        }
      }
    } else {  // kProbeRtt
      if (probe_rtt_done_ == 0) {
        if (flight <= 4u * mss_) probe_rtt_done_ = now + kProbeRttDuration;
      } else if (now >= probe_rtt_done_) {
        min_rtt_stamp_ = now;  // refreshed (or confirmed) floor
        mode_ = Mode::kProbeBw;
        cycle_idx_ = 0;
        cycle_stamp_ = now;
      }
    }
    apply_gains();
  }

  void update_cwnd(std::uint32_t acked) {
    const std::uint64_t bdp = bdp_bytes();
    if (bdp == 0) {
      // Model not warmed up: grow like slow start so samples keep coming.
      cwnd_ = std::max(cwnd_ + acked, initial_cwnd_);
      return;
    }
    if (mode_ == Mode::kProbeRtt) {
      cwnd_ = 4u * mss_;
      return;
    }
    const std::uint64_t target = static_cast<std::uint64_t>(
        cwnd_gain_ * static_cast<double>(bdp));
    std::uint32_t next = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(target, 0x7fffffffu));
    if (mode_ == Mode::kStartup) {
      // Never shrink while still probing for the ceiling.
      next = std::max(next, cwnd_ + acked);
    }
    cwnd_ = std::max(next, 4u * mss_);
  }

  std::uint32_t mss_;
  std::uint32_t initial_cwnd_;
  std::uint32_t cwnd_;

  // Model.
  std::uint64_t round_bw_[kBwWindowRounds] = {};
  std::uint64_t delivered_ = 0;
  std::uint64_t next_round_delivered_ = 0;
  std::uint64_t round_count_ = 0;
  std::uint64_t round_delivered_ = 0;  // delivered_ at round start
  sim::Time round_time_ = 0;           // round start time
  sim::Time min_rtt_ = 0;
  sim::Time min_rtt_stamp_ = 0;

  // State machine.
  Mode mode_ = Mode::kStartup;
  double pacing_gain_ = kHighGain;
  double cwnd_gain_ = kHighGain;
  std::uint64_t full_bw_ = 0;
  std::uint32_t full_bw_cnt_ = 0;
  int cycle_idx_ = 0;
  sim::Time cycle_stamp_ = 0;
  sim::Time probe_rtt_done_ = 0;  // 0 = still draining to 4 segments
};

}  // namespace

std::unique_ptr<CongestionControl> make_bbr(const CcConfig& cfg) {
  return std::make_unique<Bbr>(cfg);
}

}  // namespace newtos::net::cc
