// NewReno (RFC 5681 + RFC 6582), extracted verbatim from the engine's
// previously inlined cwnd math.  This module is the default and MUST keep
// reproducing the deterministic benchmark rows byte for byte: every
// arithmetic expression below matches the old TcpEngine code exactly.

#include <cstring>

#include "src/net/cc/congestion.h"

namespace newtos::net::cc {

namespace {

class NewReno final : public CongestionControl {
 public:
  explicit NewReno(const CcConfig& cfg)
      : mss_(cfg.mss), cwnd_(cfg.initial_cwnd) {
    if (cfg.ssthresh_init > 0)
      ssthresh_ = std::max(cfg.ssthresh_init, 2u * mss_);
  }

  Algo algo() const override { return Algo::kNewReno; }
  const char* name() const override { return "newreno"; }
  std::uint32_t cwnd() const override { return cwnd_; }
  std::uint32_t ssthresh() const override { return ssthresh_; }

  void on_ack(std::uint32_t acked, std::uint32_t flight,
              sim::Time now) override {
    (void)flight;
    (void)now;
    if (cwnd_ < ssthresh_) {
      cwnd_ += std::min(acked, 2u * mss_ * 16u);  // slow start
    } else {
      cwnd_ += std::max<std::uint32_t>(
          1, static_cast<std::uint32_t>(
                 static_cast<std::uint64_t>(mss_) * acked / cwnd_));
    }
  }

  void on_dup_ack(bool in_recovery, std::uint32_t flight,
                  sim::Time now) override {
    (void)flight;
    (void)now;
    if (in_recovery) cwnd_ += mss_;  // inflate during fast recovery
  }

  void on_enter_recovery(std::uint32_t flight, sim::Time now) override {
    (void)now;
    ssthresh_ = std::max(flight / 2, 2u * mss_);
    cwnd_ = ssthresh_ + 3 * mss_;
  }

  void on_partial_ack(std::uint32_t acked, sim::Time now) override {
    (void)now;
    // Deflate by the amount ACKed, then inflate by one segment.
    cwnd_ = (cwnd_ > acked ? cwnd_ - acked : mss_) + mss_;
  }

  void on_exit_recovery(sim::Time now) override {
    (void)now;
    cwnd_ = ssthresh_;
  }

  void on_rto(std::uint32_t flight, sim::Time now) override {
    (void)now;
    // Classic Reno timeout: collapse to one segment, go-back-N.
    ssthresh_ = std::max(flight / 2, 2u * mss_);
    cwnd_ = mss_;
  }

  struct Blob {
    std::uint32_t cwnd = 0;
    std::uint32_t ssthresh = 0;
  };
  static_assert(sizeof(Blob) <= kCcBlobMax);

  std::size_t serialize(std::span<std::byte> out) const override {
    if (out.size() < sizeof(Blob)) return 0;
    Blob b{cwnd_, ssthresh_};
    std::memcpy(out.data(), &b, sizeof b);
    return sizeof b;
  }

  bool deserialize(std::span<const std::byte> in) override {
    if (in.size() < sizeof(Blob)) return false;
    Blob b;
    std::memcpy(&b, in.data(), sizeof b);
    if (b.cwnd < mss_) return false;
    cwnd_ = b.cwnd;
    ssthresh_ = b.ssthresh;
    return true;
  }

 private:
  std::uint32_t mss_;
  std::uint32_t cwnd_;
  std::uint32_t ssthresh_ = 0x7fffffff;
};

}  // namespace

std::unique_ptr<CongestionControl> make_newreno(const CcConfig& cfg) {
  return std::make_unique<NewReno>(cfg);
}

}  // namespace newtos::net::cc
