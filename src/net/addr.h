// Network addresses: Ethernet MAC and IPv4.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace newtos::net {

struct MacAddr {
  std::array<std::uint8_t, 6> bytes{};

  static MacAddr broadcast() {
    return MacAddr{{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}};
  }
  // Deterministic locally-administered address derived from an index.
  static MacAddr local(std::uint32_t index);

  bool is_broadcast() const { return *this == broadcast(); }
  std::string to_string() const;

  friend auto operator<=>(const MacAddr&, const MacAddr&) = default;
};

struct Ipv4Addr {
  std::uint32_t value = 0;  // host byte order

  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t v) : value(v) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
              (std::uint32_t{c} << 8) | d) {}

  static Ipv4Addr parse(const std::string& dotted);  // returns 0.0.0.0 on error

  bool is_zero() const { return value == 0; }
  std::string to_string() const;

  friend auto operator<=>(const Ipv4Addr&, const Ipv4Addr&) = default;
};

// CIDR prefix, e.g. 10.0.1.0/24.
struct Ipv4Net {
  Ipv4Addr network;
  int prefix_len = 0;

  std::uint32_t mask() const {
    return prefix_len == 0 ? 0u : ~std::uint32_t{0} << (32 - prefix_len);
  }
  bool contains(Ipv4Addr a) const {
    return (a.value & mask()) == (network.value & mask());
  }
  std::string to_string() const;

  friend bool operator==(const Ipv4Net&, const Ipv4Net&) = default;
};

}  // namespace newtos::net

template <>
struct std::hash<newtos::net::Ipv4Addr> {
  std::size_t operator()(const newtos::net::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.value);
  }
};
