#include "src/net/pbuf.h"

#include <cstring>

namespace newtos::net {

namespace {

std::uint32_t chain_len(const std::vector<chan::RichPtr>& ptrs) {
  std::uint32_t n = 0;
  for (const auto& p : ptrs) n += p.length;
  return n;
}

constexpr std::uint32_t kDescMagic = 0x4e744f53;  // "NtOS"

void put_u32(std::byte* p, std::uint32_t v) { std::memcpy(p, &v, 4); }
void put_u16(std::byte* p, std::uint16_t v) { std::memcpy(p, &v, 2); }
std::uint32_t get_u32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}
std::uint16_t get_u16(const std::byte* p) {
  std::uint16_t v;
  std::memcpy(&v, p, 2);
  return v;
}

}  // namespace

std::uint32_t TxSeg::payload_len() const { return chain_len(payload); }
std::uint32_t TxFrame::payload_len() const { return chain_len(payload); }

std::vector<std::byte> flatten(const chan::PoolRegistry& pools,
                               const chan::RichPtr& header,
                               const std::vector<chan::RichPtr>& payload) {
  std::vector<std::byte> out;
  auto append = [&](const chan::RichPtr& p) {
    if (!p.valid()) return;
    auto view = pools.read(p);
    out.insert(out.end(), view.begin(), view.end());
  };
  append(header);
  for (const auto& p : payload) append(p);
  return out;
}

chan::RichPtr pack_chain(chan::Pool& pool, const chan::RichPtr& header,
                         const std::vector<chan::RichPtr>& payload,
                         const TxOffload& offload) {
  const std::uint16_t n =
      static_cast<std::uint16_t>((header.valid() ? 1 : 0) + payload.size());
  const std::uint32_t bytes = 16 + n * static_cast<std::uint32_t>(
                                           sizeof(chan::RichPtr));
  chan::RichPtr desc = pool.alloc(bytes);
  if (!desc.valid()) return desc;

  auto view = pool.write_view(desc);
  std::byte* p = view.data();
  const std::uint32_t flags = (offload.tso ? 1u : 0u) |
                              (offload.csum_offload ? 2u : 0u) |
                              (header.valid() ? 4u : 0u);
  put_u32(p + 0, kDescMagic);
  put_u32(p + 4, flags);
  put_u16(p + 8, offload.mss);
  put_u16(p + 10, n);
  put_u32(p + 12, chain_len(payload) + (header.valid() ? 0u : 0u));
  std::size_t off = 16;
  auto put_ptr = [&](const chan::RichPtr& rp) {
    std::memcpy(p + off, &rp, sizeof rp);
    off += sizeof rp;
  };
  if (header.valid()) put_ptr(header);
  for (const auto& rp : payload) put_ptr(rp);
  return desc;
}

std::optional<UnpackedChain> unpack_chain(const chan::PoolRegistry& pools,
                                          const chan::RichPtr& desc) {
  auto view = pools.read(desc);
  if (view.size() < 16) return std::nullopt;
  const std::byte* p = view.data();
  if (get_u32(p) != kDescMagic) return std::nullopt;
  const std::uint32_t flags = get_u32(p + 4);
  const std::uint16_t mss = get_u16(p + 8);
  const std::uint16_t n = get_u16(p + 10);
  if (view.size() < 16 + n * sizeof(chan::RichPtr)) return std::nullopt;

  UnpackedChain out;
  out.offload.tso = (flags & 1) != 0;
  out.offload.csum_offload = (flags & 2) != 0;
  out.offload.mss = mss;
  const bool has_header = (flags & 4) != 0;
  std::size_t off = 16;
  for (std::uint16_t i = 0; i < n; ++i) {
    chan::RichPtr rp;
    std::memcpy(&rp, p + off, sizeof rp);
    off += sizeof rp;
    if (i == 0 && has_header) {
      out.header = rp;
    } else {
      out.payload.push_back(rp);
    }
  }
  return out;
}

}  // namespace newtos::net
