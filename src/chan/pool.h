// Shared memory pools for zero-copy bulk data (Section IV "Pools",
// Section V-C "Zero Copy").
//
// A pool is created (and owned) by exactly one server; any number of servers
// may attach it read-only.  Chunks are reference counted *by the owner*:
// consumers report back when they are done (TX_DONE / RX_DONE messages in
// the network stack) and only the owner frees.  Pools are exported read-only
// so a consumer can never corrupt the original data — if a request must be
// repeated after a crash, the original bytes are still intact.
//
// Two extensions support the chunk-lending socket data plane:
//
//  - Sub-range handles.  Components pass packets as sub-range rich pointers
//    into a chunk (a TCP segment references a slice of a send chunk; a
//    forwarded payload references the data bytes inside a received frame).
//    containing() resolves any live sub-range back to the chunk that owns
//    it, so refcount operations can be expressed against slices.
//
//  - A borrow ledger.  When a reference leaves the stack's custody and is
//    lent to an application (a borrowed datagram view, a send reservation),
//    the loan is recorded per borrower.  A return is only honoured if the
//    ledger knows about it — a double release or a release against a reset
//    pool (stale generation) becomes a safe no-op — and reclaim() frees
//    everything a crashed borrower still held, so a loan can never strand
//    a chunk.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/chan/rich_ptr.h"

namespace newtos::chan {

class Pool {
 public:
  // `id` must be unique per PoolRegistry and non-zero.
  Pool(std::uint32_t id, std::string name, std::size_t size_bytes);

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  std::uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  std::size_t size() const { return bytes_.size(); }
  std::uint32_t generation() const { return generation_; }

  // Owner-side allocation.  Returns a null pointer when the pool is
  // exhausted; callers must treat that like a full queue (drop or defer,
  // never block).  The chunk starts with one reference.
  RichPtr alloc(std::uint32_t length);

  // Owner-side reference management.
  void addref(const RichPtr& p);
  // Drops one reference; frees the chunk when it reaches zero.  Returns true
  // if the chunk was freed.  Stale pointers (older generation) are ignored.
  bool release(const RichPtr& p);

  // Owner-side mutable view.  Asserts the pointer is live and in bounds.
  std::span<std::byte> write_view(const RichPtr& p);
  // Device DMA write (NIC receive).  Devices are not subject to the
  // read-only export protection (no IOMMU modelled); bounds are enforced.
  // Returns false on stale pointers or overflow.
  bool dma_write(const RichPtr& p, std::span<const std::byte> data);
  // Consumer-side read-only view (pools are exported read-only).
  std::span<const std::byte> read_view(const RichPtr& p) const;

  // True when `p` names a live chunk of the current generation.
  bool live(const RichPtr& p) const;

  // Resolves a (possibly sub-range) pointer to the full chunk containing
  // it.  Null when the pointer is stale, foreign, or out of any live chunk.
  RichPtr containing(const RichPtr& p) const;

  // --- chunk lending (owner-side loan ledger, Section V-C) -----------------------
  // Records that `borrower` now holds one of `p`'s existing references (the
  // refcount itself does not change — the reference moved out of the
  // stack's custody, it was not duplicated).
  void note_borrow(const RichPtr& p, std::uint32_t borrower);
  // Erases one recorded loan.  Returns false — and the caller must NOT
  // release — when no loan is on record: a double return, a stale pointer
  // after reset(), or a foreign pointer.
  bool note_return(const RichPtr& p, std::uint32_t borrower);
  // Crash cleanup: releases every reference `borrower` still has on loan.
  // Returns how many chunk references were reclaimed.
  std::size_t reclaim(std::uint32_t borrower);
  // Outstanding loans (all borrowers) — the Testbed teardown leak check.
  std::size_t borrows_outstanding() const { return borrows_outstanding_; }
  // Every borrower with loans on record.  The teardown sweep uses this to
  // find well-known borrower-id classes (connection-checkpoint loans) that
  // are legitimately outstanding when a run stops mid-flight.
  std::vector<std::uint32_t> borrowers() const {
    std::vector<std::uint32_t> out;
    out.reserve(ledger_.size());
    for (const auto& [b, loans] : ledger_) out.push_back(b);
    return out;
  }

  // Crash support: drops every chunk and bumps the generation, so all
  // outstanding rich pointers into this pool become stale.
  void reset();

  // Statistics.
  std::size_t chunks_live() const { return chunks_.size(); }
  std::size_t bytes_live() const { return bytes_live_; }
  std::uint64_t total_allocs() const { return total_allocs_; }
  std::uint64_t failed_allocs() const { return failed_allocs_; }

 private:
  struct Chunk {
    std::uint32_t length = 0;
    std::uint32_t refs = 0;
  };

  static std::uint32_t round_chunk(std::uint32_t len);
  // Iterator to the live chunk containing `p`, or chunks_.end().
  std::map<std::uint32_t, Chunk>::const_iterator find_containing(
      const RichPtr& p) const;

  std::uint32_t id_;
  std::string name_;
  std::vector<std::byte> bytes_;
  std::uint32_t generation_ = 1;

  std::uint32_t bump_ = 0;  // high-water mark for fresh allocations
  // offset -> live chunk metadata, ordered so sub-ranges resolve to their
  // containing chunk
  std::map<std::uint32_t, Chunk> chunks_;
  // rounded size -> reusable offsets (simple segregated free lists)
  std::map<std::uint32_t, std::vector<std::uint32_t>> free_lists_;

  // borrower -> (chunk base offset -> loans outstanding)
  std::unordered_map<std::uint32_t,
                     std::unordered_map<std::uint32_t, std::uint32_t>>
      ledger_;
  std::size_t borrows_outstanding_ = 0;

  std::size_t bytes_live_ = 0;
  std::uint64_t total_allocs_ = 0;
  std::uint64_t failed_allocs_ = 0;
};

// Per-node directory of pools, by id.  Models the mappings the virtual
// memory manager would install: a server can only read a pool it attached.
class PoolRegistry {
 public:
  // Creates a pool owned by `owner`.  Ids are assigned sequentially.
  Pool& create(const std::string& owner, const std::string& name,
               std::size_t size_bytes);
  // Destroys a pool (owner exited and nobody should use it again).
  void destroy(std::uint32_t id);

  Pool* find(std::uint32_t id);
  const Pool* find(std::uint32_t id) const;
  // Lookup by name ("tcp.buf", "tcp1.buf", ...): the sharded transport
  // plane names each replica's staging pool after its server.
  Pool* find_by_name(const std::string& name);

  // Resolves a rich pointer to read-only bytes; empty span if stale/unknown.
  std::span<const std::byte> read(const RichPtr& p) const;

  // Drops one reference on the chunk containing `p` (sub-ranges resolve to
  // their owning chunk).  Safe on stale/unknown pointers; returns true when
  // a reference was actually dropped.
  bool release(const RichPtr& p);

  // Every pool, for stats and leak checks.
  std::vector<Pool*> all();

  std::size_t count() const { return pools_.size(); }

 private:
  std::uint32_t next_id_ = 1;
  std::unordered_map<std::uint32_t, std::unique_ptr<Pool>> pools_;
};

}  // namespace newtos::chan
