// Shared memory pools for zero-copy bulk data (Section IV "Pools",
// Section V-C "Zero Copy").
//
// A pool is created (and owned) by exactly one server; any number of servers
// may attach it read-only.  Chunks are reference counted *by the owner*:
// consumers report back when they are done (TX_DONE / RX_DONE messages in
// the network stack) and only the owner frees.  Pools are exported read-only
// so a consumer can never corrupt the original data — if a request must be
// repeated after a crash, the original bytes are still intact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/chan/rich_ptr.h"

namespace newtos::chan {

class Pool {
 public:
  // `id` must be unique per PoolRegistry and non-zero.
  Pool(std::uint32_t id, std::string name, std::size_t size_bytes);

  Pool(const Pool&) = delete;
  Pool& operator=(const Pool&) = delete;

  std::uint32_t id() const { return id_; }
  const std::string& name() const { return name_; }
  std::size_t size() const { return bytes_.size(); }
  std::uint32_t generation() const { return generation_; }

  // Owner-side allocation.  Returns a null pointer when the pool is
  // exhausted; callers must treat that like a full queue (drop or defer,
  // never block).  The chunk starts with one reference.
  RichPtr alloc(std::uint32_t length);

  // Owner-side reference management.
  void addref(const RichPtr& p);
  // Drops one reference; frees the chunk when it reaches zero.  Returns true
  // if the chunk was freed.  Stale pointers (older generation) are ignored.
  bool release(const RichPtr& p);

  // Owner-side mutable view.  Asserts the pointer is live and in bounds.
  std::span<std::byte> write_view(const RichPtr& p);
  // Device DMA write (NIC receive).  Devices are not subject to the
  // read-only export protection (no IOMMU modelled); bounds are enforced.
  // Returns false on stale pointers or overflow.
  bool dma_write(const RichPtr& p, std::span<const std::byte> data);
  // Consumer-side read-only view (pools are exported read-only).
  std::span<const std::byte> read_view(const RichPtr& p) const;

  // True when `p` names a live chunk of the current generation.
  bool live(const RichPtr& p) const;

  // Crash support: drops every chunk and bumps the generation, so all
  // outstanding rich pointers into this pool become stale.
  void reset();

  // Statistics.
  std::size_t chunks_live() const { return chunks_.size(); }
  std::size_t bytes_live() const { return bytes_live_; }
  std::uint64_t total_allocs() const { return total_allocs_; }
  std::uint64_t failed_allocs() const { return failed_allocs_; }

 private:
  struct Chunk {
    std::uint32_t length = 0;
    std::uint32_t refs = 0;
  };

  static std::uint32_t round_chunk(std::uint32_t len);

  std::uint32_t id_;
  std::string name_;
  std::vector<std::byte> bytes_;
  std::uint32_t generation_ = 1;

  std::uint32_t bump_ = 0;  // high-water mark for fresh allocations
  // offset -> live chunk metadata
  std::unordered_map<std::uint32_t, Chunk> chunks_;
  // rounded size -> reusable offsets (simple segregated free lists)
  std::map<std::uint32_t, std::vector<std::uint32_t>> free_lists_;

  std::size_t bytes_live_ = 0;
  std::uint64_t total_allocs_ = 0;
  std::uint64_t failed_allocs_ = 0;
};

// Per-node directory of pools, by id.  Models the mappings the virtual
// memory manager would install: a server can only read a pool it attached.
class PoolRegistry {
 public:
  // Creates a pool owned by `owner`.  Ids are assigned sequentially.
  Pool& create(const std::string& owner, const std::string& name,
               std::size_t size_bytes);
  // Destroys a pool (owner exited and nobody should use it again).
  void destroy(std::uint32_t id);

  Pool* find(std::uint32_t id);
  const Pool* find(std::uint32_t id) const;

  // Resolves a rich pointer to read-only bytes; empty span if stale/unknown.
  std::span<const std::byte> read(const RichPtr& p) const;

  std::size_t count() const { return pools_.size(); }

 private:
  std::uint32_t next_id_ = 1;
  std::unordered_map<std::uint32_t, std::unique_ptr<Pool>> pools_;
};

}  // namespace newtos::chan
