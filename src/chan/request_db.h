// Database of in-flight asynchronous requests (Section IV).
//
// Single-threaded asynchronous servers must remember what they submitted on
// which channel and what to do if the peer dies before replying.  Every
// request gets a unique id; replies are matched by id.  When a neighbour
// crashes, abort_peer() removes all requests addressed to it and runs their
// abort actions (drop, resubmit, propagate an error — application policy).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace newtos::chan {

class RequestDb {
 public:
  // `cookie` is opaque user state (an index, a pointer, a sequence number).
  // The abort action receives the request id and the cookie.
  using AbortFn = std::function<void(std::uint64_t id, std::uint64_t cookie)>;

  // Registers a request addressed to `peer`.  Returns the fresh id.
  std::uint64_t add(std::string peer, std::uint64_t cookie, AbortFn on_abort);

  // Completes a request (a reply arrived).  Returns true and yields the
  // cookie if the id was outstanding; false for unknown/stale ids (replies
  // from before a crash are ignored this way, Section V-D).
  bool complete(std::uint64_t id, std::uint64_t* cookie = nullptr);

  // True if `id` is still outstanding.
  bool pending(std::uint64_t id) const { return requests_.count(id) != 0; }

  // Aborts every request addressed to `peer`, running the abort actions in
  // submission order.  Returns how many were aborted.
  std::size_t abort_peer(const std::string& peer);

  // Aborts everything (own crash/shutdown path).
  std::size_t abort_all();

  std::size_t size() const { return requests_.size(); }
  std::uint64_t issued() const { return next_id_ - 1; }

 private:
  struct Request {
    std::string peer;
    std::uint64_t cookie;
    AbortFn on_abort;
  };

  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Request> requests_;  // ordered => deterministic
};

}  // namespace newtos::chan
