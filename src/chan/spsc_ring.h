// Cache-friendly single-producer/single-consumer lock-free ring.
//
// This is the data structure at the heart of the paper's fast-path channels
// (Section IV, after FastForward [17] and Streamline [10]): head and tail
// live in different cache lines so they do not bounce between the producer's
// and the consumer's core, and because there is exactly one producer and one
// consumer no locks or RMW operations are needed — an enqueue is a plain
// store plus a release publish, ~30 cycles on the paper's hardware.
//
// The template is usable from real concurrent threads (see
// bench/bench_channels.cc) as well as inside the simulator.
#pragma once

#include <atomic>
#include <cstddef>
#include <new>
#include <vector>

namespace newtos::chan {

inline constexpr std::size_t kCacheLineSize = 64;

template <typename T>
class SpscRing {
 public:
  // Capacity is rounded up to a power of two; one slot is kept free to
  // distinguish full from empty.
  explicit SpscRing(std::size_t min_capacity)
      : mask_(round_up(min_capacity + 1) - 1), slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // Producer side.  Returns false when the ring is full — the caller must
  // never block (Section IV-A): dropping or deferring is a policy decision
  // of the sending server.
  bool try_push(const T& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) & mask_;
    if (next == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (next == head_cache_) return false;
    }
    slots_[tail] = value;
    tail_.store(next, std::memory_order_release);
    return true;
  }

  bool try_push(T&& value) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t next = (tail + 1) & mask_;
    if (next == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (next == head_cache_) return false;
    }
    slots_[tail] = std::move(value);
    tail_.store(next, std::memory_order_release);
    return true;
  }

  // Consumer side.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (head == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (head == tail_cache_) return false;
    }
    out = std::move(slots_[head]);
    head_.store((head + 1) & mask_, std::memory_order_release);
    return true;
  }

  // Approximate; exact only when called from producer or consumer.
  std::size_t size() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return (tail - head) & mask_;
  }
  bool empty() const { return size() == 0; }
  std::size_t capacity() const { return mask_; }

  // Drops all contents.  Only safe when neither side is concurrently active
  // (used on crash/restart, where the simulator serializes everything).
  void reset() {
    head_.store(0, std::memory_order_relaxed);
    tail_.store(0, std::memory_order_relaxed);
    head_cache_ = tail_cache_ = 0;
  }

 private:
  static std::size_t round_up(std::size_t v) {
    std::size_t p = 1;
    while (p < v) p <<= 1;
    return p;
  }

  alignas(kCacheLineSize) std::atomic<std::size_t> head_{0};  // consumer
  alignas(kCacheLineSize) std::atomic<std::size_t> tail_{0};  // producer
  // Producer-local cache of head_ / consumer-local cache of tail_, so the
  // common case touches no remote cache line at all.
  alignas(kCacheLineSize) std::size_t head_cache_ = 0;
  alignas(kCacheLineSize) std::size_t tail_cache_ = 0;

  const std::size_t mask_;
  std::vector<T> slots_;
};

}  // namespace newtos::chan
