#include "src/chan/pool.h"

#include <cassert>
#include <memory>
#include <utility>

namespace newtos::chan {

Pool::Pool(std::uint32_t id, std::string name, std::size_t size_bytes)
    : id_(id), name_(std::move(name)), bytes_(size_bytes) {
  assert(id_ != 0 && "pool id 0 is reserved for the null rich pointer");
}

std::uint32_t Pool::round_chunk(std::uint32_t len) {
  // 64-byte granularity keeps chunks cache-line aligned and makes the
  // segregated free lists effective.
  return (len + 63u) & ~63u;
}

RichPtr Pool::alloc(std::uint32_t length) {
  if (length == 0) return kNullRichPtr;
  const std::uint32_t rounded = round_chunk(length);

  std::uint32_t offset;
  auto it = free_lists_.find(rounded);
  if (it != free_lists_.end() && !it->second.empty()) {
    offset = it->second.back();
    it->second.pop_back();
  } else {
    if (bump_ + rounded > bytes_.size()) {
      ++failed_allocs_;
      return kNullRichPtr;
    }
    offset = bump_;
    bump_ += rounded;
  }

  chunks_[offset] = Chunk{length, 1};
  bytes_live_ += length;
  ++total_allocs_;
  return RichPtr{id_, offset, length, generation_};
}

void Pool::addref(const RichPtr& p) {
  if (p.generation != generation_) return;
  auto it = chunks_.find(p.offset);
  assert(it != chunks_.end() && "addref on a freed chunk");
  ++it->second.refs;
}

bool Pool::release(const RichPtr& p) {
  if (p.generation != generation_) return false;  // stale: pool was reset
  auto it = chunks_.find(p.offset);
  if (it == chunks_.end()) return false;
  assert(it->second.refs > 0);
  if (--it->second.refs > 0) return false;
  bytes_live_ -= it->second.length;
  free_lists_[round_chunk(it->second.length)].push_back(p.offset);
  chunks_.erase(it);
  return true;
}

bool Pool::live(const RichPtr& p) const {
  if (p.pool != id_ || p.generation != generation_) return false;
  auto it = chunks_.find(p.offset);
  return it != chunks_.end() && it->second.length >= p.length;
}

std::map<std::uint32_t, Pool::Chunk>::const_iterator Pool::find_containing(
    const RichPtr& p) const {
  if (p.pool != id_ || p.generation != generation_ || !p.valid())
    return chunks_.end();
  auto it = chunks_.upper_bound(p.offset);
  if (it == chunks_.begin()) return chunks_.end();
  --it;
  const std::uint64_t base = it->first;
  const std::uint64_t end = base + it->second.length;
  if (p.offset < base ||
      static_cast<std::uint64_t>(p.offset) + p.length > end)
    return chunks_.end();
  return it;
}

RichPtr Pool::containing(const RichPtr& p) const {
  auto it = find_containing(p);
  if (it == chunks_.end()) return kNullRichPtr;
  return RichPtr{id_, it->first, it->second.length, generation_};
}

void Pool::note_borrow(const RichPtr& p, std::uint32_t borrower) {
  auto it = find_containing(p);
  if (it == chunks_.end()) return;
  ++ledger_[borrower][it->first];
  ++borrows_outstanding_;
}

bool Pool::note_return(const RichPtr& p, std::uint32_t borrower) {
  if (p.pool != id_ || p.generation != generation_) return false;
  auto lit = ledger_.find(borrower);
  if (lit == ledger_.end()) return false;
  auto cit = find_containing(p);
  if (cit == chunks_.end()) return false;
  auto eit = lit->second.find(cit->first);
  if (eit == lit->second.end()) return false;
  if (--eit->second == 0) lit->second.erase(eit);
  if (lit->second.empty()) ledger_.erase(lit);
  --borrows_outstanding_;
  return true;
}

std::size_t Pool::reclaim(std::uint32_t borrower) {
  auto lit = ledger_.find(borrower);
  if (lit == ledger_.end()) return 0;
  // Move out first: release() mutates chunks_ but not the ledger.
  auto loans = std::move(lit->second);
  ledger_.erase(lit);
  std::size_t reclaimed = 0;
  for (const auto& [offset, count] : loans) {
    borrows_outstanding_ -= count;
    for (std::uint32_t k = 0; k < count; ++k) {
      auto cit = chunks_.find(offset);
      if (cit == chunks_.end()) break;  // already gone; nothing stranded
      release(RichPtr{id_, offset, cit->second.length, generation_});
      ++reclaimed;
    }
  }
  return reclaimed;
}

std::span<std::byte> Pool::write_view(const RichPtr& p) {
  assert(live(p) && "write through a stale or foreign rich pointer");
  return {bytes_.data() + p.offset, p.length};
}

bool Pool::dma_write(const RichPtr& p, std::span<const std::byte> data) {
  if (p.pool != id_ || p.generation != generation_) return false;
  if (data.size() > p.length) return false;
  if (static_cast<std::size_t>(p.offset) + p.length > bytes_.size())
    return false;
  std::copy(data.begin(), data.end(), bytes_.begin() + p.offset);
  return true;
}

std::span<const std::byte> Pool::read_view(const RichPtr& p) const {
  if (p.pool != id_ || p.generation != generation_) return {};
  if (static_cast<std::size_t>(p.offset) + p.length > bytes_.size()) return {};
  return {bytes_.data() + p.offset, p.length};
}

void Pool::reset() {
  chunks_.clear();
  free_lists_.clear();
  ledger_.clear();
  borrows_outstanding_ = 0;
  bump_ = 0;
  bytes_live_ = 0;
  ++generation_;
}

Pool& PoolRegistry::create(const std::string& owner, const std::string& name,
                           std::size_t size_bytes) {
  const std::uint32_t id = next_id_++;
  auto pool = std::make_unique<Pool>(id, owner + "/" + name, size_bytes);
  Pool& ref = *pool;
  pools_.emplace(id, std::move(pool));
  return ref;
}

void PoolRegistry::destroy(std::uint32_t id) { pools_.erase(id); }

Pool* PoolRegistry::find(std::uint32_t id) {
  auto it = pools_.find(id);
  return it == pools_.end() ? nullptr : it->second.get();
}

const Pool* PoolRegistry::find(std::uint32_t id) const {
  auto it = pools_.find(id);
  return it == pools_.end() ? nullptr : it->second.get();
}

Pool* PoolRegistry::find_by_name(const std::string& name) {
  for (auto& [id, pool] : pools_) {
    const std::string& full = pool->name();  // "<owner>/<name>"
    if (full == name) return pool.get();
    const auto slash = full.rfind('/');
    if (slash != std::string::npos && full.compare(slash + 1, std::string::npos,
                                                   name) == 0) {
      return pool.get();
    }
  }
  return nullptr;
}

std::span<const std::byte> PoolRegistry::read(const RichPtr& p) const {
  const Pool* pool = find(p.pool);
  return pool ? pool->read_view(p) : std::span<const std::byte>{};
}

bool PoolRegistry::release(const RichPtr& p) {
  Pool* pool = find(p.pool);
  if (pool == nullptr) return false;
  const RichPtr full = pool->containing(p);
  if (!full.valid()) return false;
  pool->release(full);
  return true;
}

std::vector<Pool*> PoolRegistry::all() {
  std::vector<Pool*> out;
  out.reserve(pools_.size());
  for (auto& [id, pool] : pools_) out.push_back(pool.get());
  return out;
}

}  // namespace newtos::chan
