// Publish/subscribe registry and channel export/attach management
// (Section IV-C, "Channel Management").
//
// There is no global manager: when a server starts it *publishes* its
// presence; peers subscribed to the key react by exporting their channels to
// it.  An export hands out a credential; the holder presents the credential
// to attach (in the real system the memory manager validates it and installs
// the mapping).  Detach is only used when the other side disappears.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/chan/channel.h"

namespace newtos::chan {

// What the registry stores under a key: who published and an opaque handle
// (a Queue*, a pool id, a server endpoint — the subscribers know the type).
struct Published {
  std::string publisher;
  std::uint64_t value = 0;
};

class Registry {
 public:
  using SubId = std::uint64_t;
  // up=true when the key (re)appears, false when it is withdrawn.
  // replay=true when the callback merely replays the current state to a new
  // subscriber (subscription time), false for live transitions.
  using SubFn = std::function<void(const std::string& key, const Published&,
                                   bool up, bool replay)>;

  // Publishes `key`; notifies subscribers.  Re-publishing the same key (a
  // restarted server) notifies subscribers again.
  void publish(const std::string& key, Published value);
  void unpublish(const std::string& key);

  std::optional<Published> lookup(const std::string& key) const;

  // Subscribes to exact key `key`.  If the key is already published the
  // callback fires immediately (so start order does not matter).
  SubId subscribe(const std::string& key, SubFn fn);
  void unsubscribe(SubId id);

 private:
  struct Sub {
    std::string key;
    SubFn fn;
  };
  std::map<std::string, Published> published_;
  std::map<SubId, Sub> subs_;
  SubId next_sub_ = 1;
};

// Credentials-based export/attach for queues, modelling the role the memory
// manager plays when mapping a channel into another address space.
class ChannelManager {
 public:
  using Credential = std::uint64_t;

  // The queue's creator grants `grantee` the right to attach `q`.
  Credential export_queue(const std::string& creator,
                          const std::string& grantee, Queue* q);

  // Attaching with someone else's credential fails (returns nullptr), as the
  // memory manager would refuse the mapping.
  Queue* attach(const std::string& who, Credential cred);

  // Withdraws every export made by `creator` (it crashed); returns how many.
  std::size_t revoke_all(const std::string& creator);

 private:
  struct Grant {
    std::string creator;
    std::string grantee;
    Queue* queue;
  };
  std::map<Credential, Grant> grants_;
  Credential next_ = 1;
};

}  // namespace newtos::chan
