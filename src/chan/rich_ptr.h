// Rich pointers: location-independent references into shared memory pools.
//
// A rich pointer names *which pool* and *where in the pool* a chunk of data
// lives (Section IV, "Pools").  Any component that has attached the pool can
// translate it to a local view; components pass packets as chains of rich
// pointers instead of copying payload (Section V-C, "Zero Copy").
#pragma once

#include <cstdint>

namespace newtos::chan {

struct RichPtr {
  std::uint32_t pool = 0;        // pool id; 0 is never a valid pool
  std::uint32_t offset = 0;      // byte offset of the chunk within the pool
  std::uint32_t length = 0;      // chunk length in bytes
  std::uint32_t generation = 0;  // pool generation; stale after a pool reset

  bool valid() const { return pool != 0 && length != 0; }

  friend bool operator==(const RichPtr&, const RichPtr&) = default;
};

inline constexpr RichPtr kNullRichPtr{};

}  // namespace newtos::chan
