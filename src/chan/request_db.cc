#include "src/chan/request_db.h"

#include <utility>

namespace newtos::chan {

std::uint64_t RequestDb::add(std::string peer, std::uint64_t cookie,
                             AbortFn on_abort) {
  const std::uint64_t id = next_id_++;
  requests_.emplace(id, Request{std::move(peer), cookie, std::move(on_abort)});
  return id;
}

bool RequestDb::complete(std::uint64_t id, std::uint64_t* cookie) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return false;
  if (cookie != nullptr) *cookie = it->second.cookie;
  requests_.erase(it);
  return true;
}

std::size_t RequestDb::abort_peer(const std::string& peer) {
  // Collect first: abort actions may add new requests (e.g. resubmission).
  std::vector<std::pair<std::uint64_t, Request>> doomed;
  for (auto it = requests_.begin(); it != requests_.end();) {
    if (it->second.peer == peer) {
      doomed.emplace_back(it->first, std::move(it->second));
      it = requests_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto& [id, req] : doomed) {
    if (req.on_abort) req.on_abort(id, req.cookie);
  }
  return doomed.size();
}

std::size_t RequestDb::abort_all() {
  std::vector<std::pair<std::uint64_t, Request>> doomed;
  for (auto& [id, req] : requests_) doomed.emplace_back(id, std::move(req));
  requests_.clear();
  for (auto& [id, req] : doomed) {
    if (req.on_abort) req.on_abort(id, req.cookie);
  }
  return doomed.size();
}

}  // namespace newtos::chan
