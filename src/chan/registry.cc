#include "src/chan/registry.h"

#include <utility>

namespace newtos::chan {

void Registry::publish(const std::string& key, Published value) {
  published_[key] = std::move(value);
  // Copy the subscriber list: callbacks may subscribe/unsubscribe.
  std::vector<SubFn> to_fire;
  for (auto& [id, sub] : subs_) {
    if (sub.key == key) to_fire.push_back(sub.fn);
  }
  const Published& stored = published_[key];
  for (auto& fn : to_fire) fn(key, stored, /*up=*/true, /*replay=*/false);
}

void Registry::unpublish(const std::string& key) {
  auto it = published_.find(key);
  if (it == published_.end()) return;
  const Published gone = it->second;
  published_.erase(it);
  std::vector<SubFn> to_fire;
  for (auto& [id, sub] : subs_) {
    if (sub.key == key) to_fire.push_back(sub.fn);
  }
  for (auto& fn : to_fire) fn(key, gone, /*up=*/false, /*replay=*/false);
}

std::optional<Published> Registry::lookup(const std::string& key) const {
  auto it = published_.find(key);
  if (it == published_.end()) return std::nullopt;
  return it->second;
}

Registry::SubId Registry::subscribe(const std::string& key, SubFn fn) {
  const SubId id = next_sub_++;
  subs_.emplace(id, Sub{key, fn});
  auto it = published_.find(key);
  if (it != published_.end()) fn(key, it->second, /*up=*/true, /*replay=*/true);
  return id;
}

void Registry::unsubscribe(SubId id) { subs_.erase(id); }

ChannelManager::Credential ChannelManager::export_queue(
    const std::string& creator, const std::string& grantee, Queue* q) {
  const Credential cred = next_++;
  grants_.emplace(cred, Grant{creator, grantee, q});
  return cred;
}

Queue* ChannelManager::attach(const std::string& who, Credential cred) {
  auto it = grants_.find(cred);
  if (it == grants_.end()) return nullptr;
  if (it->second.grantee != who) return nullptr;
  return it->second.queue;
}

std::size_t ChannelManager::revoke_all(const std::string& creator) {
  std::size_t n = 0;
  for (auto it = grants_.begin(); it != grants_.end();) {
    if (it->second.creator == creator) {
      it = grants_.erase(it);
      ++n;
    } else {
      ++it;
    }
  }
  return n;
}

}  // namespace newtos::chan
