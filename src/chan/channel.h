// Channel queues and doorbells.
//
// A Queue is one unidirectional sender→consumer channel: an SPSC ring of
// fixed-size messages plus a doorbell word.  When the consumer has drained
// its queues it arms the doorbell and halts its core (the kernel-assisted
// MONITOR/MWAIT of Section IV-B); the next producer write rings the bell and
// wakes it.  In the simulator the wakeup costs CostModel::mwait_wakeup; with
// real threads the doorbell degenerates to a callback.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>

#include "src/chan/message.h"
#include "src/chan/spsc_ring.h"

namespace newtos::chan {

class Doorbell {
 public:
  using WakeFn = std::function<void()>;

  // Consumer: arm before halting.  The callback fires on the next ring.
  void arm(WakeFn on_ring) {
    on_ring_ = std::move(on_ring);
    armed_ = true;
  }
  void disarm() {
    armed_ = false;
    on_ring_ = nullptr;
  }
  bool armed() const { return armed_; }

  // Producer: called after every enqueue.  Consumes the arming.
  void ring() {
    if (!armed_) return;
    armed_ = false;
    WakeFn fn = std::move(on_ring_);
    on_ring_ = nullptr;
    fn();
  }

 private:
  bool armed_ = false;
  WakeFn on_ring_;
};

class Queue {
 public:
  Queue(std::string name, std::size_t capacity)
      : name_(std::move(name)), ring_(capacity) {}

  const std::string& name() const { return name_; }

  // Producer side.  Never blocks; false means the queue is full and the
  // caller must apply its drop/defer policy (Section IV-A).
  bool try_send(const Message& m) {
    if (!ring_.try_push(m)) {
      ++send_failures_;
      return false;
    }
    ++sends_;
    bell_.ring();
    return true;
  }

  // Consumer side.
  bool try_recv(Message& out) {
    if (!ring_.try_pop(out)) return false;
    ++recvs_;
    return true;
  }

  bool empty() const { return ring_.empty(); }
  std::size_t size() const { return ring_.size(); }
  std::size_t capacity() const { return ring_.capacity(); }
  Doorbell& doorbell() { return bell_; }

  // Crash support: drop contents (messages in flight to/from a dead server
  // are meaningless; the request database drives recovery).
  void reset() {
    ring_.reset();
    bell_.disarm();
  }

  std::uint64_t sends() const { return sends_; }
  std::uint64_t recvs() const { return recvs_; }
  std::uint64_t send_failures() const { return send_failures_; }

 private:
  std::string name_;
  SpscRing<Message> ring_;
  Doorbell bell_;
  std::uint64_t sends_ = 0;
  std::uint64_t recvs_ = 0;
  std::uint64_t send_failures_ = 0;
};

}  // namespace newtos::chan
