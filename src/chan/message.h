// Fixed-size message slot carried by channel queues.
//
// All slots on one queue have the same size (Section IV): a cache line.
// Bulk data never travels inside messages — only rich pointers do.
#pragma once

#include <cstdint>

#include "src/chan/rich_ptr.h"

namespace newtos::chan {

struct Message {
  std::uint16_t opcode = 0;   // what the receiver should do next
  std::uint16_t flags = 0;
  std::uint32_t socket = 0;   // socket / connection id, when applicable
  std::uint64_t req_id = 0;   // request-database id for request/reply pairs
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  std::uint64_t arg2 = 0;
  RichPtr ptr;                // main payload descriptor
};

static_assert(sizeof(Message) <= 64, "a message must fit one cache line");

}  // namespace newtos::chan
