// Application actors and the socket API.
//
// Applications are event-driven actors on application cores.  Their POSIX
// system calls become kernel-IPC messages (Section V-B): to the SYSCALL
// server when the configuration has one, straight into the transports
// otherwise (Table II line 2 — the transports then pay the trapping toll).
// The data path bypasses the SYSCALL server entirely: socket buffers are
// exported to the application, which reads received data and writes send
// payloads directly into the transport's pool (Section V-B, "the actual
// data bypass the SYSCALL").
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>

#include "src/core/config.h"
#include "src/net/tcp.h"
#include "src/net/udp.h"
#include "src/servers/server.h"

namespace newtos {

class Node;

// An application process pinned to an application core.
class AppActor : public servers::Server {
 public:
  AppActor(servers::NodeEnv* env, std::string name, sim::SimCore* core);

  // Entry point, run once at boot.
  void set_main(std::function<void(sim::Context&)> main);
  // Schedules `fn` on this app's core.
  void call(std::function<void(sim::Context&)> fn, sim::Cycles cost = 200);
  // Schedules `fn` after a delay (sleep/poll loops).
  void call_after(sim::Time delay, std::function<void(sim::Context&)> fn);

 protected:
  void start(bool restart) override;
  void on_message(const std::string&, const chan::Message&,
                  sim::Context&) override {}

 private:
  std::function<void(sim::Context&)> main_;
};

class SocketApi {
 public:
  struct Handle {
    char proto = 'T';
    std::uint32_t sock = 0;
    bool valid() const { return sock != 0; }
  };
  using OpenCb = std::function<void(Handle)>;  // !valid() on failure
  using StatusCb = std::function<void(bool ok)>;
  using EventCb = std::function<void(net::TcpEvent)>;

  explicit SocketApi(Node& node);

  // --- control path (kernel IPC / SYSCALL server) --------------------------------
  void open(AppActor& app, char proto, OpenCb cb);
  void bind(AppActor& app, Handle h, net::Ipv4Addr addr, std::uint16_t port,
            StatusCb cb);
  void listen(AppActor& app, Handle h, int backlog, StatusCb cb);
  void connect(AppActor& app, Handle h, net::Ipv4Addr addr,
               std::uint16_t port, StatusCb cb);
  void close(AppActor& app, Handle h, StatusCb cb);
  // Copies `len` bytes into the exported socket buffer and submits a send.
  void send(AppActor& app, Handle h, std::uint32_t len, StatusCb cb);
  void sendto(AppActor& app, Handle h, std::uint32_t len, net::Ipv4Addr addr,
              std::uint16_t port, StatusCb cb);

  // --- data fast path (exported socket buffers, Section V-B) -----------------------
  std::size_t send_space(Handle h) const;
  std::size_t recv(AppActor& app, Handle h, std::span<std::byte> out);
  std::size_t recv_available(Handle h) const;
  std::optional<net::UdpEngine::Datagram> recvfrom(AppActor& app, Handle h);
  std::optional<Handle> accept(AppActor& app, Handle h);

  // --- events ------------------------------------------------------------------------
  void set_event_handler(Handle h, AppActor* app, EventCb cb);
  void clear_event_handler(Handle h);
  // Wired to NodeEnv::sock_event by the node.
  void dispatch_event(char proto, std::uint32_t sock, std::uint8_t event);

  net::TcpEngine* tcp() const;
  net::UdpEngine* udp() const;

 private:
  using DeliverFn = std::function<void(const chan::Message&)>;
  void route(AppActor& app, char proto, chan::Message m, DeliverFn deliver);
  DeliverFn to_app(AppActor& app, std::function<void(const chan::Message&)>
                                      on_reply);

  Node& node_;
  std::map<std::pair<char, std::uint32_t>, std::pair<AppActor*, EventCb>>
      handlers_;
  std::uint64_t next_req_ = 1;
};

}  // namespace newtos
