// Application actors and the object-oriented async socket API.
//
// Applications are event-driven actors on application cores.  Socket
// *control* ops (open/bind/listen/connect/send submission/close) are queued
// into the app's per-process submission ring and flushed in batches — one
// kernel-IPC trap per batch — to the SYSCALL server when the configuration
// has one, straight into the transports otherwise (Table II line 2: the
// transports then pay the trapping toll).  Completions drain from the app's
// completion ring, again under a single kernel message (see
// src/core/socket_ring.h).
//
// The *data* path bypasses all of that: socket buffers are exported to the
// application, which reads received data and writes send payloads directly
// into the transport's pool (Section V-B, "the actual data bypass the
// SYSCALL").
//
// Since the chunk-lending redesign the data plane is zero-copy end to end
// (Section V-C): recv_zc()/consume() lend the application read-only views
// over the live pool chunks in the receive queue, reserve()/submit() lend
// it writable chunks it fills in place and submits as a rich-pointer chain,
// and forward() re-submits received chunks on another socket without
// touching a byte.  recv(span)/send(len) survive as thin copying wrappers
// over the same machinery; every byte they copy shows up in the node's
// "sock.bytes_copied" counter, which stays at zero on the lending paths.
//
// TcpSocket / UdpSocket / TcpListener are RAII handles owned by application
// code: destroying one closes the kernel socket (batched like any other op)
// and unregisters its event handler.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>

#include "src/core/config.h"
#include "src/core/socket_ring.h"
#include "src/net/tcp.h"
#include "src/net/udp.h"
#include "src/servers/server.h"

namespace newtos {

class Node;

// An application process pinned to an application core.
class AppActor : public servers::Server {
 public:
  AppActor(servers::NodeEnv* env, std::string name, sim::SimCore* core);
  ~AppActor() override;

  // Entry point, run once at boot.
  void set_main(std::function<void(sim::Context&)> main);
  // Schedules `fn` on this app's core.
  void call(std::function<void(sim::Context&)> fn, sim::Cycles cost = 200);
  // Schedules `fn` after a delay (sleep/poll loops).
  void call_after(sim::Time delay, std::function<void(sim::Context&)> fn);

  // The app's submission/completion ring (attached by Node::add_app).
  SocketRing& ring() { return *ring_; }
  void attach_ring(std::unique_ptr<SocketRing> ring);

  // Identity under which this app appears in the pools' loan ledgers
  // (borrowed datagram views, send reservations).  Set by Node::add_app.
  std::uint32_t borrower_id() const { return borrower_id_; }
  void set_borrower_id(std::uint32_t id) { borrower_id_ = id; }

 protected:
  void start(bool restart) override;
  void on_message(const std::string&, const chan::Message&,
                  sim::Context&) override {}
  // A dying app cannot return its loans: reclaim every chunk it still
  // borrowed so a crash never strands one (Pool::reclaim).
  void on_killed() override;

 private:
  std::function<void(sim::Context&)> main_;
  std::unique_ptr<SocketRing> ring_;
  std::uint32_t borrower_id_ = 0;
};

// --- zero-copy data-plane currency (Section V-C) -------------------------------------

// A bounded scatter list of read-only views over the live pool chunks that
// hold a TCP socket's in-order received data.  No bytes move; the views
// stay valid until the application consume()s past them (or the handler
// turn ends — do not stash a RecvView).
struct RecvView {
  static constexpr std::size_t kMaxChunks = 8;
  std::array<std::span<const std::byte>, kMaxChunks> chunk{};
  std::size_t chunks = 0;
  std::size_t bytes = 0;
  bool empty() const { return bytes == 0; }
};

// Writable pool chunks obtained once and filled in place — the exported
// socket buffer of Section V-B, handed out as an explicit loan.  submit()
// (on the owning socket) passes the chunk chain down the submission ring
// without copying; destroying an unsubmitted reservation returns the loan.
class SendReservation {
 public:
  SendReservation() = default;
  SendReservation(SendReservation&& o) noexcept;
  SendReservation& operator=(SendReservation&& o) noexcept;
  ~SendReservation() { cancel(); }
  SendReservation(const SendReservation&) = delete;
  SendReservation& operator=(const SendReservation&) = delete;

  bool valid() const { return !chunks_.empty(); }
  std::size_t size() const { return bytes_; }
  std::size_t chunk_count() const { return chunks_.size(); }
  // Writable in-place view of chunk `i` (stale after a transport restart
  // reset the pool; the span is then empty).
  std::span<std::byte> chunk(std::size_t i);
  // Returns the chunks to the pool without sending.  Safe to call twice.
  void cancel();

 private:
  friend class TcpSocket;
  friend class UdpSocket;

  Node* node_ = nullptr;
  std::uint32_t borrower_ = 0;
  std::size_t bytes_ = 0;
  std::vector<chan::RichPtr> chunks_;
};

// A datagram lent to the application: a read-only view straight into the
// receive-pool frame the NIC wrote.  The frame reference travels with this
// object; release() (or the destructor) hands it back to the owning pool
// exactly once — double releases and releases against a reset pool (stale
// generation) are safe no-ops thanks to the pool's loan ledger.
class BorrowedDatagram {
 public:
  BorrowedDatagram() = default;
  BorrowedDatagram(BorrowedDatagram&& o) noexcept;
  BorrowedDatagram& operator=(BorrowedDatagram&& o) noexcept;
  ~BorrowedDatagram() { release(); }
  BorrowedDatagram(const BorrowedDatagram&) = delete;
  BorrowedDatagram& operator=(const BorrowedDatagram&) = delete;

  bool valid() const { return frame_.valid(); }
  // Empty once the owning pool was reset (the loan went stale).
  std::span<const std::byte> data() const;
  net::Ipv4Addr src() const { return src_; }
  std::uint16_t sport() const { return sport_; }
  void release();

 private:
  friend class UdpSocket;

  Node* node_ = nullptr;
  std::uint32_t borrower_ = 0;
  chan::RichPtr frame_;
  chan::RichPtr data_;
  net::Ipv4Addr src_;
  std::uint16_t sport_ = 0;
};

using SockStatusFn = std::function<void(bool ok)>;
using SockEventFn = std::function<void(net::TcpEvent)>;

// Base of the RAII socket objects.  Not copyable or movable: event handlers
// and in-flight completions are anchored to a shared state block, so the
// object itself can die at any time without dangling callbacks.
class Socket {
 public:
  virtual ~Socket();
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return st_->id != 0; }
  std::uint32_t id() const { return st_->id; }
  char proto() const { return st_->proto; }
  AppActor& app() const { return *st_->app; }

  // Registers the readiness-event handler (Connected/Readable/Writable/
  // Reset/...).  May be called before the kernel socket exists; the
  // registration happens as soon as the open completes.
  void on_event(SockEventFn fn);

  // Releases the kernel socket (one batched op).  Safe to call twice; the
  // destructor calls it implicitly.
  void close(SockStatusFn cb = {});

 protected:
  struct State {
    AppActor* app = nullptr;
    Node* node = nullptr;
    char proto = 'T';
    std::uint32_t id = 0;
    bool opening = false;
    bool closed = false;
    std::uint64_t open_cookie = 0;
    // Payload bytes submitted but not yet completed by the transport.
    // forward() subtracts this from the engine's send space so it never
    // consumes bytes an un-flushed submission will already occupy.
    std::uint64_t inflight_tx = 0;
    // Ops issued after the open's batch already flushed but before its
    // completion arrived; replayed (with the real id) when it does.
    std::vector<std::pair<SockSqe, SocketRing::CompletionFn>> deferred;
    SockEventFn on_event;
  };

  Socket(AppActor& app, char proto);
  Socket(AppActor& app, char proto, std::uint32_t adopt_id);

  // Submits a control op against this socket.  When the kernel socket does
  // not exist yet, a kSockOpen is queued first and the op targets it via
  // the in-batch sentinel — one trap for open+connect, or open+bind+listen.
  // If the open already flushed but has not completed, the op is held and
  // replayed on completion.
  void submit_ctl(SockSqe op, SocketRing::CompletionFn cb);
  SocketRing& ring() const;
  Node& node() const { return *st_->node; }
  // Wraps a user callback so it is dropped once the object died and
  // adapts the CQE to the bool the app cares about.
  SocketRing::CompletionFn status_cb(SockStatusFn cb) const;

  static void register_events(const std::shared_ptr<State>& st);

  std::shared_ptr<State> st_;
};

// A TCP connection endpoint.
class TcpSocket : public Socket {
 public:
  explicit TcpSocket(AppActor& app);
  // Wraps an already-established connection (TcpListener::accept).
  TcpSocket(AppActor& app, std::uint32_t accepted_id);

  // Queues open (if needed) + connect in one flush.  `cb` reports whether
  // the transport accepted the call; the Connected/Reset event reports the
  // handshake outcome.
  void connect(net::Ipv4Addr dst, std::uint16_t port, SockStatusFn cb);
  // LEGACY copy path: copies `len` bytes into the exported socket buffer
  // (counted in "sock.bytes_copied") and queues the send submission.  A
  // thin wrapper over reserve()+submit().
  void send(std::uint32_t len, SockStatusFn cb);

  // --- zero-copy data plane (chunk lending, Section V-C) --------------------------
  // Views over the live pool chunks holding the in-order received stream.
  // (Purges stale front chunks — a pool the owner reset — as a side
  // effect, so the queue can never wedge behind dead frames.)
  RecvView recv_zc();
  // Advances the stream by up to `n` bytes: releases fully consumed chunks
  // back to their owner and drives the window-update logic.  Returns the
  // bytes consumed.  Invalidates outstanding RecvViews.
  std::size_t consume(std::size_t n);
  // Obtains writable pool chunks covering `len` bytes, split into pieces of
  // at most `chunk_bytes` (0 = one chunk).  !valid() on pool exhaustion
  // ("sock.enobufs" counts it); nothing was queued in that case.
  SendReservation reserve(std::uint32_t len, std::uint32_t chunk_bytes = 0);
  // Submits a filled reservation: one kSockSend per chunk, all riding the
  // same flush — the rich-pointer chain travels untouched to the NIC.  `cb`
  // fires once with the combined outcome (err kSockENoBufs for an invalid
  // reservation).
  void submit(SendReservation res, SockStatusFn cb = {});
  // Zero-copy splice: re-submits up to `max_bytes` of received chunks on
  // `dst` (same node) without touching the bytes, consuming them from this
  // socket.  Bounded by dst's send space.  Returns the bytes moved.
  std::size_t forward(TcpSocket& dst, std::size_t max_bytes,
                      SockStatusFn cb = {});

  // --- data fast path (exported socket buffers, Section V-B) ---------------------
  std::size_t send_space() const;
  // LEGACY copy path over recv_zc()/consume(); counted in
  // "sock.bytes_copied".
  std::size_t recv(std::span<std::byte> out);
  std::size_t recv_available() const;

 private:
  // Submits `pieces` as kSockSend ops riding one flush, with in-flight
  // byte accounting and one aggregate completion for the whole chain.
  void submit_chain(std::vector<chan::RichPtr> pieces, SockStatusFn cb);
};

// A passive TCP socket.
class TcpListener : public Socket {
 public:
  explicit TcpListener(AppActor& app);

  // Queues open + bind + listen as ONE batch — three ops, one trap.  `cb`
  // fires once with the combined outcome.
  void bind_listen(net::Ipv4Addr addr, std::uint16_t port, int backlog,
                   SockStatusFn cb);
  // Fast path: pops one pending connection from the accept queue, nullptr
  // when it is empty.  Call on TcpEvent::AcceptReady.
  std::unique_ptr<TcpSocket> accept();
};

// A UDP socket.
class UdpSocket : public Socket {
 public:
  explicit UdpSocket(AppActor& app);

  void bind(net::Ipv4Addr addr, std::uint16_t port, SockStatusFn cb);
  // Presets the peer; datagrams from others are filtered by the engine.
  void connect(net::Ipv4Addr peer, std::uint16_t port, SockStatusFn cb);
  // LEGACY copy path: copies `len` payload bytes into the exported buffer
  // (counted in "sock.bytes_copied") and queues the datagram; a zero `dst`
  // uses the connected peer.  A thin wrapper over reserve()+submit().
  void sendto(std::uint32_t len, net::Ipv4Addr dst, std::uint16_t port,
              SockStatusFn cb);

  // --- zero-copy data plane (chunk lending, Section V-C) --------------------------
  // One writable chunk for a `len`-byte datagram; !valid() on exhaustion.
  SendReservation reserve(std::uint32_t len);
  // Submits the filled chunk as the datagram payload, no copy.  A zero
  // `dst` uses the connected peer.
  void submit(SendReservation res, net::Ipv4Addr dst, std::uint16_t port,
              SockStatusFn cb = {});
  // Borrows the next datagram as a view into the live receive-pool frame;
  // the caller releases it (RAII) when done.
  std::optional<BorrowedDatagram> recvfrom_zc();

  // LEGACY copy path over recvfrom_zc(); counted in "sock.bytes_copied".
  std::optional<net::UdpEngine::Datagram> recvfrom();
};

// DEPRECATED: the flat per-call façade the OO API replaced.  It survives as
// a thin shim over the submission ring (every call is a batch of one) for
// stragglers; new code uses TcpSocket/UdpSocket/TcpListener.  The node
// still routes readiness events through it (dispatch_event), which is why
// it also hosts the event-handler registry the socket objects register
// with.
class SocketApi {
 public:
  struct Handle {
    char proto = 'T';
    std::uint32_t sock = 0;
    bool valid() const { return sock != 0; }
  };
  using OpenCb = std::function<void(Handle)>;  // !valid() on failure
  using StatusCb = std::function<void(bool ok)>;
  using EventCb = std::function<void(net::TcpEvent)>;

  explicit SocketApi(Node& node);

  // --- control path shim (one ring op per call) ----------------------------------
  void open(AppActor& app, char proto, OpenCb cb);
  void bind(AppActor& app, Handle h, net::Ipv4Addr addr, std::uint16_t port,
            StatusCb cb);
  void listen(AppActor& app, Handle h, int backlog, StatusCb cb);
  void connect(AppActor& app, Handle h, net::Ipv4Addr addr,
               std::uint16_t port, StatusCb cb);
  void close(AppActor& app, Handle h, StatusCb cb);
  void send(AppActor& app, Handle h, std::uint32_t len, StatusCb cb);
  void sendto(AppActor& app, Handle h, std::uint32_t len, net::Ipv4Addr addr,
              std::uint16_t port, StatusCb cb);

  // --- data fast path (exported socket buffers, Section V-B) -----------------------
  std::size_t send_space(Handle h) const;
  std::size_t recv(AppActor& app, Handle h, std::span<std::byte> out);
  std::size_t recv_available(Handle h) const;
  std::optional<net::UdpEngine::Datagram> recvfrom(AppActor& app, Handle h);
  std::optional<Handle> accept(AppActor& app, Handle h);

  // --- events ------------------------------------------------------------------------
  void set_event_handler(Handle h, AppActor* app, EventCb cb);
  void clear_event_handler(Handle h);
  // Wired to NodeEnv::sock_event by the node.  `shard` names the transport
  // replica that raised the event — for replicated state (listener accept
  // queues, UDP sockets) it can differ from the socket id's home shard.
  void dispatch_event(int shard, char proto, std::uint32_t sock,
                      std::uint8_t event);

 private:
  Node& node_;
  std::map<std::pair<char, std::uint32_t>, std::pair<AppActor*, EventCb>>
      handlers_;
};

}  // namespace newtos
