// Node: one simulated machine — cores, kernel, pools, registry, NICs and the
// networking stack arranged per NodeConfig (Figure 1 / Figure 2).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/chan/pool.h"
#include "src/chan/registry.h"
#include "src/core/config.h"
#include "src/core/socket.h"
#include "src/core/stats.h"
#include "src/drv/nic.h"
#include "src/drv/wire.h"
#include "src/kipc/kipc.h"
#include "src/servers/ip_server.h"
#include "src/servers/pf_server.h"
#include "src/servers/reincarnation.h"
#include "src/servers/stack_server.h"
#include "src/servers/storage.h"
#include "src/servers/syscall_server.h"
#include "src/servers/tcp_server.h"
#include "src/servers/udp_server.h"
#include "src/sim/sim.h"

namespace newtos {

class Node {
 public:
  Node(sim::Simulator& sim, NodeConfig cfg);
  ~Node();

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // Attach NIC `i` to a wire endpoint before (or after) boot.
  void attach_wire(int nic_index, drv::Wire* wire, int end);
  // Boots every server (reincarnation and storage first).
  void boot();

  // --- topology accessors ---------------------------------------------------------
  drv::SimNic* nic(int i) { return nics_.at(i).get(); }
  int nic_count() const { return static_cast<int>(nics_.size()); }
  net::Ipv4Addr addr(int nic_index) const;
  net::Ipv4Addr peer_addr(int nic_index) const;  // the other host's address

  // --- applications ------------------------------------------------------------------
  // Creates an application actor, attaches its submission/completion ring
  // (see src/core/socket_ring.h) and boots it.
  AppActor* add_app(const std::string& name);
  SocketApi& sockets() { return *sockets_; }

  // Publishes per-queue "chan.<queue>.send_failures" counters (plus the
  // "chan.send_failures" total) and the drivers' "drv.rx_dropped" into
  // stats() and returns the send-failure total — the Section IV-A
  // drop/defer policy made visible instead of silent.
  std::uint64_t publish_channel_stats();
  // Messages successfully sent over this node's channels so far — the
  // numerator of the benches' msgs-per-frame datapoints.
  std::uint64_t total_channel_messages() const;

  // --- servers -------------------------------------------------------------------------
  servers::Server* server(const std::string& name);
  servers::ReincarnationServer* reincarnation() { return rs_; }
  servers::SyscallServer* syscall() { return syscall_; }
  servers::StorageServer* storage() { return store_; }
  // Shard 0's engines (the only ones in every single-shard arrangement).
  net::TcpEngine* tcp_engine() const { return tcp_engine(0); }
  net::UdpEngine* udp_engine() const { return udp_engine(0); }
  // Sharded transport plane: per-replica engines and counts.  Connections
  // live on the replica their socket id encodes (net::sock_shard).
  net::TcpEngine* tcp_engine(int shard) const;
  net::UdpEngine* udp_engine(int shard) const;
  int tcp_shard_count() const;
  int udp_shard_count() const;
  // The server hosting the given transport replica (for fast-path context
  // borrowing).
  servers::Server* transport_server(char proto, int shard = 0) const;
  net::IpEngine* ip_engine() const;
  servers::StackServer* stack_server() { return stack_; }
  // Round-robin shard assignment for new sockets on the direct (no-SYSCALL)
  // control path; the SYSCALL server keeps its own cursors.
  servers::ShardCursors& direct_open_cursors() { return direct_open_rr_; }

  // Components eligible for fault injection (Table III).
  std::vector<std::string> injectable() const;
  // Operator-driven restart (the paper's "manually restarting ... solved the
  // problem" cases).
  void manual_restart(const std::string& name);

  // The unconverted synchronous part of the system (select/VFS merge) hung:
  // only a reboot helps (3 cases in Table IV).  Modelled as a flag set by
  // the fault injector; see DESIGN.md.
  void set_requires_reboot() { requires_reboot_ = true; }
  bool requires_reboot() const { return requires_reboot_; }

  const NodeConfig& config() const { return cfg_; }
  sim::Simulator& sim() { return sim_; }
  servers::NodeEnv& node_env() { return env_; }
  chan::PoolRegistry& pools() { return pools_; }
  StatsHub& stats() { return stats_; }

 private:
  void build();
  net::IpConfig make_ip_config() const;
  std::vector<net::PfRule> make_rules() const;
  sim::SimCore* fresh_core(const std::string& name);

  sim::Simulator& sim_;
  NodeConfig cfg_;

  chan::PoolRegistry pools_;
  chan::Registry registry_;
  chan::ChannelManager chmgr_;
  kipc::KernelIpc kernel_;
  servers::NodeEnv env_;
  StatsHub stats_;

  std::map<std::string, std::unique_ptr<chan::Queue>> queues_;
  std::map<std::string, chan::Pool*> named_pools_;
  std::vector<std::unique_ptr<drv::SimNic>> nics_;

  std::map<std::string, std::unique_ptr<servers::Server>> servers_;
  std::vector<std::string> boot_order_;
  std::vector<std::unique_ptr<AppActor>> apps_;

  servers::ReincarnationServer* rs_ = nullptr;
  servers::StorageServer* store_ = nullptr;
  servers::SyscallServer* syscall_ = nullptr;
  std::vector<servers::TcpServer*> tcp_shards_;  // one replica per shard
  std::vector<servers::UdpServer*> udp_shards_;
  servers::IpServer* ip_ = nullptr;
  servers::PfServer* pf_ = nullptr;
  servers::StackServer* stack_ = nullptr;
  servers::ShardCursors direct_open_rr_;

  std::unique_ptr<SocketApi> sockets_;
  sim::SimCore* shared_core_ = nullptr;  // MINIX mode: one core for all
  std::uint32_t next_borrower_ = 1;      // pool loan-ledger ids for apps
  bool requires_reboot_ = false;
};

}  // namespace newtos
