// Node configurations: the rows of Table II as first-class citizens.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/net/pf.h"
#include "src/net/tcp.h"

namespace newtos {

// How the networking stack is arranged on the node.
enum class StackMode {
  // Table II line 1: the original MINIX 3 — one combined stack server,
  // separate drivers, applications, all timesharing ONE core, every message
  // through synchronous kernel IPC.
  kMinixSync,
  // Line 2: NewtOS split stack (TCP/UDP/IP/PF/driver servers on dedicated
  // cores, channels), but applications trap directly into the transports.
  kSplit,
  // Line 3 (and 6 with TSO): split stack plus the SYSCALL server.
  kSplitSyscall,
  // Line 4 (and 5 with TSO): one combined stack server on a dedicated core,
  // separate driver servers, SYSCALL server.
  kSingleServer,
  // Line 7 reference: in-process stack with inline drivers and no IPC;
  // also used as the remote traffic peer in every experiment.
  kIdealMonolithic,
};

const char* to_string(StackMode m);

struct NodeConfig {
  std::string name = "newtos";
  StackMode mode = StackMode::kSplitSyscall;
  int nics = 1;
  double wire_gbps = 1.0;  // per NIC (the wire object is external; this is
                           // recorded for reporting only)
  bool tso = false;
  bool csum_offload = true;
  bool use_pf = true;
  // Synthetic rule table prepended to the defaults (Figure 5 recovers 1024).
  int pf_filler_rules = 0;
  double cost_scale = 1.0;
  net::TcpOptions tcp;
  std::uint32_t app_write_size = 8192;
  // Sharded transport plane: N replicated TCP/UDP servers, inbound frames
  // steered by 4-tuple hash (split arrangements only; combined stacks
  // always run one engine pair).  The default of 1 keeps every Table II
  // row exactly what it always was.
  int tcp_shards = 1;
  int udp_shards = 1;
  // Receive-side batching, the RX mirror of TSO.  Default off: every
  // Table II row keeps the classic one-interrupt-one-message-per-frame
  // path, byte for byte.  With rx_coalesce_frames > 1 the NICs coalesce RX
  // interrupts into bursts (bounded by the frame count and the usec
  // hold-off) and each burst crosses driver -> IP as one kDrvRxBurst
  // message; with gro additionally set, IP merges in-order same-flow TCP
  // segments of a burst into one kL4RxAgg super-segment for the transport.
  int rx_coalesce_frames = 0;
  std::uint32_t rx_coalesce_usecs = 50;
  bool gro = false;
  // Multi-queue NIC RSS (split arrangements only).  Default 1: one RX queue
  // per NIC and every Table II row keeps the classic driver -> IP receive
  // path, byte for byte.  With rx_queues > 1 each NIC hashes steerable
  // frames (IPv4 TCP/UDP with readable ports) across N RX queues with the
  // same 4-tuple hash the transport plane steers by, the driver polls each
  // queue separately, and a queue's frames whose home shard index equals
  // the queue index are posted straight to that replica (kDrvRxFast) —
  // running the hoisted IP receive work (src/net/ip_fastpath.h) on the
  // shard's own core instead of the central IP core.  Everything else
  // falls back to the classic path.
  int rx_queues = 1;
  // Transparent TCP recovery (split arrangements only).  Default off: the
  // Table I trade-off stands and every Table II row is byte-identical.
  // With it on, established connections journal per-connection TCB
  // checkpoints (pool-resident pages + a compact storage-server record per
  // connection, refreshed every tcp_ckpt_watermark bytes) and survive a
  // TCP server crash with only a throughput dip.
  bool tcp_checkpoint = false;
  std::uint32_t tcp_ckpt_watermark = 256 * 1024;
  // Congestion-control algorithm for TCP connections on this node
  // ("newreno" | "cubic" | "bbr").  The default reproduces the classic
  // NewReno behaviour byte for byte; per-port overrides (matched against
  // either the local or the peer port) let one node run a mix of
  // algorithms, which is how the dumbbell fairness bench pits flows
  // against each other.
  std::string tcp_cc = "newreno";
  std::vector<std::pair<std::uint16_t, std::string>> tcp_cc_by_port;
  // Receiver-side out-of-order reassembly budget in segments.  Default 0
  // keeps the classic drop-and-dup-ACK receiver; a WAN wire that reorders
  // needs a few slots here so displaced frames do not masquerade as loss.
  std::uint32_t tcp_ooo_queue = 0;
  // End-to-end work probes from the reincarnation server (synthetic echo
  // rs -> tcpN -> ip -> pf and back) so a silently wedged transport — the
  // one fault class heartbeats cannot see — is restarted automatically.
  // Default off: the paper's manual-restart behaviour stands.
  bool work_probes = false;
  // Self-healing supervision plane (the escalation ladder of DESIGN.md):
  // work probes to all five component classes, an EWMA-based probe-RTT SLO
  // (slowdown detection), a driver-side NIC wedge watchdog, and restart
  // budgets with exponential backoff.  Default off: every Table II/III/IV
  // baseline is byte-identical; the paper's manual-restart behaviour stands.
  bool supervision = false;
  // Addressing: NIC i sits on 10.(subnet_base+i).0.0/24; this host takes
  // .1 when `left`, .2 otherwise.
  std::uint8_t subnet_base = 1;
  bool left = true;

  bool split_stack() const {
    return mode == StackMode::kSplit || mode == StackMode::kSplitSyscall;
  }
  bool has_syscall_server() const {
    return mode == StackMode::kSplitSyscall ||
           mode == StackMode::kSingleServer;
  }
  bool combined_stack() const {
    return mode == StackMode::kMinixSync ||
           mode == StackMode::kSingleServer ||
           mode == StackMode::kIdealMonolithic;
  }
};

}  // namespace newtos
