// Measurement hub: counters, time series and an event log, shared by the
// workload apps, the fault injector and the benchmark harnesses.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace newtos {

struct TimePoint {
  sim::Time t = 0;
  double value = 0.0;
};

class StatsHub {
 public:
  // Counters.
  void add(const std::string& name, std::uint64_t delta = 1) {
    counters_[name] += delta;
  }
  std::uint64_t get(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  void reset(const std::string& name) { counters_[name] = 0; }
  // Overwrites (for gauges sampled from elsewhere, e.g. queue drop totals).
  void set(const std::string& name, std::uint64_t value) {
    counters_[name] = value;
  }

  // Time series (e.g. bitrate samples for Figures 4 and 5).
  void record(const std::string& series, sim::Time t, double value) {
    series_[series].push_back(TimePoint{t, value});
  }
  const std::vector<TimePoint>& series(const std::string& name) const {
    static const std::vector<TimePoint> empty;
    auto it = series_.find(name);
    return it == series_.end() ? empty : it->second;
  }

  // Event log (crashes, restarts, recovery milestones).
  void log(sim::Time t, std::string text) {
    events_.push_back({t, std::move(text)});
  }
  const std::vector<std::pair<sim::Time, std::string>>& events() const {
    return events_;
  }

  const std::map<std::string, std::uint64_t>& counters() const {
    return counters_;
  }

 private:
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, std::vector<TimePoint>> series_;
  std::vector<std::pair<sim::Time, std::string>> events_;
};

}  // namespace newtos
