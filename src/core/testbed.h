// Testbed: two hosts connected by N point-to-point gigabit links — the
// paper's evaluation machine (NewtOS with 5 Intel PRO/1000 adapters) facing
// a fast traffic peer.  Shared by the tests, the benchmarks and the
// examples.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/node.h"
#include "src/drv/wire.h"
#include "src/sim/sim.h"

namespace newtos {

struct TestbedOptions {
  StackMode mode = StackMode::kSplitSyscall;
  int nics = 1;
  double gbps = 1.0;
  bool tso = false;
  bool csum_offload = true;
  bool use_pf = true;
  int pf_filler_rules = 0;
  double loss = 0.0;
  std::uint32_t app_write_size = 8192;
  double cost_scale = 1.0;  // DUT cost scale (row 7 models a faster kernel)
  // Sharded transport plane on the system under test (split modes only).
  int tcp_shards = 1;
  int udp_shards = 1;
  // Receive-side batching on the system under test (default off: the
  // classic per-frame RX path, byte for byte).
  int rx_coalesce_frames = 0;
  std::uint32_t rx_coalesce_usecs = 50;
  bool gro = false;
  // Multi-queue NIC RSS on the system under test (default 1: the classic
  // single-queue RX path, byte for byte).
  int rx_queues = 1;
  // Transparent TCP recovery on the system under test (default off: the
  // Table I trade-off — established connections die with the TCP server).
  bool tcp_checkpoint = false;
  std::uint32_t tcp_ckpt_watermark = 256 * 1024;
  // Reincarnation-server work probes (silent-wedge auto-detection).
  bool work_probes = false;
  // Full supervision plane: probes to all component classes, slowdown SLO,
  // NIC wedge watchdog, restart budgets (NodeConfig::supervision).
  bool supervision = false;
  sim::Time wire_latency = 20 * sim::kMicrosecond;
  std::uint64_t seed = 42;
  // Congestion control on the system under test ("newreno"|"cubic"|"bbr"),
  // with optional per-port overrides so a dumbbell bench can mix flows.
  std::string tcp_cc = "newreno";
  std::vector<std::pair<std::uint16_t, std::string>> tcp_cc_by_port;
  // Receiver-side reassembly budget (segments) — applied to BOTH nodes,
  // since either side may be the data receiver.  Default 0: classic
  // drop-and-dup-ACK receiver, byte for byte.
  std::uint32_t tcp_ooo_queue = 0;
  // Initial ssthresh (bytes; 0 = classic unbounded slow start) and an
  // override for both nodes' snd/rcv buffer caps (0 = the 1 MB default) —
  // the knobs a shallow-buffer WAN bench uses to keep SACK-less loss
  // recovery out of the one-hole-per-RTT regime.
  std::uint32_t tcp_ssthresh_init = 0;
  std::uint32_t tcp_buf_bytes = 0;
  // WAN wire emulation (applied to every link; all off by default).
  double wire_bottleneck_gbps = 0.0;    // slow-hop rate; 0 = line rate
  std::uint32_t wire_queue_frames = 0;  // bottleneck FIFO bound; 0 = none
  double wire_reorder = 0.0;            // reordering probability
  sim::Time wire_reorder_delay = 50 * sim::kMicrosecond;
  bool wire_loss_post_queue = false;    // loss only for queued frames
};

class Testbed {
 public:
  explicit Testbed(const TestbedOptions& opts);
  // Chunk-leak backstop for the lending data plane: aborts (in every build
  // type) when any pool on either node still has loans outstanding —
  // a borrowed datagram view or send reservation that was never returned.
  // Runs at the end of every test/bench that uses a Testbed.
  ~Testbed();

  sim::Simulator& sim() { return sim_; }
  Node& newtos() { return *left_; }  // the system under test
  Node& peer() { return *right_; }   // ideal-monolithic traffic peer
  drv::Wire& wire(int i) { return *wires_.at(i); }
  int nic_count() const { return static_cast<int>(wires_.size()); }

  // Runs the simulation until the given virtual time.
  void run_until(sim::Time t) { sim_.run_until(t); }

 private:
  sim::Simulator sim_;
  std::unique_ptr<Node> left_;
  std::unique_ptr<Node> right_;
  std::vector<std::unique_ptr<drv::Wire>> wires_;
};

}  // namespace newtos
