#include "src/core/socket.h"

#include "src/core/node.h"
#include "src/servers/proto.h"

namespace newtos {

AppActor::AppActor(servers::NodeEnv* env, std::string name,
                   sim::SimCore* core)
    : Server(env, std::move(name), core) {}

void AppActor::set_main(std::function<void(sim::Context&)> main) {
  main_ = std::move(main);
}

void AppActor::start(bool restart) {
  announce(restart);
  if (main_) post_control(main_, 300);
}

void AppActor::call(std::function<void(sim::Context&)> fn, sim::Cycles cost) {
  post_control(std::move(fn), cost);
}

void AppActor::call_after(sim::Time delay,
                          std::function<void(sim::Context&)> fn) {
  const std::uint32_t inc = incarnation();
  sim().after(delay, [this, inc, fn = std::move(fn)] {
    if (!alive() || incarnation() != inc) return;
    post_control(fn, 200);
  });
}

// --- SocketApi --------------------------------------------------------------------

SocketApi::SocketApi(Node& node) : node_(node) {}

net::TcpEngine* SocketApi::tcp() const { return node_.tcp_engine(); }
net::UdpEngine* SocketApi::udp() const { return node_.udp_engine(); }

SocketApi::DeliverFn SocketApi::to_app(
    AppActor& app, std::function<void(const chan::Message&)> on_reply) {
  AppActor* a = &app;
  return [a, on_reply = std::move(on_reply)](const chan::Message& r) {
    // Reply delivery is a kernel message back into the app's address space.
    a->post_kernel_msg([on_reply, r](sim::Context&) { on_reply(r); }, 100);
  };
}

void SocketApi::route(AppActor& app, char proto, chan::Message m,
                      DeliverFn deliver) {
  m.req_id = next_req_++;
  const auto& cfg = node_.config();
  const auto& costs = node_.sim().costs();

  // The app-side trap for the call itself.
  app.cur().charge(cfg.mode == StackMode::kIdealMonolithic
                       ? 80
                       : costs.trap_hot +
                             static_cast<sim::Cycles>(
                                 costs.copy_per_byte * sizeof(chan::Message)));

  if (cfg.has_syscall_server() && node_.syscall() != nullptr) {
    node_.syscall()->submit(proto, m, std::move(deliver));
    return;
  }
  if (cfg.combined_stack()) {
    servers::StackServer* stack = node_.stack_server();
    if (stack == nullptr || !stack->alive()) {
      chan::Message err;
      err.opcode = servers::kSockReply;
      err.req_id = m.req_id;
      err.flags = 1;
      deliver(err);
      return;
    }
    // Direct kernel IPC into the combined stack: it pays the trap.
    const sim::Cycles toll = cfg.mode == StackMode::kIdealMonolithic
                                 ? 0
                                 : costs.trap_cold - costs.trap_hot;
    stack->post_kernel_msg(
        [stack, proto, m, deliver = std::move(deliver)](sim::Context& ctx) {
          stack->handle_sock_request(proto, m, ctx, deliver);
        },
        toll);
    return;
  }
  // Table II line 2: apps trap straight into the transports, polluting the
  // dedicated server's caches — charged as a cold trap on its core, plus the
  // synchronous reply (trap + IPI + context restore on the blocked app).
  const std::string target =
      proto == 'T' ? servers::kTcpName : servers::kUdpName;
  servers::Server* srv = node_.server(target);
  const sim::Cycles reply_toll =
      costs.trap_hot + costs.ipi + costs.mwait_wakeup;
  auto charge_reply = [srv, reply_toll, deliver = std::move(deliver)](
                          const chan::Message& r) {
    srv->cur().charge(reply_toll);
    deliver(r);
  };
  deliver = charge_reply;
  if (srv == nullptr || !srv->alive()) {
    chan::Message err;
    err.opcode = servers::kSockReply;
    err.req_id = m.req_id;
    err.flags = 1;
    deliver(err);
    return;
  }
  if (proto == 'T') {
    auto* tcp_srv = static_cast<servers::TcpServer*>(srv);
    tcp_srv->post_kernel_msg(
        [tcp_srv, m, deliver = std::move(deliver)](sim::Context& ctx) {
          tcp_srv->handle_sock_request(m, ctx, deliver);
        },
        costs.trap_cold);
  } else {
    auto* udp_srv = static_cast<servers::UdpServer*>(srv);
    udp_srv->post_kernel_msg(
        [udp_srv, m, deliver = std::move(deliver)](sim::Context& ctx) {
          udp_srv->handle_sock_request(m, ctx, deliver);
        },
        costs.trap_cold);
  }
}

void SocketApi::open(AppActor& app, char proto, OpenCb cb) {
  chan::Message m;
  m.opcode = servers::kSockOpen;
  route(app, proto, m,
        to_app(app, [proto, cb = std::move(cb)](const chan::Message& r) {
          Handle h;
          h.proto = proto;
          h.sock = r.flags & 1 ? 0 : static_cast<std::uint32_t>(r.arg0);
          cb(h);
        }));
}

void SocketApi::bind(AppActor& app, Handle h, net::Ipv4Addr addr,
                     std::uint16_t port, StatusCb cb) {
  chan::Message m;
  m.opcode = servers::kSockBind;
  m.socket = h.sock;
  m.arg0 = addr.value;
  m.arg1 = port;
  route(app, h.proto, m,
        to_app(app, [cb = std::move(cb)](const chan::Message& r) {
          cb((r.flags & 1) == 0 && r.arg0 != 0);
        }));
}

void SocketApi::listen(AppActor& app, Handle h, int backlog, StatusCb cb) {
  chan::Message m;
  m.opcode = servers::kSockListen;
  m.socket = h.sock;
  m.arg0 = static_cast<std::uint64_t>(backlog);
  route(app, h.proto, m,
        to_app(app, [cb = std::move(cb)](const chan::Message& r) {
          cb((r.flags & 1) == 0 && r.arg0 != 0);
        }));
}

void SocketApi::connect(AppActor& app, Handle h, net::Ipv4Addr addr,
                        std::uint16_t port, StatusCb cb) {
  chan::Message m;
  m.opcode = servers::kSockConnect;
  m.socket = h.sock;
  m.arg0 = addr.value;
  m.arg1 = port;
  route(app, h.proto, m,
        to_app(app, [cb = std::move(cb)](const chan::Message& r) {
          cb((r.flags & 1) == 0 && r.arg0 != 0);
        }));
}

void SocketApi::close(AppActor& app, Handle h, StatusCb cb) {
  clear_event_handler(h);
  chan::Message m;
  m.opcode = servers::kSockClose;
  m.socket = h.sock;
  route(app, h.proto, m,
        to_app(app, [cb = std::move(cb)](const chan::Message& r) {
          cb((r.flags & 1) == 0);
        }));
}

void SocketApi::send(AppActor& app, Handle h, std::uint32_t len,
                     StatusCb cb) {
  net::TcpEngine* eng = tcp();
  if (eng == nullptr) {
    app.call([cb](sim::Context&) { cb(false); });
    return;
  }
  // The socket buffer is exported to the application (Section V-B): the app
  // writes payload into the transport's pool directly, paying the copy.
  chan::RichPtr payload = eng->alloc_payload(len);
  if (!payload.valid()) {
    app.call([cb](sim::Context&) { cb(false); });
    return;
  }
  app.cur().charge(node_.sim().costs().copy_cost(len));
  chan::Message m;
  m.opcode = servers::kSockSend;
  m.socket = h.sock;
  m.ptr = payload;
  route(app, 'T', m,
        to_app(app, [cb = std::move(cb)](const chan::Message& r) {
          cb((r.flags & 1) == 0 && r.arg0 != 0);
        }));
}

void SocketApi::sendto(AppActor& app, Handle h, std::uint32_t len,
                       net::Ipv4Addr addr, std::uint16_t port, StatusCb cb) {
  net::UdpEngine* eng = udp();
  if (eng == nullptr) {
    app.call([cb](sim::Context&) { cb(false); });
    return;
  }
  chan::RichPtr payload = eng->alloc_payload(len);
  if (!payload.valid()) {
    app.call([cb](sim::Context&) { cb(false); });
    return;
  }
  app.cur().charge(node_.sim().costs().copy_cost(len));
  chan::Message m;
  m.opcode = servers::kSockSendTo;
  m.socket = h.sock;
  m.ptr = payload;
  m.arg0 = addr.value;
  m.arg1 = port;
  route(app, 'U', m,
        to_app(app, [cb = std::move(cb)](const chan::Message& r) {
          cb((r.flags & 1) == 0 && r.arg0 != 0);
        }));
}

std::size_t SocketApi::send_space(Handle h) const {
  net::TcpEngine* eng = tcp();
  return eng == nullptr ? 0 : eng->send_space(h.sock);
}

std::size_t SocketApi::recv(AppActor& app, Handle h,
                            std::span<std::byte> out) {
  net::TcpEngine* eng = tcp();
  servers::Server* srv = node_.transport_server('T');
  if (eng == nullptr || srv == nullptr) return 0;
  servers::Server::BorrowContext borrow(*srv, app.cur());
  const std::size_t n = eng->recv(h.sock, out);
  app.cur().charge(node_.sim().costs().copy_cost(
      static_cast<std::int64_t>(n)));
  return n;
}

std::size_t SocketApi::recv_available(Handle h) const {
  net::TcpEngine* eng = tcp();
  return eng == nullptr ? 0 : eng->recv_available(h.sock);
}

std::optional<net::UdpEngine::Datagram> SocketApi::recvfrom(AppActor& app,
                                                            Handle h) {
  net::UdpEngine* eng = udp();
  servers::Server* srv = node_.transport_server('U');
  if (eng == nullptr || srv == nullptr) return std::nullopt;
  servers::Server::BorrowContext borrow(*srv, app.cur());
  auto d = eng->recv(h.sock);
  if (d) {
    app.cur().charge(node_.sim().costs().copy_cost(
        static_cast<std::int64_t>(d->data.size())));
  }
  return d;
}

std::optional<SocketApi::Handle> SocketApi::accept(AppActor& app, Handle h) {
  net::TcpEngine* eng = tcp();
  servers::Server* srv = node_.transport_server('T');
  if (eng == nullptr || srv == nullptr) return std::nullopt;
  servers::Server::BorrowContext borrow(*srv, app.cur());
  auto child = eng->accept(h.sock);
  if (!child) return std::nullopt;
  return Handle{'T', *child};
}

void SocketApi::set_event_handler(Handle h, AppActor* app, EventCb cb) {
  handlers_[{h.proto, h.sock}] = {app, std::move(cb)};
}

void SocketApi::clear_event_handler(Handle h) {
  handlers_.erase({h.proto, h.sock});
}

void SocketApi::dispatch_event(char proto, std::uint32_t sock,
                               std::uint8_t event) {
  auto it = handlers_.find({proto, sock});
  if (it == handlers_.end()) return;
  AppActor* app = it->second.first;
  EventCb cb = it->second.second;
  app->post_kernel_msg(
      [cb, event](sim::Context&) {
        cb(static_cast<net::TcpEvent>(event));
      },
      80);
}

}  // namespace newtos
