#include "src/core/socket.h"

#include <utility>

#include "src/core/node.h"
#include "src/servers/proto.h"

namespace newtos {

AppActor::AppActor(servers::NodeEnv* env, std::string name,
                   sim::SimCore* core)
    : Server(env, std::move(name), core) {}

AppActor::~AppActor() = default;

void AppActor::set_main(std::function<void(sim::Context&)> main) {
  main_ = std::move(main);
}

void AppActor::attach_ring(std::unique_ptr<SocketRing> ring) {
  ring_ = std::move(ring);
}

void AppActor::start(bool restart) {
  announce(restart);
  if (main_) post_control(main_, 300);
}

void AppActor::call(std::function<void(sim::Context&)> fn, sim::Cycles cost) {
  post_control(std::move(fn), cost);
}

void AppActor::call_after(sim::Time delay,
                          std::function<void(sim::Context&)> fn) {
  const std::uint32_t inc = incarnation();
  sim().after(delay, [this, inc, fn = std::move(fn)] {
    if (!alive() || incarnation() != inc) return;
    post_control(fn, 200);
  });
}

// --- Socket (RAII base) ------------------------------------------------------------

Socket::Socket(AppActor& app, char proto) : st_(std::make_shared<State>()) {
  st_->app = &app;
  st_->node = &app.ring().node();
  st_->proto = proto;
}

Socket::Socket(AppActor& app, char proto, std::uint32_t adopt_id)
    : Socket(app, proto) {
  st_->id = adopt_id;
}

Socket::~Socket() { close({}); }

SocketRing& Socket::ring() const { return st_->app->ring(); }

void Socket::register_events(const std::shared_ptr<State>& st) {
  if (st->id == 0 || !st->on_event) return;
  st->node->sockets().set_event_handler(
      SocketApi::Handle{st->proto, st->id}, st->app,
      [st](net::TcpEvent ev) {
        if (!st->closed && st->on_event) st->on_event(ev);
      });
}

void Socket::on_event(SockEventFn fn) {
  st_->on_event = std::move(fn);
  register_events(st_);
}

SocketRing::CompletionFn Socket::status_cb(SockStatusFn cb) const {
  if (!cb) return {};
  return [st = st_, cb = std::move(cb)](const SockCqe& c) {
    if (st->closed) return;
    cb(c.ok);
  };
}

void Socket::submit_ctl(SockSqe op, SocketRing::CompletionFn cb) {
  if (st_->id != 0) {
    op.sock = st_->id;
    ring().enqueue(std::move(op), std::move(cb));
    return;
  }
  if (!st_->opening) {
    st_->opening = true;
    SockSqe open;
    open.opcode = servers::kSockOpen;
    open.proto = st_->proto;
    ring().enqueue(open, [st = st_](const SockCqe& c) {
      st->opening = false;
      if (c.ok && c.value != 0) {
        st->id = static_cast<std::uint32_t>(c.value);
      }
      if (st->closed && st->id != 0) {
        // The object died while the open was in flight: release the
        // freshly created kernel socket right away.
        SockSqe cl;
        cl.opcode = servers::kSockClose;
        cl.proto = st->proto;
        cl.sock = st->id;
        st->app->ring().enqueue(cl, {});
        st->id = 0;
      } else {
        register_events(st);
      }
      // Replay held ops with the real id (0 when the open failed — the
      // transport then fails them cleanly and the callbacks report it).
      auto held = std::move(st->deferred);
      st->deferred.clear();
      for (auto& [hop, hcb] : held) {
        hop.sock = st->id;
        st->app->ring().enqueue(std::move(hop), std::move(hcb));
      }
    });
    st_->open_cookie = ring().last_cookie();
  }
  if (ring().rides_next_flush(st_->open_cookie) &&
      ring().last_open_cookie(st_->proto) == st_->open_cookie) {
    // Our open is still in the SQ and is the latest of its protocol, so
    // the nearest-preceding-open sentinel resolves to it in this batch.
    op.sock = servers::kSockFromBatchOpen;
    ring().enqueue(std::move(op), std::move(cb));
    return;
  }
  // The open rode an earlier doorbell (or another socket opened after
  // ours): hold the op and replay it with the real id on completion.
  st_->deferred.emplace_back(std::move(op), std::move(cb));
}

void Socket::close(SockStatusFn cb) {
  if (st_->closed) {
    if (cb) cb(true);
    return;
  }
  st_->closed = true;
  if (st_->id != 0) {
    node().sockets().clear_event_handler(
        SocketApi::Handle{st_->proto, st_->id});
    SockSqe op;
    op.opcode = servers::kSockClose;
    op.proto = st_->proto;
    op.sock = st_->id;
    // Deliver the close completion even though st_->closed is set.
    SocketRing::CompletionFn done;
    if (cb) {
      done = [cb = std::move(cb)](const SockCqe& c) { cb(c.ok); };
    }
    ring().enqueue(op, std::move(done));
    st_->id = 0;
  } else if (cb) {
    cb(true);
  }
  // An open still in flight is handled by its completion (see ensure_open).
}

// --- TcpSocket ---------------------------------------------------------------------

TcpSocket::TcpSocket(AppActor& app) : Socket(app, 'T') {}

TcpSocket::TcpSocket(AppActor& app, std::uint32_t accepted_id)
    : Socket(app, 'T', accepted_id) {}

void TcpSocket::connect(net::Ipv4Addr dst, std::uint16_t port,
                        SockStatusFn cb) {
  SockSqe op;
  op.opcode = servers::kSockConnect;
  op.proto = 'T';
  op.arg0 = dst.value;
  op.arg1 = port;
  submit_ctl(op, status_cb(std::move(cb)));
}

void TcpSocket::send(std::uint32_t len, SockStatusFn cb) {
  net::TcpEngine* eng = node().tcp_engine();
  if (eng == nullptr) {
    if (cb) app().call([cb](sim::Context&) { cb(false); });
    return;
  }
  // The socket buffer is exported to the application (Section V-B): the app
  // writes the payload into the transport's pool directly, paying the copy;
  // only the submission descriptor rides the ring.
  chan::RichPtr payload = eng->alloc_payload(len);
  if (!payload.valid()) {
    if (cb) app().call([cb](sim::Context&) { cb(false); });
    return;
  }
  app().cur().charge(node().sim().costs().copy_cost(len));
  SockSqe op;
  op.opcode = servers::kSockSend;
  op.proto = 'T';
  op.payload = payload;
  submit_ctl(op, status_cb(std::move(cb)));
}

std::size_t TcpSocket::send_space() const {
  net::TcpEngine* eng = node().tcp_engine();
  return eng == nullptr ? 0 : eng->send_space(st_->id);
}

std::size_t TcpSocket::recv(std::span<std::byte> out) {
  return node().sockets().recv(app(), SocketApi::Handle{'T', st_->id}, out);
}

std::size_t TcpSocket::recv_available() const {
  net::TcpEngine* eng = node().tcp_engine();
  return eng == nullptr ? 0 : eng->recv_available(st_->id);
}

// --- TcpListener -------------------------------------------------------------------

TcpListener::TcpListener(AppActor& app) : Socket(app, 'T') {}

void TcpListener::bind_listen(net::Ipv4Addr addr, std::uint16_t port,
                              int backlog, SockStatusFn cb) {
  SockSqe b;
  b.opcode = servers::kSockBind;
  b.proto = 'T';
  b.arg0 = addr.value;
  b.arg1 = port;
  auto bind_ok = std::make_shared<bool>(false);
  submit_ctl(b, [bind_ok](const SockCqe& c) { *bind_ok = c.ok; });

  SockSqe l;
  l.opcode = servers::kSockListen;
  l.proto = 'T';
  l.arg0 = static_cast<std::uint64_t>(backlog);
  // Completions arrive in submission order, so bind_ok is settled by the
  // time the listen completes.
  SocketRing::CompletionFn done;
  if (cb) {
    done = [st = st_, bind_ok, cb = std::move(cb)](const SockCqe& c) {
      if (st->closed) return;
      cb(c.ok && *bind_ok);
    };
  }
  submit_ctl(l, std::move(done));
}

std::unique_ptr<TcpSocket> TcpListener::accept() {
  auto child =
      node().sockets().accept(app(), SocketApi::Handle{'T', st_->id});
  if (!child) return nullptr;
  return std::make_unique<TcpSocket>(app(), child->sock);
}

// --- UdpSocket ---------------------------------------------------------------------

UdpSocket::UdpSocket(AppActor& app) : Socket(app, 'U') {}

void UdpSocket::bind(net::Ipv4Addr addr, std::uint16_t port,
                     SockStatusFn cb) {
  SockSqe op;
  op.opcode = servers::kSockBind;
  op.proto = 'U';
  op.arg0 = addr.value;
  op.arg1 = port;
  submit_ctl(op, status_cb(std::move(cb)));
}

void UdpSocket::connect(net::Ipv4Addr peer, std::uint16_t port,
                        SockStatusFn cb) {
  SockSqe op;
  op.opcode = servers::kSockConnect;
  op.proto = 'U';
  op.arg0 = peer.value;
  op.arg1 = port;
  submit_ctl(op, status_cb(std::move(cb)));
}

void UdpSocket::sendto(std::uint32_t len, net::Ipv4Addr dst,
                       std::uint16_t port, SockStatusFn cb) {
  net::UdpEngine* eng = node().udp_engine();
  if (eng == nullptr) {
    if (cb) app().call([cb](sim::Context&) { cb(false); });
    return;
  }
  chan::RichPtr payload = eng->alloc_payload(len);
  if (!payload.valid()) {
    if (cb) app().call([cb](sim::Context&) { cb(false); });
    return;
  }
  app().cur().charge(node().sim().costs().copy_cost(len));
  SockSqe op;
  op.opcode = servers::kSockSendTo;
  op.proto = 'U';
  op.payload = payload;
  op.arg0 = dst.value;
  op.arg1 = port;
  submit_ctl(op, status_cb(std::move(cb)));
}

std::optional<net::UdpEngine::Datagram> UdpSocket::recvfrom() {
  return node().sockets().recvfrom(app(), SocketApi::Handle{'U', st_->id});
}

// --- SocketApi (deprecated shim) ---------------------------------------------------

SocketApi::SocketApi(Node& node) : node_(node) {}

net::TcpEngine* SocketApi::tcp() const { return node_.tcp_engine(); }
net::UdpEngine* SocketApi::udp() const { return node_.udp_engine(); }

void SocketApi::open(AppActor& app, char proto, OpenCb cb) {
  SockSqe op;
  op.opcode = servers::kSockOpen;
  op.proto = proto;
  app.ring().enqueue(op, [proto, cb = std::move(cb)](const SockCqe& c) {
    Handle h;
    h.proto = proto;
    h.sock = c.ok ? static_cast<std::uint32_t>(c.value) : 0;
    cb(h);
  });
}

void SocketApi::bind(AppActor& app, Handle h, net::Ipv4Addr addr,
                     std::uint16_t port, StatusCb cb) {
  SockSqe op;
  op.opcode = servers::kSockBind;
  op.proto = h.proto;
  op.sock = h.sock;
  op.arg0 = addr.value;
  op.arg1 = port;
  app.ring().enqueue(op,
                     [cb = std::move(cb)](const SockCqe& c) { cb(c.ok); });
}

void SocketApi::listen(AppActor& app, Handle h, int backlog, StatusCb cb) {
  SockSqe op;
  op.opcode = servers::kSockListen;
  op.proto = h.proto;
  op.sock = h.sock;
  op.arg0 = static_cast<std::uint64_t>(backlog);
  app.ring().enqueue(op,
                     [cb = std::move(cb)](const SockCqe& c) { cb(c.ok); });
}

void SocketApi::connect(AppActor& app, Handle h, net::Ipv4Addr addr,
                        std::uint16_t port, StatusCb cb) {
  SockSqe op;
  op.opcode = servers::kSockConnect;
  op.proto = h.proto;
  op.sock = h.sock;
  op.arg0 = addr.value;
  op.arg1 = port;
  app.ring().enqueue(op,
                     [cb = std::move(cb)](const SockCqe& c) { cb(c.ok); });
}

void SocketApi::close(AppActor& app, Handle h, StatusCb cb) {
  clear_event_handler(h);
  SockSqe op;
  op.opcode = servers::kSockClose;
  op.proto = h.proto;
  op.sock = h.sock;
  app.ring().enqueue(op,
                     [cb = std::move(cb)](const SockCqe& c) { cb(c.ok); });
}

void SocketApi::send(AppActor& app, Handle h, std::uint32_t len,
                     StatusCb cb) {
  net::TcpEngine* eng = tcp();
  if (eng == nullptr) {
    app.call([cb](sim::Context&) { cb(false); });
    return;
  }
  chan::RichPtr payload = eng->alloc_payload(len);
  if (!payload.valid()) {
    app.call([cb](sim::Context&) { cb(false); });
    return;
  }
  app.cur().charge(node_.sim().costs().copy_cost(len));
  SockSqe op;
  op.opcode = servers::kSockSend;
  op.proto = 'T';
  op.sock = h.sock;
  op.payload = payload;
  app.ring().enqueue(op,
                     [cb = std::move(cb)](const SockCqe& c) { cb(c.ok); });
}

void SocketApi::sendto(AppActor& app, Handle h, std::uint32_t len,
                       net::Ipv4Addr addr, std::uint16_t port, StatusCb cb) {
  net::UdpEngine* eng = udp();
  if (eng == nullptr) {
    app.call([cb](sim::Context&) { cb(false); });
    return;
  }
  chan::RichPtr payload = eng->alloc_payload(len);
  if (!payload.valid()) {
    app.call([cb](sim::Context&) { cb(false); });
    return;
  }
  app.cur().charge(node_.sim().costs().copy_cost(len));
  SockSqe op;
  op.opcode = servers::kSockSendTo;
  op.proto = 'U';
  op.sock = h.sock;
  op.payload = payload;
  op.arg0 = addr.value;
  op.arg1 = port;
  app.ring().enqueue(op,
                     [cb = std::move(cb)](const SockCqe& c) { cb(c.ok); });
}

std::size_t SocketApi::send_space(Handle h) const {
  net::TcpEngine* eng = tcp();
  return eng == nullptr ? 0 : eng->send_space(h.sock);
}

std::size_t SocketApi::recv(AppActor& app, Handle h,
                            std::span<std::byte> out) {
  net::TcpEngine* eng = tcp();
  servers::Server* srv = node_.transport_server('T');
  if (eng == nullptr || srv == nullptr) return 0;
  servers::Server::BorrowContext borrow(*srv, app.cur());
  const std::size_t n = eng->recv(h.sock, out);
  app.cur().charge(node_.sim().costs().copy_cost(
      static_cast<std::int64_t>(n)));
  return n;
}

std::size_t SocketApi::recv_available(Handle h) const {
  net::TcpEngine* eng = tcp();
  return eng == nullptr ? 0 : eng->recv_available(h.sock);
}

std::optional<net::UdpEngine::Datagram> SocketApi::recvfrom(AppActor& app,
                                                            Handle h) {
  net::UdpEngine* eng = udp();
  servers::Server* srv = node_.transport_server('U');
  if (eng == nullptr || srv == nullptr) return std::nullopt;
  servers::Server::BorrowContext borrow(*srv, app.cur());
  auto d = eng->recv(h.sock);
  if (d) {
    app.cur().charge(node_.sim().costs().copy_cost(
        static_cast<std::int64_t>(d->data.size())));
  }
  return d;
}

std::optional<SocketApi::Handle> SocketApi::accept(AppActor& app, Handle h) {
  net::TcpEngine* eng = tcp();
  servers::Server* srv = node_.transport_server('T');
  if (eng == nullptr || srv == nullptr) return std::nullopt;
  servers::Server::BorrowContext borrow(*srv, app.cur());
  auto child = eng->accept(h.sock);
  if (!child) return std::nullopt;
  return Handle{'T', *child};
}

void SocketApi::set_event_handler(Handle h, AppActor* app, EventCb cb) {
  handlers_[{h.proto, h.sock}] = {app, std::move(cb)};
}

void SocketApi::clear_event_handler(Handle h) {
  handlers_.erase({h.proto, h.sock});
}

void SocketApi::dispatch_event(char proto, std::uint32_t sock,
                               std::uint8_t event) {
  auto it = handlers_.find({proto, sock});
  if (it == handlers_.end()) return;
  AppActor* app = it->second.first;
  EventCb cb = it->second.second;
  app->post_kernel_msg(
      [cb, event](sim::Context&) {
        cb(static_cast<net::TcpEvent>(event));
      },
      80);
}

}  // namespace newtos
