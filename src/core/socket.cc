#include "src/core/socket.h"

#include <utility>

#include "src/core/node.h"
#include "src/servers/proto.h"

namespace newtos {

AppActor::AppActor(servers::NodeEnv* env, std::string name,
                   sim::SimCore* core)
    : Server(env, std::move(name), core) {}

AppActor::~AppActor() = default;

void AppActor::set_main(std::function<void(sim::Context&)> main) {
  main_ = std::move(main);
}

void AppActor::attach_ring(std::unique_ptr<SocketRing> ring) {
  ring_ = std::move(ring);
}

void AppActor::start(bool restart) {
  announce(restart);
  if (main_) post_control(main_, 300);
}

void AppActor::call(std::function<void(sim::Context&)> fn, sim::Cycles cost) {
  post_control(std::move(fn), cost);
}

void AppActor::on_killed() {
  if (ring_ == nullptr || borrower_id_ == 0) return;
  for (chan::Pool* pool : ring_->node().pools().all()) {
    pool->reclaim(borrower_id_);
  }
}

void AppActor::call_after(sim::Time delay,
                          std::function<void(sim::Context&)> fn) {
  const std::uint32_t inc = incarnation();
  sim().after(delay, [this, inc, fn = std::move(fn)] {
    if (!alive() || incarnation() != inc) return;
    post_control(fn, 200);
  });
}

// --- zero-copy lending currency ----------------------------------------------------

SendReservation::SendReservation(SendReservation&& o) noexcept
    : node_(o.node_),
      borrower_(o.borrower_),
      bytes_(o.bytes_),
      chunks_(std::move(o.chunks_)) {
  o.node_ = nullptr;
  o.bytes_ = 0;
  o.chunks_.clear();
}

SendReservation& SendReservation::operator=(SendReservation&& o) noexcept {
  if (this != &o) {
    cancel();
    node_ = o.node_;
    borrower_ = o.borrower_;
    bytes_ = o.bytes_;
    chunks_ = std::move(o.chunks_);
    o.node_ = nullptr;
    o.bytes_ = 0;
    o.chunks_.clear();
  }
  return *this;
}

std::span<std::byte> SendReservation::chunk(std::size_t i) {
  if (node_ == nullptr || i >= chunks_.size()) return {};
  chan::Pool* pool = node_->pools().find(chunks_[i].pool);
  if (pool == nullptr || !pool->live(chunks_[i])) return {};
  return pool->write_view(chunks_[i]);
}

void SendReservation::cancel() {
  if (node_ != nullptr) {
    for (const auto& c : chunks_) {
      chan::Pool* pool = node_->pools().find(c.pool);
      if (pool != nullptr && pool->note_return(c, borrower_)) {
        pool->release(c);
      }
    }
  }
  chunks_.clear();
  bytes_ = 0;
  node_ = nullptr;
}

BorrowedDatagram::BorrowedDatagram(BorrowedDatagram&& o) noexcept
    : node_(o.node_),
      borrower_(o.borrower_),
      frame_(o.frame_),
      data_(o.data_),
      src_(o.src_),
      sport_(o.sport_) {
  o.frame_ = chan::kNullRichPtr;
  o.node_ = nullptr;
}

BorrowedDatagram& BorrowedDatagram::operator=(BorrowedDatagram&& o) noexcept {
  if (this != &o) {
    release();
    node_ = o.node_;
    borrower_ = o.borrower_;
    frame_ = o.frame_;
    data_ = o.data_;
    src_ = o.src_;
    sport_ = o.sport_;
    o.frame_ = chan::kNullRichPtr;
    o.node_ = nullptr;
  }
  return *this;
}

std::span<const std::byte> BorrowedDatagram::data() const {
  if (node_ == nullptr) return {};
  return node_->pools().read(data_);
}

void BorrowedDatagram::release() {
  if (node_ != nullptr && frame_.valid()) {
    chan::Pool* pool = node_->pools().find(frame_.pool);
    // Only a loan still on record is returned: a second release, or one
    // against a pool the owner reset after a crash, is a no-op.  The
    // direct pool release is the consumer's RX done-report to the owner
    // (IpEngine::rx_done does exactly this).
    if (pool != nullptr && pool->note_return(frame_, borrower_)) {
      pool->release(frame_);
    }
  }
  frame_ = chan::kNullRichPtr;
  node_ = nullptr;
}

// --- Socket (RAII base) ------------------------------------------------------------

Socket::Socket(AppActor& app, char proto) : st_(std::make_shared<State>()) {
  st_->app = &app;
  st_->node = &app.ring().node();
  st_->proto = proto;
}

Socket::Socket(AppActor& app, char proto, std::uint32_t adopt_id)
    : Socket(app, proto) {
  st_->id = adopt_id;
}

Socket::~Socket() { close({}); }

SocketRing& Socket::ring() const { return st_->app->ring(); }

void Socket::register_events(const std::shared_ptr<State>& st) {
  if (st->id == 0 || !st->on_event) return;
  st->node->sockets().set_event_handler(
      SocketApi::Handle{st->proto, st->id}, st->app,
      [st](net::TcpEvent ev) {
        if (!st->closed && st->on_event) st->on_event(ev);
      });
}

void Socket::on_event(SockEventFn fn) {
  st_->on_event = std::move(fn);
  register_events(st_);
}

SocketRing::CompletionFn Socket::status_cb(SockStatusFn cb) const {
  if (!cb) return {};
  return [st = st_, cb = std::move(cb)](const SockCqe& c) {
    if (st->closed) return;
    cb(c.ok);
  };
}

void Socket::submit_ctl(SockSqe op, SocketRing::CompletionFn cb) {
  if (st_->id != 0) {
    op.sock = st_->id;
    ring().enqueue(std::move(op), std::move(cb));
    return;
  }
  if (!st_->opening) {
    st_->opening = true;
    SockSqe open;
    open.opcode = servers::kSockOpen;
    open.proto = st_->proto;
    ring().enqueue(open, [st = st_](const SockCqe& c) {
      st->opening = false;
      if (c.ok && c.value != 0) {
        st->id = static_cast<std::uint32_t>(c.value);
      }
      if (st->closed && st->id != 0) {
        // The object died while the open was in flight: release the
        // freshly created kernel socket right away.
        SockSqe cl;
        cl.opcode = servers::kSockClose;
        cl.proto = st->proto;
        cl.sock = st->id;
        st->app->ring().enqueue(cl, {});
        st->id = 0;
      } else {
        register_events(st);
      }
      // Replay held ops with the real id (0 when the open failed — the
      // transport then fails them cleanly and the callbacks report it).
      auto held = std::move(st->deferred);
      st->deferred.clear();
      for (auto& [hop, hcb] : held) {
        hop.sock = st->id;
        st->app->ring().enqueue(std::move(hop), std::move(hcb));
      }
    });
    st_->open_cookie = ring().last_cookie();
  }
  if (ring().rides_next_flush(st_->open_cookie) &&
      ring().last_open_cookie(st_->proto) == st_->open_cookie) {
    // Our open is still in the SQ and is the latest of its protocol, so
    // the nearest-preceding-open sentinel resolves to it in this batch.
    op.sock = servers::kSockFromBatchOpen;
    ring().enqueue(std::move(op), std::move(cb));
    return;
  }
  // The open rode an earlier doorbell (or another socket opened after
  // ours): hold the op and replay it with the real id on completion.
  st_->deferred.emplace_back(std::move(op), std::move(cb));
}

void Socket::close(SockStatusFn cb) {
  if (st_->closed) {
    if (cb) cb(true);
    return;
  }
  st_->closed = true;
  if (st_->id != 0) {
    node().sockets().clear_event_handler(
        SocketApi::Handle{st_->proto, st_->id});
    SockSqe op;
    op.opcode = servers::kSockClose;
    op.proto = st_->proto;
    op.sock = st_->id;
    // Deliver the close completion even though st_->closed is set.
    SocketRing::CompletionFn done;
    if (cb) {
      done = [cb = std::move(cb)](const SockCqe& c) { cb(c.ok); };
    }
    ring().enqueue(op, std::move(done));
    st_->id = 0;
  } else if (cb) {
    cb(true);
  }
  // An open still in flight is handled by its completion (see ensure_open).
}

// --- TcpSocket ---------------------------------------------------------------------

TcpSocket::TcpSocket(AppActor& app) : Socket(app, 'T') {}

TcpSocket::TcpSocket(AppActor& app, std::uint32_t accepted_id)
    : Socket(app, 'T', accepted_id) {}

void TcpSocket::connect(net::Ipv4Addr dst, std::uint16_t port,
                        SockStatusFn cb) {
  SockSqe op;
  op.opcode = servers::kSockConnect;
  op.proto = 'T';
  op.arg0 = dst.value;
  op.arg1 = port;
  submit_ctl(op, status_cb(std::move(cb)));
}

void TcpSocket::send(std::uint32_t len, SockStatusFn cb) {
  // Legacy copy semantics on top of the lending machinery: reserve the
  // exported buffer, pay the copy in (the bytes are synthetic in the
  // simulation, the cost and the counter are real), submit the chain.
  SockSqe op;
  op.opcode = servers::kSockSend;
  op.proto = 'T';
  op.sock = st_->id;
  if (node().tcp_engine(net::sock_shard(st_->id)) == nullptr) {
    // A dead transport is not backpressure: report it as such.
    ring().fail_local(op, status_cb(std::move(cb)), kSockEDown);
    return;
  }
  SendReservation res = reserve(len);
  if (!res.valid()) {
    ring().fail_local(op, status_cb(std::move(cb)), kSockENoBufs);
    return;
  }
  app().cur().charge(node().sim().costs().copy_cost(len));
  node().stats().add("sock.bytes_copied", len);
  submit(std::move(res), std::move(cb));
}

RecvView TcpSocket::recv_zc() {
  RecvView v;
  const int shard = net::sock_shard(st_->id);
  net::TcpEngine* eng = node().tcp_engine(shard);
  servers::Server* srv = node().transport_server('T', shard);
  if (eng == nullptr || srv == nullptr || st_->id == 0) return v;
  servers::Server::BorrowContext borrow(*srv, app().cur());
  for (;;) {
    net::TcpEngine::PeekChunk pcs[RecvView::kMaxChunks];
    const std::size_t k =
        eng->peek(st_->id, std::span<net::TcpEngine::PeekChunk>(pcs));
    if (k == 0) return v;
    for (std::size_t i = 0; i < k; ++i) {
      auto bytes = node().pools().read(pcs[i].data);
      // The view is the contiguous LIVE prefix: it stops at the first
      // stale frame (owner reset its pool), so consume(v.bytes) advances
      // exactly over the viewed bytes.
      if (bytes.empty()) break;
      v.chunk[v.chunks++] = bytes;
      v.bytes += bytes.size();
    }
    app().cur().charge(
        static_cast<sim::Cycles>(k) * node().sim().costs().cache_line_pull);
    if (v.chunks > 0) return v;
    // The FRONT frame is stale: purge its dead bytes so the queue cannot
    // wedge behind it, then look again.
    eng->consume(st_->id, pcs[0].data.length);
  }
}

std::size_t TcpSocket::consume(std::size_t n) {
  const int shard = net::sock_shard(st_->id);
  net::TcpEngine* eng = node().tcp_engine(shard);
  servers::Server* srv = node().transport_server('T', shard);
  if (eng == nullptr || srv == nullptr || st_->id == 0) return 0;
  servers::Server::BorrowContext borrow(*srv, app().cur());
  return eng->consume(st_->id, n);
}

SendReservation TcpSocket::reserve(std::uint32_t len,
                                   std::uint32_t chunk_bytes) {
  SendReservation res;
  res.node_ = &node();
  res.borrower_ = app().borrower_id();
  // The chunks come from the home replica's pool; an op queued before the
  // open completed falls back to shard 0 (payloads travel cross-pool fine).
  net::TcpEngine* eng = node().tcp_engine(net::sock_shard(st_->id));
  if (eng == nullptr) eng = node().tcp_engine(0);
  if (eng == nullptr || len == 0) return res;
  if (chunk_bytes == 0) chunk_bytes = len;
  std::uint32_t left = len;
  while (left > 0) {
    const std::uint32_t take = std::min(left, chunk_bytes);
    chan::RichPtr p = eng->alloc_payload(take);
    if (!p.valid()) {
      node().stats().add("sock.enobufs");
      res.cancel();
      return res;
    }
    if (chan::Pool* pool = node().pools().find(p.pool)) {
      pool->note_borrow(p, res.borrower_);
    }
    res.chunks_.push_back(p);
    res.bytes_ += take;
    left -= take;
  }
  return res;
}

void TcpSocket::submit_chain(std::vector<chan::RichPtr> pieces,
                             SockStatusFn cb) {
  const std::size_t n = pieces.size();
  auto st = st_;
  auto all_ok = std::make_shared<bool>(true);
  SocketRing::CompletionFn done = status_cb(std::move(cb));
  for (std::size_t i = 0; i < n; ++i) {
    st->inflight_tx += pieces[i].length;
    const std::uint64_t len = pieces[i].length;
    SockSqe op;
    op.opcode = servers::kSockSend;
    op.proto = 'T';
    op.payload = pieces[i];
    if (i + 1 < n) {
      submit_ctl(op, [st, all_ok, len](const SockCqe& cqe) {
        st->inflight_tx -= std::min(st->inflight_tx, len);
        if (!cqe.ok) *all_ok = false;
      });
    } else {
      submit_ctl(op,
                 [st, all_ok, len, done = std::move(done)](const SockCqe& cqe) {
                   st->inflight_tx -= std::min(st->inflight_tx, len);
                   if (!done) return;
                   SockCqe agg = cqe;
                   agg.ok = agg.ok && *all_ok;
                   done(agg);
                 });
    }
  }
}

void TcpSocket::submit(SendReservation res, SockStatusFn cb) {
  if (!res.valid()) {
    SockSqe op;
    op.opcode = servers::kSockSend;
    op.proto = 'T';
    op.sock = st_->id;
    ring().fail_local(op, status_cb(std::move(cb)), kSockENoBufs);
    return;
  }
  // The loan ends here: ownership of every chunk passes to the transport
  // with its op.  All ops of the chain ride one flush (one trap).
  for (const chan::RichPtr& c : res.chunks_) {
    if (chan::Pool* pool = node().pools().find(c.pool)) {
      pool->note_return(c, res.borrower_);
    }
  }
  submit_chain(std::move(res.chunks_), std::move(cb));
  res.chunks_.clear();
  res.bytes_ = 0;
  res.node_ = nullptr;
}

std::size_t TcpSocket::forward(TcpSocket& dst, std::size_t max_bytes,
                               SockStatusFn cb) {
  // Source and destination may live on different replicas: the spliced
  // chunks are sub-range pointers into IP's receive pool, which every
  // shard resolves through the registry, so the splice crosses shards
  // without a copy.
  const int src_shard = net::sock_shard(st_->id);
  const int dst_shard = net::sock_shard(dst.st_->id);
  net::TcpEngine* eng = node().tcp_engine(src_shard);
  net::TcpEngine* dst_eng = node().tcp_engine(dst_shard);
  servers::Server* srv = node().transport_server('T', src_shard);
  servers::Server* dst_srv = node().transport_server('T', dst_shard);
  if (eng == nullptr || dst_eng == nullptr || srv == nullptr ||
      dst_srv == nullptr || &node() != &dst.node() || st_->id == 0 ||
      dst.st_->id == 0) {
    if (cb) app().call([cb](sim::Context&) { cb(false); });
    return 0;
  }
  std::vector<chan::RichPtr> pieces;
  std::size_t moved = 0;
  {
    servers::Server::BorrowContext borrow(*srv, app().cur());
    servers::Server::BorrowContext dst_borrow(*dst_srv, app().cur());
    // Never consume more than the destination can take: bytes are consumed
    // from the source before the submissions execute, so dropping any
    // later would hole the spliced stream.  Two budgets bound the chain:
    // the destination's send space minus bytes already submitted but not
    // yet completed (the engine cannot see un-flushed ops), and the free
    // submission-queue slots (an overflowing op fails and releases its
    // payload).
    const std::size_t space = dst_eng->send_space(dst.st_->id);
    const std::size_t pending =
        static_cast<std::size_t>(dst.st_->inflight_tx);
    max_bytes = std::min(max_bytes, space > pending ? space - pending : 0);
    const std::size_t sq_free = dst.ring().sq_free();
    const std::size_t piece_budget = sq_free > 8 ? sq_free - 8 : 0;
    while (moved < max_bytes && pieces.size() < piece_budget) {
      net::TcpEngine::PeekChunk pcs[RecvView::kMaxChunks];
      const std::size_t k =
          eng->peek(st_->id, std::span<net::TcpEngine::PeekChunk>(pcs));
      if (k == 0) break;
      std::size_t round = 0;
      for (std::size_t i = 0;
           i < k && moved < max_bytes && pieces.size() < piece_budget; ++i) {
        chan::Pool* pool = node().pools().find(pcs[i].frame.pool);
        if (pool == nullptr) break;
        chan::RichPtr data = pcs[i].data;
        const std::size_t want = max_bytes - moved;
        if (data.length > want) {
          data.length = static_cast<std::uint32_t>(want);
        }
        // One extra owner-side reference keeps the frame alive on the
        // destination's send queue until its bytes are ACKed.
        pool->addref(pcs[i].frame);
        pieces.push_back(data);
        moved += data.length;
        round += data.length;
      }
      if (round == 0) break;
      eng->consume(st_->id, round);
    }
    app().cur().charge(static_cast<sim::Cycles>(pieces.size()) *
                       node().sim().costs().cache_line_pull);
    // Bytes left behind (destination window full): ask for a Writable
    // event on the destination so the splice resumes without polling.
    if (eng->recv_available(st_->id) > 0) {
      dst_eng->want_writable(dst.st_->id);
    }
  }
  if (pieces.empty()) {
    if (cb) app().call([cb](sim::Context&) { cb(true); });
    return 0;
  }
  // Re-submit the chain on the destination — the bytes never moved.
  dst.submit_chain(std::move(pieces), std::move(cb));
  return moved;
}

std::size_t TcpSocket::send_space() const {
  net::TcpEngine* eng = node().tcp_engine(net::sock_shard(st_->id));
  return eng == nullptr ? 0 : eng->send_space(st_->id);
}

std::size_t TcpSocket::recv(std::span<std::byte> out) {
  return node().sockets().recv(app(), SocketApi::Handle{'T', st_->id}, out);
}

std::size_t TcpSocket::recv_available() const {
  net::TcpEngine* eng = node().tcp_engine(net::sock_shard(st_->id));
  return eng == nullptr ? 0 : eng->recv_available(st_->id);
}

// --- TcpListener -------------------------------------------------------------------

TcpListener::TcpListener(AppActor& app) : Socket(app, 'T') {}

void TcpListener::bind_listen(net::Ipv4Addr addr, std::uint16_t port,
                              int backlog, SockStatusFn cb) {
  SockSqe b;
  b.opcode = servers::kSockBind;
  b.proto = 'T';
  b.arg0 = addr.value;
  b.arg1 = port;
  auto bind_ok = std::make_shared<bool>(false);
  submit_ctl(b, [bind_ok](const SockCqe& c) { *bind_ok = c.ok; });

  SockSqe l;
  l.opcode = servers::kSockListen;
  l.proto = 'T';
  l.arg0 = static_cast<std::uint64_t>(backlog);
  // Completions arrive in submission order, so bind_ok is settled by the
  // time the listen completes.
  SocketRing::CompletionFn done;
  if (cb) {
    done = [st = st_, bind_ok, cb = std::move(cb)](const SockCqe& c) {
      if (st->closed) return;
      cb(c.ok && *bind_ok);
    };
  }
  submit_ctl(l, std::move(done));
}

std::unique_ptr<TcpSocket> TcpListener::accept() {
  auto child =
      node().sockets().accept(app(), SocketApi::Handle{'T', st_->id});
  if (!child) return nullptr;
  return std::make_unique<TcpSocket>(app(), child->sock);
}

// --- UdpSocket ---------------------------------------------------------------------

UdpSocket::UdpSocket(AppActor& app) : Socket(app, 'U') {}

void UdpSocket::bind(net::Ipv4Addr addr, std::uint16_t port,
                     SockStatusFn cb) {
  SockSqe op;
  op.opcode = servers::kSockBind;
  op.proto = 'U';
  op.arg0 = addr.value;
  op.arg1 = port;
  submit_ctl(op, status_cb(std::move(cb)));
}

void UdpSocket::connect(net::Ipv4Addr peer, std::uint16_t port,
                        SockStatusFn cb) {
  SockSqe op;
  op.opcode = servers::kSockConnect;
  op.proto = 'U';
  op.arg0 = peer.value;
  op.arg1 = port;
  submit_ctl(op, status_cb(std::move(cb)));
}

void UdpSocket::sendto(std::uint32_t len, net::Ipv4Addr dst,
                       std::uint16_t port, SockStatusFn cb) {
  // Legacy copy semantics over the lending machinery (see TcpSocket::send).
  SockSqe op;
  op.opcode = servers::kSockSendTo;
  op.proto = 'U';
  op.sock = st_->id;
  if (node().udp_engine(net::sock_shard(st_->id)) == nullptr) {
    ring().fail_local(op, status_cb(std::move(cb)), kSockEDown);
    return;
  }
  SendReservation res = reserve(len);
  if (!res.valid()) {
    ring().fail_local(op, status_cb(std::move(cb)), kSockENoBufs);
    return;
  }
  app().cur().charge(node().sim().costs().copy_cost(len));
  node().stats().add("sock.bytes_copied", len);
  submit(std::move(res), dst, port, std::move(cb));
}

SendReservation UdpSocket::reserve(std::uint32_t len) {
  SendReservation res;
  res.node_ = &node();
  res.borrower_ = app().borrower_id();
  // Staged in the home replica's pool, where the sendto will execute.
  net::UdpEngine* eng = node().udp_engine(net::sock_shard(st_->id));
  if (eng == nullptr) eng = node().udp_engine(0);
  if (eng == nullptr || len == 0) return res;
  chan::RichPtr p = eng->alloc_payload(len);
  if (!p.valid()) {
    node().stats().add("sock.enobufs");
    return res;
  }
  if (chan::Pool* pool = node().pools().find(p.pool)) {
    pool->note_borrow(p, res.borrower_);
  }
  res.chunks_.push_back(p);
  res.bytes_ = len;
  return res;
}

void UdpSocket::submit(SendReservation res, net::Ipv4Addr dst,
                       std::uint16_t port, SockStatusFn cb) {
  if (!res.valid() || res.chunk_count() != 1) {
    // A datagram is one chunk; a scatter reservation (built for a TCP
    // socket) is rejected whole — cancel() returns every loan.
    const std::uint16_t err = res.valid() ? kSockERejected : kSockENoBufs;
    res.cancel();
    SockSqe op;
    op.opcode = servers::kSockSendTo;
    op.proto = 'U';
    op.sock = st_->id;
    ring().fail_local(op, status_cb(std::move(cb)), err);
    return;
  }
  const chan::RichPtr payload = res.chunks_.front();
  if (chan::Pool* pool = node().pools().find(payload.pool)) {
    pool->note_return(payload, res.borrower_);
  }
  res.chunks_.clear();
  res.bytes_ = 0;
  res.node_ = nullptr;
  SockSqe op;
  op.opcode = servers::kSockSendTo;
  op.proto = 'U';
  op.payload = payload;
  op.arg0 = dst.value;
  op.arg1 = port;
  submit_ctl(op, status_cb(std::move(cb)));
}

std::optional<BorrowedDatagram> UdpSocket::recvfrom_zc() {
  if (st_->id == 0) return std::nullopt;
  // The socket's record is replicated to every replica and inbound
  // datagrams hash to any of them: drain whichever shard queued one.
  for (int shard = 0; shard < node().udp_shard_count(); ++shard) {
    net::UdpEngine* eng = node().udp_engine(shard);
    servers::Server* srv = node().transport_server('U', shard);
    if (eng == nullptr || srv == nullptr) continue;
    servers::Server::BorrowContext borrow(*srv, app().cur());
    auto b = eng->recv_zc(st_->id);
    if (!b) continue;
    if (chan::Pool* pool = node().pools().find(b->frame.pool)) {
      pool->note_borrow(b->frame, app().borrower_id());
    }
    app().cur().charge(node().sim().costs().cache_line_pull);
    BorrowedDatagram d;
    d.node_ = &node();
    d.borrower_ = app().borrower_id();
    d.frame_ = b->frame;
    d.data_ = b->data;
    d.src_ = b->src;
    d.sport_ = b->sport;
    return d;
  }
  return std::nullopt;
}

std::optional<net::UdpEngine::Datagram> UdpSocket::recvfrom() {
  return node().sockets().recvfrom(app(), SocketApi::Handle{'U', st_->id});
}

// --- SocketApi (deprecated shim) ---------------------------------------------------

SocketApi::SocketApi(Node& node) : node_(node) {}

void SocketApi::open(AppActor& app, char proto, OpenCb cb) {
  SockSqe op;
  op.opcode = servers::kSockOpen;
  op.proto = proto;
  app.ring().enqueue(op, [proto, cb = std::move(cb)](const SockCqe& c) {
    Handle h;
    h.proto = proto;
    h.sock = c.ok ? static_cast<std::uint32_t>(c.value) : 0;
    cb(h);
  });
}

void SocketApi::bind(AppActor& app, Handle h, net::Ipv4Addr addr,
                     std::uint16_t port, StatusCb cb) {
  SockSqe op;
  op.opcode = servers::kSockBind;
  op.proto = h.proto;
  op.sock = h.sock;
  op.arg0 = addr.value;
  op.arg1 = port;
  app.ring().enqueue(op,
                     [cb = std::move(cb)](const SockCqe& c) { cb(c.ok); });
}

void SocketApi::listen(AppActor& app, Handle h, int backlog, StatusCb cb) {
  SockSqe op;
  op.opcode = servers::kSockListen;
  op.proto = h.proto;
  op.sock = h.sock;
  op.arg0 = static_cast<std::uint64_t>(backlog);
  app.ring().enqueue(op,
                     [cb = std::move(cb)](const SockCqe& c) { cb(c.ok); });
}

void SocketApi::connect(AppActor& app, Handle h, net::Ipv4Addr addr,
                        std::uint16_t port, StatusCb cb) {
  SockSqe op;
  op.opcode = servers::kSockConnect;
  op.proto = h.proto;
  op.sock = h.sock;
  op.arg0 = addr.value;
  op.arg1 = port;
  app.ring().enqueue(op,
                     [cb = std::move(cb)](const SockCqe& c) { cb(c.ok); });
}

void SocketApi::close(AppActor& app, Handle h, StatusCb cb) {
  clear_event_handler(h);
  SockSqe op;
  op.opcode = servers::kSockClose;
  op.proto = h.proto;
  op.sock = h.sock;
  app.ring().enqueue(op,
                     [cb = std::move(cb)](const SockCqe& c) { cb(c.ok); });
}

void SocketApi::send(AppActor& app, Handle h, std::uint32_t len,
                     StatusCb cb) {
  net::TcpEngine* eng = node_.tcp_engine(net::sock_shard(h.sock));
  if (eng == nullptr) {
    app.call([cb](sim::Context&) { cb(false); });
    return;
  }
  chan::RichPtr payload = eng->alloc_payload(len);
  if (!payload.valid()) {
    node_.stats().add("sock.enobufs");
    app.call([cb](sim::Context&) { cb(false); });
    return;
  }
  app.cur().charge(node_.sim().costs().copy_cost(len));
  node_.stats().add("sock.bytes_copied", len);
  SockSqe op;
  op.opcode = servers::kSockSend;
  op.proto = 'T';
  op.sock = h.sock;
  op.payload = payload;
  app.ring().enqueue(op,
                     [cb = std::move(cb)](const SockCqe& c) { cb(c.ok); });
}

void SocketApi::sendto(AppActor& app, Handle h, std::uint32_t len,
                       net::Ipv4Addr addr, std::uint16_t port, StatusCb cb) {
  net::UdpEngine* eng = node_.udp_engine(net::sock_shard(h.sock));
  if (eng == nullptr) {
    app.call([cb](sim::Context&) { cb(false); });
    return;
  }
  chan::RichPtr payload = eng->alloc_payload(len);
  if (!payload.valid()) {
    node_.stats().add("sock.enobufs");
    app.call([cb](sim::Context&) { cb(false); });
    return;
  }
  app.cur().charge(node_.sim().costs().copy_cost(len));
  node_.stats().add("sock.bytes_copied", len);
  SockSqe op;
  op.opcode = servers::kSockSendTo;
  op.proto = 'U';
  op.sock = h.sock;
  op.payload = payload;
  op.arg0 = addr.value;
  op.arg1 = port;
  app.ring().enqueue(op,
                     [cb = std::move(cb)](const SockCqe& c) { cb(c.ok); });
}

std::size_t SocketApi::send_space(Handle h) const {
  net::TcpEngine* eng = node_.tcp_engine(net::sock_shard(h.sock));
  return eng == nullptr ? 0 : eng->send_space(h.sock);
}

std::size_t SocketApi::recv(AppActor& app, Handle h,
                            std::span<std::byte> out) {
  const int shard = net::sock_shard(h.sock);
  net::TcpEngine* eng = node_.tcp_engine(shard);
  servers::Server* srv = node_.transport_server('T', shard);
  if (eng == nullptr || srv == nullptr) return 0;
  servers::Server::BorrowContext borrow(*srv, app.cur());
  const std::size_t n = eng->recv(h.sock, out);
  app.cur().charge(node_.sim().costs().copy_cost(
      static_cast<std::int64_t>(n)));
  if (n > 0) node_.stats().add("sock.bytes_copied", n);
  return n;
}

std::size_t SocketApi::recv_available(Handle h) const {
  net::TcpEngine* eng = node_.tcp_engine(net::sock_shard(h.sock));
  return eng == nullptr ? 0 : eng->recv_available(h.sock);
}

std::optional<net::UdpEngine::Datagram> SocketApi::recvfrom(AppActor& app,
                                                            Handle h) {
  // Inbound datagrams hash to any replica; drain whichever queued one.
  for (int shard = 0; shard < node_.udp_shard_count(); ++shard) {
    net::UdpEngine* eng = node_.udp_engine(shard);
    servers::Server* srv = node_.transport_server('U', shard);
    if (eng == nullptr || srv == nullptr) continue;
    servers::Server::BorrowContext borrow(*srv, app.cur());
    auto d = eng->recv(h.sock);
    if (!d) continue;
    app.cur().charge(node_.sim().costs().copy_cost(
        static_cast<std::int64_t>(d->data.size())));
    node_.stats().add("sock.bytes_copied", d->data.size());
    return d;
  }
  return std::nullopt;
}

std::optional<SocketApi::Handle> SocketApi::accept(AppActor& app, Handle h) {
  // SO_REUSEPORT steering: every replica owns an accept queue for the
  // listener's port, so pop from whichever shard queued a connection.  The
  // child id encodes the replica the flow was steered to, which is where
  // all its further ops route.
  for (int shard = 0; shard < node_.tcp_shard_count(); ++shard) {
    net::TcpEngine* eng = node_.tcp_engine(shard);
    servers::Server* srv = node_.transport_server('T', shard);
    if (eng == nullptr || srv == nullptr) continue;
    servers::Server::BorrowContext borrow(*srv, app.cur());
    auto child = eng->accept(h.sock);
    if (!child) continue;
    return Handle{'T', *child};
  }
  return std::nullopt;
}

void SocketApi::set_event_handler(Handle h, AppActor* app, EventCb cb) {
  handlers_[{h.proto, h.sock}] = {app, std::move(cb)};
}

void SocketApi::clear_event_handler(Handle h) {
  handlers_.erase({h.proto, h.sock});
}

void SocketApi::dispatch_event(int shard, char proto, std::uint32_t sock,
                               std::uint8_t event) {
  (void)shard;  // the handler key is the socket; replicas share the id
  auto it = handlers_.find({proto, sock});
  if (it == handlers_.end()) return;
  AppActor* app = it->second.first;
  EventCb cb = it->second.second;
  app->post_kernel_msg(
      [cb, event](sim::Context&) {
        cb(static_cast<net::TcpEvent>(event));
      },
      80);
}

}  // namespace newtos
