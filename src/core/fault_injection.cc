#include "src/core/fault_injection.h"

#include "src/core/node.h"

namespace newtos {

const char* to_string(FaultType t) {
  switch (t) {
    case FaultType::Crash: return "crash";
    case FaultType::Hang: return "hang";
    case FaultType::SilentWedge: return "silent-wedge";
    case FaultType::Slowdown: return "slowdown";
    case FaultType::DeviceWedge: return "device-wedge";
    case FaultType::SyncHang: return "sync-hang";
  }
  return "?";
}

FaultInjector::FaultInjector(Node& node, std::uint64_t seed)
    : node_(node), rng_(seed) {}

std::string FaultInjector::pick_component() {
  // Table III weights: TCP 25, UDP 10, IP 24, PF 25, driver 16.
  const std::uint64_t roll = rng_.below(100);
  if (roll < 25) return servers::kTcpName;
  if (roll < 35) return servers::kUdpName;
  if (roll < 59) return servers::kIpName;
  if (roll < 84) return servers::kPfName;
  const int nics = node_.nic_count();
  return servers::driver_name(
      nics > 0 ? static_cast<int>(rng_.below(static_cast<std::uint64_t>(nics)))
               : 0);
}

FaultType FaultInjector::pick_fault(const std::string& component) {
  const bool driver = component.rfind("drv", 0) == 0;
  const std::uint64_t roll = rng_.below(100);
  if (driver) {
    // The paper saw 2 driver slowdowns (misconfigured cards) in 16 driver
    // faults; everything else crashed or was caught by heartbeats.
    if (roll < 12) return FaultType::DeviceWedge;
    if (roll < 18) return FaultType::Hang;
    return FaultType::Crash;
  }
  // 3 reboot-requiring sync-part hangs and 3 TCP manual restarts in 100.
  if (roll < 3) return FaultType::SyncHang;
  if (roll < 6 && component == servers::kTcpName)
    return FaultType::SilentWedge;
  if (roll < 12) return FaultType::Hang;
  return FaultType::Crash;
}

void FaultInjector::inject(const std::string& component, FaultType type) {
  history_.push_back(Record{node_.sim().now(), component, type});
  node_.stats().log(node_.sim().now(),
                    "inject " + std::string(to_string(type)) + " into " +
                        component);
  servers::Server* s = node_.server(component);
  switch (type) {
    case FaultType::Crash:
      if (s != nullptr && s->alive()) s->kill();
      return;
    case FaultType::Hang:
      if (s != nullptr) s->hang();
      return;
    case FaultType::SilentWedge:
      if (s != nullptr) s->set_drop_work(true);
      return;
    case FaultType::Slowdown:
      if (s != nullptr) s->set_slowdown(8.0);
      return;
    case FaultType::DeviceWedge: {
      const int ifindex =
          component.rfind("drv", 0) == 0 ? std::atoi(component.c_str() + 3)
                                         : 0;
      if (ifindex < node_.nic_count()) node_.nic(ifindex)->set_wedged(true);
      return;
    }
    case FaultType::SyncHang:
      node_.set_requires_reboot();
      return;
  }
}

void FaultInjector::inject_at(sim::Time t, const std::string& component,
                              FaultType type) {
  node_.sim().at(t, [this, component, type] { inject(component, type); });
}

}  // namespace newtos
