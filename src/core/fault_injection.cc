#include "src/core/fault_injection.h"

#include "src/core/node.h"

namespace newtos {

const char* to_string(FaultType t) {
  switch (t) {
    case FaultType::Crash: return "crash";
    case FaultType::Hang: return "hang";
    case FaultType::SilentWedge: return "silent-wedge";
    case FaultType::Slowdown: return "slowdown";
    case FaultType::DeviceWedge: return "device-wedge";
    case FaultType::SyncHang: return "sync-hang";
  }
  return "?";
}

FaultInjector::FaultInjector(Node& node, std::uint64_t seed)
    : node_(node), rng_(seed) {}

std::string FaultInjector::pick_component() {
  // Table III weights: TCP 25, UDP 10, IP 24, PF 25, driver 16.
  const std::uint64_t roll = rng_.below(100);
  if (roll < 25) return servers::kTcpName;
  if (roll < 35) return servers::kUdpName;
  if (roll < 59) return servers::kIpName;
  if (roll < 84) return servers::kPfName;
  const int nics = node_.nic_count();
  return servers::driver_name(
      nics > 0 ? static_cast<int>(rng_.below(static_cast<std::uint64_t>(nics)))
               : 0);
}

FaultType FaultInjector::pick_fault(const std::string& component) {
  const bool driver = component.rfind("drv", 0) == 0;
  const std::uint64_t roll = rng_.below(100);
  if (driver) {
    // The paper saw 2 driver slowdowns (misconfigured cards) in 16 driver
    // faults; everything else crashed or was caught by heartbeats.
    if (roll < 12) return FaultType::DeviceWedge;
    if (roll < 18) return FaultType::Hang;
    return FaultType::Crash;
  }
  // 3 reboot-requiring sync-part hangs and 3 TCP manual restarts in 100.
  if (roll < 3) return FaultType::SyncHang;
  if (roll < 6 && component == servers::kTcpName)
    return FaultType::SilentWedge;
  if (roll < 12) return FaultType::Hang;
  return FaultType::Crash;
}

std::vector<FaultInjector::PlannedFault> FaultInjector::plan_campaign(int n) {
  std::vector<PlannedFault> plan;
  plan.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    PlannedFault f;
    f.component = pick_component();
    const bool driver = f.component.rfind("drv", 0) == 0;
    const std::uint64_t roll = rng_.below(100);
    if (driver) {
      if (roll < 12) f.type = FaultType::DeviceWedge;
      else if (roll < 20) f.type = FaultType::Hang;
      else f.type = FaultType::Crash;
    } else {
      const bool slowable = f.component != servers::kUdpName;
      if (roll < 4) f.type = FaultType::SyncHang;
      else if (roll < 10) f.type = FaultType::SilentWedge;
      else if (roll < 16) f.type = slowable ? FaultType::Slowdown
                                            : FaultType::Hang;
      else if (roll < 28) f.type = FaultType::Hang;
      else f.type = FaultType::Crash;
    }
    plan.push_back(std::move(f));
  }
  // Coverage pass: every manifestation class must appear at least once (a
  // short or unlucky draw could miss one), patched at fixed slots so the
  // schedule stays a pure function of the seed.
  auto has = [&plan](FaultType t) {
    for (const auto& f : plan)
      if (f.type == t) return true;
    return false;
  };
  const struct {
    FaultType type;
    const char* component;
  } required[] = {
      {FaultType::Crash, servers::kTcpName},
      {FaultType::Hang, servers::kIpName},
      {FaultType::SilentWedge, servers::kTcpName},
      {FaultType::Slowdown, servers::kPfName},
      {FaultType::DeviceWedge, "drv0"},
      {FaultType::SyncHang, servers::kTcpName},
  };
  std::size_t slot = 0;
  for (const auto& r : required) {
    if (has(r.type) || plan.empty()) continue;
    plan[slot % plan.size()] = PlannedFault{r.component, r.type};
    ++slot;
  }
  return plan;
}

void FaultInjector::inject(const std::string& component, FaultType type,
                           double slowdown_factor) {
  history_.push_back(Record{node_.sim().now(), component, type});
  node_.stats().log(node_.sim().now(),
                    "inject " + std::string(to_string(type)) + " into " +
                        component);
  servers::Server* s = node_.server(component);
  switch (type) {
    case FaultType::Crash:
      if (s != nullptr && s->alive()) s->kill();
      return;
    case FaultType::Hang:
      if (s != nullptr) s->hang();
      return;
    case FaultType::SilentWedge:
      if (s != nullptr) s->set_drop_work(true);
      return;
    case FaultType::Slowdown:
      if (s != nullptr) s->set_slowdown(slowdown_factor);
      return;
    case FaultType::DeviceWedge: {
      const int ifindex =
          component.rfind("drv", 0) == 0 ? std::atoi(component.c_str() + 3)
                                         : 0;
      if (ifindex < node_.nic_count()) node_.nic(ifindex)->set_wedged(true);
      return;
    }
    case FaultType::SyncHang:
      node_.set_requires_reboot();
      return;
  }
}

void FaultInjector::inject_at(sim::Time t, const std::string& component,
                              FaultType type, double slowdown_factor) {
  node_.sim().at(t, [this, component, type, slowdown_factor] {
    inject(component, type, slowdown_factor);
  });
}

}  // namespace newtos
