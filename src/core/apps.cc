#include "src/core/apps.h"

#include <vector>

#include "src/core/node.h"

namespace newtos::apps {

// --- BulkSender -----------------------------------------------------------------------

BulkSender::BulkSender(Node& node, AppActor* app, Config cfg)
    : node_(node), app_(app), cfg_(cfg) {}

void BulkSender::start() {
  app_->call([this](sim::Context& ctx) { open_and_connect(ctx); });
}

void BulkSender::open_and_connect(sim::Context&) {
  SocketApi& api = node_.sockets();
  api.open(*app_, 'T', [this](SocketApi::Handle h) {
    if (!h.valid()) {
      app_->call_after(100 * sim::kMillisecond,
                       [this](sim::Context& ctx) { open_and_connect(ctx); });
      return;
    }
    h_ = h;
    node_.sockets().set_event_handler(
        h_, app_, [this](net::TcpEvent ev) { on_event(ev); });
    node_.sockets().connect(*app_, h_, cfg_.dst, cfg_.port, [this](bool ok) {
      if (!ok) {
        app_->call_after(100 * sim::kMillisecond, [this](sim::Context& ctx) {
          open_and_connect(ctx);
        });
      }
    });
  });
}

void BulkSender::on_event(net::TcpEvent ev) {
  switch (ev) {
    case net::TcpEvent::Connected:
      connected_ = true;
      node_.stats().add(cfg_.prefix + ".connects");
      pump(app_->cur());
      break;
    case net::TcpEvent::Writable:
      pump(app_->cur());
      break;
    case net::TcpEvent::Reset:
    case net::TcpEvent::Closed:
      connected_ = false;
      node_.stats().add(cfg_.prefix + ".resets");
      node_.sockets().clear_event_handler(h_);
      h_ = {};
      app_->call_after(200 * sim::kMillisecond,
                       [this](sim::Context& ctx) { open_and_connect(ctx); });
      break;
    default:
      break;
  }
}

void BulkSender::pump(sim::Context&) {
  if (!connected_) return;
  SocketApi& api = node_.sockets();
  if (outstanding_ == 0 && api.send_space(h_) < cfg_.write_size &&
      !retry_scheduled_) {
    // Send buffer full with nothing in flight: poll until ACKs free space
    // (the Writable event only fires after a failed send).
    retry_scheduled_ = true;
    app_->call_after(5 * sim::kMillisecond, [this](sim::Context& ctx) {
      retry_scheduled_ = false;
      pump(ctx);
    });
    return;
  }
  while (outstanding_ < cfg_.max_outstanding &&
         api.send_space(h_) >= cfg_.write_size) {
    ++outstanding_;
    api.send(*app_, h_, cfg_.write_size, [this](bool ok) {
      --outstanding_;
      if (ok) {
        node_.stats().add(cfg_.prefix + ".bytes", cfg_.write_size);
        pump(app_->cur());
      } else if (!retry_scheduled_) {
        // Backpressure or transport restart: retry shortly; a Writable
        // event may also resume us sooner.
        retry_scheduled_ = true;
        app_->call_after(20 * sim::kMillisecond, [this](sim::Context& ctx) {
          retry_scheduled_ = false;
          pump(ctx);
        });
      }
    });
  }
}

// --- BulkReceiver ----------------------------------------------------------------------

BulkReceiver::BulkReceiver(Node& node, AppActor* app, Config cfg)
    : node_(node), app_(app), cfg_(cfg) {}

void BulkReceiver::start() {
  app_->call([this](sim::Context&) {
    SocketApi& api = node_.sockets();
    api.open(*app_, 'T', [this](SocketApi::Handle h) {
      if (!h.valid()) return;
      listener_ = h;
      SocketApi& api2 = node_.sockets();
      api2.set_event_handler(listener_, app_, [this](net::TcpEvent ev) {
        on_listener_event(ev);
      });
      api2.bind(*app_, listener_, net::Ipv4Addr{}, cfg_.port, [this](bool) {
        node_.sockets().listen(*app_, listener_, 16, [](bool) {});
      });
    });
  });
  if (cfg_.record_series) {
    sample();  // kicks off the periodic bitrate sampler
  }
}

void BulkReceiver::sample() {
  node_.sim().after(cfg_.sample_interval, [this] {
    const std::uint64_t delta = bytes_ - last_sample_bytes_;
    last_sample_bytes_ = bytes_;
    const double mbps = static_cast<double>(delta) * 8.0 /
                        (static_cast<double>(cfg_.sample_interval) / 1e9) /
                        1e6;
    node_.stats().record(cfg_.prefix + ".mbps", node_.sim().now(), mbps);
    sample();
  });
}

void BulkReceiver::on_listener_event(net::TcpEvent ev) {
  if (ev != net::TcpEvent::AcceptReady) return;
  SocketApi& api = node_.sockets();
  while (auto child = api.accept(*app_, listener_)) {
    const SocketApi::Handle h = *child;
    api.set_event_handler(h, app_, [this, h](net::TcpEvent cev) {
      if (cev == net::TcpEvent::Readable) {
        drain(h, app_->cur());
      } else if (cev == net::TcpEvent::Reset || cev == net::TcpEvent::Closed ||
                 cev == net::TcpEvent::PeerClosed) {
        node_.sockets().clear_event_handler(h);
      }
    });
    drain(h, app_->cur());  // data may have landed before registration
  }
}

void BulkReceiver::drain(SocketApi::Handle h, sim::Context& ctx) {
  static thread_local std::vector<std::byte> scratch(64 * 1024);
  SocketApi& api = node_.sockets();
  for (;;) {
    const std::size_t n = api.recv(*app_, h, scratch);
    if (n == 0) break;
    bytes_ += n;
    node_.stats().add(cfg_.prefix + ".bytes", n);
  }
  (void)ctx;
}

// --- EchoServer ------------------------------------------------------------------------

EchoServer::EchoServer(Node& node, AppActor* app, Config cfg)
    : node_(node), app_(app), cfg_(cfg) {}

void EchoServer::start() {
  app_->call([this](sim::Context&) {
    SocketApi& api = node_.sockets();
    api.open(*app_, 'T', [this](SocketApi::Handle h) {
      if (!h.valid()) return;
      listener_ = h;
      SocketApi& api2 = node_.sockets();
      api2.set_event_handler(listener_, app_, [this](net::TcpEvent ev) {
        on_listener_event(ev);
      });
      api2.bind(*app_, listener_, net::Ipv4Addr{}, cfg_.port, [this](bool) {
        node_.sockets().listen(*app_, listener_, 16, [](bool) {});
      });
    });
  });
}

void EchoServer::on_listener_event(net::TcpEvent ev) {
  if (ev != net::TcpEvent::AcceptReady) return;
  SocketApi& api = node_.sockets();
  while (auto child = api.accept(*app_, listener_)) {
    const SocketApi::Handle h = *child;
    node_.stats().add(cfg_.prefix + ".accepted");
    api.set_event_handler(h, app_, [this, h](net::TcpEvent cev) {
      if (cev == net::TcpEvent::Readable) {
        serve(h, app_->cur());
      } else if (cev == net::TcpEvent::Reset || cev == net::TcpEvent::Closed ||
                 cev == net::TcpEvent::PeerClosed) {
        node_.sockets().clear_event_handler(h);
      }
    });
    serve(h, app_->cur());
  }
}

void EchoServer::serve(SocketApi::Handle h, sim::Context&) {
  static thread_local std::vector<std::byte> scratch(4096);
  SocketApi& api = node_.sockets();
  for (;;) {
    const std::size_t n = api.recv(*app_, h, scratch);
    if (n == 0) break;
    api.send(*app_, h, static_cast<std::uint32_t>(n), [](bool) {});
  }
}

// --- EchoClient ------------------------------------------------------------------------

EchoClient::EchoClient(Node& node, AppActor* app, Config cfg)
    : node_(node), app_(app), cfg_(cfg) {}

void EchoClient::start() {
  app_->call([this](sim::Context& ctx) {
    connect_now(ctx);
    tick(ctx);
  });
}

void EchoClient::connect_now(sim::Context&) {
  SocketApi& api = node_.sockets();
  api.open(*app_, 'T', [this](SocketApi::Handle h) {
    if (!h.valid()) {
      app_->call_after(cfg_.reconnect_backoff,
                       [this](sim::Context& ctx) { connect_now(ctx); });
      return;
    }
    h_ = h;
    node_.sockets().set_event_handler(
        h_, app_, [this](net::TcpEvent ev) { on_event(ev); });
    node_.sockets().connect(*app_, h_, cfg_.dst, cfg_.port, [this](bool ok) {
      if (!ok) {
        node_.sockets().clear_event_handler(h_);
        h_ = {};
        app_->call_after(cfg_.reconnect_backoff,
                         [this](sim::Context& ctx) { connect_now(ctx); });
      }
    });
  });
}

void EchoClient::on_event(net::TcpEvent ev) {
  SocketApi& api = node_.sockets();
  switch (ev) {
    case net::TcpEvent::Connected:
      if (connected_) break;
      connected_ = true;
      ++reconnects_;
      node_.stats().add(cfg_.prefix + ".connected");
      break;
    case net::TcpEvent::Readable: {
      static thread_local std::vector<std::byte> scratch(512);
      while (api.recv(*app_, h_, scratch) > 0) {
      }
      if (awaiting_reply_) {
        awaiting_reply_ = false;
        ++seq_answered_;
        ++ok_;
        node_.stats().add(cfg_.prefix + ".ok");
      }
      break;
    }
    case net::TcpEvent::Reset:
    case net::TcpEvent::Closed:
      if (connected_) {
        ++resets_;
        node_.stats().add(cfg_.prefix + ".resets");
      }
      connected_ = false;
      awaiting_reply_ = false;
      api.clear_event_handler(h_);
      h_ = {};
      app_->call_after(cfg_.reconnect_backoff,
                       [this](sim::Context& ctx) { connect_now(ctx); });
      break;
    default:
      break;
  }
}

void EchoClient::tick(sim::Context&) {
  if (connected_ && h_.valid()) {
    if (awaiting_reply_) {
      // Previous request unanswered within the interval: count a timeout
      // once it exceeds cfg_.timeout (intervals since send).
      ++timeouts_;
      node_.stats().add(cfg_.prefix + ".timeouts");
      awaiting_reply_ = false;
    } else {
      ++seq_sent_;
      awaiting_reply_ = true;
      node_.sockets().send(*app_, h_, 128, [this](bool ok) {
        if (!ok) awaiting_reply_ = false;
      });
    }
  }
  app_->call_after(cfg_.interval, [this](sim::Context& ctx) { tick(ctx); });
}

// --- DNS pair --------------------------------------------------------------------------

DnsServer::DnsServer(Node& node, AppActor* app, std::uint16_t port)
    : node_(node), app_(app), port_(port) {}

void DnsServer::start() {
  app_->call([this](sim::Context&) {
    SocketApi& api = node_.sockets();
    api.open(*app_, 'U', [this](SocketApi::Handle h) {
      if (!h.valid()) return;
      h_ = h;
      SocketApi& api2 = node_.sockets();
      api2.set_event_handler(h_, app_, [this](net::TcpEvent) {
        SocketApi& api3 = node_.sockets();
        while (auto d = api3.recvfrom(*app_, h_)) {
          api3.sendto(*app_, h_,
                      static_cast<std::uint32_t>(d->data.size()), d->src,
                      d->sport, [](bool) {});
        }
      });
      api2.bind(*app_, h_, net::Ipv4Addr{}, port_, [](bool) {});
    });
  });
}

DnsClient::DnsClient(Node& node, AppActor* app, Config cfg)
    : node_(node), app_(app), cfg_(cfg) {}

void DnsClient::start() {
  app_->call([this](sim::Context&) {
    SocketApi& api = node_.sockets();
    api.open(*app_, 'U', [this](SocketApi::Handle h) {
      if (!h.valid()) return;
      h_ = h;
      SocketApi& api2 = node_.sockets();
      api2.set_event_handler(h_, app_, [this](net::TcpEvent) {
        SocketApi& api3 = node_.sockets();
        while (api3.recvfrom(*app_, h_)) {
          ++answered_;
          node_.stats().add(cfg_.prefix + ".answered");
        }
      });
      api2.connect(*app_, h_, cfg_.dst, cfg_.port, [this](bool ok) {
        ready_ = ok;
      });
    });
  });
  app_->call_after(cfg_.interval, [this](sim::Context& ctx) { tick(ctx); });
}

void DnsClient::tick(sim::Context&) {
  if (ready_ && h_.valid()) {
    ++sent_;
    node_.stats().add(cfg_.prefix + ".sent");
    // The socket is connected; sendto with a zero address uses the preset
    // peer (the remote resolver).
    node_.sockets().sendto(*app_, h_, 64, net::Ipv4Addr{}, 0, [](bool) {});
  }
  app_->call_after(cfg_.interval, [this](sim::Context& ctx) { tick(ctx); });
}

}  // namespace newtos::apps
