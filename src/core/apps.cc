#include "src/core/apps.h"

#include <vector>

#include "src/core/node.h"

namespace newtos::apps {

// --- BulkSender -----------------------------------------------------------------------

BulkSender::BulkSender(Node& node, AppActor* app, Config cfg)
    : node_(node), app_(app), cfg_(cfg) {}

void BulkSender::start() {
  app_->call([this](sim::Context& ctx) { open_and_connect(ctx); });
}

void BulkSender::open_and_connect(sim::Context&) {
  sock_ = std::make_unique<TcpSocket>(*app_);
  sock_->on_event([this](net::TcpEvent ev) { on_event(ev); });
  // open + connect ride the same submission-ring flush: two ops, one trap.
  sock_->connect(cfg_.dst, cfg_.port, [this](bool ok) {
    if (!ok) {
      sock_.reset();
      app_->call_after(100 * sim::kMillisecond,
                       [this](sim::Context& ctx) { open_and_connect(ctx); });
    }
  });
}

void BulkSender::on_event(net::TcpEvent ev) {
  switch (ev) {
    case net::TcpEvent::Connected:
      connected_ = true;
      node_.stats().add(cfg_.prefix + ".connects");
      pump(app_->cur());
      break;
    case net::TcpEvent::Writable:
      pump(app_->cur());
      break;
    case net::TcpEvent::Reset:
    case net::TcpEvent::Closed:
      connected_ = false;
      node_.stats().add(cfg_.prefix + ".resets");
      // Destroying the socket drops any still-in-flight send completions,
      // so their counts die with it.
      sock_.reset();
      outstanding_ = 0;
      app_->call_after(200 * sim::kMillisecond,
                       [this](sim::Context& ctx) { open_and_connect(ctx); });
      break;
    default:
      break;
  }
}

void BulkSender::pump(sim::Context&) {
  if (!connected_ || !sock_) return;
  if (outstanding_ == 0 && sock_->send_space() < cfg_.write_size &&
      !retry_scheduled_) {
    // Send buffer full with nothing in flight: poll until ACKs free space
    // (the Writable event only fires after a failed send).
    retry_scheduled_ = true;
    app_->call_after(5 * sim::kMillisecond, [this](sim::Context& ctx) {
      retry_scheduled_ = false;
      pump(ctx);
    });
    return;
  }
  // Every send queued by this loop joins ONE ring flush — up to
  // max_outstanding write submissions per kernel-IPC trap.  The payload
  // rides as a lent pool chunk filled in place: zero copies on the TX path.
  while (outstanding_ < cfg_.max_outstanding &&
         sock_->send_space() >= cfg_.write_size) {
    SendReservation res = sock_->reserve(cfg_.write_size);
    if (!res.valid()) {
      if (!retry_scheduled_) {
        retry_scheduled_ = true;
        app_->call_after(20 * sim::kMillisecond, [this](sim::Context& ctx) {
          retry_scheduled_ = false;
          pump(ctx);
        });
      }
      break;
    }
    ++outstanding_;
    sock_->submit(std::move(res), [this](bool ok) {
      --outstanding_;
      if (ok) {
        node_.stats().add(cfg_.prefix + ".bytes", cfg_.write_size);
        pump(app_->cur());
      } else if (!retry_scheduled_) {
        // Backpressure or transport restart: retry shortly; a Writable
        // event may also resume us sooner.
        retry_scheduled_ = true;
        app_->call_after(20 * sim::kMillisecond, [this](sim::Context& ctx) {
          retry_scheduled_ = false;
          pump(ctx);
        });
      }
    });
  }
}

// --- BulkReceiver ----------------------------------------------------------------------

BulkReceiver::BulkReceiver(Node& node, AppActor* app, Config cfg)
    : node_(node), app_(app), cfg_(cfg) {}

void BulkReceiver::start() {
  app_->call([this](sim::Context&) {
    listener_ = std::make_unique<TcpListener>(*app_);
    listener_->on_event(
        [this](net::TcpEvent ev) { on_listener_event(ev); });
    // open + bind + listen: three ops, one flush, one trap.
    listener_->bind_listen(net::Ipv4Addr{}, cfg_.port, 16, [](bool) {});
  });
  if (cfg_.record_series) {
    sample();  // kicks off the periodic bitrate sampler
  }
}

void BulkReceiver::sample() {
  node_.sim().after(cfg_.sample_interval, [this] {
    const std::uint64_t delta = bytes_ - last_sample_bytes_;
    last_sample_bytes_ = bytes_;
    const double mbps = static_cast<double>(delta) * 8.0 /
                        (static_cast<double>(cfg_.sample_interval) / 1e9) /
                        1e6;
    node_.stats().record(cfg_.prefix + ".mbps", node_.sim().now(), mbps);
    sample();
  });
}

void BulkReceiver::remove_conn(TcpSocket* sock) {
  std::erase_if(conns_, [sock](const auto& c) { return c.get() == sock; });
}

void BulkReceiver::on_listener_event(net::TcpEvent ev) {
  if (ev != net::TcpEvent::AcceptReady) return;
  while (auto conn = listener_->accept()) {
    TcpSocket* c = conn.get();
    conn->on_event([this, c](net::TcpEvent cev) {
      if (cev == net::TcpEvent::Readable) {
        drain(*c);
      } else if (cev == net::TcpEvent::Reset || cev == net::TcpEvent::Closed ||
                 cev == net::TcpEvent::PeerClosed) {
        remove_conn(c);
      }
    });
    conns_.push_back(std::move(conn));
    drain(*c);  // data may have landed before registration
  }
}

void BulkReceiver::drain(TcpSocket& sock) {
  // Zero-copy drain: look at the lent chunk views, account them, hand the
  // chunks straight back — iperf never needs the bytes anywhere else.
  for (;;) {
    const RecvView v = sock.recv_zc();
    if (v.empty()) break;
    sock.consume(v.bytes);
    bytes_ += v.bytes;
    node_.stats().add(cfg_.prefix + ".bytes", v.bytes);
  }
}

// --- EchoServer ------------------------------------------------------------------------

EchoServer::EchoServer(Node& node, AppActor* app, Config cfg)
    : node_(node), app_(app), cfg_(cfg) {}

void EchoServer::start() {
  app_->call([this](sim::Context&) {
    listener_ = std::make_unique<TcpListener>(*app_);
    listener_->on_event(
        [this](net::TcpEvent ev) { on_listener_event(ev); });
    listener_->bind_listen(net::Ipv4Addr{}, cfg_.port, 16, [](bool) {});
  });
}

void EchoServer::remove_conn(TcpSocket* sock) {
  std::erase_if(conns_, [sock](const auto& c) { return c.get() == sock; });
}

void EchoServer::on_listener_event(net::TcpEvent ev) {
  if (ev != net::TcpEvent::AcceptReady) return;
  while (auto conn = listener_->accept()) {
    TcpSocket* c = conn.get();
    node_.stats().add(cfg_.prefix + ".accepted");
    conn->on_event([this, c](net::TcpEvent cev) {
      if (cev == net::TcpEvent::Readable ||
          cev == net::TcpEvent::Writable) {
        // Writable resumes a splice that stalled on a full send buffer
        // (forward() arms it when it leaves bytes behind).
        serve(*c);
      } else if (cev == net::TcpEvent::Reset || cev == net::TcpEvent::Closed ||
                 cev == net::TcpEvent::PeerClosed) {
        remove_conn(c);
      }
    });
    conns_.push_back(std::move(conn));
    serve(*c);
  }
}

void EchoServer::serve(TcpSocket& sock) {
  // Zero-copy echo: splice the received chunks straight back onto the same
  // socket's send queue (the paper's component hand-off, Section V-C).
  // The replies queued by this loop batch into one submission flush.
  while (sock.forward(sock, 64 * 1024) > 0) {
  }
}

// --- EchoClient ------------------------------------------------------------------------

EchoClient::EchoClient(Node& node, AppActor* app, Config cfg)
    : node_(node), app_(app), cfg_(cfg) {}

void EchoClient::start() {
  app_->call([this](sim::Context& ctx) {
    connect_now(ctx);
    tick(ctx);
  });
}

void EchoClient::connect_now(sim::Context&) {
  sock_ = std::make_unique<TcpSocket>(*app_);
  sock_->on_event([this](net::TcpEvent ev) { on_event(ev); });
  sock_->connect(cfg_.dst, cfg_.port, [this](bool ok) {
    if (!ok) {
      sock_.reset();
      app_->call_after(cfg_.reconnect_backoff,
                       [this](sim::Context& ctx) { connect_now(ctx); });
    }
  });
}

void EchoClient::on_event(net::TcpEvent ev) {
  switch (ev) {
    case net::TcpEvent::Connected:
      if (connected_) break;
      connected_ = true;
      ++reconnects_;
      node_.stats().add(cfg_.prefix + ".connected");
      break;
    case net::TcpEvent::Readable: {
      while (sock_) {
        const RecvView v = sock_->recv_zc();
        if (v.empty()) break;
        sock_->consume(v.bytes);
      }
      if (awaiting_reply_) {
        awaiting_reply_ = false;
        ++seq_answered_;
        ++ok_;
        node_.stats().add(cfg_.prefix + ".ok");
      }
      break;
    }
    case net::TcpEvent::Reset:
    case net::TcpEvent::Closed:
      if (connected_) {
        ++resets_;
        node_.stats().add(cfg_.prefix + ".resets");
      }
      connected_ = false;
      awaiting_reply_ = false;
      sock_.reset();
      app_->call_after(cfg_.reconnect_backoff,
                       [this](sim::Context& ctx) { connect_now(ctx); });
      break;
    default:
      break;
  }
}

void EchoClient::tick(sim::Context&) {
  if (connected_ && sock_ && sock_->valid()) {
    if (awaiting_reply_) {
      // Previous request unanswered within the interval: count a timeout
      // once it exceeds cfg_.timeout (intervals since send).
      ++timeouts_;
      node_.stats().add(cfg_.prefix + ".timeouts");
      awaiting_reply_ = false;
    } else {
      ++seq_sent_;
      awaiting_reply_ = true;
      sock_->send(128, [this](bool ok) {
        if (!ok) awaiting_reply_ = false;
      });
    }
  }
  app_->call_after(cfg_.interval, [this](sim::Context& ctx) { tick(ctx); });
}

// --- DNS pair --------------------------------------------------------------------------

DnsServer::DnsServer(Node& node, AppActor* app, std::uint16_t port)
    : node_(node), app_(app), port_(port) {}

void DnsServer::start() {
  app_->call([this](sim::Context&) {
    sock_ = std::make_unique<UdpSocket>(*app_);
    sock_->on_event([this](net::TcpEvent) {
      // Every response queued by this loop batches into one flush.  The
      // query arrives as a borrowed view; the answer is built in place in
      // a reserved chunk — no payload copies either way.
      while (auto d = sock_->recvfrom_zc()) {
        SendReservation res = sock_->reserve(
            static_cast<std::uint32_t>(d->data().size()));
        if (!res.valid()) continue;  // ENOBUFS: drop, client retries
        sock_->submit(std::move(res), d->src(), d->sport(), {});
      }
    });
    // open + bind: one flush.
    sock_->bind(net::Ipv4Addr{}, port_, [](bool) {});
  });
}

DnsClient::DnsClient(Node& node, AppActor* app, Config cfg)
    : node_(node), app_(app), cfg_(cfg) {}

void DnsClient::start() {
  app_->call([this](sim::Context&) {
    sock_ = std::make_unique<UdpSocket>(*app_);
    sock_->on_event([this](net::TcpEvent) {
      while (sock_->recvfrom_zc()) {  // borrowed view, released immediately
        ++answered_;
        node_.stats().add(cfg_.prefix + ".answered");
      }
    });
    // open + connect: one flush.
    sock_->connect(cfg_.dst, cfg_.port, [this](bool ok) { ready_ = ok; });
  });
  app_->call_after(cfg_.interval, [this](sim::Context& ctx) { tick(ctx); });
}

void DnsClient::tick(sim::Context&) {
  if (ready_ && sock_ && sock_->valid()) {
    ++sent_;
    node_.stats().add(cfg_.prefix + ".sent");
    // The socket is connected; sendto with a zero address uses the preset
    // peer (the remote resolver).
    sock_->sendto(64, net::Ipv4Addr{}, 0, [](bool) {});
  }
  app_->call_after(cfg_.interval, [this](sim::Context& ctx) { tick(ctx); });
}

}  // namespace newtos::apps
