// SWIFI-style fault injection (Section VI-B).
//
// The paper injected 100 random faults per run with the tool used for Rio,
// Nooks and MINIX 3; faults manifested mostly as crashes, sometimes as
// hangs, silent misbehaviour, slowdowns, or hangs of the unconverted
// synchronous (select/VFS) part of the system.  We model the *manifestation*
// classes directly and let the recovery machinery determine the outcome:
//
//   Crash       -> process dies; reincarnation restarts it immediately
//   Hang        -> stops processing; caught by heartbeat timeouts
//   SilentWedge -> answers heartbeats but drops work; needs manual restart
//   Slowdown    -> keeps running at a fraction of its speed; manual restart
//   DeviceWedge -> (drivers) NIC misconfigured, drops frames until reset
//   SyncHang    -> the unconverted synchronous part wedges: reboot required
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/rng.h"
#include "src/sim/time.h"

namespace newtos {

class Node;

enum class FaultType {
  Crash,
  Hang,
  SilentWedge,
  Slowdown,
  DeviceWedge,
  SyncHang,
};

const char* to_string(FaultType t);

class FaultInjector {
 public:
  FaultInjector(Node& node, std::uint64_t seed);

  // Applies a fault immediately.  `slowdown_factor` only matters for
  // Slowdown: 8.0 is the paper-era mild degradation (detectable only when
  // it breaches the supervision SLO); campaigns inject 64.0, which
  // overloads any component with real traffic on it.
  void inject(const std::string& component, FaultType type,
              double slowdown_factor = 8.0);
  // Schedules a fault at an absolute virtual time.
  void inject_at(sim::Time t, const std::string& component, FaultType type,
                 double slowdown_factor = 8.0);

  // Campaign draws.  Components follow the paper's observed crash
  // distribution (Table III: TCP 25, UDP 10, IP 24, PF 25, driver 16);
  // manifestations follow the rates implied by Table IV.
  std::string pick_component();
  FaultType pick_fault(const std::string& component);

  // A whole seeded SWIFI campaign, planned up front so it can be printed,
  // replayed (`bench_faults --campaign-seed=N`) and checked for coverage.
  // Components follow Table III; manifestations follow a supervised remix
  // of the Table IV rates that exercises every rung of the escalation
  // ladder: silent wedges and slowdowns are injected into any component
  // class that can manifest them detectably (slowdown needs a backlog to
  // queue behind, so it goes to tcp/ip/pf — a lightly loaded UDP shard
  // answers a probe in microseconds even at 1/8 speed).  The plan is then
  // patched so all six manifestation classes appear at least once.
  struct PlannedFault {
    std::string component;
    FaultType type = FaultType::Crash;
  };
  std::vector<PlannedFault> plan_campaign(int n);

  struct Record {
    sim::Time at = 0;
    std::string component;
    FaultType type = FaultType::Crash;
  };
  const std::vector<Record>& history() const { return history_; }

 private:
  Node& node_;
  sim::Rng rng_;
  std::vector<Record> history_;
};

}  // namespace newtos
