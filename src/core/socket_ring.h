// Per-application submission/completion rings for socket control ops.
//
// The paper's SYSCALL server decouples synchronous POSIX calls from the
// asynchronous stack, but one kernel-IPC trap per call still bounds the
// control path (Table II).  The ring amortizes it, io_uring-style: an
// application queues N socket ops into its submission queue (SQ) and a
// single doorbell — one trap — flushes the whole batch to the SYSCALL
// server (or straight into the transports when the configuration has none).
// Completions accumulate in a completion queue (CQ) on the app's core and
// drain under one kernel message as well, so the reply side is amortized
// the same way.  Data still bypasses everything through the exported socket
// buffers (Section V-B); only control rides the rings.
//
// Both queues reuse chan::SpscRing — the same cache-friendly structure as
// the inter-server channels (Section IV).  Neither side ever blocks: a full
// SQ fails the op with an error completion and the application's retry
// policy applies, exactly like a full channel queue (Section IV-A).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "src/chan/rich_ptr.h"
#include "src/chan/spsc_ring.h"
#include "src/sim/sim.h"

namespace newtos {

class AppActor;
class Node;

// One submission-queue entry: a socket control op.
struct SockSqe {
  std::uint16_t opcode = 0;  // servers::kSockOpen..kSockClose
  char proto = 'T';
  std::uint32_t sock = 0;    // 0 / kSockFromBatchOpen / socket id
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  chan::RichPtr payload;     // exported-buffer chunk for send/sendto
  std::uint64_t cookie = 0;  // assigned by enqueue()
};

// Why a completion failed (SockCqe::err).  ENOBUFS-style conditions are
// distinguishable so applications can apply backpressure instead of
// treating transient pool exhaustion like a dead socket.
enum SockErr : std::uint16_t {
  kSockOk = 0,
  kSockENoBufs,    // payload pool exhausted; retry after completions drain
  kSockERejected,  // the transport refused the op (bad state, full queue, ...)
  kSockEDown,      // no transport to take the op
};

// One completion-queue entry.
struct SockCqe {
  std::uint64_t cookie = 0;
  std::uint16_t opcode = 0;  // the submitted op
  std::uint32_t sock = 0;    // the socket acted on (the new id for open)
  bool ok = false;
  std::uint16_t err = kSockOk;
  std::uint64_t value = 0;   // reply arg0 (e.g. the id an open returned)
};

class SocketRing {
 public:
  using CompletionFn = std::function<void(const SockCqe&)>;

  SocketRing(Node& node, AppActor& app, std::size_t depth = 256);

  // SQ producer side.  Queues one op; the doorbell is deferred to the end
  // of the current handler turn, so every op enqueued while the app runs
  // rides the same flush.  Returns false (and posts an error completion)
  // when the SQ is full — never blocks.
  bool enqueue(SockSqe op, CompletionFn cb);

  // Completes `op` locally with an error CQE — it never reaches the SQ.
  // Used when submission-side staging fails (e.g. ENOBUFS from the payload
  // pool) so the failure flows through the ordinary completion path instead
  // of a side-channel callback.
  void fail_local(SockSqe op, CompletionFn cb, std::uint16_t err);

  // Cookie of the most recent enqueue.
  std::uint64_t last_cookie() const { return next_cookie_ - 1; }
  // True while `cookie` still sits in the SQ, i.e. it will ride the next
  // doorbell (used to decide whether an in-batch open sentinel can still
  // refer to it).
  bool rides_next_flush(std::uint64_t cookie) const {
    return cookie >= flush_watermark_;
  }
  // Cookie of the most recently queued kSockOpen of `proto`.  The batch
  // sentinel binds to the nearest preceding open, so a chained op may only
  // use it while its own open is still the latest one queued.
  std::uint64_t last_open_cookie(char proto) const {
    return proto == 'U' ? last_open_u_ : last_open_t_;
  }

  Node& node() { return node_; }
  AppActor& app() { return app_; }

  // --- statistics -----------------------------------------------------------------
  // ops() / doorbells() is the amortization datapoint: socket ops completed
  // per kernel-IPC trap (≥ 2 once batching does anything at all).
  std::uint64_t ops() const { return ops_; }
  std::uint64_t doorbells() const { return doorbells_; }
  std::uint64_t completions() const { return completions_; }
  std::uint64_t cq_drains() const { return cq_drains_; }
  std::uint64_t sq_overflows() const { return sq_overflows_; }
  std::size_t pending() const { return sq_.size(); }
  // SQ slots still free this flush window (forward() budgets against it so
  // a spliced chain never overflows into error completions).
  std::size_t sq_free() const { return sq_.capacity() - sq_.size(); }

 private:
  struct PendingCb {
    std::uint16_t opcode = 0;
    CompletionFn fn;
  };

  void schedule_flush();
  void do_flush(sim::Context& ctx);
  void route_direct(std::vector<SockSqe> batch);
  // Reply paths: convert a kSockReply into a CQE and queue it for the next
  // CQ drain (one kernel message back into the app covers all of them).
  void on_reply(std::uint64_t cookie, std::uint16_t opcode,
                std::uint16_t flags, std::uint32_t sock, std::uint64_t arg0);
  void fail(const SockSqe& op, std::uint16_t err = kSockERejected);
  void push_cqe(const SockCqe& cqe);
  void drain_cq();

  Node& node_;
  AppActor& app_;
  chan::SpscRing<SockSqe> sq_;
  chan::SpscRing<SockCqe> cq_;
  std::map<std::uint64_t, PendingCb> cbs_;
  std::uint64_t next_cookie_ = 1;
  std::uint64_t flush_watermark_ = 1;
  std::uint64_t last_open_t_ = 0;
  std::uint64_t last_open_u_ = 0;
  bool flush_scheduled_ = false;
  bool drain_scheduled_ = false;

  std::uint64_t ops_ = 0;
  std::uint64_t doorbells_ = 0;
  std::uint64_t completions_ = 0;
  std::uint64_t cq_drains_ = 0;
  std::uint64_t sq_overflows_ = 0;
};

}  // namespace newtos
