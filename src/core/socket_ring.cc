#include "src/core/socket_ring.h"

#include <utility>

#include "src/core/node.h"
#include "src/servers/proto.h"

namespace newtos {

namespace {

// Every submission path reuses the packed-op format of the channel
// protocol; req_id carries the ring cookie for reply correlation.
servers::WireSockOp to_wire(const SockSqe& op) {
  servers::WireSockOp w;
  w.opcode = op.opcode;
  w.proto = static_cast<std::uint8_t>(op.proto);
  w.sock = op.sock;
  w.req_id = op.cookie;
  w.arg0 = op.arg0;
  w.arg1 = op.arg1;
  w.ptr = op.payload;
  return w;
}

}  // namespace

SocketRing::SocketRing(Node& node, AppActor& app, std::size_t depth)
    : node_(node), app_(app), sq_(depth), cq_(depth) {}

bool SocketRing::enqueue(SockSqe op, CompletionFn cb) {
  op.cookie = next_cookie_++;
  if (!sq_.try_push(op)) {
    // Full SQ: never block (Section IV-A).  The op fails with an error
    // completion and the application's retry policy takes over.
    ++sq_overflows_;
    cbs_[op.cookie] = PendingCb{op.opcode, std::move(cb)};
    fail(op);
    return false;
  }
  cbs_[op.cookie] = PendingCb{op.opcode, std::move(cb)};
  if (op.opcode == servers::kSockOpen) {
    (op.proto == 'U' ? last_open_u_ : last_open_t_) = op.cookie;
  }
  schedule_flush();
  return true;
}

void SocketRing::schedule_flush() {
  if (flush_scheduled_) return;
  flush_scheduled_ = true;
  // The deferred doorbell: ops enqueued for the rest of this handler turn
  // join the batch; the flush itself is the one trap they all share.
  app_.call(
      [this](sim::Context& ctx) {
        flush_scheduled_ = false;
        do_flush(ctx);
      },
      50);
}

void SocketRing::do_flush(sim::Context& ctx) {
  std::vector<SockSqe> batch;
  SockSqe e;
  while (sq_.try_pop(e)) batch.push_back(e);
  flush_watermark_ = next_cookie_;
  if (batch.empty()) return;

  ops_ += batch.size();
  ++doorbells_;
  node_.stats().add("sockring.ops", batch.size());
  node_.stats().add("sockring.doorbells");

  const auto& cfg = node_.config();
  const auto& costs = node_.sim().costs();

  // The app-side trap — ONE for the whole batch.  The per-op cost is only
  // the copy of the packed descriptors into the submission window.
  if (cfg.mode == StackMode::kIdealMonolithic) {
    ctx.charge(80 + static_cast<sim::Cycles>(8 * batch.size()));
  } else {
    ctx.charge(costs.trap_hot +
               static_cast<sim::Cycles>(costs.copy_per_byte *
                                        sizeof(servers::WireSockOp) *
                                        batch.size()));
  }

  if (cfg.has_syscall_server() && node_.syscall() != nullptr) {
    std::vector<servers::SyscallServer::BatchOp> ops;
    ops.reserve(batch.size());
    for (const auto& sqe : batch) {
      servers::SyscallServer::BatchOp op;
      op.proto = sqe.proto;
      op.request = servers::sock_op_message(to_wire(sqe));
      const std::uint64_t cookie = sqe.cookie;
      const std::uint16_t opcode = sqe.opcode;
      op.deliver = [this, cookie, opcode](const chan::Message& r) {
        on_reply(cookie, opcode, r.flags, r.socket, r.arg0);
      };
      ops.push_back(std::move(op));
    }
    node_.syscall()->submit_batch(std::move(ops));
    return;
  }
  route_direct(std::move(batch));
}

void SocketRing::route_direct(std::vector<SockSqe> batch) {
  const auto& cfg = node_.config();
  const auto& costs = node_.sim().costs();

  if (cfg.combined_stack()) {
    servers::StackServer* stack = node_.stack_server();
    if (stack == nullptr || !stack->alive()) {
      for (const auto& op : batch) fail(op, kSockEDown);
      return;
    }
    // Direct kernel IPC into the combined stack: it pays one (cold) trap
    // for the whole batch instead of one per op.
    const sim::Cycles toll = cfg.mode == StackMode::kIdealMonolithic
                                 ? 0
                                 : costs.trap_cold - costs.trap_hot;
    std::vector<servers::WireSockOp> wire;
    wire.reserve(batch.size());
    for (const auto& sqe : batch) wire.push_back(to_wire(sqe));
    stack->post_kernel_msg(
        [this, stack, wire = std::move(wire)](sim::Context& sctx) {
          servers::run_sock_batch(
              wire, [&](char proto, const chan::Message& sm,
                        const auto& note_open) {
                stack->handle_sock_request(
                    proto, sm, sctx, [&](const chan::Message& r) {
                      note_open(r);
                      on_reply(sm.req_id, sm.opcode, r.flags, r.socket,
                               r.arg0);
                    });
              });
        },
        toll);
    return;
  }

  // Table II line 2: no SYSCALL server — the app traps straight into the
  // transports, polluting their caches.  The batch still amortizes the
  // cold trap, but each reply keeps its synchronous toll (trap + IPI +
  // context restore on the blocked app).  With a sharded plane the app
  // traps once per replica it targets; opens spread round-robin and every
  // later op follows the shard its socket id encodes.
  std::vector<servers::WireSockOp> wire_all;
  wire_all.reserve(batch.size());
  for (const auto& sqe : batch) wire_all.push_back(to_wire(sqe));
  std::vector<int> shard_of(batch.size(), 0);
  servers::route_sock_shards(
      wire_all, node_.tcp_shard_count(), node_.udp_shard_count(),
      node_.direct_open_cursors(),
      [&](std::size_t i, int shard) { shard_of[i] = shard; },
      [&](char proto, int shard) {
        servers::Server* s =
            node_.server(servers::transport_shard_name(proto, shard));
        return s != nullptr && s->alive();
      });

  for (const char proto : {'T', 'U'}) {
    const int shards = proto == 'T' ? node_.tcp_shard_count()
                                    : node_.udp_shard_count();
    for (int shard = 0; shard < shards; ++shard) {
      std::vector<std::size_t> idxs;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (batch[i].proto == proto && shard_of[i] == shard) idxs.push_back(i);
      }
      if (idxs.empty()) continue;
      const std::string target = servers::transport_shard_name(proto, shard);
      servers::Server* srv = node_.server(target);
      if (srv == nullptr || !srv->alive()) {
        for (std::size_t i : idxs) fail(batch[i], kSockEDown);
        continue;
      }
      const sim::Cycles reply_toll =
          costs.trap_hot + costs.ipi + costs.mwait_wakeup;
      std::vector<servers::WireSockOp> wire;
      wire.reserve(idxs.size());
      for (std::size_t i : idxs) wire.push_back(wire_all[i]);
      auto run = [this, srv, proto, reply_toll,
                  wire = std::move(wire)](sim::Context& sctx) {
        servers::run_sock_batch(
            wire, [&](char, const chan::Message& sm, const auto& note_open) {
              auto reply = [&](const chan::Message& r) {
                note_open(r);
                srv->cur().charge(reply_toll);
                on_reply(sm.req_id, sm.opcode, r.flags, r.socket, r.arg0);
              };
              if (proto == 'T') {
                static_cast<servers::TcpServer*>(srv)->handle_sock_request(
                    sm, sctx, reply);
              } else {
                static_cast<servers::UdpServer*>(srv)->handle_sock_request(
                    sm, sctx, reply);
              }
            });
      };
      srv->post_kernel_msg(std::move(run), costs.trap_cold);
    }
  }
}

void SocketRing::on_reply(std::uint64_t cookie, std::uint16_t opcode,
                          std::uint16_t flags, std::uint32_t sock,
                          std::uint64_t arg0) {
  SockCqe c;
  c.cookie = cookie;
  c.opcode = opcode;
  c.sock = sock;
  c.value = arg0;
  c.ok = (flags & 1) == 0 &&
         (opcode == servers::kSockClose || arg0 != 0);
  c.err = c.ok ? kSockOk : kSockERejected;
  push_cqe(c);
}

void SocketRing::fail_local(SockSqe op, CompletionFn cb, std::uint16_t err) {
  op.cookie = next_cookie_++;
  cbs_[op.cookie] = PendingCb{op.opcode, std::move(cb)};
  fail(op, err);
}

void SocketRing::fail(const SockSqe& op, std::uint16_t err) {
  // The op never reached a transport: hand any pre-allocated payload back
  // to its pool (the engine only takes ownership once the op executes).
  // Forwarded payloads are sub-ranges; the registry resolves the owner.
  node_.pools().release(op.payload);
  SockCqe c;
  c.cookie = op.cookie;
  c.opcode = op.opcode;
  c.sock = op.sock;
  c.ok = false;
  c.err = err;
  push_cqe(c);
}

void SocketRing::push_cqe(const SockCqe& cqe) {
  if (!cq_.try_push(cqe)) {
    // CQ overflow: degrade to a dedicated kernel message for this one
    // completion rather than dropping it.
    app_.post_kernel_msg(
        [this, cqe](sim::Context&) {
          auto it = cbs_.find(cqe.cookie);
          if (it == cbs_.end()) return;
          CompletionFn fn = std::move(it->second.fn);
          cbs_.erase(it);
          ++completions_;
          if (fn) fn(cqe);
        },
        100);
    return;
  }
  if (drain_scheduled_) return;
  drain_scheduled_ = true;
  // One kernel message back into the app's address space drains every
  // completion that accumulated — the reply-side half of the amortization.
  app_.post_kernel_msg(
      [this](sim::Context&) {
        drain_scheduled_ = false;
        drain_cq();
      },
      100);
}

void SocketRing::drain_cq() {
  ++cq_drains_;
  SockCqe c;
  while (cq_.try_pop(c)) {
    auto it = cbs_.find(c.cookie);
    if (it == cbs_.end()) continue;
    CompletionFn fn = std::move(it->second.fn);
    cbs_.erase(it);
    ++completions_;
    if (fn) fn(c);
  }
}

}  // namespace newtos
