#include "src/core/node.h"

#include <algorithm>
#include <array>
#include <map>

#include "src/core/socket_ring.h"
#include "src/servers/driver_server.h"

namespace newtos {

const char* to_string(StackMode m) {
  switch (m) {
    case StackMode::kMinixSync: return "minix-sync";
    case StackMode::kSplit: return "split";
    case StackMode::kSplitSyscall: return "split+syscall";
    case StackMode::kSingleServer: return "single-server+syscall";
    case StackMode::kIdealMonolithic: return "ideal-monolithic";
  }
  return "?";
}

namespace {

std::uint32_t g_mac_counter = 1;

// Effective replica count for a split-stack transport: combined stacks
// always run one engine pair, and the id encoding bounds the rest.
int clamp_shards(int requested, bool split) {
  if (!split || requested < 1) return 1;
  return std::min(requested, net::kMaxTransportShards);
}

}  // namespace

Node::Node(sim::Simulator& sim, NodeConfig cfg)
    : sim_(sim), cfg_(std::move(cfg)), kernel_(&sim.costs()) {
  env_.sim = &sim_;
  env_.pools = &pools_;
  env_.registry = &registry_;
  env_.channels = &chmgr_;
  env_.kernel = &kernel_;
  env_.node_name = cfg_.name;
  env_.knobs.ipc = cfg_.mode == StackMode::kMinixSync
                       ? servers::IpcMode::kKernelSync
                       : servers::IpcMode::kChannels;
  env_.knobs.tso = cfg_.tso;
  env_.knobs.csum_offload = cfg_.csum_offload;
  env_.knobs.cost_scale = cfg_.cost_scale;
  env_.knobs.work_probes = cfg_.work_probes;
  env_.knobs.supervision = cfg_.supervision;
  env_.knobs.legacy_per_packet =
      cfg_.mode == StackMode::kMinixSync ? sim.costs().minix_stack_per_packet : 0;
  env_.knobs.app_write_size = cfg_.app_write_size;
  env_.get_queue = [this](const std::string& name, std::size_t cap) {
    auto it = queues_.find(name);
    if (it == queues_.end()) {
      it = queues_
               .emplace(name, std::make_unique<chan::Queue>(name, cap))
               .first;
    }
    return it->second.get();
  };
  env_.get_pool = [this](const std::string& name, std::size_t size) {
    auto it = named_pools_.find(name);
    if (it == named_pools_.end()) {
      chan::Pool& p = pools_.create(cfg_.name, name, size);
      it = named_pools_.emplace(name, &p).first;
    }
    return it->second;
  };
  env_.report_crash = [this](servers::Server* s) {
    stats_.log(sim_.now(), "crash: " + s->name());
    if (rs_ != nullptr && s != rs_) rs_->child_crashed(s);
  };
  env_.sock_event = [this](int shard, char proto, std::uint32_t sock,
                           std::uint8_t event) {
    sockets_->dispatch_event(shard, proto, sock, event);
  };
  sockets_ = std::make_unique<SocketApi>(*this);
  build();
}

Node::~Node() = default;

net::Ipv4Addr Node::addr(int nic_index) const {
  return net::Ipv4Addr(10,
                       static_cast<std::uint8_t>(cfg_.subnet_base + nic_index),
                       0, cfg_.left ? 1 : 2);
}

net::Ipv4Addr Node::peer_addr(int nic_index) const {
  return net::Ipv4Addr(10,
                       static_cast<std::uint8_t>(cfg_.subnet_base + nic_index),
                       0, cfg_.left ? 2 : 1);
}

net::IpConfig Node::make_ip_config() const {
  net::IpConfig ip;
  for (int i = 0; i < cfg_.nics; ++i) {
    net::Interface ifc;
    ifc.index = i;
    ifc.mac = nics_[i]->mac();
    ifc.addr = addr(i);
    ifc.subnet = net::Ipv4Net{
        net::Ipv4Addr(10, static_cast<std::uint8_t>(cfg_.subnet_base + i), 0,
                      0),
        24};
    ifc.mtu = 1500;
    ip.interfaces.push_back(ifc);
  }
  return ip;
}

std::vector<net::PfRule> Node::make_rules() const {
  std::vector<net::PfRule> rules;
  // Synthetic filler table (Figure 5 recovers a set of 1024 rules): block
  // inbound TCP on high ports nothing uses.
  for (int k = 0; k < cfg_.pf_filler_rules; ++k) {
    net::PfRule r;
    r.action = net::PfAction::Block;
    r.dir = net::PfDir::In;
    r.protocol = net::kProtoTcp;
    r.dport = net::PortRange{static_cast<std::uint16_t>(40000 + k),
                             static_cast<std::uint16_t>(40000 + k)};
    rules.push_back(r);
  }
  // Outbound traffic keeps state so replies pass without a rule walk.
  net::PfRule keep;
  keep.action = net::PfAction::Pass;
  keep.dir = net::PfDir::Out;
  keep.keep_state = true;
  rules.push_back(keep);
  return rules;  // default action: pass
}

sim::SimCore* Node::fresh_core(const std::string& name) {
  if (cfg_.mode == StackMode::kMinixSync) {
    // One timeshared CPU for the entire system (Table II line 1).
    if (shared_core_ == nullptr)
      shared_core_ = &sim_.add_core(cfg_.name + ".cpu0");
    return shared_core_;
  }
  return &sim_.add_core(cfg_.name + "." + name);
}

void Node::build() {
  // Multi-queue RSS is a split-stack feature: a combined stack has no
  // per-shard replicas for the queues to home on.  The id encoding bounds
  // the queue count the same way it bounds the shard count.
  const int rx_queues =
      cfg_.split_stack()
          ? std::clamp(cfg_.rx_queues, 1, net::kMaxTransportShards)
          : 1;
  for (int i = 0; i < cfg_.nics; ++i) {
    drv::SimNic::Config nc;
    nc.hw_tso = true;
    nc.hw_csum = true;
    nc.rx_coalesce_frames = cfg_.rx_coalesce_frames;
    nc.rx_coalesce_usecs = cfg_.rx_coalesce_usecs;
    nc.rx_queues = rx_queues;
    nics_.push_back(std::make_unique<drv::SimNic>(
        sim_, pools_, net::MacAddr::local(g_mac_counter++), nc));
  }

  const net::IpConfig ip_cfg = make_ip_config();
  auto src_for = [ip_cfg](net::Ipv4Addr dst) {
    for (const auto& i : ip_cfg.interfaces) {
      if (i.subnet.contains(dst)) return i.addr;
    }
    return ip_cfg.interfaces.empty() ? net::Ipv4Addr{}
                                     : ip_cfg.interfaces.front().addr;
  };
  std::vector<int> ifindexes;
  for (int i = 0; i < cfg_.nics; ++i) ifindexes.push_back(i);

  servers::ReincarnationServer::Config rs_cfg;
  if (cfg_.supervision) {
    // The full escalation ladder.  Three missed probes (vs the legacy two)
    // give the slowdown rung — two consecutive LATE acks — first claim on a
    // slow-but-alive server; the wedge rung still fires when acks stop
    // entirely.  Budget: five restarts of one child inside ten seconds is a
    // crash loop — quarantine it for the rest of the window.
    rs_cfg.max_missed_probes = 3;
    rs_cfg.slo_factor = 4.0;
    // Floor sized against the probe canary (~105 us service + <=0.5 ms of
    // queueing jitter at baseline): a x64 slowdown inflates the canary to
    // ~6.7 ms, a comfortable 3x past the floor, while a healthy-but-busy
    // component stays 4x under it.
    rs_cfg.slo_floor = 2 * sim::kMillisecond;
    rs_cfg.slo_strikes = 2;
    rs_cfg.restart_budget = 5;
    rs_cfg.budget_window = 10 * sim::kSecond;
    rs_cfg.backoff_cap = 2 * sim::kSecond;
  }
  auto rs = std::make_unique<servers::ReincarnationServer>(
      &env_, fresh_core("rs"), rs_cfg);
  rs_ = rs.get();
  servers_.emplace("rs", std::move(rs));
  boot_order_.push_back("rs");

  const bool inline_drivers = cfg_.mode == StackMode::kIdealMonolithic;

  const int tcp_shards = clamp_shards(cfg_.tcp_shards, !cfg_.combined_stack());
  const int udp_shards = clamp_shards(cfg_.udp_shards, !cfg_.combined_stack());

  // Storage clients depend on the arrangement.
  std::vector<std::string> store_clients;
  if (cfg_.combined_stack()) {
    store_clients = {servers::kStackName};
  } else {
    for (int s = 0; s < tcp_shards; ++s)
      store_clients.push_back(servers::tcp_shard_name(s));
    for (int s = 0; s < udp_shards; ++s)
      store_clients.push_back(servers::udp_shard_name(s));
    store_clients.push_back(servers::kIpName);
    if (cfg_.use_pf) store_clients.push_back(servers::kPfName);
  }
  auto store = std::make_unique<servers::StorageServer>(
      &env_, fresh_core("store"), store_clients);
  store_ = store.get();
  servers_.emplace(servers::kStoreName, std::move(store));
  boot_order_.push_back(servers::kStoreName);

  const bool rss_fast = rx_queues > 1;
  if (!inline_drivers) {
    for (int i = 0; i < cfg_.nics; ++i) {
      const std::string name = servers::driver_name(i);
      const std::string ip_peer = cfg_.combined_stack()
                                      ? servers::kStackName
                                      : servers::kIpName;
      auto drv = std::make_unique<servers::DriverServer>(
          &env_, fresh_core(name), nics_[i].get(), i, ip_peer);
      if (rss_fast) drv->enable_fast_path(tcp_shards, udp_shards);
      servers_.emplace(name, std::move(drv));
      boot_order_.push_back(name);
    }
  }

  if (cfg_.combined_stack()) {
    servers::StackServer::Config sc;
    sc.ip = ip_cfg;
    sc.ifindexes = ifindexes;
    sc.rules = make_rules();
    sc.tcp = cfg_.tcp;
    sc.tcp.tso = cfg_.tso;
    sc.tcp.cc_algo = cfg_.tcp_cc;
    sc.tcp.cc_by_port = cfg_.tcp_cc_by_port;
    sc.tcp.ooo_queue_segs = cfg_.tcp_ooo_queue;
    sc.use_pf = cfg_.use_pf;
    sc.csum_offload = cfg_.csum_offload;
    sc.inline_drivers = inline_drivers;
    std::vector<drv::SimNic*> nic_ptrs;
    for (auto& n : nics_) nic_ptrs.push_back(n.get());
    auto stack = std::make_unique<servers::StackServer>(
        &env_, fresh_core("stack"), sc, nic_ptrs);
    stack_ = stack.get();
    servers_.emplace(servers::kStackName, std::move(stack));
    boot_order_.push_back(servers::kStackName);
  } else {
    if (cfg_.use_pf) {
      std::vector<std::string> transports;
      for (int s = 0; s < tcp_shards; ++s)
        transports.push_back(servers::tcp_shard_name(s));
      for (int s = 0; s < udp_shards; ++s)
        transports.push_back(servers::udp_shard_name(s));
      auto pf = std::make_unique<servers::PfServer>(
          &env_, fresh_core("pf"), make_rules(), std::move(transports));
      pf_ = pf.get();
      servers_.emplace(servers::kPfName, std::move(pf));
      boot_order_.push_back(servers::kPfName);
    }
    servers::IpServer::Config ic;
    ic.ip = ip_cfg;
    ic.ifindexes = ifindexes;
    ic.use_pf = cfg_.use_pf;
    ic.csum_offload = cfg_.csum_offload;
    ic.tcp_shards = tcp_shards;
    ic.udp_shards = udp_shards;
    ic.gro = cfg_.gro;
    ic.rx_queues = rx_queues;
    auto ip = std::make_unique<servers::IpServer>(&env_, fresh_core("ip"),
                                                  ic);
    ip_ = ip.get();
    servers_.emplace(servers::kIpName, std::move(ip));
    boot_order_.push_back(servers::kIpName);

    net::TcpOptions topts = cfg_.tcp;
    topts.tso = cfg_.tso;
    topts.cc_algo = cfg_.tcp_cc;
    topts.cc_by_port = cfg_.tcp_cc_by_port;
    topts.ooo_queue_segs = cfg_.tcp_ooo_queue;
    // Transparent TCP recovery is a split-stack feature: a combined stack
    // dies as one unit and takes its own storage/pool context with it.
    topts.checkpoint = cfg_.tcp_checkpoint;
    topts.ckpt_watermark = cfg_.tcp_ckpt_watermark;
    // The per-shard receive context the drivers post to directly when the
    // NICs run multiple RSS queues.
    net::IpFastPath::Config fpc;
    fpc.interfaces = ip_cfg.interfaces;
    fpc.use_pf = cfg_.use_pf;
    fpc.gro = cfg_.gro;
    std::vector<std::string> driver_names;
    if (rss_fast && !inline_drivers) {
      for (int i = 0; i < cfg_.nics; ++i)
        driver_names.push_back(servers::driver_name(i));
    }
    for (int s = 0; s < tcp_shards; ++s) {
      const std::string name = servers::tcp_shard_name(s);
      auto tcp = std::make_unique<servers::TcpServer>(
          &env_, fresh_core(name), topts, src_for, s, tcp_shards);
      if (!driver_names.empty()) tcp->enable_rx_fastpath(fpc, driver_names);
      tcp_shards_.push_back(tcp.get());
      servers_.emplace(name, std::move(tcp));
      boot_order_.push_back(name);
    }

    for (int s = 0; s < udp_shards; ++s) {
      const std::string name = servers::udp_shard_name(s);
      auto udp = std::make_unique<servers::UdpServer>(
          &env_, fresh_core(name), src_for, s, udp_shards);
      if (!driver_names.empty()) udp->enable_rx_fastpath(fpc, driver_names);
      udp_shards_.push_back(udp.get());
      servers_.emplace(name, std::move(udp));
      boot_order_.push_back(name);
    }
  }

  if (cfg_.has_syscall_server()) {
    std::vector<std::string> tcp_targets;
    std::vector<std::string> udp_targets;
    if (cfg_.combined_stack()) {
      tcp_targets = {servers::kStackName};
      udp_targets = {servers::kStackName};
    } else {
      for (int s = 0; s < tcp_shards; ++s)
        tcp_targets.push_back(servers::tcp_shard_name(s));
      for (int s = 0; s < udp_shards; ++s)
        udp_targets.push_back(servers::udp_shard_name(s));
    }
    auto sys = std::make_unique<servers::SyscallServer>(
        &env_, fresh_core("syscall"), std::move(tcp_targets),
        std::move(udp_targets));
    syscall_ = sys.get();
    servers_.emplace(servers::kSyscallName, std::move(sys));
    boot_order_.push_back(servers::kSyscallName);
  }

  for (auto& [name, srv] : servers_) {
    if (srv.get() != rs_) rs_->manage(srv.get());
  }

  // End-to-end work probes target the transport replicas (the component the
  // paper had to restart manually when it wedged silently).  Supervision
  // widens the coverage to every component class — tcp/udp/ip/pf/drv — so
  // the whole escalation ladder has a per-component probe stream.
  if ((cfg_.work_probes || cfg_.supervision) && !cfg_.combined_stack()) {
    std::vector<std::string> targets;
    for (int s = 0; s < tcp_shards; ++s)
      targets.push_back(servers::tcp_shard_name(s));
    if (cfg_.supervision) {
      for (int s = 0; s < udp_shards; ++s)
        targets.push_back(servers::udp_shard_name(s));
      targets.push_back(servers::kIpName);
      if (cfg_.use_pf) targets.push_back(servers::kPfName);
      if (!inline_drivers) {
        for (int i = 0; i < cfg_.nics; ++i)
          targets.push_back(servers::driver_name(i));
      }
    }
    rs_->set_probe_targets(std::move(targets));
  }
}

void Node::attach_wire(int nic_index, drv::Wire* wire, int end) {
  nics_.at(nic_index)->attach_wire(wire, end);
}

void Node::boot() {
  for (const auto& name : boot_order_) servers_[name]->boot(false);
}

AppActor* Node::add_app(const std::string& name) {
  auto app = std::make_unique<AppActor>(&env_, name, fresh_core(name));
  AppActor* p = app.get();
  p->attach_ring(std::make_unique<SocketRing>(*this, *p));
  p->set_borrower_id(next_borrower_++);
  apps_.push_back(std::move(app));
  p->boot(false);
  return p;
}

std::uint64_t Node::publish_channel_stats() {
  std::uint64_t total = 0;
  for (const auto& [name, q] : queues_) {
    const std::uint64_t failures = q->send_failures();
    if (failures > 0) {
      stats_.set("chan." + name + ".send_failures", failures);
    }
    total += failures;
  }
  stats_.set("chan.send_failures", total);
  // The drop/defer policy's other blind spot: frames the drivers had to
  // drop because IP's queue was full.  Counted per driver and in total.
  std::uint64_t rx_dropped = 0;
  std::uint64_t rx_fast = 0;
  std::map<int, std::array<std::uint64_t, 4>> per_queue;
  int max_queues = 1;
  for (const auto& [name, srv] : servers_) {
    auto* drv = dynamic_cast<servers::DriverServer*>(srv.get());
    if (drv == nullptr) continue;
    if (drv->rx_dropped() > 0) {
      stats_.set(name + ".rx_dropped", drv->rx_dropped());
    }
    rx_dropped += drv->rx_dropped();
    rx_fast += drv->rx_fast_frames();
    // Per-queue RSS counters, aggregated across the NICs: queue q of every
    // NIC homes on the same transport shard, so the per-queue totals are
    // the per-shard receive load.
    max_queues = std::max(max_queues, drv->nic().rx_queue_count());
    for (int q = 0; q < drv->nic().rx_queue_count(); ++q) {
      const auto& qs = drv->nic().queue_stats(q);
      auto& agg = per_queue[q];
      agg[0] += qs.rx_frames;
      agg[1] += qs.rx_bursts;
      agg[2] += qs.rx_timer_flushes;
      agg[3] += drv->rx_dropped_queue(q);
    }
  }
  stats_.set("drv.rx_dropped", rx_dropped);
  if (max_queues > 1) {
    stats_.set("drv.rx_fast_frames", rx_fast);
    for (const auto& [q, agg] : per_queue) {
      const std::string prefix = "drv.q" + std::to_string(q) + ".";
      stats_.set(prefix + "rx_frames", agg[0]);
      stats_.set(prefix + "rx_bursts", agg[1]);
      stats_.set(prefix + "rx_timer_flushes", agg[2]);
      stats_.set(prefix + "rx_dropped", agg[3]);
    }
    // The receiving half of the same picture: frames each shard's fast
    // path consumed locally vs handed back to the classic IP path.
    for (const auto* tcp : tcp_shards_) {
      if (tcp->fastpath() == nullptr) continue;
      stats_.set(tcp->name() + ".rx_fast_frames",
                 tcp->fastpath()->stats().fast_frames);
      stats_.set(tcp->name() + ".rx_fallback_frames",
                 tcp->fastpath()->stats().fallback_frames);
    }
    for (const auto* udp : udp_shards_) {
      if (udp->fastpath() == nullptr) continue;
      stats_.set(udp->name() + ".rx_fast_frames",
                 udp->fastpath()->stats().fast_frames);
      stats_.set(udp->name() + ".rx_fallback_frames",
                 udp->fastpath()->stats().fallback_frames);
    }
  }
  // Connection-checkpoint overhead (0 with tcp_checkpoint off): journal
  // puts to the storage server and the bytes they carried.
  std::uint64_t ckpt_puts = 0;
  std::uint64_t ckpt_bytes = 0;
  for (const auto* tcp : tcp_shards_) {
    if (tcp->ckpt_puts() > 0) {
      stats_.set(tcp->name() + ".ckpt_puts", tcp->ckpt_puts());
    }
    ckpt_puts += tcp->ckpt_puts();
    ckpt_bytes += tcp->ckpt_bytes();
  }
  stats_.set("tcp.ckpt_puts", ckpt_puts);
  stats_.set("tcp.ckpt_bytes", ckpt_bytes);
  // Checkpoint overflow events: per-connection ring overflows (those still
  // degrade to non-recoverable) plus directory continuation-page spills
  // (handled by chained paging; the count proves the paging engaged).
  std::uint64_t ckpt_overflow = 0;
  for (const auto* tcp : tcp_shards_) ckpt_overflow += tcp->ckpt_overflows();
  stats_.set("tcp.ckpt_overflow", ckpt_overflow);
  // Supervision-plane observability: what the escalation ladder actually
  // did.  Published whenever the reincarnation server saw any action, so a
  // campaign can assert them non-zero.
  if (rs_ != nullptr) {
    for (const auto& [comp, cs] : rs_->child_stats()) {
      if (cs.restarts > 0) {
        stats_.set("rein.restarts." + comp, cs.restarts);
      }
      if (cs.detect_ms >= 0.0) {
        stats_.set("rein.detect_ms." + comp,
                   static_cast<std::uint64_t>(cs.detect_ms));
      }
    }
    stats_.set("rein.backoff_ms", rs_->backoff_ms_total());
  }
  std::uint64_t wedge_resets = 0;
  for (const auto& [name, srv] : servers_) {
    auto* drv = dynamic_cast<servers::DriverServer*>(srv.get());
    if (drv != nullptr) wedge_resets += drv->wedge_resets();
  }
  stats_.set("drv.wedge_resets", wedge_resets);
  // Congestion-control observability, aggregated across the transport
  // replicas: recovery entries, the instantaneous cwnd total, and how often
  // the pacing timer had to hold the TX path back (non-zero only with a
  // rate-based algorithm).
  std::uint64_t cc_fast_retx = 0;
  std::uint64_t cc_cwnd_now = 0;
  std::uint64_t cc_pacing_delays = 0;
  for (int s = 0; s < tcp_shard_count(); ++s) {
    const net::TcpEngine* eng = tcp_engine(s);
    if (eng == nullptr) continue;
    cc_fast_retx += eng->stats().fast_retransmits;
    cc_cwnd_now += eng->cwnd_sum();
    cc_pacing_delays += eng->stats().pacing_delays;
  }
  stats_.set("tcp.cc.fast_retransmits", cc_fast_retx);
  stats_.set("tcp.cc.cwnd_now", cc_cwnd_now);
  stats_.set("tcp.cc.pacing_delays", cc_pacing_delays);
  // Wire-level WAN emulation counters (0 on a plain LAN wire).
  std::uint64_t wire_queue_drops = 0;
  std::uint64_t wire_reordered = 0;
  for (const auto& nic : nics_) {
    const drv::Wire* w = nic->wire();
    if (w == nullptr) continue;
    wire_queue_drops += w->queue_drops();
    wire_reordered += w->reordered();
  }
  stats_.set("wire.queue_drops", wire_queue_drops);
  stats_.set("wire.reordered", wire_reordered);
  return total;
}

std::uint64_t Node::total_channel_messages() const {
  std::uint64_t total = 0;
  for (const auto& [name, q] : queues_) total += q->sends();
  return total;
}

servers::Server* Node::server(const std::string& name) {
  auto it = servers_.find(name);
  return it == servers_.end() ? nullptr : it->second.get();
}

net::TcpEngine* Node::tcp_engine(int shard) const {
  if (stack_ != nullptr) return shard == 0 ? stack_->tcp_engine() : nullptr;
  if (shard < 0 || shard >= static_cast<int>(tcp_shards_.size()))
    return nullptr;
  return tcp_shards_[shard]->engine();
}

net::UdpEngine* Node::udp_engine(int shard) const {
  if (stack_ != nullptr) return shard == 0 ? stack_->udp_engine() : nullptr;
  if (shard < 0 || shard >= static_cast<int>(udp_shards_.size()))
    return nullptr;
  return udp_shards_[shard]->engine();
}

int Node::tcp_shard_count() const {
  return stack_ != nullptr ? 1
                           : std::max<int>(1, static_cast<int>(
                                                  tcp_shards_.size()));
}

int Node::udp_shard_count() const {
  return stack_ != nullptr ? 1
                           : std::max<int>(1, static_cast<int>(
                                                  udp_shards_.size()));
}

servers::Server* Node::transport_server(char proto, int shard) const {
  if (stack_ != nullptr) return stack_;
  if (proto == 'T') {
    if (shard < 0 || shard >= static_cast<int>(tcp_shards_.size()))
      return nullptr;
    return tcp_shards_[shard];
  }
  if (shard < 0 || shard >= static_cast<int>(udp_shards_.size()))
    return nullptr;
  return udp_shards_[shard];
}

net::IpEngine* Node::ip_engine() const {
  if (stack_ != nullptr) return stack_->ip_engine();
  return ip_ != nullptr ? ip_->engine() : nullptr;
}

std::vector<std::string> Node::injectable() const {
  std::vector<std::string> out;
  if (cfg_.combined_stack()) {
    out.push_back(servers::kStackName);
  } else {
    for (std::size_t s = 0; s < tcp_shards_.size(); ++s)
      out.push_back(servers::tcp_shard_name(static_cast<int>(s)));
    for (std::size_t s = 0; s < udp_shards_.size(); ++s)
      out.push_back(servers::udp_shard_name(static_cast<int>(s)));
    out.push_back(servers::kIpName);
    if (cfg_.use_pf) out.push_back(servers::kPfName);
  }
  for (int i = 0; i < cfg_.nics; ++i) {
    if (cfg_.mode != StackMode::kIdealMonolithic)
      out.push_back(servers::driver_name(i));
  }
  return out;
}

void Node::manual_restart(const std::string& name) {
  servers::Server* s = server(name);
  if (s == nullptr) return;
  stats_.log(sim_.now(), "manual restart: " + name);
  if (s->alive()) s->kill();  // reincarnation brings it back
}

}  // namespace newtos
