// Workload applications: the traffic the paper's evaluation runs.
//
//  - BulkSender/BulkReceiver: the iperf pair of Table II and Figures 4/5.
//  - EchoServer/EchoClient:   the OpenSSH stand-in of the fault campaign
//                             ("after each crash we tested whether the
//                             active ssh connections kept working ...").
//  - DnsClient/DnsServer:     the periodic UDP DNS queries of the campaign.
//
// All are event-driven actors over the object socket API (TcpSocket /
// UdpSocket / TcpListener): every control op they issue inside one handler
// turn rides a single submission-ring flush — BulkSender's in-flight
// writes, EchoServer's echo replies, DnsServer's responses all batch for
// free.  They publish their results through the node's StatsHub.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/socket.h"

namespace newtos {
class Node;
}

namespace newtos::apps {

class BulkSender {
 public:
  struct Config {
    net::Ipv4Addr dst;
    std::uint16_t port = 5001;
    std::uint32_t write_size = 8192;
    int max_outstanding = 8;  // in-flight write() calls
    std::string prefix = "iperf_tx";
  };

  BulkSender(Node& node, AppActor* app, Config cfg);
  void start();

  int outstanding() const { return outstanding_; }
  bool connected() const { return connected_; }

 private:
  void open_and_connect(sim::Context& ctx);
  void pump(sim::Context& ctx);
  void on_event(net::TcpEvent ev);

  Node& node_;
  AppActor* app_;
  Config cfg_;
  std::unique_ptr<TcpSocket> sock_;
  bool connected_ = false;
  int outstanding_ = 0;
  bool retry_scheduled_ = false;
};

class BulkReceiver {
 public:
  struct Config {
    std::uint16_t port = 5001;
    std::string prefix = "iperf_rx";
    sim::Time sample_interval = 100 * sim::kMillisecond;
    bool record_series = true;  // "<prefix>.mbps" time series (Figures 4/5)
  };

  BulkReceiver(Node& node, AppActor* app, Config cfg);
  void start();

  std::uint64_t bytes() const { return bytes_; }

 private:
  void on_listener_event(net::TcpEvent ev);
  void drain(TcpSocket& sock);
  void remove_conn(TcpSocket* sock);
  void sample();

  Node& node_;
  AppActor* app_;
  Config cfg_;
  std::unique_ptr<TcpListener> listener_;
  std::vector<std::unique_ptr<TcpSocket>> conns_;
  std::uint64_t bytes_ = 0;
  std::uint64_t last_sample_bytes_ = 0;
};

class EchoServer {
 public:
  struct Config {
    std::uint16_t port = 22;
    std::string prefix = "echo_srv";
  };

  EchoServer(Node& node, AppActor* app, Config cfg);
  void start();

 private:
  void on_listener_event(net::TcpEvent ev);
  void serve(TcpSocket& sock);
  void remove_conn(TcpSocket* sock);

  Node& node_;
  AppActor* app_;
  Config cfg_;
  std::unique_ptr<TcpListener> listener_;
  std::vector<std::unique_ptr<TcpSocket>> conns_;
};

class EchoClient {
 public:
  struct Config {
    net::Ipv4Addr dst;
    std::uint16_t port = 22;
    sim::Time interval = 100 * sim::kMillisecond;
    sim::Time timeout = 1 * sim::kSecond;
    sim::Time reconnect_backoff = 250 * sim::kMillisecond;
    std::string prefix = "echo";
  };

  EchoClient(Node& node, AppActor* app, Config cfg);
  void start();

  // Health observations for the fault campaign.
  std::uint64_t ok() const { return ok_; }
  std::uint64_t timeouts() const { return timeouts_; }
  std::uint64_t resets() const { return resets_; }
  std::uint64_t reconnects() const { return reconnects_; }
  bool connected() const { return connected_; }

 private:
  void connect_now(sim::Context& ctx);
  void tick(sim::Context& ctx);
  void on_event(net::TcpEvent ev);

  Node& node_;
  AppActor* app_;
  Config cfg_;
  std::unique_ptr<TcpSocket> sock_;
  bool connected_ = false;
  bool awaiting_reply_ = false;
  std::uint64_t seq_sent_ = 0;
  std::uint64_t seq_answered_ = 0;
  std::uint64_t ok_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t resets_ = 0;
  std::uint64_t reconnects_ = 0;
};

class DnsServer {
 public:
  explicit DnsServer(Node& node, AppActor* app, std::uint16_t port = 53);
  void start();

 private:
  Node& node_;
  AppActor* app_;
  std::uint16_t port_;
  std::unique_ptr<UdpSocket> sock_;
};

class DnsClient {
 public:
  struct Config {
    net::Ipv4Addr dst;
    std::uint16_t port = 53;
    sim::Time interval = 200 * sim::kMillisecond;
    std::string prefix = "dns";
  };

  DnsClient(Node& node, AppActor* app, Config cfg);
  void start();

  std::uint64_t sent() const { return sent_; }
  std::uint64_t answered() const { return answered_; }

 private:
  void tick(sim::Context& ctx);

  Node& node_;
  AppActor* app_;
  Config cfg_;
  std::unique_ptr<UdpSocket> sock_;
  bool ready_ = false;
  std::uint64_t sent_ = 0;
  std::uint64_t answered_ = 0;
};

}  // namespace newtos::apps
