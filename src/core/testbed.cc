#include "src/core/testbed.h"

#include <cstdio>
#include <cstdlib>

namespace newtos {

namespace {

// The teardown assertion of the chunk-lending API: every loan a pool
// handed to an application (borrowed view, send reservation) must have
// been returned by the time the testbed dies.  A refcount bug in the
// lending paths fails loudly here, in every existing test.
void check_loan_leaks(Node& node) {
  bool leaked = false;
  for (chan::Pool* pool : node.pools().all()) {
    // Loans held by transport replicas cover kL4RxAgg messages still in
    // flight — legitimate whenever the simulation stops mid-run.  Return
    // them (the modelled orderly quiesce) so the check below sees only
    // application loans, which must balance.
    for (int s = 0; s < net::kMaxTransportShards; ++s) {
      pool->reclaim(servers::transport_borrower('T', s));
      pool->reclaim(servers::transport_borrower('U', s));
    }
    // Connection-checkpoint loans are the same story: a run that stops with
    // live checkpointed connections (or a parked crash that never restored)
    // legitimately has queue chunks and pages on the ledger.  Reclaiming a
    // loan whose reference an engine destructor will also drop is safe:
    // the later release finds the chunk already freed and no-ops (nothing
    // allocates between here and node teardown).
    for (std::uint32_t b : pool->borrowers()) {
      if (servers::is_ckpt_borrower(b)) pool->reclaim(b);
    }
  }
  for (chan::Pool* pool : node.pools().all()) {
    const std::size_t loans = pool->borrows_outstanding();
    if (loans == 0) continue;
    leaked = true;
    std::fprintf(stderr,
                 "chunk-lending leak: pool \"%s\" still has %zu chunk(s) "
                 "on loan at Testbed teardown\n",
                 pool->name().c_str(), loans);
  }
  if (leaked) std::abort();
}

}  // namespace

Testbed::Testbed(const TestbedOptions& opts) {
  NodeConfig left;
  left.name = "newtos";
  left.mode = opts.mode;
  left.nics = opts.nics;
  left.wire_gbps = opts.gbps;
  left.tso = opts.tso;
  left.csum_offload = opts.csum_offload;
  left.use_pf = opts.use_pf;
  left.pf_filler_rules = opts.pf_filler_rules;
  left.app_write_size = opts.app_write_size;
  left.cost_scale = opts.cost_scale;
  left.tcp_shards = opts.tcp_shards;
  left.udp_shards = opts.udp_shards;
  left.rx_coalesce_frames = opts.rx_coalesce_frames;
  left.rx_coalesce_usecs = opts.rx_coalesce_usecs;
  left.gro = opts.gro;
  left.rx_queues = opts.rx_queues;
  left.tcp_checkpoint = opts.tcp_checkpoint;
  left.tcp_ckpt_watermark = opts.tcp_ckpt_watermark;
  left.work_probes = opts.work_probes;
  left.supervision = opts.supervision;
  left.tcp_cc = opts.tcp_cc;
  left.tcp_cc_by_port = opts.tcp_cc_by_port;
  left.tcp_ooo_queue = opts.tcp_ooo_queue;
  left.tcp.ssthresh_init = opts.tcp_ssthresh_init;
  if (opts.tcp_buf_bytes > 0) {
    left.tcp.sndbuf_max = opts.tcp_buf_bytes;
    left.tcp.rcvbuf_max = opts.tcp_buf_bytes;
  }
  left.left = true;

  NodeConfig right;
  right.name = "peer";
  right.mode = StackMode::kIdealMonolithic;
  right.nics = opts.nics;
  right.wire_gbps = opts.gbps;
  right.tso = true;  // the peer is never the bottleneck
  right.csum_offload = true;
  right.use_pf = false;
  right.cost_scale = 0.1;
  // The peer is usually the data receiver: it needs the same reassembly
  // budget or a reordering wire would still look like loss to the sender.
  right.tcp_ooo_queue = opts.tcp_ooo_queue;
  right.tcp.ssthresh_init = opts.tcp_ssthresh_init;
  if (opts.tcp_buf_bytes > 0) {
    right.tcp.sndbuf_max = opts.tcp_buf_bytes;
    right.tcp.rcvbuf_max = opts.tcp_buf_bytes;
  }
  right.left = false;

  left_ = std::make_unique<Node>(sim_, left);
  right_ = std::make_unique<Node>(sim_, right);

  for (int i = 0; i < opts.nics; ++i) {
    drv::Wire::Config wc;
    wc.bits_per_sec = opts.gbps * 1e9;
    wc.propagation = opts.wire_latency;
    wc.loss = opts.loss;
    wc.seed = opts.seed + static_cast<std::uint64_t>(i);
    wc.bottleneck_bits_per_sec = opts.wire_bottleneck_gbps * 1e9;
    wc.queue_frames = opts.wire_queue_frames;
    wc.reorder = opts.wire_reorder;
    wc.reorder_delay = opts.wire_reorder_delay;
    wc.loss_post_queue = opts.wire_loss_post_queue;
    wires_.push_back(std::make_unique<drv::Wire>(sim_, wc));
    left_->attach_wire(i, wires_.back().get(), 0);
    right_->attach_wire(i, wires_.back().get(), 1);
  }

  left_->boot();
  right_->boot();
}

Testbed::~Testbed() {
  check_loan_leaks(*left_);
  check_loan_leaks(*right_);
}

}  // namespace newtos
