#include "src/servers/storage.h"

#include <utility>

namespace newtos::servers {

StorageServer::StorageServer(NodeEnv* env, sim::SimCore* core,
                             std::vector<std::string> clients)
    : Server(env, kStoreName, core), clients_(std::move(clients)) {}

void StorageServer::start(bool restart) {
  pool_ = env().get_pool("store.values", 8u << 20);
  for (const auto& c : clients_) {
    expose_in_queue(c);
    connect_out(c);
  }
  announce(restart);
}

void StorageServer::on_killed() {
  // Process state dies with the process: peers must re-store everything.
  values_.clear();
}

void StorageServer::on_message(const std::string& from,
                               const chan::Message& m, sim::Context& ctx) {
  switch (m.opcode) {
    case kStorePut: {
      ++puts_;
      auto bytes = env().pools->read(m.ptr);
      charge(ctx, sim().costs().copy_cost(
                      static_cast<std::int64_t>(bytes.size())) +
                      300);
      values_[{from, static_cast<std::uint32_t>(m.arg0)}]
          .assign(bytes.begin(), bytes.end());
      chan::Message ack;
      ack.opcode = kStoreAck;
      ack.req_id = m.req_id;
      ack.ptr = m.ptr;  // requester may now free its chunk
      send_to(from, ack, ctx);
      return;
    }
    case kStoreGet: {
      ++gets_;
      chan::Message reply;
      reply.opcode = kStoreReply;
      reply.req_id = m.req_id;
      auto it = values_.find({from, static_cast<std::uint32_t>(m.arg0)});
      if (it == values_.end() || it->second.empty()) {
        reply.arg0 = 0;
      } else {
        chan::RichPtr out =
            pool_->alloc(static_cast<std::uint32_t>(it->second.size()));
        if (!out.valid()) {
          reply.arg0 = 0;  // pool exhausted: treated as missing state
        } else {
          auto view = pool_->write_view(out);
          std::copy(it->second.begin(), it->second.end(), view.begin());
          charge(ctx, sim().costs().copy_cost(
                          static_cast<std::int64_t>(it->second.size())) +
                          300);
          reply.arg0 = 1;
          reply.ptr = out;
        }
      }
      send_to(from, reply, ctx);
      return;
    }
    case kStoreRelease:
      pool_->release(m.ptr);
      return;
    default:
      return;  // unknown opcode: ignore (Section IV-A: validate requests)
  }
}

}  // namespace newtos::servers
