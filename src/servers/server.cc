#include "src/servers/server.h"

#include <cstdio>
#include <cstdlib>

#include <cassert>
#include <utility>

namespace newtos::servers {

Server::Server(NodeEnv* env, std::string name, sim::SimCore* core)
    : env_(env), name_(std::move(name)), core_(core) {}

Server::~Server() = default;

sim::Time Server::ClockAdapter::now() const { return s_->sim().now(); }

net::TimerService::TimerId Server::TimerAdapter::schedule(
    sim::Time delay, std::function<void()> fn) {
  Server* s = s_;
  const std::uint32_t inc = s->incarnation_;
  return s->sim().after(delay, [s, inc, fn = std::move(fn)] {
    // Timers die with the incarnation that armed them.
    if (!s->alive_ || s->hung_ || inc != s->incarnation_) return;
    s->post_control([fn](sim::Context&) { fn(); }, 150);
  });
}

void Server::TimerAdapter::cancel(TimerId id) { s_->sim().cancel(id); }

void Server::charge(sim::Context& ctx, sim::Cycles c) const {
  ctx.charge(static_cast<sim::Cycles>(static_cast<double>(c) *
                                      env_->knobs.cost_scale * slowdown_));
}

// --- lifecycle -----------------------------------------------------------------------

void Server::boot(bool restart) {
  assert(!alive_);
  alive_ = true;
  hung_ = false;
  announced_ = false;
  sleeping_ = true;
  pump_scheduled_ = false;
  slowdown_ = 1.0;
  drop_work_ = false;
  ++incarnation_;
  start(restart);
}

void Server::kill() {
  if (!alive_) return;
  alive_ = false;
  hung_ = false;
  on_killed();
  // The process is gone: its subscriptions, publications and pending work
  // evaporate.  Queues are node-owned and merely reset.
  for (auto id : subs_) env_->registry->unsubscribe(id);
  subs_.clear();
  for (auto& key : published_keys_) env_->registry->unpublish(key);
  published_keys_.clear();
  env_->channels->revoke_all(name_);
  for (auto& in : in_queues_) in.queue->reset();
  in_queues_.clear();
  outs_.clear();
  control_.clear();
  rdb_ = chan::RequestDb{};
  if (env_->report_crash) env_->report_crash(this);
}

void Server::hang() { hung_ = true; }

void Server::post_heartbeat(std::function<void()> ack) {
  if (!alive_ || hung_) return;  // a dead or wedged server cannot answer
  post_control([ack = std::move(ack)](sim::Context&) { ack(); }, 120);
}

void Server::post_kernel_msg(std::function<void(sim::Context&)> fn,
                             sim::Cycles extra_cost) {
  if (!alive_) return;
  const sim::Cycles cost = env_->kernel->receive(sizeof(chan::Message)) +
                           extra_cost;
  control_.emplace_back(std::move(fn), cost);
  wake();
}

void Server::post_control(std::function<void(sim::Context&)> fn,
                          sim::Cycles cost) {
  if (!alive_) return;
  control_.emplace_back(std::move(fn), cost);
  wake();
}

void Server::on_peer_up(const std::string&, bool, sim::Context&) {}
void Server::on_peer_down(const std::string&, sim::Context&) {}

// --- channel plumbing -----------------------------------------------------------------

chan::Queue* Server::expose_in_queue(const std::string& from,
                                     std::size_t capacity) {
  const std::string qname = from + ">" + name_;
  chan::Queue* q = env_->get_queue(qname, capacity);
  q->reset();
  q->doorbell().arm([this] { wake(); });
  in_queues_.push_back(InQueue{from, q});
  // Export to the producer and publish the credential; the producer's
  // subscription to "chan.<qname>" fires and it attaches (Section IV-C).
  const auto cred = env_->channels->export_queue(name_, from, q);
  const std::string key = "chan." + qname;
  env_->registry->publish(key, chan::Published{name_, cred});
  published_keys_.push_back(key);
  return q;
}

void Server::connect_out(const std::string& peer) {
  if (outs_.count(peer)) return;
  outs_[peer] = OutPeer{};
  // Attach to the peer's in-queue for us when it (re)appears.
  subs_.push_back(env_->registry->subscribe(
      "chan." + name_ + ">" + peer,
      [this, peer](const std::string&, const chan::Published& pub, bool up,
                   bool /*replay*/) {
        if (!alive_) return;
        if (up) {
          chan::Queue* q = env_->channels->attach(name_, pub.value);
          outs_[peer].queue = q;
        } else {
          outs_[peer].queue = nullptr;
        }
      }));
  // Track the peer's lifecycle announcements.
  subs_.push_back(env_->registry->subscribe(
      "server." + peer + ".up",
      [this, peer](const std::string&, const chan::Published& pub, bool up,
                   bool replay) {
        if (!alive_) return;
        // A replayed announcement is not a live restart transition: recovery
        // actions (state re-store, resubmission) must not fire from it.
        const bool restarted = pub.value != 0 && !replay;
        outs_[peer].up = up;
        post_control(
            [this, peer, up, restarted](sim::Context& ctx) {
              if (up) {
                on_peer_up(peer, restarted, ctx);
              } else {
                on_peer_down(peer, ctx);
              }
            },
            200);
      }));
}

bool Server::peer_ready(const std::string& peer) const {
  auto it = outs_.find(peer);
  return it != outs_.end() && it->second.up && it->second.queue != nullptr;
}

bool Server::send_to(const std::string& peer, const chan::Message& m,
                     sim::Context& ctx) {
  // Gate on the attached queue only, not on the peer's "up" announcement: a
  // restarting server must be able to talk to the storage server (and
  // receive its reply) *before* it announces itself recovered.
  auto it = outs_.find(peer);
  if (it == outs_.end() || it->second.queue == nullptr) return false;
  if (env_->knobs.ipc == IpcMode::kKernelSync) {
    // Classic path: trap into the kernel, copy, context switch (Table II
    // line 1 runs everything on one core, so the switch is real).
    charge(ctx, env_->kernel->sync_send_same_core(sizeof m));
  } else {
    charge(ctx, sim().costs().channel_enqueue);
  }
  return it->second.queue->try_send(m);
}

void Server::send_to_all(const std::vector<std::string>& peers,
                         const chan::Message& m, sim::Context& ctx) {
  for (const auto& peer : peers) send_to(peer, m, ctx);
}

void Server::reply_after_charges(std::function<void(sim::Context&)> fn) {
  core_->exec(sim().now(),
              [this, inc = incarnation_, fn = std::move(fn)](sim::Context& c) {
                if (!alive_ || hung_ || inc != incarnation_) return;
                fn(c);
              });
}

void Server::announce(bool restarted) {
  announced_ = true;
  const std::string key = "server." + name_ + ".up";
  env_->registry->publish(key,
                          chan::Published{name_, restarted ? 1ull : 0ull});
  published_keys_.push_back(key);
}

// --- event pump ------------------------------------------------------------------------

void Server::wake() {
  if (!alive_ || hung_ || pump_scheduled_) return;
  pump_scheduled_ = true;
  core_->exec(sim().now(), [this, inc = incarnation_](sim::Context& ctx) {
    if (!alive_ || hung_ || inc != incarnation_) {
      pump_scheduled_ = false;
      return;
    }
    pump(ctx);
  });
}

namespace {
const bool g_trace = std::getenv("NEWTOS_TRACE") != nullptr;
}  // namespace

void Server::pump(sim::Context& ctx) {
  if (g_trace)
    std::fprintf(stderr, "[%.6f] pump %s/%s\n", sim().now() / 1e9,
                 env_->node_name.c_str(), name_.c_str());
  const auto& costs = sim().costs();
  if (sleeping_) {
    // The kernel restores our user context after MWAIT (Section IV-B).
    charge(ctx, costs.mwait_wakeup);
    sleeping_ = false;
    ++wakeups_;
  }

  current_ctx_ = &ctx;
  int handled = 0;
  while (handled < kBatch) {
    if (!control_.empty()) {
      auto [fn, cost] = std::move(control_.front());
      control_.pop_front();
      charge(ctx, cost);
      fn(ctx);
      ++handled;
      ++messages_handled_;
      if (!alive_ || hung_) {
        current_ctx_ = nullptr;
        pump_scheduled_ = false;
        return;
      }
      continue;
    }
    bool got = false;
    bool died = false;
    for (std::size_t i = 0; i < in_queues_.size(); ++i) {
      chan::Message m;
      if (!in_queues_[i].queue->try_recv(m)) continue;
      if (env_->knobs.ipc == IpcMode::kKernelSync) {
        charge(ctx, env_->kernel->receive(sizeof m) + costs.context_switch);
      } else {
        charge(ctx, costs.channel_dequeue + costs.cache_line_pull);
      }
      // By reference: in_queues_ only mutates in start() (boot-time) and
      // kill() (never self-invoked from a handler), so the name outlives
      // the on_message call — no per-message heap churn.
      const std::string& from = in_queues_[i].from;
      if (g_trace)
        std::fprintf(stderr, "[%.6f]   msg %s->%s op=%u\n", sim().now() / 1e9,
                     from.c_str(), name_.c_str(), m.opcode);
      if (!drop_work_) on_message(from, m, ctx);
      ++handled;
      ++messages_handled_;
      got = true;
      if (!alive_ || hung_) {  // killed ourselves while handling a message
        died = true;
        break;
      }
      if (handled >= kBatch) break;
    }
    if (died) {
      current_ctx_ = nullptr;
      pump_scheduled_ = false;
      return;
    }
    if (!got) break;
  }
  current_ctx_ = nullptr;

  // More work pending?  Yield the core briefly (other events interleave) and
  // continue; otherwise arm the doorbells and halt the core.
  bool pending = !control_.empty();
  for (auto& in : in_queues_) pending = pending || !in.queue->empty();
  if (pending) {
    core_->exec(sim().now(), [this, inc = incarnation_](sim::Context& c2) {
      if (!alive_ || hung_ || inc != incarnation_) {
        pump_scheduled_ = false;
        return;
      }
      pump(c2);
    });
  } else {
    enter_idle(ctx);
  }
}

void Server::enter_idle(sim::Context& ctx) {
  pump_scheduled_ = false;
  for (auto& in : in_queues_) in.queue->doorbell().arm([this] { wake(); });
  // Entering kernel-assisted MWAIT costs a trap.
  charge(ctx, env_->kernel->mwait_enter());
  sleeping_ = true;

  // Re-check: a message may have raced in between our last scan and arming
  // the doorbells (the classic sleep/wakeup race, resolved by MONITOR
  // semantics: re-inspect after arming).
  bool pending = !control_.empty();
  for (auto& in : in_queues_) pending = pending || !in.queue->empty();
  if (pending) wake();
}

}  // namespace newtos::servers
