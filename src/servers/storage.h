// The storage server (Section V-D): a process dedicated to keeping the
// interesting state of other components as key/value pairs, so they can be
// restarted transparently.
//
// Values are namespaced by the storing server's name (which the channel
// identifies — a server cannot forge another's state).  The store itself is
// process state: if the storage server crashes, it comes back empty and
// every other server has to store its state again (they watch for our
// restart announcement).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/servers/proto.h"
#include "src/servers/server.h"

namespace newtos::servers {

class StorageServer : public Server {
 public:
  // `clients` are the servers allowed to store state (in-queues are exposed
  // to each of them at boot).
  StorageServer(NodeEnv* env, sim::SimCore* core,
                std::vector<std::string> clients);

  std::size_t entries() const { return values_.size(); }
  std::uint64_t puts() const { return puts_; }
  std::uint64_t gets() const { return gets_; }

 protected:
  void start(bool restart) override;
  void on_message(const std::string& from, const chan::Message& m,
                  sim::Context& ctx) override;
  void on_killed() override;

 private:
  std::vector<std::string> clients_;
  chan::Pool* pool_ = nullptr;  // replies are handed out of this pool
  std::map<std::pair<std::string, std::uint32_t>, std::vector<std::byte>>
      values_;
  std::uint64_t puts_ = 0;
  std::uint64_t gets_ = 0;
};

}  // namespace newtos::servers
