#include "src/servers/driver_server.h"

#include <algorithm>
#include <span>

#include "src/net/headers.h"
#include "src/net/pbuf.h"

namespace newtos::servers {

void DriverServer::forward_rx_frame(const chan::RichPtr& buf,
                                    std::uint32_t len, sim::Context& ctx,
                                    int queue) {
  chan::Message m;
  m.opcode = kDrvRx;
  m.ptr = buf;
  m.ptr.length = len;  // actual frame length within the buffer
  ++rx_msgs_;
  if (!send_to(ip_name_, m, ctx)) {
    // IP is down or its queue is full: the frame is dropped; the buffer
    // itself belongs to IP's pool and will be recovered when IP reposts
    // buffers.  Not silent any more: the drop is counted and surfaced
    // through Node::publish_channel_stats.
    ++rx_dropped_;
    if (queue < static_cast<int>(rx_dropped_q_.size())) ++rx_dropped_q_[queue];
  }
}

DriverServer::DriverServer(NodeEnv* env, sim::SimCore* core, drv::SimNic* nic,
                           int ifindex, std::string ip_name)
    : Server(env, driver_name(ifindex), core),
      nic_(nic),
      ifindex_(ifindex),
      ip_name_(std::move(ip_name)) {
  rx_dropped_q_.resize(nic_->rx_queue_count(), 0);
}

void DriverServer::enable_fast_path(int tcp_shards, int udp_shards) {
  fast_path_ = true;
  tcp_shards_ = std::max(1, tcp_shards);
  udp_shards_ = std::max(1, udp_shards);
}

std::string DriverServer::fast_target(const drv::SimNic::RxCompletion& c,
                                      int queue) const {
  if (!fast_path_ || !c.steerable) return {};
  // A frame goes fast only when its home shard IS the queue's shard: the
  // NIC hash and steer_shard agree by construction, so with rx_queues ==
  // shards every steerable frame qualifies; with fewer queues the rest
  // keeps the classic path (and rx_queues = 1 means nothing ever does).
  if (c.proto == net::kProtoTcp) {
    const int shard =
        static_cast<int>(c.rss_hash % static_cast<std::uint32_t>(tcp_shards_));
    return shard == queue ? tcp_shard_name(shard) : std::string{};
  }
  const int shard =
      static_cast<int>(c.rss_hash % static_cast<std::uint32_t>(udp_shards_));
  return shard == queue ? udp_shard_name(shard) : std::string{};
}

void DriverServer::send_rx_credit(std::size_t frames, sim::Context& ctx) {
  if (frames == 0) return;
  // Fast-path frames consumed RX buffers IP never saw: tell it how many so
  // it keeps the rings fed.  If IP is down the posted-count reset on its
  // restart covers the difference.
  chan::Message m;
  m.opcode = kDrvRxCredit;
  m.arg0 = frames;
  send_to(ip_name_, m, ctx);
}

void DriverServer::send_run_to_ip(
    std::span<const drv::SimNic::RxCompletion> run, sim::Context& ctx,
    int queue) {
  if (run.empty()) return;
  if (burst_pool_ == nullptr) {
    for (const auto& c : run) forward_rx_frame(c.buffer, c.len, ctx, queue);
    return;
  }
  std::vector<WireRxFrame> recs;
  recs.reserve(run.size());
  for (const auto& c : run) {
    WireRxFrame rec;
    rec.frame = c.buffer;
    rec.frame.length = c.len;
    recs.push_back(rec);
  }
  chan::RichPtr desc = pack_records<WireRxFrame>(*burst_pool_, recs);
  if (!desc.valid()) {
    // Descriptor pool exhausted: degrade to per-frame messages rather than
    // dropping a whole burst.
    for (const auto& c : run) forward_rx_frame(c.buffer, c.len, ctx, queue);
    return;
  }
  chan::Message m;
  m.opcode = kDrvRxBurst;
  m.ptr = desc;
  m.arg0 = recs.size();
  ++rx_msgs_;
  if (!send_to(ip_name_, m, ctx)) {
    rx_dropped_ += recs.size();
    if (queue < static_cast<int>(rx_dropped_q_.size()))
      rx_dropped_q_[queue] += recs.size();
    burst_pool_->release(desc);
  }
}

std::size_t DriverServer::send_run_fast(
    const std::string& target, std::span<const drv::SimNic::RxCompletion> run,
    sim::Context& ctx, int queue) {
  if (run.empty() || burst_pool_ == nullptr) {
    send_run_to_ip(run, ctx, queue);
    return 0;
  }
  std::vector<WireRxFrame> recs;
  recs.reserve(run.size());
  for (const auto& c : run) {
    WireRxFrame rec;
    rec.frame = c.buffer;
    rec.frame.length = c.len;
    recs.push_back(rec);
  }
  chan::RichPtr desc = pack_records<WireRxFrame>(*burst_pool_, recs);
  if (!desc.valid()) {
    for (const auto& c : run) forward_rx_frame(c.buffer, c.len, ctx, queue);
    return 0;
  }
  chan::Message m;
  m.opcode = kDrvRxFast;
  m.ptr = desc;
  m.arg0 = recs.size();
  m.arg1 = static_cast<std::uint64_t>(ifindex_);
  ++rx_msgs_;
  if (!send_to(target, m, ctx)) {
    // The replica is down or backlogged (reincarnation in progress): its
    // queue drains through the classic IP path until it is back.
    burst_pool_->release(desc);
    send_run_to_ip(run, ctx, queue);
    return 0;
  }
  rx_fast_frames_ += recs.size();
  // The frame references are now on loan to the replica: if it dies with
  // the message still queued, IP's reclaim on the replica's restart
  // recovers them (the replica note_returns each frame as it unpacks).
  const char proto = run.front().proto == net::kProtoUdp ? 'U' : 'T';
  for (const auto& c : run) {
    chan::Pool* pool = env().pools->find(c.buffer.pool);
    if (pool != nullptr) pool->note_borrow(c.buffer, transport_borrower(proto, queue));
  }
  return recs.size();
}

void DriverServer::start(bool restart) {
  expose_in_queue(ip_name_, 512);
  connect_out(ip_name_);
  if (fast_path_) {
    for (int s = 0; s < tcp_shards_; ++s) connect_out(tcp_shard_name(s));
    for (int s = 0; s < udp_shards_; ++s) connect_out(udp_shard_name(s));
  }
  if (env().knobs.supervision) {
    expose_in_queue(kRsName, 64);
    connect_out(kRsName);
  }
  if (nic_->coalescing() || fast_path_) {
    burst_pool_ = env().get_pool(name() + ".buf", 1u << 20);
  }
  install_device_handlers();
  if (restart) {
    // A restarted driver cannot trust the device state it inherited
    // (Section V-D): full reset, link bounces, IP resubmits.
    nic_->reset();
  }
  if (env().knobs.supervision) {
    // Arm the device wedge watchdog.  TimerAdapter invalidates by
    // incarnation, so every restart re-arms a fresh one here.
    wd_last_phy_ = nic_->stats().rx_phy_frames;
    wd_last_rx_ = nic_->stats().rx_frames;
    wedge_strikes_ = 0;
    timers()->schedule(kWatchdogInterval, [this] { watchdog_tick(); });
  }
  announce(restart);
}

void DriverServer::watchdog_tick() {
  // e1000-style "hung adapter" heuristic: the MAC's good-packets counter
  // advances but no completed descriptor reaches the driver, with the link
  // up.  Two consecutive flat intervals mean the device is wedged (not just
  // a quiet wire — a quiet wire leaves BOTH counters flat); reset it.
  const auto& s = nic_->stats();
  const bool phy_advanced = s.rx_phy_frames != wd_last_phy_;
  const bool rx_advanced = s.rx_frames != wd_last_rx_;
  wd_last_phy_ = s.rx_phy_frames;
  wd_last_rx_ = s.rx_frames;
  if (nic_->link_up() && phy_advanced && !rx_advanced) {
    if (++wedge_strikes_ >= 2) {
      wedge_strikes_ = 0;
      ++wedge_resets_;
      // The reset clears the wedge (a misconfigured card reconfigures from
      // scratch) at the price of a link bounce; IP resubmits.
      tx_backlog_.clear();
      nic_->reset();
    }
  } else {
    wedge_strikes_ = 0;
  }
  timers()->schedule(kWatchdogInterval, [this] { watchdog_tick(); });
}

void DriverServer::install_device_handlers() {
  const std::uint32_t inc = incarnation();
  // Interrupts are converted to kernel messages by the microkernel
  // (Section V-B); each handler charges the receive path on our core.
  nic_->set_tx_done([this, inc](std::uint64_t cookie, bool ok) {
    if (incarnation() != inc) return;
    post_kernel_msg(
        [this, cookie, ok](sim::Context& ctx) {
          chan::Message m;
          m.opcode = kDrvTxDone;
          m.req_id = cookie;
          m.arg0 = ok ? 1 : 0;
          send_to(ip_name_, m, ctx);
          drain_backlog(ctx);  // a ring slot just freed up
        },
        100);
  });
  nic_->set_rx([this, inc](chan::RichPtr buf, std::uint32_t len) {
    if (incarnation() != inc) return;
    post_kernel_msg(
        [this, buf, len](sim::Context& ctx) {
          charge(ctx, sim().costs().drv_packet_proc);
          ++rx_frames_;
          forward_rx_frame(buf, len, ctx);
        },
        100);
  });
  if (fast_path_) {
    // Multi-queue per-frame interrupts: the queue index and RSS metadata
    // pick the target, one message either way.
    nic_->set_rx_frame([this, inc](int queue,
                                   const drv::SimNic::RxCompletion& c) {
      if (incarnation() != inc) return;
      post_kernel_msg(
          [this, queue, c](sim::Context& ctx) {
            charge(ctx, sim().costs().drv_packet_proc);
            ++rx_frames_;
            const std::string target = fast_target(c, queue);
            if (target.empty()) {
              forward_rx_frame(c.buffer, c.len, ctx, queue);
              return;
            }
            std::span<const drv::SimNic::RxCompletion> run{&c, 1};
            send_rx_credit(send_run_fast(target, run, ctx, queue), ctx);
          },
          100);
    });
  }
  nic_->set_rx_burst([this, inc](int queue,
                                 std::vector<drv::SimNic::RxCompletion>&&
                                     burst) {
    if (incarnation() != inc) return;
    // ONE kernel message per coalesced interrupt: the trap, the receive and
    // the mwait wakeup are amortized over the whole burst.  The per-frame
    // descriptor work is still charged per frame.
    post_kernel_msg(
        [this, queue, burst = std::move(burst)](sim::Context& ctx) {
          charge(ctx, sim().costs().drv_packet_proc *
                          static_cast<sim::Cycles>(burst.size()));
          rx_frames_ += burst.size();
          ++rx_bursts_;
          // Split the burst into consecutive runs per target: the queue's
          // home replica for fast-eligible frames, IP for the rest.  A
          // single-target burst (every classic device) stays one message.
          std::size_t fast = 0;
          std::size_t i = 0;
          while (i < burst.size()) {
            const std::string target = fast_target(burst[i], queue);
            std::size_t j = i + 1;
            while (j < burst.size() && fast_target(burst[j], queue) == target)
              ++j;
            std::span<const drv::SimNic::RxCompletion> run{burst.data() + i,
                                                           j - i};
            if (target.empty()) {
              send_run_to_ip(run, ctx, queue);
            } else {
              fast += send_run_fast(target, run, ctx, queue);
            }
            i = j;
          }
          send_rx_credit(fast, ctx);
        },
        100);
  });
  nic_->set_link_change([this, inc](bool up) {
    if (incarnation() != inc) return;
    post_kernel_msg(
        [this, up](sim::Context& ctx) {
          if (up) drain_backlog(ctx);  // the reset emptied the TX ring
          chan::Message m;
          m.opcode = kDrvLink;
          m.arg0 = up ? 1 : 0;
          send_to(ip_name_, m, ctx);
        },
        50);
  });
}

void DriverServer::on_message(const std::string& from, const chan::Message& m,
                              sim::Context& ctx) {
  (void)from;
  switch (m.opcode) {
    case kDrvTx: {
      charge(ctx, sim().costs().drv_packet_proc);
      auto chain = net::unpack_chain(*env().pools, m.ptr);
      if (!chain) {
        chan::Message done;
        done.opcode = kDrvTxDone;
        done.req_id = m.req_id;
        done.arg0 = 0;
        send_to(ip_name_, done, ctx);
        return;
      }
      net::TxFrame frame;
      frame.header = chain->header;
      frame.payload = std::move(chain->payload);
      frame.offload = chain->offload;
      drain_backlog(ctx);  // opportunistic: ring slots may have freed up
      if (!tx_backlog_.empty() || nic_->tx_ring_free() == 0) {
        if (tx_backlog_.size() >= kMaxBacklog) {
          // Shed load: tell IP the frame was not accepted (never block).
          chan::Message done;
          done.opcode = kDrvTxDone;
          done.req_id = m.req_id;
          done.arg0 = 0;
          send_to(ip_name_, done, ctx);
          return;
        }
        tx_backlog_.emplace_back(std::move(frame), m.req_id);
        return;
      }
      nic_->tx_post(std::move(frame), m.req_id);
      return;
    }
    case kDrvRxBuf: {
      charge(ctx, 80);
      // Feed the emptiest queue ring: RSS load is hash-spread, so keeping
      // the rings level keeps every queue fed.  Single-queue devices see
      // exactly the old rx_post.
      int best = 0;
      for (int q = 1; q < nic_->rx_queue_count(); ++q) {
        if (nic_->rx_ring_level(q) < nic_->rx_ring_level(best)) best = q;
      }
      nic_->rx_post(best, m.ptr);
      return;
    }
    case kWorkProbe: {
      // Supervision probe: a driver's "work" is servicing the device, but
      // for liveness purposes dequeuing the probe proves the event loop
      // turns (device health is the watchdog's job, not the probe's).  The
      // ack follows the canary charge so its latency reflects a slowdown.
      charge(ctx, sim().costs().probe_canary);
      reply_after_charges([this, cookie = m.req_id](sim::Context& c) {
        chan::Message ack;
        ack.opcode = kWorkProbeAck;
        ack.req_id = cookie;
        ack.arg0 = 1;
        send_to(kRsName, ack, c);
      });
      return;
    }
    default:
      return;  // validate-and-ignore (Section IV-A)
  }
}

void DriverServer::drain_backlog(sim::Context& ctx) {
  (void)ctx;
  while (!tx_backlog_.empty() && nic_->tx_ring_free() > 0) {
    auto [frame, cookie] = std::move(tx_backlog_.front());
    tx_backlog_.pop_front();
    nic_->tx_post(std::move(frame), cookie);
  }
}

void DriverServer::on_peer_up(const std::string& peer, bool restarted,
                              sim::Context& ctx) {
  (void)ctx;
  if (peer == ip_name_ && restarted) {
    // The Intel gigabit adapters have no knob to invalidate their shadow
    // copies of the RX/TX descriptors, which point into the dead IP's pools:
    // a crash of IP means de facto restart of the network drivers too
    // (Section V-D).  Frames queued for the dead incarnation are dropped;
    // the new IP resubmits what still matters.
    tx_backlog_.clear();
    nic_->reset();
  }
}

}  // namespace newtos::servers
