#include "src/servers/driver_server.h"

#include "src/net/pbuf.h"

namespace newtos::servers {

DriverServer::DriverServer(NodeEnv* env, sim::SimCore* core, drv::SimNic* nic,
                           int ifindex, std::string ip_name)
    : Server(env, driver_name(ifindex), core),
      nic_(nic),
      ifindex_(ifindex),
      ip_name_(std::move(ip_name)) {}

void DriverServer::start(bool restart) {
  expose_in_queue(ip_name_, 512);
  connect_out(ip_name_);
  install_device_handlers();
  if (restart) {
    // A restarted driver cannot trust the device state it inherited
    // (Section V-D): full reset, link bounces, IP resubmits.
    nic_->reset();
  }
  announce(restart);
}

void DriverServer::install_device_handlers() {
  const std::uint32_t inc = incarnation();
  // Interrupts are converted to kernel messages by the microkernel
  // (Section V-B); each handler charges the receive path on our core.
  nic_->set_tx_done([this, inc](std::uint64_t cookie, bool ok) {
    if (incarnation() != inc) return;
    post_kernel_msg(
        [this, cookie, ok](sim::Context& ctx) {
          chan::Message m;
          m.opcode = kDrvTxDone;
          m.req_id = cookie;
          m.arg0 = ok ? 1 : 0;
          send_to(ip_name_, m, ctx);
          drain_backlog(ctx);  // a ring slot just freed up
        },
        100);
  });
  nic_->set_rx([this, inc](chan::RichPtr buf, std::uint32_t len) {
    if (incarnation() != inc) return;
    post_kernel_msg(
        [this, buf, len](sim::Context& ctx) {
          charge(ctx, sim().costs().drv_packet_proc);
          chan::Message m;
          m.opcode = kDrvRx;
          m.ptr = buf;
          m.ptr.length = len;  // actual frame length within the buffer
          if (!send_to(ip_name_, m, ctx)) {
            // IP is down or its queue is full: the frame is dropped; the
            // buffer itself belongs to IP's pool and will be recovered when
            // IP reposts buffers.
          }
        },
        100);
  });
  nic_->set_link_change([this, inc](bool up) {
    if (incarnation() != inc) return;
    post_kernel_msg(
        [this, up](sim::Context& ctx) {
          if (up) drain_backlog(ctx);  // the reset emptied the TX ring
          chan::Message m;
          m.opcode = kDrvLink;
          m.arg0 = up ? 1 : 0;
          send_to(ip_name_, m, ctx);
        },
        50);
  });
}

void DriverServer::on_message(const std::string& from, const chan::Message& m,
                              sim::Context& ctx) {
  (void)from;
  switch (m.opcode) {
    case kDrvTx: {
      charge(ctx, sim().costs().drv_packet_proc);
      auto chain = net::unpack_chain(*env().pools, m.ptr);
      if (!chain) {
        chan::Message done;
        done.opcode = kDrvTxDone;
        done.req_id = m.req_id;
        done.arg0 = 0;
        send_to(ip_name_, done, ctx);
        return;
      }
      net::TxFrame frame;
      frame.header = chain->header;
      frame.payload = std::move(chain->payload);
      frame.offload = chain->offload;
      drain_backlog(ctx);  // opportunistic: ring slots may have freed up
      if (!tx_backlog_.empty() || nic_->tx_ring_free() == 0) {
        if (tx_backlog_.size() >= kMaxBacklog) {
          // Shed load: tell IP the frame was not accepted (never block).
          chan::Message done;
          done.opcode = kDrvTxDone;
          done.req_id = m.req_id;
          done.arg0 = 0;
          send_to(ip_name_, done, ctx);
          return;
        }
        tx_backlog_.emplace_back(std::move(frame), m.req_id);
        return;
      }
      nic_->tx_post(std::move(frame), m.req_id);
      return;
    }
    case kDrvRxBuf:
      charge(ctx, 80);
      nic_->rx_post(m.ptr);
      return;
    default:
      return;  // validate-and-ignore (Section IV-A)
  }
}

void DriverServer::drain_backlog(sim::Context& ctx) {
  (void)ctx;
  while (!tx_backlog_.empty() && nic_->tx_ring_free() > 0) {
    auto [frame, cookie] = std::move(tx_backlog_.front());
    tx_backlog_.pop_front();
    nic_->tx_post(std::move(frame), cookie);
  }
}

void DriverServer::on_peer_up(const std::string& peer, bool restarted,
                              sim::Context& ctx) {
  (void)ctx;
  if (peer == ip_name_ && restarted) {
    // The Intel gigabit adapters have no knob to invalidate their shadow
    // copies of the RX/TX descriptors, which point into the dead IP's pools:
    // a crash of IP means de facto restart of the network drivers too
    // (Section V-D).  Frames queued for the dead incarnation are dropped;
    // the new IP resubmits what still matters.
    tx_backlog_.clear();
    nic_->reset();
  }
}

}  // namespace newtos::servers
