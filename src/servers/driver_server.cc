#include "src/servers/driver_server.h"

#include "src/net/pbuf.h"

namespace newtos::servers {

void DriverServer::forward_rx_frame(const chan::RichPtr& buf,
                                    std::uint32_t len, sim::Context& ctx) {
  chan::Message m;
  m.opcode = kDrvRx;
  m.ptr = buf;
  m.ptr.length = len;  // actual frame length within the buffer
  ++rx_msgs_;
  if (!send_to(ip_name_, m, ctx)) {
    // IP is down or its queue is full: the frame is dropped; the buffer
    // itself belongs to IP's pool and will be recovered when IP reposts
    // buffers.  Not silent any more: the drop is counted and surfaced
    // through Node::publish_channel_stats.
    ++rx_dropped_;
  }
}

DriverServer::DriverServer(NodeEnv* env, sim::SimCore* core, drv::SimNic* nic,
                           int ifindex, std::string ip_name)
    : Server(env, driver_name(ifindex), core),
      nic_(nic),
      ifindex_(ifindex),
      ip_name_(std::move(ip_name)) {}

void DriverServer::start(bool restart) {
  expose_in_queue(ip_name_, 512);
  connect_out(ip_name_);
  if (nic_->coalescing()) {
    burst_pool_ = env().get_pool(name() + ".buf", 1u << 20);
  }
  install_device_handlers();
  if (restart) {
    // A restarted driver cannot trust the device state it inherited
    // (Section V-D): full reset, link bounces, IP resubmits.
    nic_->reset();
  }
  announce(restart);
}

void DriverServer::install_device_handlers() {
  const std::uint32_t inc = incarnation();
  // Interrupts are converted to kernel messages by the microkernel
  // (Section V-B); each handler charges the receive path on our core.
  nic_->set_tx_done([this, inc](std::uint64_t cookie, bool ok) {
    if (incarnation() != inc) return;
    post_kernel_msg(
        [this, cookie, ok](sim::Context& ctx) {
          chan::Message m;
          m.opcode = kDrvTxDone;
          m.req_id = cookie;
          m.arg0 = ok ? 1 : 0;
          send_to(ip_name_, m, ctx);
          drain_backlog(ctx);  // a ring slot just freed up
        },
        100);
  });
  nic_->set_rx([this, inc](chan::RichPtr buf, std::uint32_t len) {
    if (incarnation() != inc) return;
    post_kernel_msg(
        [this, buf, len](sim::Context& ctx) {
          charge(ctx, sim().costs().drv_packet_proc);
          ++rx_frames_;
          forward_rx_frame(buf, len, ctx);
        },
        100);
  });
  nic_->set_rx_burst([this, inc](std::vector<drv::SimNic::RxCompletion>&&
                                     burst) {
    if (incarnation() != inc) return;
    // ONE kernel message per coalesced interrupt: the trap, the receive and
    // the mwait wakeup are amortized over the whole burst.  The per-frame
    // descriptor work is still charged per frame.
    post_kernel_msg(
        [this, burst = std::move(burst)](sim::Context& ctx) {
          charge(ctx, sim().costs().drv_packet_proc *
                          static_cast<sim::Cycles>(burst.size()));
          rx_frames_ += burst.size();
          ++rx_bursts_;
          std::vector<WireRxFrame> recs;
          recs.reserve(burst.size());
          for (const auto& c : burst) {
            WireRxFrame rec;
            rec.frame = c.buffer;
            rec.frame.length = c.len;
            recs.push_back(rec);
          }
          chan::RichPtr desc =
              burst_pool_ != nullptr
                  ? pack_records<WireRxFrame>(*burst_pool_, recs)
                  : chan::RichPtr{};
          if (!desc.valid()) {
            // Descriptor pool exhausted: degrade to per-frame messages
            // rather than dropping a whole burst.
            for (const auto& c : burst) forward_rx_frame(c.buffer, c.len, ctx);
            return;
          }
          chan::Message m;
          m.opcode = kDrvRxBurst;
          m.ptr = desc;
          m.arg0 = recs.size();
          ++rx_msgs_;
          if (!send_to(ip_name_, m, ctx)) {
            rx_dropped_ += recs.size();
            burst_pool_->release(desc);
          }
        },
        100);
  });
  nic_->set_link_change([this, inc](bool up) {
    if (incarnation() != inc) return;
    post_kernel_msg(
        [this, up](sim::Context& ctx) {
          if (up) drain_backlog(ctx);  // the reset emptied the TX ring
          chan::Message m;
          m.opcode = kDrvLink;
          m.arg0 = up ? 1 : 0;
          send_to(ip_name_, m, ctx);
        },
        50);
  });
}

void DriverServer::on_message(const std::string& from, const chan::Message& m,
                              sim::Context& ctx) {
  (void)from;
  switch (m.opcode) {
    case kDrvTx: {
      charge(ctx, sim().costs().drv_packet_proc);
      auto chain = net::unpack_chain(*env().pools, m.ptr);
      if (!chain) {
        chan::Message done;
        done.opcode = kDrvTxDone;
        done.req_id = m.req_id;
        done.arg0 = 0;
        send_to(ip_name_, done, ctx);
        return;
      }
      net::TxFrame frame;
      frame.header = chain->header;
      frame.payload = std::move(chain->payload);
      frame.offload = chain->offload;
      drain_backlog(ctx);  // opportunistic: ring slots may have freed up
      if (!tx_backlog_.empty() || nic_->tx_ring_free() == 0) {
        if (tx_backlog_.size() >= kMaxBacklog) {
          // Shed load: tell IP the frame was not accepted (never block).
          chan::Message done;
          done.opcode = kDrvTxDone;
          done.req_id = m.req_id;
          done.arg0 = 0;
          send_to(ip_name_, done, ctx);
          return;
        }
        tx_backlog_.emplace_back(std::move(frame), m.req_id);
        return;
      }
      nic_->tx_post(std::move(frame), m.req_id);
      return;
    }
    case kDrvRxBuf:
      charge(ctx, 80);
      nic_->rx_post(m.ptr);
      return;
    default:
      return;  // validate-and-ignore (Section IV-A)
  }
}

void DriverServer::drain_backlog(sim::Context& ctx) {
  (void)ctx;
  while (!tx_backlog_.empty() && nic_->tx_ring_free() > 0) {
    auto [frame, cookie] = std::move(tx_backlog_.front());
    tx_backlog_.pop_front();
    nic_->tx_post(std::move(frame), cookie);
  }
}

void DriverServer::on_peer_up(const std::string& peer, bool restarted,
                              sim::Context& ctx) {
  (void)ctx;
  if (peer == ip_name_ && restarted) {
    // The Intel gigabit adapters have no knob to invalidate their shadow
    // copies of the RX/TX descriptors, which point into the dead IP's pools:
    // a crash of IP means de facto restart of the network drivers too
    // (Section V-D).  Frames queued for the dead incarnation are dropped;
    // the new IP resubmits what still matters.
    tx_backlog_.clear();
    nic_->reset();
  }
}

}  // namespace newtos::servers
