// The packet filter server: sits in a T junction off IP (Figure 3) and
// answers pass/block queries.  Its static state (the rule set) is stored in
// the storage server; its dynamic state (the connection table) is rebuilt
// after a crash by querying the TCP and UDP servers (Section V-D) — so a
// firewall that blocks inbound traffic does not cut established outgoing
// connections after a restart.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/net/pf.h"
#include "src/servers/proto.h"
#include "src/servers/server.h"

namespace newtos::servers {

class PfServer : public Server {
 public:
  // `transports` names every transport replica to query when rebuilding
  // the connection table (all TCP and UDP shards).
  PfServer(NodeEnv* env, sim::SimCore* core, std::vector<net::PfRule> rules,
           std::vector<std::string> transports = {kTcpName, kUdpName});

  net::PfEngine* engine() { return engine_.get(); }

  // Replaces the live rule set: persists it and broadcasts kPfCacheInval so
  // every shard-local verdict cache drops its now-stale entries before the
  // next frame is judged.
  void apply_rules(std::vector<net::PfRule> rules);

 protected:
  void start(bool restart) override;
  void on_message(const std::string& from, const chan::Message& m,
                  sim::Context& ctx) override;
  void on_peer_up(const std::string& peer, bool restarted,
                  sim::Context& ctx) override;
  void on_killed() override;

 private:
  void save_rules(sim::Context& ctx);
  void request_conn_lists(sim::Context& ctx);
  void broadcast_cache_inval(sim::Context& ctx);

  std::vector<net::PfRule> initial_rules_;
  std::vector<std::string> transports_;
  std::unique_ptr<net::PfEngine> engine_;
  chan::Pool* pool_ = nullptr;
};

}  // namespace newtos::servers
