// The reincarnation server: parent of all system servers (Section V-D).
//
// It receives a "signal" when a child crashes and resets children that stop
// responding to periodic heartbeats; either way the child is restarted
// after a short exec+init delay, in restart mode, so it knows to recover its
// state from the storage server.  Faults are never injected into the
// reincarnation server itself (as in the paper).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/servers/server.h"

namespace newtos::servers {

class ReincarnationServer : public Server {
 public:
  struct Config {
    sim::Time heartbeat_interval = 50 * sim::kMillisecond;
    int max_missed_beats = 2;
    sim::Time restart_delay = 5 * sim::kMillisecond;  // exec + init
  };

  ReincarnationServer(NodeEnv* env, sim::SimCore* core);
  ReincarnationServer(NodeEnv* env, sim::SimCore* core, Config cfg);

  // Registers a child.  Children are booted by the node; we only restart.
  void manage(Server* child);

  // Crash signal (wired to NodeEnv::report_crash by the node).
  void child_crashed(Server* child);

  struct ChildStats {
    std::uint64_t crashes = 0;
    std::uint64_t hang_resets = 0;
    std::uint64_t restarts = 0;
  };
  const std::map<std::string, ChildStats>& child_stats() const {
    return stats_;
  }
  std::uint64_t total_restarts() const;

 protected:
  void start(bool restart) override;
  void on_message(const std::string&, const chan::Message&,
                  sim::Context&) override;

 private:
  struct Child {
    Server* server = nullptr;
    int missed = 0;
    bool restart_pending = false;
  };

  void tick();
  void schedule_restart(Server* child);

  Config cfg_;
  std::vector<Child> children_;
  std::map<std::string, ChildStats> stats_;
};

}  // namespace newtos::servers
