// The reincarnation server: parent of all system servers (Section V-D).
//
// It receives a "signal" when a child crashes and resets children that stop
// responding to periodic heartbeats; either way the child is restarted
// after a short exec+init delay, in restart mode, so it knows to recover its
// state from the storage server.  Faults are never injected into the
// reincarnation server itself (as in the paper).
//
// Heartbeats cannot see a *silently wedged* server — one that still answers
// kernel notifies but drops its real work (the paper's "we had to manually
// restart the TCP component").  With RuntimeKnobs::work_probes on, the
// reincarnation server additionally sends periodic end-to-end WORK probes:
// a synthetic echo rs -> tcpN -> ip -> pf, acked back along the same path
// (kWorkProbe/kWorkProbeAck).  A wedged transport drops the probe; after
// `max_missed_probes` unanswered probes it is reset like a hung one.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/servers/server.h"

namespace newtos::servers {

class ReincarnationServer : public Server {
 public:
  struct Config {
    sim::Time heartbeat_interval = 50 * sim::kMillisecond;
    int max_missed_beats = 2;
    sim::Time restart_delay = 5 * sim::kMillisecond;  // exec + init
    // End-to-end work probes (only sent when the node enables
    // RuntimeKnobs::work_probes and probe targets were registered).
    sim::Time probe_interval = 100 * sim::kMillisecond;
    int max_missed_probes = 2;
  };

  ReincarnationServer(NodeEnv* env, sim::SimCore* core);
  ReincarnationServer(NodeEnv* env, sim::SimCore* core, Config cfg);

  // Registers a child.  Children are booted by the node; we only restart.
  void manage(Server* child);
  // Declares which children receive end-to-end work probes (the transport
  // replicas).  Must be called before boot; no-op without knobs.work_probes.
  void set_probe_targets(std::vector<std::string> targets);

  // Crash signal (wired to NodeEnv::report_crash by the node).
  void child_crashed(Server* child);

  struct ChildStats {
    std::uint64_t crashes = 0;
    std::uint64_t hang_resets = 0;
    std::uint64_t probe_resets = 0;  // silent wedges caught by work probes
    std::uint64_t restarts = 0;
  };
  const std::map<std::string, ChildStats>& child_stats() const {
    return stats_;
  }
  std::uint64_t total_restarts() const;

 protected:
  void start(bool restart) override;
  void on_message(const std::string&, const chan::Message&,
                  sim::Context&) override;

 private:
  struct Child {
    Server* server = nullptr;
    int missed = 0;
    bool restart_pending = false;
  };
  struct Probe {
    std::uint64_t outstanding = 0;  // cookie of the unanswered probe, or 0
    int missed = 0;
  };

  void tick();
  void probe_tick();
  void schedule_restart(Server* child);
  Child* child_by_name(const std::string& name);

  Config cfg_;
  std::vector<Child> children_;
  std::map<std::string, ChildStats> stats_;
  std::vector<std::string> probe_targets_;
  std::map<std::string, Probe> probes_;
  std::map<std::uint64_t, std::string> probe_cookies_;  // cookie -> target
  std::uint64_t next_probe_ = 1;
};

}  // namespace newtos::servers
