// The reincarnation server: parent of all system servers (Section V-D).
//
// It receives a "signal" when a child crashes and resets children that stop
// responding to periodic heartbeats; either way the child is restarted
// after a short exec+init delay, in restart mode, so it knows to recover its
// state from the storage server.  Faults are never injected into the
// reincarnation server itself (as in the paper).
//
// Heartbeats cannot see a *silently wedged* server — one that still answers
// kernel notifies but drops its real work (the paper's "we had to manually
// restart the TCP component").  With RuntimeKnobs::work_probes on, the
// reincarnation server additionally sends periodic end-to-end WORK probes:
// a synthetic echo rs -> tcpN -> ip -> pf, acked back along the same path
// (kWorkProbe/kWorkProbeAck).  A wedged transport drops the probe; after
// `max_missed_probes` unanswered probes it is reset like a hung one.
//
// With RuntimeKnobs::supervision on the two signals grow into a full
// escalation ladder over every component class (tcp/udp/ip/pf/drv):
//
//   missed heartbeats            => Hang        => kill + reincarnate
//   heartbeats OK, probes missed => SilentWedge => kill + reincarnate
//   probe RTT > EWMA-based SLO   => Slowdown    => kill + reincarnate
//   (NIC counters flat, link up  => DeviceWedge => driver resets the device
//    — detected by the driver's own watchdog, see driver_server.h)
//
// Probe acks carry an RTT sample: a slowed-down server still answers, but
// late (its in-queue backlog grows without bound), so acks that exceed
// max(slo_floor, slo_factor * EWMA(healthy RTT)) for slo_strikes probes in
// a row are treated as a detection.  Restarts are budgeted: more than
// restart_budget restarts of one child inside budget_window quarantines it
// (held down for a full window — peers degrade to their classic paths, as
// they do for any dead peer) and each consecutive restart doubles the
// exec+init delay up to backoff_cap, so a crash-looping component degrades
// gracefully instead of flapping.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/servers/server.h"

namespace newtos::servers {

class ReincarnationServer : public Server {
 public:
  struct Config {
    sim::Time heartbeat_interval = 50 * sim::kMillisecond;
    int max_missed_beats = 2;
    sim::Time restart_delay = 5 * sim::kMillisecond;  // exec + init
    // End-to-end work probes (only sent when the node enables
    // RuntimeKnobs::work_probes and probe targets were registered).
    sim::Time probe_interval = 100 * sim::kMillisecond;
    int max_missed_probes = 2;
    // --- supervision-plane tuning (inert at the defaults) -----------------
    // Slowdown rung: an ack with RTT > max(slo_floor, slo_factor * ewma)
    // is an SLO strike; slo_strikes consecutive strikes reset the child.
    // slo_factor == 0 disables the rung (the legacy work_probes behaviour).
    double slo_factor = 0.0;
    sim::Time slo_floor = 5 * sim::kMillisecond;
    int slo_strikes = 2;
    // Restart budget + exponential backoff.  restart_budget == 0 disables
    // both (every restart waits exactly restart_delay, as it always did).
    int restart_budget = 0;
    sim::Time budget_window = 10 * sim::kSecond;
    sim::Time backoff_cap = 2 * sim::kSecond;
  };

  ReincarnationServer(NodeEnv* env, sim::SimCore* core);
  ReincarnationServer(NodeEnv* env, sim::SimCore* core, Config cfg);

  // Registers a child.  Children are booted by the node; we only restart.
  void manage(Server* child);
  // Declares which children receive end-to-end work probes (the transport
  // replicas; with supervision on, every component class).  Must be called
  // before boot; no-op without knobs.work_probes/knobs.supervision.
  void set_probe_targets(std::vector<std::string> targets);

  // Crash signal (wired to NodeEnv::report_crash by the node).
  void child_crashed(Server* child);

  struct ChildStats {
    std::uint64_t crashes = 0;
    std::uint64_t hang_resets = 0;
    std::uint64_t probe_resets = 0;  // silent wedges caught by work probes
    std::uint64_t slowdown_resets = 0;  // SLO-rung detections
    std::uint64_t restarts = 0;
    // Detection latency of the most recent escalation: time from the last
    // positive signal (heartbeat or probe ack) to the kill.  -1 until the
    // first detection.
    double detect_ms = -1.0;
  };
  const std::map<std::string, ChildStats>& child_stats() const {
    return stats_;
  }
  std::uint64_t total_restarts() const;
  // Milliseconds of restart delay charged beyond the base exec+init time by
  // the backoff/budget machinery (0 unless a child crash-looped).
  std::uint64_t backoff_ms_total() const {
    return static_cast<std::uint64_t>(backoff_total_ / sim::kMillisecond);
  }

 protected:
  void start(bool restart) override;
  void on_message(const std::string&, const chan::Message&,
                  sim::Context&) override;

 private:
  struct Child {
    Server* server = nullptr;
    int missed = 0;
    bool restart_pending = false;
    sim::Time last_ok = 0;      // last heartbeat/probe ack seen
    int recent_restarts = 0;    // restarts inside the current budget window
    sim::Time last_restart = 0;
  };
  struct Probe {
    std::uint64_t outstanding = 0;  // cookie of the unanswered probe, or 0
    int missed = 0;
    int slo_strikes = 0;
    double ewma = 0.0;  // EWMA of healthy probe RTTs (ns)
    int samples = 0;
  };
  struct SentProbe {
    std::string target;
    sim::Time sent_at = 0;
  };

  void tick();
  void probe_tick();
  void schedule_restart(Server* child);
  Child* child_by_name(const std::string& name);
  // One rung of the ladder fired: record the detection and kill the child.
  void escalate(Child& child, std::uint64_t ChildStats::* counter);
  bool probes_enabled() {
    return env().knobs.work_probes || env().knobs.supervision;
  }

  Config cfg_;
  std::vector<Child> children_;
  std::map<std::string, ChildStats> stats_;
  std::vector<std::string> probe_targets_;
  std::map<std::string, Probe> probes_;
  // Every probe in flight, kept past its miss: a LATE ack is exactly the
  // slowdown signal, so cookies survive until answered or evicted (bounded).
  std::map<std::uint64_t, SentProbe> probe_cookies_;
  std::uint64_t next_probe_ = 1;
  sim::Time backoff_total_ = 0;
};

}  // namespace newtos::servers
