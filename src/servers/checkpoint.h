// Transparent TCP recovery: the connection-checkpoint subsystem.
//
// The paper stops at Table I: every component recovers transparently except
// the TCP server, whose "large, frequently changing state for each
// connection" makes established connections die with the process.  This
// subsystem closes that gap using exactly the two ingredients the stack
// already has:
//
//  - POOLS (Section IV).  Shared-memory pools outlive their owner's
//    process: that is the paper's own crash argument for zero-copy.  Each
//    checkpointed connection gets a pool-resident *checkpoint page* — a
//    chunk of the TCP replica's staging pool holding the hot TCB scalars
//    (state, snd_una, rcv_nxt, window, FIN flags) and the queue membership
//    (ring arrays of rich pointers to the sndq chunks and rcvq frames).
//    Scalar updates are plain stores, so they are safe to do per segment:
//    no IPC ever leaves the server for them.
//
//  - THE STORAGE SERVER (Section V-D).  What *does* ride IPC is compact
//    and rare: a directory of checkpointed connections plus one small
//    record per connection (socket id, page pointer, sequence watermarks),
//    put on state transitions and refreshed after every
//    `TcpOptions::ckpt_watermark` bytes of stream progress — never per
//    segment.  The storage server is how the restarted replica *finds* its
//    pages again.
//
//  - THE LOAN LEDGER (PR 2).  Unacked send data and undelivered receive
//    data stay in live pool chunks across the crash: every chunk a
//    checkpointed connection queues is noted in its owning pool's ledger
//    under the connection's checkpoint borrower id.  The dying server
//    *parks* those references instead of releasing them
//    (TcpEngine::park_checkpointed), the restarted replica re-adopts them
//    through the page, and a connection whose record was lost is swept by
//    reclaiming its borrower — a checkpoint can never strand a chunk.
//
// Restore sequence (TcpServer::start(restart) with checkpointing on):
// fetch listeners, fetch the checkpoint directory, fetch each record, read
// each page, rebuild the TCBs (TcpEngine::restore_conn), then resync: the
// engine retransmits from the last acked watermark, re-announces its exact
// rcv_nxt, and replays the readiness events.  Because rcv_nxt only ever
// covered bytes that are either still in parked rcvq frames or already
// delivered to the application, the application sees no lost and no
// duplicated bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "src/chan/message.h"
#include "src/chan/pool.h"
#include "src/net/tcp.h"
#include "src/sim/sim.h"

namespace newtos::servers {

// Loan-ledger borrower id of one checkpointed connection.  The 0xC prefix
// keeps these clear of application borrowers (small sequential ids) and
// transport-replica borrowers (0x8 prefix); the socket id already encodes
// the replica shard in its top bits.
inline constexpr std::uint32_t kCkptBorrowerTag = 0xC0000000u;
inline constexpr std::uint32_t ckpt_borrower(std::uint32_t sock) {
  return kCkptBorrowerTag | (sock & 0x3fffffffu);
}
inline constexpr bool is_ckpt_borrower(std::uint32_t borrower) {
  return (borrower & 0xE0000000u) == kCkptBorrowerTag;
}

// --- the pool-resident checkpoint page ---------------------------------------------

inline constexpr std::uint32_t kCkptMagic = 0x54504b43u;  // "CKPT"
// Slot-ring capacities bound the page size (~49 KB per connection).  Both
// queues are byte-bounded at 1 MB by TcpOptions; the worst realistic chunk
// granularity is one MSS-sized spliced slice (~1448 B), i.e. ~724 entries —
// 1024 slots cover it.  A connection that still overflows (pathological
// tiny-write fragmentation) falls back to the classic non-recoverable
// behaviour instead of journaling a truncated queue.
inline constexpr std::uint32_t kCkptSndSlots = 1024;
inline constexpr std::uint32_t kCkptRcvSlots = 1024;

// The checkpoint directory is paged: one directory record holds at most
// this many socket ids plus the storage key of its continuation page, so a
// replica tracking more connections than fit in one record chains into
// kKeyTcpCkptDirBase instead of silently degrading (the ROADMAP's
// 1024-slot cap).
inline constexpr std::uint32_t kCkptDirPageSocks = 1024;

struct CkptPageHdr {
  std::uint32_t magic = kCkptMagic;
  std::uint32_t sock = 0;
  std::uint8_t state = 0;  // net::TcpState
  std::uint8_t peer_fin = 0;
  std::uint8_t fin_queued = 0;
  std::uint8_t accept_pending = 0;
  std::uint32_t local = 0;
  std::uint32_t peer = 0;
  std::uint16_t lport = 0;
  std::uint16_t pport = 0;
  std::uint32_t parent_listener = 0;
  std::uint32_t snd_una = 0;
  std::uint32_t snd_wnd = 0;
  std::uint32_t rcv_nxt = 0;
  // Ring bounds into the slot arrays that follow the header.
  std::uint32_t snd_head = 0;
  std::uint32_t snd_count = 0;
  std::uint32_t rcv_head = 0;
  std::uint32_t rcv_count = 0;
  // Consumed bytes of the front receive slot (only the front can be
  // partially delivered).
  std::uint32_t front_consumed = 0;
  // Congestion-control snapshot (algorithm id + opaque blob + the engine's
  // RTT estimator), refreshed with the other scalars by plain stores.  A
  // restored connection resumes at its learned rate instead of slow start;
  // algo == 0 (a page written before this field existed, or an engine with
  // no module) restores conservatively.
  net::TcpCheckpointSink::CcState cc;
};
static_assert(std::is_trivially_copyable_v<CkptPageHdr>);

struct CkptSndSlot {
  chan::RichPtr chunk;
  std::uint32_t seq = 0;  // sequence number of the chunk's first byte
  std::uint32_t pad = 0;
};
static_assert(std::is_trivially_copyable_v<CkptSndSlot>);

struct CkptRcvSlot {
  chan::RichPtr frame;
  std::uint16_t off = 0;  // payload start within the frame chunk
  std::uint16_t len = 0;
  std::uint32_t pad = 0;
};
static_assert(std::is_trivially_copyable_v<CkptRcvSlot>);

inline constexpr std::uint32_t ckpt_page_bytes() {
  return static_cast<std::uint32_t>(sizeof(CkptPageHdr) +
                                    kCkptSndSlots * sizeof(CkptSndSlot) +
                                    kCkptRcvSlots * sizeof(CkptRcvSlot));
}

// --- the storage-journal record ----------------------------------------------------

// One compact per-connection TCB record in the replica's storage namespace
// (key ckpt_record_key(sock)); the directory (kKeyTcpCkptDir) lists the
// socks.  The sequence watermarks are diagnostics at journal granularity —
// the exact values live in the page.
//
// Wire format v2: the v1 core below, serialized verbatim, followed by a
// 32-bit version tag and the congestion-control snapshot as of the last
// journal refresh.  parse_record() accepts a bare v1 core (exactly
// kCkptRecV1Bytes long) and leaves `cc` absent (algo 0), so journals
// written by older builds still restore — with the conservative fresh-CC
// fallback.
inline constexpr std::uint32_t kCkptRecVersion = 2;

struct CkptStoreRec {
  // --- v1 core (wire-stable prefix) ---
  std::uint32_t sock = 0;
  chan::RichPtr page;
  std::uint32_t snd_una = 0;
  std::uint32_t rcv_nxt = 0;
  std::uint8_t state = 0;
  std::uint8_t pad[3] = {};
  // --- v2 trailer ---
  net::TcpCheckpointSink::CcState cc;
};
static_assert(std::is_trivially_copyable_v<CkptStoreRec>);

inline constexpr std::size_t kCkptRecV1Bytes = offsetof(CkptStoreRec, cc);

// The TCP server's side of the subsystem: implements the engine's sink,
// owns the pages, journals to the storage server, and rebuilds
// RestoredConn records on restart.
class CheckpointWriter : public net::TcpCheckpointSink {
 public:
  struct Env {
    chan::Pool* pool = nullptr;           // host replica's pool (owns pages)
    chan::PoolRegistry* pools = nullptr;  // ledger ops across foreign pools
    std::uint32_t watermark = 256 * 1024;
    // Journal transport, provided by the host server (kStorePut to store).
    std::function<bool(const chan::Message&, sim::Context&)> send_store;
    std::function<std::uint64_t()> new_store_req;
    // Defers the journal flush to the end of the handler turn, so every
    // transition of one turn rides one batch of puts.
    std::function<void(std::function<void(sim::Context&)>)> defer;
    std::function<void(sim::Cycles)> charge;  // no-op outside a handler
    // Overflow fallback: the engine reverts this connection to the classic
    // non-recoverable behaviour.
    std::function<void(net::SockId)> drop_checkpoint;
  };

  explicit CheckpointWriter(Env env) : env_(std::move(env)) {}
  CheckpointWriter(const CheckpointWriter&) = delete;
  CheckpointWriter& operator=(const CheckpointWriter&) = delete;

  // --- TcpCheckpointSink -----------------------------------------------------------
  bool ckpt_established(const ConnMeta& meta, const Scalars& s) override;
  void ckpt_scalars(net::SockId s, const Scalars& sc) override;
  void ckpt_sndq_push(net::SockId s, const chan::RichPtr& chunk,
                      std::uint32_t seq) override;
  void ckpt_sndq_pop(net::SockId s, const chan::RichPtr& chunk) override;
  void ckpt_rcvq_push(net::SockId s, const chan::RichPtr& frame,
                      std::uint16_t off, std::uint16_t len) override;
  void ckpt_rcvq_consume(net::SockId s, std::size_t n) override;
  void ckpt_accepted(net::SockId s) override;
  void ckpt_destroyed(net::SockId s) override;

  // --- journal serialization ---------------------------------------------------------
  // One page of the chained directory: up to kCkptDirPageSocks socks plus
  // the storage key of the next page (0 terminates the chain).  Page 0
  // lives at kKeyTcpCkptDir, page i >= 1 at kKeyTcpCkptDirBase + i - 1.
  struct DirPage {
    std::vector<std::uint32_t> socks;
    std::uint32_t next_key = 0;
  };
  static std::vector<std::byte> serialize_dir(
      std::span<const std::uint32_t> socks, std::uint32_t next_key);
  static std::optional<DirPage> parse_dir(std::span<const std::byte>);
  static std::vector<std::byte> serialize_record(const CkptStoreRec& rec);
  static std::optional<CkptStoreRec> parse_record(std::span<const std::byte>);

  // --- restore side ------------------------------------------------------------------
  // Validates the page named by a journal record and converts it into an
  // engine restore record.  nullopt when the page (or any chunk it names)
  // did not survive — the caller then reclaims the orphan.
  std::optional<net::TcpEngine::RestoredConn> load_page(
      const CkptStoreRec& rec) const;
  // Resumes bookkeeping for a connection restore_conn() accepted, and
  // re-journals it.
  void adopt(const CkptStoreRec& rec);
  // Frees everything a dead connection's borrower still holds (queue chunks
  // and the page), across every pool.
  void reclaim_orphan(std::uint32_t sock);

  // The storage server restarted empty: re-journal the whole namespace.
  void store_all(sim::Context& ctx);

  // Checkpoint overhead, surfaced as node stats by the host.
  std::uint64_t puts() const { return puts_; }
  std::uint64_t put_bytes() const { return put_bytes_; }
  std::uint64_t overflows() const { return overflows_; }
  // Continuation-page puts of the chained directory: non-zero whenever the
  // replica tracked more connections than one directory record holds.
  std::uint64_t dir_overflows() const { return dir_overflows_; }
  std::size_t tracked() const { return recs_.size(); }

 private:
  struct Rec {
    chan::RichPtr page;
    std::uint32_t last_una = 0;  // watermark base (as of the last put)
    std::uint32_t last_rcv = 0;
    bool dirty = false;
  };

  CkptPageHdr* hdr(const chan::RichPtr& page);
  CkptSndSlot* snd_slots(const chan::RichPtr& page);
  CkptRcvSlot* rcv_slots(const chan::RichPtr& page);

  void note_borrow(const chan::RichPtr& p, std::uint32_t sock);
  void note_return(const chan::RichPtr& p, std::uint32_t sock);
  // Releases one connection's checkpoint: returns every queue loan and
  // frees the page.  The engine keeps (and later releases) the queue
  // references themselves.
  void drop_rec(std::uint32_t sock, std::map<std::uint32_t, Rec>::iterator it);
  void mark_dirty(std::uint32_t sock);
  void schedule_flush();
  void flush(sim::Context& ctx);
  // False when the put could not be sent (pool exhausted / store queue
  // full): the caller keeps its dirty flag so a later flush retries.
  bool put(std::uint32_t key, std::span<const std::byte> value,
           sim::Context& ctx);

  Env env_;
  std::map<std::uint32_t, Rec> recs_;  // ordered: deterministic journal
  bool dir_dirty_ = false;
  bool flush_scheduled_ = false;
  std::uint64_t puts_ = 0;
  std::uint64_t put_bytes_ = 0;
  std::uint64_t overflows_ = 0;
  std::uint64_t dir_overflows_ = 0;
};

}  // namespace newtos::servers
