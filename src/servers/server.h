// Server: the base class for every OS component in NewtOS.
//
// A server is a single-threaded, event-driven, unprivileged process pinned
// to a dedicated core (Section III).  It consumes messages from SPSC channel
// queues, never blocks, and when all queues run dry it arms the doorbells
// and halts its core with kernel-assisted MWAIT (Section IV-B); the next
// producer write wakes it, which costs CostModel::mwait_wakeup.
//
// The base class also implements the crash/restart machinery of
// Section IV-D: queues are published/attached through the registry and the
// channel manager, peers learn about deaths and rebirths through
// publish/subscribe, and subclasses hook on_peer_up/on_peer_down to run
// their request-database abort actions and resubmission policies.
#pragma once

#include <cassert>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/chan/channel.h"
#include "src/chan/pool.h"
#include "src/chan/registry.h"
#include "src/chan/request_db.h"
#include "src/kipc/kipc.h"
#include "src/net/env.h"
#include "src/sim/sim.h"

namespace newtos::servers {

class Server;

// How messages between OS components travel (Table II line 1 vs the rest).
enum class IpcMode {
  kChannels,    // user-space shared-memory channels, no kernel
  kKernelSync,  // classic MINIX 3: trap + copy + context switch per message
};

// Per-node knobs the servers consult while charging costs.
struct RuntimeKnobs {
  IpcMode ipc = IpcMode::kChannels;
  bool tso = false;
  bool csum_offload = true;
  double cost_scale = 1.0;  // scales protocol-processing costs (ideal peer)
  // Extra per-packet path length of the legacy MINIX stack (Table II line 1).
  sim::Cycles legacy_per_packet = 0;
  std::uint32_t app_write_size = 8192;
  // End-to-end work probes (reincarnation server -> transports -> IP -> PF):
  // servers only create the probe channels when this is on.
  bool work_probes = false;
  // Self-healing supervision plane: the reincarnation server escalates from
  // heartbeats/probes to automatic restarts (hang, silent wedge, slowdown)
  // and the drivers watch their NIC for receive wedges.  Implies the probe
  // channels of work_probes, extended to every component class.
  bool supervision = false;
};

// Everything a server needs from its node; filled in by core/node.cc.
struct NodeEnv {
  sim::Simulator* sim = nullptr;
  chan::PoolRegistry* pools = nullptr;
  chan::Registry* registry = nullptr;
  chan::ChannelManager* channels = nullptr;
  kipc::KernelIpc* kernel = nullptr;
  RuntimeKnobs knobs;
  std::string node_name;
  // Queue directory: queues survive server restarts (a new incarnation
  // inherits the address space, Section IV-D).
  std::function<chan::Queue*(const std::string& name, std::size_t cap)>
      get_queue;
  // Pool directory.  Pools persist across their owner's restarts: the paper
  // keeps old receive pools alive until drained (Section V-D); chunks that
  // were in flight when their owner died are leaked, bounded per crash.
  std::function<chan::Pool*(const std::string& name, std::size_t size)>
      get_pool;
  // Crash signal to the reincarnation server (the parent of all servers).
  std::function<void(Server*)> report_crash;
  // Socket events (readable/connected/reset/...) routed to the owning
  // application actor; the data path bypasses the SYSCALL server
  // (Section V-B).  `shard` names the transport replica that raised the
  // event — for replicated state (listener accept queues, UDP sockets) it
  // can differ from the shard the socket id encodes.
  std::function<void(int shard, char proto, std::uint32_t sock,
                     std::uint8_t event)>
      sock_event;
};

// --- shared teardown helpers ---------------------------------------------------------
//
// Every engine-hosting server tears down the same way: a dying (or
// destructing) process has no handler context to send done-reports from, so
// the engine's queued receive frames detach to direct pool releases before
// the engine drops, and in-flight TX descriptors go straight back to the
// staging pool.  These helpers replace the near-identical blocks that used
// to live in each server's destructor and on_killed().

// Detaches the engine's rx_done report (queued receive frames release
// directly through the pool registry) and destroys it.
template <typename EnginePtr>
inline void drop_engine(EnginePtr& engine) {
  if (engine) {
    engine->detach_rx_done();
    engine.reset();
  }
}

// Releases every in-flight descriptor of `descs` into `pool` and clears the
// map.  `proj` extracts the RichPtr from a map value (identity for plain
// RichPtr maps).
template <typename Map, typename Proj>
inline void release_in_flight(chan::Pool* pool, Map& descs, Proj&& proj) {
  if (pool != nullptr) {
    for (auto& [key, value] : descs) {
      const chan::RichPtr& p = proj(value);
      if (p.valid()) pool->release(p);
    }
  }
  descs.clear();
}

template <typename Map>
inline void release_in_flight(chan::Pool* pool, Map& descs) {
  release_in_flight(pool, descs,
                    [](const chan::RichPtr& p) -> const chan::RichPtr& {
                      return p;
                    });
}

class Server {
 public:
  Server(NodeEnv* env, std::string name, sim::SimCore* core);
  virtual ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  const std::string& name() const { return name_; }
  sim::SimCore& core() { return *core_; }
  NodeEnv& env() { return *env_; }
  sim::Simulator& sim() { return *env_->sim; }

  // --- lifecycle (driven by the node / reincarnation server) ---------------------
  // First boot or post-crash restart.  Calls start(restart).
  void boot(bool restart);
  // Kills the server: engine state is lost, publications withdrawn, queues
  // reset.  `silent` hangs instead of crashing: the process stops consuming
  // but nobody is signalled — only heartbeat timeouts catch it.
  void kill();
  void hang();
  // Degraded-operation faults (Table IV's "slowdown, no crash" cases).
  void set_slowdown(double factor) { slowdown_ = factor; }
  // Silent wedge: the process keeps answering heartbeats but drops its real
  // work — the fault class the reincarnation server cannot detect, needing
  // the paper's "manually restarting ... solved the problem".
  void set_drop_work(bool v) { drop_work_ = v; }
  bool drop_work() const { return drop_work_; }

  bool alive() const { return alive_; }
  bool hung() const { return hung_; }
  bool ready() const { return alive_ && !hung_ && announced_; }
  std::uint32_t incarnation() const { return incarnation_; }

  // Heartbeat from the reincarnation server (kernel notify).  The ack
  // callback runs only if the server is actually processing events.
  void post_heartbeat(std::function<void()> ack);

  // Inject a kernel-IPC message (app syscalls, interrupts).  Charged as a
  // trap + receive on this server's core.
  void post_kernel_msg(std::function<void(sim::Context&)> fn,
                       sim::Cycles extra_cost = 0);
  // Cheap internal control event (library fast path, timer callbacks).
  void post_control(std::function<void(sim::Context&)> fn,
                    sim::Cycles cost = 50);

  // Statistics.
  std::uint64_t messages_handled() const { return messages_handled_; }
  std::uint64_t wakeups() const { return wakeups_; }

  // The context of the handler currently executing on this server's core.
  // Engine callbacks (which have no context parameter) charge through this.
  sim::Context& cur() {
    assert(current_ctx_ != nullptr && "engine callback outside a handler");
    return *current_ctx_;
  }
  // True while a handler is executing (engine callbacks from teardown paths
  // have no context to charge against).
  bool in_handler() const { return current_ctx_ != nullptr; }

  // Socket-buffer fast path (Section V-B): the application's C library
  // manipulates the exported socket buffers directly, so engine calls made
  // from an application actor charge the application's own context.  RAII
  // guard installing that context for the duration of the call.
  class BorrowContext {
   public:
    BorrowContext(Server& s, sim::Context& ctx)
        : s_(s), prev_(s.current_ctx_) {
      s_.current_ctx_ = &ctx;
    }
    ~BorrowContext() { s_.current_ctx_ = prev_; }
    BorrowContext(const BorrowContext&) = delete;
    BorrowContext& operator=(const BorrowContext&) = delete;

   private:
    Server& s_;
    sim::Context* prev_;
  };

 protected:
  // --- subclass interface ----------------------------------------------------------
  virtual void start(bool restart) = 0;
  virtual void on_message(const std::string& from, const chan::Message& m,
                          sim::Context& ctx) = 0;
  virtual void on_peer_up(const std::string& peer, bool restarted,
                          sim::Context& ctx);
  virtual void on_peer_down(const std::string& peer, sim::Context& ctx);
  // Release engine state on death (before a restart re-creates it).
  virtual void on_killed() {}

  // --- channel plumbing --------------------------------------------------------------
  // Creates/resets the queue `from` -> me, exports it to `from` and
  // publishes the credential under "chan.<from>><me>".
  chan::Queue* expose_in_queue(const std::string& from,
                               std::size_t capacity = 256);
  // Subscribes to the peer's published queue me -> peer and to its
  // up/down announcements.
  void connect_out(const std::string& peer);
  // Sends on the out-queue to `peer`; charges channel or kernel-IPC costs
  // per the node's IpcMode.  Returns false when the queue is full or the
  // peer is down (callers apply their drop/defer policy).
  bool send_to(const std::string& peer, const chan::Message& m,
               sim::Context& ctx);
  // Best-effort broadcast of `m` to every peer in `peers` (replica
  // maintenance fan-out); down peers simply miss it and resync on announce.
  void send_to_all(const std::vector<std::string>& peers,
                   const chan::Message& m, sim::Context& ctx);
  bool peer_ready(const std::string& peer) const;
  // Runs `fn` in a follow-up task on this server's core, i.e. only after
  // every cycle charged by the current handler (scaled by any slowdown) has
  // elapsed.  Messages sent inside a handler are delivered at the task's
  // START time, so a reply whose latency must reflect the handler's work —
  // the supervision probe ack and its canary quantum — has to be issued
  // from here.  Dropped if the server dies, hangs or reincarnates first.
  void reply_after_charges(std::function<void(sim::Context&)> fn);

  // Declares this server announced ("server.<name>.up" published).  Called
  // by subclasses when their state is restored and they are open for
  // business (possibly asynchronously, after talking to the storage server).
  void announce(bool restarted);

  // Charges `c` cycles scaled by the node's cost_scale and the fault
  // slowdown factor.
  void charge(sim::Context& ctx, sim::Cycles c) const;

  // Engine adapters.
  net::Clock* clock() { return &clock_adapter_; }
  net::TimerService* timers() { return &timer_adapter_; }

  chan::RequestDb& request_db() { return rdb_; }

 private:
  struct OutPeer {
    chan::Queue* queue = nullptr;
    bool up = false;
  };

  class ClockAdapter : public net::Clock {
   public:
    explicit ClockAdapter(Server* s) : s_(s) {}
    sim::Time now() const override;

   private:
    Server* s_;
  };
  class TimerAdapter : public net::TimerService {
   public:
    explicit TimerAdapter(Server* s) : s_(s) {}
    TimerId schedule(sim::Time delay, std::function<void()> fn) override;
    void cancel(TimerId id) override;

   private:
    Server* s_;
  };

  void wake();
  void pump(sim::Context& ctx);
  void enter_idle(sim::Context& ctx);

  NodeEnv* env_;
  std::string name_;
  sim::SimCore* core_;

  bool alive_ = false;
  bool hung_ = false;
  bool announced_ = false;
  bool pump_scheduled_ = false;
  bool sleeping_ = true;
  bool drop_work_ = false;
  double slowdown_ = 1.0;
  std::uint32_t incarnation_ = 0;

  struct InQueue {
    std::string from;
    chan::Queue* queue = nullptr;
  };
  std::vector<InQueue> in_queues_;
  std::map<std::string, OutPeer> outs_;
  std::vector<chan::Registry::SubId> subs_;
  std::vector<std::string> published_keys_;
  std::deque<std::pair<std::function<void(sim::Context&)>, sim::Cycles>>
      control_;
  chan::RequestDb rdb_;

  ClockAdapter clock_adapter_{this};
  TimerAdapter timer_adapter_{this};
  sim::Context* current_ctx_ = nullptr;

  std::uint64_t messages_handled_ = 0;
  std::uint64_t wakeups_ = 0;

  static constexpr int kBatch = 16;
};

}  // namespace newtos::servers
