#include "src/servers/reincarnation.h"

#include "src/servers/proto.h"

namespace newtos::servers {

ReincarnationServer::ReincarnationServer(NodeEnv* env, sim::SimCore* core)
    : ReincarnationServer(env, core, Config{}) {}

ReincarnationServer::ReincarnationServer(NodeEnv* env, sim::SimCore* core,
                                         Config cfg)
    : Server(env, "rs", core), cfg_(cfg) {}

void ReincarnationServer::manage(Server* child) {
  // Idempotent: re-managing a child must not push a duplicate entry, which
  // would double-heartbeat it and double-count its restarts.
  for (const auto& c : children_) {
    if (c.server == child) return;
  }
  children_.push_back(Child{child, 0, false});
  stats_.emplace(child->name(), ChildStats{});
}

void ReincarnationServer::set_probe_targets(
    std::vector<std::string> targets) {
  probe_targets_ = std::move(targets);
}

ReincarnationServer::Child* ReincarnationServer::child_by_name(
    const std::string& name) {
  for (auto& c : children_) {
    if (c.server->name() == name) return &c;
  }
  return nullptr;
}

void ReincarnationServer::start(bool restart) {
  if (env().knobs.work_probes) {
    for (const auto& t : probe_targets_) {
      expose_in_queue(t, 64);
      connect_out(t);
    }
  }
  announce(restart);
  timers()->schedule(cfg_.heartbeat_interval, [this] { tick(); });
  if (env().knobs.work_probes && !probe_targets_.empty()) {
    timers()->schedule(cfg_.probe_interval, [this] { probe_tick(); });
  }
}

void ReincarnationServer::on_message(const std::string& from,
                                     const chan::Message& m, sim::Context&) {
  if (m.opcode != kWorkProbeAck) return;
  auto cit = probe_cookies_.find(m.req_id);
  if (cit == probe_cookies_.end() || cit->second != from) return;
  probe_cookies_.erase(cit);
  Probe& p = probes_[from];
  if (p.outstanding == m.req_id) {
    p.outstanding = 0;
    p.missed = 0;
  }
}

void ReincarnationServer::probe_tick() {
  for (const auto& t : probe_targets_) {
    Probe& p = probes_[t];
    Child* child = child_by_name(t);
    if (child == nullptr || !child->server->alive() ||
        child->restart_pending) {
      // Dead or already reincarnating: crash/heartbeat machinery owns it.
      p.outstanding = 0;
      p.missed = 0;
      continue;
    }
    if (p.outstanding != 0) {
      probe_cookies_.erase(p.outstanding);
      ++p.missed;
      p.outstanding = 0;
      if (p.missed >= cfg_.max_missed_probes) {
        // Answers heartbeats but drops work: the silent wedge the paper
        // fixed by hand.  Reset it like a hung child.
        ++stats_[t].probe_resets;
        p.missed = 0;
        child->server->kill();  // triggers child_crashed via report_crash
        continue;
      }
    }
    chan::Message m;
    m.opcode = kWorkProbe;
    m.req_id = next_probe_++;
    sim::Context* ctx = in_handler() ? &cur() : nullptr;
    if (ctx != nullptr && send_to(t, m, *ctx)) {
      p.outstanding = m.req_id;
      probe_cookies_[m.req_id] = t;
    }
  }
  timers()->schedule(cfg_.probe_interval, [this] { probe_tick(); });
}

void ReincarnationServer::tick() {
  for (auto& child : children_) {
    if (child.restart_pending || !child.server->alive()) continue;
    if (child.missed >= cfg_.max_missed_beats) {
      // Unresponsive: reset it (Section V-D: "...resets it when it stops
      // responding to periodic heartbeats").
      ++stats_[child.server->name()].hang_resets;
      child.missed = 0;
      child.server->kill();  // triggers child_crashed via report_crash
      continue;
    }
    ++child.missed;
    Server* s = child.server;
    s->post_heartbeat([this, s] {
      for (auto& c : children_) {
        if (c.server == s) c.missed = 0;
      }
    });
  }
  timers()->schedule(cfg_.heartbeat_interval, [this] { tick(); });
}

void ReincarnationServer::child_crashed(Server* child) {
  ++stats_[child->name()].crashes;
  schedule_restart(child);
}

void ReincarnationServer::schedule_restart(Server* child) {
  for (auto& c : children_) {
    if (c.server != child || c.restart_pending) continue;
    c.restart_pending = true;
    sim().after(cfg_.restart_delay, [this, child] {
      for (auto& c2 : children_) {
        if (c2.server == child) {
          c2.restart_pending = false;
          c2.missed = 0;
        }
      }
      ++stats_[child->name()].restarts;
      child->boot(/*restart=*/true);
    });
  }
}

std::uint64_t ReincarnationServer::total_restarts() const {
  std::uint64_t n = 0;
  for (const auto& [name, s] : stats_) n += s.restarts;
  return n;
}

}  // namespace newtos::servers
