#include "src/servers/reincarnation.h"

namespace newtos::servers {

ReincarnationServer::ReincarnationServer(NodeEnv* env, sim::SimCore* core)
    : ReincarnationServer(env, core, Config{}) {}

ReincarnationServer::ReincarnationServer(NodeEnv* env, sim::SimCore* core,
                                         Config cfg)
    : Server(env, "rs", core), cfg_(cfg) {}

void ReincarnationServer::manage(Server* child) {
  // Idempotent: re-managing a child must not push a duplicate entry, which
  // would double-heartbeat it and double-count its restarts.
  for (const auto& c : children_) {
    if (c.server == child) return;
  }
  children_.push_back(Child{child, 0, false});
  stats_.emplace(child->name(), ChildStats{});
}

void ReincarnationServer::start(bool restart) {
  announce(restart);
  timers()->schedule(cfg_.heartbeat_interval, [this] { tick(); });
}

void ReincarnationServer::on_message(const std::string&, const chan::Message&,
                                     sim::Context&) {}

void ReincarnationServer::tick() {
  for (auto& child : children_) {
    if (child.restart_pending || !child.server->alive()) continue;
    if (child.missed >= cfg_.max_missed_beats) {
      // Unresponsive: reset it (Section V-D: "...resets it when it stops
      // responding to periodic heartbeats").
      ++stats_[child.server->name()].hang_resets;
      child.missed = 0;
      child.server->kill();  // triggers child_crashed via report_crash
      continue;
    }
    ++child.missed;
    Server* s = child.server;
    s->post_heartbeat([this, s] {
      for (auto& c : children_) {
        if (c.server == s) c.missed = 0;
      }
    });
  }
  timers()->schedule(cfg_.heartbeat_interval, [this] { tick(); });
}

void ReincarnationServer::child_crashed(Server* child) {
  ++stats_[child->name()].crashes;
  schedule_restart(child);
}

void ReincarnationServer::schedule_restart(Server* child) {
  for (auto& c : children_) {
    if (c.server != child || c.restart_pending) continue;
    c.restart_pending = true;
    sim().after(cfg_.restart_delay, [this, child] {
      for (auto& c2 : children_) {
        if (c2.server == child) {
          c2.restart_pending = false;
          c2.missed = 0;
        }
      }
      ++stats_[child->name()].restarts;
      child->boot(/*restart=*/true);
    });
  }
}

std::uint64_t ReincarnationServer::total_restarts() const {
  std::uint64_t n = 0;
  for (const auto& [name, s] : stats_) n += s.restarts;
  return n;
}

}  // namespace newtos::servers
