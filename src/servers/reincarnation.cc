#include "src/servers/reincarnation.h"

#include <algorithm>

#include "src/servers/proto.h"

namespace newtos::servers {

namespace {
// Bound on retained probe cookies: late acks older than this horizon carry
// no useful RTT signal any more (their sender was reset long ago).
constexpr std::size_t kMaxProbeCookies = 1024;
}  // namespace

ReincarnationServer::ReincarnationServer(NodeEnv* env, sim::SimCore* core)
    : ReincarnationServer(env, core, Config{}) {}

ReincarnationServer::ReincarnationServer(NodeEnv* env, sim::SimCore* core,
                                         Config cfg)
    : Server(env, "rs", core), cfg_(cfg) {}

void ReincarnationServer::manage(Server* child) {
  // Idempotent: re-managing a child must not push a duplicate entry, which
  // would double-heartbeat it and double-count its restarts.
  for (const auto& c : children_) {
    if (c.server == child) return;
  }
  children_.push_back(Child{child, 0, false, 0, 0, 0});
  stats_.emplace(child->name(), ChildStats{});
}

void ReincarnationServer::set_probe_targets(
    std::vector<std::string> targets) {
  probe_targets_ = std::move(targets);
}

ReincarnationServer::Child* ReincarnationServer::child_by_name(
    const std::string& name) {
  for (auto& c : children_) {
    if (c.server->name() == name) return &c;
  }
  return nullptr;
}

void ReincarnationServer::start(bool restart) {
  if (probes_enabled()) {
    for (const auto& t : probe_targets_) {
      expose_in_queue(t, 64);
      connect_out(t);
    }
  }
  announce(restart);
  timers()->schedule(cfg_.heartbeat_interval, [this] { tick(); });
  if (probes_enabled() && !probe_targets_.empty()) {
    timers()->schedule(cfg_.probe_interval, [this] { probe_tick(); });
  }
}

void ReincarnationServer::escalate(Child& child,
                                   std::uint64_t ChildStats::* counter) {
  ChildStats& s = stats_[child.server->name()];
  ++(s.*counter);
  const sim::Time now = sim().now();
  s.detect_ms = child.last_ok > 0 && now > child.last_ok
                    ? static_cast<double>(now - child.last_ok) /
                          sim::kMillisecond
                    : 0.0;
  child.missed = 0;
  child.server->kill();  // triggers child_crashed via report_crash
}

void ReincarnationServer::on_message(const std::string& from,
                                     const chan::Message& m, sim::Context&) {
  if (m.opcode != kWorkProbeAck) return;
  auto cit = probe_cookies_.find(m.req_id);
  if (cit == probe_cookies_.end() || cit->second.target != from) return;
  const sim::Time rtt = sim().now() - cit->second.sent_at;
  probe_cookies_.erase(cit);
  Probe& p = probes_[from];
  if (p.outstanding == m.req_id) {
    p.outstanding = 0;
    p.missed = 0;
  }
  Child* child = child_by_name(from);
  if (child != nullptr) child->last_ok = sim().now();

  // Slowdown rung: the child answers — but late.  The first samples seed
  // the EWMA unconditionally; after that only healthy acks feed it, so a
  // slowed-down server cannot drag its own SLO up.
  if (cfg_.slo_factor <= 0.0) return;
  const bool warmed = p.samples >= 4;
  const double slo =
      std::max(static_cast<double>(cfg_.slo_floor),
               cfg_.slo_factor * p.ewma);
  if (warmed && static_cast<double>(rtt) > slo) {
    if (++p.slo_strikes >= cfg_.slo_strikes && child != nullptr &&
        child->server->alive() && !child->restart_pending) {
      p.slo_strikes = 0;
      escalate(*child, &ChildStats::slowdown_resets);
    }
    return;
  }
  p.slo_strikes = 0;
  p.ewma = p.samples == 0
               ? static_cast<double>(rtt)
               : p.ewma * 0.875 + static_cast<double>(rtt) * 0.125;
  ++p.samples;
}

void ReincarnationServer::probe_tick() {
  for (const auto& t : probe_targets_) {
    Probe& p = probes_[t];
    Child* child = child_by_name(t);
    if (child == nullptr || !child->server->alive() ||
        child->restart_pending) {
      // Dead or already reincarnating: crash/heartbeat machinery owns it.
      p.outstanding = 0;
      p.missed = 0;
      p.slo_strikes = 0;
      continue;
    }
    if (p.outstanding != 0) {
      // The cookie stays in probe_cookies_: a late ack is the slowdown
      // signal, not garbage.  The map is bounded below.
      ++p.missed;
      p.outstanding = 0;
      if (p.missed >= cfg_.max_missed_probes) {
        // Answers heartbeats but drops work: the silent wedge the paper
        // fixed by hand.  Reset it like a hung child.
        p.missed = 0;
        escalate(*child, &ChildStats::probe_resets);
        continue;
      }
    }
    chan::Message m;
    m.opcode = kWorkProbe;
    m.req_id = next_probe_++;
    sim::Context* ctx = in_handler() ? &cur() : nullptr;
    if (ctx != nullptr && send_to(t, m, *ctx)) {
      p.outstanding = m.req_id;
      probe_cookies_[m.req_id] = SentProbe{t, sim().now()};
      while (probe_cookies_.size() > kMaxProbeCookies) {
        probe_cookies_.erase(probe_cookies_.begin());  // oldest cookie first
      }
    }
  }
  timers()->schedule(cfg_.probe_interval, [this] { probe_tick(); });
}

void ReincarnationServer::tick() {
  for (auto& child : children_) {
    if (child.restart_pending || !child.server->alive()) continue;
    if (child.missed >= cfg_.max_missed_beats) {
      // Unresponsive: reset it (Section V-D: "...resets it when it stops
      // responding to periodic heartbeats").
      escalate(child, &ChildStats::hang_resets);
      continue;
    }
    ++child.missed;
    Server* s = child.server;
    s->post_heartbeat([this, s] {
      for (auto& c : children_) {
        if (c.server == s) {
          c.missed = 0;
          c.last_ok = sim().now();
        }
      }
    });
  }
  timers()->schedule(cfg_.heartbeat_interval, [this] { tick(); });
}

void ReincarnationServer::child_crashed(Server* child) {
  ++stats_[child->name()].crashes;
  schedule_restart(child);
}

void ReincarnationServer::schedule_restart(Server* child) {
  for (auto& c : children_) {
    if (c.server != child || c.restart_pending) continue;
    c.restart_pending = true;
    sim::Time delay = cfg_.restart_delay;
    if (cfg_.restart_budget > 0) {
      const sim::Time now = sim().now();
      if (c.last_restart != 0 && now - c.last_restart > cfg_.budget_window)
        c.recent_restarts = 0;
      c.last_restart = now;
      ++c.recent_restarts;
      // Exponential backoff: the Nth restart inside the window waits
      // 2^(N-1) times the exec+init delay, capped.
      for (int i = 1; i < c.recent_restarts && delay < cfg_.backoff_cap; ++i)
        delay *= 2;
      delay = std::min(delay, cfg_.backoff_cap);
      if (c.recent_restarts > cfg_.restart_budget) {
        // Crash loop: quarantine.  The child stays down for a full budget
        // window; its peers already treat a down peer gracefully (classic
        // IP path, dead-replica queue drains), so the stack degrades
        // instead of flapping.
        delay = cfg_.budget_window;
      }
      backoff_total_ += delay - cfg_.restart_delay;
    }
    sim().after(delay, [this, child] {
      for (auto& c2 : children_) {
        if (c2.server == child) {
          c2.restart_pending = false;
          c2.missed = 0;
        }
      }
      ++stats_[child->name()].restarts;
      child->boot(/*restart=*/true);
    });
  }
}

std::uint64_t ReincarnationServer::total_restarts() const {
  std::uint64_t n = 0;
  for (const auto& [name, s] : stats_) n += s.restarts;
  return n;
}

}  // namespace newtos::servers
