#include "src/servers/stack_server.h"

#include <cstdlib>
#include <cstring>

#include "src/net/pbuf.h"

namespace newtos::servers {

StackServer::StackServer(NodeEnv* env, sim::SimCore* core, Config cfg,
                         std::vector<drv::SimNic*> nics)
    : Server(env, kStackName, core),
      cfg_(std::move(cfg)),
      nics_(std::move(nics)) {}

StackServer::~StackServer() {
  drop_engine(tcp_);
  drop_engine(udp_);
  release_in_flight(pool_, drv_descs_);
}

int StackServer::ifindex_of(const std::string& driver) {
  return std::atoi(driver.c_str() + 3);
}

drv::SimNic* StackServer::nic_of(int ifindex) {
  for (std::size_t i = 0; i < cfg_.ifindexes.size(); ++i) {
    if (cfg_.ifindexes[i] == ifindex && i < nics_.size()) return nics_[i];
  }
  return nullptr;
}

void StackServer::build_engines() {
  const auto& costs = sim().costs();

  if (cfg_.use_pf) pf_ = std::make_unique<net::PfEngine>(clock());
  if (pf_) pf_->set_rules(cfg_.rules);

  net::IpEngine::Env ie;
  ie.clock = clock();
  ie.timers = timers();
  ie.pools = env().pools;
  ie.hdr_pool = pool_;
  ie.rx_pool = rx_pool_;
  ie.csum_offload = cfg_.csum_offload;
  ie.send_frame = [this](int ifindex, net::TxFrame&& frame,
                         std::uint64_t cookie) {
    sim::Context& ctx = cur();
    charge(ctx, sim().costs().drv_packet_proc / 4);  // ring doorbell etc.
    if (cfg_.inline_drivers) {
      drv::SimNic* nic = nic_of(ifindex);
      if (nic == nullptr) return;
      auto& backlog = tx_backlog_[ifindex];
      if (!backlog.empty() || nic->tx_ring_free() == 0) {
        if (backlog.size() >= 2048) {
          ip_->tx_done(cookie, false);  // shed load, never block
          return;
        }
        backlog.emplace_back(std::move(frame), cookie);
        return;
      }
      nic->tx_post(std::move(frame), cookie);
      return;
    }
    chan::RichPtr desc =
        net::pack_chain(*pool_, frame.header, frame.payload, frame.offload);
    if (!desc.valid()) return;
    auto old = drv_descs_.find(cookie);
    if (old != drv_descs_.end()) {
      pool_->release(old->second);
      drv_descs_.erase(old);
    }
    chan::Message m;
    m.opcode = kDrvTx;
    m.req_id = cookie;
    m.ptr = desc;
    if (!send_to(driver_name(ifindex), m, ctx)) {
      pool_->release(desc);
      return;
    }
    drv_descs_.emplace(cookie, desc);
  };
  if (pf_) {
    // In-process packet filter: immediate verdict, no hop.
    ie.pf_check = [this, &costs](const net::PfQuery& q,
                                 std::uint64_t cookie) {
      const auto verdict = pf_->check(q);
      charge(cur(), costs.pf_packet_proc +
                        verdict.rules_walked * costs.pf_rule_cost);
      ip_->pf_verdict(cookie, verdict.action == net::PfAction::Pass);
    };
  }
  ie.deliver_tcp = [this, &costs](net::L4Packet&& pkt) {
    charge(cur(), pkt.l4_length > net::kTcpHeaderLen ? costs.tcp_segment_proc
                                                     : costs.tcp_ack_proc);
    charge(cur(), env().knobs.legacy_per_packet);
    tcp_->input(std::move(pkt));
  };
  ie.deliver_udp = [this, &costs](net::L4Packet&& pkt) {
    charge(cur(), costs.udp_packet_proc);
    charge(cur(), env().knobs.legacy_per_packet);
    udp_->input(std::move(pkt));
  };
  ie.seg_done = [this](std::uint64_t l4_cookie, bool sent) {
    if (l4_cookie & kUdpTag) {
      udp_->seg_done(l4_cookie & ~kUdpTag, sent);
    } else {
      tcp_->seg_done(l4_cookie, sent);
    }
  };
  ip_ = std::make_unique<net::IpEngine>(std::move(ie), cfg_.ip);

  auto src_for = [this](net::Ipv4Addr dst) {
    for (const auto& i : cfg_.ip.interfaces) {
      if (i.subnet.contains(dst)) return i.addr;
    }
    return cfg_.ip.interfaces.empty() ? net::Ipv4Addr{}
                                      : cfg_.ip.interfaces.front().addr;
  };

  net::TcpEngine::Env te;
  te.clock = clock();
  te.timers = timers();
  te.pools = env().pools;
  te.buf_pool = pool_;
  te.src_for = src_for;
  te.output = [this, &costs](net::TxSeg&& seg, std::uint64_t cookie) {
    charge(cur(), costs.tcp_segment_proc + costs.ip_packet_proc +
                      env().knobs.legacy_per_packet);
    if (!cfg_.csum_offload) charge(cur(), costs.checksum_cost(seg.total_len()));
    net::TxSeg s = std::move(seg);
    s.offload.tso = s.offload.tso && env().knobs.tso;
    ip_->output(std::move(s), cookie);
  };
  te.rx_done = [this](const chan::RichPtr& frame) { ip_->rx_done(frame); };
  te.notify = [this](net::SockId s, net::TcpEvent ev) {
    if (env().sock_event)
      env().sock_event(0, 'T', s, static_cast<std::uint8_t>(ev));
  };
  tcp_ = std::make_unique<net::TcpEngine>(std::move(te), cfg_.tcp);

  net::UdpEngine::Env ue;
  ue.clock = clock();
  ue.pools = env().pools;
  ue.buf_pool = pool_;
  ue.src_for = src_for;
  ue.output = [this, &costs](net::TxSeg&& seg, std::uint64_t cookie) {
    charge(cur(), costs.ip_packet_proc + env().knobs.legacy_per_packet);
    if (!cfg_.csum_offload) charge(cur(), costs.checksum_cost(seg.total_len()));
    ip_->output(std::move(seg), cookie | kUdpTag);
  };
  ue.rx_done = [this](const chan::RichPtr& frame) { ip_->rx_done(frame); };
  ue.notify_readable = [this](net::SockId s) {
    if (env().sock_event) env().sock_event(0, 'U', s, 0);
  };
  udp_ = std::make_unique<net::UdpEngine>(std::move(ue));
}

void StackServer::install_inline_nic_handlers() {
  const std::uint32_t inc = incarnation();
  for (std::size_t i = 0; i < nics_.size(); ++i) {
    drv::SimNic* nic = nics_[i];
    const int ifindex = cfg_.ifindexes[i];
    nic->set_tx_done([this, inc, nic, ifindex](std::uint64_t cookie,
                                                bool ok) {
      if (incarnation() != inc) return;
      post_control(
          [this, cookie, ok, nic, ifindex](sim::Context&) {
            auto& backlog = tx_backlog_[ifindex];
            while (!backlog.empty() && nic->tx_ring_free() > 0) {
              auto [frame, pending_cookie] = std::move(backlog.front());
              backlog.pop_front();
              nic->tx_post(std::move(frame), pending_cookie);
            }
            if (ip_) ip_->tx_done(cookie, ok);
          },
          100);
    });
    nic->set_rx([this, inc, ifindex](chan::RichPtr buf, std::uint32_t len) {
      if (incarnation() != inc) return;
      post_control(
          [this, ifindex, buf, len](sim::Context& ctx) {
            charge(ctx, sim().costs().drv_packet_proc +
                            sim().costs().ip_packet_proc);
            if (ip_ == nullptr) return;
            chan::RichPtr frame = buf;
            frame.length = len;
            int& posted = posted_[ifindex];
            if (posted > 0) --posted;
            ip_->input(ifindex, frame);
            post_rx_buffers(ifindex, ctx);
          },
          100);
    });
    nic->set_link_change([this, inc, ifindex](bool up) {
      if (incarnation() != inc) return;
      post_control(
          [this, ifindex, up](sim::Context& ctx) {
            if (up) {
              posted_[ifindex] = 0;
              post_rx_buffers(ifindex, ctx);
              if (tcp_) tcp_->on_path_restored();
            }
          },
          50);
    });
  }
}

void StackServer::post_rx_buffers(int ifindex, sim::Context& ctx) {
  int& posted = posted_[ifindex];
  while (posted < cfg_.rx_buffers_per_nic) {
    chan::RichPtr buf = rx_pool_->alloc(cfg_.rx_buf_size);
    if (!buf.valid()) return;
    if (cfg_.inline_drivers) {
      drv::SimNic* nic = nic_of(ifindex);
      if (nic == nullptr || !nic->rx_post(buf)) {
        rx_pool_->release(buf);
        return;
      }
    } else {
      chan::Message m;
      m.opcode = kDrvRxBuf;
      m.ptr = buf;
      if (!send_to(driver_name(ifindex), m, ctx)) {
        rx_pool_->release(buf);
        return;
      }
    }
    ++posted;
  }
}

void StackServer::start(bool restart) {
  pool_ = env().get_pool("stack.buf", 48u << 20);
  rx_pool_ = env().get_pool("stack.rx", 32u << 20);

  std::vector<std::string> peers = {kStoreName, kSyscallName};
  if (!cfg_.inline_drivers) {
    for (int ifindex : cfg_.ifindexes) peers.push_back(driver_name(ifindex));
  }
  for (const auto& p : peers) {
    expose_in_queue(p, 1024);
    connect_out(p);
  }

  build_engines();
  if (cfg_.inline_drivers) {
    install_inline_nic_handlers();
    post_control([this](sim::Context& ctx) {
      for (int ifindex : cfg_.ifindexes) post_rx_buffers(ifindex, ctx);
    });
  }

  if (restart) {
    restore_replies_expected_ = 4;
    post_control([this](sim::Context& ctx) {
      for (std::uint32_t key :
           {kKeyIpConfig, kKeyUdpSockets, kKeyTcpListeners, kKeyPfRules}) {
        chan::Message m;
        m.opcode = kStoreGet;
        m.arg0 = key;
        m.req_id = request_db().add(kStoreName, key, {});
        if (!send_to(kStoreName, m, ctx)) --restore_replies_expected_;
      }
      if (restore_replies_expected_ <= 0) announce(true);
    });
  } else {
    post_control([this](sim::Context& ctx) {
      store_state(ctx);
      announce(false);
    });
  }
}

void StackServer::on_killed() {
  tx_backlog_.clear();
  pf_.reset();
  // The dying process cannot send done-reports; queued receive frames go
  // straight back to their owning pool (ip_ may already be gone when the
  // engine destructors run).  In-flight descriptors leak, bounded per crash.
  drop_engine(tcp_);
  drop_engine(udp_);
  ip_.reset();
  drv_descs_.clear();
  posted_.clear();
}

void StackServer::save_one(std::uint32_t key,
                           const std::vector<std::byte>& bytes,
                           sim::Context& ctx) {
  if (bytes.empty()) return;
  chan::RichPtr chunk = pool_->alloc(static_cast<std::uint32_t>(bytes.size()));
  if (!chunk.valid()) return;
  auto view = pool_->write_view(chunk);
  std::copy(bytes.begin(), bytes.end(), view.begin());
  chan::Message m;
  m.opcode = kStorePut;
  m.arg0 = key;
  m.req_id = request_db().add(kStoreName, 0, {});
  m.ptr = chunk;
  if (!send_to(kStoreName, m, ctx)) pool_->release(chunk);
}

void StackServer::store_state(sim::Context& ctx) {
  save_one(kKeyIpConfig, ip_->config().serialize(), ctx);
  save_one(kKeyUdpSockets, net::UdpEngine::serialize_socks(udp_->snapshot()),
           ctx);
  save_one(kKeyTcpListeners,
           net::TcpEngine::serialize_listeners(tcp_->listeners()), ctx);
  if (pf_)
    save_one(kKeyPfRules, net::PfEngine::serialize_rules(pf_->rules()), ctx);
}

void StackServer::handle_sock_request(
    char proto, const chan::Message& m, sim::Context& ctx,
    const std::function<void(const chan::Message&)>& reply) {
  charge(ctx, sim().costs().socket_op + env().knobs.legacy_per_packet / 4);
  chan::Message r;
  r.opcode = kSockReply;
  r.req_id = m.req_id;
  r.socket = m.socket;
  if (proto == 'T') {
    switch (m.opcode) {
      case kSockOpen:
        r.arg0 = tcp_->open();
        r.socket = static_cast<std::uint32_t>(r.arg0);
        break;
      case kSockBind:
        r.arg0 = tcp_->bind(m.socket,
                            net::Ipv4Addr{static_cast<std::uint32_t>(m.arg0)},
                            static_cast<std::uint16_t>(m.arg1))
                     ? 1
                     : 0;
        break;
      case kSockListen:
        r.arg0 = tcp_->listen(m.socket, static_cast<int>(m.arg0)) ? 1 : 0;
        break;
      case kSockConnect:
        r.arg0 = tcp_->connect(m.socket,
                               net::Ipv4Addr{static_cast<std::uint32_t>(m.arg0)},
                               static_cast<std::uint16_t>(m.arg1))
                     ? 1
                     : 0;
        break;
      case kSockSend:
        r.arg0 = tcp_->send(m.socket, m.ptr) ? 1 : 0;
        break;
      case kSockClose:
        r.arg0 = tcp_->close(m.socket) ? 1 : 0;
        break;
      default:
        r.arg0 = 0;
    }
  } else {
    switch (m.opcode) {
      case kSockOpen:
        r.arg0 = udp_->open();
        r.socket = static_cast<std::uint32_t>(r.arg0);
        break;
      case kSockBind:
        r.arg0 = udp_->bind(m.socket,
                            net::Ipv4Addr{static_cast<std::uint32_t>(m.arg0)},
                            static_cast<std::uint16_t>(m.arg1))
                     ? 1
                     : 0;
        break;
      case kSockConnect:
        r.arg0 = udp_->connect(m.socket,
                               net::Ipv4Addr{static_cast<std::uint32_t>(m.arg0)},
                               static_cast<std::uint16_t>(m.arg1))
                     ? 1
                     : 0;
        break;
      case kSockSendTo:
        charge(ctx, sim().costs().udp_packet_proc);
        r.arg0 = udp_->sendto(m.socket, m.ptr,
                              net::Ipv4Addr{static_cast<std::uint32_t>(m.arg0)},
                              static_cast<std::uint16_t>(m.arg1))
                     ? 1
                     : 0;
        break;
      case kSockClose:
        udp_->close(m.socket);
        r.arg0 = 1;
        break;
      default:
        r.arg0 = 0;
    }
  }
  reply(r);
}

void StackServer::on_message(const std::string& from, const chan::Message& m,
                             sim::Context& ctx) {
  const auto& costs = sim().costs();
  switch (m.opcode) {
    case kDrvTxDone: {
      auto it = drv_descs_.find(m.req_id);
      if (it != drv_descs_.end()) {
        pool_->release(it->second);
        drv_descs_.erase(it);
      }
      if (ip_) ip_->tx_done(m.req_id, m.arg0 != 0);
      return;
    }
    case kDrvRx: {
      charge(ctx, costs.ip_packet_proc + env().knobs.legacy_per_packet);
      if (!cfg_.csum_offload) charge(ctx, costs.checksum_cost(m.ptr.length));
      const int ifindex = ifindex_of(from);
      auto it = posted_.find(ifindex);
      if (it != posted_.end() && it->second > 0) --it->second;
      if (ip_) ip_->input(ifindex, m.ptr);
      post_rx_buffers(ifindex, ctx);
      return;
    }
    case kDrvRxBurst: {
      // A coalesced burst from a channel-attached driver.  The combined
      // stack has no further hop to aggregate for, so each frame takes the
      // classic in-process path; the burst still amortized the driver's
      // kernel message and this server's wakeup.
      const int ifindex = ifindex_of(from);
      const auto recs = parse_records<WireRxFrame>(env().pools->read(m.ptr));
      env().pools->release(m.ptr);
      auto it = posted_.find(ifindex);
      for (const auto& rec : recs) {
        charge(ctx, costs.ip_packet_proc + env().knobs.legacy_per_packet);
        if (!cfg_.csum_offload) {
          charge(ctx, costs.checksum_cost(rec.frame.length));
        }
        if (it != posted_.end() && it->second > 0) --it->second;
        if (ip_) ip_->input(ifindex, rec.frame);
      }
      post_rx_buffers(ifindex, ctx);
      return;
    }
    case kDrvLink:
      if (m.arg0 != 0) {
        posted_[ifindex_of(from)] = 0;
        post_rx_buffers(ifindex_of(from), ctx);
        if (tcp_) tcp_->on_path_restored();
      }
      return;
    case kStoreAck:
      request_db().complete(m.req_id);
      return;
    case kStoreReply: {
      std::uint64_t key = 0;
      if (!request_db().complete(m.req_id, &key)) return;
      if (m.arg0 != 0) {
        auto bytes = env().pools->read(m.ptr);
        switch (key) {
          case kKeyIpConfig:
            if (auto cfg = net::IpConfig::parse(bytes)) {
              ip_->set_config(std::move(*cfg));
            }
            break;
          case kKeyUdpSockets:
            if (auto socks = net::UdpEngine::parse_socks(bytes)) {
              udp_->restore(*socks);
            }
            break;
          case kKeyTcpListeners:
            if (auto recs = net::TcpEngine::parse_listeners(bytes)) {
              for (const auto& rec : *recs) tcp_->restore_listener(rec);
            }
            break;
          case kKeyPfRules:
            if (pf_) {
              if (auto rules = net::PfEngine::parse_rules(bytes)) {
                pf_->set_rules(std::move(*rules));
              }
            }
            break;
          default:
            break;
        }
        chan::Message rel;
        rel.opcode = kStoreRelease;
        rel.ptr = m.ptr;
        send_to(kStoreName, rel, ctx);
      }
      if (--restore_replies_expected_ == 0) announce(true);
      return;
    }
    case kSockBatch: {
      // A packed submission-queue flush, possibly mixing TCP and UDP ops.
      const auto ops = parse_sock_batch(env().pools->read(m.ptr));
      run_sock_batch(ops, [&, this](char proto, const chan::Message& sm,
                                    const auto& note_open) {
        handle_sock_request(proto, sm, ctx,
                            [&, this](const chan::Message& r) {
                              note_open(r);
                              send_to(from, r, ctx);
                            });
      });
      return;
    }
    default:
      // Socket control over channels (from the SYSCALL server); the proto is
      // carried in flags (0 = TCP, 1 = UDP).
      if (m.opcode >= kSockOpen && m.opcode <= kSockClose) {
        handle_sock_request((m.flags & 2) ? 'U' : 'T', m, ctx,
                            [this, from, &ctx](const chan::Message& r) {
                              send_to(from, r, ctx);
                            });
      }
      return;
  }
}

void StackServer::on_peer_up(const std::string& peer, bool restarted,
                             sim::Context& ctx) {
  if (peer.rfind("drv", 0) == 0) {
    const int ifindex = ifindex_of(peer);
    if (restarted) {
      posted_[ifindex] = 0;
      if (ip_) ip_->resubmit_tx(ifindex);
    }
    post_rx_buffers(ifindex, ctx);
    return;
  }
  if (peer == kStoreName && restarted) store_state(ctx);
}

}  // namespace newtos::servers
