#include "src/servers/pf_server.h"

#include <cstring>

namespace newtos::servers {

PfServer::PfServer(NodeEnv* env, sim::SimCore* core,
                   std::vector<net::PfRule> rules,
                   std::vector<std::string> transports)
    : Server(env, kPfName, core),
      initial_rules_(std::move(rules)),
      transports_(std::move(transports)) {}

void PfServer::start(bool restart) {
  pool_ = env().get_pool("pf.buf", 2u << 20);
  std::vector<std::string> peers = {kIpName, kStoreName};
  peers.insert(peers.end(), transports_.begin(), transports_.end());
  // Supervision probes us directly; the generic kWorkProbe handler already
  // acks to whoever asked.
  if (env().knobs.supervision) peers.push_back(kRsName);
  for (const auto& p : peers) {
    expose_in_queue(p, 1024);
    connect_out(p);
  }
  engine_ = std::make_unique<net::PfEngine>(clock());
  if (restart) {
    post_control([this](sim::Context& ctx) {
      chan::Message m;
      m.opcode = kStoreGet;
      m.arg0 = kKeyPfRules;
      m.req_id = request_db().add(kStoreName, 0, {});
      if (!send_to(kStoreName, m, ctx)) {
        engine_->set_rules(initial_rules_);
        announce(true);
      }
    });
  } else {
    engine_->set_rules(initial_rules_);
    post_control([this](sim::Context& ctx) {
      save_rules(ctx);
      announce(false);
    });
  }
}

void PfServer::on_killed() { engine_.reset(); }

void PfServer::broadcast_cache_inval(sim::Context& ctx) {
  chan::Message m;
  m.opcode = kPfCacheInval;
  for (const auto& peer : transports_) send_to(peer, m, ctx);
}

void PfServer::apply_rules(std::vector<net::PfRule> rules) {
  post_control([this, rules = std::move(rules)](sim::Context& ctx) mutable {
    if (engine_ == nullptr) return;
    engine_->set_rules(std::move(rules));
    save_rules(ctx);
    // Shard-local verdict caches are judging with the old rules until this
    // lands; the broadcast must go out before any further verdict is
    // cached against the new set.
    broadcast_cache_inval(ctx);
  });
}

void PfServer::save_rules(sim::Context& ctx) {
  const auto bytes = net::PfEngine::serialize_rules(engine_->rules());
  chan::RichPtr chunk =
      pool_->alloc(static_cast<std::uint32_t>(bytes.size()));
  if (!chunk.valid()) return;
  auto view = pool_->write_view(chunk);
  std::copy(bytes.begin(), bytes.end(), view.begin());
  chan::Message m;
  m.opcode = kStorePut;
  m.arg0 = kKeyPfRules;
  m.req_id = request_db().add(kStoreName, 0, {});
  m.ptr = chunk;
  if (!send_to(kStoreName, m, ctx)) pool_->release(chunk);
}

void PfServer::request_conn_lists(sim::Context& ctx) {
  // Rebuild the connection table from every transport replica
  // (Section V-D); each shard answers with its own flows and the replies
  // merge in the engine.
  for (const auto& peer : transports_) {
    chan::Message m;
    m.opcode = kConnList;
    m.req_id = request_db().add(peer, 0, {});
    send_to(peer, m, ctx);
  }
}

void PfServer::on_message(const std::string& from, const chan::Message& m,
                          sim::Context& ctx) {
  switch (m.opcode) {
    case kPfCheck: {
      const net::PfQuery q = parse_pf_check(m);
      const auto verdict = engine_->check(q);
      charge(ctx, sim().costs().pf_packet_proc +
                      verdict.rules_walked * sim().costs().pf_rule_cost);
      chan::Message r;
      r.opcode = kPfVerdict;
      r.req_id = m.req_id;
      r.arg0 = verdict.action == net::PfAction::Pass ? 1 : 0;
      // The verdict goes back to whoever asked: historically always IP,
      // now also any transport shard running the RSS fast path.
      send_to(from, r, ctx);
      return;
    }
    case kPfCheckBatch: {
      // Every query of one RX burst in one message, and every verdict in
      // one reply: the rule/state walk is still charged per query, the IPC
      // is paid once per burst on both legs.
      const auto recs = parse_records<WirePfQuery>(env().pools->read(m.ptr));
      env().pools->release(m.ptr);  // IP's query array, consumed
      std::vector<WirePfVerdict> verdicts;
      verdicts.reserve(recs.size());
      for (const auto& rec : recs) {
        const auto verdict = engine_->check(rec.query);
        charge(ctx, sim().costs().pf_packet_proc +
                        verdict.rules_walked * sim().costs().pf_rule_cost);
        verdicts.push_back(WirePfVerdict{
            rec.cookie, verdict.action == net::PfAction::Pass ? 1u : 0u, 0});
      }
      if (verdicts.empty()) return;
      chan::RichPtr desc =
          pack_records<WirePfVerdict>(*pool_, verdicts);
      if (desc.valid()) {
        chan::Message r;
        r.opcode = kPfVerdictBatch;
        r.ptr = desc;
        r.arg0 = verdicts.size();
        if (send_to(kIpName, r, ctx)) return;
        pool_->release(desc);
      }
      // Pool exhausted or IP unreachable: per-verdict replies (IP applies
      // them one by one; unanswered queries are resubmitted on restarts).
      for (const auto& v : verdicts) {
        chan::Message r;
        r.opcode = kPfVerdict;
        r.req_id = v.cookie;
        r.arg0 = v.allow;
        send_to(kIpName, r, ctx);
      }
      return;
    }
    case kWorkProbe: {
      // The synthetic echo's last hop (rs -> tcpN -> ip -> here): a packet
      // filter that is alive and processing pays one packet's worth of
      // work and acks back up the chain.  A direct supervision probe pays
      // the canary quantum instead — and acks only after it is paid — so a
      // slowed-down filter answers measurably late even when the verdict
      // cache has absorbed its load.
      if (from == kRsName) {
        charge(ctx, sim().costs().probe_canary);
        reply_after_charges([this, cookie = m.req_id](sim::Context& c) {
          chan::Message ack;
          ack.opcode = kWorkProbeAck;
          ack.req_id = cookie;
          ack.arg0 = 1;
          send_to(kRsName, ack, c);
        });
        return;
      }
      charge(ctx, sim().costs().pf_packet_proc);
      chan::Message ack;
      ack.opcode = kWorkProbeAck;
      ack.req_id = m.req_id;
      ack.arg0 = 1;
      send_to(from, ack, ctx);
      return;
    }
    case kConnListReply: {
      request_db().complete(m.req_id);
      if (m.ptr.valid()) {
        auto bytes = env().pools->read(m.ptr);
        if (bytes.size() >= 4) {
          std::uint32_t n;
          std::memcpy(&n, bytes.data(), 4);
          if (bytes.size() >= 4 + n * sizeof(net::PfStateKey)) {
            std::vector<net::PfStateKey> keys(n);
            if (n > 0)
              std::memcpy(keys.data(), bytes.data() + 4,
                          n * sizeof(net::PfStateKey));
            engine_->restore_states(keys);
          }
        }
        chan::Message rel;
        rel.opcode = kStoreRelease;
        rel.ptr = m.ptr;
        send_to(from, rel, ctx);
      }
      return;
    }
    case kStoreAck:
      request_db().complete(m.req_id);
      return;
    case kStoreReply: {
      if (!request_db().complete(m.req_id)) return;
      bool restored = false;
      if (m.arg0 != 0) {
        auto rules = net::PfEngine::parse_rules(env().pools->read(m.ptr));
        if (rules) {
          engine_->set_rules(std::move(*rules));
          restored = true;
        }
        chan::Message rel;
        rel.opcode = kStoreRelease;
        rel.ptr = m.ptr;
        send_to(kStoreName, rel, ctx);
      }
      if (!restored) engine_->set_rules(initial_rules_);
      announce(true);
      request_conn_lists(ctx);
      // A restarted PF cannot vouch for verdicts cached against the dead
      // incarnation's rules.
      broadcast_cache_inval(ctx);
      return;
    }
    default:
      return;
  }
}

void PfServer::on_peer_up(const std::string& peer, bool restarted,
                          sim::Context& ctx) {
  if (peer == kStoreName && restarted) save_rules(ctx);
}

}  // namespace newtos::servers
