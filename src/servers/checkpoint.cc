#include "src/servers/checkpoint.h"

#include <algorithm>
#include <cstring>

#include "src/servers/proto.h"

namespace newtos::servers {

// The page lives in the host replica's own pool; chunk offsets are 64-byte
// aligned, so the header/slot structs overlay the chunk bytes directly —
// these are the "plain stores into shared memory" the design relies on.
CkptPageHdr* CheckpointWriter::hdr(const chan::RichPtr& page) {
  auto view = env_.pool->write_view(page);
  return reinterpret_cast<CkptPageHdr*>(view.data());
}

CkptSndSlot* CheckpointWriter::snd_slots(const chan::RichPtr& page) {
  auto view = env_.pool->write_view(page);
  return reinterpret_cast<CkptSndSlot*>(view.data() + sizeof(CkptPageHdr));
}

CkptRcvSlot* CheckpointWriter::rcv_slots(const chan::RichPtr& page) {
  auto view = env_.pool->write_view(page);
  return reinterpret_cast<CkptRcvSlot*>(view.data() + sizeof(CkptPageHdr) +
                                        kCkptSndSlots * sizeof(CkptSndSlot));
}

void CheckpointWriter::note_borrow(const chan::RichPtr& p,
                                   std::uint32_t sock) {
  chan::Pool* pool = env_.pools->find(p.pool);
  if (pool != nullptr) pool->note_borrow(p, ckpt_borrower(sock));
}

void CheckpointWriter::note_return(const chan::RichPtr& p,
                                   std::uint32_t sock) {
  chan::Pool* pool = env_.pools->find(p.pool);
  if (pool != nullptr) pool->note_return(p, ckpt_borrower(sock));
}

// --- sink ----------------------------------------------------------------------------

bool CheckpointWriter::ckpt_established(const ConnMeta& meta,
                                        const Scalars& s) {
  if (env_.pool == nullptr || recs_.count(meta.sock) != 0) return false;
  chan::RichPtr page = env_.pool->alloc(ckpt_page_bytes());
  if (!page.valid()) return false;  // pool exhausted: run un-checkpointed
  note_borrow(page, meta.sock);

  CkptPageHdr h;
  h.sock = meta.sock;
  h.state = static_cast<std::uint8_t>(s.state);
  h.peer_fin = s.peer_fin ? 1 : 0;
  h.fin_queued = s.fin_queued ? 1 : 0;
  h.accept_pending = meta.accept_pending ? 1 : 0;
  h.local = meta.local.value;
  h.peer = meta.peer.value;
  h.lport = meta.lport;
  h.pport = meta.pport;
  h.parent_listener = meta.parent_listener;
  h.snd_una = s.snd_una;
  h.snd_wnd = s.snd_wnd;
  h.rcv_nxt = s.rcv_nxt;
  h.cc = s.cc;
  *hdr(page) = h;

  Rec rec;
  rec.page = page;
  rec.last_una = s.snd_una;
  rec.last_rcv = s.rcv_nxt;
  recs_.emplace(meta.sock, rec);
  dir_dirty_ = true;
  mark_dirty(meta.sock);
  env_.charge(80);  // page init: a cache line of stores
  return true;
}

void CheckpointWriter::ckpt_scalars(net::SockId s, const Scalars& sc) {
  auto it = recs_.find(s);
  if (it == recs_.end()) return;
  CkptPageHdr* h = hdr(it->second.page);
  h->state = static_cast<std::uint8_t>(sc.state);
  h->peer_fin = sc.peer_fin ? 1 : 0;
  h->fin_queued = sc.fin_queued ? 1 : 0;
  h->snd_una = sc.snd_una;
  h->snd_wnd = sc.snd_wnd;
  h->rcv_nxt = sc.rcv_nxt;
  h->cc = sc.cc;
  // Journal refresh after every watermark's worth of stream progress (the
  // scalars themselves never ride IPC — only this record refresh does).
  // Re-marking an already-dirty record is deliberate: it re-arms the flush
  // after one whose put was dropped.
  const std::uint32_t progress =
      (sc.snd_una - it->second.last_una) + (sc.rcv_nxt - it->second.last_rcv);
  if (progress >= env_.watermark) mark_dirty(s);
}

void CheckpointWriter::ckpt_sndq_push(net::SockId s,
                                      const chan::RichPtr& chunk,
                                      std::uint32_t seq) {
  auto it = recs_.find(s);
  if (it == recs_.end()) return;
  CkptPageHdr* h = hdr(it->second.page);
  if (h->snd_count >= kCkptSndSlots) {
    // Pathological fragmentation (more queued chunks than slots): revert
    // this connection to the classic non-recoverable behaviour rather than
    // journal a truncated queue.
    ++overflows_;
    drop_rec(s, it);
    env_.drop_checkpoint(s);
    return;
  }
  CkptSndSlot* slots = snd_slots(it->second.page);
  slots[(h->snd_head + h->snd_count) % kCkptSndSlots] =
      CkptSndSlot{chunk, seq, 0};
  ++h->snd_count;
  note_borrow(chunk, s);
}

void CheckpointWriter::ckpt_sndq_pop(net::SockId s,
                                     const chan::RichPtr& chunk) {
  auto it = recs_.find(s);
  if (it == recs_.end()) return;
  CkptPageHdr* h = hdr(it->second.page);
  if (h->snd_count == 0) return;
  note_return(chunk, s);
  h->snd_head = (h->snd_head + 1) % kCkptSndSlots;
  --h->snd_count;
}

void CheckpointWriter::ckpt_rcvq_push(net::SockId s,
                                      const chan::RichPtr& frame,
                                      std::uint16_t off, std::uint16_t len) {
  auto it = recs_.find(s);
  if (it == recs_.end()) return;
  CkptPageHdr* h = hdr(it->second.page);
  if (h->rcv_count >= kCkptRcvSlots) {
    ++overflows_;
    drop_rec(s, it);
    env_.drop_checkpoint(s);
    return;
  }
  CkptRcvSlot* slots = rcv_slots(it->second.page);
  slots[(h->rcv_head + h->rcv_count) % kCkptRcvSlots] =
      CkptRcvSlot{frame, off, len, 0};
  ++h->rcv_count;
  note_borrow(frame, s);
}

void CheckpointWriter::ckpt_rcvq_consume(net::SockId s, std::size_t n) {
  auto it = recs_.find(s);
  if (it == recs_.end()) return;
  CkptPageHdr* h = hdr(it->second.page);
  CkptRcvSlot* slots = rcv_slots(it->second.page);
  std::size_t remaining = n;
  while (remaining > 0 && h->rcv_count > 0) {
    CkptRcvSlot& front = slots[h->rcv_head];
    const std::size_t avail = front.len - h->front_consumed;
    const std::size_t take = std::min(remaining, avail);
    remaining -= take;
    if (take == avail) {
      note_return(front.frame, s);
      h->rcv_head = (h->rcv_head + 1) % kCkptRcvSlots;
      --h->rcv_count;
      h->front_consumed = 0;
    } else {
      h->front_consumed += static_cast<std::uint32_t>(take);
    }
  }
}

void CheckpointWriter::ckpt_accepted(net::SockId s) {
  auto it = recs_.find(s);
  if (it == recs_.end()) return;
  hdr(it->second.page)->accept_pending = 0;
}

void CheckpointWriter::ckpt_destroyed(net::SockId s) {
  auto it = recs_.find(s);
  if (it == recs_.end()) return;
  drop_rec(s, it);
}

void CheckpointWriter::drop_rec(std::uint32_t sock,
                                std::map<std::uint32_t, Rec>::iterator it) {
  // Return every queue loan still on the page (the engine keeps the actual
  // references and releases them through its normal teardown), then free
  // the page itself.
  const chan::RichPtr page = it->second.page;
  CkptPageHdr* h = hdr(page);
  CkptSndSlot* ss = snd_slots(page);
  for (std::uint32_t i = 0; i < h->snd_count; ++i) {
    note_return(ss[(h->snd_head + i) % kCkptSndSlots].chunk, sock);
  }
  CkptRcvSlot* rs = rcv_slots(page);
  for (std::uint32_t i = 0; i < h->rcv_count; ++i) {
    note_return(rs[(h->rcv_head + i) % kCkptRcvSlots].frame, sock);
  }
  h->magic = 0;  // the page is dead even if the journal record lingers
  note_return(page, sock);
  env_.pool->release(page);
  recs_.erase(it);
  dir_dirty_ = true;
  schedule_flush();
}

// --- journal -------------------------------------------------------------------------

void CheckpointWriter::mark_dirty(std::uint32_t sock) {
  auto it = recs_.find(sock);
  if (it == recs_.end()) return;
  it->second.dirty = true;
  schedule_flush();
}

void CheckpointWriter::schedule_flush() {
  if (flush_scheduled_ || !env_.defer) return;
  flush_scheduled_ = true;
  env_.defer([this](sim::Context& ctx) {
    flush_scheduled_ = false;
    flush(ctx);
  });
}

bool CheckpointWriter::put(std::uint32_t key, std::span<const std::byte> value,
                           sim::Context& ctx) {
  chan::RichPtr chunk =
      env_.pool->alloc(static_cast<std::uint32_t>(value.size()));
  if (!chunk.valid()) return false;  // pool exhausted: a later flush retries
  auto view = env_.pool->write_view(chunk);
  std::copy(value.begin(), value.end(), view.begin());
  chan::Message m;
  m.opcode = kStorePut;
  m.arg0 = key;
  m.req_id = env_.new_store_req();
  m.ptr = chunk;
  if (!env_.send_store(m, ctx)) {
    env_.pool->release(chunk);
    return false;  // store down: store_all on its restart also re-seeds
  }
  ++puts_;
  put_bytes_ += value.size();
  return true;
}

void CheckpointWriter::flush(sim::Context& ctx) {
  // Dirty flags only clear when the put actually left: a drop (pool
  // exhausted, store queue full) keeps the state dirty and the next
  // scheduled flush — any transition or watermark crossing — retries, so
  // a journal gap cannot silently become permanent.
  if (dir_dirty_) {
    std::vector<std::uint32_t> socks;
    socks.reserve(recs_.size());
    for (const auto& [sock, rec] : recs_) socks.push_back(sock);
    // Chained paging: socks past one record's capacity spill into
    // continuation pages at kKeyTcpCkptDirBase, each page naming its
    // successor.  A shrink leaves stale pages in the store, but the chain
    // ends where next_key is 0, so a restore never reads them.  The dirty
    // flag clears only when EVERY page's put left — a partial flush (new
    // head, stale tail) is retried, and the restore side tolerates the
    // overlap by deduplicating socks and treating missing records as lost.
    const std::size_t pages =
        socks.empty()
            ? 1
            : (socks.size() + kCkptDirPageSocks - 1) / kCkptDirPageSocks;
    if (pages > 1) dir_overflows_ += pages - 1;
    bool all_put = true;
    for (std::size_t i = 0; i < pages; ++i) {
      const std::uint32_t key =
          i == 0 ? kKeyTcpCkptDir
                 : static_cast<std::uint32_t>(kKeyTcpCkptDirBase + i - 1);
      const std::uint32_t next =
          i + 1 < pages ? static_cast<std::uint32_t>(kKeyTcpCkptDirBase + i)
                        : 0;
      const std::size_t begin = i * kCkptDirPageSocks;
      const std::size_t count =
          std::min<std::size_t>(kCkptDirPageSocks, socks.size() - begin);
      if (!put(key, serialize_dir(std::span(socks).subspan(begin, count), next),
               ctx)) {
        all_put = false;
        break;
      }
    }
    if (all_put) dir_dirty_ = false;
  }
  for (auto& [sock, rec] : recs_) {
    if (!rec.dirty) continue;
    const CkptPageHdr* h = hdr(rec.page);
    CkptStoreRec sr;
    sr.sock = sock;
    sr.page = rec.page;
    sr.snd_una = h->snd_una;
    sr.rcv_nxt = h->rcv_nxt;
    sr.state = h->state;
    sr.cc = h->cc;
    if (!put(ckpt_record_key(sock), serialize_record(sr), ctx)) continue;
    rec.last_una = h->snd_una;
    rec.last_rcv = h->rcv_nxt;
    rec.dirty = false;
  }
}

void CheckpointWriter::store_all(sim::Context& ctx) {
  dir_dirty_ = true;
  for (auto& [sock, rec] : recs_) rec.dirty = true;
  flush(ctx);
}

// --- serialization -------------------------------------------------------------------

std::vector<std::byte> CheckpointWriter::serialize_dir(
    std::span<const std::uint32_t> socks, std::uint32_t next_key) {
  std::vector<std::byte> out(8 + socks.size() * 4);
  const std::uint32_t n = static_cast<std::uint32_t>(socks.size());
  std::memcpy(out.data(), &n, 4);
  std::memcpy(out.data() + 4, &next_key, 4);
  if (n > 0) std::memcpy(out.data() + 8, socks.data(), socks.size() * 4);
  return out;
}

std::optional<CheckpointWriter::DirPage> CheckpointWriter::parse_dir(
    std::span<const std::byte> bytes) {
  if (bytes.size() < 8) return std::nullopt;
  std::uint32_t n = 0;
  DirPage page;
  std::memcpy(&n, bytes.data(), 4);
  std::memcpy(&page.next_key, bytes.data() + 4, 4);
  if (bytes.size() < 8 + static_cast<std::size_t>(n) * 4) return std::nullopt;
  page.socks.resize(n);
  if (n > 0) std::memcpy(page.socks.data(), bytes.data() + 8, n * 4);
  return page;
}

std::vector<std::byte> CheckpointWriter::serialize_record(
    const CkptStoreRec& rec) {
  // v2: the wire-stable v1 core, a version tag, then the CC snapshot.
  std::vector<std::byte> out(kCkptRecV1Bytes + 4 + sizeof rec.cc);
  std::memcpy(out.data(), &rec, kCkptRecV1Bytes);
  std::memcpy(out.data() + kCkptRecV1Bytes, &kCkptRecVersion, 4);
  std::memcpy(out.data() + kCkptRecV1Bytes + 4, &rec.cc, sizeof rec.cc);
  return out;
}

std::optional<CkptStoreRec> CheckpointWriter::parse_record(
    std::span<const std::byte> bytes) {
  if (bytes.size() < kCkptRecV1Bytes) return std::nullopt;
  CkptStoreRec rec;
  std::memcpy(&rec, bytes.data(), kCkptRecV1Bytes);
  // A bare v1 core restores with rec.cc absent (algo 0): the engine falls
  // back to a fresh congestion module.
  if (bytes.size() >= kCkptRecV1Bytes + 4 + sizeof rec.cc) {
    std::uint32_t version = 0;
    std::memcpy(&version, bytes.data() + kCkptRecV1Bytes, 4);
    if (version == kCkptRecVersion) {
      std::memcpy(&rec.cc, bytes.data() + kCkptRecV1Bytes + 4, sizeof rec.cc);
    }
  }
  return rec;
}

// --- restore -------------------------------------------------------------------------

std::optional<net::TcpEngine::RestoredConn> CheckpointWriter::load_page(
    const CkptStoreRec& rec) const {
  if (env_.pool == nullptr || rec.page.pool != env_.pool->id() ||
      !env_.pool->live(rec.page) || rec.page.length < ckpt_page_bytes()) {
    return std::nullopt;
  }
  auto bytes = env_.pool->read_view(rec.page);
  CkptPageHdr h;
  std::memcpy(&h, bytes.data(), sizeof h);
  if (h.magic != kCkptMagic || h.sock != rec.sock ||
      h.snd_count > kCkptSndSlots || h.rcv_count > kCkptRcvSlots) {
    return std::nullopt;
  }

  net::TcpEngine::RestoredConn out;
  out.sock = h.sock;
  out.state = static_cast<net::TcpState>(h.state);
  out.local = net::Ipv4Addr{h.local};
  out.lport = h.lport;
  out.peer = net::Ipv4Addr{h.peer};
  out.pport = h.pport;
  out.snd_una = h.snd_una;
  out.snd_wnd = h.snd_wnd;
  out.rcv_nxt = h.rcv_nxt;
  out.peer_fin = h.peer_fin != 0;
  out.fin_queued = h.fin_queued != 0;
  out.parent_listener = h.parent_listener;
  out.accept_pending = h.accept_pending != 0;
  out.cc = h.cc;

  const std::byte* base = bytes.data() + sizeof(CkptPageHdr);
  for (std::uint32_t i = 0; i < h.snd_count; ++i) {
    CkptSndSlot slot;
    std::memcpy(&slot,
                base + ((h.snd_head + i) % kCkptSndSlots) * sizeof(slot),
                sizeof slot);
    // A stale chunk (its owning pool reset in a concurrent failure) holes
    // the stream: the connection is unrecoverable.
    if (env_.pools->read(slot.chunk).empty()) return std::nullopt;
    out.sndq.push_back(
        net::TcpEngine::RestoredSndChunk{slot.seq, slot.chunk});
  }
  const std::byte* rbase = base + kCkptSndSlots * sizeof(CkptSndSlot);
  for (std::uint32_t i = 0; i < h.rcv_count; ++i) {
    CkptRcvSlot slot;
    std::memcpy(&slot,
                rbase + ((h.rcv_head + i) % kCkptRcvSlots) * sizeof(slot),
                sizeof slot);
    if (env_.pools->read(slot.frame).empty()) return std::nullopt;
    net::TcpEngine::RestoredRcvChunk rc;
    rc.frame = slot.frame;
    rc.offset = slot.off;
    rc.len = slot.len;
    rc.consumed = i == 0 ? static_cast<std::uint16_t>(h.front_consumed) : 0;
    out.rcvq.push_back(rc);
  }
  return out;
}

void CheckpointWriter::adopt(const CkptStoreRec& rec) {
  Rec r;
  r.page = rec.page;
  const CkptPageHdr* h = hdr(rec.page);
  r.last_una = h->snd_una;
  r.last_rcv = h->rcv_nxt;
  r.dirty = true;  // re-journal after the restart
  recs_[rec.sock] = r;
  dir_dirty_ = true;
  schedule_flush();
}

void CheckpointWriter::reclaim_orphan(std::uint32_t sock) {
  for (chan::Pool* pool : env_.pools->all()) {
    pool->reclaim(ckpt_borrower(sock));
  }
}

}  // namespace newtos::servers
