// The IP server: hosts the IP/ICMP/ARP engine, owns the header and receive
// pools, talks to every driver, consults the packet filter for each packet
// and completes transport TX requests (Figure 3).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/ip.h"
#include "src/servers/proto.h"
#include "src/servers/server.h"

namespace newtos::servers {

class IpServer : public Server {
 public:
  struct Config {
    net::IpConfig ip;
    std::vector<int> ifindexes;
    bool use_pf = true;
    bool csum_offload = true;
    int rx_buffers_per_nic = 96;
    std::uint32_t rx_buf_size = 2048;
    // Sharded transport plane: how many TCP/UDP replicas inbound frames
    // are steered across (by 4-tuple hash).  1 = the classic single pair.
    int tcp_shards = 1;
    int udp_shards = 1;
    // Receive-side aggregation at the IP -> TCP boundary: merge in-order
    // same-flow TCP segments of a coalesced RX burst into one kL4RxAgg
    // super-segment.  Off by default; meaningful only when the NIC
    // coalesces (kDrvRxBurst is the only producer of bursts).
    bool gro = false;
    // RSS queue pairs per NIC.  IP posts rx_buffers_per_nic buffers per
    // queue so every ring stays fed, and fast-path frames consumed by the
    // transports come back as kDrvRxCredit instead of kDrvRx.
    int rx_queues = 1;
  };

  IpServer(NodeEnv* env, sim::SimCore* core, Config cfg);

  net::IpEngine* engine() { return engine_.get(); }

  // Receive-path accounting for the bench's msgs-per-frame datapoint:
  // channel messages sent up to the transports vs frames they carried.
  std::uint64_t l4_msgs() const { return l4_msgs_; }
  std::uint64_t l4_frames() const { return l4_frames_; }

 protected:
  void start(bool restart) override;
  void on_message(const std::string& from, const chan::Message& m,
                  sim::Context& ctx) override;
  void on_peer_up(const std::string& peer, bool restarted,
                  sim::Context& ctx) override;
  void on_peer_down(const std::string& peer, sim::Context& ctx) override;
  void on_killed() override;

 private:
  void build_engine();
  void store_config(sim::Context& ctx);
  void post_rx_buffers(int ifindex, sim::Context& ctx);
  static int ifindex_of(const std::string& driver);
  // The transport replica an inbound packet is steered to: a 4-tuple hash
  // over (src, dst) and the transport ports read out of the frame.
  int steer(const net::L4Packet& pkt, int shards);
  // Sends one frame up to its transport replica (the kL4Rx leg).
  void deliver_l4(char proto, net::L4Packet&& pkt);

  Config cfg_;
  std::unique_ptr<net::IpEngine> engine_;
  chan::Pool* hdr_pool_ = nullptr;
  chan::Pool* rx_pool_ = nullptr;

  struct L4Req {
    std::string from;
    std::uint64_t orig_id = 0;
  };
  std::unordered_map<std::uint64_t, L4Req> l4_reqs_;
  std::uint64_t next_l4_ = 1;
  // Frame-chain descriptors we packed for drivers, freed on completion.
  std::unordered_map<std::uint64_t, chan::RichPtr> drv_descs_;
  std::map<int, int> posted_;  // rx buffers outstanding per ifindex
  // In-flight work probes (cookie -> the transport replica to ack).
  std::map<std::uint64_t, std::string> probe_from_;
  std::uint64_t store_get_req_ = 0;
  std::uint64_t l4_msgs_ = 0;
  std::uint64_t l4_frames_ = 0;
};

}  // namespace newtos::servers
