// Network driver server: one per NIC, the paper's near-stateless component.
//
// The driver fills device descriptors from the zero-copy chains IP sends,
// converts device interrupts into receive messages, and posts IP-owned
// receive buffers into the RX ring.  It holds no recoverable state: a
// restart resets the device (losing whatever was in the rings — IP
// resubmits) and the link bounces.
//
// With multi-queue RSS enabled the driver polls each queue separately and
// posts a queue's steerable frames straight to the queue's home transport
// replica (kDrvRxFast), skipping the central IP hop; everything else — and
// every frame when a replica is down — takes the classic kDrvRx/kDrvRxBurst
// path through IP.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/drv/nic.h"
#include "src/servers/proto.h"
#include "src/servers/server.h"

namespace newtos::servers {

class DriverServer : public Server {
 public:
  // `ip_name` is the peer hosting the IP layer: the IP server in the split
  // stack, the combined "stack" server otherwise.
  DriverServer(NodeEnv* env, sim::SimCore* core, drv::SimNic* nic,
               int ifindex, std::string ip_name = kIpName);

  // Turns on the RSS fast path: a queue's frames whose 4-tuple hash homes
  // on the shard with the queue's index bypass IP.  Must be called before
  // boot; a driver without this keeps the classic single-target RX path.
  void enable_fast_path(int tcp_shards, int udp_shards);

  drv::SimNic& nic() { return *nic_; }
  int ifindex() const { return ifindex_; }

  // Receive-path accounting (the bench's msgs-per-frame datapoint and the
  // Section IV-A drop policy made visible).
  std::uint64_t rx_msgs() const { return rx_msgs_; }
  std::uint64_t rx_frames() const { return rx_frames_; }
  std::uint64_t rx_bursts() const { return rx_bursts_; }
  // Frames dropped because IP's queue was full (or IP was down).
  std::uint64_t rx_dropped() const { return rx_dropped_; }
  std::uint64_t rx_dropped_queue(int queue) const {
    return queue < static_cast<int>(rx_dropped_q_.size())
               ? rx_dropped_q_[queue]
               : 0;
  }
  // Frames that took the RSS fast path straight to a transport replica.
  std::uint64_t rx_fast_frames() const { return rx_fast_frames_; }
  // Device resets issued by the wedge watchdog (supervision only): the MAC
  // counters kept advancing while no completed descriptor reached us, with
  // the link up — the paper's "misconfigured card" fault, cleared by reset.
  std::uint64_t wedge_resets() const { return wedge_resets_; }

 protected:
  void start(bool restart) override;
  void on_message(const std::string& from, const chan::Message& m,
                  sim::Context& ctx) override;
  void on_peer_up(const std::string& peer, bool restarted,
                  sim::Context& ctx) override;
  void on_killed() override { tx_backlog_.clear(); }

 private:
  void install_device_handlers();
  // Supervision: e1000-style watchdog tick comparing the device's PHY
  // counter against delivered frames; two flat strikes reset the device.
  void watchdog_tick();
  void drain_backlog(sim::Context& ctx);
  void forward_rx_frame(const chan::RichPtr& buf, std::uint32_t len,
                        sim::Context& ctx, int queue = 0);
  // Home replica for a completion on `queue`; empty = classic IP path.
  std::string fast_target(const drv::SimNic::RxCompletion& c,
                          int queue) const;
  // Sends `run` to IP as one kDrvRxBurst (per-frame degrade inside).
  void send_run_to_ip(std::span<const drv::SimNic::RxCompletion> run,
                      sim::Context& ctx, int queue);
  // Sends `run` to `target` as one kDrvRxFast; returns the number of
  // frames that actually went fast (0 = the run was degraded to IP).
  std::size_t send_run_fast(const std::string& target,
                            std::span<const drv::SimNic::RxCompletion> run,
                            sim::Context& ctx, int queue);
  void send_rx_credit(std::size_t frames, sim::Context& ctx);

  drv::SimNic* nic_;
  int ifindex_;
  std::string ip_name_;
  bool fast_path_ = false;
  int tcp_shards_ = 1;
  int udp_shards_ = 1;
  // Staging pool for burst descriptors; created only when the device
  // coalesces or the fast path packs records (the classic per-frame driver
  // allocates nothing).
  chan::Pool* burst_pool_ = nullptr;
  std::uint64_t rx_msgs_ = 0;
  std::uint64_t rx_frames_ = 0;
  std::uint64_t rx_bursts_ = 0;
  std::uint64_t rx_dropped_ = 0;
  std::uint64_t rx_fast_frames_ = 0;
  std::vector<std::uint64_t> rx_dropped_q_;
  // Frames waiting for TX ring slots.  The driver never blocks on a full
  // ring (Section IV-A); it buffers a bounded backlog and sheds beyond it.
  std::deque<std::pair<net::TxFrame, std::uint64_t>> tx_backlog_;
  static constexpr std::size_t kMaxBacklog = 1024;
  // Wedge watchdog state (supervision only).
  std::uint64_t wd_last_phy_ = 0;
  std::uint64_t wd_last_rx_ = 0;
  int wedge_strikes_ = 0;
  std::uint64_t wedge_resets_ = 0;
  static constexpr sim::Time kWatchdogInterval = 250 * sim::kMillisecond;
};

}  // namespace newtos::servers
