// The TCP server: hosts the TCP engine — the component with "large,
// frequently changing state for each connection, difficult to recover"
// (Table I).  By default only listening sockets are stored and restored;
// established connections die with the server, which is the paper's
// deliberate trade-off: isolating the unrecoverable part keeps everything
// else restartable.
//
// With `TcpOptions::checkpoint` on, that trade-off is removed: established
// connections journal per-connection TCB checkpoints (pool-resident pages
// + compact storage-server records — src/servers/checkpoint.h) and survive
// a crash of this server with only a throughput dip.  The restart sequence
// fetches the listener set, the checkpoint directory and each record from
// the storage server, rebuilds the TCBs around the parked queue chunks,
// and resynchronizes with the peers by retransmission from the last acked
// watermark.
//
// Sharded transport plane: the node may run N replicas of this server
// (tcp, tcp1, ..., tcpN-1), each on its own core with its own engine,
// channels and staging pool.  The IP server steers inbound frames to a
// replica by 4-tuple hash; listener sockets are replicated to every shard
// SO_REUSEPORT-style (each replica owns an accept queue for the port), so
// any replica can accept the connections steered to it.  Replicas restart
// individually: flows on sibling shards keep running while one recovers —
// and with checkpointing on, even the crashed replica's own flows do.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <deque>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/net/ip_fastpath.h"
#include "src/net/tcp.h"
#include "src/servers/checkpoint.h"
#include "src/servers/proto.h"
#include "src/servers/server.h"

namespace newtos::servers {

class TcpServer : public Server {
 public:
  TcpServer(NodeEnv* env, sim::SimCore* core, net::TcpOptions opts,
            std::function<net::Ipv4Addr(net::Ipv4Addr)> src_for,
            int shard = 0, int shard_count = 1);
  // Releases everything still referenced (engine queues, in-flight
  // descriptors) straight into the pools: at teardown there is no handler
  // context to send done-reports from.
  ~TcpServer() override;

  net::TcpEngine* engine() { return engine_.get(); }
  int shard() const { return shard_; }

  // Multi-queue RSS: this replica owns one NIC RX queue per driver and runs
  // the hoisted IP receive work (src/net/ip_fastpath.h) on frames the
  // drivers post directly (kDrvRxFast).  Must be called before boot.
  void enable_rx_fastpath(net::IpFastPath::Config cfg,
                          std::vector<std::string> driver_names);
  // Fast-path statistics (null when the fast path is off), published as
  // per-shard node stats and the bench's per-shard inbound frame count.
  const net::IpFastPath* fastpath() const { return fastpath_.get(); }

  // Checkpoint overhead counters (0 with checkpointing off), published as
  // node stats "tcp.ckpt_puts" / "tcp.ckpt_bytes".
  std::uint64_t ckpt_puts() const { return writer_ ? writer_->puts() : 0; }
  std::uint64_t ckpt_bytes() const {
    return writer_ ? writer_->put_bytes() : 0;
  }
  std::uint64_t ckpt_tracked() const {
    return writer_ ? writer_->tracked() : 0;
  }
  // Overflow events: per-connection ring overflows (connection reverts to
  // classic non-recoverable) plus directory continuation-page spills (now
  // handled by chained paging, but still surfaced for observability).
  std::uint64_t ckpt_overflows() const {
    return writer_ ? writer_->overflows() + writer_->dir_overflows() : 0;
  }

  void handle_sock_request(const chan::Message& m, sim::Context& ctx,
                           const std::function<void(const chan::Message&)>&
                               reply);

 protected:
  void start(bool restart) override;
  void on_message(const std::string& from, const chan::Message& m,
                  sim::Context& ctx) override;
  void on_peer_up(const std::string& peer, bool restarted,
                  sim::Context& ctx) override;
  void on_killed() override;

 private:
  void build_writer();
  void build_engine();
  void build_fastpath();
  void save_listeners(sim::Context& ctx);
  bool is_sibling(const std::string& peer) const;
  // SO_REUSEPORT-style replication: pushes one listener record (or its
  // removal) to every sibling replica / to one named sibling.
  void replicate_listener(const net::TcpEngine::ListenRec& rec,
                          sim::Context& ctx, const std::string* only = nullptr);
  void replicate_close(net::SockId s, sim::Context& ctx);

  // --- checkpoint restore (restart with TcpOptions::checkpoint on) ----------------
  // Issues a kStoreGet and remembers which key the reply answers.
  bool store_get(std::uint32_t key, sim::Context& ctx);
  void handle_store_reply(std::uint32_t key, const chan::Message& m,
                          sim::Context& ctx);
  // All records fetched (or none existed): resync the restored connections
  // and open for business.
  void finish_restore(sim::Context& ctx);

  net::TcpOptions opts_;
  std::function<net::Ipv4Addr(net::Ipv4Addr)> src_for_;
  int shard_ = 0;
  int shard_count_ = 1;
  std::vector<std::string> siblings_;
  std::unique_ptr<CheckpointWriter> writer_;  // before engine_: outlives it
  std::unique_ptr<net::TcpEngine> engine_;
  // RSS fast path (null unless enable_rx_fastpath was called).
  bool rx_fastpath_ = false;
  net::IpFastPath::Config fastpath_cfg_;
  std::vector<std::string> fastpath_drivers_;
  std::unique_ptr<net::IpFastPath> fastpath_;
  chan::Pool* pool_ = nullptr;
  // kIpTx descriptors in flight; freed on kIpTxDone or IP restart.
  std::unordered_map<std::uint64_t, chan::RichPtr> tx_descs_;
  // In-flight kStoreGet requests of the restart sequence (req -> key).
  std::map<std::uint64_t, std::uint32_t> store_gets_;
  int ckpt_pending_ = 0;  // record/dir-page fetches still outstanding
  // Socks whose records were already requested during this restore: a
  // partially-flushed directory chain may list one on two pages.
  std::set<std::uint32_t> ckpt_socks_seen_;
  // Record keys waiting to be fetched, issued at most kCkptFetchWindow at a
  // time: a full directory page lists 1024 socks but the storage server's
  // in-queue holds 256 — an unwindowed burst silently drops the tail and
  // those connections would never restore.
  static constexpr int kCkptFetchWindow = 128;
  std::deque<std::uint32_t> ckpt_fetch_queue_;
  int ckpt_inflight_ = 0;
  void pump_ckpt_fetches(sim::Context& ctx);
};

}  // namespace newtos::servers
