#include "src/servers/udp_server.h"

#include <algorithm>
#include <cstring>

#include "src/net/pbuf.h"

namespace newtos::servers {

UdpServer::UdpServer(NodeEnv* env, sim::SimCore* core,
                     std::function<net::Ipv4Addr(net::Ipv4Addr)> src_for,
                     int shard, int shard_count)
    : Server(env, udp_shard_name(shard), core),
      src_for_(std::move(src_for)),
      shard_(shard),
      shard_count_(shard_count),
      siblings_(transport_shard_siblings('U', shard, shard_count)) {}

UdpServer::~UdpServer() {
  drop_engine(engine_);
  release_in_flight(pool_, pending_tx_,
                    [](const PendingTx& p) -> const chan::RichPtr& {
                      return p.desc;
                    });
}

bool UdpServer::is_sibling(const std::string& peer) const {
  return std::find(siblings_.begin(), siblings_.end(), peer) !=
         siblings_.end();
}

void UdpServer::build_engine() {
  net::UdpEngine::Env e;
  e.clock = clock();
  e.pools = env().pools;
  e.buf_pool = pool_;
  e.src_for = src_for_;
  e.shard = shard_;
  e.shard_count = shard_count_;
  if (shard_count_ > 1) {
    e.sock_base = net::sock_shard_base(shard_);
    e.sock_span = net::kSockShardSpan;
  }
  e.output = [this](net::TxSeg&& seg, std::uint64_t cookie) {
    sim::Context& ctx = cur();
    charge(ctx, 150);  // descriptor packing
    chan::RichPtr desc =
        net::pack_chain(*pool_, seg.l4_header, seg.payload, seg.offload);
    if (!desc.valid()) {
      engine_->seg_done(cookie, false);
      return;
    }
    chan::Message m;
    m.opcode = kIpTx;
    m.req_id = cookie;
    m.ptr = desc;
    m.arg0 = pack_addrs(seg.src, seg.dst);
    m.arg1 = seg.protocol;
    if (!send_to(kIpName, m, ctx)) {
      pool_->release(desc);
      engine_->seg_done(cookie, false);  // IP down: datagram dropped
      return;
    }
    pending_tx_.emplace(cookie, PendingTx{desc, m.arg0});
  };
  e.rx_done = [this](const chan::RichPtr& frame) {
    chan::Message m;
    m.opcode = kL4RxDone;
    m.ptr = frame;
    send_to(kIpName, m, cur());
  };
  e.notify_readable = [this](net::SockId s) {
    if (env().sock_event) env().sock_event(shard_, 'U', s, 0);
  };
  engine_ = std::make_unique<net::UdpEngine>(std::move(e));
}

void UdpServer::enable_rx_fastpath(net::IpFastPath::Config cfg,
                                   std::vector<std::string> driver_names) {
  rx_fastpath_ = true;
  fastpath_cfg_ = std::move(cfg);
  fastpath_cfg_.gro = false;  // GRO is a TCP-only merge
  fastpath_drivers_ = std::move(driver_names);
}

void UdpServer::build_fastpath() {
  net::IpFastPath::Env fe;
  fe.pools = env().pools;
  fe.deliver = [this](std::uint8_t, net::L4Packet&& pkt) {
    // Same per-datagram charge as the kL4Rx leg.
    if (in_handler()) charge(cur(), sim().costs().udp_packet_proc);
    engine_->input(std::move(pkt));
  };
  fe.pf_check = [this](const net::PfQuery& q, std::uint64_t cookie) {
    send_to(kPfName, make_pf_check(cookie, q), cur());
  };
  fe.fallback = [this](int ifindex, const chan::RichPtr& frame) {
    chan::Message m;
    m.opcode = kFastFallback;
    m.ptr = frame;
    m.arg1 = static_cast<std::uint64_t>(ifindex);
    if (!send_to(kIpName, m, cur())) {
      chan::Pool* p = env().pools->find(frame.pool);
      if (p != nullptr) p->release(frame);
    }
  };
  fe.release = [this](const chan::RichPtr& frame) {
    chan::Pool* p = env().pools->find(frame.pool);
    if (p != nullptr) p->release(frame);
  };
  fastpath_ = std::make_unique<net::IpFastPath>(std::move(fe), fastpath_cfg_);
}

void UdpServer::start(bool restart) {
  pool_ = env().get_pool(name() + ".buf", 8u << 20);
  for (const char* p : {kIpName, kStoreName, kPfName, kSyscallName}) {
    expose_in_queue(p);
    connect_out(p);
  }
  for (const auto& sib : siblings_) {
    expose_in_queue(sib);
    connect_out(sib);
  }
  if (env().knobs.work_probes || env().knobs.supervision) {
    expose_in_queue(kRsName, 64);
    connect_out(kRsName);
  }
  if (rx_fastpath_) {
    for (const auto& d : fastpath_drivers_) expose_in_queue(d, 512);
  }
  build_engine();
  if (rx_fastpath_) build_fastpath();
  if (restart) {
    post_control([this](sim::Context& ctx) {
      chan::Message m;
      m.opcode = kStoreGet;
      m.arg0 = kKeyUdpSockets;
      m.req_id = request_db().add(kStoreName, 0, {});
      if (!send_to(kStoreName, m, ctx)) announce(true);
    });
  } else {
    post_control([this](sim::Context&) { announce(false); });
  }
}

void UdpServer::on_killed() {
  // The dying process cannot send done-reports; queued receive frames go
  // straight back to their owning pool.  In-flight descriptors leak,
  // bounded per crash.
  fastpath_.reset();  // held frames (pending PF verdicts) back to the pool
  drop_engine(engine_);
  pending_tx_.clear();
}

void UdpServer::save_sockets(sim::Context& ctx) {
  const auto bytes = net::UdpEngine::serialize_socks(engine_->snapshot());
  chan::RichPtr chunk =
      pool_->alloc(static_cast<std::uint32_t>(bytes.size()));
  if (!chunk.valid()) return;
  auto view = pool_->write_view(chunk);
  std::copy(bytes.begin(), bytes.end(), view.begin());
  chan::Message m;
  m.opcode = kStorePut;
  m.arg0 = kKeyUdpSockets;
  m.req_id = request_db().add(kStoreName, 0, {});
  m.ptr = chunk;
  if (!send_to(kStoreName, m, ctx)) pool_->release(chunk);
}

void UdpServer::replicate_sock(net::SockId s, sim::Context& ctx,
                               const std::string* only) {
  auto rec = engine_->record(s);
  if (!rec) return;
  chan::Message m;
  m.opcode = kShardRepSock;
  m.socket = rec->id;
  m.arg0 = pack_addrs(rec->local, rec->peer);
  m.arg1 = (static_cast<std::uint64_t>(rec->lport) << 16) | rec->pport;
  if (only != nullptr) {
    send_to(*only, m, ctx);
    return;
  }
  send_to_all(siblings_, m, ctx);
}

void UdpServer::replicate_close(net::SockId s, sim::Context& ctx) {
  chan::Message m;
  m.opcode = kShardRepClose;
  m.socket = s;
  send_to_all(siblings_, m, ctx);
}

void UdpServer::handle_sock_request(
    const chan::Message& m, sim::Context& ctx,
    const std::function<void(const chan::Message&)>& reply) {
  charge(ctx, sim().costs().socket_op);
  chan::Message r;
  r.opcode = kSockReply;
  r.req_id = m.req_id;
  r.socket = m.socket;
  bool state_changed = false;
  bool removed = false;
  switch (m.opcode) {
    case kSockOpen:
      r.arg0 = engine_->open();
      r.socket = static_cast<std::uint32_t>(r.arg0);
      state_changed = true;
      break;
    case kSockBind:
      r.arg0 = engine_->bind(m.socket, net::Ipv4Addr{
                                           static_cast<std::uint32_t>(m.arg0)},
                             static_cast<std::uint16_t>(m.arg1))
                   ? 1
                   : 0;
      state_changed = true;
      break;
    case kSockConnect:
      r.arg0 = engine_->connect(
                   m.socket,
                   net::Ipv4Addr{static_cast<std::uint32_t>(m.arg0)},
                   static_cast<std::uint16_t>(m.arg1))
                   ? 1
                   : 0;
      state_changed = true;
      break;
    case kSockSendTo: {
      charge(ctx, sim().costs().udp_packet_proc);
      // sendto on an unbound socket auto-binds an ephemeral port — a state
      // change the replicas must learn about, or the replies steered to
      // them find no socket.
      const auto before = engine_->record(m.socket);
      r.arg0 = engine_->sendto(
                   m.socket, m.ptr,
                   net::Ipv4Addr{static_cast<std::uint32_t>(m.arg0)},
                   static_cast<std::uint16_t>(m.arg1))
                   ? 1
                   : 0;
      if (before && before->lport == 0) state_changed = true;
      break;
    }
    case kSockClose:
      engine_->close(m.socket);
      r.arg0 = 1;
      state_changed = true;
      removed = true;
      break;
    default:
      r.arg0 = 0;
      break;
  }
  reply(r);
  if (state_changed) {
    if (!siblings_.empty()) {
      if (removed) {
        replicate_close(m.socket, ctx);
      } else {
        replicate_sock(r.socket, ctx);
      }
    }
    save_sockets(ctx);
  }
}

void UdpServer::on_message(const std::string& from, const chan::Message& m,
                           sim::Context& ctx) {
  switch (m.opcode) {
    case kL4Rx: {
      charge(ctx, sim().costs().udp_packet_proc);
      net::L4Packet pkt;
      pkt.frame = m.ptr;
      pkt.l4_offset = static_cast<std::uint16_t>(m.arg0 >> 16);
      pkt.l4_length = static_cast<std::uint16_t>(m.arg0);
      pkt.src = unpack_hi(m.arg1);
      pkt.dst = unpack_lo(m.arg1);
      engine_->input(std::move(pkt));
      return;
    }
    case kDrvRxFast: {
      // RSS fast path: the hoisted IP work (validation, PF consultation) is
      // paid here, on this shard's core, instead of on the central IP core.
      const auto recs = parse_records<WireRxFrame>(env().pools->read(m.ptr));
      charge(ctx, sim().costs().ip_packet_proc *
                      static_cast<sim::Cycles>(recs.size()));
      std::vector<chan::RichPtr> frames;
      frames.reserve(recs.size());
      for (const auto& rec : recs) {
        chan::Pool* p = env().pools->find(rec.frame.pool);
        if (p != nullptr) {
          p->note_return(rec.frame, transport_borrower('U', shard_));
        }
        frames.push_back(rec.frame);
      }
      env().pools->release(m.ptr);  // driver's descriptor chunk
      if (fastpath_) {
        fastpath_->input_burst(static_cast<int>(m.arg1), frames);
      } else {
        for (const auto& f : frames) {
          chan::Pool* p = env().pools->find(f.pool);
          if (p != nullptr) p->release(f);
        }
      }
      return;
    }
    case kPfVerdict:
      charge(ctx, 120);
      if (fastpath_) fastpath_->pf_verdict(m.req_id, m.arg0 != 0);
      return;
    case kPfCacheInval:
      if (fastpath_) fastpath_->invalidate_cache();
      return;
    case kIpTxDone: {
      auto it = pending_tx_.find(m.req_id);
      if (it != pending_tx_.end()) {
        pool_->release(it->second.desc);
        pending_tx_.erase(it);
      }
      engine_->seg_done(m.req_id, m.arg0 != 0);
      return;
    }
    case kConnList: {
      // PF is rebuilding its connection table (Section V-D).
      const auto keys = engine_->connection_keys();
      const std::uint32_t bytes =
          static_cast<std::uint32_t>(4 + keys.size() * sizeof(net::PfStateKey));
      chan::RichPtr chunk = pool_->alloc(bytes);
      chan::Message r;
      r.opcode = kConnListReply;
      r.req_id = m.req_id;
      if (chunk.valid()) {
        auto view = pool_->write_view(chunk);
        std::uint32_t n = static_cast<std::uint32_t>(keys.size());
        std::memcpy(view.data(), &n, 4);
        if (n > 0) {
          std::memcpy(view.data() + 4, keys.data(),
                      keys.size() * sizeof(net::PfStateKey));
        }
        r.ptr = chunk;
      }
      send_to(from, r, ctx);
      return;
    }
    case kShardRepSock: {
      // Replica records live only in the engine: restarts rebuild them
      // from the siblings' re-seed, never from storage, so there is no
      // store write here.
      net::UdpEngine::SockRec rec;
      rec.id = m.socket;
      rec.local = unpack_hi(m.arg0);
      rec.peer = unpack_lo(m.arg0);
      rec.lport = static_cast<std::uint16_t>(m.arg1 >> 16);
      rec.pport = static_cast<std::uint16_t>(m.arg1);
      engine_->upsert(rec);
      return;
    }
    case kShardRepClose:
      engine_->close(m.socket);
      return;
    case kStoreRelease:
      pool_->release(m.ptr);
      return;
    case kStoreAck:
      request_db().complete(m.req_id);
      return;
    case kStoreReply: {
      if (!request_db().complete(m.req_id)) return;
      if (m.arg0 != 0) {
        auto socks = net::UdpEngine::parse_socks(env().pools->read(m.ptr));
        if (socks) {
          // Only HOME sockets restore from storage: replica records are
          // re-seeded by the siblings on announce, which also reconciles
          // sockets closed while this replica was down (a stored replica
          // record could otherwise resurrect a dead socket).
          for (const auto& rec : *socks) {
            if (shard_count_ == 1 || net::sock_shard(rec.id) == shard_)
              engine_->upsert(rec);
          }
        }
        chan::Message rel;
        rel.opcode = kStoreRelease;
        rel.ptr = m.ptr;
        send_to(kStoreName, rel, ctx);
      }
      announce(true);
      return;
    }
    case kWorkProbe: {
      // The reincarnation server's end-to-end probe (see the TCP twin for
      // the rationale).  The ack judges THIS replica and goes out only
      // once the canary quantum has been paid (so its latency scales with
      // any slowdown); the echo still bounces through IP afterwards.
      charge(ctx, sim().costs().probe_canary);
      reply_after_charges([this, cookie = m.req_id](sim::Context& c) {
        chan::Message ack;
        ack.opcode = kWorkProbeAck;
        ack.req_id = cookie;
        ack.arg0 = 1;
        send_to(kRsName, ack, c);
        chan::Message p;
        p.opcode = kWorkProbe;
        p.req_id = cookie;
        send_to(kIpName, p, c);
      });
      return;
    }
    case kWorkProbeAck: {
      chan::Message ack;
      ack.opcode = kWorkProbeAck;
      ack.req_id = m.req_id;
      ack.arg0 = m.arg0 + 1;
      send_to(kRsName, ack, ctx);
      return;
    }
    case kSockBatch: {
      // A packed submission-queue flush.
      const auto ops = parse_sock_batch(env().pools->read(m.ptr));
      run_sock_batch(ops, [&, this](char, const chan::Message& sm,
                                    const auto& note_open) {
        handle_sock_request(sm, ctx, [&, this](const chan::Message& r) {
          note_open(r);
          send_to(from, r, ctx);
        });
      });
      return;
    }
    default:
      // Socket control over channels (SYSCALL server path).
      if (m.opcode >= kSockOpen && m.opcode <= kSockClose) {
        handle_sock_request(m, ctx, [this, from, &ctx](const chan::Message& r) {
          send_to(from, r, ctx);
        });
      }
      return;
  }
}

void UdpServer::on_peer_up(const std::string& peer, bool restarted,
                           sim::Context& ctx) {
  if (peer == kIpName && restarted) {
    // Resubmit in-flight datagrams: we prefer duplicates over losses
    // (Section V-D "UDP").
    for (auto& [cookie, pending] : pending_tx_) {
      chan::Message m;
      m.opcode = kIpTx;
      m.req_id = cookie;
      m.ptr = pending.desc;
      m.arg0 = pending.arg0;
      m.arg1 = net::kProtoUdp;
      send_to(kIpName, m, ctx);
    }
    return;
  }
  if (peer == kStoreName && restarted) {
    save_sockets(ctx);
    return;
  }
  if (peer == kPfName && fastpath_) {
    // PF (re)appeared: unanswered fast-path queries died with the old
    // incarnation — repeat them so the held frames drain.
    fastpath_->resubmit_pf();
    return;
  }
  if (is_sibling(peer) && engine_) {
    // A sibling replica came up: push it our home socket records so the
    // datagrams steered to it find their sockets.  Upserts are idempotent.
    for (const auto& rec : engine_->snapshot()) {
      if (net::sock_shard(rec.id) == shard_) replicate_sock(rec.id, ctx, &peer);
    }
  }
}

}  // namespace newtos::servers
