#include "src/servers/syscall_server.h"

namespace newtos::servers {

SyscallServer::SyscallServer(NodeEnv* env, sim::SimCore* core,
                             std::string tcp_target, std::string udp_target)
    : Server(env, kSyscallName, core),
      tcp_target_(std::move(tcp_target)),
      udp_target_(std::move(udp_target)) {}

SyscallServer::~SyscallServer() {
  // Staged payloads (request.ptr) are NOT touched: the transport may have
  // executed the op already and own them — its own teardown releases them.
  for (auto& [id, p] : pending_) {
    if (p.chunk.valid() && pool_ != nullptr) pool_->release(p.chunk);
  }
  pending_.clear();
}

void SyscallServer::start(bool restart) {
  pool_ = env().get_pool("syscall.batch", 4u << 20);
  expose_in_queue(tcp_target_, 1024);
  connect_out(tcp_target_);
  if (udp_target_ != tcp_target_) {
    expose_in_queue(udp_target_, 1024);
    connect_out(udp_target_);
  }
  // Stateless: restart is trivial (Section V-B).  In-flight calls get
  // errors; old replies are ignored because pending_ died with us.
  announce(restart);
}

void SyscallServer::submit_batch(std::vector<BatchOp> ops) {
  if (ops.empty()) return;
  calls_ += ops.size();
  ++batches_;
  // The whole batch arrives under one kernel-IPC message — this is the
  // trap amortization the submission ring buys.
  post_kernel_msg(
      [this, ops = std::move(ops)](sim::Context& ctx) mutable {
        forward_batch(std::move(ops), ctx);
      },
      100);
}

void SyscallServer::fail_op(const chan::Message& request,
                            const DeliverFn& deliver) {
  // The op never reached a transport: hand any payload the app staged in
  // the transport's exported buffer back (the engine only takes ownership
  // once the op executes).
  if (request.ptr.valid()) {
    if (chan::Pool* p = env().pools->find(request.ptr.pool)) {
      p->release(request.ptr);
    }
  }
  chan::Message err;
  err.opcode = kSockReply;
  err.req_id = request.req_id;
  err.socket = request.socket;
  err.arg0 = 0;
  err.flags = 1;  // error
  deliver(err);
}

void SyscallServer::settle(std::map<std::uint64_t, Pending>::iterator it) {
  if (it->second.chunk.valid()) pool_->release(it->second.chunk);
  pending_.erase(it);
}

void SyscallServer::forward_batch(std::vector<BatchOp> ops,
                                  sim::Context& ctx) {
  // Group per destination transport; each group travels as ONE packed
  // kSockBatch channel message.
  for (const std::string* target : {&tcp_target_, &udp_target_}) {
    if (target == &udp_target_ && udp_target_ == tcp_target_) break;
    std::vector<std::size_t> idxs;
    std::vector<WireSockOp> wire;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      const std::string& t =
          ops[i].proto == 'T' ? tcp_target_ : udp_target_;
      if (t != *target) continue;
      chan::Message fwd = ops[i].request;
      fwd.req_id = next_req_++;
      if (ops[i].proto == 'U') fwd.flags |= 2;  // proto marker, single ops
      pending_[fwd.req_id] = Pending{ops[i].proto, fwd, ops[i].deliver, {}};
      idxs.push_back(i);
      wire.push_back(sock_op_from_message(ops[i].proto, fwd));
    }
    if (wire.empty()) continue;
    chan::RichPtr chunk = pack_sock_batch(*pool_, wire);
    bool sent = chunk.valid();
    if (sent) {
      chan::Message m;
      m.opcode = kSockBatch;
      m.arg0 = wire.size();
      m.ptr = chunk;
      sent = send_to(*target, m, ctx);
    }
    if (!sent) {
      // Transport down or staging pool exhausted: fail every op of this
      // group (the apps retry).
      if (chunk.valid()) pool_->release(chunk);
      for (std::size_t k = 0; k < wire.size(); ++k) {
        pending_.erase(wire[k].req_id);
        fail_op(ops[idxs[k]].request, ops[idxs[k]].deliver);
      }
      continue;
    }
    // Every op holds one reference on the staging chunk; alloc provided
    // the first, so add one per additional op.  The reference drops as
    // each op settles (reply, error, or restart abort) — a transport
    // crash can therefore never strand the chunk.
    for (std::size_t k = 1; k < wire.size(); ++k) pool_->addref(chunk);
    for (std::size_t k = 0; k < wire.size(); ++k) {
      pending_[wire[k].req_id].chunk = chunk;
    }
  }
  // In a combined-stack arrangement both protocols share one target; the
  // loop above already sent everything through tcp_target_.
}

void SyscallServer::on_message(const std::string& from,
                               const chan::Message& m, sim::Context& ctx) {
  (void)from;
  (void)ctx;
  if (m.opcode != kSockReply) return;
  auto it = pending_.find(m.req_id);
  if (it == pending_.end()) return;  // stale reply from before a crash
  chan::Message reply = m;
  reply.req_id = it->second.request.req_id;  // restore the app's request id
  it->second.deliver(reply);
  settle(it);
}

void SyscallServer::on_peer_up(const std::string& peer, bool restarted,
                               sim::Context& ctx) {
  if (!restarted) return;
  // Section V-D: for UDP we resubmit the last unfinished operation per
  // socket (duplicates preferred over losses); TCP "returns error to any
  // operation the SYSCALL server resubmits except listen".
  std::vector<std::uint64_t> done;
  for (auto& [id, p] : pending_) {
    const std::string& target = p.proto == 'T' ? tcp_target_ : udp_target_;
    if (target != peer) continue;
    const char proto = p.proto;
    // An op still naming the in-batch open sentinel cannot be resubmitted
    // standalone — its open's identity died with the batch; fail it so the
    // app reopens.
    const bool resubmit =
        (proto == 'U' || p.request.opcode == kSockListen) &&
        p.request.socket != kSockFromBatchOpen;
    if (resubmit) {
      send_to(peer, p.request, ctx);
    } else {
      fail_op(p.request, p.deliver);
      done.push_back(id);
    }
  }
  for (auto id : done) settle(pending_.find(id));
}

}  // namespace newtos::servers
