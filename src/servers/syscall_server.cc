#include "src/servers/syscall_server.h"

namespace newtos::servers {

SyscallServer::SyscallServer(NodeEnv* env, sim::SimCore* core,
                             std::string tcp_target, std::string udp_target)
    : Server(env, kSyscallName, core),
      tcp_target_(std::move(tcp_target)),
      udp_target_(std::move(udp_target)) {}

void SyscallServer::start(bool restart) {
  expose_in_queue(tcp_target_, 1024);
  connect_out(tcp_target_);
  if (udp_target_ != tcp_target_) {
    expose_in_queue(udp_target_, 1024);
    connect_out(udp_target_);
  }
  // Stateless: restart is trivial (Section V-B).  In-flight calls get
  // errors; old replies are ignored because pending_ died with us.
  announce(restart);
}

void SyscallServer::submit(char proto, chan::Message m, DeliverFn deliver) {
  ++calls_;
  post_kernel_msg(
      [this, proto, m, deliver = std::move(deliver)](sim::Context& ctx) {
        forward(proto, m, deliver, ctx);
      },
      100);
}

void SyscallServer::forward(char proto, const chan::Message& m,
                            DeliverFn deliver, sim::Context& ctx) {
  const std::string& target = proto == 'T' ? tcp_target_ : udp_target_;
  chan::Message fwd = m;
  fwd.req_id = next_req_++;
  if (proto == 'U') fwd.flags |= 2;  // proto marker for the combined stack
  pending_[fwd.req_id] = Pending{proto, fwd, std::move(deliver)};
  if (!send_to(target, fwd, ctx)) {
    // Transport is down right now: fail the call (the app retries).
    auto it = pending_.find(fwd.req_id);
    chan::Message err;
    err.opcode = kSockReply;
    err.req_id = m.req_id;
    err.socket = m.socket;
    err.arg0 = 0;
    err.flags = 1;  // error
    it->second.deliver(err);
    pending_.erase(it);
  }
}

void SyscallServer::on_message(const std::string& from,
                               const chan::Message& m, sim::Context& ctx) {
  (void)from;
  (void)ctx;
  if (m.opcode != kSockReply) return;
  auto it = pending_.find(m.req_id);
  if (it == pending_.end()) return;  // stale reply from before a crash
  chan::Message reply = m;
  reply.req_id = it->second.request.req_id;  // restore the app's request id
  it->second.deliver(reply);
  pending_.erase(it);
}

void SyscallServer::on_peer_up(const std::string& peer, bool restarted,
                               sim::Context& ctx) {
  if (!restarted) return;
  // Section V-D: for UDP we resubmit the last unfinished operation per
  // socket (duplicates preferred over losses); TCP "returns error to any
  // operation the SYSCALL server resubmits except listen".
  std::vector<std::uint64_t> done;
  for (auto& [id, p] : pending_) {
    const std::string& target = p.proto == 'T' ? tcp_target_ : udp_target_;
    if (target != peer) continue;
    const char proto = p.proto;
    const bool resubmit =
        proto == 'U' || p.request.opcode == kSockListen;
    if (resubmit) {
      send_to(peer, p.request, ctx);
    } else {
      chan::Message err;
      err.opcode = kSockReply;
      err.req_id = p.request.req_id;
      err.socket = p.request.socket;
      err.arg0 = 0;
      err.flags = 1;  // ECONNRESET-flavoured failure
      p.deliver(err);
      done.push_back(id);
    }
  }
  for (auto id : done) pending_.erase(id);
}

}  // namespace newtos::servers
