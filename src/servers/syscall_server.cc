#include "src/servers/syscall_server.h"

#include <algorithm>

namespace newtos::servers {

SyscallServer::SyscallServer(NodeEnv* env, sim::SimCore* core,
                             std::vector<std::string> tcp_targets,
                             std::vector<std::string> udp_targets)
    : Server(env, kSyscallName, core),
      tcp_targets_(std::move(tcp_targets)),
      udp_targets_(std::move(udp_targets)) {
  // Deterministic group/channel order: TCP shards first, then UDP shards
  // (the combined stack collapses to one shared target).
  targets_ = tcp_targets_;
  for (const auto& t : udp_targets_) {
    if (std::find(targets_.begin(), targets_.end(), t) == targets_.end())
      targets_.push_back(t);
  }
}

SyscallServer::~SyscallServer() {
  // Staged payloads (request.ptr) are NOT touched: the transport may have
  // executed the op already and own them — its own teardown releases them.
  release_in_flight(pool_, pending_,
                    [](const Pending& p) -> const chan::RichPtr& {
                      return p.chunk;
                    });
}

void SyscallServer::start(bool restart) {
  pool_ = env().get_pool("syscall.batch", 4u << 20);
  for (const auto& t : targets_) {
    expose_in_queue(t, 1024);
    connect_out(t);
  }
  // Stateless: restart is trivial (Section V-B).  In-flight calls get
  // errors; old replies are ignored because pending_ died with us.
  announce(restart);
}

void SyscallServer::submit_batch(std::vector<BatchOp> ops) {
  if (ops.empty()) return;
  calls_ += ops.size();
  ++batches_;
  // The whole batch arrives under one kernel-IPC message — this is the
  // trap amortization the submission ring buys.
  post_kernel_msg(
      [this, ops = std::move(ops)](sim::Context& ctx) mutable {
        forward_batch(std::move(ops), ctx);
      },
      100);
}

void SyscallServer::fail_op(const chan::Message& request,
                            const DeliverFn& deliver) {
  // The op never reached a transport: hand any payload the app staged in
  // the transport's exported buffer back (the engine only takes ownership
  // once the op executes).
  if (request.ptr.valid()) {
    if (chan::Pool* p = env().pools->find(request.ptr.pool)) {
      p->release(request.ptr);
    }
  }
  chan::Message err;
  err.opcode = kSockReply;
  err.req_id = request.req_id;
  err.socket = request.socket;
  err.arg0 = 0;
  err.flags = 1;  // error
  deliver(err);
}

void SyscallServer::settle(std::map<std::uint64_t, Pending>::iterator it) {
  if (it->second.chunk.valid()) pool_->release(it->second.chunk);
  pending_.erase(it);
}

void SyscallServer::forward_batch(std::vector<BatchOp> ops,
                                  sim::Context& ctx) {
  // Resolve the transport shard of every op (opens round-robin, sentinel
  // ops with their open, the rest by socket id), then group per target:
  // each group travels as ONE packed kSockBatch channel message.
  std::vector<WireSockOp> wire_in(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    wire_in[i] = sock_op_from_message(ops[i].proto, ops[i].request);
  }
  std::vector<std::string> target_of(ops.size());
  route_sock_shards(
      wire_in, static_cast<int>(tcp_targets_.size()),
      static_cast<int>(udp_targets_.size()), open_rr_,
      [&](std::size_t i, int shard) {
        target_of[i] =
            ops[i].proto == 'U' ? udp_targets_[shard] : tcp_targets_[shard];
      },
      [&](char proto, int shard) {
        return peer_ready(proto == 'U' ? udp_targets_[shard]
                                       : tcp_targets_[shard]);
      });

  for (const auto& target : targets_) {
    std::vector<std::size_t> idxs;
    std::vector<WireSockOp> wire;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (target_of[i] != target) continue;
      chan::Message fwd = ops[i].request;
      fwd.req_id = next_req_++;
      if (ops[i].proto == 'U') fwd.flags |= 2;  // proto marker, single ops
      pending_[fwd.req_id] =
          Pending{ops[i].proto, target, fwd, ops[i].deliver, {}};
      idxs.push_back(i);
      wire.push_back(sock_op_from_message(ops[i].proto, fwd));
    }
    if (wire.empty()) continue;
    chan::RichPtr chunk = pack_sock_batch(*pool_, wire);
    bool sent = chunk.valid();
    if (sent) {
      chan::Message m;
      m.opcode = kSockBatch;
      m.arg0 = wire.size();
      m.ptr = chunk;
      sent = send_to(target, m, ctx);
    }
    if (!sent) {
      // Transport down or staging pool exhausted: fail every op of this
      // group (the apps retry).
      if (chunk.valid()) pool_->release(chunk);
      for (std::size_t k = 0; k < wire.size(); ++k) {
        pending_.erase(wire[k].req_id);
        fail_op(ops[idxs[k]].request, ops[idxs[k]].deliver);
      }
      continue;
    }
    // Every op holds one reference on the staging chunk; alloc provided
    // the first, so add one per additional op.  The reference drops as
    // each op settles (reply, error, or restart abort) — a transport
    // crash can therefore never strand the chunk.
    for (std::size_t k = 1; k < wire.size(); ++k) pool_->addref(chunk);
    for (std::size_t k = 0; k < wire.size(); ++k) {
      pending_[wire[k].req_id].chunk = chunk;
    }
  }
}

void SyscallServer::on_message(const std::string& from,
                               const chan::Message& m, sim::Context& ctx) {
  (void)from;
  (void)ctx;
  if (m.opcode != kSockReply) return;
  auto it = pending_.find(m.req_id);
  if (it == pending_.end()) return;  // stale reply from before a crash
  chan::Message reply = m;
  reply.req_id = it->second.request.req_id;  // restore the app's request id
  it->second.deliver(reply);
  settle(it);
}

void SyscallServer::on_peer_up(const std::string& peer, bool restarted,
                               sim::Context& ctx) {
  if (!restarted) return;
  // Section V-D: for UDP we resubmit the last unfinished operation per
  // socket (duplicates preferred over losses); TCP "returns error to any
  // operation the SYSCALL server resubmits except listen".  Only the ops
  // that were in flight towards the restarted replica are affected — its
  // siblings' flows never notice.
  std::vector<std::uint64_t> done;
  for (auto& [id, p] : pending_) {
    if (p.target != peer) continue;
    const char proto = p.proto;
    // An op still naming the in-batch open sentinel cannot be resubmitted
    // standalone — its open's identity died with the batch; fail it so the
    // app reopens.
    const bool resubmit =
        (proto == 'U' || p.request.opcode == kSockListen) &&
        p.request.socket != kSockFromBatchOpen;
    if (resubmit) {
      send_to(peer, p.request, ctx);
    } else {
      fail_op(p.request, p.deliver);
      done.push_back(id);
    }
  }
  for (auto id : done) settle(pending_.find(id));
}

}  // namespace newtos::servers
