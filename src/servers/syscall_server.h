// The SYSCALL server (Section V-B): decouples the synchronous POSIX system
// calls of applications from the asynchronous internals of the stack.
//
// It is the only server that frequently uses kernel IPC — it "pays the
// trapping toll for the rest of the system".  It merely peeks into requests
// and forwards them over channels; it has no state worth recovering, except
// that it remembers the last unfinished operation per socket so it can
// resubmit (UDP, listen) or return an error (TCP) when a transport restarts.
//
// Sharded transport plane: each protocol may be served by N replicas.  The
// SYSCALL server is the control-path steering point: opens are spread
// round-robin over the replicas, every later op routes by the shard its
// socket id encodes, and in-batch sentinel ops travel with their open.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/servers/proto.h"
#include "src/servers/server.h"

namespace newtos::servers {

class SyscallServer : public Server {
 public:
  using DeliverFn = std::function<void(const chan::Message&)>;

  // `tcp_targets`/`udp_targets` name the servers handling each protocol,
  // one per shard: the TCP/UDP replicas in the split stack, or the single
  // combined "stack" server.
  SyscallServer(NodeEnv* env, sim::SimCore* core,
                std::vector<std::string> tcp_targets = {kTcpName},
                std::vector<std::string> udp_targets = {kUdpName});
  // Teardown: drops the staging-chunk references (and staged payloads) of
  // ops that never got a reply.
  ~SyscallServer() override;

  // One op of a batched submission (a SocketRing SQ flush).
  struct BatchOp {
    char proto = 'T';
    chan::Message request;
    DeliverFn deliver;
  };

  // Entry point for application system calls: a whole submission-queue
  // flush arrives under ONE kernel-IPC message (the caller models the
  // app-side trap), then travels to each transport shard as ONE packed
  // kSockBatch channel message.  Replies are delivered per op.
  void submit_batch(std::vector<BatchOp> ops);

  std::uint64_t calls() const { return calls_; }
  std::uint64_t batches() const { return batches_; }

 protected:
  void start(bool restart) override;
  void on_message(const std::string& from, const chan::Message& m,
                  sim::Context& ctx) override;
  void on_peer_up(const std::string& peer, bool restarted,
                  sim::Context& ctx) override;

 private:
  struct Pending {
    char proto = 'T';
    std::string target;  // the transport shard the op was sent to
    chan::Message request;
    DeliverFn deliver;
    // The packed batch chunk this op rode in on; each op holds one
    // reference, dropped when the op's reply (or abort) settles it.
    chan::RichPtr chunk;
  };

  // Settles a pending op: releases its chunk reference and erases it.
  void settle(std::map<std::uint64_t, Pending>::iterator it);

  void forward_batch(std::vector<BatchOp> ops, sim::Context& ctx);
  void fail_op(const chan::Message& request, const DeliverFn& deliver);

  std::vector<std::string> tcp_targets_;
  std::vector<std::string> udp_targets_;
  std::vector<std::string> targets_;  // tcp ∪ udp, deduplicated, in order
  ShardCursors open_rr_;        // round-robin cursors for new sockets
  chan::Pool* pool_ = nullptr;  // staging for packed kSockBatch arrays
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t next_req_ = 1;
  std::uint64_t calls_ = 0;
  std::uint64_t batches_ = 0;
};

}  // namespace newtos::servers
