// The SYSCALL server (Section V-B): decouples the synchronous POSIX system
// calls of applications from the asynchronous internals of the stack.
//
// It is the only server that frequently uses kernel IPC — it "pays the
// trapping toll for the rest of the system".  It merely peeks into requests
// and forwards them over channels; it has no state worth recovering, except
// that it remembers the last unfinished operation per socket so it can
// resubmit (UDP, listen) or return an error (TCP) when a transport restarts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "src/servers/proto.h"
#include "src/servers/server.h"

namespace newtos::servers {

class SyscallServer : public Server {
 public:
  using DeliverFn = std::function<void(const chan::Message&)>;

  // `tcp_target`/`udp_target` name the servers handling each protocol: the
  // TCP/UDP servers in the split stack, or the combined "stack" server.
  SyscallServer(NodeEnv* env, sim::SimCore* core,
                std::string tcp_target = kTcpName,
                std::string udp_target = kUdpName);
  // Teardown: drops the staging-chunk references (and staged payloads) of
  // ops that never got a reply.
  ~SyscallServer() override;

  // One op of a batched submission (a SocketRing SQ flush).
  struct BatchOp {
    char proto = 'T';
    chan::Message request;
    DeliverFn deliver;
  };

  // Entry point for application system calls: a whole submission-queue
  // flush arrives under ONE kernel-IPC message (the caller models the
  // app-side trap), then travels to each transport as ONE packed
  // kSockBatch channel message.  Replies are delivered per op.
  void submit_batch(std::vector<BatchOp> ops);

  std::uint64_t calls() const { return calls_; }
  std::uint64_t batches() const { return batches_; }

 protected:
  void start(bool restart) override;
  void on_message(const std::string& from, const chan::Message& m,
                  sim::Context& ctx) override;
  void on_peer_up(const std::string& peer, bool restarted,
                  sim::Context& ctx) override;

 private:
  struct Pending {
    char proto = 'T';
    chan::Message request;
    DeliverFn deliver;
    // The packed batch chunk this op rode in on; each op holds one
    // reference, dropped when the op's reply (or abort) settles it.
    chan::RichPtr chunk;
  };

  // Settles a pending op: releases its chunk reference and erases it.
  void settle(std::map<std::uint64_t, Pending>::iterator it);

  void forward_batch(std::vector<BatchOp> ops, sim::Context& ctx);
  void fail_op(const chan::Message& request, const DeliverFn& deliver);

  std::string tcp_target_;
  std::string udp_target_;
  chan::Pool* pool_ = nullptr;  // staging for packed kSockBatch arrays
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t next_req_ = 1;
  std::uint64_t calls_ = 0;
  std::uint64_t batches_ = 0;
};

}  // namespace newtos::servers
