// The SYSCALL server (Section V-B): decouples the synchronous POSIX system
// calls of applications from the asynchronous internals of the stack.
//
// It is the only server that frequently uses kernel IPC — it "pays the
// trapping toll for the rest of the system".  It merely peeks into requests
// and forwards them over channels; it has no state worth recovering, except
// that it remembers the last unfinished operation per socket so it can
// resubmit (UDP, listen) or return an error (TCP) when a transport restarts.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>

#include "src/servers/proto.h"
#include "src/servers/server.h"

namespace newtos::servers {

class SyscallServer : public Server {
 public:
  using DeliverFn = std::function<void(const chan::Message&)>;

  // `tcp_target`/`udp_target` name the servers handling each protocol: the
  // TCP/UDP servers in the split stack, or the combined "stack" server.
  SyscallServer(NodeEnv* env, sim::SimCore* core,
                std::string tcp_target = kTcpName,
                std::string udp_target = kUdpName);

  // Entry point for application system calls (arrives via kernel IPC; the
  // caller models the app-side trap).  `deliver` carries the reply back to
  // the application.
  void submit(char proto, chan::Message m, DeliverFn deliver);

  std::uint64_t calls() const { return calls_; }

 protected:
  void start(bool restart) override;
  void on_message(const std::string& from, const chan::Message& m,
                  sim::Context& ctx) override;
  void on_peer_up(const std::string& peer, bool restarted,
                  sim::Context& ctx) override;

 private:
  struct Pending {
    char proto = 'T';
    chan::Message request;
    DeliverFn deliver;
  };

  void forward(char proto, const chan::Message& m, DeliverFn deliver,
               sim::Context& ctx);

  std::string tcp_target_;
  std::string udp_target_;
  std::map<std::uint64_t, Pending> pending_;
  std::uint64_t next_req_ = 1;
  std::uint64_t calls_ = 0;
};

}  // namespace newtos::servers
